module mufuzz

go 1.24
