package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Body-size caps. Submissions are human-sized specs; commits carry a
// campaign snapshot plus a record chunk, which grow with corpus size.
const (
	maxSubmitBody   = 1 << 20
	maxControlBody  = 64 << 10
	maxCompleteBody = 64 << 20
)

// Handler returns the coordinator's HTTP API:
//
//	POST /v1/fleet/campaigns                  submit (SubmitRequest) — 429 + Retry-After over tenant budget
//	GET  /v1/fleet/campaigns                  list campaign statuses
//	GET  /v1/fleet/campaigns/{id}             one campaign's status
//	GET  /v1/fleet/campaigns/{id}/findings    findings with PoCs (after done)
//	GET  /v1/fleet/campaigns/{id}/transcript  assembled conformance transcript (after done)
//	POST /v1/fleet/leases                     acquire a slice lease — 204 + Retry-After when idle
//	POST /v1/fleet/leases/{id}/heartbeat      keep a lease alive — 410 when lapsed
//	POST /v1/fleet/leases/{id}/complete       commit a finished slice — 409 when stale
//	POST /v1/fleet/seeds/{bucket}/sync        push pollination seeds (idempotent)
//	GET  /healthz                             liveness
//	GET  /readyz                              readiness
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "campaigns": len(co.Statuses())})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, reason := co.Ready()
		if !ready {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": reason})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	})

	mux.HandleFunc("POST /v1/fleet/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if !readJSON(w, r, maxSubmitBody, &req) {
			return
		}
		st, err := co.Submit(req)
		if err != nil {
			var busy errBusy
			if errors.As(err, &busy) {
				w.Header().Set("Retry-After", retryAfterSeconds(co.cfg.RetryAfter))
				writeErr(w, http.StatusTooManyRequests, err)
				return
			}
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	})

	mux.HandleFunc("GET /v1/fleet/campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, co.Statuses())
	})

	mux.HandleFunc("GET /v1/fleet/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := co.Status(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no campaign %s", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/fleet/campaigns/{id}/findings", func(w http.ResponseWriter, r *http.Request) {
		findings, err := co.Findings(r.PathValue("id"))
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, findings)
	})

	mux.HandleFunc("GET /v1/fleet/campaigns/{id}/transcript", func(w http.ResponseWriter, r *http.Request) {
		data, ok := co.Transcript(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("campaign %s has no transcript yet", r.PathValue("id")))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	})

	mux.HandleFunc("POST /v1/fleet/leases", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !readJSON(w, r, maxControlBody, &req) {
			return
		}
		l, err := co.Acquire(req)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		if l == nil {
			w.Header().Set("Retry-After", retryAfterSeconds(co.cfg.RetryAfter))
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, l)
	})

	mux.HandleFunc("POST /v1/fleet/leases/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		ttl, ok := co.Heartbeat(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusGone, fmt.Errorf("lease %s is not current", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ttl_millis": ttl.Milliseconds()})
	})

	mux.HandleFunc("POST /v1/fleet/leases/{id}/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !readJSON(w, r, maxCompleteBody, &req) {
			return
		}
		resp, err := co.Complete(r.PathValue("id"), req)
		if err != nil {
			var stale errStale
			if errors.As(err, &stale) {
				writeErr(w, http.StatusConflict, err)
				return
			}
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /v1/fleet/seeds/{bucket}/sync", func(w http.ResponseWriter, r *http.Request) {
		var req SyncRequest
		if !readJSON(w, r, maxCompleteBody, &req) {
			return
		}
		n, err := co.SyncSeeds(r.PathValue("bucket"), req.Seeds)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, SyncResponse{Stored: n})
	})

	return mux
}

// readJSON decodes a size-capped JSON body, answering 400 itself on
// failure (413-style errors from MaxBytesReader surface as 400 with the
// reader's message).
func readJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit)).Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func retryAfterSeconds(d time.Duration) string {
	s := int(d.Seconds())
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}
