package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mufuzz/internal/service"
	"mufuzz/internal/store"
)

// buggySpec is the shared test campaign: the seeded-bug example, small
// budget, fixed seed — deterministic and fast, with real findings.
func buggySpec(iters int) service.CampaignSpec {
	return service.CampaignSpec{Example: "crowdsale-buggy", Seed: 7, Iterations: iters}
}

// referenceTranscript records the uninterrupted single-node run a fleet
// campaign must be byte-identical to.
func referenceTranscript(t *testing.T, spec service.CampaignSpec, defaultIters, defaultWorkers int) []byte {
	t.Helper()
	run, err := ReferenceTranscript(spec, defaultIters, defaultWorkers)
	if err != nil {
		t.Fatal(err)
	}
	return run.Transcript.EncodeBytes()
}

// TestFleetMigrationEquivalence is the subsystem's cardinal property: a
// campaign executed as leased slices across two workers — including a
// lease granted to a worker that dies mid-slice and lapses — produces a
// conformance transcript byte-identical to an uninterrupted single-node
// run of the same spec.
func TestFleetMigrationEquivalence(t *testing.T) {
	const ttl = 80 * time.Millisecond
	co := NewCoordinator(CoordinatorConfig{
		Rounds:            4,
		LeaseTTL:          ttl,
		DefaultIterations: 2000,
		RetryAfter:        time.Second,
	})
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	client := NewClient(srv.URL, 42)
	ctx := context.Background()

	spec := buggySpec(1200)
	st, err := client.Submit(ctx, SubmitRequest{Tenant: "acme", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}

	// Worker one executes the first two slices normally.
	w1 := NewWorker("w1", client)
	for i := 0; i < 2; i++ {
		ran, err := w1.RunOne(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			t.Fatalf("slice %d: no lease granted", i)
		}
	}
	mid, err := client.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.State == stateDone {
		t.Fatalf("campaign finished in 2 slices; budget too small to exercise migration")
	}

	// A third worker takes the next lease and dies mid-slice: the lease
	// is never heartbeat or committed, so it lapses after the TTL and the
	// same slice is re-granted from the last committed snapshot.
	dead, err := client.Acquire(ctx, LeaseRequest{Worker: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	if dead == nil {
		t.Fatal("no lease for the doomed worker")
	}
	time.Sleep(ttl + 20*time.Millisecond)

	// Worker two drives the campaign to completion, starting with the
	// re-granted slice.
	w2 := NewWorker("w2", client)
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, err := client.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == stateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not finish; last status %+v", cur)
		}
		ran, err := w2.RunOne(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			time.Sleep(10 * time.Millisecond)
		}
	}

	got, err := client.Transcript(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceTranscript(t, spec, 2000, 1)
	if !bytes.Equal(got, want) {
		t.Fatalf("migrated fleet transcript diverges from single-node reference (%d vs %d bytes)", len(got), len(want))
	}

	// The re-granted slice means more grants than commits: the doomed
	// lease's work was discarded, not merged.
	final, _ := client.Status(ctx, st.ID)
	if final.Findings == 0 {
		t.Fatal("buggy example produced no findings through the fleet")
	}
	findings, err := client.Findings(ctx, st.ID)
	if err != nil || len(findings) == 0 {
		t.Fatalf("findings endpoint: %v (%d findings)", err, len(findings))
	}
}

// TestFleetCompleteIdempotent exercises commit idempotency and staleness
// directly at the coordinator: a retried commit of the just-committed
// lease acknowledges as a duplicate without advancing the campaign, and a
// commit under a lapsed lease is refused stale.
func TestFleetCompleteIdempotent(t *testing.T) {
	co := NewCoordinator(CoordinatorConfig{LeaseTTL: 50 * time.Millisecond})
	if _, err := co.Submit(SubmitRequest{Spec: service.CampaignSpec{Example: "crowdsale", Seed: 3}}); err != nil {
		t.Fatal(err)
	}
	l, err := co.Acquire(LeaseRequest{Worker: "w"})
	if err != nil || l == nil {
		t.Fatalf("acquire: %v %v", l, err)
	}
	req := CompleteRequest{Worker: "w", Snapshot: []byte("opaque-snapshot")}
	r1, err := co.Complete(l.ID, req)
	if err != nil || !r1.Committed || r1.Duplicate {
		t.Fatalf("first commit: %+v %v", r1, err)
	}
	r2, err := co.Complete(l.ID, req)
	if err != nil || !r2.Committed || !r2.Duplicate {
		t.Fatalf("retried commit should acknowledge as duplicate: %+v %v", r2, err)
	}
	st, _ := co.Status("f0001")
	if st.Slices != 1 {
		t.Fatalf("duplicate commit advanced the campaign: %d slices", st.Slices)
	}

	// Next lease lapses before its commit: refused stale, slice re-granted
	// with the same sequence number.
	l2, err := co.Acquire(LeaseRequest{Worker: "w"})
	if err != nil || l2 == nil {
		t.Fatalf("acquire 2: %v %v", l2, err)
	}
	time.Sleep(70 * time.Millisecond)
	if _, err := co.Complete(l2.ID, req); err == nil {
		t.Fatal("commit under a lapsed lease must be refused")
	} else if _, ok := err.(errStale); !ok {
		t.Fatalf("want errStale, got %T %v", err, err)
	}
	l3, err := co.Acquire(LeaseRequest{Worker: "w2"})
	if err != nil || l3 == nil {
		t.Fatalf("re-grant after lapse: %v %v", l3, err)
	}
	if l3.Seq != l2.Seq {
		t.Fatalf("re-granted slice must resume the uncommitted sequence: got %d want %d", l3.Seq, l2.Seq)
	}
	if !bytes.Equal(l3.Snapshot, []byte("opaque-snapshot")) {
		t.Fatal("re-granted slice must carry the last committed snapshot")
	}
}

// TestFleetSeedSyncIdempotent pins pollination idempotency end to end:
// pushing the same fingerprinted seeds twice stores them once, and the
// store holds exactly the pushed objects.
func TestFleetSeedSyncIdempotent(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(CoordinatorConfig{Store: st})
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	client := NewClient(srv.URL, 7)
	ctx := context.Background()

	seeds := []SeedObject{
		{Fingerprint: "aaaa", Payload: []byte("seq-1")},
		{Fingerprint: "bbbb", Payload: []byte("seq-2")},
	}
	n, err := client.SyncSeeds(ctx, "CrowdsaleBuggy", seeds)
	if err != nil || n != 2 {
		t.Fatalf("first sync: stored %d, %v", n, err)
	}
	n, err = client.SyncSeeds(ctx, "CrowdsaleBuggy", seeds)
	if err != nil || n != 0 {
		t.Fatalf("retried sync must store nothing: stored %d, %v", n, err)
	}
	entries, err := st.Seeds("CrowdsaleBuggy")
	if err != nil || len(entries) != 2 {
		t.Fatalf("store holds %d seeds, %v", len(entries), err)
	}
}

// TestFleetBackPressure pins tenant budgets: a tenant at its active cap is
// refused with 429 and a Retry-After hint, while other tenants proceed.
func TestFleetBackPressure(t *testing.T) {
	co := NewCoordinator(CoordinatorConfig{TenantMaxActive: 1, RetryAfter: 3 * time.Second})
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	client := NewClient(srv.URL, 7)
	ctx := context.Background()

	if _, err := client.SubmitOnce(ctx, SubmitRequest{Tenant: "acme", Spec: buggySpec(500)}); err != nil {
		t.Fatal(err)
	}
	_, err := client.SubmitOnce(ctx, SubmitRequest{Tenant: "acme", Spec: buggySpec(500)})
	if !IsBusy(err) {
		t.Fatalf("over-budget submit should be refused busy, got %v", err)
	}
	if _, err := client.SubmitOnce(ctx, SubmitRequest{Tenant: "umbrella", Spec: buggySpec(500)}); err != nil {
		t.Fatalf("other tenant must not be throttled: %v", err)
	}

	// The raw response carries the Retry-After pacing hint.
	body, _ := json.Marshal(SubmitRequest{Tenant: "acme", Spec: buggySpec(500)})
	resp, err := http.Post(srv.URL+"/v1/fleet/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("want Retry-After: 3, got %q", ra)
	}
}

// TestFleetFairShare pins grant rotation: with per-tenant in-flight caps,
// grants alternate to the least-recently-served tenant instead of draining
// one tenant's queue first.
func TestFleetFairShare(t *testing.T) {
	co := NewCoordinator(CoordinatorConfig{TenantMaxInFlight: 1})
	for _, tenant := range []string{"acme", "acme", "umbrella"} {
		if _, err := co.Submit(SubmitRequest{Tenant: tenant, Spec: service.CampaignSpec{Example: "crowdsale", Seed: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	l1, err := co.Acquire(LeaseRequest{Worker: "w"})
	if err != nil || l1 == nil {
		t.Fatalf("grant 1: %v %v", l1, err)
	}
	l2, err := co.Acquire(LeaseRequest{Worker: "w"})
	if err != nil || l2 == nil {
		t.Fatalf("grant 2: %v %v", l2, err)
	}
	// Submission order alone would grant acme twice; fairness hands the
	// second grant to umbrella.
	if l1.CampaignID != "f0001" || l2.CampaignID != "f0003" {
		t.Fatalf("grants %s, %s; want f0001 then f0003 (tenant rotation)", l1.CampaignID, l2.CampaignID)
	}
	// Both tenants at their in-flight cap: no third grant even though
	// acme has a queued campaign.
	l3, err := co.Acquire(LeaseRequest{Worker: "w"})
	if err != nil {
		t.Fatal(err)
	}
	if l3 != nil {
		t.Fatalf("grant 3 should be refused (caps), got %s", l3.CampaignID)
	}
}

// TestFleetLeasePollEmpty pins the idle protocol: no campaigns means 204
// with a Retry-After hint, which the client surfaces as a nil lease.
func TestFleetLeasePollEmpty(t *testing.T) {
	co := NewCoordinator(CoordinatorConfig{RetryAfter: 2 * time.Second})
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/fleet/leases", "application/json", strings.NewReader(`{"worker":"w"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("want 204, got %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("want Retry-After: 2, got %q", ra)
	}
	l, err := NewClient(srv.URL, 1).Acquire(context.Background(), LeaseRequest{Worker: "w"})
	if err != nil || l != nil {
		t.Fatalf("client should surface 204 as no work: %v %v", l, err)
	}
}

// TestFleetPollination runs two campaigns on the same contract bucket
// through one worker with a shared store and checks seeds cross over: the
// second campaign imports seeds the first exported.
func TestFleetPollination(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(CoordinatorConfig{Store: st, Rounds: 4, DefaultIterations: 600})
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	client := NewClient(srv.URL, 9)
	ctx := context.Background()

	a, err := client.Submit(ctx, SubmitRequest{Tenant: "acme", Spec: buggySpec(600)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Submit(ctx, SubmitRequest{Tenant: "acme", Spec: service.CampaignSpec{Example: "crowdsale-buggy", Seed: 11, Iterations: 600}})
	if err != nil {
		t.Fatal(err)
	}

	w := NewWorker("w1", client)
	deadline := time.Now().Add(60 * time.Second)
	for {
		sa, _ := client.Status(ctx, a.ID)
		sb, _ := client.Status(ctx, b.ID)
		if sa.State == stateDone && sb.State == stateDone {
			if sa.SeedsExported+sb.SeedsExported == 0 {
				t.Fatal("no seeds exported by either campaign")
			}
			if sa.SeedsImported+sb.SeedsImported == 0 {
				t.Fatal("no cross-campaign seed imports despite a shared bucket")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaigns did not finish: %+v %+v", sa, sb)
		}
		if ran, err := w.RunOne(ctx); err != nil {
			t.Fatal(err)
		} else if !ran {
			time.Sleep(10 * time.Millisecond)
		}
	}
}
