package fleet

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"mufuzz/internal/conformance"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/service"
	"mufuzz/internal/store"
)

// CoordinatorConfig configures a fleet coordinator.
type CoordinatorConfig struct {
	// Store persists pollination seeds and finished transcripts. nil runs
	// fully in memory: no cross-node pollination, transcripts served from
	// memory only (used by overhead benchmarks).
	Store *store.Store
	// Rounds is the energy-round budget of each leased slice. Default 8.
	Rounds int
	// LeaseTTL is how long a granted lease lives without a heartbeat.
	// Default 10s.
	LeaseTTL time.Duration
	// DefaultIterations fills omitted spec iteration budgets. Default 20000.
	DefaultIterations int
	// DefaultWorkers fills omitted spec executor fan-outs. Default 1.
	DefaultWorkers int
	// TenantMaxInFlight caps concurrently leased slices per tenant.
	// Default 2.
	TenantMaxInFlight int
	// TenantMaxActive caps a tenant's non-terminal campaigns; submissions
	// beyond it are refused with 429 and a Retry-After hint. Default 16.
	TenantMaxActive int
	// RetryAfter is the client back-off hint on 429 and empty lease polls.
	// Default 1s.
	RetryAfter time.Duration
	// ImportPerLease caps pollination seeds shipped with one lease.
	// Default 64.
	ImportPerLease int
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Rounds == 0 {
		c.Rounds = 8
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.DefaultIterations == 0 {
		c.DefaultIterations = 20000
	}
	if c.DefaultWorkers == 0 {
		c.DefaultWorkers = 1
	}
	if c.TenantMaxInFlight == 0 {
		c.TenantMaxInFlight = 2
	}
	if c.TenantMaxActive == 0 {
		c.TenantMaxActive = 16
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.ImportPerLease == 0 {
		c.ImportPerLease = 64
	}
	return c
}

// Campaign states.
const (
	stateQueued = "queued"
	stateLeased = "leased"
	stateDone   = "done"
	stateFailed = "failed"
)

// campaign is the coordinator's record of one distributed campaign. All
// engine state lives in the snapshot chain; the coordinator never runs the
// engine.
type campaign struct {
	id     string
	tenant string
	bucket string
	spec   service.CampaignSpec // canonicalized at submit
	// record is whether this campaign carries a conformance transcript
	// (off for NoTranscript submissions).
	record bool

	state string
	seq   int // next slice number

	// snapshot is the last committed snapshot (empty before slice 0
	// commits); the only state a re-granted lease resumes from.
	snapshot []byte
	// chunks is the committed transcript prefix as the raw encoded record
	// chunks, in commit order — spliced verbatim into the assembled
	// transcript, never re-encoded. lastIndex is the index of the last
	// committed record, for chunk-continuity validation.
	chunks    [][]byte
	lastIndex int

	// lastLeaseID / lastResp make commits idempotent: a retried commit of
	// the just-committed lease is acknowledged from here without
	// reapplying.
	lastLeaseID string
	lastResp    CompleteResponse

	// imported/exported track pollination fingerprints this campaign has
	// consumed or produced, so lease imports never echo a campaign's own
	// seeds back at it.
	imported map[string]bool
	exported map[string]bool

	status     CampaignStatus
	findings   []service.Finding
	transcript []byte // assembled once done
}

// lease is one outstanding grant.
type lease struct {
	id         string
	campaignID string
	worker     string
	expires    time.Time
}

// tenantState is per-tenant fair-share accounting.
type tenantState struct {
	inFlight  int
	lastGrant int64 // grant sequence number; least wins the next grant
}

// Coordinator owns campaign lifecycles and leases slices to workers. It is
// an HTTP-facing control plane only: all fuzzing happens on workers, and
// all campaign state the coordinator holds is the deterministic commit
// chain (snapshots, record chunks, seeds, findings).
type Coordinator struct {
	cfg CoordinatorConfig

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string
	leases    map[string]*lease
	tenants   map[string]*tenantState
	nextID    int
	nextLease int
	grantSeq  int64
}

// NewCoordinator creates a coordinator.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	return &Coordinator{
		cfg:       cfg.withDefaults(),
		campaigns: make(map[string]*campaign),
		leases:    make(map[string]*lease),
		tenants:   make(map[string]*tenantState),
	}
}

// Ready reports readiness: the coordinator is a passive control plane, so
// it is ready as soon as it is constructed (its store, if any, was opened
// by the caller).
func (co *Coordinator) Ready() (bool, string) { return true, "" }

// RetryAfter returns the configured client back-off hint.
func (co *Coordinator) RetryAfter() time.Duration { return co.cfg.RetryAfter }

// Submit canonicalizes, validates, and enqueues one campaign. A tenant
// over its active-campaign budget gets errBusy (mapped to 429 upstream).
func (co *Coordinator) Submit(req SubmitRequest) (CampaignStatus, error) {
	spec, err := CanonicalizeSpec(req.Spec, co.cfg.DefaultIterations, co.cfg.DefaultWorkers)
	if err != nil {
		return CampaignStatus{}, err
	}
	// Resolve eagerly so a bad spec fails at submit, not on a worker.
	target, err := service.ResolveTarget(spec)
	if err != nil {
		return CampaignStatus{}, err
	}
	_, bucket, err := service.ResolveWorld(spec, target)
	if err != nil {
		return CampaignStatus{}, err
	}
	name := spec.Name
	if name == "" {
		name = target.Name()
	}

	co.mu.Lock()
	defer co.mu.Unlock()
	if co.activeLocked(req.Tenant) >= co.cfg.TenantMaxActive {
		return CampaignStatus{}, errBusy{fmt.Errorf("tenant %q at active campaign cap (%d)", tenantLabel(req.Tenant), co.cfg.TenantMaxActive)}
	}
	co.nextID++
	id := fmt.Sprintf("f%04d", co.nextID)
	c := &campaign{
		id:       id,
		tenant:   req.Tenant,
		bucket:   bucket,
		spec:     spec,
		record:   !req.NoTranscript,
		state:    stateQueued,
		imported: make(map[string]bool),
		exported: make(map[string]bool),
	}
	c.status = CampaignStatus{
		ID: id, Tenant: req.Tenant, Name: name, Contract: bucket,
		State: stateQueued, Iterations: spec.Iterations,
	}
	co.campaigns[id] = c
	co.order = append(co.order, id)
	if _, ok := co.tenants[req.Tenant]; !ok {
		co.tenants[req.Tenant] = &tenantState{}
	}
	return c.status, nil
}

// errBusy marks back-pressure refusals; the HTTP layer maps it to 429.
type errBusy struct{ error }

func tenantLabel(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// activeLocked counts a tenant's non-terminal campaigns.
func (co *Coordinator) activeLocked(tenant string) int {
	n := 0
	for _, c := range co.campaigns {
		if c.tenant == tenant && c.state != stateDone && c.state != stateFailed {
			n++
		}
	}
	return n
}

// expireLocked lapses overdue leases, returning their campaigns to the
// queue. Expiry is lazy — every scheduling entry point calls it — so a
// dead worker's slice is re-granted the next time any worker asks for
// work, with no background timer to race against.
func (co *Coordinator) expireLocked(now time.Time) {
	for id, l := range co.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(co.leases, id)
		if t := co.tenants[co.campaigns[l.campaignID].tenant]; t != nil && t.inFlight > 0 {
			t.inFlight--
		}
		c := co.campaigns[l.campaignID]
		if c.state == stateLeased {
			c.state = stateQueued
			c.status.State = stateQueued
			c.status.Worker = ""
		}
	}
}

// Acquire grants one lease to a worker, or returns nil when nothing is
// runnable (the worker should retry after RetryAfter). Grants are
// fair-share: among tenants under their in-flight cap with queued
// campaigns, the least-recently-granted tenant wins; within a tenant,
// campaigns run in submission order.
func (co *Coordinator) Acquire(req LeaseRequest) (*Lease, error) {
	now := time.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	co.expireLocked(now)

	var best *campaign
	var bestTenant *tenantState
	for _, id := range co.order {
		c := co.campaigns[id]
		if c.state != stateQueued {
			continue
		}
		t := co.tenants[c.tenant]
		if t.inFlight >= co.cfg.TenantMaxInFlight {
			continue
		}
		if best == nil || t.lastGrant < bestTenant.lastGrant {
			best, bestTenant = c, t
		}
	}
	if best == nil {
		return nil, nil
	}

	co.nextLease++
	co.grantSeq++
	l := &lease{
		id:         fmt.Sprintf("l%06d", co.nextLease),
		campaignID: best.id,
		worker:     req.Worker,
		expires:    now.Add(co.cfg.LeaseTTL),
	}
	co.leases[l.id] = l
	bestTenant.inFlight++
	bestTenant.lastGrant = co.grantSeq
	best.state = stateLeased
	best.status.State = stateLeased
	best.status.Worker = req.Worker

	out := &Lease{
		ID:         l.id,
		CampaignID: best.id,
		Seq:        best.seq,
		Spec:       best.spec,
		Snapshot:   best.snapshot,
		Rounds:     co.cfg.Rounds,
		TTLMillis:  co.cfg.LeaseTTL.Milliseconds(),
		Bucket:     best.bucket,
		Imports:    co.leaseImportsLocked(best),
		Pollinate:  co.cfg.Store != nil,
		Record:     best.record,
	}
	// Snapshot elision: if the worker still holds exactly this (campaign,
	// seq) live from its own last commit, skip shipping the snapshot — the
	// commit chain is deterministic, so seq identity implies byte identity.
	if req.WarmCampaign == best.id && req.WarmSeq == best.seq && best.seq > 0 {
		out.Snapshot = nil
		out.SnapshotElided = true
	}
	return out, nil
}

// leaseImportsLocked picks pollination seeds for a lease: store seeds of
// the campaign's bucket the campaign has neither produced nor consumed.
func (co *Coordinator) leaseImportsLocked(c *campaign) []SeedObject {
	if co.cfg.Store == nil {
		return nil
	}
	entries, err := co.cfg.Store.Seeds(c.bucket)
	if err != nil {
		return nil
	}
	var out []SeedObject
	for _, e := range entries {
		if len(out) >= co.cfg.ImportPerLease {
			break
		}
		if c.imported[e.Name] || c.exported[e.Name] {
			continue
		}
		out = append(out, SeedObject{Fingerprint: e.Name, Payload: e.Payload})
	}
	return out
}

// Heartbeat extends a lease's TTL. Unknown leases (expired, committed, or
// never granted) report false: the worker must abandon the slice.
func (co *Coordinator) Heartbeat(leaseID string) (time.Duration, bool) {
	now := time.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	co.expireLocked(now)
	l, ok := co.leases[leaseID]
	if !ok {
		return 0, false
	}
	l.expires = now.Add(co.cfg.LeaseTTL)
	return co.cfg.LeaseTTL, true
}

// Complete commits one finished slice under a lease. Commits are
// idempotent (a retry of the last committed lease acknowledges without
// reapplying) and stale commits — an expired lease whose slice was
// re-granted — are refused with errStale so the worker discards its work.
func (co *Coordinator) Complete(leaseID string, req CompleteRequest) (CompleteResponse, error) {
	now := time.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	co.expireLocked(now)

	l, ok := co.leases[leaseID]
	if !ok {
		// Idempotent retry of an already-committed lease?
		for _, c := range co.campaigns {
			if c.lastLeaseID == leaseID {
				resp := c.lastResp
				resp.Duplicate = true
				return resp, nil
			}
		}
		return CompleteResponse{}, errStale{fmt.Errorf("lease %s is not current (expired or never granted)", leaseID)}
	}
	c := co.campaigns[l.campaignID]

	// Validate the record chunk before touching any state. The shallow
	// scan checks grammar and extracts indexes without the full semantic
	// parse — the chunk bytes are spliced into the transcript verbatim, so
	// nothing downstream needs the parsed form.
	chunk, err := conformance.ScanRecordChunk(req.Records)
	if err != nil {
		return CompleteResponse{}, fmt.Errorf("lease %s: bad record chunk: %w", leaseID, err)
	}
	if chunk.Count > 0 && chunk.First <= c.lastIndex {
		return CompleteResponse{}, fmt.Errorf("lease %s: record chunk rewinds transcript (chunk starts at %d, committed through %d)", leaseID, chunk.First, c.lastIndex)
	}
	if !req.Done && len(req.Snapshot) == 0 {
		return CompleteResponse{}, fmt.Errorf("lease %s: mid-campaign commit without snapshot", leaseID)
	}
	if req.Done && req.Final == nil {
		return CompleteResponse{}, fmt.Errorf("lease %s: final commit without summary", leaseID)
	}

	// Commit.
	delete(co.leases, leaseID)
	if t := co.tenants[c.tenant]; t != nil && t.inFlight > 0 {
		t.inFlight--
	}
	c.seq++
	c.snapshot = req.Snapshot
	if c.record && chunk.Count > 0 {
		c.chunks = append(c.chunks, req.Records)
		c.lastIndex = chunk.Last
	}
	imported := 0
	for _, fp := range req.Imported {
		if !c.imported[fp] {
			c.imported[fp] = true
			imported++
		}
	}
	exported := co.storeExportsLocked(c, req.Exports)

	st := &c.status
	st.Slices++
	st.Executions = req.Progress.Executions
	st.Coverage = req.Progress.Coverage
	st.CoveredEdges = req.Progress.CoveredEdges
	st.TotalEdges = req.Progress.TotalEdges
	st.SeedQueueLen = req.Progress.SeedQueueLen
	st.Findings = req.Progress.Findings
	st.Classes = req.Progress.Classes
	st.SeedsImported += imported
	st.SeedsExported += exported
	st.Worker = ""

	resp := CompleteResponse{Committed: true}
	if req.Done {
		c.state = stateDone
		st.State = stateDone
		c.findings = req.Findings
		if c.record {
			co.assembleTranscriptLocked(c, req.Final)
		}
		resp.CampaignDone = true
	} else {
		c.state = stateQueued
		st.State = stateQueued
	}
	c.lastLeaseID = leaseID
	c.lastResp = resp
	return resp, nil
}

// errStale marks commits under a lapsed lease; the HTTP layer maps it to
// 409 so the worker discards the slice instead of retrying.
type errStale struct{ error }

// storeExportsLocked persists a commit's seed exports. Exports are
// content-addressed, so replays of the same commit store nothing new.
func (co *Coordinator) storeExportsLocked(c *campaign, exports []SeedObject) int {
	n := 0
	for _, e := range exports {
		if c.exported[e.Fingerprint] {
			continue
		}
		c.exported[e.Fingerprint] = true
		if co.cfg.Store == nil {
			n++
			continue
		}
		if wrote, err := co.cfg.Store.PutSeed(c.bucket, e.Fingerprint, e.Payload); err == nil && wrote {
			n++
		}
	}
	return n
}

// assembleTranscriptLocked builds the campaign's conformance transcript
// from the committed record chain — the byte-identical-migration proof.
// The options line is derived from the canonical spec exactly as a
// single-node recording would derive it.
func (co *Coordinator) assembleTranscriptLocked(c *campaign, final *conformance.Summary) {
	opts, err := service.SpecOptions(c.spec, co.cfg.DefaultIterations, co.cfg.DefaultWorkers)
	if err == nil {
		// The options line carries the world token for multi-contract
		// campaigns; re-resolve it the same way the workers did.
		var target fuzz.Target
		if target, err = service.ResolveTarget(c.spec); err == nil {
			opts.World, _, err = service.ResolveWorld(c.spec, target)
		}
	}
	if err != nil {
		c.state = stateFailed
		c.status.State = stateFailed
		c.status.Error = fmt.Sprintf("assemble transcript: %v", err)
		return
	}
	var buf bytes.Buffer
	if err := conformance.EncodeAssembled(&buf, c.status.Name,
		conformance.SummarizeOptions(opts.Normalized()), c.chunks, *final); err != nil {
		c.state = stateFailed
		c.status.State = stateFailed
		c.status.Error = fmt.Sprintf("assemble transcript: %v", err)
		return
	}
	c.transcript = buf.Bytes()
	if co.cfg.Store != nil {
		_ = co.cfg.Store.Put(store.KindTranscript, c.bucket, c.id, c.transcript)
	}
}

// SyncSeeds stores pushed seeds into a bucket — the idempotent cross-node
// pollination entry point. Without a store it reports zero stored.
func (co *Coordinator) SyncSeeds(bucket string, seeds []SeedObject) (int, error) {
	if co.cfg.Store == nil {
		return 0, nil
	}
	n := 0
	for _, s := range seeds {
		wrote, err := co.cfg.Store.PutSeed(bucket, s.Fingerprint, s.Payload)
		if err != nil {
			return n, err
		}
		if wrote {
			n++
		}
	}
	return n, nil
}

// Statuses lists campaigns in submission order.
func (co *Coordinator) Statuses() []CampaignStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.expireLocked(time.Now())
	out := make([]CampaignStatus, 0, len(co.order))
	for _, id := range co.order {
		out = append(out, co.campaigns[id].status)
	}
	return out
}

// Status returns one campaign's status.
func (co *Coordinator) Status(id string) (CampaignStatus, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.expireLocked(time.Now())
	c, ok := co.campaigns[id]
	if !ok {
		return CampaignStatus{}, false
	}
	return c.status, true
}

// Findings returns a finished campaign's findings.
func (co *Coordinator) Findings(id string) ([]service.Finding, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c, ok := co.campaigns[id]
	if !ok {
		return nil, fmt.Errorf("no campaign %s", id)
	}
	out := make([]service.Finding, len(c.findings))
	copy(out, c.findings)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].PC < out[j].PC
	})
	return out, nil
}

// Transcript returns a finished campaign's assembled conformance
// transcript, or ok=false while the campaign is still running.
func (co *Coordinator) Transcript(id string) ([]byte, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c, ok := co.campaigns[id]
	if !ok || len(c.transcript) == 0 {
		return nil, false
	}
	return c.transcript, true
}
