package fleet

import (
	"mufuzz/internal/conformance"
	"mufuzz/internal/service"
)

// ReferenceTranscript records the uninterrupted single-node run of a
// campaign spec — the baseline a fleet-executed campaign's assembled
// transcript must be byte-identical to, no matter how many workers it
// migrated across. The spec is canonicalized exactly as the coordinator
// canonicalizes it at submit, so `conform -mode fleet-ref`, the fleet
// tests, and CI's kill-one-worker smoke all compare against the same
// bytes.
func ReferenceTranscript(spec service.CampaignSpec, defaultIterations, defaultWorkers int) (*conformance.Run, error) {
	canon, err := CanonicalizeSpec(spec, defaultIterations, defaultWorkers)
	if err != nil {
		return nil, err
	}
	target, err := service.ResolveTarget(canon)
	if err != nil {
		return nil, err
	}
	worldOpts, _, err := service.ResolveWorld(canon, target)
	if err != nil {
		return nil, err
	}
	opts, err := service.SpecOptions(canon, 0, 0)
	if err != nil {
		return nil, err
	}
	opts.World = worldOpts
	name := canon.Name
	if name == "" {
		name = target.Name()
	}
	return conformance.RecordTargetCampaign(name, target, opts), nil
}
