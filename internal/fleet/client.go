package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mufuzz/internal/service"
)

// Client is the worker-side (and operator-side) HTTP client for a fleet
// coordinator. Every call sends Content-Type: application/json, carries a
// per-attempt timeout, and retries transient failures — network errors and
// 5xx — with exponential backoff plus jitter. Back-pressure responses (429
// and empty lease polls) honor the coordinator's Retry-After hint.
// Protocol refusals (4xx other than 429) are never retried: they are
// answers, not failures.
type Client struct {
	base string
	http *http.Client

	// Retry policy; zero values take defaults.
	MaxAttempts int           // per call, default 5
	BaseBackoff time.Duration // first retry delay, default 200ms
	MaxBackoff  time.Duration // backoff cap, default 5s

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient creates a client for the coordinator at base (e.g.
// "http://127.0.0.1:8700"). Seed feeds the backoff jitter source only —
// it never influences fuzzing.
func NewClient(base string, seed int64) *Client {
	return &Client{
		base:        strings.TrimRight(base, "/"),
		http:        &http.Client{Timeout: 30 * time.Second},
		MaxAttempts: 5,
		BaseBackoff: 200 * time.Millisecond,
		MaxBackoff:  5 * time.Second,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// jitter returns a uniformly random duration in [0, d).
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Int63n(int64(d)))
}

// backoff computes the delay before retry attempt n (0-based): exponential
// from BaseBackoff, capped at MaxBackoff, plus up to 50% jitter so a fleet
// of workers retrying the same outage does not stampede.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.BaseBackoff << attempt
	if d > c.MaxBackoff || d <= 0 {
		d = c.MaxBackoff
	}
	return d + c.jitter(d/2)
}

// sleep waits for d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// apiError is a non-retryable coordinator refusal.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("coordinator: %d: %s", e.Status, e.Msg)
}

// IsStale reports whether err is the coordinator refusing a lease as no
// longer current (409 on commit, 410 on heartbeat) — the signal to discard
// the slice instead of retrying.
func IsStale(err error) bool {
	var ae *apiError
	if !errors.As(err, &ae) {
		return false
	}
	return ae.Status == http.StatusConflict || ae.Status == http.StatusGone
}

// IsBusy reports whether err is a 429 back-pressure refusal.
func IsBusy(err error) bool {
	var ae *apiError
	return errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests
}

// do runs one JSON request with the retry policy. A nil in sends no body;
// a nil out discards the response body. 204 responses (e.g. lease polls
// with no work) return errEmpty for the caller to interpret.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	return c.doN(ctx, attempts, method, path, in, out)
}

// doN is do with an explicit attempt budget.
func (c *Client) doN(ctx context.Context, attempts int, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("fleet client: encode: %w", err)
		}
	}
	var lastErr error
	var wait time.Duration
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := sleep(ctx, wait); err != nil {
				return err
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("fleet client: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", "application/json")
		resp, err := c.http.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			wait = c.backoff(attempt)
			continue
		}
		retry, err := c.handle(resp, out)
		if err == nil {
			return nil
		}
		if !retry {
			return err
		}
		lastErr = err
		// An explicit server pacing hint overrides our own backoff.
		wait = c.backoff(attempt)
		if ra := retryAfter(resp); ra > 0 {
			wait = ra + c.jitter(ra/4)
		}
	}
	return fmt.Errorf("fleet client: %s %s: giving up after %d attempts: %w", method, path, attempts, lastErr)
}

// errEmpty reports a 204 response (no work available).
var errEmpty = fmt.Errorf("fleet client: no content")

// handle consumes one response; it reports whether the call should retry.
func (c *Client) handle(resp *http.Response, out any) (bool, error) {
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		_ = resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return false, errEmpty
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		if out == nil {
			return false, nil
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxCompleteBody)).Decode(out); err != nil {
			// A malformed body on a 2xx is a transport problem; retry.
			return true, fmt.Errorf("fleet client: decode response: %w", err)
		}
		return false, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		return true, &apiError{Status: resp.StatusCode, Msg: readErr(resp)}
	case resp.StatusCode >= 500:
		return true, &apiError{Status: resp.StatusCode, Msg: readErr(resp)}
	default:
		return false, &apiError{Status: resp.StatusCode, Msg: readErr(resp)}
	}
}

// readErr extracts the error envelope's message (best effort).
func readErr(resp *http.Response) string {
	var eb errorBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); err == nil && eb.Error != "" {
		return eb.Error
	}
	return resp.Status
}

// retryAfter parses a Retry-After seconds hint.
func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 0
}

// Submit submits a campaign. 429 back-pressure is retried with the
// coordinator's pacing hint; if it persists past the retry budget the
// final error satisfies IsBusy.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (CampaignStatus, error) {
	var st CampaignStatus
	err := c.do(ctx, http.MethodPost, "/v1/fleet/campaigns", req, &st)
	return st, unwrapGiveUp(err)
}

// SubmitOnce submits without retrying back-pressure — callers that want to
// observe 429s directly (tests, schedulers with their own pacing).
func (c *Client) SubmitOnce(ctx context.Context, req SubmitRequest) (CampaignStatus, error) {
	var st CampaignStatus
	err := c.doN(ctx, 1, http.MethodPost, "/v1/fleet/campaigns", req, &st)
	return st, unwrapGiveUp(err)
}

// Acquire asks for one lease; a nil lease (no error) means no work is
// available right now.
func (c *Client) Acquire(ctx context.Context, req LeaseRequest) (*Lease, error) {
	var l Lease
	err := c.do(ctx, http.MethodPost, "/v1/fleet/leases", req, &l)
	if err != nil {
		if errors.Is(err, errEmpty) {
			return nil, nil
		}
		return nil, err
	}
	return &l, nil
}

// Heartbeat extends a lease. A stale lease returns an error satisfying
// IsStale.
func (c *Client) Heartbeat(ctx context.Context, leaseID string) error {
	return unwrapGiveUp(c.do(ctx, http.MethodPost, "/v1/fleet/leases/"+leaseID+"/heartbeat", LeaseRequest{}, nil))
}

// Complete commits a finished slice. Safe to retry: commits are
// idempotent on the coordinator. A stale lease returns an error
// satisfying IsStale.
func (c *Client) Complete(ctx context.Context, leaseID string, req CompleteRequest) (CompleteResponse, error) {
	var resp CompleteResponse
	err := c.do(ctx, http.MethodPost, "/v1/fleet/leases/"+leaseID+"/complete", req, &resp)
	return resp, unwrapGiveUp(err)
}

// SyncSeeds pushes pollination seeds into a bucket (idempotent).
func (c *Client) SyncSeeds(ctx context.Context, bucket string, seeds []SeedObject) (int, error) {
	var resp SyncResponse
	err := c.do(ctx, http.MethodPost, "/v1/fleet/seeds/"+bucket+"/sync", SyncRequest{Seeds: seeds}, &resp)
	return resp.Stored, unwrapGiveUp(err)
}

// Statuses lists campaigns.
func (c *Client) Statuses(ctx context.Context) ([]CampaignStatus, error) {
	var out []CampaignStatus
	err := c.do(ctx, http.MethodGet, "/v1/fleet/campaigns", nil, &out)
	return out, unwrapGiveUp(err)
}

// Status fetches one campaign.
func (c *Client) Status(ctx context.Context, id string) (CampaignStatus, error) {
	var st CampaignStatus
	err := c.do(ctx, http.MethodGet, "/v1/fleet/campaigns/"+id, nil, &st)
	return st, unwrapGiveUp(err)
}

// Findings fetches a campaign's findings.
func (c *Client) Findings(ctx context.Context, id string) ([]service.Finding, error) {
	var out []service.Finding
	err := c.do(ctx, http.MethodGet, "/v1/fleet/campaigns/"+id+"/findings", nil, &out)
	return out, unwrapGiveUp(err)
}

// Transcript fetches a finished campaign's conformance transcript bytes.
func (c *Client) Transcript(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/fleet/campaigns/"+id+"/transcript", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &apiError{Status: resp.StatusCode, Msg: resp.Status}
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxCompleteBody))
}

// WaitReady polls /readyz until the coordinator is ready or ctx expires.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if serr := sleep(ctx, 100*time.Millisecond+c.jitter(100*time.Millisecond)); serr != nil {
			return serr
		}
	}
}

// unwrapGiveUp surfaces the terminal cause of an exhausted retry loop so
// callers can match with IsStale/IsBusy (the "giving up" wrapper keeps
// %w-chains intact, this just shortens the common case).
func unwrapGiveUp(err error) error {
	if err == nil {
		return nil
	}
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	return err
}
