package fleet

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"time"

	"mufuzz/internal/conformance"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/service"
	"mufuzz/internal/store"
)

// Worker executes leased campaign slices with the ordinary single-node
// engine. A worker holds no durable state: everything it needs arrives in
// the lease (canonical spec, snapshot, round budget, pollination imports)
// and everything it produces leaves in the commit. Killing a worker at any
// point therefore loses at most one slice of work, never correctness —
// the coordinator re-grants the slice from the last committed snapshot.
type Worker struct {
	name   string
	client *Client
	// Poll is the idle wait between lease polls when the coordinator has
	// no work (jittered). Default 500ms.
	Poll time.Duration
	// warm is the campaign of the last committed (not-done) slice, kept
	// live so a follow-on lease for the same campaign resumes in memory
	// instead of recompiling the target and decoding the snapshot. Safe
	// because the in-memory state at a natural slice boundary is exactly
	// what the committed snapshot encodes — the lease's snapshot bytes are
	// compared against the committed bytes before reuse, and any mismatch
	// (re-granted elsewhere, lost commit) falls back to a cold resume.
	warm *warmCampaign
}

// warmCampaign pairs a live campaign with the identity of the slice it is
// positioned to run next.
type warmCampaign struct {
	campaignID string
	seq        int
	snapshot   []byte
	c          *fuzz.Campaign
}

// NewWorker creates a worker that pulls slices from the client's
// coordinator under the given node name.
func NewWorker(name string, client *Client) *Worker {
	return &Worker{name: name, client: client, Poll: 500 * time.Millisecond}
}

// Run pulls and executes leases until ctx is cancelled. Errors on
// individual leases are absorbed (the lease lapses and is re-granted);
// only ctx cancellation ends the loop.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		ran, err := w.RunOne(ctx)
		if err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		if !ran {
			if err := sleep(ctx, w.Poll+w.client.jitter(w.Poll/2)); err != nil {
				return err
			}
		}
	}
}

// RunOne acquires and executes at most one lease; it reports whether a
// lease was executed. A nil error with ran=false means the coordinator
// had no work.
func (w *Worker) RunOne(ctx context.Context) (bool, error) {
	req := LeaseRequest{Worker: w.name}
	if w.warm != nil {
		req.WarmCampaign = w.warm.campaignID
		req.WarmSeq = w.warm.seq
	}
	lease, err := w.client.Acquire(ctx, req)
	if err != nil {
		return false, err
	}
	if lease == nil {
		return false, nil
	}
	return true, w.runLease(ctx, lease)
}

// runLease executes one leased slice end to end. The cardinal rule: a
// commit happens only when the engine finished the slice at its natural
// schedule boundary. A slice cut short — shutdown, lost lease — is
// abandoned without a commit, because a snapshot taken mid-slice is not a
// deterministic resume point and would break the migrated campaign's
// byte-identity with a single-node run.
func (w *Worker) runLease(ctx context.Context, lease *Lease) error {
	c := w.takeWarm(lease)
	if c == nil {
		if lease.SnapshotElided {
			// The coordinator elided the snapshot against our advertised
			// warm state, but we no longer hold it — never start fresh at
			// seq > 0; let the lease lapse and be re-granted with bytes.
			return fmt.Errorf("worker %s: lease %s: elided snapshot without warm campaign", w.name, lease.ID)
		}
		var err error
		c, err = w.buildCampaign(lease)
		if err != nil {
			// An unresolvable lease (bad spec should have been caught at
			// submit) cannot be executed by anyone; let it lapse.
			return fmt.Errorf("worker %s: lease %s: %w", w.name, lease.ID, err)
		}
	}

	// Pollination imports run before the recorder is installed: injected
	// sequences execute through the engine (their discoveries count), but
	// they are not part of the campaign's own schedule, so they must not
	// enter the transcript chunk.
	var imported []string
	if len(lease.Imports) > 0 {
		var batch []fuzz.Sequence
		for _, obj := range lease.Imports {
			seq, err := fuzz.DecodeSequence(obj.Payload)
			if err != nil {
				continue
			}
			batch = append(batch, seq)
			imported = append(imported, obj.Fingerprint)
		}
		c.InjectSequences(batch)
	}

	// Snapshot the pre-slice queue for the export diff (skipped when the
	// coordinator has nowhere to keep exports).
	var preQueue map[string]bool
	if lease.Pollinate {
		preQueue = make(map[string]bool)
		for _, seq := range c.QueueSequences() {
			preQueue[string(fuzz.EncodeSequence(seq))] = true
		}
	}

	// Install the slice recorder, or explicitly clear any observer a warm
	// campaign kept from its previous slice. The untyped nil matters: a
	// typed nil *Recorder would read as a non-nil observer to the engine.
	var rec *conformance.Recorder
	if lease.Record {
		rec = &conformance.Recorder{}
		c.SetObserver(rec)
	} else {
		c.SetObserver(nil)
	}

	// Heartbeat for the duration of the slice. Losing the lease cancels
	// the slice context, which makes RunSlice return early — detected
	// below as a non-natural boundary and abandoned.
	sliceCtx, cancelSlice := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		ttl := time.Duration(lease.TTLMillis) * time.Millisecond
		interval := ttl / 3
		if interval <= 0 {
			interval = time.Second
		}
		for {
			if err := sleep(sliceCtx, interval); err != nil {
				return
			}
			if err := w.client.Heartbeat(sliceCtx, lease.ID); err != nil {
				if IsStale(err) || sliceCtx.Err() != nil {
					cancelSlice()
					return
				}
				// Transient failure already exhausted the client's retry
				// budget; the lease is almost certainly lost. Abandon.
				cancelSlice()
				return
			}
		}
	}()

	res, done := c.RunSlice(sliceCtx, lease.Rounds)
	interrupted := sliceCtx.Err() != nil // read before our own cancel below
	cancelSlice()
	<-hbDone

	// Interrupted mid-slice (shutdown or lost lease): abandon without a
	// commit. The one exception is a slice that finished the campaign —
	// RunSlice reports done only from a natural boundary, so committing
	// it is safe even if cancellation arrived just after.
	if !done && interrupted {
		return fmt.Errorf("worker %s: lease %s abandoned (slice interrupted)", w.name, lease.ID)
	}

	req := CompleteRequest{
		Worker:   w.name,
		Done:     done,
		Imported: imported,
		Progress: progress(res),
	}
	if rec != nil {
		req.Records = conformance.EncodeRecords(rec.Records())
	}
	if lease.Pollinate {
		req.Exports = exportSeeds(c, preQueue)
	}
	if !done {
		req.Snapshot = c.Snapshot().EncodeBytes()
	} else {
		final := conformance.Summarize(c, res)
		req.Final = &final
		req.Findings = findings(res)
	}

	// Commit retries ride on the coordinator's idempotency; a stale
	// refusal means the lease lapsed first and the slice will be re-run.
	if _, err := w.client.Complete(ctx, lease.ID, req); err != nil {
		return fmt.Errorf("worker %s: lease %s: commit: %w", w.name, lease.ID, err)
	}
	if !done {
		// The campaign is parked at the exact boundary the committed
		// snapshot encodes; keep it live for the likely follow-on lease.
		w.warm = &warmCampaign{
			campaignID: lease.CampaignID,
			seq:        lease.Seq + 1,
			snapshot:   req.Snapshot,
			c:          c,
		}
	}
	return nil
}

// takeWarm consumes the warm campaign if it matches the lease: same
// campaign, the immediately following slice, and a lease snapshot
// byte-identical to the one this worker committed (or elided by the
// coordinator against this worker's advertisement, which asserts the same
// identity). Any mismatch discards the cache and forces a cold resume from
// the lease's own snapshot.
func (w *Worker) takeWarm(lease *Lease) *fuzz.Campaign {
	warm := w.warm
	w.warm = nil
	if warm == nil ||
		warm.campaignID != lease.CampaignID ||
		warm.seq != lease.Seq {
		return nil
	}
	if !lease.SnapshotElided && !bytes.Equal(warm.snapshot, lease.Snapshot) {
		return nil
	}
	return warm.c
}

// buildCampaign resolves the lease's canonical spec and either starts a
// fresh campaign (slice 0) or resumes the committed snapshot.
func (w *Worker) buildCampaign(lease *Lease) (*fuzz.Campaign, error) {
	target, err := service.ResolveTarget(lease.Spec)
	if err != nil {
		return nil, err
	}
	worldOpts, _, err := service.ResolveWorld(lease.Spec, target)
	if err != nil {
		return nil, err
	}
	if len(lease.Snapshot) == 0 {
		opts, err := service.SpecOptions(lease.Spec, 0, 0)
		if err != nil {
			return nil, err
		}
		opts.World = worldOpts
		return fuzz.NewTargetCampaign(target, opts), nil
	}
	snap, err := fuzz.DecodeSnapshot(bytes.NewReader(lease.Snapshot))
	if err != nil {
		return nil, fmt.Errorf("decode snapshot: %w", err)
	}
	if worldOpts != nil {
		return fuzz.ResumeWorldCampaign(target, worldOpts, snap)
	}
	return fuzz.ResumeTargetCampaign(target, snap)
}

// exportSeeds diffs the post-slice queue against the pre-slice queue and
// fingerprints each new sequence by the coverage a detached replay
// observes — the same content addressing the single-node service uses, so
// fleet seeds and service seeds share one namespace.
func exportSeeds(c *fuzz.Campaign, preQueue map[string]bool) []SeedObject {
	var out []SeedObject
	seen := make(map[string]bool)
	for _, seq := range c.QueueSequences() {
		enc := fuzz.EncodeSequence(seq)
		key := string(enc)
		if preQueue[key] || seen[key] {
			continue
		}
		seen[key] = true
		fp := store.Fingerprint(c.ReplayCoverageEdges(seq))
		out = append(out, SeedObject{Fingerprint: fp, Payload: enc})
	}
	return out
}

// progress projects a slice result into the commit's status update.
func progress(res *fuzz.Result) SliceProgress {
	classes := make([]string, 0, len(res.BugClasses))
	for cl := range res.BugClasses {
		classes = append(classes, string(cl))
	}
	sort.Strings(classes)
	return SliceProgress{
		Executions:   res.Executions,
		Coverage:     res.Coverage,
		CoveredEdges: res.CoveredEdges,
		TotalEdges:   res.TotalEdges,
		SeedQueueLen: res.SeedQueueLen,
		Findings:     len(res.Findings),
		Classes:      classes,
	}
}

// findings projects final results into the service's findings shape, with
// PoC call orders from the repro map.
func findings(res *fuzz.Result) []service.Finding {
	poc := make(map[string][]string)
	for class, seq := range res.Repro {
		calls := make([]string, len(seq))
		for i, tx := range seq {
			calls[i] = tx.Func
		}
		poc[string(class)] = calls
	}
	out := make([]service.Finding, 0, len(res.Findings))
	for _, f := range res.Findings {
		out = append(out, service.Finding{
			Class:       string(f.Class),
			PC:          f.PC,
			Description: f.Description,
			PoC:         poc[string(f.Class)],
		})
	}
	return out
}
