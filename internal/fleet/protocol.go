// Package fleet is the distributed fuzzing subsystem: a coordinator that
// owns campaign lifecycles and leases bounded slices of work to worker
// nodes over HTTP, and the worker agent that executes leased slices with
// the ordinary single-node engine.
//
// The unit of distribution is the engine's own scheduling slice
// (Campaign.RunSlice): a lease carries the campaign spec, the last
// committed snapshot, and a round budget; the worker resumes the campaign,
// runs exactly that slice, and commits the successor snapshot plus the
// slice's conformance record chunk, coverage-fingerprinted seeds, and
// findings. Because slice boundaries are deterministic schedule points and
// snapshots resume byte-identically, a campaign that migrates between
// workers — including through a worker killed mid-slice, whose lease
// expires and is re-granted from the last committed snapshot — produces a
// conformance transcript byte-identical to an uninterrupted single-node
// run. The coordinator assembles and serves that transcript as the
// campaign's proof of equivalence.
//
// Fault tolerance is lease-based: every grant carries a TTL, workers
// heartbeat to keep it alive, and a silent worker's lease lapses back into
// the queue. Workers never commit a slice the engine did not finish at a
// natural boundary (a cancelled slice is abandoned, not committed), so the
// committed snapshot chain only ever contains deterministic states.
// Commits are idempotent — a retried commit of the already-committed lease
// acknowledges without reapplying — and cross-node seed pollination rides
// the content-addressed store, keyed by coverage fingerprint, so retries
// and duplicate syncs are free.
//
// Multi-tenancy is fair-share: campaigns belong to tenants, each tenant
// has an in-flight lease cap, grants rotate to the least-recently-served
// tenant, and a tenant over its queued-campaign budget is refused with
// 429 and a Retry-After hint.
package fleet

import (
	"mufuzz/internal/conformance"
	"mufuzz/internal/service"
)

// SubmitRequest submits one campaign on behalf of a tenant.
type SubmitRequest struct {
	// Tenant is the fair-share scheduling identity; empty means the
	// anonymous default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Spec is the campaign specification, exactly as the single-node
	// service accepts it.
	Spec service.CampaignSpec `json:"spec"`
	// NoTranscript disables conformance recording for this campaign:
	// workers skip the per-execution recorder and the coordinator assembles
	// no transcript. Default off — the byte-identical migration proof is
	// the fleet's core guarantee — but campaigns that don't need the proof
	// (e.g. throughput benchmarks) can shed the recording cost.
	NoTranscript bool `json:"no_transcript,omitempty"`
}

// CampaignStatus is the coordinator's view of one campaign.
type CampaignStatus struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant,omitempty"`
	Name     string `json:"name"`
	Contract string `json:"contract"`
	// State is one of queued, leased, done, failed.
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Worker is the node holding the current lease, if any.
	Worker        string   `json:"worker,omitempty"`
	Slices        int      `json:"slices"`
	Executions    int      `json:"executions"`
	Iterations    int      `json:"iterations"`
	Coverage      float64  `json:"coverage"`
	CoveredEdges  int      `json:"covered_edges"`
	TotalEdges    int      `json:"total_edges"`
	SeedQueueLen  int      `json:"seed_queue_len"`
	Findings      int      `json:"findings"`
	Classes       []string `json:"classes,omitempty"`
	SeedsImported int      `json:"seeds_imported"`
	SeedsExported int      `json:"seeds_exported"`
}

// LeaseRequest asks the coordinator for one slice of work.
type LeaseRequest struct {
	// Worker names the requesting node (heartbeats and commits echo the
	// lease ID, so the name is informational: status display and logs).
	Worker string `json:"worker"`
	// WarmCampaign/WarmSeq advertise the campaign state the worker still
	// holds live from its last commit. If the coordinator grants exactly
	// that (campaign, seq), it elides the snapshot from the lease: the
	// snapshot chain is deterministic, so seq identity implies byte
	// identity, and the worker resumes in memory.
	WarmCampaign string `json:"warm_campaign,omitempty"`
	WarmSeq      int    `json:"warm_seq,omitempty"`
}

// Lease is one granted slice of one campaign. The worker must finish the
// slice and commit before the TTL lapses (extending it via heartbeats), or
// the coordinator re-grants the same slice — same snapshot, same budget —
// to the next worker.
type Lease struct {
	ID         string `json:"id"`
	CampaignID string `json:"campaign_id"`
	// Seq is the slice number (0-based); slice 0 starts from a fresh
	// campaign, later slices resume Snapshot.
	Seq int `json:"seq"`
	// Spec is the canonicalized campaign spec: strategy, seed, iterations,
	// and workers are all filled in, so the worker derives engine options
	// without sharing configuration with the coordinator.
	Spec service.CampaignSpec `json:"spec"`
	// Snapshot is the last committed campaign snapshot (encoded), empty
	// for slice 0 and when elided (SnapshotElided).
	Snapshot []byte `json:"snapshot,omitempty"`
	// SnapshotElided marks a lease granted against the worker's advertised
	// warm state: the snapshot bytes are omitted because the worker already
	// holds the identical campaign state in memory.
	SnapshotElided bool `json:"snapshot_elided,omitempty"`
	// Rounds is the energy-round budget of this slice.
	Rounds int `json:"rounds"`
	// TTLMillis is the lease lifetime; heartbeats reset it.
	TTLMillis int64 `json:"ttl_millis"`
	// Bucket is the campaign's seed-sharing bucket.
	Bucket string `json:"bucket"`
	// Imports are pollination seeds from sibling campaigns of the same
	// bucket that this campaign has not seen. The worker injects them
	// before recording begins and echoes the injected fingerprints in its
	// commit.
	Imports []SeedObject `json:"imports,omitempty"`
	// Pollinate asks the worker to fingerprint and export the slice's new
	// queue sequences. False when the coordinator has no store — the
	// exports would be dropped, so the worker skips the detached
	// fingerprinting replays entirely.
	Pollinate bool `json:"pollinate,omitempty"`
	// Record asks the worker to record the slice's conformance chunk.
	// False for campaigns submitted with NoTranscript.
	Record bool `json:"record,omitempty"`
}

// SeedObject is one corpus seed in flight: an encoded transaction sequence
// addressed by the fingerprint of the branch-edge set it covers. The
// fingerprint makes every transfer idempotent — stores deduplicate by it.
type SeedObject struct {
	Fingerprint string `json:"fingerprint"`
	Payload     []byte `json:"payload"`
}

// SliceProgress is the worker's progress report accompanying a commit,
// merged into the campaign's status.
type SliceProgress struct {
	Executions   int      `json:"executions"`
	Coverage     float64  `json:"coverage"`
	CoveredEdges int      `json:"covered_edges"`
	TotalEdges   int      `json:"total_edges"`
	SeedQueueLen int      `json:"seed_queue_len"`
	Findings     int      `json:"findings"`
	Classes      []string `json:"classes,omitempty"`
}

// CompleteRequest commits one finished slice. The worker only sends it for
// slices the engine finished at its natural boundary; a slice interrupted
// by shutdown or a lost lease is abandoned instead (the coordinator
// re-grants from the last committed snapshot, preserving determinism).
type CompleteRequest struct {
	Worker string `json:"worker"`
	// Snapshot is the successor snapshot (encoded); required unless Done.
	Snapshot []byte `json:"snapshot,omitempty"`
	// Done reports the campaign finished during this slice.
	Done bool `json:"done"`
	// Records is the slice's conformance record chunk
	// (conformance.EncodeRecords), appended to the campaign transcript.
	Records []byte `json:"records,omitempty"`
	// Imported echoes the fingerprints of lease imports actually injected,
	// so the coordinator stops re-offering them.
	Imported []string `json:"imported,omitempty"`
	// Exports are novel seeds the slice discovered, fingerprinted by a
	// detached coverage replay.
	Exports []SeedObject `json:"exports,omitempty"`
	// Progress updates the campaign status.
	Progress SliceProgress `json:"progress"`
	// Findings carries the full findings with PoC call orders once Done.
	Findings []service.Finding `json:"findings,omitempty"`
	// Final is the transcript's final summary, required when Done.
	Final *conformance.Summary `json:"final,omitempty"`
}

// CompleteResponse acknowledges a commit.
type CompleteResponse struct {
	Committed bool `json:"committed"`
	// Duplicate reports the lease was already committed (idempotent
	// retry); the commit was acknowledged without reapplying.
	Duplicate bool `json:"duplicate,omitempty"`
	// CampaignDone reports the campaign reached a terminal state.
	CampaignDone bool `json:"campaign_done,omitempty"`
}

// SyncRequest pushes seeds into a bucket of the coordinator's store —
// cross-fleet pollination. Idempotent: seeds are content-addressed.
type SyncRequest struct {
	Seeds []SeedObject `json:"seeds"`
}

// SyncResponse reports how many pushed seeds were new.
type SyncResponse struct {
	Stored int `json:"stored"`
}

// errorBody is the JSON error envelope shared by all endpoints.
type errorBody struct {
	Error string `json:"error"`
}

// CanonicalizeSpec pins every spec field a worker's option derivation
// reads — strategy name, seed, iteration budget, executor fan-out — using
// the coordinator's instance defaults for omitted fields. Specs travel
// inside leases in this form, so coordinator, workers, and the single-node
// reference recording all derive identical engine options from the lease
// alone, with no shared configuration.
func CanonicalizeSpec(spec service.CampaignSpec, defaultIterations, defaultWorkers int) (service.CampaignSpec, error) {
	opts, err := service.SpecOptions(spec, defaultIterations, defaultWorkers)
	if err != nil {
		return spec, err
	}
	spec.Strategy = opts.Strategy.Name
	spec.Seed = opts.Seed
	spec.Iterations = opts.Iterations
	spec.Workers = opts.Workers
	return spec, nil
}
