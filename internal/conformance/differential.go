package conformance

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
)

// Divergence describes where two transcripts first disagree, minimized to
// the earliest observable difference: the first divergent execution record
// (everything before it is identical), or the final summary when every
// record matches. Class-level differences additionally carry minimized
// proof-of-concept sequences (see MinimizePoCs).
type Divergence struct {
	// Kind is "record" or "final".
	Kind string
	// Index is the first divergent record's execution index (Kind "record");
	// 0 for final-summary divergences. When one transcript simply has more
	// records than the other, Index is the first unmatched record.
	Index int
	// A and B render the divergent portion of each side.
	A, B string
	// ClassesOnlyA / ClassesOnlyB are final bug classes present in exactly
	// one side (empty unless the detector output diverged).
	ClassesOnlyA, ClassesOnlyB []string
	// MinimizedPoC maps a diverging class to the minimized call order that
	// still triggers it on the side that found it (filled by MinimizePoCs).
	MinimizedPoC map[string]string
}

func (d *Divergence) String() string {
	if d == nil {
		return "identical"
	}
	s := fmt.Sprintf("diverges at %s", d.Kind)
	if d.Kind == "record" {
		s += fmt.Sprintf(" %d", d.Index)
	}
	s += fmt.Sprintf("\n--- a\n%s\n--- b\n%s", d.A, d.B)
	if len(d.ClassesOnlyA) > 0 || len(d.ClassesOnlyB) > 0 {
		s += fmt.Sprintf("\nclasses only in a: %v, only in b: %v", d.ClassesOnlyA, d.ClassesOnlyB)
	}
	classes := make([]string, 0, len(d.MinimizedPoC))
	for class := range d.MinimizedPoC {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		s += fmt.Sprintf("\nminimized PoC %s: %s", class, d.MinimizedPoC[class])
	}
	return s
}

// renderRecord gives one record's canonical encoding (for divergence
// reports and record-stream comparison).
func renderRecord(r *Record) string {
	var b bytes.Buffer
	encodeRecord(&b, r)
	return b.String()
}

// Diff compares two transcripts record stream + final summary (contract and
// options lines are excluded: differential variants intentionally differ
// there). Returns nil when semantically identical.
func Diff(a, b *Transcript) *Divergence {
	n := len(a.Records)
	if len(b.Records) < n {
		n = len(b.Records)
	}
	for i := 0; i < n; i++ {
		ra, rb := renderRecord(&a.Records[i]), renderRecord(&b.Records[i])
		if ra != rb {
			return &Divergence{Kind: "record", Index: i + 1, A: ra, B: rb}
		}
	}
	if len(a.Records) != len(b.Records) {
		d := &Divergence{Kind: "record", Index: n + 1}
		if len(a.Records) > n {
			d.A = renderRecord(&a.Records[n])
			d.B = "(no record)"
		} else {
			d.A = "(no record)"
			d.B = renderRecord(&b.Records[n])
		}
		return d
	}
	fa, fb := finalString(&a.Final), finalString(&b.Final)
	if fa != fb {
		d := &Divergence{Kind: "final", A: fa, B: fb}
		d.ClassesOnlyA, d.ClassesOnlyB = diffStrings(a.Final.Classes, b.Final.Classes)
		return d
	}
	return nil
}

func finalString(f *Summary) string {
	t := Transcript{Version: Version, Final: *f}
	enc := t.EncodeBytes()
	i := bytes.Index(enc, []byte("final "))
	return string(enc[i:])
}

// diffStrings returns elements only in a and only in b (inputs sorted).
func diffStrings(a, b []string) (onlyA, onlyB []string) {
	in := func(xs []string, x string) bool {
		i := sort.SearchStrings(xs, x)
		return i < len(xs) && xs[i] == x
	}
	for _, x := range a {
		if !in(b, x) {
			onlyA = append(onlyA, x)
		}
	}
	for _, x := range b {
		if !in(a, x) {
			onlyB = append(onlyB, x)
		}
	}
	return
}

// MinimizePoCs fills d.MinimizedPoC for every class present in exactly one
// side, using that side's campaign to shrink its recorded proof of concept
// to the fewest transactions that still trigger the class on replay.
func MinimizePoCs(d *Divergence, a, b *Run) {
	if d == nil {
		return
	}
	minimize := func(run *Run, classes []string) {
		for _, cs := range classes {
			class := oracle.BugClass(cs)
			seq, ok := run.Result.Repro[class]
			if !ok {
				continue
			}
			min := run.Campaign.MinimizeForBug(seq, class)
			if d.MinimizedPoC == nil {
				d.MinimizedPoC = make(map[string]string)
			}
			d.MinimizedPoC[cs] = callOrder(min)
		}
	}
	minimize(a, d.ClassesOnlyA)
	minimize(b, d.ClassesOnlyB)
}

// Variant is one engine configuration of the differential matrix.
type Variant struct {
	Name  string
	Apply func(fuzz.Options) fuzz.Options
}

// SequentialVariants returns the sequential-schedule equivalence class: the
// classic Workers=1 engine (reference) against the same schedule with the
// copy-on-write layer swapped for deep copies, and with the prefix cache
// disabled. All three must produce byte-identical transcripts.
func SequentialVariants() []Variant {
	return []Variant{
		{"seq-w1", func(o fuzz.Options) fuzz.Options {
			o.Workers = 1
			o.ForceBatched = false
			return o
		}},
		{"seq-w1-copystate", func(o fuzz.Options) fuzz.Options {
			o.Workers = 1
			o.ForceBatched = false
			o.UseCopyState = true
			return o
		}},
		{"seq-w1-nocache", func(o fuzz.Options) fuzz.Options {
			o.Workers = 1
			o.ForceBatched = false
			o.NoPrefixCache = true
			return o
		}},
		{"seq-w1-noir", func(o fuzz.Options) fuzz.Options {
			o.Workers = 1
			o.ForceBatched = false
			o.NoIR = true
			return o
		}},
	}
}

// BatchedVariants returns the batched-schedule equivalence class: the
// pipelined engine pinned to one worker (reference) against the pipelined
// engine at N workers, the legacy fork-join barrier engine (NoPipeline) at
// both widths, and the N-worker pipeline on deep copies, without the prefix
// cache, and without the IR. The batched schedule is a pure function of the
// campaign seed, so every variant must produce byte-identical transcripts
// regardless of engine shape, worker count, or executor completion order —
// the end-to-end proof that the persistent pool, the streaming in-order
// fold, and the speculative line search changed nothing observable.
func BatchedVariants(workers int) []Variant {
	return []Variant{
		{"pipelined-w1", func(o fuzz.Options) fuzz.Options {
			o.Workers = 1
			o.ForceBatched = true
			return o
		}},
		{fmt.Sprintf("pipelined-w%d", workers), func(o fuzz.Options) fuzz.Options {
			o.Workers = workers
			return o
		}},
		{"barrier-w1", func(o fuzz.Options) fuzz.Options {
			o.Workers = 1
			o.ForceBatched = true
			o.NoPipeline = true
			return o
		}},
		{fmt.Sprintf("barrier-w%d", workers), func(o fuzz.Options) fuzz.Options {
			o.Workers = workers
			o.NoPipeline = true
			return o
		}},
		{fmt.Sprintf("pipelined-w%d-copystate", workers), func(o fuzz.Options) fuzz.Options {
			o.Workers = workers
			o.UseCopyState = true
			return o
		}},
		{fmt.Sprintf("pipelined-w%d-nocache", workers), func(o fuzz.Options) fuzz.Options {
			o.Workers = workers
			o.NoPrefixCache = true
			return o
		}},
		{fmt.Sprintf("pipelined-w%d-noir", workers), func(o fuzz.Options) fuzz.Options {
			o.Workers = workers
			o.NoIR = true
			return o
		}},
	}
}

// WorldDifferentialMatrix runs the batched equivalence class on a
// multi-contract world campaign: the pipelined engine pinned to one worker
// ("world-w1", ForceBatched) against the same world at N workers
// ("world-wN"). Multi-contract deployment, cross-contract callee routing,
// and attacker-spec compilation all execute on the worker side, so the pair
// proves none of them leaks schedule nondeterminism. mk builds a fresh
// (target, world) pair per recording — world options carry live member
// targets and an attacker model, which must not be shared across engines.
func WorldDifferentialMatrix(name string, mk func() (fuzz.Target, *fuzz.WorldOptions), base fuzz.Options, workers int) []PairResult {
	if workers < 2 {
		workers = 2
	}
	base.ForceBatched = false
	base.UseCopyState = false
	base.NoPrefixCache = false
	base.NoIR = false
	base.NoPipeline = false
	record := func(apply func(fuzz.Options) fuzz.Options) *Run {
		t, w := mk()
		o := apply(base)
		o.World = w
		return RecordTargetCampaign(name, t, o)
	}
	ref := record(func(o fuzz.Options) fuzz.Options {
		o.Workers = 1
		o.ForceBatched = true
		return o
	})
	run := record(func(o fuzz.Options) fuzz.Options {
		o.Workers = workers
		return o
	})
	d := Diff(ref.Transcript, run.Transcript)
	if d != nil {
		MinimizePoCs(d, ref, run)
	}
	return []PairResult{{
		Contract:   name,
		Reference:  "world-w1",
		Variant:    fmt.Sprintf("world-w%d", workers),
		Equal:      d == nil,
		Divergence: d,
	}}
}

// PairResult is one (reference, variant) comparison of the matrix.
type PairResult struct {
	Contract   string
	Reference  string
	Variant    string
	Equal      bool
	Divergence *Divergence
}

// DifferentialMatrix runs both equivalence classes on one contract and
// compares every variant against its class reference. workers selects the
// parallel fan-out of the batched class (values < 2 are raised to 2 so the
// matrix genuinely exercises concurrency).
func DifferentialMatrix(name string, comp *minisol.Compiled, base fuzz.Options, workers int) []PairResult {
	if workers < 2 {
		workers = 2
	}
	// The matrix owns the engine-variant dimensions; a base carrying one of
	// them would silently collapse an equivalence class onto itself.
	base.ForceBatched = false
	base.UseCopyState = false
	base.NoPrefixCache = false
	base.NoIR = false
	base.NoPipeline = false
	var out []PairResult
	for _, class := range [][]Variant{SequentialVariants(), BatchedVariants(workers)} {
		ref := RecordCampaign(name, comp, class[0].Apply(base))
		for _, v := range class[1:] {
			run := RecordCampaign(name, comp, v.Apply(base))
			d := Diff(ref.Transcript, run.Transcript)
			if d != nil {
				MinimizePoCs(d, ref, run)
			}
			out = append(out, PairResult{
				Contract:   name,
				Reference:  class[0].Name,
				Variant:    v.Name,
				Equal:      d == nil,
				Divergence: d,
			})
		}
	}
	return out
}

// StrategyRow is one preset's outcome in the strategy matrix, diffed against
// the MuFuzz reference. Presets are expected to diverge — the diff is the
// paper's ablation story, reported for inspection rather than gated.
type StrategyRow struct {
	Strategy        string
	Covered         int
	TotalEdges      int
	Executions      int
	Classes         []string
	EdgesOnlyHere   int
	EdgesOnlyRef    int
	ClassesOnlyHere []string
	ClassesOnlyRef  []string
}

// StrategyMatrix runs the five strategy presets on one contract under the
// same (seed, budget) and diffs each against the MuFuzz reference: final
// coverage sets, crash/detector output.
func StrategyMatrix(name string, comp *minisol.Compiled, base fuzz.Options) []StrategyRow {
	presets := []fuzz.Strategy{fuzz.MuFuzz(), fuzz.IRFuzz(), fuzz.ConFuzzius(), fuzz.SFuzz(), fuzz.Smartian()}
	runs := make([]*Run, len(presets))
	for i, s := range presets {
		o := base
		o.Strategy = s
		o.Workers = 1
		runs[i] = RecordCampaign(name, comp, o)
	}
	ref := runs[0].Transcript.Final
	refEdges := edgeSet(ref.Edges)
	rows := make([]StrategyRow, len(runs))
	for i, run := range runs {
		f := run.Transcript.Final
		row := StrategyRow{
			Strategy:   presets[i].Name,
			Covered:    f.CoveredEdges,
			TotalEdges: f.TotalEdges,
			Executions: f.Executions,
			Classes:    f.Classes,
		}
		here := edgeSet(f.Edges)
		for e := range here {
			if !refEdges[e] {
				row.EdgesOnlyHere++
			}
		}
		for e := range refEdges {
			if !here[e] {
				row.EdgesOnlyRef++
			}
		}
		row.ClassesOnlyHere, row.ClassesOnlyRef = diffStrings(f.Classes, ref.Classes)
		rows[i] = row
	}
	return rows
}

func edgeSet(edges []fuzz.BranchEdge) map[fuzz.BranchEdge]bool {
	out := make(map[fuzz.BranchEdge]bool, len(edges))
	for _, e := range edges {
		out[e] = true
	}
	return out
}

// PrintMatrix renders differential results as a table, with divergence
// details for failing pairs.
func PrintMatrix(w io.Writer, results []PairResult) {
	fmt.Fprintf(w, "Differential matrix — engine variants must be execution-for-execution identical\n")
	for _, r := range results {
		verdict := "IDENTICAL"
		if !r.Equal {
			verdict = "DIVERGED"
		}
		fmt.Fprintf(w, "  %-22s %-22s vs %-22s %s\n", r.Contract, r.Variant, r.Reference, verdict)
	}
	for _, r := range results {
		if !r.Equal {
			fmt.Fprintf(w, "\n%s: %s vs %s %s\n", r.Contract, r.Variant, r.Reference, r.Divergence)
		}
	}
}

// PrintStrategies renders the strategy matrix.
func PrintStrategies(w io.Writer, name string, rows []StrategyRow) {
	fmt.Fprintf(w, "Strategy matrix on %s — presets diffed against MuFuzz (divergence expected)\n", name)
	fmt.Fprintf(w, "  %-12s %8s %8s %8s %6s %6s  %s\n", "preset", "covered", "total", "execs", "+edge", "-edge", "classes")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %8d %8d %8d %6d %6d  %v\n",
			r.Strategy, r.Covered, r.TotalEdges, r.Executions, r.EdgesOnlyHere, r.EdgesOnlyRef, r.Classes)
	}
}
