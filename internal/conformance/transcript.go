// Package conformance is the repo's machine-checked correctness story for
// the fuzzing engine. After two aggressive engine refactors (the parallel
// coordinator/executor split and the copy-on-write state layer), a single
// workers=1 golden fingerprint is not enough of a semantic pin. This package
// provides three instruments:
//
//   - Deterministic campaign transcripts: a versioned, byte-stable recording
//     of every execution a campaign performed — the sequence run, the
//     coverage delta, the oracle classes discovered — replayable to a
//     byte-identical re-recording (Record / ReplayCheck) and re-executable
//     through a detached engine for independent verification
//     (VerifySequences).
//
//   - A differential runner (DifferentialMatrix) that executes the same
//     (contract, seed, budget) under engine variants — workers ∈ {1, N},
//     State.Fork vs State.Copy, prefix cache on/off — and proves their
//     coverage sets, crash sets, and detector output identical, with
//     minimized divergence reports when they are not. StrategyMatrix runs
//     the five strategy presets and diffs their (intentionally different)
//     results for inspection.
//
//   - Wiring for the corpus-wide detection gates in internal/experiments:
//     see experiments.DetectionGate.
//
// Every future perf PR gets an equivalence proof instead of hand-inspection.
package conformance

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"fmt"
	"io"
	"math/big"
	"sort"
	"strconv"
	"strings"

	"mufuzz/internal/fuzz"
	"mufuzz/internal/oracle"
	"mufuzz/internal/u256"
)

// Version is the transcript format version this package reads and writes.
const Version = 1

// magic is the first line of every encoded transcript.
const magic = "mufuzz-transcript"

// OptionsSummary pins the campaign configuration a transcript was recorded
// under: the defaults-applied form of every Options field that influences
// the deterministic schedule. Strategy is recorded by preset name only
// (replay resolves it through StrategyByName), and TimeBudget is absent by
// construction — RecordCampaign rejects wall-clock-bounded campaigns.
type OptionsSummary struct {
	Strategy      string
	Seed          int64
	Iterations    int
	MaxSeqLen     int
	GasPerTx      uint64
	EnergyBase    int
	InitialSeeds  int
	Workers       int
	ForceBatched  bool
	UseCopyState  bool
	NoPrefixCache bool
	// World summarizes a multi-contract world ("member,member;attacker"),
	// empty for single-contract campaigns. The live member targets and
	// attacker model are not replayable from a transcript alone; the token
	// pins that a world was in play and its shape.
	World string
}

// Tx is the serialized form of one transaction of a recorded sequence.
// Callee and Attacker are the multi-contract world extensions: plain
// transactions keep both at their zero values and serialize in the
// historical 5-field line form.
type Tx struct {
	Func     string
	Args     []byte
	Value    u256.Int
	Sender   int
	Callee   int
	Attacker []byte
}

// Record is the serialized form of one fuzz.ExecRecord.
type Record struct {
	Index        int
	Seq          []Tx
	NewEdges     []fuzz.BranchEdge
	CoveredAfter int
	NestedDepth  int
	DistImproved bool
	NewClasses   []string
}

// Summary captures the deterministic portion of a campaign's final Result,
// plus the full covered-edge set (the coverage outcome the differential
// runner diffs).
type Summary struct {
	CoveredEdges     int
	TotalEdges       int
	Executions       int
	SeedQueueLen     int
	MasksComputed    int
	SequencesMutated int
	Classes          []string // sorted bug classes
	Findings         []string // sorted "CLASS|PC|description" lines
	Repro            []string // sorted "CLASS fn>fn>fn" proof-of-concept call orders
	Edges            []fuzz.BranchEdge
}

// Transcript is a complete deterministic recording of one campaign.
type Transcript struct {
	Version  int
	Contract string
	Options  OptionsSummary
	Records  []Record
	Final    Summary
}

// summarizeOptions projects the schedule-relevant fields of fuzz.Options.
// The Options must already have defaults applied the way the campaign sees
// them; RecordCampaign normalizes before recording.
func summarizeOptions(o fuzz.Options) OptionsSummary {
	return OptionsSummary{
		Strategy:      o.Strategy.Name,
		Seed:          o.Seed,
		Iterations:    o.Iterations,
		MaxSeqLen:     o.MaxSeqLen,
		GasPerTx:      o.GasPerTx,
		EnergyBase:    o.EnergyBase,
		InitialSeeds:  o.InitialSeeds,
		Workers:       o.Workers,
		ForceBatched:  o.ForceBatched,
		UseCopyState:  o.UseCopyState,
		NoPrefixCache: o.NoPrefixCache,
		World:         worldToken(o.World),
	}
}

// worldToken renders a world configuration as the options-line token:
// member names in declaration order, ";attacker" appended when attacker
// synthesis is on. Empty for plain campaigns.
func worldToken(w *fuzz.WorldOptions) string {
	if w == nil {
		return ""
	}
	names := make([]string, len(w.Members))
	for i, m := range w.Members {
		names[i] = m.Name
	}
	s := strings.Join(names, ",")
	if w.Attacker != nil {
		s += ";attacker"
	}
	return s
}

// sequenceToTxs converts an engine sequence into its serialized form.
func sequenceToTxs(seq fuzz.Sequence) []Tx {
	out := make([]Tx, len(seq))
	for i, t := range seq {
		out[i] = Tx{
			Func:     t.Func,
			Args:     append([]byte(nil), t.Args...),
			Value:    t.Value,
			Sender:   t.Sender,
			Callee:   t.Callee,
			Attacker: append([]byte(nil), t.Attacker...),
		}
	}
	return out
}

// Sequence rebuilds the engine sequence of a record (for standalone replay).
func (r *Record) Sequence() fuzz.Sequence {
	seq := make(fuzz.Sequence, len(r.Seq))
	for i, t := range r.Seq {
		seq[i] = fuzz.TxInput{
			Func:     t.Func,
			Args:     append([]byte(nil), t.Args...),
			Value:    t.Value,
			Sender:   t.Sender,
			Callee:   t.Callee,
			Attacker: append([]byte(nil), t.Attacker...),
		}
	}
	return seq
}

// sortEdges orders a covered-edge set canonically (PC ascending, not-taken
// before taken) — the same deterministic branch order the engine uses.
func sortEdges(edges []fuzz.BranchEdge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].PC != edges[j].PC {
			return edges[i].PC < edges[j].PC
		}
		return !edges[i].Taken && edges[j].Taken
	})
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

func hexOrDash(b []byte) string {
	if len(b) == 0 {
		return "-"
	}
	return hex.EncodeToString(b)
}

// Encode writes the transcript in the stable v1 text encoding. Encoding the
// same transcript always produces the same bytes, so byte equality of two
// encodings is the package's definition of "identical campaigns".
func (t *Transcript) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	encodeHeader(bw, t.Version, t.Contract, t.Options)
	for i := range t.Records {
		encodeRecord(bw, &t.Records[i])
	}
	encodeFinal(bw, &t.Final)
	return bw.Flush()
}

// encodeHeader writes the magic, contract, and options lines — shared by
// Encode and EncodeAssembled so assembled transcripts can never drift from
// the canonical header format.
func encodeHeader(bw *bufio.Writer, version int, contract string, o OptionsSummary) {
	fmt.Fprintf(bw, "%s v%d\n", magic, version)
	fmt.Fprintf(bw, "contract %s\n", contract)
	fmt.Fprintf(bw, "options strategy=%q seed=%d iters=%d maxseq=%d gas=%d energy=%d initseeds=%d workers=%d batched=%d copystate=%d nocache=%d",
		o.Strategy, o.Seed, o.Iterations, o.MaxSeqLen, o.GasPerTx, o.EnergyBase,
		o.InitialSeeds, o.Workers, boolBit(o.ForceBatched), boolBit(o.UseCopyState), boolBit(o.NoPrefixCache))
	if o.World != "" {
		fmt.Fprintf(bw, " world=%q", o.World)
	}
	fmt.Fprintf(bw, "\n")
}

// encodeFinal writes the final-summary trailer — shared by Encode and
// EncodeAssembled.
func encodeFinal(bw *bufio.Writer, f *Summary) {
	fmt.Fprintf(bw, "final covered=%d total=%d execs=%d queue=%d masks=%d seqmut=%d\n",
		f.CoveredEdges, f.TotalEdges, f.Executions, f.SeedQueueLen, f.MasksComputed, f.SequencesMutated)
	fmt.Fprintf(bw, "classes %s\n", strings.Join(f.Classes, ","))
	for _, fd := range f.Findings {
		fmt.Fprintf(bw, "finding %s\n", fd)
	}
	for _, rp := range f.Repro {
		fmt.Fprintf(bw, "repro %s\n", rp)
	}
	for _, e := range f.Edges {
		fmt.Fprintf(bw, "fedge %d %d\n", e.PC, boolBit(e.Taken))
	}
	fmt.Fprintf(bw, "eof\n")
}

// EncodeAssembled writes a transcript whose record section is supplied as
// already-encoded chunks (EncodeRecords output), spliced in verbatim between
// the canonical header and trailer. This is how the fleet coordinator
// assembles a campaign transcript from slice commits without re-encoding —
// byte-identical to Encode on the equivalent in-memory Transcript because
// chunk concatenation in commit order IS the record section.
func EncodeAssembled(w io.Writer, contract string, opts OptionsSummary, chunks [][]byte, final Summary) error {
	bw := bufio.NewWriter(w)
	encodeHeader(bw, Version, contract, opts)
	for _, ch := range chunks {
		if _, err := bw.Write(ch); err != nil {
			return err
		}
	}
	encodeFinal(bw, &final)
	return bw.Flush()
}

// encodeRecord writes one record's canonical lines — the unit both the full
// Encode and per-record divergence rendering share, so record comparison can
// never drift from the on-disk format. Records are the bulk of every
// transcript and fleet workers encode one per execution, so the lines are
// built with manual appends rather than fmt (≈5× cheaper, identical bytes).
func encodeRecord(w io.Writer, r *Record) {
	buf := make([]byte, 0, 64+len(r.Seq)*48+len(r.NewEdges)*12)
	buf = append(buf, "rec "...)
	buf = strconv.AppendInt(buf, int64(r.Index), 10)
	buf = append(buf, " nested="...)
	buf = strconv.AppendInt(buf, int64(r.NestedDepth), 10)
	buf = append(buf, " dist="...)
	buf = strconv.AppendInt(buf, int64(boolBit(r.DistImproved)), 10)
	buf = append(buf, " covered="...)
	buf = strconv.AppendInt(buf, int64(r.CoveredAfter), 10)
	buf = append(buf, '\n')
	for i := range r.Seq {
		tx := &r.Seq[i]
		buf = append(buf, "tx "...)
		buf = append(buf, tx.Func...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(tx.Sender), 10)
		buf = append(buf, ' ')
		buf = tx.Value.AppendHex(buf)
		buf = append(buf, ' ')
		buf = appendHexOrDash(buf, tx.Args)
		if tx.Callee != 0 || len(tx.Attacker) != 0 {
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(tx.Callee), 10)
			buf = append(buf, ' ')
			buf = appendHexOrDash(buf, tx.Attacker)
		}
		buf = append(buf, '\n')
	}
	for _, e := range r.NewEdges {
		buf = append(buf, "edge "...)
		buf = strconv.AppendUint(buf, e.PC, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(boolBit(e.Taken)), 10)
		buf = append(buf, '\n')
	}
	for _, c := range r.NewClasses {
		buf = append(buf, "class "...)
		buf = append(buf, c...)
		buf = append(buf, '\n')
	}
	buf = append(buf, "end\n"...)
	_, _ = w.Write(buf)
}

// appendHexOrDash appends hexOrDash(b) without the intermediate string.
func appendHexOrDash(buf, b []byte) []byte {
	if len(b) == 0 {
		return append(buf, '-')
	}
	n := len(buf)
	buf = append(buf, make([]byte, hex.EncodedLen(len(b)))...)
	hex.Encode(buf[n:], b)
	return buf
}

// EncodeBytes renders the transcript to its canonical byte form.
func (t *Transcript) EncodeBytes() []byte {
	var buf bytes.Buffer
	_ = t.Encode(&buf)
	return buf.Bytes()
}

// decodeErr wraps a decoding failure with the offending line.
func decodeErr(line string, format string, args ...any) error {
	return fmt.Errorf("conformance: decode %q: %s", line, fmt.Sprintf(format, args...))
}

func parseU256(s string) (u256.Int, error) {
	n, ok := new(big.Int).SetString(s, 0)
	if !ok {
		return u256.Int{}, fmt.Errorf("bad u256 %q", s)
	}
	return u256.FromBig(n), nil
}

func parseHexOrDash(s string) ([]byte, error) {
	if s == "-" {
		return nil, nil
	}
	return hex.DecodeString(s)
}

// Decode parses a transcript from its v1 text encoding.
func Decode(r io.Reader) (*Transcript, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	t := &Transcript{}
	readLine := func() (string, bool) {
		if !sc.Scan() {
			return "", false
		}
		return sc.Text(), true
	}

	line, ok := readLine()
	if !ok || !strings.HasPrefix(line, magic+" v") {
		return nil, decodeErr(line, "missing %s header", magic)
	}
	v, err := strconv.Atoi(strings.TrimPrefix(line, magic+" v"))
	if err != nil || v != Version {
		return nil, decodeErr(line, "unsupported version")
	}
	t.Version = v

	line, ok = readLine()
	if !ok || !strings.HasPrefix(line, "contract ") {
		return nil, decodeErr(line, "missing contract line")
	}
	t.Contract = strings.TrimPrefix(line, "contract ")

	line, ok = readLine()
	if !ok || !strings.HasPrefix(line, "options ") {
		return nil, decodeErr(line, "missing options line")
	}
	if _, err := fmt.Sscanf(line, "options strategy=%q seed=%d iters=%d maxseq=%d gas=%d energy=%d initseeds=%d workers=%d batched=%d copystate=%d nocache=%d",
		&t.Options.Strategy, &t.Options.Seed, &t.Options.Iterations, &t.Options.MaxSeqLen,
		&t.Options.GasPerTx, &t.Options.EnergyBase, &t.Options.InitialSeeds, &t.Options.Workers,
		new(int), new(int), new(int)); err != nil {
		return nil, decodeErr(line, "bad options: %v", err)
	}
	// Sscanf cannot target bools through %d; re-extract the three flags and
	// the optional trailing world token (member names carry no whitespace, so
	// the quoted token is a single field).
	for _, kv := range strings.Fields(line) {
		switch {
		case kv == "batched=1":
			t.Options.ForceBatched = true
		case kv == "copystate=1":
			t.Options.UseCopyState = true
		case kv == "nocache=1":
			t.Options.NoPrefixCache = true
		case strings.HasPrefix(kv, "world="):
			w, err := strconv.Unquote(strings.TrimPrefix(kv, "world="))
			if err != nil {
				return nil, decodeErr(line, "bad world token: %v", err)
			}
			t.Options.World = w
		}
	}
	if _, ok := lookupStrategy(t.Options.Strategy); !ok {
		return nil, decodeErr(line, "unknown strategy %q", t.Options.Strategy)
	}

	rs := &recordScanner{}
	for {
		line, ok = readLine()
		if !ok {
			return nil, decodeErr("", "truncated transcript (no eof)")
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return nil, decodeErr(line, "blank line")
		}
		if handled, err := rs.feed(line, fields); err != nil {
			return nil, err
		} else if handled {
			t.Records = rs.records
			continue
		}
		switch fields[0] {
		case "final":
			if rs.open() {
				return nil, decodeErr(line, "final inside rec")
			}
			if _, err := fmt.Sscanf(line, "final covered=%d total=%d execs=%d queue=%d masks=%d seqmut=%d",
				&t.Final.CoveredEdges, &t.Final.TotalEdges, &t.Final.Executions,
				&t.Final.SeedQueueLen, &t.Final.MasksComputed, &t.Final.SequencesMutated); err != nil {
				return nil, decodeErr(line, "bad final: %v", err)
			}
			// trailer: classes, findings, repro, fedges, eof
			for {
				line, ok = readLine()
				if !ok {
					return nil, decodeErr("", "truncated trailer")
				}
				switch {
				case line == "eof":
					return t, nil
				case strings.HasPrefix(line, "classes "):
					s := strings.TrimPrefix(line, "classes ")
					if s != "" {
						t.Final.Classes = strings.Split(s, ",")
					}
				case line == "classes":
					// no classes found
				case strings.HasPrefix(line, "finding "):
					t.Final.Findings = append(t.Final.Findings, strings.TrimPrefix(line, "finding "))
				case strings.HasPrefix(line, "repro "):
					t.Final.Repro = append(t.Final.Repro, strings.TrimPrefix(line, "repro "))
				case strings.HasPrefix(line, "fedge "):
					var pc uint64
					var taken int
					if _, err := fmt.Sscanf(line, "fedge %d %d", &pc, &taken); err != nil {
						return nil, decodeErr(line, "bad fedge: %v", err)
					}
					t.Final.Edges = append(t.Final.Edges, fuzz.BranchEdge{PC: pc, Taken: taken == 1})
				default:
					return nil, decodeErr(line, "unexpected trailer line")
				}
			}
		default:
			return nil, decodeErr(line, "unexpected line")
		}
	}
}

// recordScanner parses the canonical record lines (rec/tx/edge/class/end)
// shared by full transcripts and standalone record chunks. Decode and
// DecodeRecords both feed lines through it, so the chunk format a fleet
// worker ships can never drift from the on-disk transcript format.
type recordScanner struct {
	records []Record
	inRec   bool
}

func (rs *recordScanner) open() bool { return rs.inRec }

func (rs *recordScanner) cur() *Record { return &rs.records[len(rs.records)-1] }

// feed consumes one line. It reports whether the line belonged to the record
// grammar; lines of the surrounding transcript grammar (options, final, eof)
// return handled=false for the caller to process.
func (rs *recordScanner) feed(line string, fields []string) (bool, error) {
	switch fields[0] {
	case "rec":
		if rs.inRec {
			return true, decodeErr(line, "rec inside rec")
		}
		r := Record{}
		if _, err := fmt.Sscanf(line, "rec %d nested=%d dist=%d covered=%d",
			&r.Index, &r.NestedDepth, new(int), &r.CoveredAfter); err != nil {
			return true, decodeErr(line, "bad rec: %v", err)
		}
		r.DistImproved = strings.Contains(line, "dist=1")
		rs.records = append(rs.records, r)
		rs.inRec = true
	case "tx":
		if !rs.inRec || (len(fields) != 5 && len(fields) != 7) {
			return true, decodeErr(line, "tx outside rec or malformed")
		}
		sender, err := strconv.Atoi(fields[2])
		if err != nil {
			return true, decodeErr(line, "bad sender: %v", err)
		}
		val, err := parseU256(fields[3])
		if err != nil {
			return true, decodeErr(line, "bad value: %v", err)
		}
		args, err := parseHexOrDash(fields[4])
		if err != nil {
			return true, decodeErr(line, "bad args: %v", err)
		}
		tx := Tx{Func: fields[1], Sender: sender, Value: val, Args: args}
		if len(fields) == 7 {
			tx.Callee, err = strconv.Atoi(fields[5])
			if err != nil || tx.Callee < 0 {
				return true, decodeErr(line, "bad callee")
			}
			tx.Attacker, err = parseHexOrDash(fields[6])
			if err != nil {
				return true, decodeErr(line, "bad attacker spec: %v", err)
			}
		}
		rs.cur().Seq = append(rs.cur().Seq, tx)
	case "edge":
		if !rs.inRec || len(fields) != 3 {
			return true, decodeErr(line, "edge outside rec or malformed")
		}
		pc, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return true, decodeErr(line, "bad pc: %v", err)
		}
		rs.cur().NewEdges = append(rs.cur().NewEdges, fuzz.BranchEdge{PC: pc, Taken: fields[2] == "1"})
	case "class":
		if !rs.inRec || len(fields) != 2 {
			return true, decodeErr(line, "class outside rec or malformed")
		}
		rs.cur().NewClasses = append(rs.cur().NewClasses, fields[1])
	case "end":
		if !rs.inRec {
			return true, decodeErr(line, "end outside rec")
		}
		rs.inRec = false
	default:
		return false, nil
	}
	return true, nil
}

// EncodeRecords renders a record slice in the canonical record-line encoding
// — the transcript chunk a fleet worker returns with each completed slice.
// Concatenating every slice's chunk in commit order reproduces the record
// section of the uninterrupted campaign's transcript byte for byte.
func EncodeRecords(records []Record) []byte {
	var buf bytes.Buffer
	for i := range records {
		encodeRecord(&buf, &records[i])
	}
	return buf.Bytes()
}

// DecodeRecords parses a standalone record chunk produced by EncodeRecords.
func DecodeRecords(data []byte) ([]Record, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	rs := &recordScanner{}
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return nil, decodeErr(line, "blank line")
		}
		handled, err := rs.feed(line, fields)
		if err != nil {
			return nil, err
		}
		if !handled {
			return nil, decodeErr(line, "unexpected line in record chunk")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("conformance: decode records: %w", err)
	}
	if rs.open() {
		return nil, decodeErr("", "truncated record chunk (no end)")
	}
	return rs.records, nil
}

// ChunkStats summarizes an EncodeRecords chunk: the first and last record
// indexes and the record count. Zero-valued for an empty chunk.
type ChunkStats struct {
	First int
	Last  int
	Count int
}

// ScanRecordChunk shallowly validates a record chunk — line grammar
// (rec/tx/edge/class/end prefixes) and rec/end nesting — and extracts the
// record indexes, without parsing transaction payloads. The fleet
// coordinator runs it on every slice commit to check chunk continuity;
// it is an order of magnitude cheaper than DecodeRecords, which remains
// the full semantic parse for replay tooling.
func ScanRecordChunk(data []byte) (ChunkStats, error) {
	var st ChunkStats
	inRec := false
	for len(data) > 0 {
		line := data
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			line = data[:nl]
			data = data[nl+1:]
		} else {
			data = nil
		}
		switch {
		case bytes.HasPrefix(line, []byte("rec ")):
			if inRec {
				return st, decodeErr(string(line), "rec inside rec")
			}
			rest := line[4:]
			sp := bytes.IndexByte(rest, ' ')
			if sp < 0 {
				return st, decodeErr(string(line), "bad rec")
			}
			idx, err := strconv.Atoi(string(rest[:sp]))
			if err != nil {
				return st, decodeErr(string(line), "bad rec index: %v", err)
			}
			if st.Count == 0 {
				st.First = idx
			}
			st.Last = idx
			st.Count++
			inRec = true
		case bytes.Equal(line, []byte("end")):
			if !inRec {
				return st, decodeErr(string(line), "end outside rec")
			}
			inRec = false
		case bytes.HasPrefix(line, []byte("tx ")),
			bytes.HasPrefix(line, []byte("edge ")),
			bytes.HasPrefix(line, []byte("class ")):
			if !inRec {
				return st, decodeErr(string(line), "record line outside rec")
			}
		default:
			return st, decodeErr(string(line), "unexpected line in record chunk")
		}
	}
	if inRec {
		return st, decodeErr("", "truncated record chunk (no end)")
	}
	return st, nil
}

// classStrings renders a bug-class slice, preserving detection order (record
// streams are compared byte-for-byte, so recorded order is load-bearing).
func classStrings(classes []oracle.BugClass) []string {
	out := make([]string, len(classes))
	for i, c := range classes {
		out[i] = string(c)
	}
	return out
}
