// Package conformance is the repo's machine-checked correctness story for
// the fuzzing engine. After two aggressive engine refactors (the parallel
// coordinator/executor split and the copy-on-write state layer), a single
// workers=1 golden fingerprint is not enough of a semantic pin. This package
// provides three instruments:
//
//   - Deterministic campaign transcripts: a versioned, byte-stable recording
//     of every execution a campaign performed — the sequence run, the
//     coverage delta, the oracle classes discovered — replayable to a
//     byte-identical re-recording (Record / ReplayCheck) and re-executable
//     through a detached engine for independent verification
//     (VerifySequences).
//
//   - A differential runner (DifferentialMatrix) that executes the same
//     (contract, seed, budget) under engine variants — workers ∈ {1, N},
//     State.Fork vs State.Copy, prefix cache on/off — and proves their
//     coverage sets, crash sets, and detector output identical, with
//     minimized divergence reports when they are not. StrategyMatrix runs
//     the five strategy presets and diffs their (intentionally different)
//     results for inspection.
//
//   - Wiring for the corpus-wide detection gates in internal/experiments:
//     see experiments.DetectionGate.
//
// Every future perf PR gets an equivalence proof instead of hand-inspection.
package conformance

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"fmt"
	"io"
	"math/big"
	"sort"
	"strconv"
	"strings"

	"mufuzz/internal/fuzz"
	"mufuzz/internal/oracle"
	"mufuzz/internal/u256"
)

// Version is the transcript format version this package reads and writes.
const Version = 1

// magic is the first line of every encoded transcript.
const magic = "mufuzz-transcript"

// OptionsSummary pins the campaign configuration a transcript was recorded
// under: the defaults-applied form of every Options field that influences
// the deterministic schedule. Strategy is recorded by preset name only
// (replay resolves it through StrategyByName), and TimeBudget is absent by
// construction — RecordCampaign rejects wall-clock-bounded campaigns.
type OptionsSummary struct {
	Strategy      string
	Seed          int64
	Iterations    int
	MaxSeqLen     int
	GasPerTx      uint64
	EnergyBase    int
	InitialSeeds  int
	Workers       int
	ForceBatched  bool
	UseCopyState  bool
	NoPrefixCache bool
	// World summarizes a multi-contract world ("member,member;attacker"),
	// empty for single-contract campaigns. The live member targets and
	// attacker model are not replayable from a transcript alone; the token
	// pins that a world was in play and its shape.
	World string
}

// Tx is the serialized form of one transaction of a recorded sequence.
// Callee and Attacker are the multi-contract world extensions: plain
// transactions keep both at their zero values and serialize in the
// historical 5-field line form.
type Tx struct {
	Func     string
	Args     []byte
	Value    u256.Int
	Sender   int
	Callee   int
	Attacker []byte
}

// Record is the serialized form of one fuzz.ExecRecord.
type Record struct {
	Index        int
	Seq          []Tx
	NewEdges     []fuzz.BranchEdge
	CoveredAfter int
	NestedDepth  int
	DistImproved bool
	NewClasses   []string
}

// Summary captures the deterministic portion of a campaign's final Result,
// plus the full covered-edge set (the coverage outcome the differential
// runner diffs).
type Summary struct {
	CoveredEdges     int
	TotalEdges       int
	Executions       int
	SeedQueueLen     int
	MasksComputed    int
	SequencesMutated int
	Classes          []string // sorted bug classes
	Findings         []string // sorted "CLASS|PC|description" lines
	Repro            []string // sorted "CLASS fn>fn>fn" proof-of-concept call orders
	Edges            []fuzz.BranchEdge
}

// Transcript is a complete deterministic recording of one campaign.
type Transcript struct {
	Version  int
	Contract string
	Options  OptionsSummary
	Records  []Record
	Final    Summary
}

// summarizeOptions projects the schedule-relevant fields of fuzz.Options.
// The Options must already have defaults applied the way the campaign sees
// them; RecordCampaign normalizes before recording.
func summarizeOptions(o fuzz.Options) OptionsSummary {
	return OptionsSummary{
		Strategy:      o.Strategy.Name,
		Seed:          o.Seed,
		Iterations:    o.Iterations,
		MaxSeqLen:     o.MaxSeqLen,
		GasPerTx:      o.GasPerTx,
		EnergyBase:    o.EnergyBase,
		InitialSeeds:  o.InitialSeeds,
		Workers:       o.Workers,
		ForceBatched:  o.ForceBatched,
		UseCopyState:  o.UseCopyState,
		NoPrefixCache: o.NoPrefixCache,
		World:         worldToken(o.World),
	}
}

// worldToken renders a world configuration as the options-line token:
// member names in declaration order, ";attacker" appended when attacker
// synthesis is on. Empty for plain campaigns.
func worldToken(w *fuzz.WorldOptions) string {
	if w == nil {
		return ""
	}
	names := make([]string, len(w.Members))
	for i, m := range w.Members {
		names[i] = m.Name
	}
	s := strings.Join(names, ",")
	if w.Attacker != nil {
		s += ";attacker"
	}
	return s
}

// sequenceToTxs converts an engine sequence into its serialized form.
func sequenceToTxs(seq fuzz.Sequence) []Tx {
	out := make([]Tx, len(seq))
	for i, t := range seq {
		out[i] = Tx{
			Func:     t.Func,
			Args:     append([]byte(nil), t.Args...),
			Value:    t.Value,
			Sender:   t.Sender,
			Callee:   t.Callee,
			Attacker: append([]byte(nil), t.Attacker...),
		}
	}
	return out
}

// Sequence rebuilds the engine sequence of a record (for standalone replay).
func (r *Record) Sequence() fuzz.Sequence {
	seq := make(fuzz.Sequence, len(r.Seq))
	for i, t := range r.Seq {
		seq[i] = fuzz.TxInput{
			Func:     t.Func,
			Args:     append([]byte(nil), t.Args...),
			Value:    t.Value,
			Sender:   t.Sender,
			Callee:   t.Callee,
			Attacker: append([]byte(nil), t.Attacker...),
		}
	}
	return seq
}

// sortEdges orders a covered-edge set canonically (PC ascending, not-taken
// before taken) — the same deterministic branch order the engine uses.
func sortEdges(edges []fuzz.BranchEdge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].PC != edges[j].PC {
			return edges[i].PC < edges[j].PC
		}
		return !edges[i].Taken && edges[j].Taken
	})
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

func hexOrDash(b []byte) string {
	if len(b) == 0 {
		return "-"
	}
	return hex.EncodeToString(b)
}

// Encode writes the transcript in the stable v1 text encoding. Encoding the
// same transcript always produces the same bytes, so byte equality of two
// encodings is the package's definition of "identical campaigns".
func (t *Transcript) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s v%d\n", magic, t.Version)
	fmt.Fprintf(bw, "contract %s\n", t.Contract)
	o := t.Options
	fmt.Fprintf(bw, "options strategy=%q seed=%d iters=%d maxseq=%d gas=%d energy=%d initseeds=%d workers=%d batched=%d copystate=%d nocache=%d",
		o.Strategy, o.Seed, o.Iterations, o.MaxSeqLen, o.GasPerTx, o.EnergyBase,
		o.InitialSeeds, o.Workers, boolBit(o.ForceBatched), boolBit(o.UseCopyState), boolBit(o.NoPrefixCache))
	if o.World != "" {
		fmt.Fprintf(bw, " world=%q", o.World)
	}
	fmt.Fprintf(bw, "\n")
	for i := range t.Records {
		encodeRecord(bw, &t.Records[i])
	}
	f := t.Final
	fmt.Fprintf(bw, "final covered=%d total=%d execs=%d queue=%d masks=%d seqmut=%d\n",
		f.CoveredEdges, f.TotalEdges, f.Executions, f.SeedQueueLen, f.MasksComputed, f.SequencesMutated)
	fmt.Fprintf(bw, "classes %s\n", strings.Join(f.Classes, ","))
	for _, fd := range f.Findings {
		fmt.Fprintf(bw, "finding %s\n", fd)
	}
	for _, rp := range f.Repro {
		fmt.Fprintf(bw, "repro %s\n", rp)
	}
	for _, e := range f.Edges {
		fmt.Fprintf(bw, "fedge %d %d\n", e.PC, boolBit(e.Taken))
	}
	fmt.Fprintf(bw, "eof\n")
	return bw.Flush()
}

// encodeRecord writes one record's canonical lines — the unit both the full
// Encode and per-record divergence rendering share, so record comparison can
// never drift from the on-disk format.
func encodeRecord(w io.Writer, r *Record) {
	fmt.Fprintf(w, "rec %d nested=%d dist=%d covered=%d\n",
		r.Index, r.NestedDepth, boolBit(r.DistImproved), r.CoveredAfter)
	for _, tx := range r.Seq {
		if tx.Callee == 0 && len(tx.Attacker) == 0 {
			fmt.Fprintf(w, "tx %s %d %s %s\n", tx.Func, tx.Sender, tx.Value.Hex(), hexOrDash(tx.Args))
		} else {
			fmt.Fprintf(w, "tx %s %d %s %s %d %s\n", tx.Func, tx.Sender, tx.Value.Hex(), hexOrDash(tx.Args),
				tx.Callee, hexOrDash(tx.Attacker))
		}
	}
	for _, e := range r.NewEdges {
		fmt.Fprintf(w, "edge %d %d\n", e.PC, boolBit(e.Taken))
	}
	for _, c := range r.NewClasses {
		fmt.Fprintf(w, "class %s\n", c)
	}
	fmt.Fprintf(w, "end\n")
}

// EncodeBytes renders the transcript to its canonical byte form.
func (t *Transcript) EncodeBytes() []byte {
	var buf bytes.Buffer
	_ = t.Encode(&buf)
	return buf.Bytes()
}

// decodeErr wraps a decoding failure with the offending line.
func decodeErr(line string, format string, args ...any) error {
	return fmt.Errorf("conformance: decode %q: %s", line, fmt.Sprintf(format, args...))
}

func parseU256(s string) (u256.Int, error) {
	n, ok := new(big.Int).SetString(s, 0)
	if !ok {
		return u256.Int{}, fmt.Errorf("bad u256 %q", s)
	}
	return u256.FromBig(n), nil
}

func parseHexOrDash(s string) ([]byte, error) {
	if s == "-" {
		return nil, nil
	}
	return hex.DecodeString(s)
}

// Decode parses a transcript from its v1 text encoding.
func Decode(r io.Reader) (*Transcript, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	t := &Transcript{}
	readLine := func() (string, bool) {
		if !sc.Scan() {
			return "", false
		}
		return sc.Text(), true
	}

	line, ok := readLine()
	if !ok || !strings.HasPrefix(line, magic+" v") {
		return nil, decodeErr(line, "missing %s header", magic)
	}
	v, err := strconv.Atoi(strings.TrimPrefix(line, magic+" v"))
	if err != nil || v != Version {
		return nil, decodeErr(line, "unsupported version")
	}
	t.Version = v

	line, ok = readLine()
	if !ok || !strings.HasPrefix(line, "contract ") {
		return nil, decodeErr(line, "missing contract line")
	}
	t.Contract = strings.TrimPrefix(line, "contract ")

	line, ok = readLine()
	if !ok || !strings.HasPrefix(line, "options ") {
		return nil, decodeErr(line, "missing options line")
	}
	if _, err := fmt.Sscanf(line, "options strategy=%q seed=%d iters=%d maxseq=%d gas=%d energy=%d initseeds=%d workers=%d batched=%d copystate=%d nocache=%d",
		&t.Options.Strategy, &t.Options.Seed, &t.Options.Iterations, &t.Options.MaxSeqLen,
		&t.Options.GasPerTx, &t.Options.EnergyBase, &t.Options.InitialSeeds, &t.Options.Workers,
		new(int), new(int), new(int)); err != nil {
		return nil, decodeErr(line, "bad options: %v", err)
	}
	// Sscanf cannot target bools through %d; re-extract the three flags and
	// the optional trailing world token (member names carry no whitespace, so
	// the quoted token is a single field).
	for _, kv := range strings.Fields(line) {
		switch {
		case kv == "batched=1":
			t.Options.ForceBatched = true
		case kv == "copystate=1":
			t.Options.UseCopyState = true
		case kv == "nocache=1":
			t.Options.NoPrefixCache = true
		case strings.HasPrefix(kv, "world="):
			w, err := strconv.Unquote(strings.TrimPrefix(kv, "world="))
			if err != nil {
				return nil, decodeErr(line, "bad world token: %v", err)
			}
			t.Options.World = w
		}
	}
	if _, ok := lookupStrategy(t.Options.Strategy); !ok {
		return nil, decodeErr(line, "unknown strategy %q", t.Options.Strategy)
	}

	var cur *Record
	for {
		line, ok = readLine()
		if !ok {
			return nil, decodeErr("", "truncated transcript (no eof)")
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return nil, decodeErr(line, "blank line")
		}
		switch fields[0] {
		case "rec":
			if cur != nil {
				return nil, decodeErr(line, "rec inside rec")
			}
			r := Record{}
			if _, err := fmt.Sscanf(line, "rec %d nested=%d dist=%d covered=%d",
				&r.Index, &r.NestedDepth, new(int), &r.CoveredAfter); err != nil {
				return nil, decodeErr(line, "bad rec: %v", err)
			}
			r.DistImproved = strings.Contains(line, "dist=1")
			t.Records = append(t.Records, r)
			cur = &t.Records[len(t.Records)-1]
		case "tx":
			if cur == nil || (len(fields) != 5 && len(fields) != 7) {
				return nil, decodeErr(line, "tx outside rec or malformed")
			}
			sender, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, decodeErr(line, "bad sender: %v", err)
			}
			val, err := parseU256(fields[3])
			if err != nil {
				return nil, decodeErr(line, "bad value: %v", err)
			}
			args, err := parseHexOrDash(fields[4])
			if err != nil {
				return nil, decodeErr(line, "bad args: %v", err)
			}
			tx := Tx{Func: fields[1], Sender: sender, Value: val, Args: args}
			if len(fields) == 7 {
				tx.Callee, err = strconv.Atoi(fields[5])
				if err != nil || tx.Callee < 0 {
					return nil, decodeErr(line, "bad callee")
				}
				tx.Attacker, err = parseHexOrDash(fields[6])
				if err != nil {
					return nil, decodeErr(line, "bad attacker spec: %v", err)
				}
			}
			cur.Seq = append(cur.Seq, tx)
		case "edge":
			if cur == nil || len(fields) != 3 {
				return nil, decodeErr(line, "edge outside rec or malformed")
			}
			pc, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, decodeErr(line, "bad pc: %v", err)
			}
			cur.NewEdges = append(cur.NewEdges, fuzz.BranchEdge{PC: pc, Taken: fields[2] == "1"})
		case "class":
			if cur == nil || len(fields) != 2 {
				return nil, decodeErr(line, "class outside rec or malformed")
			}
			cur.NewClasses = append(cur.NewClasses, fields[1])
		case "end":
			if cur == nil {
				return nil, decodeErr(line, "end outside rec")
			}
			cur = nil
		case "final":
			if cur != nil {
				return nil, decodeErr(line, "final inside rec")
			}
			if _, err := fmt.Sscanf(line, "final covered=%d total=%d execs=%d queue=%d masks=%d seqmut=%d",
				&t.Final.CoveredEdges, &t.Final.TotalEdges, &t.Final.Executions,
				&t.Final.SeedQueueLen, &t.Final.MasksComputed, &t.Final.SequencesMutated); err != nil {
				return nil, decodeErr(line, "bad final: %v", err)
			}
			// trailer: classes, findings, repro, fedges, eof
			for {
				line, ok = readLine()
				if !ok {
					return nil, decodeErr("", "truncated trailer")
				}
				switch {
				case line == "eof":
					return t, nil
				case strings.HasPrefix(line, "classes "):
					s := strings.TrimPrefix(line, "classes ")
					if s != "" {
						t.Final.Classes = strings.Split(s, ",")
					}
				case line == "classes":
					// no classes found
				case strings.HasPrefix(line, "finding "):
					t.Final.Findings = append(t.Final.Findings, strings.TrimPrefix(line, "finding "))
				case strings.HasPrefix(line, "repro "):
					t.Final.Repro = append(t.Final.Repro, strings.TrimPrefix(line, "repro "))
				case strings.HasPrefix(line, "fedge "):
					var pc uint64
					var taken int
					if _, err := fmt.Sscanf(line, "fedge %d %d", &pc, &taken); err != nil {
						return nil, decodeErr(line, "bad fedge: %v", err)
					}
					t.Final.Edges = append(t.Final.Edges, fuzz.BranchEdge{PC: pc, Taken: taken == 1})
				default:
					return nil, decodeErr(line, "unexpected trailer line")
				}
			}
		default:
			return nil, decodeErr(line, "unexpected line")
		}
	}
}

// classStrings renders a bug-class slice, preserving detection order (record
// streams are compared byte-for-byte, so recorded order is load-bearing).
func classStrings(classes []oracle.BugClass) []string {
	out := make([]string, len(classes))
	for i, c := range classes {
		out[i] = string(c)
	}
	return out
}
