package conformance

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"

	"mufuzz/internal/evm"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
)

// Recorder implements fuzz.ExecObserver by accumulating serialized records.
// The coordinator calls OnExec on one goroutine in fold order, so no locking
// is needed. Fleet workers install one per leased slice and ship the
// accumulated chunk (EncodeRecords) back with the slice commit.
type Recorder struct {
	records []Record
}

// Records returns the accumulated records in execution order.
func (r *Recorder) Records() []Record { return r.records }

func (r *Recorder) OnExec(rec fuzz.ExecRecord) {
	r.records = append(r.records, Record{
		Index:        rec.Index,
		Seq:          sequenceToTxs(rec.Seq),
		NewEdges:     rec.NewEdges,
		CoveredAfter: rec.CoveredAfter,
		NestedDepth:  rec.NestedDepth,
		DistImproved: rec.DistImproved,
		NewClasses:   classStrings(rec.NewClasses),
	})
}

// Run is one recorded campaign: the live campaign (kept for replay and
// minimization), its result, and the transcript.
type Run struct {
	Name       string
	Campaign   *fuzz.Campaign
	Result     *fuzz.Result
	Transcript *Transcript
}

// RecordCampaign runs one campaign with a transcript recorder attached and
// returns the completed run. The passed Options' Observer field is
// overwritten, and the options are normalized (defaults applied) before
// recording so the transcript pins the exact configuration the engine ran
// under — not whatever the engine's defaults happen to be at replay time.
// Campaigns with a wall-clock TimeBudget are rejected: their stopping point
// is not a function of the seed, so they cannot replay deterministically.
func RecordCampaign(name string, comp *minisol.Compiled, opts fuzz.Options) *Run {
	return RecordTargetCampaign(name, fuzz.MinisolTarget(comp), opts)
}

// RecordTargetCampaign is RecordCampaign over any fuzz.Target — the entry
// point source-free (bytecode-ingested) campaigns are recorded through. The
// engine behind both entry points is one and the same coordinator, which is
// exactly what TestTargetAdapterConformance pins.
func RecordTargetCampaign(name string, target fuzz.Target, opts fuzz.Options) *Run {
	if opts.TimeBudget != 0 {
		panic("conformance: campaigns with a TimeBudget are not deterministically replayable; use Iterations")
	}
	opts = opts.Normalized()
	rec := &Recorder{}
	opts.Observer = rec
	c := fuzz.NewTargetCampaign(target, opts)
	res := c.Run()
	t := &Transcript{
		Version:  Version,
		Contract: name,
		Options:  summarizeOptions(opts),
		Records:  rec.records,
		Final:    summarize(c, res),
	}
	return &Run{Name: name, Campaign: c, Result: res, Transcript: t}
}

// RecordInterrupted is RecordCampaign under maximal interruption: the
// campaign is paused after every pauseRounds energy rounds, snapshotted
// through the full encode→decode round trip, torn down, and resumed from the
// decoded snapshot — the lifecycle a draining campaign service puts
// long-running campaigns through. The transcript spans all resumptions; by
// the snapshot/resume conformance guarantee it must be byte-identical to the
// uninterrupted RecordCampaign transcript of the same options.
func RecordInterrupted(name string, comp *minisol.Compiled, opts fuzz.Options, pauseRounds int) (*Run, error) {
	if opts.TimeBudget != 0 {
		panic("conformance: campaigns with a TimeBudget are not deterministically replayable; use Iterations")
	}
	opts = opts.Normalized()
	rec := &Recorder{}
	opts.Observer = rec
	c := fuzz.NewCampaign(comp, opts)
	var res *fuzz.Result
	for {
		var done bool
		res, done = c.RunSlice(context.Background(), pauseRounds)
		if done {
			break
		}
		snap, err := fuzz.DecodeSnapshot(bytes.NewReader(c.Snapshot().EncodeBytes()))
		if err != nil {
			return nil, fmt.Errorf("conformance: snapshot round trip: %w", err)
		}
		if c, err = fuzz.ResumeCampaign(comp, snap); err != nil {
			return nil, fmt.Errorf("conformance: resume: %w", err)
		}
		c.SetObserver(rec)
	}
	t := &Transcript{
		Version:  Version,
		Contract: name,
		Options:  summarizeOptions(opts),
		Records:  rec.records,
		Final:    summarize(c, res),
	}
	return &Run{Name: name, Campaign: c, Result: res, Transcript: t}, nil
}

// Summarize projects the deterministic portion of a completed campaign's
// result into the transcript's final summary — exported so a fleet worker
// finishing the last slice of a distributed campaign can hand the coordinator
// the exact summary an uninterrupted single-node recording would carry.
func Summarize(c *fuzz.Campaign, res *fuzz.Result) Summary { return summarize(c, res) }

// SummarizeOptions projects normalized engine options into the transcript's
// options line. The caller must pass the defaults-applied form
// (Options.Normalized()); fleet coordinators and workers both derive it from
// the campaign spec so the assembled transcript pins the configuration
// exactly as RecordTargetCampaign would.
func SummarizeOptions(o fuzz.Options) OptionsSummary { return summarizeOptions(o) }

// summarize projects the deterministic portion of a campaign result,
// including the final covered-edge set in canonical order.
func summarize(c *fuzz.Campaign, res *fuzz.Result) Summary {
	s := Summary{
		CoveredEdges:     res.CoveredEdges,
		TotalEdges:       res.TotalEdges,
		Executions:       res.Executions,
		SeedQueueLen:     res.SeedQueueLen,
		MasksComputed:    res.MasksComputed,
		SequencesMutated: res.SequencesMutated,
	}
	for class := range res.BugClasses {
		s.Classes = append(s.Classes, string(class))
	}
	sort.Strings(s.Classes)
	for _, f := range res.Findings {
		s.Findings = append(s.Findings, fmt.Sprintf("%s|%d|%s", f.Class, f.PC, f.Description))
	}
	sort.Strings(s.Findings)
	for class, seq := range res.Repro {
		s.Repro = append(s.Repro, fmt.Sprintf("%s %s", class, callOrder(seq)))
	}
	sort.Strings(s.Repro)
	for key := range c.Covered() {
		s.Edges = append(s.Edges, fuzz.BranchEdge{PC: key.PC, Taken: key.Taken})
	}
	sortEdges(s.Edges)
	return s
}

// callOrder renders a sequence as its function call order.
func callOrder(seq fuzz.Sequence) string {
	names := make([]string, len(seq))
	for i, tx := range seq {
		names[i] = tx.Func
	}
	return strings.Join(names, ">")
}

// ReplayCheck re-runs a recorded campaign from its options and compares the
// fresh transcript byte for byte against the recording. A nil Divergence
// means the replay reproduced the campaign exactly — every seed pick, every
// executed sequence, every coverage delta, every oracle report.
func ReplayCheck(comp *minisol.Compiled, want *Transcript) (*Run, *Divergence) {
	if want.Options.World != "" {
		panic("conformance: world transcripts replay through ReplayWorldCheck (the live members and attacker model must be resupplied)")
	}
	opts := optionsFrom(want.Options)
	run := RecordCampaign(want.Contract, comp, opts)
	return run, Diff(want, run.Transcript)
}

// ReplayWorldCheck is ReplayCheck for multi-contract world campaigns. The
// transcript's world token only pins the world's shape; the caller
// resupplies the live member targets and attacker model, which must match
// the recording's (the token is cross-checked).
func ReplayWorldCheck(target fuzz.Target, w *fuzz.WorldOptions, want *Transcript) (*Run, *Divergence) {
	if got := worldToken(w); got != want.Options.World {
		panic(fmt.Sprintf("conformance: supplied world %q does not match transcript world %q", got, want.Options.World))
	}
	opts := optionsFrom(want.Options)
	opts.World = w
	run := RecordTargetCampaign(want.Contract, target, opts)
	return run, Diff(want, run.Transcript)
}

// optionsFrom rebuilds engine options from a transcript's options summary.
// Strategy presets are resolved by name.
func optionsFrom(o OptionsSummary) fuzz.Options {
	return fuzz.Options{
		Strategy:      StrategyByName(o.Strategy),
		Seed:          o.Seed,
		Iterations:    o.Iterations,
		MaxSeqLen:     o.MaxSeqLen,
		GasPerTx:      o.GasPerTx,
		EnergyBase:    o.EnergyBase,
		InitialSeeds:  o.InitialSeeds,
		Workers:       o.Workers,
		ForceBatched:  o.ForceBatched,
		UseCopyState:  o.UseCopyState,
		NoPrefixCache: o.NoPrefixCache,
	}
}

// lookupStrategy resolves a preset or ablation variant by Name. Decode
// validates transcript strategy names through it, so untrusted transcript
// files fail with a decode error instead of reaching the panicking resolver.
func lookupStrategy(name string) (fuzz.Strategy, bool) {
	for _, s := range allStrategies() {
		if s.Name == name {
			return s, true
		}
	}
	return fuzz.Strategy{}, false
}

// StrategyByName resolves the five strategy presets plus the ablation
// variants by their Name field. Unknown names panic: a transcript recorded
// under an unknown strategy cannot be replayed meaningfully (file input is
// pre-validated by Decode, which reports a clean error instead).
func StrategyByName(name string) fuzz.Strategy {
	s, ok := lookupStrategy(name)
	if !ok {
		panic("conformance: unknown strategy " + name)
	}
	return s
}

func allStrategies() []fuzz.Strategy {
	out := []fuzz.Strategy{fuzz.MuFuzz(), fuzz.SFuzz(), fuzz.ConFuzzius(), fuzz.IRFuzz(), fuzz.Smartian()}
	return append(out, fuzz.Ablations()...)
}

// VerifySequences re-executes every recorded sequence through a detached
// engine (fresh world, fresh detector, no prefix cache) and checks the
// transcript's claims against the independent re-execution:
//
//   - every edge recorded as newly covered is covered by a standalone replay
//     of that record's sequence;
//   - every bug class recorded as newly discovered is triggered by the
//     standalone replay;
//   - the per-record coverage accounting (CoveredAfter = previous +
//     len(NewEdges)) and the final summary are internally consistent.
//
// This is the semantic half of replay: ReplayCheck proves the engine
// re-derives the same transcript, VerifySequences proves the transcript's
// individual claims hold outside the campaign that produced them.
func VerifySequences(c *fuzz.Campaign, t *Transcript) error {
	covered := 0
	addr := c.ContractAddr()
	for i := range t.Records {
		r := &t.Records[i]
		if r.Index != i+1 {
			return fmt.Errorf("record %d: index %d out of order", i, r.Index)
		}
		if want := covered + len(r.NewEdges); r.CoveredAfter != want {
			return fmt.Errorf("record %d: covered %d, accounting says %d", r.Index, r.CoveredAfter, want)
		}
		covered = r.CoveredAfter
		if len(r.NewEdges) == 0 && len(r.NewClasses) == 0 {
			continue // nothing to re-verify; skip the replay cost
		}
		rr := c.Replay(r.Sequence())
		for _, e := range r.NewEdges {
			if !rr.Edges[evm.BranchKey{Addr: addr, PC: e.PC, Taken: e.Taken}] {
				return fmt.Errorf("record %d: edge (pc=%d taken=%v) not covered by standalone replay", r.Index, e.PC, e.Taken)
			}
		}
		for _, cl := range r.NewClasses {
			if !rr.BugClasses[oracle.BugClass(cl)] {
				return fmt.Errorf("record %d: class %s not triggered by standalone replay", r.Index, cl)
			}
		}
	}
	if covered != t.Final.CoveredEdges {
		return fmt.Errorf("final covered %d, records account for %d", t.Final.CoveredEdges, covered)
	}
	if len(t.Records) != t.Final.Executions {
		return fmt.Errorf("final execs %d, transcript has %d records", t.Final.Executions, len(t.Records))
	}
	if len(t.Final.Edges) != t.Final.CoveredEdges {
		return fmt.Errorf("final edge set has %d entries, covered says %d", len(t.Final.Edges), t.Final.CoveredEdges)
	}
	return nil
}
