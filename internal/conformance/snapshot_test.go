package conformance

import (
	"bytes"
	"runtime"
	"testing"
)

// TestSnapshotResumeConformance is the acceptance pin for campaign
// snapshot/resume: a campaign paused every few rounds, snapshotted through
// the encode→decode round trip, torn down, and resumed must produce a
// transcript byte-identical to the uninterrupted campaign — under both the
// sequential engine (workers=1) and the batched parallel engine (workers=N).
// Every seed pick, every mutated child, every coverage delta, and every
// oracle report must line up record for record.
func TestSnapshotResumeConformance(t *testing.T) {
	workersN := runtime.NumCPU()
	if workersN > 8 {
		workersN = 8
	}
	if workersN < 2 {
		workersN = 2
	}
	for name, comp := range diffContracts(t) {
		for _, workers := range []int{1, workersN} {
			opts := baseOptions(7, 400)
			opts.Workers = workers

			full := RecordCampaign(name, comp, opts)
			interrupted, err := RecordInterrupted(name, comp, opts, 2)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if d := Diff(full.Transcript, interrupted.Transcript); d != nil {
				t.Errorf("%s workers=%d: snapshot/resume transcript diverged: %s", name, workers, d)
				continue
			}
			if !bytes.Equal(full.Transcript.EncodeBytes(), interrupted.Transcript.EncodeBytes()) {
				t.Errorf("%s workers=%d: transcript bytes differ", name, workers)
			}
			// The interrupted transcript's claims must also hold on
			// independent re-execution, same as any recorded campaign's.
			if err := VerifySequences(interrupted.Campaign, interrupted.Transcript); err != nil {
				t.Errorf("%s workers=%d: %v", name, workers, err)
			}
		}
	}
}
