package conformance

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mufuzz/internal/fuzz"
	"mufuzz/internal/ingest"
	"mufuzz/internal/world"
)

func loadFixtureTarget(t *testing.T, name string) fuzz.Target {
	t.Helper()
	bin, err := os.ReadFile(filepath.Join("../../fixtures", name+".bin"))
	if err != nil {
		t.Fatalf("fixture missing (regen with `go run ./cmd/corpusgen -fixtures fixtures`): %v", err)
	}
	abiJSON, err := os.ReadFile(filepath.Join("../../fixtures", name+".abi.json"))
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := ingest.LoadHex(string(bin), abiJSON)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

// TestWorldTranscriptIdentity is the world analogue of the batched
// differential class: the same world campaign — bank fixture, synthesized
// attacker — recorded at Workers=1 under ForceBatched (world-w1) and at
// Workers=4 (world-wN) must produce identical record streams and final
// summaries, and both transcripts must survive independent sequence
// verification. Multi-contract deployment, callee routing, and attacker
// compilation all live on the executor; this pins that none of them leaks
// schedule nondeterminism.
func TestWorldTranscriptIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns are slow")
	}
	base := fuzz.Options{Strategy: fuzz.MuFuzz(), Seed: 2, Iterations: 1500}

	record := func(name string, workers int, forceBatched bool) *Run {
		tgt := loadFixtureTarget(t, "bank-reentrant")
		o := base
		o.Workers = workers
		o.ForceBatched = forceBatched
		o.World = &fuzz.WorldOptions{Attacker: world.NewModel(tgt.Methods())}
		return RecordTargetCampaign(name, tgt, o)
	}
	w1 := record("world-w1", 1, true)
	wN := record("world-wN", 4, false)

	if d := Diff(w1.Transcript, wN.Transcript); d != nil {
		MinimizePoCs(d, w1, wN)
		t.Fatalf("world-w1 vs world-wN diverged: %s", d)
	}
	if err := VerifySequences(w1.Campaign, w1.Transcript); err != nil {
		t.Fatalf("world-w1 sequence verification: %v", err)
	}
	if err := VerifySequences(wN.Campaign, wN.Transcript); err != nil {
		t.Fatalf("world-wN sequence verification: %v", err)
	}

	// The transcript must actually exercise the extended format: the anchor
	// carries an attacker spec, and the options line carries the world token.
	enc := w1.Transcript.EncodeBytes()
	if !bytes.Contains(enc, []byte(`world=";attacker"`)) {
		t.Fatal("world token missing from options line")
	}
	found := false
	for _, r := range w1.Transcript.Records {
		if len(r.Seq) > 0 && len(r.Seq[0].Attacker) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no record carries an attacker spec")
	}

	// Round trip: decode(encode) reproduces the transcript, world fields
	// included.
	dec, err := Decode(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("decode world transcript: %v", err)
	}
	if !bytes.Equal(dec.EncodeBytes(), enc) {
		t.Fatal("world transcript encode/decode/encode is not byte-stable")
	}
	if dec.Options.World != ";attacker" {
		t.Fatalf("world token round trip: %q", dec.Options.World)
	}

	// ReplayWorldCheck re-derives the recording from the decoded transcript
	// with a resupplied world.
	tgt := loadFixtureTarget(t, "bank-reentrant")
	_, d := ReplayWorldCheck(tgt, &fuzz.WorldOptions{Attacker: world.NewModel(tgt.Methods())}, dec)
	if d != nil {
		t.Fatalf("world replay diverged: %s", d)
	}
}

// TestWorldTranscriptMemberToken pins the member half of the world token and
// the callee field round trip on a members-only world.
func TestWorldTranscriptMemberToken(t *testing.T) {
	bank := loadFixtureTarget(t, "bank-reentrant")
	token := loadFixtureTarget(t, "erc20")
	o := fuzz.Options{
		Strategy: fuzz.MuFuzz(), Seed: 1, Iterations: 400, Workers: 1, MaxSeqLen: 12,
		World: &fuzz.WorldOptions{Members: []fuzz.WorldMember{{Name: "token", Target: token}}},
	}
	run := RecordTargetCampaign("world-members", bank, o)
	enc := run.Transcript.EncodeBytes()
	if !bytes.Contains(enc, []byte(`world="token"`)) {
		t.Fatal("member world token missing from options line")
	}
	dec, err := Decode(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Options, run.Transcript.Options) {
		t.Fatalf("options round trip: %+v vs %+v", dec.Options, run.Transcript.Options)
	}
	sawCallee := false
	for _, r := range dec.Records {
		for _, tx := range r.Seq {
			if tx.Callee == 1 {
				sawCallee = true
			}
		}
	}
	if !sawCallee {
		t.Fatal("no decoded record carries a member callee")
	}
}
