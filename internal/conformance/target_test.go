package conformance

import (
	"bytes"
	"encoding/hex"
	"os"
	"testing"

	"mufuzz/internal/fuzz"
	"mufuzz/internal/keccak"
)

// targetGoldenHashes pins the keccak256 of each diff contract's transcript
// recorded through the Target interface (minisol adapter, MuFuzz preset,
// seed 5, 200 iterations). Regenerated when comparison-operand feedback and
// mined dictionaries became part of the MuFuzz default. Regenerate with
// MUFUZZ_GOLDEN_REGEN=1 after an intentional behavior change.
var targetGoldenHashes = map[string]string{
	"crowdsale":         "4083c35706f55f5e5f856278a5ad630eab21b29acdfc90b60e2528a03a98e80a",
	"crowdsale-buggy":   "f2990dc8a6e458d9b6f5198666d7d9998f5c1b101e8b4040e98d0965510b1cbb",
	"re_swc107_crossfn": "3a54e0bbd8ce98022c4ddb4ee4f8e5f90ec2b40edeb8230f03cf4bd2c268e037",
}

// TestTargetAdapterConformance pins the Target refactor three ways: a
// campaign recorded through the explicit minisol adapter must be
// byte-identical to one recorded through the classic compiled-contract
// entry point, must replay byte-identically on a detached engine, and must
// hash to the committed golden — so the adapter cannot drift from the
// pre-refactor engine without tripping a diff here.
func TestTargetAdapterConformance(t *testing.T) {
	regen := os.Getenv("MUFUZZ_GOLDEN_REGEN") != ""
	for name, comp := range diffContracts(t) {
		t.Run(name, func(t *testing.T) {
			opts := baseOptions(5, 200)

			classic := RecordCampaign(name, comp, opts)
			adapter := RecordTargetCampaign(name, fuzz.MinisolTarget(comp), opts)

			a, b := classic.Transcript.EncodeBytes(), adapter.Transcript.EncodeBytes()
			if !bytes.Equal(a, b) {
				d := Diff(classic.Transcript, adapter.Transcript)
				t.Fatalf("adapter transcript diverged from classic entry point: %v", d)
			}

			if _, d := ReplayCheck(comp, adapter.Transcript); d != nil {
				t.Fatalf("adapter transcript does not replay: %v", d)
			}

			sum := keccak.Sum256(b)
			got := hex.EncodeToString(sum[:])
			if regen {
				t.Logf("golden transcript hash %q: %s", name, got)
				return
			}
			if want := targetGoldenHashes[name]; got != want {
				t.Errorf("transcript hash drifted from golden\n got %s\nwant %s", got, want)
			}
		})
	}
}
