package conformance

import (
	"bytes"
	"encoding/hex"
	"os"
	"testing"

	"mufuzz/internal/fuzz"
	"mufuzz/internal/keccak"
)

// targetGoldenHashes pins the keccak256 of each diff contract's transcript
// recorded through the Target interface (minisol adapter, MuFuzz preset,
// seed 5, 200 iterations). The values were locked in alongside the golden
// result fingerprints that predate the Target refactor — the engine the
// fingerprints pin and the engine these transcripts pin is decision-for-
// decision the same one. Regenerate with MUFUZZ_GOLDEN_REGEN=1 after an
// intentional behavior change.
var targetGoldenHashes = map[string]string{
	"crowdsale":         "0daead495644f5d961de6844d408d7911aac76d9ac0c21a8f3a59968853d5bbe",
	"crowdsale-buggy":   "cafbe8147ec6fee0077ed01185bfcd9d3e29a8a04f6880ac80b41255cb8f023b",
	"re_swc107_crossfn": "8d34f2c15866376935063f01ef619d0e5bd63a6b209dd7ec714a82e3cb63f562",
}

// TestTargetAdapterConformance pins the Target refactor three ways: a
// campaign recorded through the explicit minisol adapter must be
// byte-identical to one recorded through the classic compiled-contract
// entry point, must replay byte-identically on a detached engine, and must
// hash to the committed golden — so the adapter cannot drift from the
// pre-refactor engine without tripping a diff here.
func TestTargetAdapterConformance(t *testing.T) {
	regen := os.Getenv("MUFUZZ_GOLDEN_REGEN") != ""
	for name, comp := range diffContracts(t) {
		t.Run(name, func(t *testing.T) {
			opts := baseOptions(5, 200)

			classic := RecordCampaign(name, comp, opts)
			adapter := RecordTargetCampaign(name, fuzz.MinisolTarget(comp), opts)

			a, b := classic.Transcript.EncodeBytes(), adapter.Transcript.EncodeBytes()
			if !bytes.Equal(a, b) {
				d := Diff(classic.Transcript, adapter.Transcript)
				t.Fatalf("adapter transcript diverged from classic entry point: %v", d)
			}

			if _, d := ReplayCheck(comp, adapter.Transcript); d != nil {
				t.Fatalf("adapter transcript does not replay: %v", d)
			}

			sum := keccak.Sum256(b)
			got := hex.EncodeToString(sum[:])
			if regen {
				t.Logf("golden transcript hash %q: %s", name, got)
				return
			}
			if want := targetGoldenHashes[name]; got != want {
				t.Errorf("transcript hash drifted from golden\n got %s\nwant %s", got, want)
			}
		})
	}
}
