package conformance

import (
	"bytes"
	"runtime"
	"testing"

	"mufuzz/internal/corpus"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
)

// diffContracts are the corpus contracts the differential matrix runs over
// in tests: the two motivating contracts plus a labelled reentrancy case, so
// the matrix exercises deep sequences, oracle reports, and checkpoint hits.
func diffContracts(t *testing.T) map[string]*minisol.Compiled {
	t.Helper()
	sources := map[string]string{
		"crowdsale":       corpus.Crowdsale(),
		"crowdsale-buggy": corpus.CrowdsaleBuggy(),
	}
	for _, l := range corpus.SWCSuite() {
		if l.Name == "re_swc107_crossfn" {
			sources[l.Name] = l.Source
		}
	}
	if len(sources) != 3 {
		t.Fatal("re_swc107_crossfn missing from SWC suite")
	}
	out := make(map[string]*minisol.Compiled, len(sources))
	for name, src := range sources {
		comp, err := minisol.Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = comp
	}
	return out
}

func baseOptions(seed int64, iters int) fuzz.Options {
	return fuzz.Options{
		Strategy:   fuzz.MuFuzz(),
		Seed:       seed,
		Iterations: iters,
	}
}

func TestTranscriptEncodeDecodeRoundTrip(t *testing.T) {
	comp, err := minisol.Compile(corpus.Crowdsale())
	if err != nil {
		t.Fatal(err)
	}
	run := RecordCampaign("crowdsale", comp, baseOptions(3, 120))
	enc := run.Transcript.EncodeBytes()
	dec, err := Decode(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(enc, dec.EncodeBytes()) {
		t.Error("encode(decode(encode(t))) != encode(t)")
	}
	if len(dec.Records) != run.Result.Executions {
		t.Errorf("decoded %d records, campaign ran %d executions", len(dec.Records), run.Result.Executions)
	}
	// the decoded sequences must rebuild into the originals
	for i := range dec.Records {
		if got, want := callOrder(dec.Records[i].Sequence()), callOrder(run.Transcript.Records[i].Sequence()); got != want {
			t.Fatalf("record %d: sequence %q != %q", i, got, want)
		}
	}
}

// TestRecordedReplayByteIdentical is the record/replay pin: replaying a full
// campaign's transcript through the engine must reproduce it byte for byte.
func TestRecordedReplayByteIdentical(t *testing.T) {
	for name, comp := range diffContracts(t) {
		run := RecordCampaign(name, comp, baseOptions(1, 250))
		replayed, d := ReplayCheck(comp, run.Transcript)
		if d != nil {
			t.Errorf("%s: replay diverged: %s", name, d)
		}
		if !bytes.Equal(run.Transcript.EncodeBytes(), replayed.Transcript.EncodeBytes()) {
			t.Errorf("%s: replay transcript bytes differ", name)
		}
	}
}

// TestVerifySequences re-executes every recorded claim through a detached
// engine.
func TestVerifySequences(t *testing.T) {
	for name, comp := range diffContracts(t) {
		run := RecordCampaign(name, comp, baseOptions(5, 250))
		if err := VerifySequences(run.Campaign, run.Transcript); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestDifferentialMatrix proves the engine-variant equivalences on three
// corpus contracts: sequential {Fork/Copy, cache on/off} and batched
// {workers 1/N, Fork/Copy, cache on/off} must be execution-for-execution
// identical.
func TestDifferentialMatrix(t *testing.T) {
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	for name, comp := range diffContracts(t) {
		for _, r := range DifferentialMatrix(name, comp, baseOptions(1, 250), workers) {
			if !r.Equal {
				t.Errorf("%s: %s vs %s: %s", r.Contract, r.Variant, r.Reference, r.Divergence)
			}
		}
	}
}

// TestCmpFeedbackAblationConformance pins the comparison-feedback ablation
// through the conformance machinery: transcripts store strategies by name
// only, so the "MuFuzz w/o comparison feedback" variant must resolve through
// lookupStrategy, record/replay byte-identically, and stay execution-for-
// execution identical across engine variants with the flags off — the same
// guarantees the default enjoys with them on.
func TestCmpFeedbackAblationConformance(t *testing.T) {
	s, ok := lookupStrategy("MuFuzz w/o comparison feedback")
	if !ok {
		t.Fatal("ablation not resolvable by name")
	}
	if s.CmpFeedback || s.MinedDictionary {
		t.Fatalf("ablation must disable both feedback flags: %+v", s)
	}
	workers := runtime.NumCPU()
	if workers > 4 {
		workers = 4
	}
	for name, comp := range diffContracts(t) {
		opts := baseOptions(9, 200)
		opts.Strategy = s
		run := RecordCampaign(name, comp, opts)
		if _, d := ReplayCheck(comp, run.Transcript); d != nil {
			t.Errorf("%s: ablation transcript does not replay: %v", name, d)
		}
		for _, r := range DifferentialMatrix(name, comp, opts, workers) {
			if !r.Equal {
				t.Errorf("%s: %s vs %s: %s", r.Contract, r.Variant, r.Reference, r.Divergence)
			}
		}
	}
}

// TestBatchedIndependentOfGOMAXPROCS pins the coordinator's deterministic
// batch-order fold: with a fixed worker count, the parallel engine's results
// must not depend on how the runtime schedules the executor goroutines. Two
// runs under deliberately different GOMAXPROCS must produce byte-identical
// transcripts.
func TestBatchedIndependentOfGOMAXPROCS(t *testing.T) {
	comp, err := minisol.Compile(corpus.Crowdsale())
	if err != nil {
		t.Fatal(err)
	}
	opts := baseOptions(11, 300)
	opts.Workers = 4

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(1) // executors serialize onto one P: completion order = dispatch order
	a := RecordCampaign("crowdsale", comp, opts)
	procs := runtime.NumCPU()
	if procs < 2 {
		procs = 2
	}
	runtime.GOMAXPROCS(procs) // full parallelism: completion order scrambles
	b := RecordCampaign("crowdsale", comp, opts)

	if d := Diff(a.Transcript, b.Transcript); d != nil {
		t.Fatalf("workers=4 campaign depends on GOMAXPROCS: %s", d)
	}
	if !bytes.Equal(a.Transcript.EncodeBytes(), b.Transcript.EncodeBytes()) {
		t.Fatal("transcript bytes differ across GOMAXPROCS")
	}
}

// TestStrategyMatrixShape sanity-checks the informational preset diff.
func TestStrategyMatrixShape(t *testing.T) {
	comp, err := minisol.Compile(corpus.Crowdsale())
	if err != nil {
		t.Fatal(err)
	}
	rows := StrategyMatrix("crowdsale", comp, baseOptions(1, 200))
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 presets", len(rows))
	}
	if rows[0].Strategy != "MuFuzz" || rows[0].EdgesOnlyHere != 0 || rows[0].EdgesOnlyRef != 0 {
		t.Errorf("reference row should self-diff clean: %+v", rows[0])
	}
	var buf bytes.Buffer
	PrintStrategies(&buf, "crowdsale", rows)
	if buf.Len() == 0 {
		t.Error("printer produced nothing")
	}
}

// TestDiffReportsFirstDivergence checks divergence minimization: two
// campaigns with different seeds must diverge, and the reported index must
// be the first record where the transcripts disagree.
func TestDiffReportsFirstDivergence(t *testing.T) {
	comp, err := minisol.Compile(corpus.Crowdsale())
	if err != nil {
		t.Fatal(err)
	}
	a := RecordCampaign("crowdsale", comp, baseOptions(1, 150))
	b := RecordCampaign("crowdsale", comp, baseOptions(2, 150))
	d := Diff(a.Transcript, b.Transcript)
	if d == nil {
		t.Fatal("different seeds produced identical transcripts")
	}
	if d.Kind != "record" {
		t.Fatalf("kind = %s, want record", d.Kind)
	}
	for i := 0; i < d.Index-1; i++ {
		if renderRecord(&a.Transcript.Records[i]) != renderRecord(&b.Transcript.Records[i]) {
			t.Fatalf("record %d already diverges, reported index %d is not minimal", i+1, d.Index)
		}
	}
	if renderRecord(&a.Transcript.Records[d.Index-1]) == renderRecord(&b.Transcript.Records[d.Index-1]) {
		t.Fatal("reported divergent record is identical")
	}
}
