package corpus

import (
	"testing"

	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
)

func TestPaperExamplesCompile(t *testing.T) {
	for name, src := range map[string]string{
		"Crowdsale":      Crowdsale(),
		"CrowdsaleBuggy": CrowdsaleBuggy(),
		"Game":           Game(),
	} {
		if _, err := minisol.Compile(src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestVulnSuiteCompiles(t *testing.T) {
	suite := VulnSuite()
	if len(suite) < 20 {
		t.Fatalf("suite has %d entries, want >= 20", len(suite))
	}
	for _, l := range suite {
		if _, err := minisol.Compile(l.Source); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		if len(l.Labels) == 0 {
			t.Errorf("%s: vulnerable contract without labels", l.Name)
		}
	}
}

func TestSafeSuiteCompiles(t *testing.T) {
	for _, l := range SafeSuite() {
		if _, err := minisol.Compile(l.Source); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		if len(l.Labels) != 0 {
			t.Errorf("%s: safe contract carries labels", l.Name)
		}
	}
}

func TestVulnSuiteCoversAllClasses(t *testing.T) {
	seen := map[oracle.BugClass]int{}
	for _, l := range VulnSuite() {
		for _, c := range l.Labels {
			seen[c]++
		}
	}
	for _, c := range oracle.AllClasses {
		if seen[c] == 0 {
			t.Errorf("class %s has no labelled contract", c)
		}
	}
	// every class except the structurally-unique EF should have a hard variant
	hard := 0
	for _, l := range VulnSuite() {
		if l.Hard {
			hard++
		}
	}
	if hard < 5 {
		t.Errorf("only %d hard contracts; need deep-state cases", hard)
	}
}

func TestGeneratedContractsCompile(t *testing.T) {
	for _, profile := range []struct {
		name string
		gen  []Generated
	}{
		{"small", GenerateSmall(1, 20)},
		{"large", GenerateLarge(2, 10)},
		{"complex", GenerateComplex(3, 5)},
	} {
		for _, g := range profile.gen {
			comp, err := minisol.Compile(g.Source)
			if err != nil {
				t.Fatalf("%s/%s: %v\n%s", profile.name, g.Name, err, g.Source)
			}
			if len(comp.Contract.Functions) == 0 {
				t.Errorf("%s/%s: no functions", profile.name, g.Name)
			}
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a := GenerateSmall(42, 5)
	b := GenerateSmall(42, 5)
	for i := range a {
		if a[i].Source != b[i].Source {
			t.Fatalf("contract %d differs between runs", i)
		}
	}
	c := GenerateSmall(43, 5)
	same := 0
	for i := range a {
		if a[i].Source == c[i].Source {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds should generate different corpora")
	}
}

func TestLargeContractsAreLarger(t *testing.T) {
	small := GenerateSmall(7, 10)
	large := GenerateLarge(7, 10)
	avg := func(gs []Generated) float64 {
		total := 0
		for _, g := range gs {
			comp, err := minisol.Compile(g.Source)
			if err != nil {
				t.Fatal(err)
			}
			total += len(comp.Code)
		}
		return float64(total) / float64(len(gs))
	}
	if avg(large) <= avg(small)*1.5 {
		t.Errorf("large contracts should be much bigger: small=%.0f large=%.0f bytes", avg(small), avg(large))
	}
}

func TestGeneratedBugsAreFindable(t *testing.T) {
	// Ground truth sanity: MuFuzz with a generous budget should confirm a
	// decent share of injected labels on a sample.
	gens := GenerateSmall(11, 6)
	confirmed, total := 0, 0
	for _, g := range gens {
		if len(g.Labels) == 0 {
			continue
		}
		comp, err := minisol.Compile(g.Source)
		if err != nil {
			t.Fatal(err)
		}
		res := fuzz.Run(comp, fuzz.Options{Strategy: fuzz.MuFuzz(), Seed: 1, Iterations: 1200})
		for _, c := range g.Labels {
			total++
			if res.BugClasses[c] {
				confirmed++
			}
		}
	}
	if total == 0 {
		t.Skip("sample had no injected bugs")
	}
	if confirmed*2 < total {
		t.Errorf("only %d/%d injected bugs confirmed by MuFuzz", confirmed, total)
	}
}

func TestHasLabelHelpers(t *testing.T) {
	l := Labeled{Labels: []oracle.BugClass{oracle.RE}}
	if !l.HasLabel(oracle.RE) || l.HasLabel(oracle.BD) {
		t.Error("Labeled.HasLabel wrong")
	}
	g := Generated{Labels: []oracle.BugClass{oracle.IO}}
	if !g.HasLabel(oracle.IO) || g.HasLabel(oracle.SE) {
		t.Error("Generated.HasLabel wrong")
	}
}
