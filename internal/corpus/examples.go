// Package corpus provides the benchmark datasets of the evaluation:
// the paper's motivating contracts (Fig. 1 and Fig. 4), a labelled
// vulnerability suite standing in for D2 (155 contracts from SmartBugs,
// VeriSmart, TMP, SWC), and deterministic synthetic generators standing in
// for D1 (21K Ethereum contracts) and D3 (500 large contracts). Real
// Etherscan data is unavailable offline; DESIGN.md documents the
// substitution rationale.
package corpus

import "mufuzz/internal/oracle"

// Labeled is one benchmark contract with ground-truth annotations.
type Labeled struct {
	Name   string
	Source string
	// Labels are the bug classes genuinely present (empty = safe contract).
	Labels []oracle.BugClass
	// Hard marks contracts whose bug needs a specific transaction sequence
	// or strictly-guarded input to reach (the deep-state cases motivating
	// the paper).
	Hard bool
}

// HasLabel reports whether the contract is annotated with the class.
func (l Labeled) HasLabel(c oracle.BugClass) bool {
	for _, x := range l.Labels {
		if x == c {
			return true
		}
	}
	return false
}

// Crowdsale returns the paper's Fig. 1 motivating contract. The withdraw
// branch guarded by phase == 1 needs invest to run twice.
func Crowdsale() string {
	return `
contract Crowdsale {
    uint256 phase = 0;
    uint256 goal;
    uint256 invested;
    address owner;
    mapping(address => uint256) invests;

    constructor() public {
        goal = 100 ether;
        invested = 0;
        owner = msg.sender;
    }
    function invest(uint256 donations) public payable {
        if (invested < goal) {
            invests[msg.sender] += donations;
            invested += donations;
            phase = 0;
        } else {
            phase = 1;
        }
    }
    function refund() public {
        if (phase == 0) {
            msg.sender.transfer(invests[msg.sender]);
            invests[msg.sender] = 0;
        }
    }
    function withdraw() public {
        if (phase == 1) {
            owner.transfer(invested);
        }
    }
}`
}

// CrowdsaleBuggy is Crowdsale with the paper's line-31 bug made concrete: an
// unguarded timestamp branch inside the deep withdraw path, so the BD oracle
// fires exactly when the phase == 1 branch is reached.
func CrowdsaleBuggy() string {
	return `
contract CrowdsaleBuggy {
    uint256 phase = 0;
    uint256 goal;
    uint256 invested;
    address owner;
    mapping(address => uint256) invests;

    constructor() public {
        goal = 100 ether;
        invested = 0;
        owner = msg.sender;
    }
    function invest(uint256 donations) public payable {
        if (invested < goal) {
            invests[msg.sender] += donations;
            invested += donations;
            phase = 0;
        } else {
            phase = 1;
        }
    }
    function refund() public {
        if (phase == 0) {
            msg.sender.transfer(invests[msg.sender]);
            invests[msg.sender] = 0;
        }
    }
    function withdraw() public {
        if (phase == 1) {
            // bug(): block-dependent payout in the deep branch
            if (block.timestamp % 2 == 0) {
                owner.transfer(invested);
            }
        }
    }
}`
}

// MagicGate returns the magic-constant benchmark for comparison-operand
// feedback: an unprotected selfdestruct behind a mapping lookup keyed by a
// 4-byte magic. The mapping indirection makes branch distance useless
// (grants[wrong] == 0 vs 7 is a constant distance, and the observed operand
// pair {0, 7} says nothing about the key), and the magic is assembled from
// two halves at runtime — the compiler does not constant-fold, so no single
// PUSH immediate or AST literal spells it. Cracking the gate source-free
// requires mining the folded constant out of the creation bytecode, which is
// exactly what the mined-dictionary feedback does.
func MagicGate() string {
	return `
contract MagicGate {
    mapping(uint256 => uint256) grants;

    constructor() public {
        uint256 hi = 0x4d41;
        uint256 lo = 0x4749;
        grants[hi * 65536 + lo] = 7;
    }
    function claim(uint256 code) public {
        if (grants[code] == 7) {
            selfdestruct(msg.sender);
        }
    }
}`
}

// Game returns the paper's Fig. 4 guess-number contract: a strict msg.value
// guard (88 finney) in front of nested branches with a potential overflow.
func Game() string {
	return `
contract Game {
    mapping(address => uint256) balance;

    function guessNum(uint256 number) public payable {
        uint256 random = keccak256(block.timestamp, now) % 200;
        require(msg.value == 88 finney);
        if (number < random) {
            uint256 luckyNum = number % 2;
            if (luckyNum == 0) {
                balance[msg.sender] += msg.value * 10;
            } else {
                balance[msg.sender] += msg.value * 5;
            }
        }
    }
}`
}

// Token returns an ERC20-style token: owner-gated minting, guarded
// transfers, and burn — the shape of the deployed real-world contracts the
// paper's large-corpus evaluation runs on. Its compiled bytecode + ABI JSON
// are the bundled source-free fixtures (fixtures/erc20.*) the ingest
// pipeline is exercised against end to end.
func Token() string {
	return `
contract Token {
    mapping(address => uint256) balances;
    uint256 totalSupply = 0;
    address owner;

    constructor() public {
        owner = msg.sender;
    }
    function mint(address to, uint256 amount) public {
        require(msg.sender == owner);
        balances[to] += amount;
        totalSupply += amount;
    }
    function transfer(address to, uint256 amount) public {
        require(balances[msg.sender] >= amount);
        balances[msg.sender] -= amount;
        balances[to] += amount;
    }
    function burn(uint256 amount) public {
        if (balances[msg.sender] >= amount) {
            balances[msg.sender] -= amount;
            totalSupply -= amount;
        }
    }
    function balanceOf(address who) public view returns (uint256) {
        return balances[who];
    }
}`
}

// BankReentrant returns the call-before-state-update bank the multi-contract
// world campaigns are separated on: withdraw notifies the caller with a
// ZERO-value full-gas call before paying out via transfer and only then
// zeroing the balance. The single-contract heuristic oracle cannot flag it —
// its reentrancy rule requires a reentry enabled by a value-bearing call,
// and the payout is a 2300-stipend transfer no callback can re-enter — but a
// synthesized attacker contract re-entering withdraw from the zero-value
// notify double-pays itself, which the witnessed world oracle confirms by
// state divergence. seed() lets the fuzzer fund the bank beyond the
// attacker's own deposit, making the double payout solvent. Compiled to
// fixtures/bank-reentrant.*.
func BankReentrant() string {
	return `
contract BankReentrant {
    mapping(address => uint256) bal;

    function deposit() public payable {
        bal[msg.sender] += msg.value;
    }
    function seed() public payable { }
    function withdraw() public {
        uint256 amount = bal[msg.sender];
        if (amount > 0) {
            require(msg.sender.call.value(0)());
            msg.sender.transfer(amount);
            bal[msg.sender] = 0;
        }
    }
}`
}

// ProxyDelegate returns the attacker-controlled-delegatecall proxy of the
// world fixtures: forward() delegatecalls an arbitrary address, so a world
// campaign that passes the synthesized attacker's address executes attacker
// code in the proxy's storage context — the schedule the witnessed UD oracle
// requires. Compiled to fixtures/proxy-delegate.*.
func ProxyDelegate() string {
	return `
contract ProxyDelegate {
    uint256 stored;

    function fund() public payable { }
    function forward(address impl, uint256 cmd) public {
        impl.delegatecall(cmd);
    }
}`
}

// VulnSuite returns the labelled vulnerability suite: the D2-analog.
// Each class appears in an easy variant and at least one hard (deep-state or
// strict-input) variant; several contracts carry multiple classes, like D2's
// 155 contracts with 217 annotations.
func VulnSuite() []Labeled {
	out := append(baseSuite(), extraSuite()...)
	return append(out, swcSuite()...)
}

func baseSuite() []Labeled {
	return []Labeled{
		// --- BD: block dependency ---
		{
			Name: "bd_lottery_easy",
			Source: `contract BdLottery {
				uint256 pot;
				mapping(address => uint256) win;
				function play() public payable {
					pot += msg.value;
					if (block.timestamp % 7 == 0) { win[msg.sender] = pot; }
				}
				function drain() public { msg.sender.transfer(win[msg.sender]); }
			}`,
			Labels: []oracle.BugClass{oracle.BD},
		},
		{
			Name: "bd_vesting_deep",
			Hard: true,
			Source: `contract BdVesting {
				uint256 staged;
				uint256 phase;
				address owner;
				constructor() public { owner = msg.sender; }
				function stage(uint256 amt) public {
					if (staged < 500) { staged += amt; } else { phase = 1; }
				}
				function release() public {
					if (phase == 1) {
						require(block.number > 100);
						owner.transfer(staged);
					}
				}
			}`,
			// `staged += amt` wraps for a small staged plus a huge amt, so
			// the contract is genuinely IO-vulnerable as well.
			Labels: []oracle.BugClass{oracle.BD, oracle.IO},
		},
		{
			Name: "bd_timelock",
			Source: `contract BdTimelock {
				uint256 unlockAt;
				address owner;
				constructor() public { owner = msg.sender; unlockAt = block.timestamp + 1000; }
				function claim() public {
					if (block.timestamp > unlockAt) { owner.transfer(this.balance); }
				}
				function fund() public payable { }
			}`,
			Labels: []oracle.BugClass{oracle.BD},
		},

		// --- UD: unprotected delegatecall ---
		{
			Name: "ud_proxy_easy",
			Source: `contract UdProxy {
				function forward(address impl, uint256 cmd) public {
					impl.delegatecall(cmd);
				}
			}`,
			Labels: []oracle.BugClass{oracle.UD},
		},
		{
			Name: "ud_upgradeable_deep",
			Hard: true,
			Source: `contract UdUpgradeable {
				uint256 initialized;
				address impl;
				function init(address firstImpl) public {
					require(initialized == 0);
					impl = firstImpl;
					initialized = 1;
				}
				function execute(uint256 cmd) public {
					if (initialized == 1) {
						impl.delegatecall(cmd);
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.UD},
		},

		// --- EF: ether freezing ---
		{
			Name: "ef_sink_easy",
			Source: `contract EfSink {
				uint256 total;
				function donate() public payable { total += msg.value; }
				function tally() public view returns (uint256) { return total; }
			}`,
			Labels: []oracle.BugClass{oracle.EF},
		},
		{
			Name: "ef_crowdpot_deep",
			Hard: true,
			Source: `contract EfCrowdpot {
				uint256 raised;
				uint256 closed;
				function chip() public payable {
					require(closed == 0);
					raised += msg.value;
					if (raised > 1000) { closed = 1; }
				}
			}`,
			Labels: []oracle.BugClass{oracle.EF},
		},

		// --- IO: integer overflow / underflow ---
		{
			Name: "io_token_easy",
			Source: `contract IoToken {
				mapping(address => uint256) bal;
				function mint(uint256 n) public { bal[msg.sender] += n; }
				function burn(uint256 n) public { bal[msg.sender] -= n; }
			}`,
			Labels: []oracle.BugClass{oracle.IO},
		},
		{
			Name: "io_batch_beautychain",
			Source: `contract IoBatch {
				mapping(address => uint256) bal;
				uint256 supply = 1000000;
				function batch(uint256 cnt, uint256 each) public {
					uint256 amount = cnt * each;
					require(bal[msg.sender] >= amount || amount == 0);
					bal[msg.sender] -= amount;
					bal[msg.sender] += cnt * each;
					supply += amount;
				}
			}`,
			Labels: []oracle.BugClass{oracle.IO},
		},
		{
			Name: "io_vault_deep",
			Hard: true,
			Source: `contract IoVault {
				uint256 stage;
				uint256 acc;
				function advance(uint256 k) public {
					if (stage < 3) { stage += 1; } else { }
				}
				function overflowMe(uint256 big) public {
					if (stage >= 3) {
						acc += big;
						acc += big;
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.IO},
		},

		// --- RE: reentrancy ---
		{
			Name: "re_dao_easy",
			Source: `contract ReDao {
				mapping(address => uint256) bal;
				function deposit() public payable { bal[msg.sender] += msg.value; }
				function withdraw() public {
					uint256 amount = bal[msg.sender];
					if (amount > 0) {
						require(msg.sender.call.value(amount)());
						bal[msg.sender] = 0;
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.RE},
		},
		{
			Name: "re_staking_deep",
			Hard: true,
			Source: `contract ReStaking {
				mapping(address => uint256) stake;
				uint256 epoch;
				function bond() public payable { stake[msg.sender] += msg.value; }
				function tick(uint256 x) public {
					if (epoch < 2) { epoch += 1; }
				}
				function unbond() public {
					if (epoch >= 2) {
						uint256 amount = stake[msg.sender];
						if (amount > 0) {
							require(msg.sender.call.value(amount)());
							stake[msg.sender] = 0;
						}
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.RE},
		},

		// --- US: unprotected selfdestruct ---
		{
			Name: "us_killable_easy",
			Source: `contract UsKillable {
				uint256 x;
				function cleanup() public { selfdestruct(msg.sender); }
				function touch() public { x += 1; }
			}`,
			Labels: []oracle.BugClass{oracle.US},
		},
		{
			Name: "us_parity_deep",
			Hard: true,
			Source: `contract UsParity {
				uint256 initialized;
				address owner;
				function initWallet() public {
					require(initialized == 0);
					owner = msg.sender;
					initialized = 1;
				}
				function kill() public {
					require(msg.sender == owner);
					selfdestruct(msg.sender);
				}
			}`,
			// anyone can initWallet then kill: the guard is bypassable, so
			// US holds even though kill has a sender guard
			Labels: []oracle.BugClass{oracle.US},
		},

		// --- SE: strict ether equality ---
		{
			Name: "se_jackpot_easy",
			Source: `contract SeJackpot {
				uint256 won;
				function bet() public payable {
					if (this.balance == 1 ether) { won = 1; }
				}
			}`,
			// payable with no value-out instruction: the ether also freezes
			Labels: []oracle.BugClass{oracle.SE, oracle.EF},
		},
		{
			Name: "se_milestone_deep",
			Hard: true,
			Source: `contract SeMilestone {
				uint256 level;
				uint256 prize;
				function fund() public payable {
					if (level < 2) {
						level += 1;
					} else {
						if (this.balance == 500) { prize = 1; }
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.SE, oracle.EF},
		},

		// --- TO: tx.origin ---
		{
			Name: "to_wallet_easy",
			Source: `contract ToWallet {
				address owner;
				uint256 out;
				constructor() public { owner = msg.sender; }
				function pay(uint256 amt) public {
					require(tx.origin == owner);
					out += amt;
					msg.sender.transfer(amt);
				}
				function fund() public payable { }
			}`,
			Labels: []oracle.BugClass{oracle.TO},
		},
		{
			Name: "to_gated_deep",
			Hard: true,
			Source: `contract ToGated {
				address owner;
				uint256 opened;
				uint256 secret;
				constructor() public { owner = msg.sender; }
				function open(uint256 code) public {
					require(code == 31337);
					opened = 1;
				}
				function privileged() public {
					if (opened == 1) {
						require(tx.origin == owner);
						secret = 1;
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.TO},
		},

		// --- UE: unhandled exception ---
		{
			Name: "ue_payout_easy",
			Source: `contract UePayout {
				mapping(address => uint256) owed;
				function credit(uint256 n) public { owed[msg.sender] = n; }
				function payout(address to) public {
					to.send(owed[to]);
					owed[to] = 0;
				}
			}`,
			Labels: []oracle.BugClass{oracle.UE},
		},
		{
			Name: "ue_airdrop_deep",
			Hard: true,
			Source: `contract UeAirdrop {
				uint256 armed;
				uint256 round;
				function arm(uint256 k) public {
					if (round < 2) { round += 1; } else { armed = 1; }
				}
				function drop(address to, uint256 amt) public {
					if (armed == 1) {
						to.send(amt);
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.UE},
		},

		// --- multi-class contracts (like D2's multi-annotated entries) ---
		{
			Name: "multi_casino",
			Source: `contract MultiCasino {
				mapping(address => uint256) chips;
				uint256 pot;
				address owner;
				constructor() public { owner = msg.sender; }
				function buyIn() public payable {
					chips[msg.sender] += msg.value;
					pot += msg.value;
				}
				function spin(uint256 guess) public {
					if (block.timestamp % 5 == guess) {
						chips[msg.sender] += pot / 2;
					}
				}
				function cashOut() public {
					uint256 amount = chips[msg.sender];
					if (amount > 0) {
						require(msg.sender.call.value(amount)());
						chips[msg.sender] = 0;
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.BD, oracle.RE},
		},
		{
			Name: "multi_bank",
			Source: `contract MultiBank {
				mapping(address => uint256) bal;
				uint256 fees;
				function deposit() public payable { bal[msg.sender] += msg.value; }
				function skim(uint256 n) public {
					require(tx.origin == msg.sender);
					fees -= n;
					msg.sender.send(n);
				}
			}`,
			Labels: []oracle.BugClass{oracle.IO, oracle.TO, oracle.UE},
		},
	}
}

// SafeSuite returns bug-free contracts used to measure false positives.
func SafeSuite() []Labeled {
	return []Labeled{
		{
			Name: "safe_counter",
			Source: `contract SafeCounter {
				uint256 count;
				function inc() public { require(count < 1000000); count += 1; }
				function get() public view returns (uint256) { return count; }
			}`,
		},
		{
			Name: "safe_vault",
			Source: `contract SafeVault {
				mapping(address => uint256) bal;
				function deposit() public payable {
					require(msg.value < 1000 ether);
					bal[msg.sender] += msg.value;
				}
				function withdraw(uint256 n) public {
					require(bal[msg.sender] >= n);
					bal[msg.sender] -= n;
					msg.sender.transfer(n);
				}
			}`,
		},
		{
			Name: "safe_registry",
			Source: `contract SafeRegistry {
				mapping(address => uint256) ids;
				uint256 next = 1;
				function register() public {
					require(ids[msg.sender] == 0);
					require(next < 100000);
					ids[msg.sender] = next;
					next += 1;
				}
			}`,
		},
		{
			Name: "safe_owned",
			Source: `contract SafeOwned {
				address owner;
				uint256 setting;
				constructor() public { owner = msg.sender; }
				function configure(uint256 v) public {
					require(msg.sender == owner);
					require(v < 4096);
					setting = v;
				}
			}`,
		},
		{
			Name: "safe_escrow",
			Source: `contract SafeEscrow {
				address owner;
				mapping(address => uint256) held;
				constructor() public { owner = msg.sender; }
				function hold() public payable {
					require(msg.value < 10 ether);
					held[msg.sender] += msg.value;
				}
				function release(uint256 n) public {
					require(held[msg.sender] >= n);
					held[msg.sender] -= n;
					msg.sender.transfer(n);
				}
			}`,
		},
	}
}
