package corpus

import "mufuzz/internal/oracle"

// SWCSuite returns the SWC-registry-patterned batch of labelled contracts —
// one of the two suites the conformance detection gate runs over (see
// experiments.DetectionGate).
func SWCSuite() []Labeled { return swcSuite() }

// swcSuite is a third batch of labelled contracts following SWC-registry
// patterns (SWC-101 arithmetic, SWC-104 unchecked call, SWC-105/106 access
// control, SWC-107 reentrancy, SWC-115 tx.origin, SWC-116 block values,
// SWC-132 strict ether balance). Appended to VulnSuite().
func swcSuite() []Labeled {
	return []Labeled{
		// SWC-116: block values as a proxy for time, gating a payout.
		{
			Name: "bd_swc116_auction",
			Source: `contract BdAuction {
				address highBidder;
				uint256 highBid;
				uint256 closesAt;
				constructor() public { closesAt = block.number + 100; }
				function bid() public payable {
					require(msg.value > highBid);
					highBidder = msg.sender;
					highBid = msg.value;
				}
				function settle() public {
					if (block.number > closesAt) {
						highBidder.transfer(highBid);
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.BD},
		},
		// SWC-101: token with a fee computation that underflows before the
		// balance check can help.
		{
			Name: "io_swc101_feetoken",
			Source: `contract IoFeeToken {
				mapping(address => uint256) bal;
				uint256 fee = 10;
				function transferOut(address to, uint256 n) public {
					bal[msg.sender] -= n + fee;
					bal[to] += n;
				}
				function top() public payable {
					bal[msg.sender] += msg.value;
				}
			}`,
			// no value-out instruction anywhere: deposits also freeze
			Labels: []oracle.BugClass{oracle.IO, oracle.EF},
		},
		// SWC-104: refund loop member whose failure is swallowed.
		{
			Name: "ue_swc104_refunder",
			Source: `contract UeRefunder {
				mapping(address => uint256) owed;
				uint256 pot;
				function register() public payable {
					owed[msg.sender] += msg.value * 2;
					pot += msg.value;
				}
				function refundMe() public {
					msg.sender.send(owed[msg.sender]);
					owed[msg.sender] = 0;
				}
			}`,
			// owed is 2x the deposit, so the send can exceed the pot and
			// fail silently.
			Labels: []oracle.BugClass{oracle.UE},
		},
		// SWC-105: anyone can sweep the contract because the guard checks
		// the wrong variable.
		{
			Name: "us_swc105_sweeper",
			Hard: true,
			Source: `contract UsSweeper {
				address owner;
				uint256 armed;
				constructor() public { owner = msg.sender; }
				function arm(uint256 pin) public {
					require(pin == 4242);
					armed = 1;
				}
				function sweep() public {
					require(armed == 1);
					selfdestruct(msg.sender);
				}
			}`,
			Labels: []oracle.BugClass{oracle.US},
		},
		// SWC-107: cross-function reentrancy — the external call lives in one
		// function, the state update in another path.
		{
			Name: "re_swc107_crossfn",
			Hard: true,
			Source: `contract ReCrossFn {
				mapping(address => uint256) shares;
				uint256 open;
				function fund() public payable {
					shares[msg.sender] += msg.value;
					open = 1;
				}
				function redeem() public {
					require(open == 1);
					uint256 due = shares[msg.sender];
					if (due > 0) {
						require(msg.sender.call.value(due)());
						shares[msg.sender] = 0;
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.RE},
		},
		// SWC-115: tx.origin in a nested authorization path.
		{
			Name: "to_swc115_nested",
			Hard: true,
			Source: `contract ToNested {
				address owner;
				uint256 level;
				uint256 flag;
				constructor() public { owner = msg.sender; }
				function promote(uint256 k) public {
					if (level < 2) { level += 1; }
				}
				function admin() public {
					if (level >= 2) {
						if (tx.origin == owner) {
							flag = 1;
						}
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.TO},
		},
		// SWC-132: strict balance equality deciding a jackpot round.
		{
			Name: "se_swc132_round",
			Source: `contract SeRound {
				uint256 round;
				uint256 winner;
				function enter() public payable {
					require(msg.value == 1 finney);
					round += 1;
					if (this.balance == 5 finney) {
						winner = round;
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.SE, oracle.EF},
		},
		// Unprotected proxy upgrade: delegatecall target swap is open.
		{
			Name: "ud_swc_open_upgrade",
			Source: `contract UdOpenUpgrade {
				address impl;
				function upgrade(address next) public { impl = next; }
				function run(uint256 op) public {
					impl.delegatecall(op);
				}
			}`,
			Labels: []oracle.BugClass{oracle.UD},
		},
		// Lottery combining block randomness and a reentrant payout.
		{
			Name: "multi_swc_lottery",
			Hard: true,
			Source: `contract MultiLottery {
				mapping(address => uint256) tickets;
				uint256 pot;
				function buy() public payable {
					require(msg.value >= 1 finney);
					tickets[msg.sender] += 1;
					pot += msg.value;
				}
				function draw(uint256 nonce) public {
					if (keccak256(block.timestamp, nonce) % 10 == 3) {
						uint256 prize = pot;
						if (tickets[msg.sender] > 0) {
							require(msg.sender.call.value(prize)());
							pot = 0;
						}
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.BD, oracle.RE},
		},
		// Deposit box whose withdraw path exists but is unreachable: the
		// unlock code was set from a hash no one can produce, so funds
		// freeze in practice — we label what the oracles can prove: the
		// strict-equality guard on the unlock comparison is balance-free,
		// so this one is a pure EF case with a payable sink.
		{
			Name: "ef_swc_deadbox",
			Source: `contract EfDeadbox {
				uint256 sealed = 1;
				uint256 stored;
				function deposit() public payable {
					stored += msg.value;
				}
				function sealCheck() public view returns (uint256) {
					return sealed;
				}
			}`,
			Labels: []oracle.BugClass{oracle.EF},
		},
	}
}
