package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"mufuzz/internal/oracle"
)

// Generated is one synthetic benchmark contract with ground truth.
type Generated struct {
	Name   string
	Source string
	// Labels are the injected bug classes.
	Labels []oracle.BugClass
	// Blocks counts the feature blocks composed into the contract; a proxy
	// for contract size.
	Blocks int
}

// HasLabel reports whether the generated contract carries the class.
func (g Generated) HasLabel(c oracle.BugClass) bool {
	for _, x := range g.Labels {
		if x == c {
			return true
		}
	}
	return false
}

// Profile controls the shape of generated contracts.
type Profile struct {
	// MinBlocks/MaxBlocks bound how many feature blocks are composed.
	MinBlocks, MaxBlocks int
	// ChainDepth gates blocks behind the phase of earlier blocks,
	// lengthening the transaction sequences needed to reach deep code.
	ChainDepth int
	// BugChance is the per-block probability (percent) of injecting a bug
	// payload into the deep region.
	BugChance int
	// StrictGuards adds require(x == C) style strict-equality gates.
	StrictGuards bool
}

// SmallProfile mirrors D1-small: compact contracts, shallow chains.
func SmallProfile() Profile {
	return Profile{MinBlocks: 2, MaxBlocks: 4, ChainDepth: 1, BugChance: 45, StrictGuards: true}
}

// LargeProfile mirrors D1-large: more functions, deeper state chains.
func LargeProfile() Profile {
	return Profile{MinBlocks: 6, MaxBlocks: 10, ChainDepth: 3, BugChance: 45, StrictGuards: true}
}

// ComplexProfile mirrors D3: the largest contracts with the deepest chains.
func ComplexProfile() Profile {
	return Profile{MinBlocks: 10, MaxBlocks: 14, ChainDepth: 4, BugChance: 55, StrictGuards: true}
}

// Generate produces n deterministic contracts for a profile.
func Generate(profile Profile, seed int64, n int) []Generated {
	out := make([]Generated, 0, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)*7919))
		out = append(out, generateOne(profile, rng, fmt.Sprintf("Gen%d_%d", seed, i)))
	}
	return out
}

// GenerateSmall / GenerateLarge / GenerateComplex are the dataset presets.
func GenerateSmall(seed int64, n int) []Generated   { return Generate(SmallProfile(), seed, n) }
func GenerateLarge(seed int64, n int) []Generated   { return Generate(LargeProfile(), seed, n) }
func GenerateComplex(seed int64, n int) []Generated { return Generate(ComplexProfile(), seed, n) }

// builder assembles a MiniSol contract from feature blocks.
type builder struct {
	name   string
	rng    *rand.Rand
	vars   []string
	funcs  []string
	labels map[oracle.BugClass]bool
	blocks int
	// hasPayable / hasValueOut drive the implicit EF ground truth: a
	// contract that accepts ether but contains no value-out instruction
	// freezes funds whether or not a bug payload was injected.
	hasPayable  bool
	hasValueOut bool
	// lastPhase is the phase variable of the previous chained block ("" when
	// the next block starts a fresh chain).
	lastPhase string
	chainLeft int
}

func (b *builder) addVar(decl string)      { b.vars = append(b.vars, decl) }
func (b *builder) addFunc(src string)      { b.funcs = append(b.funcs, src) }
func (b *builder) label(c oracle.BugClass) { b.labels[c] = true }

// gate returns a require/if prefix enforcing the chain dependency, making
// deep blocks reachable only after earlier blocks completed their phase.
func (b *builder) gate() string {
	if b.lastPhase == "" {
		return ""
	}
	return fmt.Sprintf("require(%s == 1);\n", b.lastPhase)
}

// generateOne builds one contract.
func generateOne(p Profile, rng *rand.Rand, name string) Generated {
	b := &builder{name: name, rng: rng, labels: make(map[oracle.BugClass]bool)}
	nBlocks := p.MinBlocks
	if p.MaxBlocks > p.MinBlocks {
		nBlocks += rng.Intn(p.MaxBlocks - p.MinBlocks + 1)
	}
	b.chainLeft = p.ChainDepth

	for i := 0; i < nBlocks; i++ {
		injectBug := rng.Intn(100) < p.BugChance
		b.emitBlock(i, p, injectBug)
		b.blocks++
	}

	if b.hasPayable && !b.hasValueOut {
		b.label(oracle.EF)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "contract %s {\n", name)
	for _, v := range b.vars {
		sb.WriteString("    " + v + "\n")
	}
	sb.WriteString("    address owner;\n")
	sb.WriteString("    constructor() public { owner = msg.sender; }\n")
	for _, f := range b.funcs {
		sb.WriteString(f)
	}
	sb.WriteString("}\n")

	labels := make([]oracle.BugClass, 0, len(b.labels))
	for _, c := range oracle.AllClasses {
		if b.labels[c] {
			labels = append(labels, c)
		}
	}
	return Generated{Name: name, Source: sb.String(), Labels: labels, Blocks: b.blocks}
}

// emitBlock appends one feature block: a phase machine whose deep region may
// carry a bug payload, plus auxiliary guarded functions.
func (b *builder) emitBlock(i int, p Profile, injectBug bool) {
	kind := b.rng.Intn(5)
	switch kind {
	case 0:
		b.emitPhaseMachine(i, p, injectBug)
	case 1:
		b.emitStrictGuard(i, p, injectBug)
	case 2:
		b.emitNested(i, p, injectBug)
	case 3:
		b.emitCombo(i, p, injectBug)
	default:
		b.emitBank(i, p, injectBug)
	}
}

// emitCombo is a multi-word combination lock: nested guards over several
// parameters whose satisfying values are *derived* (modular and multiplied
// constraints), so no bytecode-constant dictionary contains them. Cracking
// it requires branch-distance descent on each word while preserving the
// words already solved — the workload mutation masking (paper §IV-B,
// FairFuzz-style) is built for.
func (b *builder) emitCombo(i int, p Profile, injectBug bool) {
	won := fmt.Sprintf("won%d", i)
	b.addVar(fmt.Sprintf("uint256 %s;", won))
	m1 := 50 + b.rng.Intn(150)
	r1 := b.rng.Intn(m1)
	k2 := 3 + b.rng.Intn(9)
	c2 := k2 * (500 + b.rng.Intn(5000)) // b*k2 == c2 has the non-constant solution c2/k2
	lim := 1000 + b.rng.Intn(20000)
	gate := b.gate()
	payload := b.payload(i, injectBug)
	if payload == "" {
		payload = fmt.Sprintf("                    %s = 1;\n", won)
	}
	b.addFunc(fmt.Sprintf(`
    function combo%d(uint256 a, uint256 b, uint256 c) public {
        %sif (a %% %d == %d) {
            if (b * %d == %d) {
                if (a + b + c > %d) {
%s                }
            }
        }
    }
`, i, gate, m1, r1, k2, c2, lim, payload))
	b.lastPhase = ""
}

// emitPhaseMachine is the Crowdsale pattern: a counter with a RAW dependency
// whose else-branch flips a phase, and a reaper gated on the phase.
func (b *builder) emitPhaseMachine(i int, p Profile, injectBug bool) {
	counter := fmt.Sprintf("counter%d", i)
	phase := fmt.Sprintf("phase%d", i)
	limit := 50 + b.rng.Intn(200)
	b.addVar(fmt.Sprintf("uint256 %s;", counter))
	b.addVar(fmt.Sprintf("uint256 %s;", phase))

	gate := b.gate()
	b.hasPayable = true
	b.addFunc(fmt.Sprintf(`
    function pump%d(uint256 x) public payable {
        %srequire(x < 1000);
        if (%s < %d) {
            %s += x;
        } else {
            %s = 1;
        }
    }
`, i, gate, counter, limit, counter, phase))

	payload := b.payload(i, injectBug)
	b.addFunc(fmt.Sprintf(`
    function reap%d() public {
        if (%s == 1) {
%s        }
    }
`, i, phase, payload))

	// chain bookkeeping
	if b.chainLeft > 0 {
		b.lastPhase = phase
		b.chainLeft--
	} else {
		b.lastPhase = ""
		b.chainLeft = p.ChainDepth
	}
}

// emitStrictGuard is the Game pattern: a strict equality gate in front of
// state, exercising branch-distance + masking.
func (b *builder) emitStrictGuard(i int, p Profile, injectBug bool) {
	opened := fmt.Sprintf("opened%d", i)
	code := 1000 + b.rng.Intn(100000)
	b.addVar(fmt.Sprintf("uint256 %s;", opened))
	gate := b.gate()
	b.addFunc(fmt.Sprintf(`
    function unlock%d(uint256 code) public {
        %srequire(code == %d);
        %s = 1;
    }
`, i, gate, code, opened))
	payload := b.payload(i, injectBug)
	b.addFunc(fmt.Sprintf(`
    function use%d(uint256 y) public {
        if (%s == 1) {
            if (y > %d) {
%s            }
        }
    }
`, i, opened, b.rng.Intn(50), payload))
	b.lastPhase = ""
}

// emitNested adds a deeply nested conditional ladder over parameters.
func (b *builder) emitNested(i int, p Profile, injectBug bool) {
	mark := fmt.Sprintf("mark%d", i)
	b.addVar(fmt.Sprintf("uint256 %s;", mark))
	depth := 2 + b.rng.Intn(3)
	gate := b.gate()
	var body strings.Builder
	indent := "        "
	for d := 0; d < depth; d++ {
		c1 := b.rng.Intn(200)
		var cond string
		switch b.rng.Intn(3) {
		case 0:
			cond = fmt.Sprintf("a + %d > b", c1)
		case 1:
			cond = fmt.Sprintf("a %% %d == %d", c1+2, b.rng.Intn(c1+2))
		default:
			cond = fmt.Sprintf("b > %d", c1)
		}
		fmt.Fprintf(&body, "%sif (%s) {\n", indent, cond)
		indent += "    "
	}
	payload := b.payload(i, injectBug)
	if payload == "" {
		payload = fmt.Sprintf("%s%s = a;\n", indent, mark)
	}
	body.WriteString(payload)
	for d := depth - 1; d >= 0; d-- {
		indent = indent[:len(indent)-4]
		body.WriteString(indent + "}\n")
	}
	b.addFunc(fmt.Sprintf(`
    function maze%d(uint256 a, uint256 b) public {
        %s%s    }
`, i, gate, body.String()))
	b.lastPhase = ""
}

// emitBank adds a per-sender accounting block.
func (b *builder) emitBank(i int, p Profile, injectBug bool) {
	ledger := fmt.Sprintf("ledger%d", i)
	b.addVar(fmt.Sprintf("mapping(address => uint256) %s;", ledger))
	gate := b.gate()
	b.hasPayable = true
	b.addFunc(fmt.Sprintf(`
    function save%d() public payable {
        %s%s[msg.sender] += msg.value;
    }
`, i, gate, ledger))
	if injectBug && b.rng.Intn(2) == 0 {
		// reentrant withdrawal
		b.label(oracle.RE)
		b.hasValueOut = true
		b.addFunc(fmt.Sprintf(`
    function take%d() public {
        uint256 amount%d = %s[msg.sender];
        if (amount%d > 0) {
            require(msg.sender.call.value(amount%d)());
            %s[msg.sender] = 0;
        }
    }
`, i, i, ledger, i, i, ledger))
	} else {
		b.hasValueOut = true
		b.addFunc(fmt.Sprintf(`
    function take%d(uint256 n) public {
        require(%s[msg.sender] >= n);
        %s[msg.sender] -= n;
        msg.sender.transfer(n);
    }
`, i, ledger, ledger))
	}
	b.lastPhase = ""
}

// payload returns bug-payload statements (with trailing newline, indented),
// or a benign payload when injectBug is false.
func (b *builder) payload(i int, injectBug bool) string {
	ind := "            "
	if !injectBug {
		return fmt.Sprintf("%sowner = msg.sender;\n", ind)
	}
	switch b.rng.Intn(6) {
	case 0: // BD
		b.label(oracle.BD)
		return fmt.Sprintf("%sif (block.timestamp %% 3 == 0) { owner = msg.sender; }\n", ind)
	case 1: // IO underflow on a fresh accumulator
		b.label(oracle.IO)
		acc := fmt.Sprintf("acc%d", i)
		b.addVar(fmt.Sprintf("uint256 %s;", acc))
		return fmt.Sprintf("%s%s -= 7;\n", ind, acc)
	case 2: // UE unchecked send
		b.label(oracle.UE)
		b.hasValueOut = true
		return fmt.Sprintf("%smsg.sender.send(1000000 ether);\n", ind)
	case 3: // US unprotected selfdestruct
		b.label(oracle.US)
		b.hasValueOut = true
		return fmt.Sprintf("%sselfdestruct(msg.sender);\n", ind)
	case 4: // TO origin guard
		b.label(oracle.TO)
		return fmt.Sprintf("%srequire(tx.origin == owner);\n%sowner = msg.sender;\n", ind, ind)
	default: // SE strict balance equality
		b.label(oracle.SE)
		return fmt.Sprintf("%sif (this.balance == %d) { owner = msg.sender; }\n", ind, 100+b.rng.Intn(1000))
	}
}
