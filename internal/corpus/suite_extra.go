package corpus

import "mufuzz/internal/oracle"

// ExtraSuite returns the incident-patterned batch of labelled contracts —
// one of the two suites the conformance detection gate runs over (see
// experiments.DetectionGate).
func ExtraSuite() []Labeled { return extraSuite() }

// extraSuite extends the labelled vulnerability suite with contracts
// modelled on well-known Ethereum incidents and SWC-registry patterns. They
// are appended to VulnSuite().
func extraSuite() []Labeled {
	return []Labeled{
		// FoMo3D-style timer game: the winner is decided by block state.
		{
			Name: "bd_fomo_timer",
			Source: `contract BdFomo {
				address lastBuyer;
				uint256 deadline;
				uint256 pot;
				constructor() public { deadline = block.timestamp + 600; }
				function buyKey() public payable {
					require(msg.value >= 1 finney);
					pot += msg.value;
					lastBuyer = msg.sender;
					deadline = block.timestamp + 600;
				}
				function claim() public {
					if (block.timestamp > deadline) {
						lastBuyer.transfer(pot);
						pot = 0;
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.BD},
		},
		// King-of-the-Ether-Throne: the dethroned king's compensation is sent
		// with an unchecked send that can exceed the contract balance (the
		// compensation formula promises more than the pot holds).
		{
			Name: "ue_kote_throne",
			Source: `contract UeThrone {
				address king;
				uint256 claimPrice = 100;
				function claimThrone() public payable {
					require(msg.value >= claimPrice);
					king.send(claimPrice * 3);
					king = msg.sender;
					claimPrice = msg.value * 2;
				}
			}`,
			Labels: []oracle.BugClass{oracle.UE},
		},
		// The DAO split pattern: balance zeroed after the external call, and
		// the amount is attacker-controlled.
		{
			Name: "re_dao_split",
			Hard: true,
			Source: `contract ReDaoSplit {
				mapping(address => uint256) credit;
				uint256 epoch;
				function join() public payable {
					credit[msg.sender] += msg.value;
				}
				function season(uint256 k) public {
					if (epoch < 1) { epoch += 1; }
				}
				function splitDAO(uint256 amount) public {
					require(epoch >= 1);
					if (credit[msg.sender] >= amount) {
						if (amount > 0) {
							require(msg.sender.call.value(amount)());
							credit[msg.sender] -= amount;
						}
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.RE},
		},
		// Rubixi-style: the "constructor" is a plain public function after a
		// rename, so anyone can become the owner and then drain.
		{
			Name: "us_rubixi_owner",
			Hard: true,
			Source: `contract UsRubixi {
				address creator;
				uint256 pot;
				function dynamicPyramid() public {
					creator = msg.sender;
				}
				function collect() public {
					require(msg.sender == creator);
					selfdestruct(creator);
				}
				function feed() public payable { pot += msg.value; }
			}`,
			Labels: []oracle.BugClass{oracle.US},
		},
		// Honeypot-style strict balance trap.
		{
			Name: "se_honeypot_trap",
			Source: `contract SeHoneypot {
				uint256 unlocked;
				function poke() public payable {
					if (this.balance == 1 finney) {
						unlocked = 1;
					}
				}
				function drain() public {
					require(unlocked == 1);
					msg.sender.transfer(this.balance);
				}
			}`,
			Labels: []oracle.BugClass{oracle.SE},
		},
		// Proxy wallet with user-supplied library address (Parity-like).
		{
			Name: "ud_wallet_library",
			Hard: true,
			Source: `contract UdWalletLib {
				uint256 configured;
				address lib;
				function configure(address library) public {
					if (configured == 0) {
						lib = library;
						configured = 1;
					}
				}
				function invoke(uint256 op, uint256 arg) public {
					require(configured == 1);
					lib.delegatecall(op, arg);
				}
			}`,
			Labels: []oracle.BugClass{oracle.UD},
		},
		// Airdrop with multiplication overflow (BEC-style) behind a whitelist
		// round counter.
		{
			Name: "io_airdrop_rounds",
			Hard: true,
			Source: `contract IoAirdrop {
				mapping(address => uint256) bal;
				uint256 round;
				function advance(uint256 x) public {
					if (round < 2) { round += 1; }
				}
				function airdrop(uint256 cnt, uint256 each) public {
					if (round >= 2) {
						uint256 total = cnt * each;
						bal[msg.sender] += total;
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.IO},
		},
		// Phishable wallet: authentication via tx.origin lets a malicious
		// intermediary spend on the victim's behalf.
		{
			Name: "to_phishable",
			Source: `contract ToPhishable {
				address owner;
				constructor() public { owner = msg.sender; }
				function pay(address to, uint256 amount) public {
					require(tx.origin == owner);
					to.transfer(amount);
				}
				function fund() public payable { }
			}`,
			Labels: []oracle.BugClass{oracle.TO},
		},
		// GovernMental-style jackpot: ether accumulates, payout path is
		// blocked by a strict condition no one can satisfy, and there is no
		// other way out — combined SE + freeze behaviour.
		{
			Name: "se_governmental",
			Source: `contract SeGovernmental {
				uint256 jackpot;
				uint256 lastCreditor;
				function lend() public payable {
					require(msg.value >= 1 finney);
					jackpot += msg.value;
					lastCreditor = uint256(msg.sender);
				}
				function payoutCheck() public {
					if (this.balance == 10 ether) {
						lastCreditor = 0;
					}
				}
			}`,
			Labels: []oracle.BugClass{oracle.SE, oracle.EF},
		},
		// Multi-bug DeFi pool: timestamp reward schedule, unchecked reward
		// send, and an unguarded burn underflow.
		{
			Name: "multi_defipool",
			Source: `contract MultiDefi {
				mapping(address => uint256) shares;
				uint256 rewardRate = 5;
				function stake() public payable { shares[msg.sender] += msg.value; }
				function reward() public {
					if (block.number % 10 == 0) {
						msg.sender.send(shares[msg.sender] * rewardRate);
					}
				}
				function exit(uint256 n) public {
					shares[msg.sender] -= n;
					msg.sender.transfer(n);
				}
			}`,
			Labels: []oracle.BugClass{oracle.BD, oracle.UE, oracle.IO},
		},
	}
}
