package analysis

import (
	"mufuzz/internal/evm"
)

// Weight parameters for Algorithm 3 (BRANCH_WEIGHTED). The absolute scale is
// arbitrary; the fuzzer normalizes when converting weights to energy.
const (
	// maxNestedScore caps the path-position score so loops do not dominate.
	maxNestedScore = 16
	// vulnBonus is the additional weight for a branch past which a
	// vulnerable instruction is reachable (w2 in the paper).
	vulnBonus = 8.0
)

// BranchWeights maps branch edges to fuzzing weights. Higher weight means
// the dynamic energy adjuster allocates more mutation budget to seeds whose
// paths cross the edge (paper §IV-C).
type BranchWeights map[evm.BranchKey]float64

// Merge folds o into w keeping the maximum weight per edge.
func (w BranchWeights) Merge(o BranchWeights) {
	for k, v := range o {
		if v > w[k] {
			w[k] = v
		}
	}
}

// WeightTrace implements Algorithm 3 over one pre-fuzz execution trace: walk
// the exercised path's split points in order, increment nested_score at each
// branch instruction (w1), and add the vulnerable-instruction bonus (w2)
// when the prefix analysis proves a vulnerable instruction reachable past
// the branch.
func WeightTrace(branches []evm.BranchEvent, cfg *CFG) BranchWeights {
	w := make(BranchWeights, len(branches))
	nestedScore := 0
	for _, br := range branches {
		if nestedScore < maxNestedScore {
			nestedScore++
		}
		weight := float64(nestedScore) // w1 = WEIGHT_ASSIGN(nested_score)
		if cfg != nil && cfg.VulnReachablePastBranch(br.PC, br.Taken) {
			weight += vulnBonus // w2
		}
		key := br.Key()
		if weight > w[key] {
			w[key] = weight
		}
	}
	return w
}

// PathWeight sums the weights of the branch edges exercised by a trace —
// the quantity energy allocation is proportional to.
func PathWeight(branches []evm.BranchEvent, w BranchWeights) float64 {
	total := 0.0
	seen := make(map[evm.BranchKey]bool, len(branches))
	for _, br := range branches {
		k := br.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		total += w[k]
	}
	return total
}
