package analysis

import (
	"reflect"
	"testing"

	"mufuzz/internal/abi"
	"mufuzz/internal/evm"
	"mufuzz/internal/minisol"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// crowdsaleSrc mirrors the paper's Fig. 1 contract.
const crowdsaleSrc = `
contract Crowdsale {
    uint256 phase = 0;
    uint256 goal;
    uint256 invested;
    address owner;
    mapping(address => uint256) invests;

    constructor() public {
        goal = 100 ether;
        invested = 0;
        owner = msg.sender;
    }
    function invest(uint256 donations) public payable {
        if (invested < goal) {
            invests[msg.sender] += donations;
            invested += donations;
            phase = 0;
        } else {
            phase = 1;
        }
    }
    function refund() public {
        if (phase == 0) {
            msg.sender.transfer(invests[msg.sender]);
            invests[msg.sender] = 0;
        }
    }
    function withdraw() public {
        if (phase == 1) {
            owner.transfer(invested);
        }
    }
}`

func mustCompile(t testing.TB, src string) *minisol.Compiled {
	t.Helper()
	comp, err := minisol.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

// --- Dataflow (paper Fig. 3) ---

func TestCrowdsaleDataflowMatchesFig3(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	d := AnalyzeDataflow(comp.Contract)

	inv, ok := d.FuncByName("invest")
	if !ok {
		t.Fatal("invest summary missing")
	}
	// Fig 3: invest reads goal, invested; writes invested, invests, phase.
	if got := inv.Reads.Sorted(); !reflect.DeepEqual(got, []string{"goal", "invested", "invests"}) {
		// invests is read by `invests[msg.sender] += donations` (compound)
		t.Errorf("invest reads = %v", got)
	}
	if got := inv.Writes.Sorted(); !reflect.DeepEqual(got, []string{"invested", "invests", "phase"}) {
		t.Errorf("invest writes = %v", got)
	}
	// The RAW dependency the paper highlights: invested is written and read
	// by the branch condition `invested < goal`.
	if !inv.RAW["invested"] {
		t.Errorf("invest RAW = %v, want invested", inv.RAW.Sorted())
	}

	ref, _ := d.FuncByName("refund")
	if !ref.Reads["phase"] || !ref.Reads["invests"] {
		t.Errorf("refund reads = %v", ref.Reads.Sorted())
	}
	if !ref.Writes["invests"] {
		t.Errorf("refund writes = %v", ref.Writes.Sorted())
	}
	if len(ref.RAW) != 0 && !ref.RAW["invests"] {
		t.Errorf("refund RAW unexpected: %v", ref.RAW.Sorted())
	}

	wd, _ := d.FuncByName("withdraw")
	if !wd.Reads["phase"] || !wd.Reads["invested"] {
		t.Errorf("withdraw reads = %v", wd.Reads.Sorted())
	}
	if len(wd.Writes) != 0 {
		t.Errorf("withdraw writes = %v", wd.Writes.Sorted())
	}
}

func TestDependencyOrderCrowdsale(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	d := AnalyzeDataflow(comp.Contract)
	order := d.DependencyOrder()
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	// invest writes phase/invested which refund and withdraw read → invest first.
	if !(pos["invest"] < pos["refund"] && pos["invest"] < pos["withdraw"]) {
		t.Errorf("order = %v; invest must precede refund and withdraw", order)
	}
}

func TestRepeatCandidates(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	d := AnalyzeDataflow(comp.Contract)
	cands := d.RepeatCandidates()
	found := false
	for _, c := range cands {
		if c == "invest" {
			found = true
		}
	}
	if !found {
		t.Errorf("repeat candidates = %v, want invest", cands)
	}
}

func TestStatelessFunctionDetected(t *testing.T) {
	src := `contract S {
		uint256 x;
		function pureMath(uint256 a) public returns (uint256) { return a * 2; }
		function touch() public { x = 1; }
	}`
	d := AnalyzeDataflow(mustCompile(t, src).Contract)
	pm, _ := d.FuncByName("pureMath")
	if !pm.Stateless {
		t.Error("pureMath should be stateless")
	}
	th, _ := d.FuncByName("touch")
	if th.Stateless {
		t.Error("touch is not stateless")
	}
	order := d.DependencyOrder()
	if order[len(order)-1] != "pureMath" {
		t.Errorf("stateless functions should sort last: %v", order)
	}
}

func TestCtorWritesIncludeInitializers(t *testing.T) {
	d := AnalyzeDataflow(mustCompile(t, crowdsaleSrc).Contract)
	if !d.Ctor.Writes["phase"] {
		t.Errorf("ctor writes = %v, should include initialized phase", d.Ctor.Writes.Sorted())
	}
	if !d.Ctor.Writes["owner"] {
		t.Errorf("ctor writes = %v, should include owner", d.Ctor.Writes.Sorted())
	}
}

// --- CFG ---

func TestDisassembleRoundtrip(t *testing.T) {
	a := evm.NewAssembler()
	a.PushUint(5).PushUint(7).Op(evm.ADD).Op(evm.STOP)
	code := a.MustBuild()
	ins := Disassemble(code)
	if len(ins) != 4 {
		t.Fatalf("instructions = %d", len(ins))
	}
	if ins[0].Op != evm.PUSH1 || ins[0].Imm[0] != 5 {
		t.Errorf("ins0 = %+v", ins[0])
	}
	if ins[2].Op != evm.ADD || ins[3].Op != evm.STOP {
		t.Errorf("tail = %+v %+v", ins[2], ins[3])
	}
}

func TestCFGBranches(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	cfg := BuildCFG(comp.Code)
	// Every compiler-recorded site must be a JUMPI in the CFG.
	pcs := map[uint64]bool{}
	for _, pc := range cfg.BranchPCs() {
		pcs[pc] = true
	}
	for _, site := range comp.Branches {
		if !pcs[site.PC] {
			t.Errorf("site %d (%s in %s) not found as CFG branch", site.PC, site.Kind, site.Func)
		}
	}
	if cfg.CountBranches() < len(comp.Branches) {
		t.Errorf("cfg branches %d < sites %d", cfg.CountBranches(), len(comp.Branches))
	}
}

func TestCFGSuccessorsResolved(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	cfg := BuildCFG(comp.Code)
	// Each JUMPI block must have exactly two successors (target resolved via
	// the preceding PUSH2 the compiler always emits).
	for _, start := range cfg.Order {
		b := cfg.Blocks[start]
		if b.HasJumpi && len(b.Succs) != 2 {
			t.Errorf("JUMPI block at %d has %d successors", b.Start, len(b.Succs))
		}
	}
}

func TestVulnReachability(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	cfg := BuildCFG(comp.Code)
	// withdraw contains owner.transfer → a CALL. The if(phase==1) branch in
	// withdraw must show vuln reachable on its taken path... we check at
	// least one branch distinguishes directions or reaches a CALL.
	if len(cfg.VulnPCs) == 0 {
		t.Fatal("no vulnerable instructions found; transfer should emit CALL")
	}
	anyReach := false
	for _, pc := range cfg.BranchPCs() {
		if cfg.VulnReachablePastBranch(pc, true) || cfg.VulnReachablePastBranch(pc, false) {
			anyReach = true
		}
	}
	if !anyReach {
		t.Error("no branch reaches a vulnerable instruction")
	}
}

func TestVulnReachDirectionality(t *testing.T) {
	// if (x == 1) { selfdestruct } else { } — vuln reachable only via taken.
	src := `contract V {
		uint256 x;
		function f(uint256 a) public {
			if (a == 1) {
				selfdestruct(msg.sender);
			} else {
				x = 2;
			}
		}
	}`
	comp := mustCompile(t, src)
	cfg := BuildCFG(comp.Code)
	// find the if site
	var ifPC uint64
	var found bool
	for _, s := range comp.Branches {
		if s.Kind == minisol.BranchIf && s.Func == "f" {
			ifPC, found = s.PC, true
		}
	}
	if !found {
		t.Fatal("if site missing")
	}
	// codegen emits ISZERO JUMPI else — taken = condition false = else branch
	// (x=2, no vuln); fallthrough = then branch (selfdestruct).
	if cfg.VulnReachablePastBranch(ifPC, true) {
		t.Error("else side should not reach selfdestruct")
	}
	if !cfg.VulnReachablePastBranch(ifPC, false) {
		t.Error("then side must reach selfdestruct")
	}
}

func TestBranchSiteDepths(t *testing.T) {
	src := `contract N {
		uint256 x;
		function f(uint256 a, uint256 b) public {
			if (a > 1) {
				if (b > 2) {
					if (a + b > 10) { x = 1; }
				}
			}
		}
	}`
	comp := mustCompile(t, src)
	var depths []int
	for _, s := range comp.Branches {
		if s.Kind == minisol.BranchIf {
			depths = append(depths, s.Depth)
		}
	}
	if !reflect.DeepEqual(depths, []int{1, 2, 3}) {
		t.Errorf("if depths = %v, want [1 2 3]", depths)
	}
}

// --- Weights (Algorithm 3) ---

func TestWeightTraceIncreasesAlongPath(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	cfg := BuildCFG(comp.Code)
	addr := state.AddressFromUint(1)
	branches := []evm.BranchEvent{
		{Addr: addr, PC: 10, Taken: true},
		{Addr: addr, PC: 20, Taken: false},
		{Addr: addr, PC: 30, Taken: true},
	}
	w := WeightTrace(branches, cfg)
	if len(w) != 3 {
		t.Fatalf("weights = %v", w)
	}
	k1 := branches[0].Key()
	k3 := branches[2].Key()
	if w[k3] <= w[k1] {
		t.Errorf("later branches must weigh more: %v vs %v", w[k3], w[k1])
	}
}

func TestWeightVulnBonus(t *testing.T) {
	src := `contract V {
		uint256 x;
		function f(uint256 a) public {
			if (a == 1) { selfdestruct(msg.sender); } else { x = 2; }
		}
	}`
	comp := mustCompile(t, src)
	cfg := BuildCFG(comp.Code)
	var ifPC uint64
	for _, s := range comp.Branches {
		if s.Kind == minisol.BranchIf {
			ifPC = s.PC
		}
	}
	addr := state.AddressFromUint(1)
	// Same position in path; only direction differs.
	wVuln := WeightTrace([]evm.BranchEvent{{Addr: addr, PC: ifPC, Taken: false}}, cfg)
	wSafe := WeightTrace([]evm.BranchEvent{{Addr: addr, PC: ifPC, Taken: true}}, cfg)
	kV := evm.BranchKey{Addr: addr, PC: ifPC, Taken: false}
	kS := evm.BranchKey{Addr: addr, PC: ifPC, Taken: true}
	if wVuln[kV] <= wSafe[kS] {
		t.Errorf("vulnerable side weight %v should exceed safe side %v", wVuln[kV], wSafe[kS])
	}
}

func TestWeightCapAndMerge(t *testing.T) {
	addr := state.AddressFromUint(1)
	var branches []evm.BranchEvent
	for i := 0; i < 100; i++ {
		branches = append(branches, evm.BranchEvent{Addr: addr, PC: uint64(i), Taken: true})
	}
	w := WeightTrace(branches, nil)
	last := evm.BranchKey{Addr: addr, PC: 99, Taken: true}
	if w[last] > maxNestedScore+vulnBonus {
		t.Errorf("weight should be capped: %v", w[last])
	}
	// Merge keeps maxima.
	w2 := BranchWeights{last: 1.0}
	w2.Merge(w)
	if w2[last] != w[last] {
		t.Error("merge should keep the larger weight")
	}
}

func TestPathWeightDedupes(t *testing.T) {
	addr := state.AddressFromUint(1)
	br := evm.BranchEvent{Addr: addr, PC: 5, Taken: true}
	w := BranchWeights{br.Key(): 3.0}
	total := PathWeight([]evm.BranchEvent{br, br, br}, w)
	if total != 3.0 {
		t.Errorf("repeated edges must count once, got %v", total)
	}
}

// --- Integration: weights from a real pre-fuzz run ---

func TestWeightsFromExecution(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	st := state.New()
	deployer := state.AddressFromUint(0xd)
	user := state.AddressFromUint(0xa)
	addrC := state.AddressFromUint(0xc)
	st.SetBalance(deployer, u256.New(1).Lsh(100))
	st.SetBalance(user, u256.New(1).Lsh(100))
	st.Commit()
	e := evm.New(st, evm.BlockCtx{Timestamp: 1000, Number: 1})
	e.Trace = evm.NewTrace()
	if err := minisol.Deploy(e, deployer, addrC, comp, nil, u256.Zero, 10_000_000); err != nil {
		t.Fatal(err)
	}

	m, _ := comp.ABI.MethodByName("invest")
	data, err := abi.EncodeCall(m, []abi.Value{abi.NewWord(abi.Uint256, u256.New(5))})
	if err != nil {
		t.Fatal(err)
	}
	e.Trace = evm.NewTrace()
	if _, err := e.Transact(user, addrC, u256.Zero, data, 10_000_000); err != nil {
		t.Fatal(err)
	}
	cfg := BuildCFG(comp.Code)
	w := WeightTrace(e.Trace.Branches, cfg)
	if len(w) == 0 {
		t.Fatal("no weights from a real execution")
	}
	if PathWeight(e.Trace.Branches, w) <= 0 {
		t.Error("path weight should be positive")
	}
}
