package analysis

import (
	"math"
	"math/rand"
	"testing"

	"mufuzz/internal/evm"
	"mufuzz/internal/state"
)

func TestBranchIndexNumbersEveryCFGEdge(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	cfg := BuildCFG(comp.Code)
	ix := NewBranchIndex(cfg)

	pcs := cfg.BranchPCs()
	if ix.NumBranches() != len(pcs) {
		t.Fatalf("NumBranches = %d, want %d", ix.NumBranches(), len(pcs))
	}
	if ix.NumEdges() != 2*len(pcs) {
		t.Fatalf("NumEdges = %d, want %d", ix.NumEdges(), 2*len(pcs))
	}
	// IDs follow the deterministic branch order the engine used to derive by
	// sorting BranchKeys: pc ascending, not-taken before taken.
	next := int32(0)
	for _, pc := range pcs {
		for _, taken := range []bool{false, true} {
			id, ok := ix.EdgeID(pc, taken)
			if !ok {
				t.Fatalf("edge (%d,%v) not indexed", pc, taken)
			}
			if id != next {
				t.Fatalf("edge (%d,%v) = id %d, want %d (order mismatch)", pc, taken, id, next)
			}
			gotPC, gotTaken := ix.Edge(id)
			if gotPC != pc || gotTaken != taken {
				t.Fatalf("Edge(%d) = (%d,%v), want (%d,%v)", id, gotPC, gotTaken, pc, taken)
			}
			// id^1 is the opposite direction
			oppID, _ := ix.EdgeID(pc, !taken)
			if oppID != id^1 {
				t.Fatalf("opposite of %d is %d, want %d", id, oppID, id^1)
			}
			next++
		}
	}
	// Non-branch pcs are not indexed.
	if _, ok := ix.EdgeID(pcs[0]+1, false); ok {
		t.Error("non-JUMPI pc must not resolve")
	}
	if _, ok := ix.EdgeID(1<<32, false); ok {
		t.Error("out-of-range pc must not resolve")
	}
}

func TestBranchIndexVulnPastMatchesCFG(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	cfg := BuildCFG(comp.Code)
	ix := NewBranchIndex(cfg)
	for _, pc := range cfg.BranchPCs() {
		for _, taken := range []bool{false, true} {
			id, _ := ix.EdgeID(pc, taken)
			if got, want := ix.VulnPast(id), cfg.VulnReachablePastBranch(pc, taken); got != want {
				t.Errorf("VulnPast(%d,%v) = %v, want %v", pc, taken, got, want)
			}
		}
	}
}

// TestEdgeWeightsMatchMapImplementation drives the indexed EdgeWeights and
// the reference map-based WeightTrace/Merge/PathWeight through identical
// random traces and asserts every observable — per-edge weights, count,
// total, path weights — stays bit-identical. The indexed fold is the hot
// path; the map implementation is its executable specification.
func TestEdgeWeightsMatchMapImplementation(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	cfg := BuildCFG(comp.Code)
	ix := NewBranchIndex(cfg)
	pcs := cfg.BranchPCs()
	addr := state.AddressFromUint(1)

	rng := rand.New(rand.NewSource(11))
	ew := NewEdgeWeights(ix)
	ref := make(BranchWeights)

	for trace := 0; trace < 50; trace++ {
		n := 1 + rng.Intn(12)
		branches := make([]evm.BranchEvent, n)
		for i := range branches {
			pc := pcs[rng.Intn(len(pcs))]
			taken := rng.Intn(2) == 0
			branches[i] = evm.BranchEvent{Addr: addr, PC: pc, Taken: taken}
		}
		ew.MergeTrace(branches)
		ref.Merge(WeightTrace(branches, cfg))

		if got, want := ew.PathWeight(branches), PathWeight(branches, ref); got != want {
			t.Fatalf("trace %d: PathWeight %v != reference %v", trace, got, want)
		}
		if got, want := ew.PathWeightTx([][]evm.BranchEvent{branches[:n/2], branches[n/2:]}), PathWeight(branches, ref); got != want {
			t.Fatalf("trace %d: PathWeightTx %v != reference %v", trace, got, want)
		}
	}

	if ew.Count() != len(ref) {
		t.Fatalf("Count = %d, want %d", ew.Count(), len(ref))
	}
	var total float64
	for _, w := range ref {
		total += w
	}
	if math.Abs(ew.Total()-total) != 0 {
		t.Fatalf("Total = %v, want %v", ew.Total(), total)
	}
	for k, w := range ref {
		id, _ := ix.EdgeID(k.PC, k.Taken)
		if ew.w[id] != w {
			t.Fatalf("edge %v weight %v != reference %v", k, ew.w[id], w)
		}
	}
}
