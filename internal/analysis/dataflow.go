// Package analysis implements the static analyses MuFuzz's feedback loops
// consume: state-variable data-flow dependencies between functions (paper
// §IV-A), a bytecode control-flow graph with vulnerable-instruction
// reachability (the "lightweight abstract interpreter" of §IV-C), and branch
// weight assignment (Algorithm 3).
package analysis

import (
	"sort"

	"mufuzz/internal/minisol"
)

// VarSet is a set of state-variable names.
type VarSet map[string]bool

// Add inserts names.
func (s VarSet) Add(names ...string) {
	for _, n := range names {
		s[n] = true
	}
}

// Union merges o into s.
func (s VarSet) Union(o VarSet) {
	for n := range o {
		s[n] = true
	}
}

// Intersects reports whether the sets share an element.
func (s VarSet) Intersects(o VarSet) bool {
	for n := range o {
		if s[n] {
			return true
		}
	}
	return false
}

// Sorted returns the elements in sorted order.
func (s VarSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for n := range s {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FuncDataflow summarizes one function's interaction with persistent state.
type FuncDataflow struct {
	Name string
	// Reads is every state variable the function reads anywhere.
	Reads VarSet
	// Writes is every state variable the function writes.
	Writes VarSet
	// BranchReads is every state variable read inside a branch condition
	// (if / while / require).
	BranchReads VarSet
	// RAW is the set of state variables with a read-after-write dependency
	// inside this function where the variable is also read by a branch
	// condition — the trigger for consecutive-repetition sequence mutation
	// (paper §IV-A, the `invest` case).
	RAW VarSet
	// Stateless is true when the function touches no state variables at all;
	// the paper's fuzzer deprioritizes such functions.
	Stateless bool
}

// Dataflow is the whole-contract dependency summary.
type Dataflow struct {
	Contract *minisol.Contract
	// Funcs holds per-function summaries for normal functions (not the
	// constructor), in declaration order.
	Funcs []FuncDataflow
	// Ctor summarizes the constructor (writes initialize the state).
	Ctor FuncDataflow
}

// FuncByName returns a function summary.
func (d *Dataflow) FuncByName(name string) (FuncDataflow, bool) {
	for _, f := range d.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return FuncDataflow{}, false
}

// AnalyzeDataflow computes read/write/branch-read/RAW sets for every
// function of a checked contract.
func AnalyzeDataflow(c *minisol.Contract) *Dataflow {
	d := &Dataflow{Contract: c}
	if c.Ctor != nil {
		d.Ctor = analyzeFunc(c.Ctor)
	} else {
		d.Ctor = FuncDataflow{Name: "constructor", Reads: VarSet{}, Writes: VarSet{}, BranchReads: VarSet{}, RAW: VarSet{}}
		// implicit constructor: state-var initializers are writes
	}
	// Initializers always count as constructor writes.
	for _, sv := range c.StateVars {
		if sv.Init != nil {
			d.Ctor.Writes.Add(sv.Name)
		}
	}
	for i := range c.Functions {
		d.Funcs = append(d.Funcs, analyzeFunc(&c.Functions[i]))
	}
	return d
}

func analyzeFunc(fn *minisol.Function) FuncDataflow {
	f := FuncDataflow{
		Name:        fn.Name,
		Reads:       VarSet{},
		Writes:      VarSet{},
		BranchReads: VarSet{},
		RAW:         VarSet{},
	}
	walkStmts(fn.Body, &f)
	for v := range f.Writes {
		if f.BranchReads[v] {
			f.RAW.Add(v)
		}
	}
	f.Stateless = len(f.Reads) == 0 && len(f.Writes) == 0
	return f
}

func walkStmts(stmts []minisol.Stmt, f *FuncDataflow) {
	for _, s := range stmts {
		walkStmt(s, f)
	}
}

func walkStmt(s minisol.Stmt, f *FuncDataflow) {
	switch st := s.(type) {
	case *minisol.VarDeclStmt:
		if st.Init != nil {
			readsOf(st.Init, f.Reads)
		}
	case *minisol.AssignStmt:
		// Target writes; compound assignment also reads the target.
		switch t := st.Target.(type) {
		case *minisol.Ident:
			if isStateVar(t) {
				f.Writes.Add(t.Name)
				if st.Op != "=" {
					f.Reads.Add(t.Name)
				}
			}
		case *minisol.IndexExpr:
			if isStateVar(t.Map) {
				f.Writes.Add(t.Map.Name)
				if st.Op != "=" {
					f.Reads.Add(t.Map.Name)
				}
			}
			readsOf(t.Key, f.Reads)
		}
		readsOf(st.Value, f.Reads)
	case *minisol.IfStmt:
		readsOf(st.Cond, f.Reads)
		readsOf(st.Cond, f.BranchReads)
		walkStmts(st.Then, f)
		walkStmts(st.Else, f)
	case *minisol.WhileStmt:
		readsOf(st.Cond, f.Reads)
		readsOf(st.Cond, f.BranchReads)
		walkStmts(st.Body, f)
	case *minisol.RequireStmt:
		readsOf(st.Cond, f.Reads)
		readsOf(st.Cond, f.BranchReads)
	case *minisol.ReturnStmt:
		if st.Value != nil {
			readsOf(st.Value, f.Reads)
		}
	case *minisol.TransferStmt:
		readsOf(st.Target, f.Reads)
		readsOf(st.Amount, f.Reads)
	case *minisol.SelfDestructStmt:
		readsOf(st.Beneficiary, f.Reads)
	case *minisol.ExprStmt:
		readsOf(st.X, f.Reads)
	}
}

func isStateVar(id *minisol.Ident) bool {
	return id.Binding != nil && id.Binding.Kind == minisol.BindStateVar
}

// readsOf collects state variables read by an expression into set.
func readsOf(e minisol.Expr, set VarSet) {
	switch t := e.(type) {
	case *minisol.Ident:
		if isStateVar(t) {
			set.Add(t.Name)
		}
	case *minisol.IndexExpr:
		if isStateVar(t.Map) {
			set.Add(t.Map.Name)
		}
		readsOf(t.Key, set)
	case *minisol.BinaryExpr:
		readsOf(t.L, set)
		readsOf(t.R, set)
	case *minisol.UnaryExpr:
		readsOf(t.X, set)
	case *minisol.BalanceExpr:
		readsOf(t.Addr, set)
	case *minisol.KeccakExpr:
		for _, a := range t.Args {
			readsOf(a, set)
		}
	case *minisol.CallValueExpr:
		readsOf(t.Target, set)
		readsOf(t.Amount, set)
	case *minisol.SendExpr:
		readsOf(t.Target, set)
		readsOf(t.Amount, set)
	case *minisol.DelegateCallExpr:
		readsOf(t.Target, set)
		for _, a := range t.Args {
			readsOf(a, set)
		}
	case *minisol.CastExpr:
		readsOf(t.X, set)
	}
}

// DependencyOrder returns function names ordered so that writers of a state
// variable come before its readers (paper §IV-A: T1 before T2 iff T1 writes
// V and T2 reads it). Stateless functions are appended at the end. Cycles
// are broken deterministically by declaration order.
func (d *Dataflow) DependencyOrder() []string {
	n := len(d.Funcs)
	// edge i -> j when i writes something j reads (i must come first)
	indeg := make([]int, n)
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if d.Funcs[i].Writes.Intersects(d.Funcs[j].Reads) &&
				// Skip symmetric edges to keep the graph closer to a DAG:
				// when both write what the other reads, declaration order
				// decides (only add the forward edge).
				!(j < i && d.Funcs[j].Writes.Intersects(d.Funcs[i].Reads)) {
				adj[i] = append(adj[i], j)
				indeg[j]++
			}
		}
	}
	// Kahn's algorithm with deterministic tie-breaking; stateless functions
	// are held back until the end.
	var order []string
	used := make([]bool, n)
	var stateless []string
	for len(order)+len(stateless) < n {
		pick := -1
		for i := 0; i < n; i++ {
			if !used[i] && indeg[i] == 0 {
				pick = i
				break
			}
		}
		if pick < 0 {
			// cycle: take the first unused node
			for i := 0; i < n; i++ {
				if !used[i] {
					pick = i
					break
				}
			}
		}
		used[pick] = true
		for _, j := range adj[pick] {
			indeg[j]--
		}
		if d.Funcs[pick].Stateless {
			stateless = append(stateless, d.Funcs[pick].Name)
		} else {
			order = append(order, d.Funcs[pick].Name)
		}
	}
	return append(order, stateless...)
}

// RepeatCandidates returns the names of functions that should be executed
// consecutively in a mutated sequence: those with a RAW dependency on a
// branch-read state variable (paper §IV-A).
func (d *Dataflow) RepeatCandidates() []string {
	var out []string
	for _, f := range d.Funcs {
		if len(f.RAW) > 0 {
			out = append(out, f.Name)
		}
	}
	return out
}
