package analysis

import (
	"mufuzz/internal/evm"
)

// BranchIndex interns the branch-edge identities of one contract: every
// JUMPI site in the CFG gets a branch number (ascending pc), and every edge
// — a (site, direction) pair — gets a compact ID. IDs let the campaign's
// hot feedback fold replace map[evm.BranchKey] hashing and per-selection
// key re-sorts with plain array walks: ID order IS the deterministic branch
// order (pc ascending, not-taken before taken), computed once per campaign.
//
// Edge ID layout: branch i covers IDs 2i (not taken) and 2i+1 (taken), so
// id^1 is the opposite direction and id ascending matches the ordering the
// pre-interning engine produced by sorting BranchKeys.
type BranchIndex struct {
	// pcs lists every JUMPI pc, ascending; the branch number is the slice
	// index.
	pcs []uint64
	// branchByPC maps a pc to its branch number via direct array indexing
	// (-1 for non-JUMPI pcs). Bytecode is small, so a code-length array
	// turns the per-event lookup into one bounds-checked load.
	branchByPC []int32
	// vulnPast[id] precomputes CFG.VulnReachablePastBranch for every edge,
	// so Algorithm 3 weight folding needs no block scan per event.
	vulnPast []bool
}

// NewBranchIndex numbers every branch edge of the CFG.
func NewBranchIndex(cfg *CFG) *BranchIndex {
	pcs := cfg.BranchPCs()
	maxPC := uint64(0)
	for _, pc := range pcs {
		if pc > maxPC {
			maxPC = pc
		}
	}
	ix := &BranchIndex{
		pcs:        pcs,
		branchByPC: make([]int32, maxPC+1),
		vulnPast:   make([]bool, 2*len(pcs)),
	}
	for i := range ix.branchByPC {
		ix.branchByPC[i] = -1
	}
	for i, pc := range pcs {
		ix.branchByPC[pc] = int32(i)
		ix.vulnPast[2*i] = cfg.VulnReachablePastBranch(pc, false)
		ix.vulnPast[2*i+1] = cfg.VulnReachablePastBranch(pc, true)
	}
	return ix
}

// NumBranches returns the number of JUMPI sites.
func (ix *BranchIndex) NumBranches() int { return len(ix.pcs) }

// NumEdges returns the number of branch edges (2 per site) — the campaign's
// coverage denominator.
func (ix *BranchIndex) NumEdges() int { return 2 * len(ix.pcs) }

// EdgeID returns the compact ID of the (pc, taken) edge, or false when pc is
// not a known JUMPI site.
func (ix *BranchIndex) EdgeID(pc uint64, taken bool) (int32, bool) {
	if pc >= uint64(len(ix.branchByPC)) {
		return -1, false
	}
	b := ix.branchByPC[pc]
	if b < 0 {
		return -1, false
	}
	id := 2 * b
	if taken {
		id++
	}
	return id, true
}

// Edge returns the (pc, taken) identity of an edge ID.
func (ix *BranchIndex) Edge(id int32) (pc uint64, taken bool) {
	return ix.pcs[id/2], id&1 == 1
}

// VulnPast reports whether a vulnerable instruction is reachable past the
// edge (precomputed CFG.VulnReachablePastBranch).
func (ix *BranchIndex) VulnPast(id int32) bool { return ix.vulnPast[id] }

// EdgeOf resolves a branch event to its compact edge ID: the interned
// reference carried by the event when present, an index lookup otherwise.
// Returns -1 for events whose pc is not a known JUMPI site.
func (ix *BranchIndex) EdgeOf(br evm.BranchEvent) int32 {
	if id, ok := br.IndexedEdge(); ok {
		return id
	}
	if id, ok := ix.EdgeID(br.PC, br.Taken); ok {
		return id
	}
	return -1
}

// EdgeWeights is the indexed replacement for BranchWeights: Algorithm 3
// weights in a dense slice keyed by edge ID, with the running total and
// nonzero count maintained incrementally so energy assignment is O(1)
// instead of a map sweep.
type EdgeWeights struct {
	ix *BranchIndex
	w  []float64
	// nonzero counts edges with an assigned weight; total is their sum.
	// Weights are sums of small integers, so total is exact and matches the
	// map engine's re-summation bit for bit regardless of fold order.
	nonzero int
	total   float64
	// stamp/stampGen implement an O(1)-reset visited set for PathWeight's
	// per-trace dedup, replacing a per-call map allocation.
	stamp    []uint64
	stampGen uint64
}

// NewEdgeWeights returns zeroed weights over the index's edge space.
func NewEdgeWeights(ix *BranchIndex) *EdgeWeights {
	return &EdgeWeights{
		ix:    ix,
		w:     make([]float64, ix.NumEdges()),
		stamp: make([]uint64, ix.NumEdges()),
	}
}

// MergeTrace folds Algorithm 3 over one execution trace directly into the
// weights, keeping the maximum per edge — equivalent to
// Merge(WeightTrace(branches, cfg)) without the intermediate map.
func (ew *EdgeWeights) MergeTrace(branches []evm.BranchEvent) {
	nestedScore := 0
	for _, br := range branches {
		if nestedScore < maxNestedScore {
			nestedScore++
		}
		weight := float64(nestedScore) // w1 = WEIGHT_ASSIGN(nested_score)
		id := ew.ix.EdgeOf(br)
		if id < 0 {
			continue
		}
		if ew.vulnPastID(id) {
			weight += vulnBonus // w2
		}
		if weight > ew.w[id] {
			if ew.w[id] == 0 {
				ew.nonzero++
			}
			ew.total += weight - ew.w[id]
			ew.w[id] = weight
		}
	}
}

func (ew *EdgeWeights) vulnPastID(id int32) bool { return ew.ix.vulnPast[id] }

// Weight returns the assigned weight of one edge (0 = unassigned) — the
// serializable per-edge state a campaign snapshot captures.
func (ew *EdgeWeights) Weight(id int32) float64 { return ew.w[id] }

// SetWeight overwrites one edge's weight, maintaining the incremental total
// and nonzero count — the snapshot-restore path. Weights are integer-valued
// sums well below 2^53, so the restored total is bit-identical to the one
// the original campaign accumulated increment by increment, regardless of
// restore order.
func (ew *EdgeWeights) SetWeight(id int32, w float64) {
	old := ew.w[id]
	if old == w {
		return
	}
	if old == 0 && w != 0 {
		ew.nonzero++
	}
	if old != 0 && w == 0 {
		ew.nonzero--
	}
	ew.total += w - old
	ew.w[id] = w
}

// Count returns the number of edges with an assigned weight (the map
// engine's len(weights)).
func (ew *EdgeWeights) Count() int { return ew.nonzero }

// Total returns the sum of all assigned weights.
func (ew *EdgeWeights) Total() float64 { return ew.total }

// PathWeight sums the weights of the distinct edges exercised by a trace —
// the quantity energy allocation is proportional to. Allocation-free: the
// dedup set is a generation-stamped array. Not safe for concurrent use (the
// campaign coordinator owns it).
func (ew *EdgeWeights) PathWeight(branches []evm.BranchEvent) float64 {
	ew.stampGen++
	total := 0.0
	for _, br := range branches {
		id := ew.ix.EdgeOf(br)
		if id < 0 || ew.stamp[id] == ew.stampGen {
			continue
		}
		ew.stamp[id] = ew.stampGen
		total += ew.w[id]
	}
	return total
}

// PathWeightTx is PathWeight over per-transaction event batches, deduping
// across the whole sequence without materializing a flattened copy.
func (ew *EdgeWeights) PathWeightTx(branchesByTx [][]evm.BranchEvent) float64 {
	ew.stampGen++
	total := 0.0
	for _, branches := range branchesByTx {
		for _, br := range branches {
			id := ew.ix.EdgeOf(br)
			if id < 0 || ew.stamp[id] == ew.stampGen {
				continue
			}
			ew.stamp[id] = ew.stampGen
			total += ew.w[id]
		}
	}
	return total
}
