package analysis

import (
	"mufuzz/internal/evm"
)

// Instruction is one decoded opcode with its immediate. It is an alias of
// the interpreter's shared decoder element, so analysis, the IR compiler,
// cmd/disasm, and ingest all agree on one decoding.
type Instruction = evm.Instr

// Disassemble decodes bytecode into instructions (the shared evm.Decode).
func Disassemble(code []byte) []Instruction {
	return evm.Decode(code)
}

// Block is a basic block of the control-flow graph.
type Block struct {
	Start uint64 // pc of first instruction
	End   uint64 // pc just past the last instruction
	Instr []Instruction
	// Succs are pcs of successor blocks.
	Succs []uint64
	// JumpiPC is the pc of the terminating JUMPI (0 and false when the block
	// ends some other way).
	JumpiPC  uint64
	HasJumpi bool
}

// CFG is a bytecode control-flow graph with statically resolved jumps. Jump
// targets are resolved from the PUSH immediately preceding JUMP/JUMPI — the
// pattern the MiniSol compiler (and solc, for direct jumps) always emits.
type CFG struct {
	Blocks map[uint64]*Block // keyed by start pc
	Order  []uint64          // block start pcs in ascending order
	// VulnPCs is the set of pcs holding vulnerable instructions.
	VulnPCs map[uint64]evm.OpCode
	// vulnReach[start] is true when a vulnerable instruction is reachable
	// from the block at start.
	vulnReach map[uint64]bool
}

// vulnerableOps are instructions that may introduce vulnerabilities (paper
// §IV-C: e.g. call.value, block.timestamp).
var vulnerableOps = map[evm.OpCode]bool{
	evm.CALL:         true,
	evm.DELEGATECALL: true,
	evm.SELFDESTRUCT: true,
	evm.TIMESTAMP:    true,
	evm.NUMBER:       true,
	evm.ORIGIN:       true,
	evm.BALANCE:      true,
	evm.SELFBALANCE:  true,
}

// BuildCFG constructs the CFG of a contract's runtime bytecode.
func BuildCFG(code []byte) *CFG {
	instrs := Disassemble(code)

	// Block leaders: offset 0, JUMPDESTs, and instructions following a
	// terminator (JUMP/JUMPI/STOP/RETURN/REVERT/INVALID/SELFDESTRUCT).
	leaders := map[uint64]bool{0: true}
	for i, ins := range instrs {
		switch ins.Op {
		case evm.JUMPDEST:
			leaders[ins.PC] = true
		case evm.JUMP, evm.JUMPI, evm.STOP, evm.RETURN, evm.REVERT, evm.INVALID, evm.SELFDESTRUCT:
			if i+1 < len(instrs) {
				leaders[instrs[i+1].PC] = true
			}
		}
	}

	cfg := &CFG{
		Blocks:    make(map[uint64]*Block),
		VulnPCs:   make(map[uint64]evm.OpCode),
		vulnReach: make(map[uint64]bool),
	}
	var cur *Block
	for i, ins := range instrs {
		if leaders[ins.PC] {
			cur = &Block{Start: ins.PC}
			cfg.Blocks[ins.PC] = cur
			cfg.Order = append(cfg.Order, ins.PC)
		}
		cur.Instr = append(cur.Instr, ins)
		cur.End = ins.PC + 1 + uint64(len(ins.Imm))
		if vulnerableOps[ins.Op] {
			cfg.VulnPCs[ins.PC] = ins.Op
		}

		// Successor edges at block terminators.
		switch ins.Op {
		case evm.JUMP:
			if t, ok := staticTarget(instrs, i); ok {
				cur.Succs = append(cur.Succs, t)
			}
		case evm.JUMPI:
			cur.HasJumpi = true
			cur.JumpiPC = ins.PC
			if t, ok := staticTarget(instrs, i); ok {
				cur.Succs = append(cur.Succs, t)
			}
			if i+1 < len(instrs) {
				cur.Succs = append(cur.Succs, instrs[i+1].PC)
			}
		case evm.STOP, evm.RETURN, evm.REVERT, evm.INVALID, evm.SELFDESTRUCT:
			// no successors
		default:
			// fallthrough into the next leader
			if i+1 < len(instrs) && leaders[instrs[i+1].PC] {
				cur.Succs = append(cur.Succs, instrs[i+1].PC)
			}
		}
	}
	cfg.computeVulnReach()
	return cfg
}

// staticTarget resolves the jump target from the preceding PUSH.
func staticTarget(instrs []Instruction, jumpIdx int) (uint64, bool) {
	if jumpIdx == 0 {
		return 0, false
	}
	prev := instrs[jumpIdx-1]
	if !prev.Op.IsPush() || len(prev.Imm) == 0 || len(prev.Imm) > 8 {
		return 0, false
	}
	var t uint64
	for _, b := range prev.Imm {
		t = t<<8 | uint64(b)
	}
	return t, true
}

// computeVulnReach marks blocks from which a vulnerable instruction is
// reachable, by reverse propagation to a fixed point.
func (c *CFG) computeVulnReach() {
	// Base: block contains a vulnerable instruction.
	for start, b := range c.Blocks {
		for _, ins := range b.Instr {
			if vulnerableOps[ins.Op] {
				c.vulnReach[start] = true
				break
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for start, b := range c.Blocks {
			if c.vulnReach[start] {
				continue
			}
			for _, s := range b.Succs {
				if c.vulnReach[s] {
					c.vulnReach[start] = true
					changed = true
					break
				}
			}
		}
	}
}

// BlockOf returns the basic block containing pc.
func (c *CFG) BlockOf(pc uint64) (*Block, bool) {
	for _, start := range c.Order {
		b := c.Blocks[start]
		if pc >= b.Start && pc < b.End {
			return b, true
		}
	}
	return nil, false
}

// VulnReachableFrom reports whether a vulnerable instruction is reachable
// from the block starting at pc.
func (c *CFG) VulnReachableFrom(start uint64) bool {
	return c.vulnReach[start]
}

// VulnReachablePastBranch reports whether taking the given direction at the
// JUMPI pc can still reach a vulnerable instruction — the per-branch
// reachability the energy adjuster uses (Algorithm 3, PREFIX_INFERENCE).
func (c *CFG) VulnReachablePastBranch(jumpiPC uint64, taken bool) bool {
	b, ok := c.BlockOf(jumpiPC)
	if !ok || !b.HasJumpi || b.JumpiPC != jumpiPC {
		return false
	}
	// Succs for a JUMPI block: [target, fallthrough] (target may be absent
	// when unresolvable; then only fallthrough is present).
	var target, fall uint64
	var hasTarget, hasFall bool
	switch len(b.Succs) {
	case 2:
		target, fall = b.Succs[0], b.Succs[1]
		hasTarget, hasFall = true, true
	case 1:
		fall = b.Succs[0]
		hasFall = true
	}
	if taken {
		return hasTarget && c.vulnReach[target]
	}
	return hasFall && c.vulnReach[fall]
}

// CountBranches returns the number of JUMPI sites in the code.
func (c *CFG) CountBranches() int {
	n := 0
	for _, b := range c.Blocks {
		if b.HasJumpi {
			n++
		}
	}
	return n
}

// BranchPCs returns every JUMPI pc in ascending order.
func (c *CFG) BranchPCs() []uint64 {
	var out []uint64
	for _, start := range c.Order {
		if b := c.Blocks[start]; b.HasJumpi {
			out = append(out, b.JumpiPC)
		}
	}
	return out
}
