package report

import (
	"bytes"
	"strings"
	"testing"

	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
)

func campaignResult(t *testing.T) *fuzz.Result {
	t.Helper()
	comp, err := minisol.Compile(`contract R {
		uint256 acc;
		function f(uint256 n) public { acc -= n; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	return fuzz.Run(comp, fuzz.Options{Strategy: fuzz.MuFuzz(), Seed: 1, Iterations: 300})
}

func TestNewReportFromResult(t *testing.T) {
	res := campaignResult(t)
	r := New("R", res)
	if r.Contract != "R" || r.Strategy != "MuFuzz" {
		t.Errorf("header wrong: %+v", r)
	}
	if r.Executions != res.Executions || r.Coverage != res.Coverage {
		t.Error("metrics not copied")
	}
	if !r.HasClass(oracle.IO) {
		t.Fatalf("IO missing: %v", r.Classes())
	}
	// the IO finding carries its PoC call order
	var poc []string
	for _, f := range r.Findings {
		if f.Class == "IO" {
			poc = f.PoC
		}
	}
	if len(poc) == 0 || poc[0] != minisol.CtorName {
		t.Errorf("PoC = %v, want ctor-led sequence", poc)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := New("R", campaignResult(t))
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Contract != r.Contract || len(back.Findings) != len(r.Findings) {
		t.Error("round trip lost data")
	}
	if back.Coverage != r.Coverage {
		t.Error("coverage lost")
	}
}

func TestParseJSONRejectsGarbage(t *testing.T) {
	if _, err := ParseJSON([]byte("{nope")); err == nil {
		t.Error("expected parse error")
	}
}

func TestWriteText(t *testing.T) {
	r := New("R", campaignResult(t))
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"contract R", "coverage:", "[IO]", "PoC:"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextNoFindings(t *testing.T) {
	r := &Report{Contract: "clean", Strategy: "MuFuzz"}
	var buf bytes.Buffer
	r.WriteText(&buf)
	if !strings.Contains(buf.String(), "none") {
		t.Error("clean report should say none")
	}
}

func TestDiff(t *testing.T) {
	old := &Report{Findings: []FindingEntry{{Class: "IO"}}}
	new := &Report{Findings: []FindingEntry{{Class: "IO"}, {Class: "RE"}, {Class: "RE"}}}
	fresh := Diff(old, new)
	if len(fresh) != 1 || fresh[0] != "RE" {
		t.Errorf("diff = %v, want [RE]", fresh)
	}
	if got := Diff(new, old); len(got) != 0 {
		t.Errorf("reverse diff = %v, want empty", got)
	}
}
