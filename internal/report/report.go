// Package report renders fuzzing campaign results for humans (text) and
// machines (JSON): coverage, per-class findings, proof-of-concept sequences,
// and the coverage timeline. The mufuzz CLI uses it for -json output; CI
// pipelines can parse the JSON to gate on new findings.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"mufuzz/internal/fuzz"
	"mufuzz/internal/oracle"
)

// Report is the serializable summary of one campaign.
type Report struct {
	Contract string    `json:"contract"`
	Strategy string    `json:"strategy"`
	When     time.Time `json:"when,omitempty"`

	Executions   int     `json:"executions"`
	ElapsedMS    int64   `json:"elapsed_ms"`
	Coverage     float64 `json:"coverage"`
	CoveredEdges int     `json:"covered_edges"`
	TotalEdges   int     `json:"total_edges"`

	Findings []FindingEntry  `json:"findings"`
	Timeline []TimelineEntry `json:"timeline,omitempty"`
}

// FindingEntry is one finding with its PoC call order.
type FindingEntry struct {
	Class       string   `json:"class"`
	Description string   `json:"description"`
	PC          uint64   `json:"pc"`
	PoC         []string `json:"poc,omitempty"` // function call order
}

// TimelineEntry samples coverage growth.
type TimelineEntry struct {
	Executions int     `json:"executions"`
	Coverage   float64 `json:"coverage"`
}

// New builds a report from a campaign result.
func New(contract string, res *fuzz.Result) *Report {
	r := &Report{
		Contract:     contract,
		Strategy:     res.Strategy,
		When:         time.Now().UTC(),
		Executions:   res.Executions,
		ElapsedMS:    res.Elapsed.Milliseconds(),
		Coverage:     res.Coverage,
		CoveredEdges: res.CoveredEdges,
		TotalEdges:   res.TotalEdges,
	}
	for _, f := range res.Findings {
		entry := FindingEntry{
			Class:       string(f.Class),
			Description: f.Description,
			PC:          f.PC,
		}
		if seq, ok := res.Repro[f.Class]; ok {
			for _, tx := range seq {
				entry.PoC = append(entry.PoC, tx.Func)
			}
		}
		r.Findings = append(r.Findings, entry)
	}
	sort.Slice(r.Findings, func(i, j int) bool {
		if r.Findings[i].Class != r.Findings[j].Class {
			return r.Findings[i].Class < r.Findings[j].Class
		}
		return r.Findings[i].PC < r.Findings[j].PC
	})
	for _, tp := range res.Timeline {
		r.Timeline = append(r.Timeline, TimelineEntry{
			Executions: tp.Executions,
			Coverage:   tp.Coverage,
		})
	}
	return r
}

// Classes returns the distinct bug classes in the report.
func (r *Report) Classes() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range r.Findings {
		if !seen[f.Class] {
			seen[f.Class] = true
			out = append(out, f.Class)
		}
	}
	sort.Strings(out)
	return out
}

// HasClass reports whether the campaign found the given class.
func (r *Report) HasClass(c oracle.BugClass) bool {
	for _, f := range r.Findings {
		if f.Class == string(c) {
			return true
		}
	}
	return false
}

// WriteJSON serializes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseJSON reads a report back (for CI gating on previous runs).
func ParseJSON(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	return &r, nil
}

// WriteText renders a human-readable summary.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "contract %s — fuzzed with %s\n", r.Contract, r.Strategy)
	fmt.Fprintf(w, "  executions: %d in %dms\n", r.Executions, r.ElapsedMS)
	fmt.Fprintf(w, "  coverage:   %.1f%% (%d/%d edges)\n", r.Coverage*100, r.CoveredEdges, r.TotalEdges)
	if len(r.Findings) == 0 {
		fmt.Fprintln(w, "  findings:   none")
		return
	}
	fmt.Fprintf(w, "  findings:   %d (%s)\n", len(r.Findings), strings.Join(r.Classes(), ", "))
	for _, f := range r.Findings {
		fmt.Fprintf(w, "    [%s] %s\n", f.Class, f.Description)
		if len(f.PoC) > 0 {
			fmt.Fprintf(w, "         PoC: %s\n", strings.Join(f.PoC, " → "))
		}
	}
}

// Diff compares two reports and returns the bug classes present in the new
// report but absent from the old one — the regression signal a CI gate
// cares about.
func Diff(old, new *Report) []string {
	had := map[string]bool{}
	for _, f := range old.Findings {
		had[f.Class] = true
	}
	var fresh []string
	seen := map[string]bool{}
	for _, f := range new.Findings {
		if !had[f.Class] && !seen[f.Class] {
			fresh = append(fresh, f.Class)
			seen[f.Class] = true
		}
	}
	sort.Strings(fresh)
	return fresh
}
