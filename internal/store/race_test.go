package store

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
)

// TestPutIfAbsentRaceChild is the cross-process half of the PutIfAbsent race
// test: when MUFUZZ_STORE_RACE_CHILD is set, it opens the shared store
// directory, announces READY, blocks until the parent fires the start barrier
// over stdin, and races one PutIfAbsent on the agreed address, reporting the
// claim outcome on stdout. It is a no-op as a normal test.
func TestPutIfAbsentRaceChild(t *testing.T) {
	cfg := os.Getenv("MUFUZZ_STORE_RACE_CHILD")
	if cfg == "" {
		t.Skip("not in child mode")
	}
	parts := strings.SplitN(cfg, "|", 2)
	dir, payload := parts[0], parts[1]
	s, err := Open(dir)
	if err != nil {
		fmt.Println("ERR", err)
		return
	}
	// Open sweeps orphaned temp files, so every racer must be past Open
	// before any racer starts writing: announce, then await the barrier.
	fmt.Println("READY")
	if _, err := bufio.NewReader(os.Stdin).ReadString('\n'); err != nil {
		fmt.Println("ERR", err)
		return
	}
	wrote, err := s.PutIfAbsent(KindSeed, "race", "addr", []byte(payload))
	if err != nil {
		fmt.Println("ERR", err)
		return
	}
	fmt.Println("WROTE", wrote)
}

// TestPutIfAbsentMultiProcessRace races four writers — two goroutines in
// this process and two child processes sharing the same store directory —
// on one content address with distinct payloads, and asserts the dedup
// contract the fleet's idempotent seed sync leans on: exactly one racer
// observes wrote=true, and the object served afterwards is one racer's
// payload, intact (never torn, never a hybrid).
func TestPutIfAbsentMultiProcessRace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skip("no test executable path:", err)
	}
	dir := t.TempDir()
	payloads := []string{"proc-a", "proc-b", "goroutine-c", "goroutine-d"}

	// Children: re-exec this test binary in child mode. Each holds at the
	// stdin barrier after opening the store and reporting READY.
	type child struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
		lines *bufio.Scanner
		errs  *strings.Builder
	}
	var children []child
	for i := 0; i < 2; i++ {
		cmd := exec.Command(exe, "-test.run", "TestPutIfAbsentRaceChild", "-test.v")
		cmd.Env = append(os.Environ(), "MUFUZZ_STORE_RACE_CHILD="+dir+"|"+payloads[i])
		stdin, err := cmd.StdinPipe()
		if err != nil {
			t.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		errs := &strings.Builder{}
		cmd.Stderr = errs
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		children = append(children, child{cmd, stdin, bufio.NewScanner(stdout), errs})
	}
	scanFor := func(c child, prefixes ...string) (string, bool) {
		for c.lines.Scan() {
			line := strings.TrimSpace(c.lines.Text())
			for _, p := range prefixes {
				if strings.HasPrefix(line, p) {
					return line, true
				}
			}
		}
		return "", false
	}
	for i, c := range children {
		if _, ok := scanFor(c, "READY", "ERR"); !ok {
			t.Fatalf("child %d never became ready\n%s", i, c.errs.String())
		}
	}

	// Goroutines: each opens its own handle, as separate service slots
	// would. All handles exist before the barrier fires (Open sweeps temp
	// files, so it must never overlap an in-flight claim).
	start := make(chan struct{})
	results := make(chan bool, 2)
	errCh := make(chan error, 2)
	var wg sync.WaitGroup
	for i := 2; i < 4; i++ {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *Store, payload string) {
			defer wg.Done()
			<-start
			wrote, err := s.PutIfAbsent(KindSeed, "race", "addr", []byte(payload))
			if err != nil {
				errCh <- err
				return
			}
			results <- wrote
		}(s, payloads[i])
	}

	// Fire the barrier for all four racers at once.
	close(start)
	for _, c := range children {
		if _, err := io.WriteString(c.stdin, "go\n"); err != nil {
			t.Fatal(err)
		}
		c.stdin.Close()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	winners := 0
	close(results)
	for wrote := range results {
		if wrote {
			winners++
		}
	}
	for i, c := range children {
		line, ok := scanFor(c, "WROTE", "ERR")
		if err := c.cmd.Wait(); err != nil {
			t.Fatalf("child %d: %v\n%s", i, err, c.errs.String())
		}
		switch {
		case !ok:
			t.Fatalf("child %d reported no outcome\n%s", i, c.errs.String())
		case line == "WROTE true":
			winners++
		case line == "WROTE false":
		default:
			t.Fatalf("child %d: %s", i, line)
		}
	}
	if winners != 1 {
		t.Fatalf("want exactly one PutIfAbsent winner across 4 racers, got %d", winners)
	}

	// The served object must be exactly one racer's payload — frame
	// validation on read guarantees un-torn, this guards un-swapped too.
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(KindSeed, "race", "addr")
	if err != nil {
		t.Fatalf("winner's object does not validate: %v", err)
	}
	ok := false
	for _, p := range payloads {
		if string(got) == p {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("served object %q is no racer's payload", got)
	}
}
