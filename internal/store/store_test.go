package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mufuzz/internal/corpus"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
)

func openT(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestObjectRoundTrip(t *testing.T) {
	s := openT(t)
	payload := []byte("the quick brown fox\x00\x01\x02 jumps")
	if err := s.Put(KindSnapshot, "", "c1.snap", payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(KindSnapshot, "", "c1.snap")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q != %q", got, payload)
	}
	if !s.Has(KindSnapshot, "", "c1.snap") {
		t.Fatal("Has = false for stored object")
	}
	// Overwrite replaces atomically.
	if err := s.Put(KindSnapshot, "", "c1.snap", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(KindSnapshot, "", "c1.snap"); string(got) != "v2" {
		t.Fatalf("overwrite lost: %q", got)
	}
	if err := s.Delete(KindSnapshot, "", "c1.snap"); err != nil {
		t.Fatal(err)
	}
	if s.Has(KindSnapshot, "", "c1.snap") {
		t.Fatal("object survives Delete")
	}
}

func TestRejectsPathTraversal(t *testing.T) {
	s := openT(t)
	for _, name := range []string{"", ".", "..", "a/b", `a\b`, ".tmp-x"} {
		if err := s.Put(KindMeta, "", name, []byte("x")); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
	if err := s.Put(KindSeed, "../evil", "n", []byte("x")); err == nil {
		t.Error("bucket ../evil accepted")
	}
}

// TestCrashSafetyPartialFiles injects the three crash artifacts a writer can
// leave behind — a truncated object, a corrupted payload, and an orphaned
// temp file — and checks readers never surface garbage and Open sweeps the
// temp.
func TestCrashSafetyPartialFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindSeed, "c", "good", []byte("seed-payload")); err != nil {
		t.Fatal(err)
	}

	// Truncated object: a valid frame cut mid-payload (simulated torn write
	// on a filesystem without atomic rename semantics).
	full := frame([]byte("partial-payload"))
	if err := os.WriteFile(filepath.Join(dir, "seeds", "c", "torn"), full[:len(full)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	// Corrupted object: full length, one payload byte flipped.
	bad := frame([]byte("corrupt-payload"))
	bad[len(frameMagic)+8+3] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, "seeds", "c", "flipped"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	// Garbage that is not even a frame.
	if err := os.WriteFile(filepath.Join(dir, "seeds", "c", "noise"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Orphaned temp file from a crashed writer.
	tmp := filepath.Join(dir, "seeds", "c", tmpPrefix+"999-1")
	if err := os.WriteFile(tmp, []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"torn", "flipped", "noise"} {
		if _, err := s.Get(KindSeed, "c", name); err == nil {
			t.Errorf("Get(%s) returned data from a damaged file", name)
		}
	}
	entries, err := s.Seeds("c")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "good" || string(entries[0].Payload) != "seed-payload" {
		t.Fatalf("List must skip damaged files, got %+v", entries)
	}

	// PutIfAbsent treats a damaged object as absent and repairs it.
	wrote, err := s.PutIfAbsent(KindSeed, "c", "flipped", []byte("repaired"))
	if err != nil || !wrote {
		t.Fatalf("PutIfAbsent over corrupt object: wrote=%v err=%v", wrote, err)
	}
	if got, _ := s.Get(KindSeed, "c", "flipped"); string(got) != "repaired" {
		t.Fatalf("repair failed: %q", got)
	}

	// Reopen sweeps the orphaned temp.
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("orphaned temp file survived Open")
	}
}

// TestSeedDedupAcrossCampaigns runs two campaigns with different seeds on
// the same contract and checks the store collapses coverage-equivalent
// sequences: the stored corpus has no two seeds with the same fingerprint,
// and the second campaign's duplicates are rejected by PutSeed.
func TestSeedDedupAcrossCampaigns(t *testing.T) {
	comp, err := minisol.Compile(corpus.Crowdsale())
	if err != nil {
		t.Fatal(err)
	}
	s := openT(t)

	export := func(seed int64) (newSeeds, dups int) {
		c := fuzz.NewCampaign(comp, fuzz.Options{Strategy: fuzz.MuFuzz(), Seed: seed, Iterations: 400})
		c.Run()
		for _, seq := range c.QueueSequences() {
			wrote, err := s.PutSeed("Crowdsale", Fingerprint(c.ReplayCoverageEdges(seq)), fuzz.EncodeSequence(seq))
			if err != nil {
				t.Fatal(err)
			}
			if wrote {
				newSeeds++
			} else {
				dups++
			}
		}
		return
	}

	new1, _ := export(1)
	if new1 == 0 {
		t.Fatal("first campaign exported nothing")
	}
	new2, dups2 := export(2)
	entries, err := s.Seeds("Crowdsale")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != new1+new2 {
		t.Fatalf("stored %d seeds, wrote %d+%d new", len(entries), new1, new2)
	}
	if dups2 == 0 {
		t.Log("note: second campaign produced no coverage-duplicate seeds (dedup untested by overlap)")
	}
	// Same campaign re-exported: everything must dedup away.
	new1b, _ := export(1)
	if new1b != 0 {
		t.Fatalf("re-export of campaign 1 stored %d new seeds, want 0", new1b)
	}
	// Every stored payload decodes back into a usable sequence.
	for _, e := range entries {
		if _, err := fuzz.DecodeSequence(e.Payload); err != nil {
			t.Fatalf("stored seed %s does not decode: %v", e.Name, err)
		}
	}
}

func TestFingerprintCanonical(t *testing.T) {
	a := Fingerprint([][2]uint64{{10, 1}, {4, 0}, {9, 1}})
	b := Fingerprint([][2]uint64{{9, 1}, {10, 1}, {4, 0}})
	if a != b {
		t.Fatal("fingerprint depends on edge order")
	}
	if a == Fingerprint([][2]uint64{{9, 1}, {10, 0}, {4, 0}}) {
		t.Fatal("different edge sets share a fingerprint")
	}
}
