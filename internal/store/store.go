// Package store is the crash-safe on-disk artifact store of the campaign
// service: corpus seeds (deduplicated by coverage fingerprint), findings
// with proof-of-concept sequences, campaign snapshots, and campaign metadata.
//
// Two properties drive the design:
//
//   - Content addressing. Seeds are stored under their coverage fingerprint
//     — the hash of the branch-edge set the sequence covers — so two
//     campaigns that discover behaviorally equivalent sequences store one
//     seed, and PutSeed is a natural no-op for duplicates. Generic blobs
//     (snapshots, PoCs) are keyed by the caller but verified by content
//     hash on read.
//
//   - Crash safety. Every object is written to a temporary file in the same
//     directory, fsynced, and renamed into place (atomic on POSIX), and the
//     payload is framed with a magic header, explicit length, and a keccak256
//     digest. A reader that encounters a partial or corrupted file — a crash
//     mid-write, a truncated disk — detects it by frame validation and skips
//     it instead of returning garbage. Open sweeps orphaned temporaries.
//
// The store is safe for concurrent use by multiple goroutines and multiple
// processes sharing the directory: writers never modify files in place, and
// the first writer of a content address wins.
package store

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"mufuzz/internal/keccak"
)

// frameMagic prefixes every object file.
var frameMagic = []byte("mufzstor1\n")

// tmpPrefix marks in-flight writes; Open removes leftovers.
const tmpPrefix = ".tmp-"

// Kind names an object family, mapped to a subdirectory.
type Kind string

// The object families of the campaign service.
const (
	KindSeed       Kind = "seeds"
	KindPoC        Kind = "pocs"
	KindSnapshot   Kind = "snapshots"
	KindMeta       Kind = "meta"
	KindTranscript Kind = "transcripts"
)

var allKinds = []Kind{KindSeed, KindPoC, KindSnapshot, KindMeta, KindTranscript}

// Store is one on-disk artifact store rooted at a directory.
type Store struct {
	root string
}

// tmpSeq disambiguates temp names across all handles and goroutines of this
// process (two handles on one directory must not collide); the PID
// disambiguates across processes.
var tmpSeq atomic.Uint64

// Open creates (if needed) and opens a store rooted at dir, sweeping
// temporary files a crashed writer left behind.
func Open(dir string) (*Store, error) {
	s := &Store{root: dir}
	for _, k := range allKinds {
		if err := os.MkdirAll(filepath.Join(dir, string(k)), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	// Sweep orphaned temporaries (best effort; a concurrent writer's live
	// temp file disappearing is handled by its rename failing loudly).
	_ = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasPrefix(filepath.Base(path), tmpPrefix) {
			_ = os.Remove(path)
		}
		return nil
	})
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// cleanName rejects path-traversing object names.
func cleanName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." ||
		strings.HasPrefix(name, tmpPrefix) {
		return fmt.Errorf("store: invalid object name %q", name)
	}
	return nil
}

// frame wraps a payload with magic, length, and digest.
func frame(payload []byte) []byte {
	out := make([]byte, 0, len(frameMagic)+8+len(payload)+32)
	out = append(out, frameMagic...)
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(payload)))
	out = append(out, n[:]...)
	out = append(out, payload...)
	sum := keccak.Sum256(payload)
	return append(out, sum[:]...)
}

// unframe validates a framed object and returns its payload.
func unframe(data []byte) ([]byte, error) {
	if len(data) < len(frameMagic)+8+32 || string(data[:len(frameMagic)]) != string(frameMagic) {
		return nil, fmt.Errorf("store: bad frame header")
	}
	body := data[len(frameMagic):]
	n := binary.LittleEndian.Uint64(body[:8])
	body = body[8:]
	if uint64(len(body)) != n+32 {
		return nil, fmt.Errorf("store: truncated object (%d bytes of %d)", len(body), n+32)
	}
	payload := body[:n]
	var want [32]byte
	copy(want[:], body[n:])
	if keccak.Sum256(payload) != want {
		return nil, fmt.Errorf("store: object digest mismatch")
	}
	return payload, nil
}

// writeAtomic writes a framed payload to path via tmp+fsync+rename. The
// parent directory is fsynced too, so the rename itself survives a crash.
func (s *Store) writeAtomic(path string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, fmt.Sprintf("%s%d-%d", tmpPrefix, os.Getpid(), tmpSeq.Add(1)))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := f.Write(frame(payload))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", path, werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// writeAtomicClaim writes a framed payload like writeAtomic but publishes it
// with os.Link instead of os.Rename: the link fails with EEXIST when the
// path is already taken, so among concurrent claimants of one address
// exactly one wins (reported true) and the rest observe the winner's object.
func (s *Store) writeAtomicClaim(path string, payload []byte) (bool, error) {
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, fmt.Sprintf("%s%d-%d", tmpPrefix, os.Getpid(), tmpSeq.Add(1)))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	_, werr := f.Write(frame(payload))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return false, fmt.Errorf("store: write %s: %w", path, werr)
	}
	lerr := os.Link(tmp, path)
	_ = os.Remove(tmp)
	if lerr != nil {
		if os.IsExist(lerr) {
			return false, nil
		}
		return false, fmt.Errorf("store: %w", lerr)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return true, nil
}

// Put stores a payload under (kind, bucket, name); bucket may be "" for
// unbucketed kinds. Existing objects are overwritten atomically.
func (s *Store) Put(kind Kind, bucket, name string, payload []byte) error {
	path, err := s.objectPath(kind, bucket, name)
	if err != nil {
		return err
	}
	return s.writeAtomic(path, payload)
}

// PutIfAbsent stores a payload unless a valid object already exists at the
// address; it reports whether a write happened. This is the dedup primitive:
// the first writer of a content address wins, a corrupt object at the
// address is replaced, and the winner is exact — among any number of
// concurrent writers (goroutines or separate processes sharing the
// directory) exactly one observes wrote=true, because the final publish is a
// hard link into place, which the filesystem refuses when the name already
// exists. Losers leave the winner's object untouched, so retried
// cross-node seed syncs are free.
func (s *Store) PutIfAbsent(kind Kind, bucket, name string, payload []byte) (bool, error) {
	path, err := s.objectPath(kind, bucket, name)
	if err != nil {
		return false, err
	}
	if _, err := os.Lstat(path); err == nil {
		if _, err := readFramed(path); err == nil {
			return false, nil
		}
		// Corrupt or torn object at the address: unlink it and race to claim
		// the now-free name. Concurrent repairers both unlink (ENOENT is
		// fine), then exactly one claim below succeeds.
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return false, fmt.Errorf("store: %w", err)
		}
	}
	wrote, err := s.writeAtomicClaim(path, payload)
	if err != nil {
		return false, err
	}
	if wrote {
		return true, nil
	}
	// Lost the claim race. The winner's object was published with an atomic
	// link of a fully-synced temp file, so it must validate; a failure here
	// means disk-level corruption after publish, which Get reports too.
	if _, err := readFramed(path); err != nil {
		return false, fmt.Errorf("store: lost claim race to invalid object: %w", err)
	}
	return false, nil
}

// Get returns the payload at (kind, bucket, name). Partial or corrupt
// objects return an error, never garbage.
func (s *Store) Get(kind Kind, bucket, name string) ([]byte, error) {
	path, err := s.objectPath(kind, bucket, name)
	if err != nil {
		return nil, err
	}
	return readFramed(path)
}

// Has reports whether a valid object exists at the address.
func (s *Store) Has(kind Kind, bucket, name string) bool {
	_, err := s.Get(kind, bucket, name)
	return err == nil
}

// Delete removes the object at the address (no error if absent).
func (s *Store) Delete(kind Kind, bucket, name string) error {
	path, err := s.objectPath(kind, bucket, name)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Entry is one listed object.
type Entry struct {
	Name    string
	Payload []byte
}

// List returns every valid object under (kind, bucket) in name order,
// silently skipping partial or corrupt files.
func (s *Store) List(kind Kind, bucket string) ([]Entry, error) {
	dir := filepath.Join(s.root, string(kind))
	if bucket != "" {
		if err := cleanName(bucket); err != nil {
			return nil, err
		}
		dir = filepath.Join(dir, bucket)
	}
	des, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Entry
	for _, de := range des {
		if de.IsDir() || strings.HasPrefix(de.Name(), tmpPrefix) {
			continue
		}
		payload, err := readFramed(filepath.Join(dir, de.Name()))
		if err != nil {
			continue // crash remnant or corruption: skip, never surface garbage
		}
		out = append(out, Entry{Name: de.Name(), Payload: payload})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Buckets lists the bucket names of a kind (e.g. the contracts with stored
// seeds).
func (s *Store) Buckets(kind Kind) ([]string, error) {
	des, err := os.ReadDir(filepath.Join(s.root, string(kind)))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, de := range des {
		if de.IsDir() {
			out = append(out, de.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

func (s *Store) objectPath(kind Kind, bucket, name string) (string, error) {
	if err := cleanName(name); err != nil {
		return "", err
	}
	dir := filepath.Join(s.root, string(kind))
	if bucket != "" {
		if err := cleanName(bucket); err != nil {
			return "", err
		}
		dir = filepath.Join(dir, bucket)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", fmt.Errorf("store: %w", err)
		}
	}
	return filepath.Join(dir, name), nil
}

func readFramed(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return unframe(data)
}

// --- Seed corpus layer ---

// Fingerprint is the content address of a corpus seed: the hash of the
// branch-edge set its sequence covers, rendered as hex. Sequences with
// identical coverage collapse to one stored seed.
func Fingerprint(edges [][2]uint64) string {
	sorted := append([][2]uint64(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] < sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	buf := make([]byte, 0, 16*len(sorted))
	var w [16]byte
	for _, e := range sorted {
		binary.LittleEndian.PutUint64(w[:8], e[0])
		binary.LittleEndian.PutUint64(w[8:], e[1])
		buf = append(buf, w[:]...)
	}
	h := keccak.Sum256(buf)
	return hex.EncodeToString(h[:16])
}

// PutSeed stores a corpus seed for a contract under its coverage
// fingerprint; it reports whether the seed was new. contract is the
// cross-campaign sharing key (the campaign service uses the MiniSol contract
// name, so evolving versions of one contract cross-pollinate; importers
// sanitize foreign sequences against their own ABI).
func (s *Store) PutSeed(contract, fingerprint string, seq []byte) (bool, error) {
	return s.PutIfAbsent(KindSeed, contract, fingerprint, seq)
}

// Seeds returns every valid stored seed of a contract in fingerprint order.
func (s *Store) Seeds(contract string) ([]Entry, error) {
	return s.List(KindSeed, contract)
}
