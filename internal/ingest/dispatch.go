package ingest

import (
	"sort"

	"mufuzz/internal/analysis"
	"mufuzz/internal/evm"
)

// This file recovers the function layout of dispatcher-style runtime
// bytecode: which 4-byte selector jumps where, which basic blocks belong to
// each function body, and how deeply nested each JUMPI site sits — the
// branch-site metadata the campaign gets from compiler output when source is
// available.

// selEntry is one recovered dispatcher arm.
type selEntry struct {
	sel   [4]byte
	entry uint64
}

// selectorEntries scans the disassembly for the dispatcher comparison shape
// both solc and MiniSol emit:
//
//	DUP1 PUSH4 <selector> EQ PUSHn <dest> JUMPI
//
// and returns the selector → entry arms in code order. The DUP1 anchor keeps
// body code that happens to compare against a 4-byte constant from reading
// as a dispatcher arm.
func selectorEntries(instrs []analysis.Instruction) []selEntry {
	var out []selEntry
	for i := 1; i+3 < len(instrs); i++ {
		ins := instrs[i]
		if ins.Op != evm.PUSH1+3 || len(ins.Imm) != 4 {
			continue
		}
		if instrs[i-1].Op != evm.DUP1 || instrs[i+1].Op != evm.EQ {
			continue
		}
		dest := instrs[i+2]
		if !dest.Op.IsPush() || len(dest.Imm) == 0 || len(dest.Imm) > 8 || instrs[i+3].Op != evm.JUMPI {
			continue
		}
		var e selEntry
		copy(e.sel[:], ins.Imm)
		for _, b := range dest.Imm {
			e.entry = e.entry<<8 | uint64(b)
		}
		out = append(out, e)
	}
	return out
}

// reachableBlocks returns the start pcs of every block reachable from the
// block containing entry, in ascending order. An entry outside any block
// yields nil.
func reachableBlocks(cfg *analysis.CFG, entry uint64) []uint64 {
	start, ok := blockStartOf(cfg, entry)
	if !ok {
		return nil
	}
	seen := map[uint64]bool{start: true}
	work := []uint64{start}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range cfg.Blocks[cur].Succs {
			if _, exists := cfg.Blocks[s]; exists && !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	out := make([]uint64, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// blockStartOf finds the block containing pc (normally pc is itself a block
// leader: every recovered entry is a JUMPI target, i.e. a JUMPDEST).
func blockStartOf(cfg *analysis.CFG, pc uint64) (uint64, bool) {
	if _, ok := cfg.Blocks[pc]; ok {
		return pc, true
	}
	b, ok := cfg.BlockOf(pc)
	if !ok {
		return 0, false
	}
	return b.Start, true
}

// branchDepths recovers a nesting depth for every JUMPI reachable from
// entry: 1 plus the minimum number of conditional blocks crossed on the way
// from the entry to the branch's block. A top-of-function guard gets depth
// 1; a branch behind one other conditional gets 2 — the threshold at which
// the mask-guided mutator treats a seed as having hit a "nested branch"
// (§IV-B). Exact compiler nesting metadata is unavailable without source;
// dominating-conditional count is the CFG-observable analogue.
func branchDepths(cfg *analysis.CFG, entry uint64) map[uint64]int {
	start, ok := blockStartOf(cfg, entry)
	if !ok {
		return nil
	}
	// Shortest-path relaxation where traversing a JUMPI-terminated block
	// costs 1 and any other block costs 0 (graphs are tiny; iterate to a
	// fixed point).
	dist := map[uint64]int{start: 0}
	for changed := true; changed; {
		changed = false
		for _, from := range cfg.Order {
			d, ok := dist[from]
			if !ok {
				continue
			}
			b := cfg.Blocks[from]
			cost := 0
			if b.HasJumpi {
				cost = 1
			}
			for _, s := range b.Succs {
				if _, exists := cfg.Blocks[s]; !exists {
					continue
				}
				if cur, ok := dist[s]; !ok || d+cost < cur {
					dist[s] = d + cost
					changed = true
				}
			}
		}
	}
	out := map[uint64]int{}
	for from, d := range dist {
		if b := cfg.Blocks[from]; b.HasJumpi {
			out[b.JumpiPC] = d + 1
		}
	}
	return out
}
