package ingest

import (
	"testing"

	"mufuzz/internal/fuzz"
	"mufuzz/internal/state"
)

// TestLinkedAddresses pins the inter-contract link recovery: PUSH20
// immediates of the runtime code and address-shaped trailing
// constructor-argument words of a creation image surface through
// LinkedAddresses, which is how world campaigns order members
// dependency-first.
func TestLinkedAddresses(t *testing.T) {
	linkA := fuzz.WorldMemberAddr(0)

	// Runtime: PUSH20 linkA; POP; STOP.
	runtime := append([]byte{0x73}, linkA[:]...)
	runtime = append(runtime, 0x50, 0x00)

	tgt, err := Load(runtime, []byte(`[]`))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := any(tgt).(fuzz.LinkedTarget); !ok {
		t.Fatal("ingest.Target does not satisfy fuzz.LinkedTarget")
	}
	links := tgt.LinkedAddresses()
	if len(links) != 1 || links[0] != linkA {
		t.Fatalf("runtime PUSH20 link not recovered: %v", links)
	}

	// Creation image: the standard CODECOPY/RETURN deploy stub around the
	// same runtime, with one ABI-encoded address constructor argument
	// appended after the code.
	argAddr := state.AddressFromUint(0xbeef)
	stub := []byte{
		0x60, byte(len(runtime)), // PUSH1 len
		0x60, 12, // PUSH1 srcOffset (stub is 12 bytes)
		0x60, 0, // PUSH1 destOffset
		0x39,                     // CODECOPY
		0x60, byte(len(runtime)), // PUSH1 len
		0x60, 0, // PUSH1 offset
		0xf3, // RETURN
	}
	creation := append(append([]byte{}, stub...), runtime...)
	var word [32]byte
	copy(word[12:], argAddr[:])
	creation = append(creation, word[:]...)

	tgt2, err := Load(creation, []byte(`[]`))
	if err != nil {
		t.Fatal(err)
	}
	got := map[state.Address]bool{}
	for _, a := range tgt2.LinkedAddresses() {
		got[a] = true
	}
	if !got[linkA] || !got[argAddr] {
		t.Fatalf("creation links incomplete (want PUSH20 %x and ctor arg %x): %v",
			linkA, argAddr, tgt2.LinkedAddresses())
	}
}

// TestLinkedAddressesOrdersWorld wires two members where the first one's
// bytecode references the second's pinned deployment address: the campaign's
// cross-contract dependency ordering must place the linked-to member's
// constructor first in initial sequences.
func TestLinkedAddressesOrdersWorld(t *testing.T) {
	vaultAddr := state.AddressFromUint(0xc9)
	// "router" runtime calls out to vaultAddr: PUSH20 vault; POP; STOP.
	router := append([]byte{0x73}, vaultAddr[:]...)
	router = append(router, 0x50, 0x00)
	routerTgt, err := Load(router, []byte(`[]`))
	if err != nil {
		t.Fatal(err)
	}
	vaultTgt, err := Load([]byte{0x00}, []byte(`[]`))
	if err != nil {
		t.Fatal(err)
	}
	primary, err := Load([]byte{0x00}, []byte(`[]`))
	if err != nil {
		t.Fatal(err)
	}

	c := fuzz.NewTargetCampaign(primary, fuzz.Options{
		Strategy: fuzz.MuFuzz(), Seed: 1, Iterations: 1, Workers: 1,
		World: &fuzz.WorldOptions{Members: []fuzz.WorldMember{
			{Name: "router", Target: routerTgt}, // declared first, links vault
			{Name: "vault", Target: vaultTgt, Addr: vaultAddr},
		}},
	})
	c.Run()
	seqs := c.QueueSequences()
	if len(seqs) == 0 {
		t.Fatal("no seed sequences")
	}
	routerCtor, vaultCtor := -1, -1
	for i, tx := range seqs[0] {
		switch tx.Func {
		case "router." + fuzz.CtorName:
			routerCtor = i
		case "vault." + fuzz.CtorName:
			vaultCtor = i
		}
	}
	if routerCtor < 0 || vaultCtor < 0 {
		t.Fatalf("member constructors missing from seed sequence: %v", seqs[0])
	}
	if vaultCtor > routerCtor {
		t.Fatalf("linked-to member deployed after its dependent: vault at %d, router at %d",
			vaultCtor, routerCtor)
	}
}
