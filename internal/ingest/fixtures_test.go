package ingest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mufuzz/internal/corpus"
	"mufuzz/internal/experiments"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
)

const fixturesDir = "../../fixtures"

func readFixture(t *testing.T, name string) (codeHex string, abiJSON []byte) {
	t.Helper()
	bin, err := os.ReadFile(filepath.Join(fixturesDir, name+".bin"))
	if err != nil {
		t.Fatalf("fixture missing (regen with `go run ./cmd/corpusgen -fixtures fixtures`): %v", err)
	}
	abi, err := os.ReadFile(filepath.Join(fixturesDir, name+".abi.json"))
	if err != nil {
		t.Fatal(err)
	}
	return string(bin), abi
}

// TestFixturesCurrent pins the committed fixtures to the sources they were
// generated from: a drift means someone changed the contract or compiler
// without regenerating (`go run ./cmd/corpusgen -fixtures fixtures`).
func TestFixturesCurrent(t *testing.T) {
	for name, src := range map[string]string{
		"erc20":           corpus.Token(),
		"crowdsale-buggy": corpus.CrowdsaleBuggy(),
		"magic-gate":      corpus.MagicGate(),
		"bank-reentrant":  corpus.BankReentrant(),
		"proxy-delegate":  corpus.ProxyDelegate(),
	} {
		t.Run(name, func(t *testing.T) {
			comp, err := minisol.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			codeHex, abiJSON := readFixture(t, name)
			tgt, err := LoadHex(codeHex, abiJSON)
			if err != nil {
				t.Fatal(err)
			}
			if string(tgt.Code()) != string(comp.Code) {
				t.Fatalf("%s.bin is stale: %d bytes on disk vs %d compiled", name, len(tgt.Code()), len(comp.Code))
			}
			if got, want := strings.TrimSpace(string(abiJSON)), strings.TrimSpace(string(comp.ABI.EncodeJSON())); got != want {
				t.Fatalf("%s.abi.json is stale", name)
			}
		})
	}
}

// TestFixtureCampaigns runs the bundled fixtures exactly the way the CI
// ingest-smoke job does: the erc20 fixture must reach coverage with zero
// findings, the buggy crowdsale must yield the seeded BD bug, and the
// sequence mutation must be driven by recovered slot dependencies (invest
// is the recovered RAW repeat candidate).
func TestFixtureCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns are slow")
	}
	codeHex, abiJSON := readFixture(t, "erc20")
	tgt, err := LoadHex(codeHex, abiJSON)
	if err != nil {
		t.Fatal(err)
	}
	res := fuzz.NewTargetCampaign(tgt, fuzz.Options{
		Strategy: fuzz.MuFuzz(), Seed: 1, Iterations: 3000, Workers: 1,
	}).Run()
	if res.CoveredEdges == 0 {
		t.Fatal("erc20 fixture: no coverage")
	}
	if len(res.Findings) != 0 {
		t.Fatalf("erc20 fixture: unexpected findings %v", res.BugClasses)
	}

	codeHex, abiJSON = readFixture(t, "crowdsale-buggy")
	buggy, err := LoadHex(codeHex, abiJSON)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(buggy.RepeatCandidates(), ","); got != "invest" {
		t.Fatalf("recovered repeat candidates = %q, want invest", got)
	}
	bres := fuzz.NewTargetCampaign(buggy, fuzz.Options{
		Strategy: fuzz.MuFuzz(), Seed: 1, Iterations: 4000, Workers: 1,
	}).Run()
	if !bres.BugClasses[oracle.BugClass("BD")] {
		t.Fatalf("buggy fixture: BD not found (classes %v)", bres.BugClasses)
	}
}

// TestMagicGateCmpFeedback is the detection gate for comparison-operand
// feedback: the magic-gate fixture hides an unprotected selfdestruct behind
// grants[code] == 7, where the mapping key 0x4d414749 is assembled from two
// halves in the constructor — no single PUSH immediate spells it, branch
// distance is constant at the guard, and the observed operand pair {0, 7}
// says nothing about the key. At the experiments gate budget the full MuFuzz
// strategy must crack it source-free (the mined dictionary carries the folded
// constant) and the ablation with the feedback off must NOT — proving the
// crack comes from the feedback, not from budget.
func TestMagicGateCmpFeedback(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns are slow")
	}
	codeHex, abiJSON := readFixture(t, "magic-gate")

	tgt, err := LoadHex(codeHex, abiJSON)
	if err != nil {
		t.Fatal(err)
	}
	magic := false
	for _, v := range tgt.Dictionary() {
		if v.Hex() == "0x4d414749" {
			magic = true
		}
	}
	if !magic {
		t.Fatalf("assembled magic missing from mined dictionary: %v", tgt.Dictionary())
	}
	on := fuzz.NewTargetCampaign(tgt, fuzz.Options{
		Strategy: fuzz.MuFuzz(), Seed: experiments.GateSeed, Iterations: experiments.GateBudget, Workers: 1,
	}).Run()
	if !on.BugClasses[oracle.BugClass("US")] {
		t.Errorf("magic gate not cracked with comparison feedback on (classes %v)", on.BugClasses)
	}

	off := fuzz.MuFuzz()
	off.Name = "MuFuzz w/o comparison feedback"
	off.CmpFeedback = false
	off.MinedDictionary = false
	offTgt, err := LoadHex(codeHex, abiJSON)
	if err != nil {
		t.Fatal(err)
	}
	offRes := fuzz.NewTargetCampaign(offTgt, fuzz.Options{
		Strategy: off, Seed: experiments.GateSeed, Iterations: experiments.GateBudget, Workers: 1,
	}).Run()
	if offRes.BugClasses[oracle.BugClass("US")] {
		t.Error("magic gate cracked with the feedback off — the fixture no longer separates the ablation")
	}
}
