package ingest

import (
	"sort"
	"strings"
	"testing"

	"mufuzz/internal/analysis"
	"mufuzz/internal/corpus"
	"mufuzz/internal/evm"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
	"mufuzz/internal/u256"
)

// loadCompiled compiles MiniSol source and ingests its own bytecode + ABI
// JSON — the self-referential setup every ground-truth test uses.
func loadCompiled(t *testing.T, source string) (*minisol.Compiled, *Target) {
	t.Helper()
	comp, err := minisol.Compile(source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tgt, err := Load(comp.Code, comp.ABI.EncodeJSON())
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	return comp, tgt
}

// expectedSlotSet maps an AST-derived variable-name set to the slot-key set
// the recovery should produce: constant slots for word variables, map[slot]
// families for mappings.
func expectedSlotSet(c *minisol.Contract, vars analysis.VarSet) analysis.VarSet {
	out := analysis.VarSet{}
	for name := range vars {
		for _, sv := range c.StateVars {
			if sv.Name == name {
				if sv.Type.Kind == minisol.TyMapping {
					out.Add(MapSlotKey(sv.Slot))
				} else {
					out.Add(ConstSlotKey(sv.Slot))
				}
			}
		}
	}
	return out
}

func sameSet(a, b analysis.VarSet) bool {
	return strings.Join(a.Sorted(), ",") == strings.Join(b.Sorted(), ",")
}

// TestStorageRecoveryMatchesAST is the abstract interpreter's ground-truth
// gate: on every SWC-suite and extra-suite contract, the per-function
// storage read/write slot sets recovered from bare bytecode must equal the
// AST-derived analysis.AnalyzeDataflow sets (names mapped through the
// storage layout).
func TestStorageRecoveryMatchesAST(t *testing.T) {
	for _, l := range append(corpus.SWCSuite(), corpus.ExtraSuite()...) {
		t.Run(l.Name, func(t *testing.T) {
			comp, tgt := loadCompiled(t, l.Source)
			df := analysis.AnalyzeDataflow(comp.Contract)

			recovered := map[string]FuncStorage{}
			for _, fs := range tgt.Storage() {
				recovered[fs.Name] = fs
			}

			check := func(fnName string, ast analysis.FuncDataflow) {
				fs, ok := recovered[fnName]
				if !ok {
					t.Fatalf("%s: no recovered summary", fnName)
				}
				if !fs.Found {
					t.Fatalf("%s: selector not found in dispatcher", fnName)
				}
				if want := expectedSlotSet(comp.Contract, ast.Reads); !sameSet(fs.Reads, want) {
					t.Errorf("%s reads: recovered %v, want %v", fnName, fs.Reads.Sorted(), want.Sorted())
				}
				if want := expectedSlotSet(comp.Contract, ast.Writes); !sameSet(fs.Writes, want) {
					t.Errorf("%s writes: recovered %v, want %v", fnName, fs.Writes.Sorted(), want.Sorted())
				}
			}
			check(fuzz.CtorName, df.Ctor)
			for _, fd := range df.Funcs {
				check(fd.Name, fd)
			}
		})
	}
}

// TestDispatchRecoveryMatchesFuncEntry pins the selector scan against the
// compiler's own entry-point table.
func TestDispatchRecoveryMatchesFuncEntry(t *testing.T) {
	comp, tgt := loadCompiled(t, corpus.Crowdsale())
	for _, fs := range tgt.Storage() {
		name := fs.Name
		if name == fuzz.CtorName {
			name = minisol.CtorName
		}
		want, ok := comp.FuncEntry[name]
		if !ok {
			t.Fatalf("no FuncEntry for %s", name)
		}
		if !fs.Found || fs.Entry != want {
			t.Errorf("%s: recovered entry %d (found=%v), want %d", name, fs.Entry, fs.Found, want)
		}
	}
}

// TestDependencyOrderMatchesAST: with read/write sets recovered exactly, the
// source-free dependency order must reproduce the AST-derived §IV-A order.
func TestDependencyOrderMatchesAST(t *testing.T) {
	for _, src := range []string{corpus.Crowdsale(), corpus.CrowdsaleBuggy(), corpus.Game()} {
		comp, tgt := loadCompiled(t, src)
		df := analysis.AnalyzeDataflow(comp.Contract)
		want := strings.Join(df.DependencyOrder(), ",")
		got := strings.Join(tgt.DependencyOrder(), ",")
		if got != want {
			t.Errorf("%s: dependency order %q, want %q", comp.Contract.Name, got, want)
		}
		wantRep := strings.Join(df.RepeatCandidates(), ",")
		gotRep := strings.Join(tgt.RepeatCandidates(), ",")
		if gotRep != wantRep {
			t.Errorf("%s: repeat candidates %q, want %q", comp.Contract.Name, gotRep, wantRep)
		}
	}
}

// TestBranchDepthRecovery: nested branches must recover depth >= 2 so the
// mask-guided mutator still sees "nested branch" seeds source-free. The
// buggy crowdsale's timestamp branch sits inside the phase==1 branch.
func TestBranchDepthRecovery(t *testing.T) {
	comp, tgt := loadCompiled(t, corpus.CrowdsaleBuggy())
	depthByPC := map[uint64]int{}
	for _, b := range tgt.Branches() {
		depthByPC[b.PC] = b.Depth
	}
	var sawNested bool
	for _, site := range comp.Branches {
		if site.Func == "withdraw" && site.Depth >= 2 {
			if got := depthByPC[site.PC]; got < 2 {
				t.Errorf("nested branch at pc=%d recovered depth %d, want >= 2", site.PC, got)
			}
			sawNested = true
		}
	}
	if !sawNested {
		t.Fatal("fixture lost its nested branch")
	}
}

// TestExtractRuntime wraps runtime code in a synthetic deploy prologue and
// checks the extraction; plain runtime code must pass through untouched.
func TestExtractRuntime(t *testing.T) {
	comp, err := minisol.Compile(corpus.Crowdsale())
	if err != nil {
		t.Fatal(err)
	}
	runtime := comp.Code

	// PUSH2 len DUP1 PUSH2 src PUSH1 0 CODECOPY PUSH1 0 RETURN — the classic
	// deploy prologue, 13 bytes, with the runtime appended right after.
	const src = 13
	n := len(runtime)
	creation := append([]byte{
		byte(evm.PUSH1) + 1, byte(n >> 8), byte(n), byte(evm.DUP1),
		byte(evm.PUSH1) + 1, 0, src, byte(evm.PUSH1), 0, byte(evm.CODECOPY),
		byte(evm.PUSH1), 0, byte(evm.RETURN),
	}, runtime...)

	got, ok := ExtractRuntime(creation)
	if !ok {
		t.Fatal("creation code not detected")
	}
	if string(got) != string(runtime) {
		t.Fatalf("extracted %d bytes, want %d", len(got), len(runtime))
	}

	// The solc shape: free-memory-pointer setup plus the nonpayable
	// constructor's CALLVALUE guard (a JUMPI diamond whose revert arm the
	// walk must step around) in front of the CODECOPY/RETURN.
	const solcSrc = 30
	solcCreation := append([]byte{
		byte(evm.PUSH1), 0x80, byte(evm.PUSH1), 0x40, byte(evm.MSTORE),
		byte(evm.CALLVALUE), byte(evm.DUP1), byte(evm.ISZERO),
		byte(evm.PUSH1), 0x0f, byte(evm.JUMPI),
		byte(evm.PUSH1), 0, byte(evm.DUP1), byte(evm.REVERT),
		byte(evm.JUMPDEST), byte(evm.POP),
		byte(evm.PUSH1) + 1, byte(n >> 8), byte(n), byte(evm.DUP1),
		byte(evm.PUSH1) + 1, 0, solcSrc, byte(evm.PUSH1), 0, byte(evm.CODECOPY),
		byte(evm.PUSH1), 0, byte(evm.RETURN),
	}, runtime...)
	got, ok = ExtractRuntime(solcCreation)
	if !ok {
		t.Fatal("solc-style creation code (CALLVALUE guard) not detected")
	}
	if string(got) != string(runtime) {
		t.Fatalf("solc-style extraction: %d bytes, want %d", len(got), len(runtime))
	}

	if _, ok := ExtractRuntime(runtime); ok {
		t.Fatal("plain runtime code misdetected as creation code")
	}

	// Load must accept either form and land on the same target identity.
	abiJSON := comp.ABI.EncodeJSON()
	t1, err := Load(runtime, abiJSON)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Load(creation, abiJSON)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Name() != t2.Name() {
		t.Fatalf("runtime/creation loads diverge: %s vs %s", t1.Name(), t2.Name())
	}
}

// TestLoadHex accepts 0x-prefixed, whitespace-ridden hex and rejects junk.
func TestLoadHex(t *testing.T) {
	comp, err := minisol.Compile(corpus.Crowdsale())
	if err != nil {
		t.Fatal(err)
	}
	hexStr := "0x"
	for i, b := range comp.Code {
		if i%32 == 0 {
			hexStr += "\n"
		}
		hexStr += string("0123456789abcdef"[b>>4]) + string("0123456789abcdef"[b&0xf])
	}
	tgt, err := LoadHex(hexStr, comp.ABI.EncodeJSON())
	if err != nil {
		t.Fatal(err)
	}
	if len(tgt.Code()) != len(comp.Code) {
		t.Fatalf("decoded %d bytes, want %d", len(tgt.Code()), len(comp.Code))
	}
	if _, err := LoadHex("0xzz", comp.ABI.EncodeJSON()); err == nil {
		t.Fatal("junk hex accepted")
	}
	if _, err := LoadHex("", comp.ABI.EncodeJSON()); err == nil {
		t.Fatal("empty bytecode accepted")
	}
}

// TestIngestCampaignSourceFree is the end-to-end acceptance check: a full
// MuFuzz campaign over bare bytecode + ABI JSON reaches real coverage, and
// on the buggy crowdsale finds the seeded block-dependency bug — every §IV
// mechanism running source-free.
func TestIngestCampaignSourceFree(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns are slow")
	}
	_, tgt := loadCompiled(t, corpus.CrowdsaleBuggy())
	res := fuzz.NewTargetCampaign(tgt, fuzz.Options{
		Strategy:   fuzz.MuFuzz(),
		Seed:       1,
		Iterations: 3000,
		Workers:    1,
	}).Run()
	if res.CoveredEdges == 0 {
		t.Fatal("source-free campaign covered nothing")
	}
	if !res.BugClasses[oracle.BugClass("BD")] {
		classes := make([]string, 0, len(res.BugClasses))
		for c := range res.BugClasses {
			classes = append(classes, string(c))
		}
		sort.Strings(classes)
		t.Fatalf("BD not found source-free (coverage %.2f, classes %v)", res.Coverage, classes)
	}
}

// TestIngestSnapshotResume: source-free campaigns snapshot and resume like
// compiled ones (the service drains them identically).
func TestIngestSnapshotResume(t *testing.T) {
	_, tgt := loadCompiled(t, corpus.Crowdsale())
	c := fuzz.NewTargetCampaign(tgt, fuzz.Options{
		Strategy: fuzz.MuFuzz(), Seed: 3, Iterations: 400, Workers: 1,
	})
	c.Run()
	snap := c.Snapshot()
	resumed, err := fuzz.ResumeTargetCampaign(tgt, snap)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.ResultSoFar().CoveredEdges, c.ResultSoFar().CoveredEdges; got != want {
		t.Fatalf("resumed coverage %d, want %d", got, want)
	}
}

var _ fuzz.Target = (*Target)(nil)

var _ = u256.Zero // keep the import while helpers evolve
