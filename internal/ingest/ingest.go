// Package ingest turns deployed EVM bytecode plus a standard Solidity ABI
// JSON document into a fuzzable target — no source required. It is the
// source-free counterpart of the MiniSol pipeline: the ABI supplies
// selectors and payability, the CFG supplies branch sites, and a lightweight
// abstract interpretation of each selector-dispatched function body recovers
// per-function storage read/write sets, so sequence-aware mutation (§IV-A),
// mask-guided mutation (§IV-B), and dynamic energy (§IV-C) all run against
// arbitrary on-chain-style bytecode through the fuzz.Target interface.
package ingest

import (
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"mufuzz/internal/abi"
	"mufuzz/internal/analysis"
	"mufuzz/internal/evm"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/keccak"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// FuncStorage is the recovered summary of one dispatched function: where its
// body starts and which storage slots it touches. Slot keys are rendered by
// ConstSlotKey/MapSlotKey; "?" is the widened unknown.
type FuncStorage struct {
	Name     string
	Selector [4]byte
	Entry    uint64
	// Found reports whether the dispatcher scan located this selector; when
	// false the sets are empty and Entry is 0.
	Found       bool
	Reads       analysis.VarSet
	Writes      analysis.VarSet
	BranchReads analysis.VarSet
	RAW         analysis.VarSet
}

// Target is a source-free fuzzing target. It implements fuzz.Target; all
// fields are computed at Load time and immutable afterwards.
type Target struct {
	name     string
	code     []byte
	codeHash [32]byte
	spec     *abi.ABI
	ctor     abi.Method
	methods  []abi.Method
	branches []fuzz.TargetBranch
	df       *analysis.Dataflow
	depOrder []string
	repeat   []string
	access   []FuncStorage
	arms     []DispatchArm
	cfg      *analysis.CFG
	dict     []u256.Int
	links    []state.Address
}

// DispatchArm is one recovered dispatcher comparison: the raw 4-byte
// selector and the body entry it jumps to — available even when no ABI (or
// an incomplete one) was supplied.
type DispatchArm struct {
	Selector [4]byte
	Entry    uint64
}

// LoadHex is Load over hex-encoded bytecode (0x prefix and whitespace
// tolerated — the format Etherscan and RPC eth_getCode return).
func LoadHex(codeHex string, abiJSON []byte) (*Target, error) {
	s := strings.TrimSpace(codeHex)
	s = strings.TrimPrefix(s, "0x")
	s = strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' || r == '\t' || r == ' ' {
			return -1
		}
		return r
	}, s)
	code, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("ingest: decode bytecode hex: %w", err)
	}
	return Load(code, abiJSON)
}

// Load builds a target from bytecode and ABI JSON. Creation bytecode is
// detected and its runtime portion extracted automatically (the
// CODECOPY/RETURN deploy shape); anything else is treated as runtime code.
func Load(code []byte, abiJSON []byte) (*Target, error) {
	if len(code) == 0 {
		return nil, fmt.Errorf("ingest: empty bytecode")
	}
	spec, err := abi.ParseJSON(abiJSON)
	if err != nil {
		return nil, err
	}
	var creation []byte
	if runtime, ok := ExtractRuntime(code); ok {
		creation = code // keep the full creation image for dictionary mining
		code = runtime
	}

	t := &Target{
		code:     code,
		codeHash: keccak.Sum256(code),
		spec:     spec,
		cfg:      analysis.BuildCFG(code),
	}
	t.name = "code-" + hex.EncodeToString(t.codeHash[:6])
	t.ctor = ctorMethod(spec)
	t.methods = spec.Methods

	t.dict = buildDictionary(t.recover(), creation)
	t.links = recoverLinks(code, creation)
	return t, nil
}

// recoverLinks mines deployment addresses the bytecode references: PUSH20
// immediates (the shape solc emits for hardcoded contract addresses) from
// both the runtime code and the creation image, plus trailing 32-byte
// constructor-argument words of the creation image that are address-shaped
// (12 zero bytes, nonzero remainder) — linked contracts are overwhelmingly
// wired either as literals or as constructor arguments appended after the
// deploy code. Order is deterministic: first occurrence wins.
func recoverLinks(runtime, creation []byte) []state.Address {
	seen := map[state.Address]bool{}
	var out []state.Address
	add := func(a state.Address) {
		if a != (state.Address{}) && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, img := range [][]byte{runtime, creation} {
		for _, ins := range analysis.Disassemble(img) {
			if ins.Op.IsPush() && len(ins.Imm) == 20 {
				var a state.Address
				copy(a[:], ins.Imm)
				add(a)
			}
		}
	}
	// Constructor args: ABI words appended after the creation code. Walk back
	// from the end while words look like addresses; the bounded walk keeps
	// pathological images from flooding the link set.
	if tail := creation; len(tail) >= 32 {
		for n := 0; n < maxCtorArgWords && len(tail) >= 32; n++ {
			w := tail[len(tail)-32:]
			addressShaped := true
			for _, b := range w[:12] {
				if b != 0 {
					addressShaped = false
					break
				}
			}
			if !addressShaped {
				break
			}
			var a state.Address
			copy(a[:], w[12:])
			add(a)
			tail = tail[:len(tail)-32]
		}
	}
	return out
}

// maxCtorArgWords bounds the trailing constructor-argument scan of
// recoverLinks.
const maxCtorArgWords = 8

// ctorMethod builds the sequence-anchor pseudo-method from the ABI's
// constructor entry. Its signature uses the fuzzer's constructor pseudo-name
// over the declared argument types, so bytecode compiled with the same
// pseudo-selector scheme (the MiniSol toolchain) dispatches it to the real
// constructor; for foreign bytecode the call lands in the fallback path,
// which keeps the sequence invariant without touching state.
func ctorMethod(spec *abi.ABI) abi.Method {
	m := abi.Method{Name: fuzz.CtorName, Payable: true}
	if c := spec.Constructor; c != nil {
		m.Inputs = c.Inputs
	}
	parts := make([]string, len(m.Inputs))
	for i, p := range m.Inputs {
		parts[i] = p.TypeName()
	}
	m.RawSig = fuzz.CtorName + "(" + strings.Join(parts, ",") + ")"
	return m
}

// recover runs the static recovery over the runtime code: dispatcher arms,
// per-function storage access, and branch-site depths. It returns the
// dictionary candidates the abstract interpretation materialized along the
// way (constant-fold results and keccak mapping bases).
func (t *Target) recover() map[u256.Int]bool {
	instrs := analysis.Disassemble(t.code)
	entryBySel := map[[4]byte]uint64{}
	for _, e := range selectorEntries(instrs) {
		if _, dup := entryBySel[e.sel]; !dup {
			entryBySel[e.sel] = e.entry
			t.arms = append(t.arms, DispatchArm{Selector: e.sel, Entry: e.entry})
		}
	}

	depth := map[uint64]int{}
	consts := map[u256.Int]bool{}
	analyze := func(name string, sel [4]byte) FuncStorage {
		fs := FuncStorage{
			Name: name, Selector: sel,
			Reads: analysis.VarSet{}, Writes: analysis.VarSet{},
			BranchReads: analysis.VarSet{}, RAW: analysis.VarSet{},
		}
		entry, ok := entryBySel[sel]
		if !ok {
			return fs
		}
		fs.Entry = entry
		fs.Found = true
		blocks := reachableBlocks(t.cfg, entry)
		acc := recoverAccess(t.cfg, blocks, nil)
		for v := range acc.consts {
			consts[v] = true
		}
		fs.Reads = varSet(acc.reads)
		fs.Writes = varSet(acc.writes)
		fs.BranchReads = varSet(acc.branchReads)
		for w := range fs.Writes {
			if fs.BranchReads[w] {
				fs.RAW.Add(w)
			}
		}
		for pc, d := range branchDepths(t.cfg, entry) {
			if d > depth[pc] {
				depth[pc] = d
			}
		}
		return fs
	}

	df := &analysis.Dataflow{}
	ctorAccess := analyze(t.ctor.Name, t.ctor.Selector())
	df.Ctor = analysis.FuncDataflow{
		Name:  t.ctor.Name,
		Reads: ctorAccess.Reads, Writes: ctorAccess.Writes,
		BranchReads: ctorAccess.BranchReads, RAW: ctorAccess.RAW,
	}
	t.access = append(t.access, ctorAccess)
	for _, m := range t.methods {
		fs := analyze(m.Name, m.Selector())
		t.access = append(t.access, fs)
		df.Funcs = append(df.Funcs, analysis.FuncDataflow{
			Name:  m.Name,
			Reads: fs.Reads, Writes: fs.Writes,
			BranchReads: fs.BranchReads, RAW: fs.RAW,
			Stateless: len(fs.Reads) == 0 && len(fs.Writes) == 0,
		})
	}
	t.df = df
	t.depOrder = df.DependencyOrder()
	t.repeat = df.RepeatCandidates()

	for _, pc := range t.cfg.BranchPCs() {
		t.branches = append(t.branches, fuzz.TargetBranch{PC: pc, Depth: depth[pc]})
	}
	return consts
}

// maxDict bounds the mined dictionary; pathological bytecode cannot dilute
// the campaign value pool past it.
const maxDict = 256

// buildDictionary finalizes the mined dictionary: the abstract-interp
// candidates from recover plus, when the target arrived as creation bytecode,
// every PUSH immediate of the creation image — constructor-only constants
// (initialization magics, owner addresses) are discarded with the creation
// code otherwise and the campaign's runtime PUSH harvest never sees them.
// Deterministic: deduplicated, value-sorted.
func buildDictionary(consts map[u256.Int]bool, creation []byte) []u256.Int {
	if creation != nil {
		for _, ins := range analysis.Disassemble(creation) {
			if ins.Op.IsPush() && len(ins.Imm) > 0 && len(ins.Imm) <= 32 {
				consts[u256.FromBytes(ins.Imm)] = true
			}
		}
	}
	out := make([]u256.Int, 0, len(consts))
	for v := range consts {
		if v.IsZero() || v.BitLen() >= 200 {
			continue
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lt(out[j]) })
	if len(out) > maxDict {
		out = out[:maxDict]
	}
	return out
}

// --- fuzz.Target ---

// Name returns the codehash-derived label identifying the target; it keys
// corpus-store buckets, so campaigns on the same deployed code share seeds.
func (t *Target) Name() string { return t.name }

// Code returns the runtime bytecode.
func (t *Target) Code() []byte { return t.code }

// Deploy installs the runtime code. Source-free targets have no executable
// constructor: on-chain state created at deployment is not reproducible from
// runtime code alone, so fuzzing starts from fresh storage.
func (t *Target) Deploy(st *state.State, addr, deployer state.Address) {
	st.CreateContract(addr, t.code, deployer)
	st.Commit()
}

// Constructor returns the sequence-anchor pseudo-method.
func (t *Target) Constructor() abi.Method { return t.ctor }

// Methods lists the ABI's functions in declaration order.
func (t *Target) Methods() []abi.Method { return t.methods }

// Branches lists every JUMPI site with its recovered nesting depth.
func (t *Target) Branches() []fuzz.TargetBranch { return t.branches }

// DependencyOrder orders functions writer-before-reader over recovered
// storage slots (§IV-A source-free).
func (t *Target) DependencyOrder() []string { return t.depOrder }

// RepeatCandidates lists functions with a recovered read-after-write slot
// dependency feeding a branch condition.
func (t *Target) RepeatCandidates() []string { return t.repeat }

// Dictionary returns the constants mined from the bytecode beyond the
// campaign's own PUSH harvest: constant-fold results and keccak mapping bases
// from the abstract interpretation, plus creation-code immediates.
func (t *Target) Dictionary() []u256.Int { return t.dict }

// LinkedAddresses returns deployment addresses the bytecode references
// (PUSH20 immediates and address-shaped trailing constructor-argument
// words) — the fuzz.LinkedTarget capability the multi-contract campaign
// uses to order member constructors dependency-first (§IV-A extended to
// cross-contract write→read edges).
func (t *Target) LinkedAddresses() []state.Address { return append([]state.Address(nil), t.links...) }

// --- tooling accessors ---

// CodeHash returns keccak256 of the runtime code — the content address the
// store buckets source-free targets by.
func (t *Target) CodeHash() [32]byte { return t.codeHash }

// ABI returns the parsed ABI.
func (t *Target) ABI() *abi.ABI { return t.spec }

// Storage returns the per-function recovered storage summaries (constructor
// pseudo-method first, then methods in ABI order).
func (t *Target) Storage() []FuncStorage { return t.access }

// DispatcherArms returns every recovered dispatcher comparison in code
// order, ABI-matched or not — the raw selector inventory of the bytecode.
func (t *Target) DispatcherArms() []DispatchArm { return t.arms }

// Dataflow returns the recovered whole-contract dependency summary.
func (t *Target) Dataflow() *analysis.Dataflow { return t.df }

// CFG returns the bytecode control-flow graph.
func (t *Target) CFG() *analysis.CFG { return t.cfg }

// ExtractRuntime detects creation (deploy) bytecode and extracts the runtime
// portion it returns. It abstractly walks the constructor prologue from
// offset 0 — through static jumps and BOTH directions of conditional guards
// (solc's nonpayable-constructor CALLVALUE check is a JUMPI diamond whose
// revert arm dies immediately), with a global step budget — using the same
// opcode model as the storage recovery (stepData). A path that reaches
// RETURN with constant (offset, size) fed by a CODECOPY of a constant code
// range identifies that range as the runtime code. Runtime bytecode never
// matches: its dispatcher paths RETURN memory no CODECOPY ever wrote, so
// every path dies or exhausts the budget without a candidate.
func ExtractRuntime(code []byte) ([]byte, bool) {
	instrs := analysis.Disassemble(code)
	index := map[uint64]int{}
	for i, ins := range instrs {
		index[ins.PC] = i
	}

	// srcRange remembers CODECOPY(destOff → [srcOff, size]) with constant
	// arguments; per-path state, like the abstract stack and memory.
	type srcRange struct{ src, size uint64 }
	type path struct {
		i      int
		st     *absState
		ranges map[uint64]srcRange
	}
	clonePath := func(p *path, i int) *path {
		np := &path{
			i:      i,
			st:     &absState{stack: append([]absVal(nil), p.st.stack...), mem: make(map[uint64]absVal, len(p.st.mem))},
			ranges: make(map[uint64]srcRange, len(p.ranges)),
		}
		for k, v := range p.st.mem {
			np.st.mem[k] = v
		}
		for k, v := range p.ranges {
			np.ranges[k] = v
		}
		return np
	}

	work := []*path{{i: 0, st: &absState{mem: map[uint64]absVal{}}, ranges: map[uint64]srcRange{}}}
	for budget := 4096; budget > 0 && len(work) > 0; {
		p := work[len(work)-1]
		work = work[:len(work)-1]

		for ; budget > 0 && p.i < len(instrs); budget-- {
			ins := instrs[p.i]
			if stepData(p.st, ins, nil) {
				p.i++
				continue
			}
			switch ins.Op {
			case evm.CODECOPY:
				dest, src, size := p.st.pop(), p.st.pop(), p.st.pop()
				if dest.kind == aConst && dest.c.FitsUint64() &&
					src.kind == aConst && src.c.FitsUint64() &&
					size.kind == aConst && size.c.FitsUint64() {
					p.ranges[dest.c.Uint64()] = srcRange{src: src.c.Uint64(), size: size.c.Uint64()}
				}
				p.i++
				continue
			case evm.RETURN:
				off, size := p.st.pop(), p.st.pop()
				if off.kind == aConst && off.c.FitsUint64() && size.kind == aConst && size.c.FitsUint64() {
					if r, ok := p.ranges[off.c.Uint64()]; ok && r.size > 0 && r.size >= size.c.Uint64() {
						end := r.src + r.size
						if r.src > 0 && end <= uint64(len(code)) {
							return code[r.src:end], true
						}
					}
				}
			case evm.JUMP:
				dest := p.st.pop()
				if dest.kind == aConst && dest.c.FitsUint64() {
					if j, ok := index[dest.c.Uint64()]; ok {
						p.i = j
						continue
					}
				}
			case evm.JUMPI:
				dest, _ := p.st.pop(), p.st.pop()
				if dest.kind == aConst && dest.c.FitsUint64() {
					if j, ok := index[dest.c.Uint64()]; ok {
						work = append(work, clonePath(p, j)) // taken arm
					}
				}
				p.i++ // fall-through arm continues on this path
				continue
			}
			break // REVERT/STOP/INVALID/SELFDESTRUCT, or a dead end above
		}
	}
	return nil, false
}
