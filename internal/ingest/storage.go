package ingest

import (
	"sort"

	"mufuzz/internal/analysis"
	"mufuzz/internal/evm"
	"mufuzz/internal/u256"
)

// This file is the storage-access recovery: a lightweight abstract
// interpretation of bytecode basic blocks that reconstructs, per dispatched
// function, which storage slots it reads and writes — the information
// MuFuzz's sequence-aware mutation (§IV-A) gets from the MiniSol AST when
// source is available. The abstract domain tracks three value shapes:
//
//	Const c        — a PUSH immediate or a constant fold thereof
//	MapSlot b      — keccak256(key . b) with constant b: a Solidity mapping
//	                 slot with base b (the layout solc and MiniSol share)
//	Top            — anything else
//
// Each value also carries a taint set: the storage keys whose SLOAD results
// flowed into it. A JUMPI whose condition is tainted marks those keys as
// branch-reads, which is what the read-after-write repetition heuristic
// consumes.
//
// Blocks are interpreted independently with an unknown entry stack (values
// popped past the block's own pushes widen to Top) and empty memory. That is
// exact for the patterns compilers emit — slot pushes, mapping-slot keccaks,
// and compound load/op/store run inside one block — and degrades to Top (the
// "?" key) for anything carried across block boundaries.

// Storage-key rendering. Constant slots render as decimal, mapping slots as
// map[base]; Top collapses to "?", which only ever matches itself in
// dependency analysis (a deliberately conservative choice).
const topSlotKey = "?"

// ConstSlotKey renders a constant storage slot as a canonical set element.
func ConstSlotKey(slot u256.Int) string { return slot.String() }

// MapSlotKey renders a mapping's slot family (all keccak(key . base) slots)
// as a canonical set element.
func MapSlotKey(base u256.Int) string { return "map[" + base.String() + "]" }

type absKind uint8

const (
	aTop absKind = iota
	aConst
	aMapSlot
)

// absVal is one abstract word with its storage-read taint.
type absVal struct {
	kind  absKind
	c     u256.Int // constant value (aConst) or mapping base (aMapSlot)
	taint []string // sorted unique storage keys read to produce this value
}

func topVal() absVal { return absVal{kind: aTop} }

func constVal(c u256.Int) absVal { return absVal{kind: aConst, c: c} }

// slotKey renders the abstract value used as an SLOAD/SSTORE slot operand.
func (v absVal) slotKey() string {
	switch v.kind {
	case aConst:
		return ConstSlotKey(v.c)
	case aMapSlot:
		return MapSlotKey(v.c)
	default:
		return topSlotKey
	}
}

// mergeTaint unions two sorted taint sets.
func mergeTaint(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// access accumulates the recovered storage interaction of one code region.
type access struct {
	reads       map[string]bool
	writes      map[string]bool
	branchReads map[string]bool
	// consts collects the dictionary candidates this walk materialized:
	// results of constant folds (a magic value the code assembles from parts
	// exists nowhere as a PUSH immediate, but the fold computes it whole) and
	// keccak mapping bases.
	consts map[u256.Int]bool
}

func newAccess() *access {
	return &access{
		reads:       map[string]bool{},
		writes:      map[string]bool{},
		branchReads: map[string]bool{},
		consts:      map[u256.Int]bool{},
	}
}

// absState is the interpreter state while walking one basic block.
type absState struct {
	stack []absVal
	mem   map[uint64]absVal // word-granular, keyed by constant byte offset
}

func (s *absState) push(v absVal) { s.stack = append(s.stack, v) }

// pop returns the top of stack, widening to Top past the block's own pushes
// (the unknown entry stack).
func (s *absState) pop() absVal {
	if len(s.stack) == 0 {
		return topVal()
	}
	v := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	return v
}

func (s *absState) popN(n int) []absVal {
	out := make([]absVal, n)
	for i := 0; i < n; i++ {
		out[i] = s.pop()
	}
	return out
}

// opArity gives (pops, pushes) for the opcodes the interpreter treats
// generically; the structured ones (PUSH/DUP/SWAP, memory, storage, keccak,
// jumps) are handled in the walk itself.
func opArity(op evm.OpCode) (pops, pushes int, ok bool) {
	switch op {
	case evm.ADD, evm.MUL, evm.SUB, evm.DIV, evm.SDIV, evm.MOD, evm.SMOD,
		evm.EXP, evm.SIGNEXTEND, evm.LT, evm.GT, evm.SLT, evm.SGT, evm.EQ,
		evm.AND, evm.OR, evm.XOR, evm.BYTE, evm.SHL, evm.SHR, evm.SAR:
		return 2, 1, true
	case evm.ADDMOD, evm.MULMOD:
		return 3, 1, true
	case evm.ISZERO, evm.NOT:
		return 1, 1, true
	case evm.ADDRESS, evm.ORIGIN, evm.CALLER, evm.CALLVALUE, evm.CALLDATASIZE,
		evm.CODESIZE, evm.GASPRICE, evm.RETURNDATASIZE, evm.COINBASE,
		evm.TIMESTAMP, evm.NUMBER, evm.DIFFICULTY, evm.GASLIMIT,
		evm.SELFBALANCE, evm.PC, evm.MSIZE, evm.GAS:
		return 0, 1, true
	case evm.BALANCE, evm.BLOCKHASH, evm.CALLDATALOAD:
		return 1, 1, true
	case evm.CALLDATACOPY, evm.CODECOPY, evm.RETURNDATACOPY:
		return 3, 0, true
	case evm.POP:
		return 1, 0, true
	case evm.JUMPDEST, evm.STOP, evm.INVALID:
		return 0, 0, true
	case evm.JUMP, evm.SELFDESTRUCT:
		return 1, 0, true
	case evm.RETURN, evm.REVERT:
		return 2, 0, true
	case evm.CALL:
		return 7, 1, true
	case evm.DELEGATECALL, evm.STATICCALL:
		return 6, 1, true
	}
	if op.IsLog() {
		return 2 + int(op-evm.LOG0), 0, true
	}
	return 0, 0, false
}

// foldBinary constant-folds the arithmetic the slot computations of real
// compilers use; everything else widens to Top. a is the first-popped (top)
// operand, matching EVM semantics (SUB = a - b, SHL = b << a).
func foldBinary(op evm.OpCode, a, b absVal) absVal {
	taint := mergeTaint(a.taint, b.taint)
	if a.kind == aConst && b.kind == aConst {
		var c u256.Int
		folded := true
		switch op {
		case evm.ADD:
			c = a.c.Add(b.c)
		case evm.SUB:
			c = a.c.Sub(b.c)
		case evm.MUL:
			c = a.c.Mul(b.c)
		case evm.AND:
			c = a.c.And(b.c)
		case evm.OR:
			c = a.c.Or(b.c)
		case evm.XOR:
			c = a.c.Xor(b.c)
		case evm.SHL:
			if a.c.FitsUint64() && a.c.Uint64() < 256 {
				c = b.c.Lsh(uint(a.c.Uint64()))
			} else {
				folded = false
			}
		case evm.SHR:
			if a.c.FitsUint64() && a.c.Uint64() < 256 {
				c = b.c.Rsh(uint(a.c.Uint64()))
			} else {
				folded = false
			}
		case evm.EQ:
			if a.c.Eq(b.c) {
				c = u256.One
			}
		case evm.ISZERO:
			folded = false
		default:
			folded = false
		}
		if folded {
			return absVal{kind: aConst, c: c, taint: taint}
		}
	}
	return absVal{kind: aTop, taint: taint}
}

// stepData advances the abstract state over one data instruction, recording
// storage interaction into acc when non-nil (nil runs the same opcode model
// without recording — the creation-code walk). Control-flow and code-copy
// instructions (JUMP, JUMPI, CODECOPY, RETURN, REVERT, STOP, INVALID,
// SELFDESTRUCT) are the caller's: the function touches nothing for them and
// returns false. This is the single opcode model shared by walkBlock and
// ExtractRuntime, so memory/stack semantics cannot diverge between the two.
func stepData(st *absState, ins analysis.Instruction, acc *access) bool {
	op := ins.Op
	switch op {
	case evm.JUMP, evm.JUMPI, evm.CODECOPY, evm.RETURN, evm.REVERT,
		evm.STOP, evm.INVALID, evm.SELFDESTRUCT:
		return false
	}
	switch {
	case op.IsPush():
		st.push(constVal(u256.FromBytes(ins.Imm)))

	case op.IsDup():
		n := int(op-evm.DUP1) + 1
		if n <= len(st.stack) {
			st.push(st.stack[len(st.stack)-n])
		} else {
			st.push(topVal())
		}

	case op.IsSwap():
		n := int(op-evm.SWAP1) + 1
		if n >= len(st.stack) {
			// part of the swapped pair is below the entry stack: materialize
			// unknowns so positions stay consistent
			for len(st.stack) < n+1 {
				st.stack = append([]absVal{topVal()}, st.stack...)
			}
		}
		top := len(st.stack) - 1
		st.stack[top], st.stack[top-n] = st.stack[top-n], st.stack[top]

	case op == evm.MSTORE:
		off, val := st.pop(), st.pop()
		if off.kind == aConst && off.c.FitsUint64() {
			st.mem[off.c.Uint64()] = val
		} else {
			// unknown destination: every remembered word may be gone
			st.mem = map[uint64]absVal{}
		}

	case op == evm.MSTORE8:
		off, _ := st.pop(), st.pop()
		if off.kind == aConst && off.c.FitsUint64() {
			delete(st.mem, off.c.Uint64())
		} else {
			st.mem = map[uint64]absVal{}
		}

	case op == evm.MLOAD:
		off := st.pop()
		if off.kind == aConst && off.c.FitsUint64() {
			if v, ok := st.mem[off.c.Uint64()]; ok {
				st.push(v)
				return true
			}
		}
		st.push(topVal())

	case op == evm.KECCAK256:
		off, size := st.pop(), st.pop()
		// The mapping-slot shape shared by solc and MiniSol:
		// keccak256(mem[off .. off+64]) with mem[off+32] = constant base.
		if off.kind == aConst && off.c.FitsUint64() &&
			size.kind == aConst && size.c.FitsUint64() && size.c.Uint64() == 64 {
			o := off.c.Uint64()
			base, okBase := st.mem[o+32]
			key := st.mem[o] // zero absVal (Top) when unknown
			if okBase && base.kind == aConst {
				if acc != nil {
					acc.consts[base.c] = true
				}
				st.push(absVal{kind: aMapSlot, c: base.c, taint: mergeTaint(key.taint, base.taint)})
				return true
			}
		}
		st.push(topVal())

	case op == evm.SLOAD:
		slot := st.pop()
		key := slot.slotKey()
		if acc != nil {
			acc.reads[key] = true
		}
		st.push(absVal{kind: aTop, taint: mergeTaint(slot.taint, []string{key})})

	case op == evm.SSTORE:
		slot, _ := st.pop(), st.pop()
		if acc != nil {
			acc.writes[slot.slotKey()] = true
		}

	case op == evm.CALL || op == evm.DELEGATECALL || op == evm.STATICCALL:
		// A call's status word is decided by the callee, not by the storage
		// values among its arguments; cutting taint here keeps call-success
		// guards (transfer/send checks) out of the branch-read sets,
		// matching the source-level definition of a condition read.
		pops, _, _ := opArity(op)
		st.popN(pops)
		st.push(topVal())

	case op == evm.ISZERO || op == evm.NOT:
		v := st.pop()
		st.push(absVal{kind: aTop, taint: v.taint})

	default:
		if pops, pushes, ok := opArity(op); ok {
			if pops == 2 && pushes == 1 {
				args := st.popN(2)
				v := foldBinary(op, args[0], args[1])
				if acc != nil && v.kind == aConst {
					acc.consts[v.c] = true
				}
				st.push(v)
				return true
			}
			args := st.popN(pops)
			var taint []string
			for _, a := range args {
				taint = mergeTaint(taint, a.taint)
			}
			for i := 0; i < pushes; i++ {
				st.push(absVal{kind: aTop, taint: taint})
			}
		} else {
			// Unknown opcode: assume nothing about the stack from here on.
			st.stack = st.stack[:0]
			st.mem = map[uint64]absVal{}
		}
	}
	return true
}

// walkBlock abstractly interprets one basic block, folding its storage
// interaction into acc. onBranch, when non-nil, receives the JUMPI site pc
// and its condition taint.
func walkBlock(b *analysis.Block, acc *access, onBranch func(pc uint64, taint []string)) {
	st := &absState{mem: map[uint64]absVal{}}
	for _, ins := range b.Instr {
		if stepData(st, ins, acc) {
			continue
		}
		if ins.Op == evm.JUMPI {
			_, cond := st.pop(), st.pop()
			for _, key := range cond.taint {
				acc.branchReads[key] = true
			}
			if onBranch != nil {
				onBranch(ins.PC, cond.taint)
			}
			continue
		}
		// Remaining control ops terminate the block; only their stack pops
		// matter (nothing in this block runs after them).
		if pops, _, ok := opArity(ins.Op); ok {
			st.popN(pops)
		}
	}
}

// recoverAccess interprets every block in blocks and returns the combined
// storage interaction. onBranch observes each JUMPI once per block walk.
func recoverAccess(cfg *analysis.CFG, blocks []uint64, onBranch func(pc uint64, taint []string)) *access {
	acc := newAccess()
	for _, start := range blocks {
		walkBlock(cfg.Blocks[start], acc, onBranch)
	}
	return acc
}

// varSet converts an access set into the analysis package's VarSet form.
func varSet(m map[string]bool) analysis.VarSet {
	out := analysis.VarSet{}
	for k := range m {
		out[k] = true
	}
	return out
}
