package evm

import (
	"mufuzz/internal/u256"
)

// This file implements the decode-once interpreter IR: bytecode is decoded
// and lightly compiled exactly once per code blob, and the hot execution loop
// runs over the pre-decoded instruction stream instead of re-reading raw
// bytes (and re-materializing PUSH immediates) on every execution.
//
// The IR is a pure performance layer. Its contract with the switch-loop
// interpreter in interpreter.go is byte-identical observable behavior: the
// same trace events in the same order, the same gas at every failure point,
// the same step accounting, the same errors. The conformance differential
// matrix runs whole campaigns with the IR disabled (Options.NoIR) and
// requires identical transcripts; anything the IR wants to shortcut must
// either preserve those semantics exactly or fall back to the plain
// per-instruction path.

// Instr is one decoded instruction on the bytecode's PC grid. It is the
// shared decoder element for every consumer of disassembly in the tree —
// the interpreter's IR compiler, analysis.BuildCFG, cmd/disasm, and the
// ingest dispatcher recovery all read this shape (analysis.Instruction is an
// alias of it).
type Instr struct {
	PC uint64
	Op OpCode
	// Imm is the PUSH immediate as a sub-slice of code (truncated, not
	// padded, when the push runs off the end of code), nil for other ops.
	Imm []byte
}

// Decode disassembles code into its instruction sequence, skipping PUSH
// immediates on the PC grid.
func Decode(code []byte) []Instr {
	out := make([]Instr, 0, len(code)/2+1)
	for pc := 0; pc < len(code); {
		op := OpCode(code[pc])
		ins := Instr{PC: uint64(pc), Op: op}
		if n := op.PushBytes(); n > 0 {
			end := pc + 1 + n
			if end > len(code) {
				end = len(code)
			}
			ins.Imm = code[pc+1 : end]
			pc = end
		} else {
			pc++
		}
		out = append(out, ins)
	}
	return out
}

// irKind discriminates the per-instruction fast paths of frame.runIR. Plain
// instructions still dispatch through frame.execute — the IR only inlines
// the families the switch loop also inlines (PUSH/DUP/SWAP/LOG) plus the
// pc-mutating jumps, which need their successor re-mapped to an instruction
// index.
type irKind uint8

const (
	irPlain irKind = iota // dispatch through frame.execute, successor i+1
	irPush                // pre-resolved immediate push
	irDup
	irSwap
	irLog
	irJump // JUMP/JUMPI: execute, then re-map f.pc through pcToIdx
)

// Fused superinstruction kinds, annotated on the head instruction of a
// recognized pattern. Constituent instructions stay in the stream unchanged:
// control flow can only enter a pattern at its head (no constituent is a
// JUMPDEST, so no jump lands mid-pattern), and when a runtime guard fails —
// near the step limit, low on gas, stack out of range — the head simply
// executes unfused and the following constituents run plain, reproducing the
// switch loop's exact per-instruction semantics at every failure point.
const (
	fuseNone uint8 = iota
	// fuseDispatch is the solc/MiniSol dispatcher arm
	// DUP1 PUSH4 <sel> EQ PUSHn <dst> JUMPI (5 constituents).
	fuseDispatch
	// fuseCmpJumpi is LT/GT/SLT/SGT/EQ PUSHn <dst> JUMPI (3 constituents),
	// with the branch-distance comparison recorded inline.
	fuseCmpJumpi
	// fuseIsZeroJumpi is ISZERO PUSHn <dst> JUMPI (3 constituents).
	fuseIsZeroJumpi
	// fusePushJump / fusePushJumpi are the static-jump pairs (2 constituents).
	fusePushJump
	fusePushJumpi
	// fuseDupSload is DUPn SLOAD (2 constituents).
	fuseDupSload
)

// irInstr is one compiled instruction.
type irInstr struct {
	op   OpCode
	kind irKind
	// fuse is the superinstruction annotation when this instruction heads a
	// fused pattern (fuseNone otherwise).
	fuse uint8
	// n is the family parameter: DUPn/SWAPn depth, LOG pop count.
	n uint8
	// fSteps/fGas are the constituent count and total gas of the fused
	// pattern; the fast path batches both only when the whole pattern fits.
	fSteps uint8
	fGas   uint16
	// blockStart marks basic-block leaders (entry, JUMPDESTs, instructions
	// after a terminator).
	blockStart bool
	pc         uint32
	// fTarget is the instruction index of the fused pattern's statically
	// validated jump destination.
	fTarget int32
	// imm is the pre-resolved (right-padded) PUSH immediate.
	imm u256.Int
	// fSel is the dispatcher pattern's PUSH4 selector word (the EQ operand).
	fSel u256.Int
}

// Program is the compiled IR of one code blob: the decoded instruction
// stream with pre-resolved immediates, the pc→instruction-index table that
// makes JUMP/JUMPI resolution O(1), the valid-JUMPDEST grid, basic-block
// leaders, and fused superinstruction annotations. A Program is immutable
// after CompileProgram and safe to share read-only across worker EVMs.
type Program struct {
	code   []byte
	instrs []irInstr
	// pcToIdx maps every grid pc to its instruction index; index len(code)
	// and pcs inside PUSH immediates hold len(instrs) (implicit STOP — the
	// interpreter never jumps into an immediate, JUMPDEST validation rejects
	// it first).
	pcToIdx []int32
	// dests is the valid-JUMPDEST grid, indexed by pc. This is the single
	// source of jump-destination truth; the switch loop's frames use it too.
	dests  []bool
	blocks int
}

// Code returns the bytecode the program was compiled from.
func (p *Program) Code() []byte { return p.code }

// NumInstrs returns the instruction count of the decoded stream.
func (p *Program) NumInstrs() int { return len(p.instrs) }

// NumBlocks returns the number of basic blocks (leader count).
func (p *Program) NumBlocks() int { return p.blocks }

// NumFused returns how many instructions head a fused superinstruction.
func (p *Program) NumFused() int {
	n := 0
	for i := range p.instrs {
		if p.instrs[i].fuse != fuseNone {
			n++
		}
	}
	return n
}

// JumpDests returns the valid-JUMPDEST grid (shared, read-only).
func (p *Program) JumpDests() []bool { return p.dests }

// CompileProgram decodes and compiles one code blob. Compilation is O(len
// code) and runs once per blob per campaign (see EVM.program); everything it
// precomputes — immediates, jump tables, fusion — is paid back millions of
// times on the execution hot path.
func CompileProgram(code []byte) *Program {
	dec := Decode(code)
	p := &Program{
		code:    code,
		instrs:  make([]irInstr, len(dec)),
		pcToIdx: make([]int32, len(code)+1),
		dests:   make([]bool, len(code)),
	}
	for i := range p.pcToIdx {
		p.pcToIdx[i] = int32(len(dec))
	}
	for i, d := range dec {
		ins := &p.instrs[i]
		ins.op = d.Op
		ins.pc = uint32(d.PC)
		ins.fTarget = -1
		p.pcToIdx[d.PC] = int32(i)
		switch {
		case d.Op.IsPush():
			ins.kind = irPush
			ins.imm = u256.FromBytes(rightPad(d.Imm, d.Op.PushBytes()))
		case d.Op.IsDup():
			ins.kind = irDup
			ins.n = uint8(d.Op-DUP1) + 1
		case d.Op.IsSwap():
			ins.kind = irSwap
			ins.n = uint8(d.Op-SWAP1) + 1
		case d.Op.IsLog():
			ins.kind = irLog
			ins.n = uint8(d.Op-LOG0) + 2
		case d.Op == JUMP || d.Op == JUMPI:
			ins.kind = irJump
		default:
			if d.Op == JUMPDEST {
				p.dests[d.PC] = true
			}
			ins.kind = irPlain
		}
	}
	p.markBlocks()
	p.fuse()
	return p
}

// markBlocks flags basic-block leaders: instruction 0, JUMPDESTs, and the
// instruction after any terminator.
func (p *Program) markBlocks() {
	ins := p.instrs
	for i := range ins {
		if i == 0 || ins[i].op == JUMPDEST {
			ins[i].blockStart = true
			continue
		}
		switch ins[i-1].op {
		case JUMP, JUMPI, STOP, RETURN, REVERT, INVALID, SELFDESTRUCT:
			ins[i].blockStart = true
		}
	}
	for i := range ins {
		if ins[i].blockStart {
			p.blocks++
		}
	}
}

// staticTargetIdx resolves a PUSH immediate as a jump target: the
// instruction index of the destination when it is a valid JUMPDEST, or
// (-1, false). Patterns whose target fails validation are left unfused so
// the plain path reproduces the exact ErrInvalidJump.
func (p *Program) staticTargetIdx(v u256.Int) (int32, bool) {
	if !v.FitsUint64() {
		return -1, false
	}
	d := v.Uint64()
	if d >= uint64(len(p.dests)) || !p.dests[d] {
		return -1, false
	}
	return p.pcToIdx[d], true
}

// fuse annotates superinstruction heads. Gas totals use the same cost model
// as the plain path (gasCost per constituent); step totals are the
// constituent counts.
func (p *Program) fuse() {
	ins := p.instrs
	for i := range ins {
		// Dispatcher arm: DUP1 PUSH4 EQ PUSHn JUMPI.
		if ins[i].op == DUP1 && i+4 < len(ins) &&
			ins[i+1].op == PUSH1+3 && ins[i+2].op == EQ &&
			ins[i+3].op.IsPush() && ins[i+4].op == JUMPI {
			if t, ok := p.staticTargetIdx(ins[i+3].imm); ok {
				ins[i].fuse = fuseDispatch
				ins[i].fSteps = 5
				ins[i].fGas = uint16(4*gasCost(DUP1) + gasCost(JUMPI))
				ins[i].fSel = ins[i+1].imm
				ins[i].fTarget = t
				continue
			}
		}
		// Comparison straight into a static branch: cmp PUSHn JUMPI.
		if (ins[i].op.IsComparison() || ins[i].op == ISZERO) && i+2 < len(ins) &&
			ins[i+1].op.IsPush() && ins[i+2].op == JUMPI {
			if t, ok := p.staticTargetIdx(ins[i+1].imm); ok {
				if ins[i].op == ISZERO {
					ins[i].fuse = fuseIsZeroJumpi
				} else {
					ins[i].fuse = fuseCmpJumpi
				}
				ins[i].fSteps = 3
				ins[i].fGas = uint16(2*gasCost(EQ) + gasCost(JUMPI))
				ins[i].fTarget = t
				continue
			}
		}
		// Static jumps: PUSHn JUMP / PUSHn JUMPI.
		if ins[i].op.IsPush() && i+1 < len(ins) &&
			(ins[i+1].op == JUMP || ins[i+1].op == JUMPI) {
			if t, ok := p.staticTargetIdx(ins[i].imm); ok {
				if ins[i+1].op == JUMP {
					ins[i].fuse = fusePushJump
				} else {
					ins[i].fuse = fusePushJumpi
				}
				ins[i].fSteps = 2
				ins[i].fGas = uint16(gasCost(PUSH1) + gasCost(JUMP))
				ins[i].fTarget = t
				continue
			}
		}
		// Storage read of a duplicated slot: DUPn SLOAD.
		if ins[i].op.IsDup() && i+1 < len(ins) && ins[i+1].op == SLOAD {
			ins[i].fuse = fuseDupSload
			ins[i].fSteps = 2
			ins[i].fGas = uint16(gasCost(DUP1) + gasCost(SLOAD))
		}
	}
}

// runIR executes the frame over the compiled instruction stream. It is the
// IR twin of frame.run: every observable effect — trace events and their
// order, step counts, gas at each possible failure point, error values —
// matches the switch loop exactly.
func (f *frame) runIR(p *Program) ([]byte, error) {
	e := f.evm
	tr := e.Trace
	instrs := p.instrs
	maxSt := e.maxSteps()
	i := int(p.pcToIdx[f.pc])
	for {
		if i >= len(instrs) {
			return nil, nil // implicit STOP off the end of code
		}
		ins := &instrs[i]

		if ins.fuse != fuseNone {
			if ni, ok := f.runFused(p, i, ins); ok {
				i = ni
				continue
			}
			// A guard failed (step limit near, gas low, stack out of range):
			// fall through and execute the head instruction unfused; the
			// constituents after it run plain on subsequent iterations.
		}

		f.pc = uint64(ins.pc)
		e.steps++
		if e.steps > maxSt {
			return nil, ErrStepLimit
		}
		op := ins.op
		if tr != nil {
			tr.Steps++
			tr.markOp(op)
			if e.CollectPCs && f.depth == 1 {
				tr.PCs = append(tr.PCs, f.pc)
			}
		}

		switch ins.kind {
		case irPush:
			if err := f.useGas(gasCost(op)); err != nil {
				return nil, err
			}
			if err := f.push(ins.imm, meta{}); err != nil {
				return nil, err
			}
			i++

		case irDup:
			n := int(ins.n)
			if len(f.stack) < n {
				return nil, underflowErr(op, f.pc)
			}
			if err := f.useGas(gasCost(op)); err != nil {
				return nil, err
			}
			idx := len(f.stack) - n
			if err := f.push(f.stack[idx], f.metas[idx]); err != nil {
				return nil, err
			}
			i++

		case irSwap:
			n := int(ins.n)
			if len(f.stack) < n+1 {
				return nil, underflowErr(op, f.pc)
			}
			if err := f.useGas(gasCost(op)); err != nil {
				return nil, err
			}
			top := len(f.stack) - 1
			f.stack[top], f.stack[top-n] = f.stack[top-n], f.stack[top]
			f.metas[top], f.metas[top-n] = f.metas[top-n], f.metas[top]
			i++

		case irLog:
			n := int(ins.n)
			if len(f.stack) < n {
				return nil, underflowErr(op, f.pc)
			}
			if err := f.useGas(gasCost(op)); err != nil {
				return nil, err
			}
			f.stack = f.stack[:len(f.stack)-n]
			f.metas = f.metas[:len(f.metas)-n]
			i++

		case irJump:
			pop, _, _ := op.Arity()
			if len(f.stack) < pop {
				return nil, underflowErr(op, f.pc)
			}
			if err := f.useGas(gasCost(op)); err != nil {
				return nil, err
			}
			if _, _, err := f.execute(op); err != nil {
				return nil, err
			}
			// execute left f.pc at dst-1 (taken) or at the jump itself (not
			// taken); either way the successor sits at f.pc+1 on the grid.
			i = int(p.pcToIdx[f.pc+1])

		default: // irPlain
			pop, _, known := op.Arity()
			if !known {
				return nil, invalidOpErr(op, f.pc)
			}
			if len(f.stack) < pop {
				return nil, underflowErr(op, f.pc)
			}
			if err := f.useGas(gasCost(op)); err != nil {
				return nil, err
			}
			done, out, err := f.execute(op)
			if err != nil {
				return nil, err
			}
			if done {
				return out, nil
			}
			i++
		}
	}
}

// runFused executes the fused superinstruction headed at instruction i and
// returns the next instruction index. ok=false means a runtime guard failed
// and the caller must execute the head unfused. Guards are strict enough
// that the fused body cannot fail: once they pass, steps, gas, and stack
// effects of every constituent are batched with no intermediate error
// point, which is sound exactly because no constituent could have erred.
func (f *frame) runFused(p *Program, i int, ins *irInstr) (int, bool) {
	e := f.evm
	L := len(f.stack)
	if e.steps+int(ins.fSteps) > e.maxSteps() || f.gas < uint64(ins.fGas) {
		return 0, false
	}
	// Per-pattern stack guards: enough operands for every constituent's
	// arity check and headroom for every transient push.
	switch ins.fuse {
	case fuseDispatch:
		if L < 1 || L+2 > maxStack {
			return 0, false
		}
	case fuseCmpJumpi:
		if L < 2 {
			return 0, false
		}
	case fuseIsZeroJumpi, fusePushJumpi:
		if L < 1 || L+1 > maxStack {
			return 0, false
		}
	case fusePushJump:
		if L+1 > maxStack {
			return 0, false
		}
	case fuseDupSload:
		if L < int(ins.n) || L+1 > maxStack {
			return 0, false
		}
	}

	e.steps += int(ins.fSteps)
	f.gas -= uint64(ins.fGas)
	n := int(ins.fSteps)
	if tr := e.Trace; tr != nil {
		tr.Steps += n
		collect := e.CollectPCs && f.depth == 1
		for k := i; k < i+n; k++ {
			tr.markOp(p.instrs[k].op)
			if collect {
				tr.PCs = append(tr.PCs, uint64(p.instrs[k].pc))
			}
		}
	}

	switch ins.fuse {
	case fuseDispatch:
		// DUP1 PUSH4 EQ PUSHn JUMPI with the calldata word v on top of the
		// stack: net stack effect is nil (v stays), so the dup/push/pop
		// churn — five 32-byte copies — is skipped entirely.
		v := f.stack[L-1]
		mv := f.metas[L-1]
		sel := ins.fSel
		taken := sel.Eq(v)
		if mv.taint != 0 {
			f.pc = uint64(p.instrs[i+2].pc) // the EQ
			f.recordSink(SinkCompare, mv.taint)
			f.recordSink(SinkEq, mv.taint)
		}
		f.pc = uint64(p.instrs[i+4].pc) // the JUMPI
		f.recordBranch(taken, mv.taint, true, CmpInfo{Op: EQ, A: sel, B: v}, mv.callID)
		if taken {
			return int(ins.fTarget), true
		}
		return i + 5, true

	case fuseCmpJumpi:
		a, ma := f.stack[L-1], f.metas[L-1]
		b, mb := f.stack[L-2], f.metas[L-2]
		f.stack = f.stack[:L-2]
		f.metas = f.metas[:L-2]
		var truth bool
		switch ins.op {
		case LT:
			truth = a.Lt(b)
		case GT:
			truth = a.Gt(b)
		case SLT:
			truth = a.Scmp(b) < 0
		case SGT:
			truth = a.Scmp(b) > 0
		case EQ:
			truth = a.Eq(b)
		}
		combined := ma.taint | mb.taint
		if combined != 0 {
			f.pc = uint64(ins.pc)
			f.recordSink(SinkCompare, combined)
			if ins.op == EQ {
				f.recordSink(SinkEq, combined)
			}
		}
		callID := ma.callID
		if callID == 0 {
			callID = mb.callID
		}
		f.pc = uint64(p.instrs[i+2].pc)
		f.recordBranch(truth, combined, true, CmpInfo{Op: ins.op, A: a, B: b}, callID)
		if truth {
			return int(ins.fTarget), true
		}
		return i + 3, true

	case fuseIsZeroJumpi:
		a, ma := f.stack[L-1], f.metas[L-1]
		f.stack = f.stack[:L-1]
		f.metas = f.metas[:L-1]
		taken := a.IsZero()
		cmp := CmpInfo{Op: EQ, A: a, B: u256.Zero}
		if ma.cmp != nil {
			cmp = *ma.cmp
		}
		f.pc = uint64(p.instrs[i+2].pc)
		f.recordBranch(taken, ma.taint, true, cmp, ma.callID)
		if taken {
			return int(ins.fTarget), true
		}
		return i + 3, true

	case fusePushJump:
		return int(ins.fTarget), true

	case fusePushJumpi:
		cond, mc := f.stack[L-1], f.metas[L-1]
		f.stack = f.stack[:L-1]
		f.metas = f.metas[:L-1]
		taken := !cond.IsZero()
		var cmp CmpInfo
		hasCmp := mc.cmp != nil
		if hasCmp {
			cmp = *mc.cmp
		}
		f.pc = uint64(p.instrs[i+1].pc)
		f.recordBranch(taken, mc.taint, hasCmp, cmp, mc.callID)
		if taken {
			return int(ins.fTarget), true
		}
		return i + 2, true

	default: // fuseDupSload
		slot := f.stack[L-int(ins.n)]
		val := e.State.GetStorage(f.addr, slot)
		t := e.StorageTaint[f.storageKeyFor(slot)]
		f.stack = append(f.stack, val)
		f.metas = append(f.metas, meta{taint: t})
		return i + 2, true
	}
}
