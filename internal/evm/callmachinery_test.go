package evm

import (
	"testing"

	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// selfCallCode builds the recursive probe the call-machinery tests share: on
// entry with empty calldata it performs one CALL (parameterized by the
// builder), on entry with calldata it runs the "inner" branch. The entry
// call's status word is returned.
func dispatchCode(entry, inner func(a *Assembler)) []byte {
	a := NewAssembler()
	a.Op(CALLDATASIZE)
	a.JumpITo("inner")
	entry(a)
	a.PushUint(0).Op(MSTORE).PushUint(32).PushUint(0).Op(RETURN)
	a.Label("inner")
	inner(a)
	a.Op(STOP)
	return a.MustBuild()
}

// TestCallDepthLimit1024 pins the mainnet depth semantics at the full 1024
// ceiling: a contract that recurses into itself with all remaining gas must
// place exactly MaxDepth CALLs — one per live depth — with only the last
// rejected by ErrDepth, and the rejection must not abort the outer frames.
func TestCallDepthLimit1024(t *testing.T) {
	a := NewAssembler()
	a.PushUint(0).PushUint(0).PushUint(0).PushUint(0)
	a.PushUint(0) // value 0
	a.Op(ADDRESS) // to = self
	a.Op(GAS)     // forward everything
	a.Op(CALL).Op(POP).Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())
	e.MaxDepth = 1024
	e.MaxSteps = 1 << 20
	if _, err := e.Transact(sender, contract, u256.Zero, nil, 30_000_000); err != nil {
		t.Fatalf("outer frame must absorb the inner depth error: %v", err)
	}
	if got := len(e.Trace.Calls); got != 1024 {
		t.Fatalf("%d CALLs placed, want one per depth = 1024", got)
	}
	// Events append as calls complete — deepest first — so the one failure
	// must be the CALL placed by the frame at the 1024 ceiling.
	var failedDepths []int
	for _, c := range e.Trace.Calls {
		if !c.Success {
			failedDepths = append(failedDepths, c.Depth)
		}
	}
	if len(failedDepths) != 1 || failedDepths[0] != 1024 {
		t.Fatalf("failed CALL depths = %v, want exactly [1024]", failedDepths)
	}
}

// TestReentrantCallValueTransfer pins the value/stipend semantics of a
// reentrant CALL — the distinction the witnessed reentrancy oracle and the
// attacker template's arm gate are built on. A full-gas value call marks the
// reentry as value-enabled; a stipend-only transfer (gas request 0, so the
// callee gets exactly the 2300 stipend) re-enters without arming it. In both
// shapes the self-transfer must conserve the contract's balance.
func TestReentrantCallValueTransfer(t *testing.T) {
	cases := []struct {
		name         string
		gasArg       func(a *Assembler)
		wantGas      uint64 // 0 = only assert > callStipend
		valueEnabled bool
	}{
		{"full_gas_value_call", func(a *Assembler) { a.Op(GAS) }, 0, true},
		{"stipend_only_transfer", func(a *Assembler) { a.PushUint(0) }, callStipend, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code := dispatchCode(func(a *Assembler) {
				a.PushUint(0).PushUint(0)
				a.PushUint(1).PushUint(0) // in=[0,1): non-empty calldata for the callee
				a.PushUint(7)             // value
				a.Op(ADDRESS)             // to = self (reentry)
				tc.gasArg(a)
				a.Op(CALL)
			}, func(a *Assembler) {}) // inner branch: plain STOP
			e, sender, contract := testEnv(t, code)
			out, err := e.Transact(sender, contract, u256.New(100), nil, 10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			wantWord(t, out, u256.One) // the reentrant call itself succeeds
			if got := e.State.Balance(contract); !got.Eq(u256.New(100)) {
				t.Fatalf("self-transfer broke balance conservation: %s", got)
			}
			if len(e.Trace.Reentries) != 1 {
				t.Fatalf("%d reentry events, want 1", len(e.Trace.Reentries))
			}
			re := e.Trace.Reentries[0]
			if re.Addr != contract || re.EnabledByValueCall != tc.valueEnabled {
				t.Fatalf("reentry = %+v, want addr=%v enabledByValue=%v", re, contract, tc.valueEnabled)
			}
			call := e.Trace.Calls[0]
			if !call.Value.Eq(u256.New(7)) {
				t.Fatalf("CallEvent.Value = %s, want 7", call.Value)
			}
			if tc.wantGas != 0 && call.Gas != tc.wantGas {
				t.Fatalf("CallEvent.Gas = %d, want exactly the %d stipend", call.Gas, tc.wantGas)
			}
			if tc.wantGas == 0 && call.Gas <= callStipend {
				t.Fatalf("CallEvent.Gas = %d, want > stipend for a full-gas call", call.Gas)
			}
		})
	}
}

// TestStaticCallWriteRejection drives every state-mutating operation through
// a STATICCALL frame — the shape a read-only view call into a synthesized
// attacker callback takes — and checks EIP-214 semantics: the write fails
// with ErrWriteProtection inside the static frame, the STATICCALL reports
// status 0 to its caller, and no state effect survives.
func TestStaticCallWriteRejection(t *testing.T) {
	cases := []struct {
		name  string
		write func(a *Assembler)
		check func(t *testing.T, e *EVM, contract state.Address)
	}{
		{
			"sstore",
			func(a *Assembler) { a.PushUint(1).PushUint(0).Op(SSTORE) },
			func(t *testing.T, e *EVM, contract state.Address) {
				if got := e.State.GetStorage(contract, u256.Zero); !got.IsZero() {
					t.Fatalf("SSTORE landed under STATICCALL: slot0=%s", got)
				}
			},
		},
		{
			"selfdestruct",
			func(a *Assembler) { a.Op(CALLER).Op(SELFDESTRUCT) },
			func(t *testing.T, e *EVM, contract state.Address) {
				if e.State.Destroyed(contract) {
					t.Fatal("SELFDESTRUCT landed under STATICCALL")
				}
			},
		},
		{
			"value_call",
			func(a *Assembler) {
				a.PushUint(0).PushUint(0).PushUint(0).PushUint(0)
				a.PushUint(1) // value 1: forbidden in a static context
				a.Op(CALLER)
				a.PushUint(0)
				a.Op(CALL).Op(POP)
			},
			func(t *testing.T, e *EVM, contract state.Address) {
				if got := e.State.Balance(contract); !got.Eq(u256.New(50)) {
					t.Fatalf("value left the contract under STATICCALL: balance=%s", got)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code := dispatchCode(func(a *Assembler) {
				a.PushUint(0).PushUint(0)
				a.PushUint(1).PushUint(0) // in=[0,1): route the callee to the write branch
				a.Op(ADDRESS)             // to = self
				a.Op(GAS)
				a.Op(STATICCALL)
			}, tc.write)
			e, sender, contract := testEnv(t, code)
			out, err := e.Transact(sender, contract, u256.New(50), nil, 10_000_000)
			if err != nil {
				t.Fatalf("outer frame must absorb the static violation: %v", err)
			}
			wantWord(t, out, u256.Zero) // the static callee failed
			last := e.Trace.Calls[len(e.Trace.Calls)-1]
			if last.Op != STATICCALL || last.Success {
				t.Fatalf("STATICCALL event = %+v, want unsuccessful STATICCALL", last)
			}
			tc.check(t, e, contract)
		})
	}
}

// TestCallGasForwardingTruncation pins the gas-forwarding rule the trace
// exposes through CallEvent.Gas: the requested gas is truncated to what the
// frame actually holds, and the 2300 stipend rides on top only for
// value-bearing calls.
func TestCallGasForwardingTruncation(t *testing.T) {
	eoa := state.AddressFromUint(0xbeef)
	const txGas = 100_000
	cases := []struct {
		name    string
		gas     u256.Int
		value   uint64
		wantGas func(t *testing.T, gas uint64)
	}{
		{"huge_request_truncates", u256.Max, 0, func(t *testing.T, gas uint64) {
			if gas == 0 || gas > txGas {
				t.Fatalf("forwarded %d, want truncation into (0, %d]", gas, txGas)
			}
		}},
		{"zero_request_zero_value", u256.Zero, 0, func(t *testing.T, gas uint64) {
			if gas != 0 {
				t.Fatalf("forwarded %d, want 0", gas)
			}
		}},
		{"zero_request_with_value_gets_stipend", u256.Zero, 3, func(t *testing.T, gas uint64) {
			if gas != callStipend {
				t.Fatalf("forwarded %d, want exactly the %d stipend", gas, callStipend)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAssembler()
			a.PushUint(0).PushUint(0).PushUint(0).PushUint(0)
			a.PushUint(tc.value)
			a.Push(u256.FromBytes(eoa[:]))
			a.Push(tc.gas)
			a.Op(CALL).Op(POP).Op(STOP)
			e, sender, contract := testEnv(t, a.MustBuild())
			if _, err := e.Transact(sender, contract, u256.New(10), nil, txGas); err != nil {
				t.Fatal(err)
			}
			if len(e.Trace.Calls) != 1 {
				t.Fatalf("%d call events, want 1", len(e.Trace.Calls))
			}
			call := e.Trace.Calls[0]
			if !call.Success {
				t.Fatalf("EOA call failed: %+v", call)
			}
			tc.wantGas(t, call.Gas)
			if tc.value != 0 {
				if got := e.State.Balance(eoa); !got.Eq(u256.New(tc.value)) {
					t.Fatalf("EOA balance = %s, want %d", got, tc.value)
				}
			}
		})
	}
}

// FuzzWorldNoCrash executes arbitrary bytecode in a three-contract world —
// two fuzzed contracts that can address each other plus a reentering
// attacker-style callback contract — and requires the interpreter to survive
// any resulting call graph: cross-contract calls, mutual recursion,
// reentrancy through the callback, delegatecalls into foreign code. Errors
// are expected; only panics fail the target.
func FuzzWorldNoCrash(f *testing.F) {
	primary := state.AddressFromUint(0xc0de)
	member := state.AddressFromUint(0xc101)
	attacker := state.AddressFromUint(0xa77c)

	// callTo(code) = PUSH20 addr prefix the seeds use to aim CALLs.
	callSeed := func(to state.Address) []byte {
		a := NewAssembler()
		a.PushUint(0).PushUint(0).PushUint(0).PushUint(0).PushUint(0)
		a.Push(u256.FromBytes(to[:]))
		a.Op(GAS).Op(CALL).Op(POP).Op(STOP)
		return a.MustBuild()
	}
	f.Add(callSeed(member), callSeed(primary), []byte{1, 2, 3, 4}, uint64(0))
	f.Add(callSeed(attacker), callSeed(attacker), []byte{}, uint64(7))
	// delegatecall into the member's code
	dg := NewAssembler()
	dg.PushUint(0).PushUint(0).PushUint(0).PushUint(0)
	dg.Push(u256.FromBytes(member[:]))
	dg.Op(GAS).Op(DELEGATECALL).Op(POP).Op(STOP)
	f.Add(dg.MustBuild(), []byte{0x60, 0x01, 0x60, 0x00, 0x55, 0x00}, []byte{0xff}, uint64(1))

	// The attacker-style contract is fixed: on first entry (slot 0 unset) it
	// marks itself live and re-enters its caller with 4 bytes of calldata —
	// the minimal callback shape the world synthesizer emits.
	cb := NewAssembler()
	cb.PushUint(0).Op(SLOAD)
	cb.JumpITo("done")
	cb.PushUint(1).PushUint(0).Op(SSTORE)
	cb.PushUint(0).PushUint(0)
	cb.PushUint(4).PushUint(0)
	cb.PushUint(0)
	cb.Op(CALLER).Op(GAS)
	cb.Op(CALL).Op(POP)
	cb.Label("done")
	cb.Op(STOP)
	callbackCode := cb.MustBuild()

	f.Fuzz(func(t *testing.T, codeA, codeB, input []byte, seed uint64) {
		if len(codeA) > 2048 || len(codeB) > 2048 || len(input) > 1024 {
			return // size adds no new call-graph behavior
		}
		sender := state.AddressFromUint(0x0a11)
		deployer := state.AddressFromUint(0xd431)
		st := state.New()
		st.SetBalance(sender, u256.One.Lsh(120))
		st.CreateContract(primary, codeA, deployer)
		st.CreateContract(member, codeB, deployer)
		st.CreateContract(attacker, callbackCode, deployer)
		st.Commit()

		e := New(st, BlockCtx{Timestamp: 1_700_000_000, Number: 1_000_000, GasLimit: 30_000_000})
		e.Trace = NewTrace()
		// Two transactions so state mutated by the first shapes the second —
		// the minimal world schedule.
		first, second := primary, member
		if seed%2 == 1 {
			first, second = member, primary
		}
		_, _ = e.Transact(sender, first, u256.New(seed%1_000), input, 300_000)
		e.ResetTaint()
		_, _ = e.Transact(sender, second, u256.Zero, input, 300_000)
	})
}
