package evm

import (
	"errors"
	"testing"
	"testing/quick"

	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// TestSignedOpcodes pins the signed-arithmetic opcode family.
func TestSignedOpcodes(t *testing.T) {
	minusTen := u256.New(10).Neg()
	cases := []struct {
		name string
		prog func(a *Assembler)
		want u256.Int
	}{
		{"sdiv", func(a *Assembler) { a.PushUint(2).Push(minusTen).Op(SDIV) }, u256.New(5).Neg()},
		{"smod", func(a *Assembler) { a.PushUint(3).Push(minusTen).Op(SMOD) }, u256.One.Neg()},
		{"slt_true", func(a *Assembler) { a.PushUint(1).Push(minusTen).Op(SLT) }, u256.One},
		{"sgt_false", func(a *Assembler) { a.PushUint(1).Push(minusTen).Op(SGT) }, u256.Zero},
		{"signextend", func(a *Assembler) { a.PushUint(0xff).PushUint(0).Op(SIGNEXTEND) }, u256.Max},
		{"sar", func(a *Assembler) { a.Push(u256.New(8).Neg()).PushUint(2).Op(SAR) }, u256.New(2).Neg()},
		{"byte", func(a *Assembler) { a.PushUint(0xab).PushUint(31).Op(BYTE) }, u256.New(0xab)},
		{"not", func(a *Assembler) { a.PushUint(0).Op(NOT) }, u256.Max},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, sender, contract := testEnv(t, returnTop(tc.prog))
			out, err := run(t, e, sender, contract, u256.Zero, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantWord(t, out, tc.want)
		})
	}
}

func TestMemoryLimitEnforced(t *testing.T) {
	// MSTORE far beyond the 1 MiB cap must fail cleanly, not OOM.
	a := NewAssembler()
	a.PushUint(1).Push(u256.New(1 << 30)).Op(MSTORE).Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())
	if _, err := run(t, e, sender, contract, u256.Zero, nil); !errors.Is(err, ErrMemLimit) {
		t.Fatalf("err = %v, want ErrMemLimit", err)
	}
	// Absurd offsets (non-uint64) also fail.
	b := NewAssembler()
	b.PushUint(1).Push(u256.Max).Op(MSTORE).Op(STOP)
	e, sender, contract = testEnv(t, b.MustBuild())
	if _, err := run(t, e, sender, contract, u256.Zero, nil); !errors.Is(err, ErrMemLimit) {
		t.Fatalf("err = %v, want ErrMemLimit", err)
	}
}

func TestCallDepthLimit(t *testing.T) {
	// A contract that calls itself with all gas recurses until the depth cap.
	a := NewAssembler()
	a.PushUint(0).PushUint(0).PushUint(0).PushUint(0)
	a.PushUint(0) // value 0
	a.Op(ADDRESS) // to = self
	a.Op(GAS)     // all gas
	a.Op(CALL).Op(POP).Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())
	e.MaxDepth = 8
	if _, err := run(t, e, sender, contract, u256.Zero, nil); err != nil {
		t.Fatalf("outer call should survive inner depth errors: %v", err)
	}
	// innermost call failed with depth error: at least one unsuccessful call
	failed := false
	for _, c := range e.Trace.Calls {
		if !c.Success {
			failed = true
		}
	}
	if !failed {
		t.Error("expected an inner call to fail at the depth limit")
	}
}

func TestMSTORE8AndMLOAD(t *testing.T) {
	e, sender, contract := testEnv(t, returnTop(func(a *Assembler) {
		a.PushUint(0x42).PushUint(5).Op(MSTORE8) // mem[5] = 0x42
		a.PushUint(0).Op(MLOAD)
	}))
	out, err := run(t, e, sender, contract, u256.Zero, nil)
	if err != nil {
		t.Fatal(err)
	}
	// byte 5 of the first word holds 0x42
	if out[5] != 0x42 {
		t.Errorf("mem byte = %#x, want 0x42", out[5])
	}
}

func TestCalldataCopyAndSize(t *testing.T) {
	// copy calldata[0:8] into memory and return the first word
	a := NewAssembler()
	a.PushUint(8).PushUint(0).PushUint(0).Op(CALLDATACOPY)
	a.Op(CALLDATASIZE).PushUint(32).Op(MSTORE)
	a.PushUint(64).PushUint(0).Op(RETURN)
	e, sender, contract := testEnv(t, a.MustBuild())
	input := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	out, err := run(t, e, sender, contract, u256.Zero, input)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if out[i] != input[i] {
			t.Errorf("copied byte %d = %d, want %d", i, out[i], input[i])
		}
	}
	size := u256.FromBytes(out[32:64])
	if !size.Eq(u256.New(10)) {
		t.Errorf("calldatasize = %s, want 10", size)
	}
}

func TestReturndataPlumbing(t *testing.T) {
	// callee returns 0xbeef; caller forwards it via RETURNDATACOPY
	callee := NewAssembler()
	callee.PushUint(0xbeef).PushUint(0).Op(MSTORE).PushUint(32).PushUint(0).Op(RETURN)
	calleeAddr := state.AddressFromUint(0xca11)

	caller := NewAssembler()
	caller.PushUint(0).PushUint(0).PushUint(0).PushUint(0)
	caller.PushUint(0)
	caller.Push(calleeAddr.Word())
	caller.PushUint(100_000)
	caller.Op(CALL).Op(POP)
	caller.Op(RETURNDATASIZE).PushUint(32).Op(MSTORE)
	caller.PushUint(32).PushUint(0).PushUint(0).Op(RETURNDATACOPY)
	caller.PushUint(64).PushUint(0).Op(RETURN)

	e, sender, contract := testEnv(t, caller.MustBuild())
	e.State.CreateContract(calleeAddr, callee.MustBuild(), sender)
	e.State.Commit()
	out, err := run(t, e, sender, contract, u256.Zero, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := u256.FromBytes(out[:32]); !got.Eq(u256.New(0xbeef)) {
		t.Errorf("returndata = %s, want 0xbeef", got)
	}
	if got := u256.FromBytes(out[32:]); !got.Eq(u256.New(32)) {
		t.Errorf("returndatasize = %s, want 32", got)
	}
}

func TestTaintSnapshotRestore(t *testing.T) {
	e := New(state.New(), BlockCtx{})
	key := StorageKey{addr: state.AddressFromUint(1), slot: u256.New(2)}
	e.StorageTaint[key] = TaintTimestamp
	snap := e.TaintSnapshot()
	e.StorageTaint[key] = TaintOrigin
	e.StorageTaint[StorageKey{addr: state.AddressFromUint(3)}] = TaintInput
	e.RestoreTaint(snap)
	if e.StorageTaint[key] != TaintTimestamp {
		t.Error("restore lost the original taint")
	}
	if len(e.StorageTaint) != 1 {
		t.Error("restore kept extra entries")
	}
	// snapshot is a copy: mutating it must not affect the EVM
	snap[key] = TaintBalance
	if e.StorageTaint[key] != TaintTimestamp {
		t.Error("snapshot aliases live map")
	}
}

func TestFlipDistanceProperties(t *testing.T) {
	// FlipDistance is positive for any comparison outcome and exactly
	// |a-b| (or 1) for EQ.
	f := func(a, b uint64) bool {
		cmp := CmpInfo{Op: EQ, A: u256.New(a), B: u256.New(b)}
		d := cmp.FlipDistance()
		if a == b {
			return d.Eq(u256.One)
		}
		return d.Eq(u256.New(a).AbsDiff(u256.New(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b uint64) bool {
		lt := CmpInfo{Op: LT, A: u256.New(a), B: u256.New(b)}
		d := lt.FlipDistance()
		if a < b {
			return d.Eq(u256.New(b - a))
		}
		return d.Eq(u256.New(a - b + 1))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestArityCoversAllExecutedOpcodes(t *testing.T) {
	// every opcode the interpreter claims to support reports an arity
	ops := []OpCode{
		STOP, ADD, MUL, SUB, DIV, SDIV, MOD, SMOD, ADDMOD, MULMOD, EXP,
		SIGNEXTEND, LT, GT, SLT, SGT, EQ, ISZERO, AND, OR, XOR, NOT, BYTE,
		SHL, SHR, SAR, KECCAK256, ADDRESS, BALANCE, ORIGIN, CALLER,
		CALLVALUE, CALLDATALOAD, CALLDATASIZE, CALLDATACOPY, CODESIZE,
		CODECOPY, GASPRICE, RETURNDATASIZE, RETURNDATACOPY, BLOCKHASH,
		COINBASE, TIMESTAMP, NUMBER, DIFFICULTY, GASLIMIT, SELFBALANCE, POP,
		MLOAD, MSTORE, MSTORE8, SLOAD, SSTORE, JUMP, JUMPI, PC, MSIZE, GAS,
		JUMPDEST, PUSH1, PUSH32, DUP1, DUP16, SWAP1, SWAP16, LOG0, LOG4,
		CALL, RETURN, DELEGATECALL, STATICCALL, REVERT, INVALID, SELFDESTRUCT,
	}
	for _, op := range ops {
		if _, _, ok := op.Arity(); !ok {
			t.Errorf("opcode %s has no arity", op)
		}
	}
	if _, _, ok := OpCode(0x21).Arity(); ok {
		t.Error("undefined opcode should have no arity")
	}
}

func TestOpcodeStringCoverage(t *testing.T) {
	for _, tc := range []struct {
		op   OpCode
		want string
	}{
		{PUSH1, "PUSH1"}, {PUSH32, "PUSH32"}, {DUP1, "DUP1"}, {DUP16, "DUP16"},
		{SWAP1, "SWAP1"}, {SWAP16, "SWAP16"}, {LOG0, "LOG0"}, {LOG4, "LOG4"},
		{KECCAK256, "KECCAK256"}, {OpCode(0x21), "op(0x21)"},
	} {
		if got := tc.op.String(); got != tc.want {
			t.Errorf("%v.String() = %q, want %q", byte(tc.op), got, tc.want)
		}
	}
}

// stubIndexer is a test BranchIndexer mapping every pc to 10*pc (+1 when
// taken).
type stubIndexer struct{}

func (stubIndexer) EdgeID(pc uint64, taken bool) (int32, bool) {
	id := int32(pc) * 10
	if taken {
		id++
	}
	return id, true
}

// TestBranchEventEdgeInterning pins the interning contract: with an indexer
// installed for the executing address, JUMPI events carry the compact edge
// ID; without one (or for a foreign address), IndexedEdge reports false.
func TestBranchEventEdgeInterning(t *testing.T) {
	// if (calldata word != 0) jump over a STOP to a JUMPDEST.
	a := NewAssembler()
	a.PushUint(0).Op(CALLDATALOAD)
	a.JumpITo("over")
	a.Op(STOP)
	a.Label("over")
	a.Op(STOP)
	code := a.MustBuild()

	e, sender, contract := testEnv(t, code)
	e.BranchIndex = stubIndexer{}
	e.BranchIndexAddr = contract
	arg := make([]byte, 32)
	arg[31] = 1
	if _, err := run(t, e, sender, contract, u256.Zero, arg); err != nil {
		t.Fatal(err)
	}
	if len(e.Trace.Branches) != 1 {
		t.Fatalf("branches = %d, want 1", len(e.Trace.Branches))
	}
	br := e.Trace.Branches[0]
	id, ok := br.IndexedEdge()
	if !ok {
		t.Fatal("event not interned despite installed indexer")
	}
	if want := int32(br.PC)*10 + 1; id != want {
		t.Errorf("edge id = %d, want %d (taken edge of pc %d)", id, want, br.PC)
	}

	// Foreign BranchIndexAddr: events must stay unindexed.
	e2, sender2, contract2 := testEnv(t, code)
	e2.BranchIndex = stubIndexer{}
	e2.BranchIndexAddr = state.AddressFromUint(0xdead)
	if _, err := run(t, e2, sender2, contract2, u256.Zero, arg); err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.Trace.Branches[0].IndexedEdge(); ok {
		t.Error("event interned for a foreign address")
	}
}
