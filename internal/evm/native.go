package evm

import (
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// ReentrantAttacker is a Go-implemented account that models the canonical
// reentrancy adversary: whenever it receives a call carrying more gas than
// the 2300 stipend, it calls straight back into the transaction's original
// target with the original calldata.
//
// The fuzzer uses the attacker as the transaction sender, so a contract that
// does `msg.sender.call.value(x)()` hands the attacker execution control,
// while `msg.sender.transfer(x)` (2300 gas) does not — reproducing exactly
// the distinction the RE oracle in paper §IV-D keys on.
type ReentrantAttacker struct {
	// Addr is the attacker's own account address (set when registering).
	Addr state.Address
	// MaxReentries bounds recursion (default 2).
	MaxReentries int
	active       int
	// Reentered counts successful callback attempts across a campaign.
	Reentered int
}

// Run implements Native.
func (a *ReentrantAttacker) Run(e *EVM, caller state.Address, value u256.Int, input []byte, gas uint64) ([]byte, error) {
	maxRe := a.MaxReentries
	if maxRe == 0 {
		maxRe = 2
	}
	// Below the stipend threshold the attacker cannot do anything useful:
	// it just accepts the funds like a plain EOA would.
	if gas <= callStipend || a.active >= maxRe {
		return nil, nil
	}
	a.active++
	defer func() { a.active-- }()
	a.Reentered++
	// Call back into the victim with the original top-level calldata, as the
	// attacker itself (msg.sender = attacker). The callback's own failure
	// must not fail the transfer to the attacker — a real attacker contract
	// would swallow the error.
	_ = caller
	_, _, _ = e.call(CALL, a.Addr, e.TopLevelTo, e.TopLevelTo, u256.Zero, e.TopLevelInput, gas/2, len(e.activeFrames)+1)
	return nil, nil
}

// PassiveReceiver is a native account that accepts any call and does nothing;
// it stands in for an ordinary externally-owned account that can receive
// funds.
type PassiveReceiver struct{}

// Run implements Native.
func (PassiveReceiver) Run(*EVM, state.Address, u256.Int, []byte, uint64) ([]byte, error) {
	return nil, nil
}

// RevertingReceiver is a native account that rejects every call, the way a
// contract without a payable fallback does. Sending value to it makes the
// CALL fail, which lets the fuzzer exercise unhandled-exception paths.
type RevertingReceiver struct{}

// Run implements Native.
func (RevertingReceiver) Run(*EVM, state.Address, u256.Int, []byte, uint64) ([]byte, error) {
	return nil, ErrRevert
}
