package evm

import (
	"testing"

	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// FuzzInterpreterNoCrash runs arbitrary bytecode through the interpreter:
// whatever the code does — invalid opcodes, stack underflow, jumps into
// immediates, unbounded loops, self-calls — execution must return (an error
// or a result), never panic. Gas and the step ceiling bound the run time.
func FuzzInterpreterNoCrash(f *testing.F) {
	// a plausible code seed: PUSH1 0 CALLDATALOAD PUSH1 8 JUMPI JUMPDEST STOP
	f.Add([]byte{0x60, 0x00, 0x35, 0x60, 0x08, 0x57, 0x5b, 0x00}, []byte{1}, uint64(0))
	// storage write + call + selfdestruct
	f.Add([]byte{0x60, 0x01, 0x60, 0x00, 0x55, 0x33, 0xff}, []byte{}, uint64(5))
	f.Add([]byte{}, []byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, code, input []byte, valueSeed uint64) {
		if len(code) > 4096 || len(input) > 4096 {
			return // keep individual executions fast; size adds no new behavior
		}
		deployer := state.AddressFromUint(0xd431)
		sender := state.AddressFromUint(0x0a11)
		contract := state.AddressFromUint(0xc0de)

		st := state.New()
		st.SetBalance(sender, u256.One.Lsh(120))
		st.CreateContract(contract, code, deployer)
		st.Commit()

		e := New(st, BlockCtx{Timestamp: 1_700_000_000, Number: 1_000_000, GasLimit: 30_000_000})
		e.Trace = NewTrace()
		_, err := e.Transact(sender, contract, u256.New(valueSeed%1_000_000), input, 200_000)
		_ = err // errors are expected; only panics fail the target
	})
}
