package evm

import (
	"errors"
	"fmt"

	"mufuzz/internal/keccak"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// Execution errors. ErrRevert distinguishes an orderly REVERT (state rolled
// back, no bug) from abnormal termination.
var (
	ErrOutOfGas       = errors.New("evm: out of gas")
	ErrStackUnderflow = errors.New("evm: stack underflow")
	ErrStackOverflow  = errors.New("evm: stack overflow")
	ErrInvalidJump    = errors.New("evm: invalid jump destination")
	ErrInvalidOpcode  = errors.New("evm: invalid opcode")
	ErrRevert         = errors.New("evm: execution reverted")
	ErrDepth          = errors.New("evm: max call depth exceeded")
	ErrStepLimit      = errors.New("evm: step limit exceeded")
	ErrMemLimit       = errors.New("evm: memory limit exceeded")
	ErrBalance        = errors.New("evm: insufficient balance for transfer")
	// ErrWriteProtection rejects state mutation (SSTORE, SELFDESTRUCT, value
	// transfer) inside a STATICCALL context, matching EIP-214: the offending
	// frame fails, its caller sees a zero status word.
	ErrWriteProtection = errors.New("evm: write protection (static call)")
)

const (
	maxStack     = 1024
	maxMemory    = 1 << 20 // 1 MiB per frame; fuzzed inputs must not OOM the host
	callStipend  = 2300    // gas stipend added to value-bearing calls (transfer/send)
	defaultDepth = 64
)

// BlockCtx is the block-level environment visible to contracts.
type BlockCtx struct {
	Timestamp  uint64
	Number     uint64
	Difficulty uint64
	GasLimit   uint64
	Coinbase   state.Address
}

// Native is a Go-implemented account. The fuzzer installs a reentrant
// attacker as a native so `msg.sender.call.value(x)()` can call back into the
// victim, reproducing the reentrancy precondition without a second compiled
// contract.
type Native interface {
	Run(evm *EVM, caller state.Address, value u256.Int, input []byte, gas uint64) ([]byte, error)
}

// StorageKey addresses one storage slot for cross-transaction taint.
type StorageKey struct {
	addr state.Address
	slot u256.Int
}

// frameID identifies an active call frame for reentry detection.
type frameID struct {
	addr     state.Address
	selector [4]byte
}

// EVM executes transactions against a world state. One EVM value handles one
// transaction at a time; reuse across a sequence keeps StorageTaint alive so
// taints flow through persistent storage.
type EVM struct {
	State  *state.State
	Block  BlockCtx
	Origin state.Address
	// Trace receives execution events; nil disables tracing.
	Trace *Trace
	// StorageTaint persists taint across the transactions of one sequence.
	// Callers reset it when starting a fresh sequence.
	StorageTaint map[StorageKey]Taint
	// MaxDepth bounds call nesting (default 64).
	MaxDepth int
	// MaxSteps bounds total instructions per transaction (default 200000).
	MaxSteps int
	// CollectPCs enables recording the top-level program-counter path in the
	// trace (used by the pre-fuzz path-prefix analysis, paper §IV-C).
	CollectPCs bool
	// BranchIndex, together with BranchIndexAddr, interns branch-edge
	// identities: JUMPI events emitted while executing BranchIndexAddr carry
	// the indexer's compact edge ID in their EdgeRef (coverage interning for
	// the contract under test). Nil disables interning.
	BranchIndex     BranchIndexer
	BranchIndexAddr state.Address

	// TopLevelTo / TopLevelInput describe the outermost transaction; natives
	// (the reentrant attacker) use them to call back into the victim.
	TopLevelTo    state.Address
	TopLevelInput []byte

	// DisableIR forces the reference switch-loop interpreter instead of the
	// compiled-IR hot path (conformance ablation: Options.NoIR threads here).
	DisableIR bool

	natives      map[state.Address]Native
	steps        int
	callCounter  int
	activeFrames []frameID
	// callIndex maps call ID -> index in Trace.Calls. IDs are assigned
	// densely from 1 per transaction, so a reslice-and-append slice replaces
	// the map the pre-IR engine cleared and re-populated per transaction.
	callIndex []int32
	// valueCallActive counts in-flight external calls that carried value and
	// more than the gas stipend — the enabler condition for reentrancy.
	valueCallActive int
	// staticDepth counts in-flight STATICCALL frames. While positive, every
	// nested frame — including plain CALLs issued from inside the static
	// context, the EIP-214 propagation rule — is write-protected: SSTORE,
	// SELFDESTRUCT, and value-bearing CALLs fail with ErrWriteProtection.
	staticDepth int
	// progCode/prog memoize the compiled Program of the last executed code
	// blob by slice identity (the same policy as the retired jumpdest memo);
	// executors reuse one EVM across a whole campaign, so compilation happens
	// once per contract. The jumpdest grid now lives on the Program. progs is
	// the bounded secondary cache behind the slot (multi-contract worlds).
	progCode []byte
	prog     *Program
	progs    map[*byte]*Program
	// cmpArena is the per-transaction CmpInfo allocation arena: comparison
	// provenance records are written once and never outlive the transaction
	// (BranchEvents copy them by value), so they are carved out of a reused
	// chunk instead of heap-allocated per comparison.
	cmpArena []CmpInfo
	// frames pools one reusable frame per call depth. Live frame depths are
	// always the dense set {1..k} (opCall uses parent depth+1 and the
	// attacker native uses len(activeFrames)+1), so at most one live frame
	// ever exists per depth; the busy flag guards the invariant defensively.
	frames []*frame
	// keccak32/keccak64 memoize KECCAK256 results for the two input shapes
	// Solidity storage layout hashes constantly (dynamic-array slots and
	// mapping keys). Fuzzing re-executes near-identical transactions, so the
	// same few keys dominate; hashing is pure, so the memo survives Reset.
	keccak32 map[[32]byte]u256.Int
	keccak64 map[[64]byte]u256.Int
}

// keccakMemoCap bounds each keccak memo map; once full, further distinct
// inputs are hashed directly (no eviction — stale entries are never wrong).
const keccakMemoCap = 8192

// keccakOf returns the KECCAK256 of data, memoizing 32- and 64-byte inputs.
func (e *EVM) keccakOf(data []byte) u256.Int {
	switch len(data) {
	case 32:
		var k [32]byte
		copy(k[:], data)
		if v, ok := e.keccak32[k]; ok {
			return v
		}
		sum := keccak.Sum256(data)
		v := u256.FromBytes(sum[:])
		if e.keccak32 == nil {
			e.keccak32 = make(map[[32]byte]u256.Int, 64)
		}
		if len(e.keccak32) < keccakMemoCap {
			e.keccak32[k] = v
		}
		return v
	case 64:
		var k [64]byte
		copy(k[:], data)
		if v, ok := e.keccak64[k]; ok {
			return v
		}
		sum := keccak.Sum256(data)
		v := u256.FromBytes(sum[:])
		if e.keccak64 == nil {
			e.keccak64 = make(map[[64]byte]u256.Int, 64)
		}
		if len(e.keccak64) < keccakMemoCap {
			e.keccak64[k] = v
		}
		return v
	}
	sum := keccak.Sum256(data)
	return u256.FromBytes(sum[:])
}

// New constructs an EVM over the given state.
func New(st *state.State, block BlockCtx) *EVM {
	return &EVM{
		State:        st,
		Block:        block,
		StorageTaint: make(map[StorageKey]Taint),
		MaxDepth:     defaultDepth,
		MaxSteps:     200000,
		natives:      make(map[state.Address]Native),
	}
}

// RegisterNative installs a Go-implemented account at addr.
func (e *EVM) RegisterNative(addr state.Address, n Native) {
	e.natives[addr] = n
}

// ResetTaint clears cross-transaction storage taint (new sequence).
func (e *EVM) ResetTaint() {
	if e.StorageTaint == nil {
		e.StorageTaint = make(map[StorageKey]Taint)
		return
	}
	clear(e.StorageTaint)
}

// Reset rebinds the EVM to a new world state for a fresh transaction
// sequence, clearing cross-sequence bookkeeping (storage taint) while
// keeping the allocation-heavy internals — registered natives, the compiled
// program cache, the frame pool — warm. Executors reuse one EVM across every
// execution of a campaign instead of constructing one per sequence.
func (e *EVM) Reset(st *state.State) {
	e.State = st
	e.ResetTaint()
}

// TaintSnapshot returns a copy of the cross-transaction storage taint, so a
// caller can checkpoint mid-sequence state (prefix caching).
func (e *EVM) TaintSnapshot() map[StorageKey]Taint {
	out := make(map[StorageKey]Taint, len(e.StorageTaint))
	for k, v := range e.StorageTaint {
		out[k] = v
	}
	return out
}

// RestoreTaint replaces the storage taint with a copy of m, reusing the
// existing map's storage when possible.
func (e *EVM) RestoreTaint(m map[StorageKey]Taint) {
	if e.StorageTaint == nil {
		e.StorageTaint = make(map[StorageKey]Taint, len(m))
	} else {
		clear(e.StorageTaint)
	}
	for k, v := range m {
		e.StorageTaint[k] = v
	}
}

// Transact runs a top-level transaction: transfers value from sender to
// contract, executes the contract code, and rolls back all state effects if
// execution fails (including revert). The trace survives rollback so oracles
// still see what happened. Returns output data and the execution error.
func (e *EVM) Transact(sender, to state.Address, value u256.Int, input []byte, gas uint64) ([]byte, error) {
	e.steps = 0
	e.callCounter = 0
	e.activeFrames = e.activeFrames[:0]
	e.valueCallActive = 0
	e.staticDepth = 0
	e.callIndex = e.callIndex[:0]
	// CmpInfo pointers never outlive the transaction (BranchEvents copy the
	// record by value; stack metas die with their frames), so the arena is
	// reclaimed wholesale here.
	e.cmpArena = e.cmpArena[:0]
	e.Origin = sender
	e.TopLevelTo = to
	e.TopLevelInput = input

	snap := e.State.Snapshot()
	ret, _, err := e.call(CALL, sender, to, to, value, input, gas, 1)
	if err != nil {
		e.State.RevertTo(snap)
		if e.Trace != nil {
			e.Trace.Reverted = true
		}
	} else {
		e.State.Commit()
	}
	return ret, err
}

// call implements the shared CALL/DELEGATECALL/STATICCALL machinery.
// selfAddr is the storage context; codeAddr supplies the code.
func (e *EVM) call(op OpCode, caller, selfAddr, codeAddr state.Address, value u256.Int, input []byte, gas uint64, depth int) ([]byte, uint64, error) {
	if depth > e.maxDepth() {
		return nil, gas, ErrDepth
	}
	snap := e.State.Snapshot()
	if op == CALL && !value.IsZero() {
		if !e.State.Transfer(caller, selfAddr, value) {
			e.State.RevertTo(snap)
			return nil, gas, ErrBalance
		}
	}

	// Reentry detection: entering a contract already active on the stack.
	var sel [4]byte
	if len(input) >= 4 {
		copy(sel[:], input[:4])
	}
	for _, f := range e.activeFrames {
		if f.addr == selfAddr {
			if e.Trace != nil {
				e.Trace.Reentries = append(e.Trace.Reentries, ReentryEvent{
					Addr:               selfAddr,
					Selector:           sel,
					EnabledByValueCall: e.valueCallActive > 0,
				})
			}
			break
		}
	}

	if n, ok := e.natives[selfAddr]; ok {
		ret, err := n.Run(e, caller, value, input, gas)
		if err != nil {
			e.State.RevertTo(snap)
		}
		return ret, gas, err
	}

	code := e.State.Code(codeAddr)
	if len(code) == 0 {
		// Plain value transfer to an EOA.
		return nil, gas, nil
	}

	e.activeFrames = append(e.activeFrames, frameID{addr: selfAddr, selector: sel})
	p := e.program(code)
	f := e.frameFor(selfAddr, caller, value, input, code, gas, depth, p.dests)
	var ret []byte
	var err error
	if e.DisableIR {
		ret, err = f.run()
	} else {
		ret, err = f.runIR(p)
	}
	f.busy = false
	e.activeFrames = e.activeFrames[:len(e.activeFrames)-1]
	if err != nil {
		e.State.RevertTo(snap)
	}
	return ret, f.gas, err
}

// program returns the compiled Program for code, cached by slice identity. A
// fuzzing campaign executes one contract's code millions of times across
// thousands of frames; the cache makes per-frame compilation a pointer
// comparison. The single slot holds the most recent blob (the contract under
// test); a small identity-keyed map behind it keeps multi-contract worlds —
// where member codes alternate within one transaction — from recompiling on
// every context switch. Synthesized attacker code churns through distinct
// blobs as specs mutate, so the map is bounded and reset when full.
func (e *EVM) program(code []byte) *Program {
	if len(code) == len(e.progCode) && (len(code) == 0 || &code[0] == &e.progCode[0]) {
		return e.prog
	}
	key := &code[0]
	if p, ok := e.progs[key]; ok && len(p.code) == len(code) {
		e.progCode, e.prog = code, p
		return p
	}
	p := CompileProgram(code)
	e.progCode, e.prog = code, p
	if e.progs == nil {
		e.progs = make(map[*byte]*Program, 8)
	} else if len(e.progs) >= programCacheCap {
		clear(e.progs)
	}
	e.progs[key] = p
	return p
}

// programCacheCap bounds the secondary program cache map.
const programCacheCap = 64

// UseProgram seeds the program cache with a pre-compiled Program, so campaign
// workers sharing one read-only Program skip even the first compile. The
// Program's code slice becomes the cache identity key.
func (e *EVM) UseProgram(p *Program) {
	if p == nil {
		return
	}
	e.progCode, e.prog = p.code, p
}

// frameFor returns a reset frame for the given call depth, reusing the pooled
// frame (and its stack/meta/memory capacity) from earlier calls at the same
// depth. If the pooled frame is somehow still live — the per-depth uniqueness
// invariant violated — a fresh frame is allocated instead of corrupting it.
func (e *EVM) frameFor(addr, caller state.Address, value u256.Int, input, code []byte, gas uint64, depth int, dests []bool) *frame {
	for len(e.frames) < depth {
		e.frames = append(e.frames, &frame{
			stack: make([]u256.Int, 0, 32),
			metas: make([]meta, 0, 32),
		})
	}
	f := e.frames[depth-1]
	if f.busy {
		f = &frame{
			stack: make([]u256.Int, 0, 32),
			metas: make([]meta, 0, 32),
		}
	}
	f.evm = e
	f.addr = addr
	f.caller = caller
	f.value = value
	f.input = input
	f.code = code
	f.gas = gas
	f.pc = 0
	f.stack = f.stack[:0]
	f.metas = f.metas[:0]
	f.mem = f.mem[:0]
	if f.memTainted {
		clear(f.memTaint)
		f.memTainted = false
	}
	f.retData = nil
	f.depth = depth
	f.dests = dests
	f.busy = true
	return f
}

func (e *EVM) maxDepth() int {
	if e.MaxDepth > 0 {
		return e.MaxDepth
	}
	return defaultDepth
}

func (e *EVM) maxSteps() int {
	if e.MaxSteps > 0 {
		return e.MaxSteps
	}
	return 200000
}

// meta is the shadow record tracked for every stack slot.
type meta struct {
	taint  Taint
	cmp    *CmpInfo
	callID int
}

func (m meta) merge(o meta) meta {
	out := meta{taint: m.taint | o.taint}
	if m.callID != 0 {
		out.callID = m.callID
	} else {
		out.callID = o.callID
	}
	return out
}

// frame is one call frame.
type frame struct {
	evm    *EVM
	addr   state.Address // storage context (self)
	caller state.Address
	value  u256.Int
	input  []byte
	code   []byte
	gas    uint64
	pc     uint64
	stack  []u256.Int
	metas  []meta
	mem    []byte
	// memTaint is allocated lazily on the first tainted memory write; most
	// frames only move untainted words and never pay for the map. memTainted
	// mirrors "the map would exist" under pooling: the pooled map is kept
	// allocated across executions but its live/empty state must match what a
	// fresh frame's nil/non-nil map would be.
	memTaint   map[uint64]Taint
	memTainted bool
	retData    []byte
	depth      int
	dests      []bool
	// busy guards pooled reuse: set while the frame is executing.
	busy bool
}

// validDest reports whether dst is a JUMPDEST on the decoding grid.
func (f *frame) validDest(dst u256.Int) bool {
	return dst.FitsUint64() && dst.Uint64() < uint64(len(f.dests)) && f.dests[dst.Uint64()]
}

// setMemTaintWord overwrites the taint of one 32-byte-aligned memory word,
// allocating the taint map only when there is taint to record.
func (f *frame) setMemTaintWord(o uint64, t Taint) {
	if !f.memTainted {
		if t == 0 {
			return
		}
		if f.memTaint == nil {
			f.memTaint = make(map[uint64]Taint)
		}
		f.memTainted = true
	}
	f.memTaint[o] = t
}

// orMemTaintWord unions taint into one 32-byte-aligned memory word.
func (f *frame) orMemTaintWord(o uint64, t Taint) {
	if t == 0 {
		return
	}
	if !f.memTainted {
		if f.memTaint == nil {
			f.memTaint = make(map[uint64]Taint)
		}
		f.memTainted = true
	}
	f.memTaint[o] |= t
}

func (f *frame) push(v u256.Int, m meta) error {
	if len(f.stack) >= maxStack {
		return ErrStackOverflow
	}
	f.stack = append(f.stack, v)
	f.metas = append(f.metas, m)
	return nil
}

func (f *frame) pop() (u256.Int, meta, error) {
	if len(f.stack) == 0 {
		return u256.Zero, meta{}, ErrStackUnderflow
	}
	i := len(f.stack) - 1
	v, m := f.stack[i], f.metas[i]
	f.stack = f.stack[:i]
	f.metas = f.metas[:i]
	return v, m, nil
}

// ensureMem grows memory to cover [off, off+size). Capacity grows
// geometrically so repeated expansion amortizes to O(1) per byte, and pooled
// frames re-expand into their previous capacity without allocating; the newly
// exposed region is zeroed explicitly because pooled backing arrays are dirty
// from earlier executions.
func (f *frame) ensureMem(off, size uint64) error {
	if size == 0 {
		return nil
	}
	end := off + size
	if end < off || end > maxMemory {
		return ErrMemLimit
	}
	cur := uint64(len(f.mem))
	if cur >= end {
		return nil
	}
	if uint64(cap(f.mem)) >= end {
		f.mem = f.mem[:end]
		clear(f.mem[cur:end])
		return nil
	}
	newCap := uint64(cap(f.mem)) * 2
	if newCap < 256 {
		newCap = 256
	}
	for newCap < end {
		newCap *= 2
	}
	if newCap > maxMemory {
		newCap = maxMemory
	}
	grown := make([]byte, end, newCap)
	copy(grown, f.mem[:cur])
	f.mem = grown
	return nil
}

// memSlice returns memory [off, off+size) after expansion. A zero-size read
// touches no memory at any offset (EVM semantics: memory expansion is only
// charged and performed for size > 0), so it is served without bounds-checking
// off against the current allocation.
func (f *frame) memSlice(off, size uint64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	if err := f.ensureMem(off, size); err != nil {
		return nil, err
	}
	return f.mem[off : off+size], nil
}

// memTaintRange unions taint over [off, off+size) at word granularity.
func (f *frame) memTaintRange(off, size uint64) Taint {
	if !f.memTainted {
		return 0
	}
	var t Taint
	for o := off &^ 31; o < off+size; o += 32 {
		t |= f.memTaint[o]
	}
	return t
}

func (f *frame) useGas(amount uint64) error {
	if f.gas < amount {
		return ErrOutOfGas
	}
	f.gas -= amount
	return nil
}

// u64 converts a word to uint64 clamping to max on overflow. Memory bounds
// checks then reject absurd offsets.
func u64(v u256.Int) uint64 {
	if !v.FitsUint64() {
		return ^uint64(0)
	}
	return v.Uint64()
}

func (f *frame) storageKeyFor(slot u256.Int) StorageKey {
	return StorageKey{addr: f.addr, slot: slot}
}

// recordSink appends a taint sink event when taint is interesting.
func (f *frame) recordSink(kind SinkKind, t Taint) {
	if t == 0 || f.evm.Trace == nil {
		return
	}
	f.evm.Trace.Sinks = append(f.evm.Trace.Sinks, TaintSink{
		Addr: f.addr, PC: f.pc, Kind: kind, Taint: t,
	})
}

// newCmp carves a CmpInfo out of the per-transaction arena. Records die with
// the transaction (BranchEvents copy them by value, stack metas die with
// their frames), so Transact reclaims every chunk at once; a full chunk is
// simply replaced — outstanding pointers keep the old chunk alive.
func (e *EVM) newCmp(op OpCode, a, b u256.Int) *CmpInfo {
	if len(e.cmpArena) == cap(e.cmpArena) {
		e.cmpArena = make([]CmpInfo, 0, 512)
	}
	e.cmpArena = append(e.cmpArena, CmpInfo{Op: op, A: a, B: b})
	return &e.cmpArena[len(e.cmpArena)-1]
}

// setCallIndex records call ID -> index in Trace.Calls. IDs are dense from 1
// per transaction but recorded out of order (a nested call's event lands
// before its parent's), so the slice grows with a -1 unset fill.
func (e *EVM) setCallIndex(id, idx int) {
	for len(e.callIndex) < id {
		e.callIndex = append(e.callIndex, -1)
	}
	e.callIndex[id-1] = int32(idx)
}

// callIndexOf returns the Trace.Calls index for a call ID, or -1 if unset.
func (e *EVM) callIndexOf(id int) int {
	if id < 1 || id > len(e.callIndex) {
		return -1
	}
	return int(e.callIndex[id-1])
}

// underflowErr and invalidOpErr build the interpreter's canonical per-opcode
// failure errors; the switch loop and the IR loop share them so error text
// stays byte-identical across engines.
func underflowErr(op OpCode, pc uint64) error {
	return fmt.Errorf("%w: %s at pc %d", ErrStackUnderflow, op, pc)
}

func invalidOpErr(op OpCode, pc uint64) error {
	return fmt.Errorf("%w: %s at pc %d", ErrInvalidOpcode, op, pc)
}

// recordBranch emits the JUMPI trace event: the branch itself (with interned
// edge identity for the contract under test), the checked-call mark when the
// condition derives from an external call's status word, and the tainted
// condition sink. Shared verbatim by the switch loop and every fused IR
// variant so transcripts cannot diverge.
func (f *frame) recordBranch(taken bool, condTaint Taint, hasCmp bool, cmp CmpInfo, callID int) {
	e := f.evm
	if e.Trace != nil {
		ev := BranchEvent{
			Addr:      f.addr,
			PC:        f.pc,
			Taken:     taken,
			CondTaint: condTaint,
			Depth:     f.depth,
			HasCmp:    hasCmp,
		}
		if hasCmp {
			ev.Cmp = cmp
		}
		if e.BranchIndex != nil && f.addr == e.BranchIndexAddr {
			if id, ok := e.BranchIndex.EdgeID(f.pc, taken); ok {
				ev.EdgeRef = id + 1
			}
		}
		e.Trace.Branches = append(e.Trace.Branches, ev)
		if callID != 0 {
			if idx := e.callIndexOf(callID); idx >= 0 {
				e.Trace.Calls[idx].Checked = true
			}
		}
	}
	f.recordSink(SinkJumpCond, condTaint)
}

// run executes the frame until termination. Returns the output data.
func (f *frame) run() ([]byte, error) {
	e := f.evm
	tr := e.Trace
	for {
		if f.pc >= uint64(len(f.code)) {
			return nil, nil // implicit STOP off the end of code
		}
		e.steps++
		if e.steps > e.maxSteps() {
			return nil, ErrStepLimit
		}
		op := OpCode(f.code[f.pc])
		if tr != nil {
			tr.Steps++
			tr.markOp(op)
			if e.CollectPCs && f.depth == 1 {
				tr.PCs = append(tr.PCs, f.pc)
			}
		}
		pop, _, known := op.Arity()
		if !known {
			return nil, invalidOpErr(op, f.pc)
		}
		if len(f.stack) < pop {
			return nil, underflowErr(op, f.pc)
		}
		if err := f.useGas(gasCost(op)); err != nil {
			return nil, err
		}

		switch {
		case op.IsPush():
			n := op.PushBytes()
			end := int(f.pc) + 1 + n
			if end > len(f.code) {
				end = len(f.code)
			}
			v := u256.FromBytes(rightPad(f.code[f.pc+1:end], n))
			if err := f.push(v, meta{}); err != nil {
				return nil, err
			}
			f.pc += uint64(n) + 1
			continue

		case op.IsDup():
			n := int(op-DUP1) + 1
			idx := len(f.stack) - n
			if err := f.push(f.stack[idx], f.metas[idx]); err != nil {
				return nil, err
			}

		case op.IsSwap():
			n := int(op-SWAP1) + 1
			top := len(f.stack) - 1
			f.stack[top], f.stack[top-n] = f.stack[top-n], f.stack[top]
			f.metas[top], f.metas[top-n] = f.metas[top-n], f.metas[top]

		case op.IsLog():
			// Pop offset, size and the topics; logs are not used by oracles.
			n := int(op-LOG0) + 2
			for i := 0; i < n; i++ {
				if _, _, err := f.pop(); err != nil {
					return nil, err
				}
			}

		default:
			done, out, err := f.execute(op)
			if err != nil {
				return nil, err
			}
			if done {
				return out, nil
			}
		}
		f.pc++
	}
}

func rightPad(b []byte, n int) []byte {
	if len(b) >= n {
		return b[:n]
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// execute handles all non-family opcodes. It returns done=true with the
// output when the frame terminates normally.
func (f *frame) execute(op OpCode) (done bool, out []byte, err error) {
	e := f.evm
	switch op {
	case STOP:
		return true, nil, nil

	case ADD, MUL, SUB:
		a, ma, _ := f.pop()
		b, mb, _ := f.pop()
		var z u256.Int
		var wrapped bool
		switch op {
		case ADD:
			z, wrapped = a.AddOverflow(b)
		case SUB:
			z, wrapped = a.SubUnderflow(b)
		case MUL:
			z, wrapped = a.MulOverflow(b)
		}
		m := ma.merge(mb)
		if wrapped {
			m.taint |= TaintOverflow
			if e.Trace != nil {
				e.Trace.Overflows = append(e.Trace.Overflows, OverflowEvent{
					Addr: f.addr, PC: f.pc, Op: op, A: a, B: b,
				})
			}
		}
		return false, nil, f.push(z, m)

	case DIV, SDIV, MOD, SMOD, EXP, SIGNEXTEND, AND, OR, XOR, BYTE, SHL, SHR, SAR:
		a, ma, _ := f.pop()
		b, mb, _ := f.pop()
		var z u256.Int
		switch op {
		case DIV:
			z = a.Div(b)
		case SDIV:
			z = a.SDiv(b)
		case MOD:
			z = a.Mod(b)
		case SMOD:
			z = a.SMod(b)
		case EXP:
			z = a.Exp(b)
		case SIGNEXTEND:
			z = b.SignExtend(a)
		case AND:
			z = a.And(b)
		case OR:
			z = a.Or(b)
		case XOR:
			z = a.Xor(b)
		case BYTE:
			z = b.Byte(a)
		case SHL:
			z = b.Lsh(uint(u64(a) & 0x1ff))
		case SHR:
			z = b.Rsh(uint(u64(a) & 0x1ff))
		case SAR:
			z = b.Sar(uint(u64(a) & 0x1ff))
		}
		m := ma.merge(mb)
		// Masking with AND keeps comparison provenance through solidity's
		// address/bool cleanup patterns.
		if op == AND && (ma.cmp != nil || mb.cmp != nil) {
			if ma.cmp != nil {
				m.cmp = ma.cmp
			} else {
				m.cmp = mb.cmp
			}
		}
		return false, nil, f.push(z, m)

	case ADDMOD, MULMOD:
		a, ma, _ := f.pop()
		b, mb, _ := f.pop()
		n, mn, _ := f.pop()
		var z u256.Int
		if op == ADDMOD {
			z = a.AddMod(b, n)
		} else {
			z = a.MulMod(b, n)
		}
		return false, nil, f.push(z, ma.merge(mb).merge(mn))

	case LT, GT, SLT, SGT, EQ:
		a, ma, _ := f.pop()
		b, mb, _ := f.pop()
		var truth bool
		switch op {
		case LT:
			truth = a.Lt(b)
		case GT:
			truth = a.Gt(b)
		case SLT:
			truth = a.Scmp(b) < 0
		case SGT:
			truth = a.Scmp(b) > 0
		case EQ:
			truth = a.Eq(b)
		}
		combined := ma.taint | mb.taint
		if combined != 0 {
			f.recordSink(SinkCompare, combined)
			if op == EQ {
				f.recordSink(SinkEq, combined)
			}
		}
		z := u256.Zero
		if truth {
			z = u256.One
		}
		m := meta{taint: combined, cmp: e.newCmp(op, a, b)}
		m.callID = ma.callID
		if m.callID == 0 {
			m.callID = mb.callID
		}
		return false, nil, f.push(z, m)

	case ISZERO:
		a, ma, _ := f.pop()
		z := u256.Zero
		if a.IsZero() {
			z = u256.One
		}
		// Keep comparison provenance: ISZERO is solidity's negation step
		// before JUMPI. If the operand had no provenance, it is itself the
		// quantity being tested against zero: record EQ(a, 0) so the branch
		// distance toward "a == 0" (or != 0) is |a|.
		m := ma
		if m.cmp == nil {
			m.cmp = e.newCmp(EQ, a, u256.Zero)
		}
		return false, nil, f.push(z, m)

	case NOT:
		a, ma, _ := f.pop()
		return false, nil, f.push(a.Not(), meta{taint: ma.taint, callID: ma.callID})

	case KECCAK256:
		offV, _, _ := f.pop()
		sizeV, _, _ := f.pop()
		off, size := u64(offV), u64(sizeV)
		data, err := f.memSlice(off, size)
		if err != nil {
			return false, nil, err
		}
		return false, nil, f.push(e.keccakOf(data), meta{taint: f.memTaintRange(off, size)})

	case ADDRESS:
		return false, nil, f.push(f.addr.Word(), meta{})
	case BALANCE:
		a, _, _ := f.pop()
		bal := e.State.Balance(state.AddressFromWord(a))
		return false, nil, f.push(bal, meta{taint: TaintBalance})
	case SELFBALANCE:
		return false, nil, f.push(e.State.Balance(f.addr), meta{taint: TaintBalance})
	case ORIGIN:
		return false, nil, f.push(e.Origin.Word(), meta{taint: TaintOrigin})
	case CALLER:
		return false, nil, f.push(f.caller.Word(), meta{taint: TaintCaller})
	case CALLVALUE:
		return false, nil, f.push(f.value, meta{taint: TaintInput})

	case CALLDATALOAD:
		offV, _, _ := f.pop()
		var buf [32]byte
		if offV.FitsUint64() {
			off := offV.Uint64()
			for i := uint64(0); i < 32; i++ {
				if off+i < uint64(len(f.input)) {
					buf[i] = f.input[off+i]
				}
			}
		}
		return false, nil, f.push(u256.FromBytes(buf[:]), meta{taint: TaintInput})

	case CALLDATASIZE:
		return false, nil, f.push(u256.New(uint64(len(f.input))), meta{taint: TaintInput})

	case CALLDATACOPY:
		dstV, _, _ := f.pop()
		srcV, _, _ := f.pop()
		szV, _, _ := f.pop()
		dst, src, sz := u64(dstV), u64(srcV), u64(szV)
		mem, err := f.memSlice(dst, sz)
		if err != nil {
			return false, nil, err
		}
		for i := uint64(0); i < sz; i++ {
			if src+i < uint64(len(f.input)) {
				mem[i] = f.input[src+i]
			} else {
				mem[i] = 0
			}
		}
		for o := dst &^ 31; o < dst+sz; o += 32 {
			f.orMemTaintWord(o, TaintInput)
		}
		return false, nil, nil

	case CODESIZE:
		return false, nil, f.push(u256.New(uint64(len(f.code))), meta{})

	case CODECOPY:
		dstV, _, _ := f.pop()
		srcV, _, _ := f.pop()
		szV, _, _ := f.pop()
		dst, src, sz := u64(dstV), u64(srcV), u64(szV)
		mem, err := f.memSlice(dst, sz)
		if err != nil {
			return false, nil, err
		}
		for i := uint64(0); i < sz; i++ {
			if src+i < uint64(len(f.code)) {
				mem[i] = f.code[src+i]
			} else {
				mem[i] = 0
			}
		}
		return false, nil, nil

	case GASPRICE:
		return false, nil, f.push(u256.New(1), meta{})

	case RETURNDATASIZE:
		return false, nil, f.push(u256.New(uint64(len(f.retData))), meta{})

	case RETURNDATACOPY:
		dstV, _, _ := f.pop()
		srcV, _, _ := f.pop()
		szV, _, _ := f.pop()
		dst, src, sz := u64(dstV), u64(srcV), u64(szV)
		mem, err := f.memSlice(dst, sz)
		if err != nil {
			return false, nil, err
		}
		for i := uint64(0); i < sz; i++ {
			if src+i < uint64(len(f.retData)) {
				mem[i] = f.retData[src+i]
			} else {
				mem[i] = 0
			}
		}
		return false, nil, nil

	case BLOCKHASH:
		n, _, _ := f.pop()
		w := n.Bytes32()
		return false, nil, f.push(e.keccakOf(w[:]), meta{taint: TaintNumber})
	case COINBASE:
		return false, nil, f.push(e.Block.Coinbase.Word(), meta{})
	case TIMESTAMP:
		return false, nil, f.push(u256.New(e.Block.Timestamp), meta{taint: TaintTimestamp})
	case NUMBER:
		return false, nil, f.push(u256.New(e.Block.Number), meta{taint: TaintNumber})
	case DIFFICULTY:
		return false, nil, f.push(u256.New(e.Block.Difficulty), meta{taint: TaintNumber})
	case GASLIMIT:
		return false, nil, f.push(u256.New(e.Block.GasLimit), meta{})

	case POP:
		_, _, err := f.pop()
		return false, nil, err

	case MLOAD:
		offV, _, _ := f.pop()
		off := u64(offV)
		mem, err := f.memSlice(off, 32)
		if err != nil {
			return false, nil, err
		}
		return false, nil, f.push(u256.FromBytes(mem), meta{taint: f.memTaintRange(off, 32)})

	case MSTORE:
		offV, _, _ := f.pop()
		val, mv, _ := f.pop()
		off := u64(offV)
		mem, err := f.memSlice(off, 32)
		if err != nil {
			return false, nil, err
		}
		w := val.Bytes32()
		copy(mem, w[:])
		f.setMemTaintWord(off&^31, mv.taint)
		if off%32 != 0 {
			f.orMemTaintWord((off&^31)+32, mv.taint)
		}
		return false, nil, nil

	case MSTORE8:
		offV, _, _ := f.pop()
		val, mv, _ := f.pop()
		off := u64(offV)
		mem, err := f.memSlice(off, 1)
		if err != nil {
			return false, nil, err
		}
		mem[0] = byte(val.Uint64())
		f.orMemTaintWord(off&^31, mv.taint)
		return false, nil, nil

	case SLOAD:
		slot, _, _ := f.pop()
		val := e.State.GetStorage(f.addr, slot)
		t := e.StorageTaint[f.storageKeyFor(slot)]
		return false, nil, f.push(val, meta{taint: t})

	case SSTORE:
		slot, _, _ := f.pop()
		val, mv, _ := f.pop()
		if e.staticDepth > 0 {
			return false, nil, fmt.Errorf("%w: SSTORE at pc %d", ErrWriteProtection, f.pc)
		}
		e.State.SetStorage(f.addr, slot, val)
		e.StorageTaint[f.storageKeyFor(slot)] = mv.taint
		if e.Trace != nil {
			e.Trace.SStores = append(e.Trace.SStores, SStoreEvent{
				Addr: f.addr, Slot: slot, Value: val, Taint: mv.taint,
			})
		}
		f.recordSink(SinkStore, mv.taint)
		return false, nil, nil

	case JUMP:
		dst, _, _ := f.pop()
		if !f.validDest(dst) {
			return false, nil, fmt.Errorf("%w: to %s at pc %d", ErrInvalidJump, dst, f.pc)
		}
		f.pc = dst.Uint64() - 1 // main loop will +1
		return false, nil, nil

	case JUMPI:
		dst, _, _ := f.pop()
		cond, mc, _ := f.pop()
		taken := !cond.IsZero()
		var cmp CmpInfo
		if mc.cmp != nil {
			cmp = *mc.cmp
		}
		f.recordBranch(taken, mc.taint, mc.cmp != nil, cmp, mc.callID)
		if taken {
			if !f.validDest(dst) {
				return false, nil, fmt.Errorf("%w: to %s at pc %d", ErrInvalidJump, dst, f.pc)
			}
			f.pc = dst.Uint64() - 1
		}
		return false, nil, nil

	case PC:
		return false, nil, f.push(u256.New(f.pc), meta{})
	case MSIZE:
		return false, nil, f.push(u256.New(uint64(len(f.mem))), meta{})
	case GAS:
		return false, nil, f.push(u256.New(f.gas), meta{})
	case JUMPDEST:
		return false, nil, nil

	case CALL:
		return f.opCall()
	case DELEGATECALL:
		return f.opDelegateCall()
	case STATICCALL:
		return f.opStaticCall()

	case RETURN:
		offV, _, _ := f.pop()
		szV, _, _ := f.pop()
		data, err := f.memSlice(u64(offV), u64(szV))
		if err != nil {
			return false, nil, err
		}
		return true, append([]byte(nil), data...), nil

	case REVERT:
		offV, _, _ := f.pop()
		szV, _, _ := f.pop()
		data, err := f.memSlice(u64(offV), u64(szV))
		if err != nil {
			return false, nil, err
		}
		_ = data
		return false, nil, ErrRevert

	case INVALID:
		return false, nil, fmt.Errorf("%w: INVALID at pc %d", ErrInvalidOpcode, f.pc)

	case SELFDESTRUCT:
		benV, _, _ := f.pop()
		if e.staticDepth > 0 {
			return false, nil, fmt.Errorf("%w: SELFDESTRUCT at pc %d", ErrWriteProtection, f.pc)
		}
		ben := state.AddressFromWord(benV)
		creator := e.State.Creator(f.addr)
		if e.Trace != nil {
			e.Trace.SelfDestructs = append(e.Trace.SelfDestructs, SelfDestructEvent{
				Addr:            f.addr,
				Beneficiary:     ben,
				CallerIsCreator: f.caller == creator,
				OriginIsCreator: e.Origin == creator,
			})
			e.Trace.ValueOutAttempted = true
		}
		e.State.Destroy(f.addr, ben)
		return true, nil, nil

	default:
		return false, nil, fmt.Errorf("%w: %s at pc %d", ErrInvalidOpcode, op, f.pc)
	}
}

// opCall implements the CALL opcode.
func (f *frame) opCall() (bool, []byte, error) {
	e := f.evm
	gasV, _, _ := f.pop()
	toV, mTo, _ := f.pop()
	valV, mVal, _ := f.pop()
	inOffV, _, _ := f.pop()
	inSzV, _, _ := f.pop()
	outOffV, _, _ := f.pop()
	outSzV, _, _ := f.pop()

	to := state.AddressFromWord(toV)
	input, err := f.memSlice(u64(inOffV), u64(inSzV))
	if err != nil {
		return false, nil, err
	}
	input = append([]byte(nil), input...)

	// Gas forwarded: requested, capped by what the frame has, plus the
	// stipend for value-bearing calls (the transfer/send 2300 distinction
	// that gates reentrancy).
	forward := u64(gasV)
	if forward > f.gas {
		forward = f.gas
	}
	if err := f.useGas(forward); err != nil {
		return false, nil, err
	}
	if !valV.IsZero() {
		if e.staticDepth > 0 {
			return false, nil, fmt.Errorf("%w: CALL with value at pc %d", ErrWriteProtection, f.pc)
		}
		forward += callStipend
	}

	f.recordSink(SinkCallValue, mVal.taint)
	f.recordSink(SinkCallTarget, mTo.taint)

	e.callCounter++
	id := e.callCounter
	valueCall := !valV.IsZero() && forward > callStipend
	if valueCall {
		e.valueCallActive++
	}
	ret, leftGas, callErr := e.call(CALL, f.addr, to, to, valV, input, forward, f.depth+1)
	if valueCall {
		e.valueCallActive--
	}
	f.gas += leftGas
	f.retData = ret

	success := callErr == nil
	if e.Trace != nil {
		e.Trace.Calls = append(e.Trace.Calls, CallEvent{
			ID: id, Op: CALL, From: f.addr, To: to, Value: valV, Gas: forward,
			Success: success, Depth: f.depth, TargetTaint: mTo.taint, ValueTaint: mVal.taint,
		})
		e.setCallIndex(id, len(e.Trace.Calls)-1)
		if !valV.IsZero() {
			e.Trace.ValueOutAttempted = true
		}
	}

	// Write return data into the requested output window.
	outOff, outSz := u64(outOffV), u64(outSzV)
	if outSz > 0 {
		mem, err := f.memSlice(outOff, outSz)
		if err != nil {
			return false, nil, err
		}
		for i := range mem {
			if i < len(ret) {
				mem[i] = ret[i]
			} else {
				mem[i] = 0
			}
		}
	}

	statusWord := u256.Zero
	if success {
		statusWord = u256.One
	}
	return false, nil, f.push(statusWord, meta{taint: TaintCallResult, callID: id})
}

// opDelegateCall implements DELEGATECALL: callee code runs in the caller's
// storage context with the caller's value.
func (f *frame) opDelegateCall() (bool, []byte, error) {
	e := f.evm
	gasV, _, _ := f.pop()
	toV, mTo, _ := f.pop()
	inOffV, _, _ := f.pop()
	inSzV, _, _ := f.pop()
	outOffV, _, _ := f.pop()
	outSzV, _, _ := f.pop()

	to := state.AddressFromWord(toV)
	input, err := f.memSlice(u64(inOffV), u64(inSzV))
	if err != nil {
		return false, nil, err
	}
	input = append([]byte(nil), input...)

	forward := u64(gasV)
	if forward > f.gas {
		forward = f.gas
	}
	if err := f.useGas(forward); err != nil {
		return false, nil, err
	}

	if e.Trace != nil {
		e.Trace.Delegates = append(e.Trace.Delegates, DelegateEvent{
			Addr:            f.addr,
			TargetTaint:     mTo.taint,
			InputTaint:      f.memTaintRange(u64(inOffV), u64(inSzV)) | TaintInput&mTo.taint,
			CallerIsCreator: f.caller == e.State.Creator(f.addr),
		})
	}

	e.callCounter++
	id := e.callCounter
	// Storage context stays f.addr; code comes from `to`; caller preserved.
	ret, leftGas, callErr := e.call(DELEGATECALL, f.caller, f.addr, to, f.value, input, forward, f.depth+1)
	f.gas += leftGas
	f.retData = ret

	success := callErr == nil
	if e.Trace != nil {
		e.Trace.Calls = append(e.Trace.Calls, CallEvent{
			ID: id, Op: DELEGATECALL, From: f.addr, To: to, Gas: forward,
			Success: success, Depth: f.depth, TargetTaint: mTo.taint,
		})
		e.setCallIndex(id, len(e.Trace.Calls)-1)
	}

	outOff, outSz := u64(outOffV), u64(outSzV)
	if outSz > 0 {
		mem, err := f.memSlice(outOff, outSz)
		if err != nil {
			return false, nil, err
		}
		for i := range mem {
			if i < len(ret) {
				mem[i] = ret[i]
			} else {
				mem[i] = 0
			}
		}
	}
	statusWord := u256.Zero
	if success {
		statusWord = u256.One
	}
	return false, nil, f.push(statusWord, meta{taint: TaintCallResult, callID: id})
}

// opStaticCall implements STATICCALL: a value-less CALL under write
// protection. While the static frame (or anything it calls, per EIP-214
// propagation) is live, SSTORE, SELFDESTRUCT, and value-bearing CALLs fail
// with ErrWriteProtection.
func (f *frame) opStaticCall() (bool, []byte, error) {
	e := f.evm
	gasV, _, _ := f.pop()
	toV, mTo, _ := f.pop()
	inOffV, _, _ := f.pop()
	inSzV, _, _ := f.pop()
	outOffV, _, _ := f.pop()
	outSzV, _, _ := f.pop()

	to := state.AddressFromWord(toV)
	input, err := f.memSlice(u64(inOffV), u64(inSzV))
	if err != nil {
		return false, nil, err
	}
	input = append([]byte(nil), input...)

	forward := u64(gasV)
	if forward > f.gas {
		forward = f.gas
	}
	if err := f.useGas(forward); err != nil {
		return false, nil, err
	}

	e.callCounter++
	id := e.callCounter
	e.staticDepth++
	ret, leftGas, callErr := e.call(STATICCALL, f.addr, to, to, u256.Zero, input, forward, f.depth+1)
	e.staticDepth--
	f.gas += leftGas
	f.retData = ret

	success := callErr == nil
	if e.Trace != nil {
		e.Trace.Calls = append(e.Trace.Calls, CallEvent{
			ID: id, Op: STATICCALL, From: f.addr, To: to, Gas: forward,
			Success: success, Depth: f.depth, TargetTaint: mTo.taint,
		})
		e.setCallIndex(id, len(e.Trace.Calls)-1)
	}

	outOff, outSz := u64(outOffV), u64(outSzV)
	if outSz > 0 {
		mem, err := f.memSlice(outOff, outSz)
		if err != nil {
			return false, nil, err
		}
		for i := range mem {
			if i < len(ret) {
				mem[i] = ret[i]
			} else {
				mem[i] = 0
			}
		}
	}
	statusWord := u256.Zero
	if success {
		statusWord = u256.One
	}
	return false, nil, f.push(statusWord, meta{taint: TaintCallResult, callID: id})
}
