package evm

import (
	"errors"
	"testing"

	"mufuzz/internal/keccak"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// testEnv bundles a fresh state + EVM with a deployed code blob.
func testEnv(t testing.TB, code []byte) (*EVM, state.Address, state.Address) {
	t.Helper()
	st := state.New()
	sender := state.AddressFromUint(0xaaaa)
	contract := state.AddressFromUint(0xc0de)
	st.SetBalance(sender, u256.New(1_000_000))
	st.CreateContract(contract, code, sender)
	st.Commit()
	e := New(st, BlockCtx{Timestamp: 1_700_000_000, Number: 123, GasLimit: 30_000_000})
	e.Trace = NewTrace()
	return e, sender, contract
}

// run executes a tx against the contract returning output.
func run(t testing.TB, e *EVM, from, to state.Address, value u256.Int, input []byte) ([]byte, error) {
	t.Helper()
	return e.Transact(from, to, value, input, 10_000_000)
}

// returnTop returns code that executes prog then returns the top of stack as
// a 32-byte value.
func returnTop(prog func(a *Assembler)) []byte {
	a := NewAssembler()
	prog(a)
	// MSTORE result at 0, return 32 bytes.
	a.PushUint(0).Op(MSTORE).PushUint(32).PushUint(0).Op(RETURN)
	return a.MustBuild()
}

func wantWord(t *testing.T, out []byte, want u256.Int) {
	t.Helper()
	if len(out) != 32 {
		t.Fatalf("output length %d, want 32", len(out))
	}
	got := u256.FromBytes(out)
	if !got.Eq(want) {
		t.Errorf("result = %s, want %s", got, want)
	}
}

func TestArithmeticOpcodes(t *testing.T) {
	cases := []struct {
		name string
		prog func(a *Assembler)
		want u256.Int
	}{
		{"add", func(a *Assembler) { a.PushUint(2).PushUint(3).Op(ADD) }, u256.New(5)},
		{"sub", func(a *Assembler) { a.PushUint(3).PushUint(10).Op(SUB) }, u256.New(7)}, // SUB pops a then b, computes a-b with a=top
		{"mul", func(a *Assembler) { a.PushUint(6).PushUint(7).Op(MUL) }, u256.New(42)},
		{"div", func(a *Assembler) { a.PushUint(3).PushUint(12).Op(DIV) }, u256.New(4)},
		{"div0", func(a *Assembler) { a.PushUint(0).PushUint(12).Op(DIV) }, u256.Zero},
		{"mod", func(a *Assembler) { a.PushUint(5).PushUint(12).Op(MOD) }, u256.New(2)},
		{"exp", func(a *Assembler) { a.PushUint(8).PushUint(2).Op(EXP) }, u256.New(256)},
		{"lt_true", func(a *Assembler) { a.PushUint(5).PushUint(3).Op(LT) }, u256.One},
		{"gt_false", func(a *Assembler) { a.PushUint(5).PushUint(3).Op(GT) }, u256.Zero},
		{"eq", func(a *Assembler) { a.PushUint(9).PushUint(9).Op(EQ) }, u256.One},
		{"iszero", func(a *Assembler) { a.PushUint(0).Op(ISZERO) }, u256.One},
		{"and", func(a *Assembler) { a.PushUint(0b1100).PushUint(0b1010).Op(AND) }, u256.New(0b1000)},
		{"or", func(a *Assembler) { a.PushUint(0b1100).PushUint(0b1010).Op(OR) }, u256.New(0b1110)},
		{"xor", func(a *Assembler) { a.PushUint(0b1100).PushUint(0b1010).Op(XOR) }, u256.New(0b0110)},
		{"shl", func(a *Assembler) { a.PushUint(1).PushUint(4).Op(SHL) }, u256.New(16)},
		{"shr", func(a *Assembler) { a.PushUint(16).PushUint(4).Op(SHR) }, u256.One},
		{"addmod", func(a *Assembler) { a.PushUint(7).PushUint(5).PushUint(9).Op(ADDMOD) }, u256.New(0)},
		{"mulmod", func(a *Assembler) { a.PushUint(7).PushUint(5).PushUint(3).Op(MULMOD) }, u256.One},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, sender, contract := testEnv(t, returnTop(tc.prog))
			out, err := run(t, e, sender, contract, u256.Zero, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantWord(t, out, tc.want)
		})
	}
}

// EVM stack order note: "PUSH a; PUSH b; SUB" computes b - a because SUB pops
// the top (b) first. The sub test above relies on this; verify explicitly.
func TestSubOperandOrder(t *testing.T) {
	e, sender, contract := testEnv(t, returnTop(func(a *Assembler) {
		a.PushUint(1).PushUint(100).Op(SUB) // 100 - 1
	}))
	out, err := run(t, e, sender, contract, u256.Zero, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantWord(t, out, u256.New(99))
}

func TestCalldataAndEnvironment(t *testing.T) {
	e, sender, contract := testEnv(t, returnTop(func(a *Assembler) {
		a.PushUint(0).Op(CALLDATALOAD)
	}))
	arg := u256.New(0xabcdef).Bytes32()
	out, err := run(t, e, sender, contract, u256.Zero, arg[:])
	if err != nil {
		t.Fatal(err)
	}
	wantWord(t, out, u256.New(0xabcdef))

	e, sender, contract = testEnv(t, returnTop(func(a *Assembler) { a.Op(CALLER) }))
	out, err = run(t, e, sender, contract, u256.Zero, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantWord(t, out, sender.Word())

	e, sender, contract = testEnv(t, returnTop(func(a *Assembler) { a.Op(CALLVALUE) }))
	out, err = run(t, e, sender, contract, u256.New(55), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantWord(t, out, u256.New(55))

	e, sender, contract = testEnv(t, returnTop(func(a *Assembler) { a.Op(TIMESTAMP) }))
	out, err = run(t, e, sender, contract, u256.Zero, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantWord(t, out, u256.New(1_700_000_000))
}

func TestStoragePersistsAcrossTransactions(t *testing.T) {
	// tx: SSTORE(slot0, calldata word); read back with second program.
	store := NewAssembler()
	store.PushUint(0).Op(CALLDATALOAD).PushUint(0).Op(SSTORE).Op(STOP)
	e, sender, contract := testEnv(t, store.MustBuild())
	v := u256.New(777).Bytes32()
	if _, err := run(t, e, sender, contract, u256.Zero, v[:]); err != nil {
		t.Fatal(err)
	}
	if got := e.State.GetStorage(contract, u256.Zero); !got.Eq(u256.New(777)) {
		t.Fatalf("storage = %s, want 777", got)
	}
}

func TestRevertRollsBackState(t *testing.T) {
	a := NewAssembler()
	a.PushUint(42).PushUint(0).Op(SSTORE) // write slot0 = 42
	a.PushUint(0).PushUint(0).Op(REVERT)
	e, sender, contract := testEnv(t, a.MustBuild())
	_, err := run(t, e, sender, contract, u256.Zero, nil)
	if !errors.Is(err, ErrRevert) {
		t.Fatalf("err = %v, want ErrRevert", err)
	}
	if !e.State.GetStorage(contract, u256.Zero).IsZero() {
		t.Error("storage write survived revert")
	}
	if !e.Trace.Reverted {
		t.Error("trace should record revert")
	}
}

func TestValueTransferOnTransact(t *testing.T) {
	e, sender, contract := testEnv(t, []byte{byte(STOP)})
	if _, err := run(t, e, sender, contract, u256.New(100), nil); err != nil {
		t.Fatal(err)
	}
	if !e.State.Balance(contract).Eq(u256.New(100)) {
		t.Errorf("contract balance = %s", e.State.Balance(contract))
	}
	if !e.State.Balance(sender).Eq(u256.New(999_900)) {
		t.Errorf("sender balance = %s", e.State.Balance(sender))
	}
	// Insufficient balance fails and moves nothing.
	if _, err := run(t, e, sender, contract, u256.New(10_000_000), nil); !errors.Is(err, ErrBalance) {
		t.Fatalf("err = %v, want ErrBalance", err)
	}
	if !e.State.Balance(contract).Eq(u256.New(100)) {
		t.Error("failed transfer moved funds")
	}
}

func TestJumpAndBranchEvents(t *testing.T) {
	// if calldata[0] != 0 goto L else fall through; both sides SSTORE marker.
	a := NewAssembler()
	a.PushUint(0).Op(CALLDATALOAD)
	a.JumpITo("taken")
	a.PushUint(1).PushUint(0).Op(SSTORE).Op(STOP)
	a.Label("taken")
	a.PushUint(2).PushUint(0).Op(SSTORE).Op(STOP)
	code := a.MustBuild()

	e, sender, contract := testEnv(t, code)
	one := u256.One.Bytes32()
	if _, err := run(t, e, sender, contract, u256.Zero, one[:]); err != nil {
		t.Fatal(err)
	}
	if got := e.State.GetStorage(contract, u256.Zero); !got.Eq(u256.New(2)) {
		t.Fatalf("taken branch storage = %s", got)
	}
	if len(e.Trace.Branches) != 1 {
		t.Fatalf("branches = %d, want 1", len(e.Trace.Branches))
	}
	br := e.Trace.Branches[0]
	if !br.Taken {
		t.Error("branch should be taken")
	}
	if !br.CondTaint.Has(TaintInput) {
		t.Error("condition should carry input taint")
	}

	// Untaken direction.
	e.Trace = NewTrace()
	zero := u256.Zero.Bytes32()
	if _, err := run(t, e, sender, contract, u256.Zero, zero[:]); err != nil {
		t.Fatal(err)
	}
	if got := e.State.GetStorage(contract, u256.Zero); !got.Eq(u256.One) {
		t.Fatalf("fallthrough storage = %s", got)
	}
	if e.Trace.Branches[0].Taken {
		t.Error("branch should not be taken")
	}
}

func TestBranchCmpProvenanceAndDistance(t *testing.T) {
	// condition: calldata word < 100 → JUMPI. Cmp info must surface operands.
	a := NewAssembler()
	a.PushUint(100).PushUint(0).Op(CALLDATALOAD).Op(LT) // arg < 100
	a.JumpITo("yes")
	a.Op(STOP)
	a.Label("yes")
	a.Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())

	arg := u256.New(150).Bytes32() // 150 < 100 is false → not taken
	if _, err := run(t, e, sender, contract, u256.Zero, arg[:]); err != nil {
		t.Fatal(err)
	}
	br := e.Trace.Branches[0]
	if br.Taken {
		t.Fatal("150 < 100 should be false")
	}
	if !br.HasCmp || br.Cmp.Op != LT {
		t.Fatalf("cmp provenance missing: %+v", br)
	}
	// Distance to flip (make 150 < 100 true): 150-100+1 = 51.
	if d := br.Cmp.FlipDistance(); !d.Eq(u256.New(51)) {
		t.Errorf("flip distance = %s, want 51", d)
	}
}

func TestISZEROPreservesCmpProvenance(t *testing.T) {
	// solidity-style: LT; ISZERO; JUMPI — distance must still be computable.
	a := NewAssembler()
	a.PushUint(100).PushUint(0).Op(CALLDATALOAD).Op(LT).Op(ISZERO)
	a.JumpITo("no")
	a.Op(STOP)
	a.Label("no")
	a.Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())
	arg := u256.New(7).Bytes32()
	if _, err := run(t, e, sender, contract, u256.Zero, arg[:]); err != nil {
		t.Fatal(err)
	}
	br := e.Trace.Branches[0]
	if !br.HasCmp {
		t.Fatal("ISZERO dropped cmp provenance")
	}
	if br.Cmp.Op != LT {
		t.Errorf("cmp op = %s, want LT", br.Cmp.Op)
	}
}

func TestInvalidJumpFails(t *testing.T) {
	a := NewAssembler()
	a.PushUint(3).Op(JUMP) // 3 is not a JUMPDEST
	e, sender, contract := testEnv(t, a.MustBuild())
	if _, err := run(t, e, sender, contract, u256.Zero, nil); !errors.Is(err, ErrInvalidJump) {
		t.Fatalf("err = %v, want ErrInvalidJump", err)
	}
}

func TestJumpdestInsidePushImmediateRejected(t *testing.T) {
	// PUSH2 0x5b5b embeds JUMPDEST bytes that must not be valid targets.
	code := []byte{byte(PUSH1) + 1, 0x5b, 0x5b, byte(PUSH1), 1, byte(JUMP)}
	e, sender, contract := testEnv(t, code)
	if _, err := run(t, e, sender, contract, u256.Zero, nil); !errors.Is(err, ErrInvalidJump) {
		t.Fatalf("err = %v, want ErrInvalidJump", err)
	}
}

func TestStackUnderflowAndOverflow(t *testing.T) {
	e, sender, contract := testEnv(t, []byte{byte(ADD)})
	if _, err := run(t, e, sender, contract, u256.Zero, nil); !errors.Is(err, ErrStackUnderflow) {
		t.Fatalf("err = %v, want ErrStackUnderflow", err)
	}

	// Push loop exceeding 1024 entries.
	a := NewAssembler()
	a.Label("loop").PushUint(1).JumpTo("loop")
	e, sender, contract = testEnv(t, a.MustBuild())
	if _, err := run(t, e, sender, contract, u256.Zero, nil); !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("err = %v, want ErrStackOverflow", err)
	}
}

func TestInfiniteLoopHitsGasOrStepLimit(t *testing.T) {
	a := NewAssembler()
	a.Label("loop").JumpTo("loop")
	e, sender, contract := testEnv(t, a.MustBuild())
	_, err := run(t, e, sender, contract, u256.Zero, nil)
	if !errors.Is(err, ErrOutOfGas) && !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want gas/step exhaustion", err)
	}
}

func TestOverflowEventRecorded(t *testing.T) {
	a := NewAssembler()
	a.Push(u256.Max).PushUint(1).Op(ADD) // 1 + MAX wraps
	a.PushUint(0).Op(SSTORE)             // store the wrapped value
	a.Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())
	if _, err := run(t, e, sender, contract, u256.Zero, nil); err != nil {
		t.Fatal(err)
	}
	if len(e.Trace.Overflows) != 1 {
		t.Fatalf("overflows = %d, want 1", len(e.Trace.Overflows))
	}
	// The overflowed value reached SSTORE: a store sink with overflow taint.
	found := false
	for _, s := range e.Trace.Sinks {
		if s.Kind == SinkStore && s.Taint.Has(TaintOverflow) {
			found = true
		}
	}
	if !found {
		t.Error("missing SinkStore with TaintOverflow")
	}
}

func TestTimestampTaintReachesJumpi(t *testing.T) {
	a := NewAssembler()
	a.PushUint(5).Op(TIMESTAMP).Op(GT) // timestamp > 5
	a.JumpITo("x")
	a.Op(STOP)
	a.Label("x").Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())
	if _, err := run(t, e, sender, contract, u256.Zero, nil); err != nil {
		t.Fatal(err)
	}
	br := e.Trace.Branches[0]
	if !br.CondTaint.Has(TaintTimestamp) {
		t.Error("JUMPI condition should carry timestamp taint")
	}
}

func TestStorageTaintPersistsAcrossTx(t *testing.T) {
	// tx1 stores TIMESTAMP to slot 0; tx2 compares slot 0 — BD taint must flow.
	a := NewAssembler()
	a.PushUint(0).Op(CALLDATALOAD)
	a.JumpITo("read")
	a.Op(TIMESTAMP).PushUint(0).Op(SSTORE).Op(STOP)
	a.Label("read")
	a.PushUint(5).PushUint(0).Op(SLOAD).Op(GT)
	a.JumpITo("z")
	a.Op(STOP)
	a.Label("z").Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())

	zero := u256.Zero.Bytes32()
	if _, err := run(t, e, sender, contract, u256.Zero, zero[:]); err != nil {
		t.Fatal(err)
	}
	e.Trace = NewTrace()
	one := u256.One.Bytes32()
	if _, err := run(t, e, sender, contract, u256.Zero, one[:]); err != nil {
		t.Fatal(err)
	}
	var tainted bool
	for _, br := range e.Trace.Branches {
		if br.CondTaint.Has(TaintTimestamp) {
			tainted = true
		}
	}
	if !tainted {
		t.Error("timestamp taint should persist through storage to tx2 branch")
	}
}

func TestCallTransfersValueAndReportsStatus(t *testing.T) {
	// Contract sends 10 wei to an EOA via CALL and stores the status word.
	dest := state.AddressFromUint(0xbeef)
	a := NewAssembler()
	a.PushUint(0).PushUint(0).PushUint(0).PushUint(0) // outSz outOff inSz inOff
	a.PushUint(10)                                    // value
	a.Push(dest.Word())                               // to
	a.PushUint(50_000)                                // gas
	a.Op(CALL)
	a.PushUint(0).Op(SSTORE).Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())
	e.State.SetBalance(contract, u256.New(100))
	e.State.Commit()

	if _, err := run(t, e, sender, contract, u256.Zero, nil); err != nil {
		t.Fatal(err)
	}
	if !e.State.Balance(dest).Eq(u256.New(10)) {
		t.Errorf("dest balance = %s", e.State.Balance(dest))
	}
	if !e.State.GetStorage(contract, u256.Zero).Eq(u256.One) {
		t.Error("successful call should store status 1")
	}
	if len(e.Trace.Calls) != 1 || !e.Trace.Calls[0].Success {
		t.Fatalf("call events: %+v", e.Trace.Calls)
	}
	if !e.Trace.ValueOutAttempted {
		t.Error("value-out should be recorded")
	}
}

func TestFailedCallStatusZeroAndUncheckedDetection(t *testing.T) {
	// Value transfer exceeding balance → CALL fails, status 0, unchecked.
	dest := state.AddressFromUint(0xbeef)
	a := NewAssembler()
	a.PushUint(0).PushUint(0).PushUint(0).PushUint(0)
	a.PushUint(1_000_000) // more than the contract has
	a.Push(dest.Word())
	a.PushUint(50_000)
	a.Op(CALL)
	a.Op(POP) // discard status without checking → UE pattern
	a.Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())
	if _, err := run(t, e, sender, contract, u256.Zero, nil); err != nil {
		t.Fatal(err)
	}
	if len(e.Trace.Calls) != 1 {
		t.Fatalf("calls = %d", len(e.Trace.Calls))
	}
	ev := e.Trace.Calls[0]
	if ev.Success {
		t.Error("call should have failed")
	}
	if ev.Checked {
		t.Error("status was never checked")
	}
}

func TestCheckedCallMarksEvent(t *testing.T) {
	dest := state.AddressFromUint(0xbeef)
	a := NewAssembler()
	a.PushUint(0).PushUint(0).PushUint(0).PushUint(0)
	a.PushUint(1_000_000)
	a.Push(dest.Word())
	a.PushUint(50_000)
	a.Op(CALL)
	a.JumpITo("ok") // checks the status
	a.Op(STOP)
	a.Label("ok").Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())
	if _, err := run(t, e, sender, contract, u256.Zero, nil); err != nil {
		t.Fatal(err)
	}
	if !e.Trace.Calls[0].Checked {
		t.Error("JUMPI consumed the status; event must be Checked")
	}
}

func TestReentrantAttackerCallsBack(t *testing.T) {
	// Victim: sends CALLVALUE/2 to CALLER with full gas (call.value pattern),
	// tracking a counter in slot 0 so reentry is observable.
	a := NewAssembler()
	a.PushUint(0).Op(SLOAD).PushUint(1).Op(ADD).PushUint(0).Op(SSTORE) // slot0++
	a.PushUint(0).PushUint(0).PushUint(0).PushUint(0)
	a.PushUint(10) // value
	a.Op(CALLER)   // to = msg.sender
	a.PushUint(9_000_000)
	a.Op(CALL).Op(POP).Op(STOP)
	e, _, contract := testEnv(t, a.MustBuild())
	e.State.SetBalance(contract, u256.New(1000))

	attacker := &ReentrantAttacker{Addr: state.AddressFromUint(0x666), MaxReentries: 1}
	e.RegisterNative(attacker.Addr, attacker)
	e.State.SetBalance(attacker.Addr, u256.New(1000))
	e.State.Commit()

	if _, err := run(t, e, attacker.Addr, contract, u256.Zero, nil); err != nil {
		t.Fatal(err)
	}
	if attacker.Reentered == 0 {
		t.Fatal("attacker never got control")
	}
	if len(e.Trace.Reentries) == 0 {
		t.Fatal("reentry event missing")
	}
	if !e.Trace.Reentries[0].EnabledByValueCall {
		t.Error("reentry should be marked as enabled by a value call")
	}
	// Counter incremented twice: original + reentrant call.
	if got := e.State.GetStorage(contract, u256.Zero); !got.Eq(u256.New(2)) {
		t.Errorf("counter = %s, want 2 (reentered)", got)
	}
}

func TestTransferStipendBlocksReentry(t *testing.T) {
	// Same victim but forwards 0 gas (transfer pattern → only the stipend).
	a := NewAssembler()
	a.PushUint(0).PushUint(0).PushUint(0).PushUint(0)
	a.PushUint(10)
	a.Op(CALLER)
	a.PushUint(0) // gas 0 + stipend 2300
	a.Op(CALL).Op(POP).Op(STOP)
	e, _, contract := testEnv(t, a.MustBuild())
	e.State.SetBalance(contract, u256.New(1000))
	attacker := &ReentrantAttacker{Addr: state.AddressFromUint(0x666)}
	e.RegisterNative(attacker.Addr, attacker)
	e.State.Commit()

	if _, err := run(t, e, attacker.Addr, contract, u256.Zero, nil); err != nil {
		t.Fatal(err)
	}
	if attacker.Reentered != 0 {
		t.Error("stipend-only call must not allow reentry")
	}
}

func TestSelfDestructEvent(t *testing.T) {
	a := NewAssembler()
	a.Op(CALLER).Op(SELFDESTRUCT)
	e, sender, contract := testEnv(t, a.MustBuild())
	e.State.SetBalance(contract, u256.New(500))
	e.State.Commit()
	other := state.AddressFromUint(0x7777)
	e.State.SetBalance(other, u256.New(1))
	e.State.Commit()

	// Called by a non-creator.
	if _, err := run(t, e, other, contract, u256.Zero, nil); err != nil {
		t.Fatal(err)
	}
	if len(e.Trace.SelfDestructs) != 1 {
		t.Fatalf("selfdestructs = %d", len(e.Trace.SelfDestructs))
	}
	ev := e.Trace.SelfDestructs[0]
	if ev.CallerIsCreator {
		t.Error("caller is not the creator")
	}
	if !e.State.Destroyed(contract) {
		t.Error("contract should be destroyed")
	}
	if !e.State.Balance(other).Eq(u256.New(501)) {
		t.Errorf("beneficiary balance = %s", e.State.Balance(other))
	}
	_ = sender
}

func TestDelegatecallRunsInCallerContext(t *testing.T) {
	// Library code: SSTORE(0, 99).
	lib := NewAssembler()
	lib.PushUint(99).PushUint(0).Op(SSTORE).Op(STOP)
	libAddr := state.AddressFromUint(0x11b)

	// Caller: DELEGATECALL lib.
	a := NewAssembler()
	a.PushUint(0).PushUint(0).PushUint(0).PushUint(0)
	a.Push(libAddr.Word())
	a.PushUint(100_000)
	a.Op(DELEGATECALL).Op(POP).Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())
	e.State.CreateContract(libAddr, lib.MustBuild(), sender)
	e.State.Commit()

	if _, err := run(t, e, sender, contract, u256.Zero, nil); err != nil {
		t.Fatal(err)
	}
	if !e.State.GetStorage(contract, u256.Zero).Eq(u256.New(99)) {
		t.Error("delegatecall must write the caller's storage")
	}
	if !e.State.GetStorage(libAddr, u256.Zero).IsZero() {
		t.Error("library storage must be untouched")
	}
	if len(e.Trace.Delegates) != 1 {
		t.Fatalf("delegate events = %d", len(e.Trace.Delegates))
	}
}

func TestKeccakOpcode(t *testing.T) {
	// keccak256 of 32 zero bytes.
	e, sender, contract := testEnv(t, returnTop(func(a *Assembler) {
		a.PushUint(32).PushUint(0).Op(KECCAK256)
	}))
	out, err := run(t, e, sender, contract, u256.Zero, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := u256.FromBytes(keccakZero32())
	wantWord(t, out, want)
}

func keccakZero32() []byte {
	// computed via the keccak package to avoid a hex constant here
	var buf [32]byte
	sum := keccak.Sum256(buf[:])
	return sum[:]
}

func TestBalanceOpcodeTaint(t *testing.T) {
	a := NewAssembler()
	a.PushUint(88).Op(ADDRESS).Op(BALANCE).Op(EQ) // balance(this) == 88 → SE pattern
	a.JumpITo("x")
	a.Op(STOP)
	a.Label("x").Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())
	if _, err := run(t, e, sender, contract, u256.Zero, nil); err != nil {
		t.Fatal(err)
	}
	var eqSink bool
	for _, s := range e.Trace.Sinks {
		if s.Kind == SinkEq && s.Taint.Has(TaintBalance) {
			eqSink = true
		}
	}
	if !eqSink {
		t.Error("BALANCE == const must produce an EQ sink with balance taint")
	}
}

func TestOriginTaint(t *testing.T) {
	a := NewAssembler()
	a.Op(CALLER).Op(ORIGIN).Op(EQ)
	a.JumpITo("x")
	a.Op(STOP)
	a.Label("x").Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())
	if _, err := run(t, e, sender, contract, u256.Zero, nil); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range e.Trace.Sinks {
		if s.Kind == SinkCompare && s.Taint.Has(TaintOrigin) {
			found = true
		}
	}
	if !found {
		t.Error("ORIGIN comparison sink missing")
	}
}

func TestCollectPCs(t *testing.T) {
	a := NewAssembler()
	a.PushUint(1).Op(POP).Op(STOP)
	e, sender, contract := testEnv(t, a.MustBuild())
	e.CollectPCs = true
	if _, err := run(t, e, sender, contract, u256.Zero, nil); err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 2, 3}
	if len(e.Trace.PCs) != len(want) {
		t.Fatalf("pcs = %v", e.Trace.PCs)
	}
	for i, pc := range want {
		if e.Trace.PCs[i] != pc {
			t.Errorf("pc[%d] = %d, want %d", i, e.Trace.PCs[i], pc)
		}
	}
}

func TestAssemblerErrors(t *testing.T) {
	a := NewAssembler()
	a.JumpTo("nowhere")
	if _, err := a.Build(); err == nil {
		t.Error("undefined label should fail")
	}
	b := NewAssembler()
	b.Label("x").Label("x")
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label should fail")
	}
}

func BenchmarkTransactSimpleStore(b *testing.B) {
	a := NewAssembler()
	a.PushUint(0).Op(CALLDATALOAD).PushUint(0).Op(SSTORE).Op(STOP)
	e, sender, contract := testEnv(b, a.MustBuild())
	arg := u256.New(9).Bytes32()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Trace = NewTrace()
		if _, err := e.Transact(sender, contract, u256.Zero, arg[:], 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransactLoop(b *testing.B) {
	// Loop 100 times decrementing a counter.
	a := NewAssembler()
	a.PushUint(100)
	a.Label("loop")
	a.PushUint(1).Op(SWAP1).Op(SUB) // counter-1
	a.Op(DUP1)
	a.JumpITo("loop")
	a.Op(STOP)
	e, sender, contract := testEnv(b, a.MustBuild())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Trace = NewTrace()
		if _, err := e.Transact(sender, contract, u256.Zero, nil, 10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
