package evm

import (
	"fmt"

	"mufuzz/internal/u256"
)

// Assembler builds EVM bytecode programmatically with label-based jumps.
// The MiniSol code generator and the EVM tests both target it.
type Assembler struct {
	code   []byte
	labels map[string]int   // label -> code offset
	fixups map[int]string   // offset of 2-byte push immediate -> label
	marks  map[string][]int // diagnostics: labels referenced
	err    error
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{
		labels: make(map[string]int),
		fixups: make(map[int]string),
		marks:  make(map[string][]int),
	}
}

// Op appends raw opcodes.
func (a *Assembler) Op(ops ...OpCode) *Assembler {
	for _, op := range ops {
		a.code = append(a.code, byte(op))
	}
	return a
}

// Push appends the smallest PUSHn for the value.
func (a *Assembler) Push(v u256.Int) *Assembler {
	b := v.Bytes32()
	// strip leading zeros; PUSH1 0x00 for zero
	i := 0
	for i < 31 && b[i] == 0 {
		i++
	}
	imm := b[i:]
	a.code = append(a.code, byte(PUSH1)+byte(len(imm)-1))
	a.code = append(a.code, imm...)
	return a
}

// PushUint is Push for small values.
func (a *Assembler) PushUint(v uint64) *Assembler { return a.Push(u256.New(v)) }

// PushBytes appends a PUSHn with exactly the given immediate (1..32 bytes).
func (a *Assembler) PushBytes(b []byte) *Assembler {
	if len(b) == 0 || len(b) > 32 {
		a.fail(fmt.Errorf("asm: PushBytes length %d", len(b)))
		return a
	}
	a.code = append(a.code, byte(PUSH1)+byte(len(b)-1))
	a.code = append(a.code, b...)
	return a
}

// Label defines a jump target at the current position and emits JUMPDEST.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.fail(fmt.Errorf("asm: duplicate label %q", name))
		return a
	}
	a.labels[name] = len(a.code)
	a.code = append(a.code, byte(JUMPDEST))
	return a
}

// PushLabel emits PUSH2 with a placeholder later patched to the label offset.
func (a *Assembler) PushLabel(name string) *Assembler {
	a.code = append(a.code, byte(PUSH1)+1) // PUSH2
	a.fixups[len(a.code)] = name
	a.marks[name] = append(a.marks[name], len(a.code))
	a.code = append(a.code, 0, 0)
	return a
}

// JumpTo emits an unconditional jump to the label.
func (a *Assembler) JumpTo(name string) *Assembler {
	return a.PushLabel(name).Op(JUMP)
}

// JumpITo emits a conditional jump to the label (condition must be on stack).
func (a *Assembler) JumpITo(name string) *Assembler {
	return a.PushLabel(name).Op(JUMPI)
}

func (a *Assembler) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

// Len returns the current code size.
func (a *Assembler) Len() int { return len(a.code) }

// Build patches label references and returns the final bytecode.
func (a *Assembler) Build() ([]byte, error) {
	if a.err != nil {
		return nil, a.err
	}
	for off, name := range a.fixups {
		target, ok := a.labels[name]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", name)
		}
		if target > 0xffff {
			return nil, fmt.Errorf("asm: label %q offset %d exceeds PUSH2", name, target)
		}
		a.code[off] = byte(target >> 8)
		a.code[off+1] = byte(target)
	}
	return a.code, nil
}

// MustBuild is Build that panics on error; for tests and fixed codegen.
func (a *Assembler) MustBuild() []byte {
	code, err := a.Build()
	if err != nil {
		panic(err)
	}
	return code
}
