package evm

import (
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// Taint is a bitmask recording which environment sources influenced a value.
// Taints propagate through arithmetic, memory, and (across transactions)
// storage; the bug oracles (paper §IV-D) match sources against sinks.
type Taint uint16

const (
	// TaintInput marks values derived from transaction calldata.
	TaintInput Taint = 1 << iota
	// TaintTimestamp marks values derived from block.timestamp.
	TaintTimestamp
	// TaintNumber marks values derived from block.number.
	TaintNumber
	// TaintOrigin marks values derived from tx.origin.
	TaintOrigin
	// TaintBalance marks values derived from a BALANCE/SELFBALANCE query.
	TaintBalance
	// TaintOverflow marks values produced by a wrapping ADD/SUB/MUL.
	TaintOverflow
	// TaintCallResult marks the success flag of an external call.
	TaintCallResult
	// TaintCaller marks values derived from msg.sender.
	TaintCaller
)

// Has reports whether t includes all bits of q.
func (t Taint) Has(q Taint) bool { return t&q == q }

// CmpInfo records the comparison that produced a boolean value, so branch
// distance (paper §IV-B, sFuzz-style) can be computed for the untaken side.
type CmpInfo struct {
	Op OpCode // LT, GT, SLT, SGT, EQ
	A  u256.Int
	B  u256.Int
}

// FlipDistance returns how far the comparison is from producing the opposite
// outcome — the branch distance toward the uncovered side. Zero means the
// comparison already flips (should not occur); 1 means "one unit away".
func (c CmpInfo) FlipDistance() u256.Int {
	switch c.Op {
	case EQ:
		if c.A.Eq(c.B) {
			return u256.One // any change of either operand flips it
		}
		return c.A.AbsDiff(c.B)
	case LT:
		if c.A.Lt(c.B) { // true; to make false need A >= B
			return c.B.Sub(c.A)
		}
		return c.A.Sub(c.B).Add(u256.One)
	case GT:
		if c.A.Gt(c.B) {
			return c.A.Sub(c.B)
		}
		return c.B.Sub(c.A).Add(u256.One)
	case SLT:
		if c.A.Scmp(c.B) < 0 {
			return c.B.Sub(c.A)
		}
		return c.A.Sub(c.B).Add(u256.One)
	case SGT:
		if c.A.Scmp(c.B) > 0 {
			return c.A.Sub(c.B)
		}
		return c.B.Sub(c.A).Add(u256.One)
	default:
		return u256.Max
	}
}

// BranchEvent records one executed JUMPI.
type BranchEvent struct {
	Addr      state.Address
	PC        uint64 // program counter of the JUMPI
	Taken     bool   // whether the jump was taken
	CondTaint Taint
	HasCmp    bool
	Cmp       CmpInfo
	Depth     int // call depth at execution
	// EdgeRef is the interned coverage identity of the edge, carried through
	// the trace so feedback folds index arrays instead of hashing BranchKeys.
	// It is 1 + the compact edge ID assigned by the EVM's BranchIndexer; 0
	// means unindexed (no indexer installed, or a foreign address). Read it
	// through IndexedEdge.
	EdgeRef int32
}

// IndexedEdge returns the event's compact edge ID and whether one was
// assigned at trace time.
func (b BranchEvent) IndexedEdge() (int32, bool) {
	return b.EdgeRef - 1, b.EdgeRef > 0
}

// BranchIndexer assigns campaign-stable compact IDs to branch edges; the
// analysis package's BranchIndex implements it over the contract CFG. An
// EVM with an indexer installed interns edge identities into BranchEvents
// as they are emitted.
type BranchIndexer interface {
	EdgeID(pc uint64, taken bool) (int32, bool)
}

// CallEvent records one external CALL / DELEGATECALL / STATICCALL.
type CallEvent struct {
	ID          int
	Op          OpCode
	From        state.Address
	To          state.Address
	Value       u256.Int
	Gas         uint64
	Success     bool
	Depth       int
	TargetTaint Taint // taint of the callee address operand
	ValueTaint  Taint // taint of the value operand
	Checked     bool  // success flag later consumed by a JUMPI
	Reentered   bool  // executing the callee re-entered an active contract
}

// OverflowEvent records a wrapping arithmetic operation.
type OverflowEvent struct {
	Addr state.Address
	PC   uint64
	Op   OpCode
	A, B u256.Int
	// Stored is set when the overflowed result (tracked by taint) later
	// reaches an SSTORE or a CALL value in the same transaction.
	Stored bool
}

// SinkKind classifies where a tainted value was consumed.
type SinkKind uint8

const (
	SinkJumpCond   SinkKind = iota // JUMPI condition
	SinkCompare                    // LT/GT/SLT/SGT/EQ operand
	SinkEq                         // EQ operand specifically
	SinkCallValue                  // CALL value argument
	SinkCallTarget                 // CALL target address
	SinkStore                      // SSTORE value
)

// TaintSink records a tainted value reaching an oracle-relevant sink.
type TaintSink struct {
	Addr  state.Address
	PC    uint64
	Kind  SinkKind
	Taint Taint
}

// SStoreEvent records one storage write.
type SStoreEvent struct {
	Addr  state.Address
	Slot  u256.Int
	Value u256.Int
	Taint Taint
}

// SelfDestructEvent records a SELFDESTRUCT execution.
type SelfDestructEvent struct {
	Addr            state.Address
	Beneficiary     state.Address
	CallerIsCreator bool
	OriginIsCreator bool
}

// DelegateEvent records a DELEGATECALL execution.
type DelegateEvent struct {
	Addr            state.Address
	TargetTaint     Taint
	InputTaint      Taint
	CallerIsCreator bool
}

// ReentryEvent records a re-entry: a frame began executing a contract that
// was already active further up the call stack.
type ReentryEvent struct {
	Addr state.Address
	// Selector of the re-entered function (zero when calldata < 4 bytes).
	Selector [4]byte
	// EnabledByValueCall is true when the enabling outer call carried value
	// and more than the 2300 gas stipend — the reentrancy precondition from
	// paper §IV-D.
	EnabledByValueCall bool
}

// Trace accumulates every event of one transaction execution.
type Trace struct {
	Branches      []BranchEvent
	Calls         []CallEvent
	Overflows     []OverflowEvent
	Sinks         []TaintSink
	SStores       []SStoreEvent
	SelfDestructs []SelfDestructEvent
	Delegates     []DelegateEvent
	Reentries     []ReentryEvent
	// ExecutedOps is the set of opcodes executed, used by campaign-level
	// oracles (e.g. ether freezing).
	ExecutedOps OpSet
	// ValueOutAttempted is set when the contract attempted to move value out
	// (CALL with value, SELFDESTRUCT) regardless of success.
	ValueOutAttempted bool
	// Reverted is set when the top-level call reverted or failed.
	Reverted bool
	// Steps counts executed instructions.
	Steps int
	// PCs is the ordered program-counter path of the top-level frame; the
	// path-prefix analysis (paper §IV-C, Algorithm 3) walks it.
	PCs []uint64
}

// OpSet is a dense opcode membership set. It replaces the map the trace used
// to allocate and clear per transaction: marking is an array store, reset is
// a 256-byte memclr.
type OpSet [256]bool

// Has reports whether op is in the set.
func (s *OpSet) Has(op OpCode) bool {
	return s[op]
}

// NewTrace returns an empty trace ready for one transaction.
func NewTrace() *Trace {
	return &Trace{}
}

// Reset clears the trace for reuse, keeping the capacity of its event
// buffers. Executors recycle one Trace across transactions so the hot path
// does not reallocate eight slices per execution.
func (t *Trace) Reset() {
	t.Branches = t.Branches[:0]
	t.Calls = t.Calls[:0]
	t.Overflows = t.Overflows[:0]
	t.Sinks = t.Sinks[:0]
	t.SStores = t.SStores[:0]
	t.SelfDestructs = t.SelfDestructs[:0]
	t.Delegates = t.Delegates[:0]
	t.Reentries = t.Reentries[:0]
	t.ExecutedOps = OpSet{}
	t.ValueOutAttempted = false
	t.Reverted = false
	t.Steps = 0
	t.PCs = t.PCs[:0]
}

// markOp records op execution.
func (t *Trace) markOp(op OpCode) {
	if t == nil {
		return
	}
	t.ExecutedOps[op] = true
}

// BranchKey identifies a branch edge: a JUMPI site plus the direction taken.
// The number of distinct BranchKeys covered is the paper's coverage metric
// ("basic block transitions").
type BranchKey struct {
	Addr  state.Address
	PC    uint64
	Taken bool
}

// Key returns the coverage key of a branch event.
func (b BranchEvent) Key() BranchKey {
	return BranchKey{Addr: b.Addr, PC: b.PC, Taken: b.Taken}
}

// Opposite returns the coverage key of the direction not taken.
func (b BranchEvent) Opposite() BranchKey {
	return BranchKey{Addr: b.Addr, PC: b.PC, Taken: !b.Taken}
}
