// Package evm implements a from-scratch Ethereum Virtual Machine interpreter
// with first-class tracing hooks for fuzzing feedback.
//
// The interpreter executes real EVM bytecode (the MiniSol compiler in
// internal/minisol targets it) and exposes exactly the events MuFuzz's
// feedback loops need: JUMPI branch outcomes with comparison-operand
// provenance (branch distance, paper §IV-B), taint flags for
// environment-derived values (bug oracles, §IV-D), and per-instruction
// traces (path-prefix analysis, §IV-C).
package evm

import "fmt"

// OpCode is a single EVM instruction byte.
type OpCode byte

// Opcode values follow the Ethereum yellow paper numbering.
const (
	STOP       OpCode = 0x00
	ADD        OpCode = 0x01
	MUL        OpCode = 0x02
	SUB        OpCode = 0x03
	DIV        OpCode = 0x04
	SDIV       OpCode = 0x05
	MOD        OpCode = 0x06
	SMOD       OpCode = 0x07
	ADDMOD     OpCode = 0x08
	MULMOD     OpCode = 0x09
	EXP        OpCode = 0x0a
	SIGNEXTEND OpCode = 0x0b

	LT     OpCode = 0x10
	GT     OpCode = 0x11
	SLT    OpCode = 0x12
	SGT    OpCode = 0x13
	EQ     OpCode = 0x14
	ISZERO OpCode = 0x15
	AND    OpCode = 0x16
	OR     OpCode = 0x17
	XOR    OpCode = 0x18
	NOT    OpCode = 0x19
	BYTE   OpCode = 0x1a
	SHL    OpCode = 0x1b
	SHR    OpCode = 0x1c
	SAR    OpCode = 0x1d

	KECCAK256 OpCode = 0x20

	ADDRESS        OpCode = 0x30
	BALANCE        OpCode = 0x31
	ORIGIN         OpCode = 0x32
	CALLER         OpCode = 0x33
	CALLVALUE      OpCode = 0x34
	CALLDATALOAD   OpCode = 0x35
	CALLDATASIZE   OpCode = 0x36
	CALLDATACOPY   OpCode = 0x37
	CODESIZE       OpCode = 0x38
	CODECOPY       OpCode = 0x39
	GASPRICE       OpCode = 0x3a
	RETURNDATASIZE OpCode = 0x3d
	RETURNDATACOPY OpCode = 0x3e

	BLOCKHASH   OpCode = 0x40
	COINBASE    OpCode = 0x41
	TIMESTAMP   OpCode = 0x42
	NUMBER      OpCode = 0x43
	DIFFICULTY  OpCode = 0x44
	GASLIMIT    OpCode = 0x45
	SELFBALANCE OpCode = 0x47

	POP      OpCode = 0x50
	MLOAD    OpCode = 0x51
	MSTORE   OpCode = 0x52
	MSTORE8  OpCode = 0x53
	SLOAD    OpCode = 0x54
	SSTORE   OpCode = 0x55
	JUMP     OpCode = 0x56
	JUMPI    OpCode = 0x57
	PC       OpCode = 0x58
	MSIZE    OpCode = 0x59
	GAS      OpCode = 0x5a
	JUMPDEST OpCode = 0x5b

	PUSH1  OpCode = 0x60
	PUSH32 OpCode = 0x7f
	DUP1   OpCode = 0x80
	DUP16  OpCode = 0x8f
	SWAP1  OpCode = 0x90
	SWAP16 OpCode = 0x9f

	LOG0 OpCode = 0xa0
	LOG4 OpCode = 0xa4

	CALL         OpCode = 0xf1
	RETURN       OpCode = 0xf3
	DELEGATECALL OpCode = 0xf4
	STATICCALL   OpCode = 0xfa
	REVERT       OpCode = 0xfd
	INVALID      OpCode = 0xfe
	SELFDESTRUCT OpCode = 0xff
)

// IsPush reports whether op is PUSH1..PUSH32.
func (op OpCode) IsPush() bool { return op >= PUSH1 && op <= PUSH32 }

// PushBytes returns the immediate size of a PUSH op (0 for others).
func (op OpCode) PushBytes() int {
	if op.IsPush() {
		return int(op-PUSH1) + 1
	}
	return 0
}

// IsDup reports whether op is DUP1..DUP16.
func (op OpCode) IsDup() bool { return op >= DUP1 && op <= DUP16 }

// IsSwap reports whether op is SWAP1..SWAP16.
func (op OpCode) IsSwap() bool { return op >= SWAP1 && op <= SWAP16 }

// IsLog reports whether op is LOG0..LOG4.
func (op OpCode) IsLog() bool { return op >= LOG0 && op <= LOG4 }

// IsComparison reports whether op produces a boolean from comparing values.
func (op OpCode) IsComparison() bool {
	switch op {
	case LT, GT, SLT, SGT, EQ:
		return true
	}
	return false
}

var opNames = map[OpCode]string{
	STOP: "STOP", ADD: "ADD", MUL: "MUL", SUB: "SUB", DIV: "DIV", SDIV: "SDIV",
	MOD: "MOD", SMOD: "SMOD", ADDMOD: "ADDMOD", MULMOD: "MULMOD", EXP: "EXP",
	SIGNEXTEND: "SIGNEXTEND", LT: "LT", GT: "GT", SLT: "SLT", SGT: "SGT",
	EQ: "EQ", ISZERO: "ISZERO", AND: "AND", OR: "OR", XOR: "XOR", NOT: "NOT",
	BYTE: "BYTE", SHL: "SHL", SHR: "SHR", SAR: "SAR", KECCAK256: "KECCAK256",
	ADDRESS: "ADDRESS", BALANCE: "BALANCE", ORIGIN: "ORIGIN", CALLER: "CALLER",
	CALLVALUE: "CALLVALUE", CALLDATALOAD: "CALLDATALOAD", CALLDATASIZE: "CALLDATASIZE",
	CALLDATACOPY: "CALLDATACOPY", CODESIZE: "CODESIZE", CODECOPY: "CODECOPY",
	GASPRICE: "GASPRICE", RETURNDATASIZE: "RETURNDATASIZE", RETURNDATACOPY: "RETURNDATACOPY",
	BLOCKHASH: "BLOCKHASH", COINBASE: "COINBASE", TIMESTAMP: "TIMESTAMP",
	NUMBER: "NUMBER", DIFFICULTY: "DIFFICULTY", GASLIMIT: "GASLIMIT",
	SELFBALANCE: "SELFBALANCE", POP: "POP", MLOAD: "MLOAD", MSTORE: "MSTORE",
	MSTORE8: "MSTORE8", SLOAD: "SLOAD", SSTORE: "SSTORE", JUMP: "JUMP",
	JUMPI: "JUMPI", PC: "PC", MSIZE: "MSIZE", GAS: "GAS", JUMPDEST: "JUMPDEST",
	LOG0: "LOG0", CALL: "CALL", RETURN: "RETURN", DELEGATECALL: "DELEGATECALL",
	STATICCALL: "STATICCALL", REVERT: "REVERT", INVALID: "INVALID",
	SELFDESTRUCT: "SELFDESTRUCT",
}

// String returns the mnemonic of op.
func (op OpCode) String() string {
	if name, ok := opNames[op]; ok {
		return name
	}
	if op.IsPush() {
		return fmt.Sprintf("PUSH%d", op.PushBytes())
	}
	if op.IsDup() {
		return fmt.Sprintf("DUP%d", int(op-DUP1)+1)
	}
	if op.IsSwap() {
		return fmt.Sprintf("SWAP%d", int(op-SWAP1)+1)
	}
	if op.IsLog() {
		return fmt.Sprintf("LOG%d", int(op-LOG0))
	}
	return fmt.Sprintf("op(%#x)", byte(op))
}

// stackReq holds the pop/push arity of an opcode.
type stackReq struct{ pop, push int }

var stackReqs = map[OpCode]stackReq{
	STOP: {0, 0}, ADD: {2, 1}, MUL: {2, 1}, SUB: {2, 1}, DIV: {2, 1},
	SDIV: {2, 1}, MOD: {2, 1}, SMOD: {2, 1}, ADDMOD: {3, 1}, MULMOD: {3, 1},
	EXP: {2, 1}, SIGNEXTEND: {2, 1}, LT: {2, 1}, GT: {2, 1}, SLT: {2, 1},
	SGT: {2, 1}, EQ: {2, 1}, ISZERO: {1, 1}, AND: {2, 1}, OR: {2, 1},
	XOR: {2, 1}, NOT: {1, 1}, BYTE: {2, 1}, SHL: {2, 1}, SHR: {2, 1},
	SAR: {2, 1}, KECCAK256: {2, 1}, ADDRESS: {0, 1}, BALANCE: {1, 1},
	ORIGIN: {0, 1}, CALLER: {0, 1}, CALLVALUE: {0, 1}, CALLDATALOAD: {1, 1},
	CALLDATASIZE: {0, 1}, CALLDATACOPY: {3, 0}, CODESIZE: {0, 1},
	CODECOPY: {3, 0}, GASPRICE: {0, 1}, RETURNDATASIZE: {0, 1},
	RETURNDATACOPY: {3, 0}, BLOCKHASH: {1, 1}, COINBASE: {0, 1},
	TIMESTAMP: {0, 1}, NUMBER: {0, 1}, DIFFICULTY: {0, 1}, GASLIMIT: {0, 1},
	SELFBALANCE: {0, 1}, POP: {1, 0}, MLOAD: {1, 1}, MSTORE: {2, 0},
	MSTORE8: {2, 0}, SLOAD: {1, 1}, SSTORE: {2, 0}, JUMP: {1, 0},
	JUMPI: {2, 0}, PC: {0, 1}, MSIZE: {0, 1}, GAS: {0, 1}, JUMPDEST: {0, 0},
	CALL: {7, 1}, RETURN: {2, 0}, DELEGATECALL: {6, 1}, STATICCALL: {6, 1},
	REVERT: {2, 0}, INVALID: {0, 0}, SELFDESTRUCT: {1, 0},
}

// arityEntry is one row of the dense arity table.
type arityEntry struct {
	pop, push int8
	known     bool
}

// arityTable and gasTable are dense per-opcode lookup tables built once at
// init from the stackReqs map and the gasCostModel switch (which stay the
// single sources of truth). The interpreter's per-instruction prologue hits
// both on every step; an array index beats a map probe by an order of
// magnitude and never allocates.
var (
	arityTable [256]arityEntry
	gasTable   [256]uint64
)

func init() {
	for i := 0; i < 256; i++ {
		op := OpCode(i)
		pop, push, ok := arityOf(op)
		arityTable[i] = arityEntry{pop: int8(pop), push: int8(push), known: ok}
		gasTable[i] = gasCostModel(op)
	}
}

// Arity returns the stack pop/push counts for op, covering the parameterized
// families (PUSH/DUP/SWAP/LOG) that the table omits.
func (op OpCode) Arity() (pop, push int, ok bool) {
	e := arityTable[op]
	return int(e.pop), int(e.push), e.known
}

// arityOf computes arity from the source tables; init folds it into
// arityTable, which Arity reads.
func arityOf(op OpCode) (pop, push int, ok bool) {
	if r, found := stackReqs[op]; found {
		return r.pop, r.push, true
	}
	switch {
	case op.IsPush():
		return 0, 1, true
	case op.IsDup():
		return int(op-DUP1) + 1, int(op-DUP1) + 2, true
	case op.IsSwap():
		return int(op-SWAP1) + 2, int(op-SWAP1) + 2, true
	case op.IsLog():
		return int(op-LOG0) + 2, 0, true
	}
	return 0, 0, false
}

// gasCost returns the charge for one opcode (dense table lookup; see
// gasCostModel for the model itself).
func gasCost(op OpCode) uint64 {
	return gasTable[op]
}

// gasCostModel is a simplified constant cost model per opcode class. The
// fuzzer does not meter real Ethereum gas schedules; gas exists to bound
// execution (loops) and to reproduce the 2300-stipend reentrancy distinction.
func gasCostModel(op OpCode) uint64 {
	switch {
	case op == SSTORE:
		return 5000
	case op == SLOAD:
		return 200
	case op == BALANCE || op == SELFBALANCE:
		return 400
	case op == KECCAK256:
		return 30
	case op == CALL || op == DELEGATECALL || op == STATICCALL:
		return 700
	case op == SELFDESTRUCT:
		return 5000
	case op == EXP:
		return 60
	case op.IsLog():
		return 375
	case op == JUMPI || op == JUMP:
		return 8
	default:
		return 3
	}
}
