package evm

import (
	"testing"

	"mufuzz/internal/u256"
)

// TestDecodeTruncatedPush checks the decoder's edge case: a PUSH whose
// immediate runs off the end of code yields a truncated (not padded) Imm.
func TestDecodeTruncatedPush(t *testing.T) {
	code := []byte{byte(PUSH1 + 3), 0xaa, 0xbb} // 2 of 4 immediate bytes present
	dec := Decode(code)
	if len(dec) != 1 {
		t.Fatalf("decoded %d instrs, want 1", len(dec))
	}
	if dec[0].Op != PUSH1+3 || len(dec[0].Imm) != 2 {
		t.Fatalf("got op=%v imm=%x, want PUSH4 with 2 truncated bytes", dec[0].Op, dec[0].Imm)
	}
	// The compiled immediate must be right-padded like the switch loop's
	// materialization (PUSH4 aa bb == aabb0000 left-aligned in the low word).
	p := CompileProgram(code)
	want := u256.FromBytes([]byte{0xaa, 0xbb, 0x00, 0x00})
	if !p.instrs[0].imm.Eq(want) {
		t.Fatalf("compiled imm = %s, want %s", p.instrs[0].imm, want)
	}
}

// TestDecodeSkipsImmediates checks that JUMPDEST bytes inside a PUSH
// immediate are not decoded as instructions and are invalid jump targets.
func TestDecodeSkipsImmediates(t *testing.T) {
	code := []byte{byte(PUSH1 + 1), byte(JUMPDEST), byte(JUMPDEST), byte(STOP)}
	dec := Decode(code)
	if len(dec) != 2 || dec[0].Op != PUSH1+1 || dec[1].Op != STOP {
		t.Fatalf("decode = %+v, want [PUSH2 STOP]", dec)
	}
	p := CompileProgram(code)
	for pc, ok := range p.JumpDests() {
		if ok {
			t.Fatalf("pc %d marked as valid JUMPDEST inside an immediate", pc)
		}
	}
}

// TestCompileProgramPcTable checks the O(1) jump table: every instruction pc
// maps to its index, immediates map to the implicit-STOP sentinel.
func TestCompileProgramPcTable(t *testing.T) {
	a := NewAssembler()
	a.PushUint(1).PushUint(2).Op(ADD).Op(STOP)
	code := a.MustBuild()
	p := CompileProgram(code)
	dec := Decode(code)
	for i, ins := range dec {
		if got := p.pcToIdx[ins.PC]; got != int32(i) {
			t.Errorf("pcToIdx[%d] = %d, want %d", ins.PC, got, i)
		}
	}
	if got := p.pcToIdx[len(code)]; got != int32(len(p.instrs)) {
		t.Errorf("pcToIdx[len(code)] = %d, want sentinel %d", got, len(p.instrs))
	}
}

// TestCompileProgramFusesDispatcher checks that the solc/MiniSol dispatcher
// arm (DUP1 PUSH4 sel EQ PUSH dst JUMPI) and the cmp-jumpi pattern are
// recognized as superinstructions.
func TestCompileProgramFusesDispatcher(t *testing.T) {
	a := NewAssembler()
	// Dispatcher arm: DUP1; PUSH4 selector; EQ; PUSH dst; JUMPI.
	a.Op(DUP1).PushBytes([]byte{0x11, 0x22, 0x33, 0x44}).Op(EQ)
	a.JumpITo("fn")
	// Cmp-jumpi: LT; PUSH dst; JUMPI.
	a.PushUint(1).PushUint(2).Op(LT)
	a.JumpITo("fn")
	a.Op(STOP)
	a.Label("fn").Op(STOP)
	p := CompileProgram(a.MustBuild())
	if p.NumFused() < 2 {
		t.Fatalf("NumFused = %d, want >= 2 (dispatcher arm + cmp-jumpi)", p.NumFused())
	}
	if p.NumBlocks() < 2 {
		t.Fatalf("NumBlocks = %d, want >= 2", p.NumBlocks())
	}
}

// benchEnv builds a fresh EVM per sub-benchmark so the ir and switch variants
// never share a program cache or trace.
func benchIRvsSwitch(b *testing.B, code []byte, input []byte) {
	for _, variant := range []struct {
		name      string
		disableIR bool
	}{{"ir", false}, {"switch", true}} {
		b.Run(variant.name, func(b *testing.B) {
			e, sender, contract := testEnv(b, code)
			e.DisableIR = variant.disableIR
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Trace.Reset()
				if _, err := e.Transact(sender, contract, u256.Zero, input, 10_000_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIRArith measures a tight arithmetic loop — the pure-dispatch cost
// the IR's pre-decoded stream and fused cmp-jumpi target.
func BenchmarkIRArith(b *testing.B) {
	a := NewAssembler()
	a.PushUint(200)
	a.Label("loop")
	a.PushUint(1).Op(SWAP1).Op(SUB)
	a.Op(DUP1).PushUint(3).Op(MUL).Op(DUP1 + 1).Op(XOR).Op(POP)
	a.Op(DUP1)
	a.JumpITo("loop")
	a.Op(STOP)
	benchIRvsSwitch(b, a.MustBuild(), nil)
}

// BenchmarkIRStorage measures SLOAD/SSTORE round-trips — exercises the
// dup-sload fusion and the storage fast path under the IR.
func BenchmarkIRStorage(b *testing.B) {
	a := NewAssembler()
	a.PushUint(20)
	a.Label("loop")
	// slot0 := slot0 + counter
	a.PushUint(0).Op(SLOAD)
	a.Op(DUP1 + 1).Op(ADD)
	a.PushUint(0).Op(SSTORE)
	a.PushUint(1).Op(SWAP1).Op(SUB)
	a.Op(DUP1)
	a.JumpITo("loop")
	a.Op(STOP)
	benchIRvsSwitch(b, a.MustBuild(), nil)
}

// BenchmarkIRDispatch measures a solc-style selector dispatcher — the
// fuseDispatch superinstruction's home turf. The calldata selects the last
// arm so every arm's compare executes.
func BenchmarkIRDispatch(b *testing.B) {
	a := NewAssembler()
	a.PushUint(0).Op(CALLDATALOAD).PushUint(224).Op(SHR)
	sels := [][]byte{
		{0x10, 0x00, 0x00, 0x01}, {0x10, 0x00, 0x00, 0x02}, {0x10, 0x00, 0x00, 0x03},
		{0x10, 0x00, 0x00, 0x04}, {0x10, 0x00, 0x00, 0x05}, {0x10, 0x00, 0x00, 0x06},
	}
	labels := []string{"f1", "f2", "f3", "f4", "f5", "f6"}
	for i, sel := range sels {
		a.Op(DUP1).PushBytes(sel).Op(EQ)
		a.JumpITo(labels[i])
	}
	a.Op(STOP)
	for _, l := range labels {
		a.Label(l).PushUint(7).PushUint(0).Op(SSTORE).Op(STOP)
	}
	// Select the last arm: all six compares run each transaction.
	input := make([]byte, 32)
	copy(input, sels[len(sels)-1])
	benchIRvsSwitch(b, a.MustBuild(), input)
}
