// Package experiments reproduces every table and figure of the paper's
// evaluation (§V). Each experiment is a pure function from a dataset and
// budget to a structured result, shared by the benchtab CLI and the
// top-level benchmarks; printers render the same rows/series the paper
// reports.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"mufuzz/internal/corpus"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
	"mufuzz/internal/staticcheck"
)

// FuzzerSpec names a fuzzer configuration under comparison.
type FuzzerSpec struct {
	Name     string
	Strategy fuzz.Strategy
}

// StandardFuzzers returns the four fuzzers of Fig. 5/6 in the paper's order.
func StandardFuzzers() []FuzzerSpec {
	return []FuzzerSpec{
		{"MuFuzz", fuzz.MuFuzz()},
		{"IR-Fuzz", fuzz.IRFuzz()},
		{"ConFuzzius", fuzz.ConFuzzius()},
		{"sFuzz", fuzz.SFuzz()},
	}
}

// parallelism bounds concurrent campaigns.
func parallelism() int {
	n := runtime.NumCPU() - 1
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}

// campaignWorkers budgets the machine between inter-campaign parallelism
// (the forEach pool runs one campaign per contract) and intra-campaign
// parallelism (Options.Workers fans each energy round across executor
// goroutines). When a dataset has fewer contracts than the machine has
// cores, the leftover cores go to the engine; a dataset that saturates the
// pool keeps the sequential (and exactly reproducible) per-campaign engine.
//
// Note the trade-off: because Workers > 1 selects the batched engine (a
// different, though still seeded, mutation schedule), absolute experiment
// numbers on underfilled machines depend on the core count. Comparisons
// within one run stay fair — every fuzzer/variant gets the same worker
// budget — which is the reproduction target (see cmd/benchtab's header);
// for bit-identical numbers across machines, run datasets at least as large
// as the core count or pin GOMAXPROCS=1.
func campaignWorkers(nCampaigns int) int {
	pool := parallelism()
	if pool > nCampaigns {
		pool = nCampaigns
	}
	if pool < 1 {
		pool = 1
	}
	// GOMAXPROCS(0), not NumCPU: it honors the documented GOMAXPROCS=1
	// escape hatch for bit-identical cross-machine numbers.
	w := runtime.GOMAXPROCS(0) / pool
	if w < 1 {
		w = 1
	}
	if w > 8 {
		w = 8
	}
	return w
}

// forEach runs fn over [0,n) on a worker pool.
func forEach(n int, fn func(i int)) {
	workers := parallelism()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// compileAll compiles a generated dataset, failing loudly on any error.
func compileAll(gens []corpus.Generated) ([]*minisol.Compiled, error) {
	out := make([]*minisol.Compiled, len(gens))
	var firstErr error
	var mu sync.Mutex
	forEach(len(gens), func(i int) {
		comp, err := minisol.Compile(gens[i].Source)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", gens[i].Name, err)
			}
			mu.Unlock()
			return
		}
		out[i] = comp
	})
	return out, firstErr
}

// --- Fig. 5: branch coverage over time ---

// CurvePoint is one sample of an averaged coverage curve.
type CurvePoint struct {
	// Fraction of the iteration budget consumed (0..1].
	BudgetFrac float64
	// Coverage is the mean branch coverage across the dataset at that point.
	Coverage float64
}

// CoverageCurve is the averaged coverage-over-time series of one fuzzer.
type CoverageCurve struct {
	Fuzzer string
	Points []CurvePoint
	Final  float64
}

// defaultCheckpoints mirror the paper's time axis as budget fractions.
var defaultCheckpoints = []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.75, 1.0}

// CoverageOverTime runs every fuzzer over the dataset and averages coverage
// at budget-fraction checkpoints (experiment E1/E2, Fig. 5).
func CoverageOverTime(gens []corpus.Generated, fuzzers []FuzzerSpec, iterations int, seed int64) ([]CoverageCurve, error) {
	comps, err := compileAll(gens)
	if err != nil {
		return nil, err
	}
	curves := make([]CoverageCurve, len(fuzzers))
	for fi, spec := range fuzzers {
		// per-contract coverage at each checkpoint
		perContract := make([][]float64, len(comps))
		finals := make([]float64, len(comps))
		spec := spec
		forEach(len(comps), func(ci int) {
			res := fuzz.Run(comps[ci], fuzz.Options{
				Strategy:   spec.Strategy,
				Seed:       seed + int64(ci),
				Iterations: iterations,
				Workers:    campaignWorkers(len(comps)),
			})
			finals[ci] = res.Coverage
			pts := make([]float64, len(defaultCheckpoints))
			for pi, frac := range defaultCheckpoints {
				limit := int(frac * float64(iterations))
				cov := 0.0
				for _, tp := range res.Timeline {
					if tp.Executions <= limit && tp.Coverage > cov {
						cov = tp.Coverage
					}
				}
				pts[pi] = cov
			}
			perContract[ci] = pts
		})
		curve := CoverageCurve{Fuzzer: spec.Name}
		for pi, frac := range defaultCheckpoints {
			sum := 0.0
			for ci := range comps {
				sum += perContract[ci][pi]
			}
			curve.Points = append(curve.Points, CurvePoint{
				BudgetFrac: frac,
				Coverage:   sum / float64(len(comps)),
			})
		}
		sumF := 0.0
		for _, f := range finals {
			sumF += f
		}
		curve.Final = sumF / float64(len(finals))
		curves[fi] = curve
	}
	return curves, nil
}

// PrintCoverageCurves renders the Fig. 5 series as a text table.
func PrintCoverageCurves(w io.Writer, title string, curves []CoverageCurve) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s", "budget%")
	for _, c := range curves {
		fmt.Fprintf(w, "%12s", c.Fuzzer)
	}
	fmt.Fprintln(w)
	for pi := range curves[0].Points {
		fmt.Fprintf(w, "%-12.0f", curves[0].Points[pi].BudgetFrac*100)
		for _, c := range curves {
			fmt.Fprintf(w, "%11.1f%%", c.Points[pi].Coverage*100)
		}
		fmt.Fprintln(w)
	}
}

// --- Fig. 6: overall coverage bars ---

// CoverageBar is one fuzzer's final coverage on one dataset.
type CoverageBar struct {
	Fuzzer   string
	Coverage float64
}

// OverallCoverage runs every fuzzer to the full budget and reports final
// average coverage (experiment E3, Fig. 6).
func OverallCoverage(gens []corpus.Generated, fuzzers []FuzzerSpec, iterations int, seed int64) ([]CoverageBar, error) {
	curves, err := CoverageOverTime(gens, fuzzers, iterations, seed)
	if err != nil {
		return nil, err
	}
	bars := make([]CoverageBar, len(curves))
	for i, c := range curves {
		bars[i] = CoverageBar{Fuzzer: c.Fuzzer, Coverage: c.Final}
	}
	return bars, nil
}

// PrintCoverageBars renders Fig. 6 style bars.
func PrintCoverageBars(w io.Writer, title string, bars []CoverageBar) {
	fmt.Fprintf(w, "%s\n", title)
	for _, b := range bars {
		stars := int(b.Coverage * 40)
		fmt.Fprintf(w, "  %-12s %5.1f%% %s\n", b.Fuzzer, b.Coverage*100, bar(stars))
	}
}

func bar(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// --- Table III: bug detection TP/FN per class per tool ---

// ToolKind distinguishes how a tool is executed.
type ToolKind int

// Tool kinds.
const (
	ToolFuzzer ToolKind = iota
	ToolStatic
)

// ToolSpec is one column of Table III.
type ToolSpec struct {
	Name     string
	Kind     ToolKind
	Strategy fuzz.Strategy // fuzzers only
}

// StandardTools returns the Table III tool set: one static analyzer baseline
// plus the fuzzer family.
func StandardTools() []ToolSpec {
	return []ToolSpec{
		{Name: "StaticCheck", Kind: ToolStatic},
		{Name: "sFuzz", Kind: ToolFuzzer, Strategy: fuzz.SFuzz()},
		{Name: "ConFuzzius", Kind: ToolFuzzer, Strategy: fuzz.ConFuzzius()},
		{Name: "Smartian", Kind: ToolFuzzer, Strategy: fuzz.Smartian()},
		{Name: "IR-Fuzz", Kind: ToolFuzzer, Strategy: fuzz.IRFuzz()},
		{Name: "MuFuzz", Kind: ToolFuzzer, Strategy: fuzz.MuFuzz()},
	}
}

// ClassScore is TP/FN for one bug class.
type ClassScore struct {
	TP, FN int
}

// DetectionResult is one tool's Table III column plus FP info from the safe
// suite.
type DetectionResult struct {
	Tool     string
	PerClass map[oracle.BugClass]*ClassScore
	TotalTP  int
	TotalFN  int
	// FalsePositives counts classes flagged on contracts not labelled with
	// them (vulnerable suite) plus anything flagged on the safe suite.
	FalsePositives int
}

// BugDetection scores every tool against the labelled suite (experiment E4,
// Table III) and the safe suite (the §V-C false-positive analysis).
func BugDetection(suite, safe []corpus.Labeled, tools []ToolSpec, iterations int, seed int64) ([]DetectionResult, error) {
	type compiled struct {
		labeled corpus.Labeled
		comp    *minisol.Compiled
	}
	var all []compiled
	for _, l := range append(append([]corpus.Labeled{}, suite...), safe...) {
		comp, err := minisol.Compile(l.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", l.Name, err)
		}
		all = append(all, compiled{l, comp})
	}

	results := make([]DetectionResult, len(tools))
	for ti, tool := range tools {
		res := DetectionResult{Tool: tool.Name, PerClass: map[oracle.BugClass]*ClassScore{}}
		for _, c := range oracle.AllClasses {
			res.PerClass[c] = &ClassScore{}
		}
		detected := make([]map[oracle.BugClass]bool, len(all))
		tool := tool
		forEach(len(all), func(i int) {
			switch tool.Kind {
			case ToolStatic:
				detected[i] = staticcheck.Classes(staticcheck.Analyze(all[i].comp))
			default:
				r := fuzz.Run(all[i].comp, fuzz.Options{
					Strategy:   tool.Strategy,
					Seed:       seed + int64(i),
					Iterations: iterations,
					Workers:    campaignWorkers(len(all)),
				})
				detected[i] = r.BugClasses
			}
		})
		for i, entry := range all {
			for _, c := range oracle.AllClasses {
				has := entry.labeled.HasLabel(c)
				got := detected[i][c]
				switch {
				case has && got:
					res.PerClass[c].TP++
					res.TotalTP++
				case has && !got:
					res.PerClass[c].FN++
					res.TotalFN++
				case !has && got:
					res.FalsePositives++
				}
			}
		}
		results[ti] = res
	}
	return results, nil
}

// PrintDetectionTable renders Table III.
func PrintDetectionTable(w io.Writer, results []DetectionResult) {
	fmt.Fprintf(w, "Table III analog — TP / FN per bug class (FP on unlabelled code in last column)\n")
	fmt.Fprintf(w, "%-12s", "Tool")
	for _, c := range oracle.AllClasses {
		fmt.Fprintf(w, "%10s", c)
	}
	fmt.Fprintf(w, "%14s%6s\n", "Total TP/FN", "FP")
	for _, r := range results {
		fmt.Fprintf(w, "%-12s", r.Tool)
		for _, c := range oracle.AllClasses {
			s := r.PerClass[c]
			fmt.Fprintf(w, "%10s", fmt.Sprintf("%d/%d", s.TP, s.FN))
		}
		fmt.Fprintf(w, "%14s%6d\n", fmt.Sprintf("%d/%d", r.TotalTP, r.TotalFN), r.FalsePositives)
	}
}

// --- Fig. 7: ablation ---

// AblationRow is one variant's share of the full system's performance.
type AblationRow struct {
	Variant      string
	CoverageFrac float64 // achieved coverage / full MuFuzz coverage
	BugsFrac     float64 // detected labelled bugs / full MuFuzz detections
}

// Ablation runs full MuFuzz and the three single-component-removed variants
// over the dataset (experiment E5, Fig. 7).
func Ablation(gens []corpus.Generated, iterations int, seed int64) ([]AblationRow, error) {
	comps, err := compileAll(gens)
	if err != nil {
		return nil, err
	}
	variants := append([]fuzz.Strategy{fuzz.MuFuzz()}, fuzz.Ablations()...)
	coverage := make([]float64, len(variants))
	bugs := make([]int, len(variants))
	for vi, strat := range variants {
		covs := make([]float64, len(comps))
		found := make([]int, len(comps))
		strat := strat
		forEach(len(comps), func(ci int) {
			res := fuzz.Run(comps[ci], fuzz.Options{
				Strategy:   strat,
				Seed:       seed + int64(ci),
				Iterations: iterations,
				Workers:    campaignWorkers(len(comps)),
			})
			covs[ci] = res.Coverage
			for _, c := range gens[ci].Labels {
				if res.BugClasses[c] {
					found[ci]++
				}
			}
		})
		for ci := range comps {
			coverage[vi] += covs[ci]
			bugs[vi] += found[ci]
		}
		coverage[vi] /= float64(len(comps))
	}

	rows := make([]AblationRow, len(variants))
	for vi, strat := range variants {
		row := AblationRow{Variant: strat.Name}
		if coverage[0] > 0 {
			row.CoverageFrac = coverage[vi] / coverage[0]
		}
		if bugs[0] > 0 {
			row.BugsFrac = float64(bugs[vi]) / float64(bugs[0])
		} else {
			row.BugsFrac = 1
		}
		rows[vi] = row
	}
	return rows, nil
}

// PrintAblation renders Fig. 7.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  %-44s %10s %10s\n", "Variant", "coverage", "bugs")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-44s %9.0f%% %9.0f%%\n", r.Variant, r.CoverageFrac*100, r.BugsFrac*100)
	}
}

// --- Table IV: real-world case study ---

// CaseStudyRow is one bug class row of Table IV.
type CaseStudyRow struct {
	Class    oracle.BugClass
	Reported int
	TP       int
	FP       int
}

// CaseStudyResult is the Table IV analog.
type CaseStudyResult struct {
	Rows            []CaseStudyRow
	TotalReported   int
	TotalTP         int
	TotalFP         int
	AverageCoverage float64
	Flagged         int // contracts with at least one alarm
	Contracts       int
}

// CaseStudy fuzzes the complex corpus with MuFuzz and audits alarms against
// the generator's ground truth (experiment E6, Table IV).
func CaseStudy(gens []corpus.Generated, iterations int, seed int64) (*CaseStudyResult, error) {
	comps, err := compileAll(gens)
	if err != nil {
		return nil, err
	}
	perClass := map[oracle.BugClass]*CaseStudyRow{}
	for _, c := range oracle.AllClasses {
		perClass[c] = &CaseStudyRow{Class: c}
	}
	covs := make([]float64, len(comps))
	classes := make([]map[oracle.BugClass]bool, len(comps))
	forEach(len(comps), func(ci int) {
		res := fuzz.Run(comps[ci], fuzz.Options{
			Strategy:   fuzz.MuFuzz(),
			Seed:       seed + int64(ci),
			Iterations: iterations,
			Workers:    campaignWorkers(len(comps)),
		})
		covs[ci] = res.Coverage
		classes[ci] = res.BugClasses
	})

	out := &CaseStudyResult{Contracts: len(comps)}
	for ci := range comps {
		flagged := false
		for _, c := range oracle.AllClasses {
			if !classes[ci][c] {
				continue
			}
			flagged = true
			perClass[c].Reported++
			if gens[ci].HasLabel(c) {
				perClass[c].TP++
			} else {
				perClass[c].FP++
			}
		}
		if flagged {
			out.Flagged++
		}
		out.AverageCoverage += covs[ci]
	}
	out.AverageCoverage /= float64(len(comps))
	for _, c := range oracle.AllClasses {
		r := perClass[c]
		out.Rows = append(out.Rows, *r)
		out.TotalReported += r.Reported
		out.TotalTP += r.TP
		out.TotalFP += r.FP
	}
	return out, nil
}

// PrintCaseStudy renders Table IV.
func PrintCaseStudy(w io.Writer, r *CaseStudyResult) {
	fmt.Fprintf(w, "Table IV analog — real-world case study (%d complex contracts)\n", r.Contracts)
	fmt.Fprintf(w, "  %-8s %10s %6s %6s\n", "Bug ID", "Reported", "TP", "FP")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8s %10d %6d %6d\n", row.Class, row.Reported, row.TP, row.FP)
	}
	fmt.Fprintf(w, "  %-8s %10d %6d %6d\n", "Total", r.TotalReported, r.TotalTP, r.TotalFP)
	fmt.Fprintf(w, "  Contracts flagged: %d/%d\n", r.Flagged, r.Contracts)
	fmt.Fprintf(w, "  Average coverage: %.2f%%\n", r.AverageCoverage*100)
}

// --- §III-B motivating example ---

// MotivatingResult records which fuzzers crack the Crowdsale deep branch.
type MotivatingResult struct {
	Fuzzer     string
	DeepBranch bool
	Coverage   float64
	Executions int
}

// Motivating runs the four fuzzers on the paper's Fig. 1 contract and checks
// who reaches the withdraw phase==1 branch (experiment E8).
func Motivating(iterations int, seed int64) ([]MotivatingResult, error) {
	comp, err := minisol.Compile(corpus.Crowdsale())
	if err != nil {
		return nil, err
	}
	var withdrawIf uint64
	for _, s := range comp.Branches {
		if s.Func == "withdraw" && s.Kind == minisol.BranchIf {
			withdrawIf = s.PC
		}
	}
	var out []MotivatingResult
	for _, spec := range StandardFuzzers() {
		c := fuzz.NewCampaign(comp, fuzz.Options{
			Strategy:   spec.Strategy,
			Seed:       seed,
			Iterations: iterations,
		})
		res := c.Run()
		reached := c.EdgeCovered(withdrawIf, false)
		out = append(out, MotivatingResult{
			Fuzzer:     spec.Name,
			DeepBranch: reached,
			Coverage:   res.Coverage,
			Executions: res.Executions,
		})
	}
	return out, nil
}

// PrintMotivating renders the §III-B comparison.
func PrintMotivating(w io.Writer, rows []MotivatingResult) {
	fmt.Fprintln(w, "Motivating example (Fig. 1 Crowdsale) — who reaches the withdraw phase==1 branch")
	for _, r := range rows {
		mark := "missed"
		if r.DeepBranch {
			mark = "REACHED"
		}
		fmt.Fprintf(w, "  %-12s %-8s coverage %5.1f%% (%d execs)\n", r.Fuzzer, mark, r.Coverage*100, r.Executions)
	}
}

// --- Table II: dataset summary ---

// DatasetStats summarizes one corpus.
type DatasetStats struct {
	Name      string
	Contracts int
	AvgCode   int // average bytecode bytes
	AvgFuncs  float64
	Labels    int
}

// Datasets builds the Table II analog over all three corpora.
func Datasets(seed int64, nSmall, nLarge, nComplex int) ([]DatasetStats, error) {
	stat := func(name string, gens []corpus.Generated) (DatasetStats, error) {
		s := DatasetStats{Name: name, Contracts: len(gens)}
		for _, g := range gens {
			comp, err := minisol.Compile(g.Source)
			if err != nil {
				return s, err
			}
			s.AvgCode += len(comp.Code)
			s.AvgFuncs += float64(len(comp.Contract.Functions))
			s.Labels += len(g.Labels)
		}
		s.AvgCode /= len(gens)
		s.AvgFuncs /= float64(len(gens))
		return s, nil
	}
	var out []DatasetStats
	small, err := stat("D1-small (generated)", corpus.GenerateSmall(seed, nSmall))
	if err != nil {
		return nil, err
	}
	large, err := stat("D1-large (generated)", corpus.GenerateLarge(seed, nLarge))
	if err != nil {
		return nil, err
	}
	complexStats, err := stat("D3 (generated complex)", corpus.GenerateComplex(seed, nComplex))
	if err != nil {
		return nil, err
	}
	out = append(out, small, large)

	suite := corpus.VulnSuite()
	d2 := DatasetStats{Name: "D2 (labelled suite)", Contracts: len(suite)}
	for _, l := range suite {
		comp, err := minisol.Compile(l.Source)
		if err != nil {
			return nil, err
		}
		d2.AvgCode += len(comp.Code)
		d2.AvgFuncs += float64(len(comp.Contract.Functions))
		d2.Labels += len(l.Labels)
	}
	d2.AvgCode /= len(suite)
	d2.AvgFuncs /= float64(len(suite))
	out = append(out, d2, complexStats)
	return out, nil
}

// PrintDatasets renders Table II.
func PrintDatasets(w io.Writer, stats []DatasetStats) {
	fmt.Fprintln(w, "Table II analog — benchmark datasets")
	fmt.Fprintf(w, "  %-26s %10s %10s %8s %8s\n", "Dataset", "contracts", "avg code", "avg fns", "labels")
	for _, s := range stats {
		fmt.Fprintf(w, "  %-26s %10d %9dB %8.1f %8d\n", s.Name, s.Contracts, s.AvgCode, s.AvgFuncs, s.Labels)
	}
}

// SortClasses returns bug classes sorted for stable output.
func SortClasses(m map[oracle.BugClass]bool) []oracle.BugClass {
	var out []oracle.BugClass
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
