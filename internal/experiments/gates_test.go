package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"mufuzz/internal/corpus"
)

// ConformanceTierEnv opts in to the full-budget conformance-tier tests
// (the detection gate and the whole-suite minimize property test). They are
// skipped by default so the main `go test -race ./...` job keeps its
// wall-clock; CI's conformance job and `cmd/conform` run them on every push.
const ConformanceTierEnv = "MUFUZZ_CONFORMANCE"

// TestDetectionGateSWCAndExtra is the corpus-wide detection gate: the full
// MuFuzz preset must find every labelled bug of the SWC and incident suites
// (20 contracts) within the fixed budget, and must raise zero alarms on the
// safe corpus. This is the conformance tier's end-to-end pin on detection
// power — if a refactor weakens an oracle or the mutation engine, this test
// names the exact contract and bug class that regressed.
func TestDetectionGateSWCAndExtra(t *testing.T) {
	if os.Getenv(ConformanceTierEnv) == "" {
		t.Skipf("full-budget gate: set %s=1 (runs in the CI conformance job; also via `conform -mode gate`)", ConformanceTierEnv)
	}
	report, err := DetectionGate(GatedSuites(), corpus.SafeSuite(), GateBudget, GateSeed)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(corpus.SWCSuite()) + len(corpus.ExtraSuite()); report.Vulnerable != want {
		t.Fatalf("gate covers %d vulnerable contracts, want %d", report.Vulnerable, want)
	}
	if report.Pass() {
		return
	}
	var buf bytes.Buffer
	PrintGate(&buf, report)
	t.Fatalf("detection gate failed:\n%s", buf.String())
}

// TestGateReportShape checks the report bookkeeping on a miss: an
// undetectable label must surface as a named miss, not silently pass.
func TestGateReportShape(t *testing.T) {
	// A contract that is genuinely safe but labelled with another contract's
	// bug classes can never be caught: the gate must report the miss.
	report, err := DetectionGate([]corpus.Labeled{{
		Name:   "mislabelled_safe",
		Source: corpus.SafeSuite()[0].Source,
		Labels: corpus.SWCSuite()[0].Labels,
	}}, nil, 200, GateSeed)
	if err != nil {
		t.Fatal(err)
	}
	if report.Pass() {
		t.Fatal("gate passed a mislabelled contract")
	}
	if len(report.Misses) != 1 || report.Misses[0].Contract != "mislabelled_safe" {
		t.Fatalf("misses = %+v", report.Misses)
	}
	var buf bytes.Buffer
	PrintGate(&buf, report)
	if !strings.Contains(buf.String(), "FAIL") || !strings.Contains(buf.String(), "mislabelled_safe") {
		t.Errorf("report rendering lost the miss:\n%s", buf.String())
	}
}
