package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mufuzz/internal/corpus"
	"mufuzz/internal/oracle"
)

const (
	testIters = 800
	testSeed  = 7
)

func TestCoverageOverTimeShape(t *testing.T) {
	gens := corpus.GenerateSmall(testSeed, 6)
	curves, err := CoverageOverTime(gens, StandardFuzzers(), testIters, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("curves = %d", len(curves))
	}
	for _, c := range curves {
		if len(c.Points) == 0 {
			t.Fatalf("%s: empty curve", c.Fuzzer)
		}
		// monotone non-decreasing over budget
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Coverage+1e-9 < c.Points[i-1].Coverage {
				t.Errorf("%s: coverage decreased along budget", c.Fuzzer)
			}
		}
		if c.Final <= 0 || c.Final > 1 {
			t.Errorf("%s: final coverage %f out of range", c.Fuzzer, c.Final)
		}
	}
	var buf bytes.Buffer
	PrintCoverageCurves(&buf, "test", curves)
	if !strings.Contains(buf.String(), "MuFuzz") {
		t.Error("printer lost fuzzer names")
	}
}

func TestOverallCoverageOrdering(t *testing.T) {
	gens := corpus.GenerateSmall(testSeed+1, 8)
	bars, err := OverallCoverage(gens, StandardFuzzers(), testIters, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, b := range bars {
		byName[b.Fuzzer] = b.Coverage
	}
	// The headline shape: MuFuzz >= sFuzz on average. (Small budgets are
	// noisy; full-strength comparisons live in benchtab/EXPERIMENTS.md.)
	if byName["MuFuzz"] < byName["sFuzz"]-0.05 {
		t.Errorf("MuFuzz %.2f clearly below sFuzz %.2f", byName["MuFuzz"], byName["sFuzz"])
	}
}

func TestBugDetectionScoring(t *testing.T) {
	// Use a small suite slice to keep runtime bounded.
	suite := corpus.VulnSuite()[:6]
	safe := corpus.SafeSuite()[:2]
	tools := []ToolSpec{
		{Name: "StaticCheck", Kind: ToolStatic},
		StandardTools()[5], // MuFuzz
	}
	results, err := BugDetection(suite, safe, tools, testIters, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		total := 0
		for _, c := range oracle.AllClasses {
			total += r.PerClass[c].TP + r.PerClass[c].FN
		}
		if total != r.TotalTP+r.TotalFN {
			t.Errorf("%s: per-class totals inconsistent", r.Tool)
		}
		labelCount := 0
		for _, l := range suite {
			labelCount += len(l.Labels)
		}
		if r.TotalTP+r.TotalFN != labelCount {
			t.Errorf("%s: TP+FN=%d, labels=%d", r.Tool, r.TotalTP+r.TotalFN, labelCount)
		}
	}
	var buf bytes.Buffer
	PrintDetectionTable(&buf, results)
	if !strings.Contains(buf.String(), "StaticCheck") {
		t.Error("printer lost tool names")
	}
}

func TestAblationBaselineIsOne(t *testing.T) {
	gens := corpus.GenerateSmall(testSeed+2, 4)
	rows, err := Ablation(gens, testIters, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].CoverageFrac != 1 || rows[0].BugsFrac != 1 {
		t.Errorf("full system must be the 100%% baseline: %+v", rows[0])
	}
	for _, r := range rows[1:] {
		if r.CoverageFrac <= 0 {
			t.Errorf("%s: nonpositive coverage fraction", r.Variant)
		}
	}
}

func TestCaseStudyAccounting(t *testing.T) {
	gens := corpus.GenerateComplex(testSeed+3, 3)
	res, err := CaseStudy(gens, testIters, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contracts != 3 {
		t.Errorf("contracts = %d", res.Contracts)
	}
	sumR, sumTP, sumFP := 0, 0, 0
	for _, row := range res.Rows {
		sumR += row.Reported
		sumTP += row.TP
		sumFP += row.FP
		if row.TP+row.FP != row.Reported {
			t.Errorf("%s: TP+FP != Reported", row.Class)
		}
	}
	if sumR != res.TotalReported || sumTP != res.TotalTP || sumFP != res.TotalFP {
		t.Error("totals inconsistent")
	}
	if res.AverageCoverage <= 0 || res.AverageCoverage > 1 {
		t.Errorf("avg coverage %f out of range", res.AverageCoverage)
	}
}

func TestMotivatingSeparation(t *testing.T) {
	rows, err := Motivating(1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]bool{}
	for _, r := range rows {
		byName[r.Fuzzer] = r.DeepBranch
	}
	if !byName["MuFuzz"] {
		t.Error("MuFuzz must reach the deep branch")
	}
	if byName["sFuzz"] {
		t.Error("sFuzz (permutation sequences) must not reach the deep branch")
	}
	if byName["ConFuzzius"] {
		t.Error("ConFuzzius (no repetition) must not reach the deep branch")
	}
}

func TestDatasetsStats(t *testing.T) {
	stats, err := Datasets(testSeed, 4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("stats = %d", len(stats))
	}
	for _, s := range stats {
		if s.Contracts == 0 || s.AvgCode == 0 {
			t.Errorf("%s: empty stats", s.Name)
		}
	}
	// large must exceed small in average code size
	if stats[1].AvgCode <= stats[0].AvgCode {
		t.Error("large dataset should have bigger contracts")
	}
}
