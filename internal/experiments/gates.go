package experiments

import (
	"fmt"
	"io"
	"sort"

	"mufuzz/internal/corpus"
	"mufuzz/internal/fuzz"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
)

// The corpus-wide detection gates (conformance tier). Unlike the Table III
// experiment — which scores tools comparatively and tolerates misses — the
// gate is a hard pass/fail pin on the full MuFuzz preset: every label on
// every contract of the gated suites must be detected within a fixed
// iteration budget, and the safe corpus must produce zero alarms. A refactor
// that silently weakens an oracle, the sequence mutator, or the feedback
// loop fails the gate even when aggregate benchmark numbers still look fine.

// GateBudget is the fixed per-contract iteration budget of the detection
// gate. It is deliberately a small multiple of what the suite needs at the
// gate seed, so detection-power regressions surface as gate failures instead
// of disappearing into a generous budget.
const GateBudget = 3000

// GateSeed pins the campaign seed of the gate. Campaigns run Workers=1, so
// gate results are bit-identical on every machine.
const GateSeed = 1

// WorldGateBudget is the iteration budget of the multi-contract world
// separation gate (the bank-reentrant fixture with attacker synthesis on).
// The schedule needs a same-sender deposit+withdraw from the attacker
// account, a solvent bank, and the attacker spec mutated onto the withdraw
// selector; at WorldGateSeed the campaign cracks it well inside 5000
// executions, so 8000 leaves detection-power headroom without masking
// regressions.
const WorldGateBudget = 8000

// WorldGateSeed pins the world separation gate's campaign seed.
const WorldGateSeed = 1

// GateEntry is one contract's gate outcome.
type GateEntry struct {
	Contract string
	Labels   []oracle.BugClass // ground truth
	Detected []oracle.BugClass // classes the campaign found (sorted)
	Missing  []oracle.BugClass // labels not detected (vulnerable contracts)
	Spurious []oracle.BugClass // detections on a safe contract
}

// GateReport is the outcome of one detection-gate run.
type GateReport struct {
	Budget     int
	Seed       int64
	Vulnerable int // contracts gated for detection
	Safe       int // contracts gated for false positives
	// Misses lists vulnerable contracts with at least one undetected label.
	Misses []GateEntry
	// FalsePositives lists safe contracts with at least one alarm.
	FalsePositives []GateEntry
}

// Pass reports whether the gate holds: every label detected, no safe-corpus
// alarms.
func (r *GateReport) Pass() bool {
	return len(r.Misses) == 0 && len(r.FalsePositives) == 0
}

// DetectionGate fuzzes every vulnerable contract with the MuFuzz preset for
// the given budget and checks all its labels are detected, then fuzzes every
// safe contract and checks nothing is flagged. Campaigns are Workers=1
// (bit-reproducible) and run in parallel across contracts.
func DetectionGate(vuln, safe []corpus.Labeled, budget int, seed int64) (*GateReport, error) {
	report := &GateReport{Budget: budget, Seed: seed, Vulnerable: len(vuln), Safe: len(safe)}

	all := append(append([]corpus.Labeled{}, vuln...), safe...)
	comps := make([]*minisol.Compiled, len(all))
	for i, l := range all {
		comp, err := minisol.Compile(l.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", l.Name, err)
		}
		comps[i] = comp
	}

	detected := make([]map[oracle.BugClass]bool, len(all))
	forEach(len(all), func(i int) {
		res := fuzz.Run(comps[i], fuzz.Options{
			Strategy:   fuzz.MuFuzz(),
			Seed:       seed,
			Iterations: budget,
			Workers:    1,
		})
		detected[i] = res.BugClasses
	})

	for i, l := range all {
		entry := GateEntry{Contract: l.Name, Labels: l.Labels}
		for _, c := range oracle.AllClasses {
			if detected[i][c] {
				entry.Detected = append(entry.Detected, c)
			}
		}
		if i < len(vuln) {
			for _, c := range l.Labels {
				if !detected[i][c] {
					entry.Missing = append(entry.Missing, c)
				}
			}
			if len(entry.Missing) > 0 {
				report.Misses = append(report.Misses, entry)
			}
		} else {
			if len(entry.Detected) > 0 {
				entry.Spurious = entry.Detected
				report.FalsePositives = append(report.FalsePositives, entry)
			}
		}
	}
	sort.Slice(report.Misses, func(i, j int) bool { return report.Misses[i].Contract < report.Misses[j].Contract })
	sort.Slice(report.FalsePositives, func(i, j int) bool {
		return report.FalsePositives[i].Contract < report.FalsePositives[j].Contract
	})
	return report, nil
}

// GatedSuites returns the two labelled suites the detection gate covers.
func GatedSuites() []corpus.Labeled {
	return append(corpus.SWCSuite(), corpus.ExtraSuite()...)
}

// PrintGate renders a gate report.
func PrintGate(w io.Writer, r *GateReport) {
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "Detection gate — MuFuzz preset, budget %d, seed %d: %s\n", r.Budget, r.Seed, verdict)
	fmt.Fprintf(w, "  vulnerable contracts: %d (misses: %d)   safe contracts: %d (false positives: %d)\n",
		r.Vulnerable, len(r.Misses), r.Safe, len(r.FalsePositives))
	for _, e := range r.Misses {
		fmt.Fprintf(w, "  MISS %-22s labels=%v detected=%v missing=%v\n", e.Contract, e.Labels, e.Detected, e.Missing)
	}
	for _, e := range r.FalsePositives {
		fmt.Fprintf(w, "  FP   %-22s flagged=%v\n", e.Contract, e.Spurious)
	}
}
