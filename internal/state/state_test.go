package state

import (
	"testing"
	"testing/quick"

	"mufuzz/internal/u256"
)

func TestAddressConversions(t *testing.T) {
	a := AddressFromUint(0xdeadbeef)
	if got := AddressFromWord(a.Word()); got != a {
		t.Errorf("round trip failed: %v vs %v", got, a)
	}
	w := u256.Max
	a2 := AddressFromWord(w)
	if a2.Word().BitLen() > 160 {
		t.Error("AddressFromWord should truncate to 160 bits")
	}
}

func TestStorageReadWrite(t *testing.T) {
	s := New()
	addr := AddressFromUint(1)
	slot := u256.New(42)
	if !s.GetStorage(addr, slot).IsZero() {
		t.Error("absent slot should read zero")
	}
	s.SetStorage(addr, slot, u256.New(7))
	if !s.GetStorage(addr, slot).Eq(u256.New(7)) {
		t.Error("storage write lost")
	}
	s.SetStorage(addr, slot, u256.Zero)
	if s.StorageSize(addr) != 0 {
		t.Error("zero write should delete slot")
	}
}

func TestSnapshotRevert(t *testing.T) {
	s := New()
	a := AddressFromUint(1)
	b := AddressFromUint(2)
	s.SetBalance(a, u256.New(100))
	s.SetStorage(a, u256.New(1), u256.New(11))
	s.Commit()

	snap := s.Snapshot()
	s.SetStorage(a, u256.New(1), u256.New(22))
	s.SetStorage(a, u256.New(2), u256.New(33))
	s.SetBalance(b, u256.New(5))
	s.Transfer(a, b, u256.New(50))
	if !s.Balance(b).Eq(u256.New(55)) {
		t.Fatalf("balance b = %s", s.Balance(b))
	}
	s.RevertTo(snap)

	if !s.GetStorage(a, u256.New(1)).Eq(u256.New(11)) {
		t.Error("slot 1 not reverted")
	}
	if !s.GetStorage(a, u256.New(2)).IsZero() {
		t.Error("slot 2 not reverted")
	}
	if !s.Balance(a).Eq(u256.New(100)) {
		t.Errorf("balance a = %s, want 100", s.Balance(a))
	}
	if s.Exists(b) {
		t.Error("account b should have been un-created")
	}
}

func TestNestedSnapshots(t *testing.T) {
	s := New()
	a := AddressFromUint(1)
	s.SetStorage(a, u256.New(0), u256.New(1))
	outer := s.Snapshot()
	s.SetStorage(a, u256.New(0), u256.New(2))
	inner := s.Snapshot()
	s.SetStorage(a, u256.New(0), u256.New(3))
	s.RevertTo(inner)
	if !s.GetStorage(a, u256.New(0)).Eq(u256.New(2)) {
		t.Error("inner revert wrong")
	}
	s.RevertTo(outer)
	if !s.GetStorage(a, u256.New(0)).Eq(u256.New(1)) {
		t.Error("outer revert wrong")
	}
}

func TestTransferInsufficient(t *testing.T) {
	s := New()
	a, b := AddressFromUint(1), AddressFromUint(2)
	s.SetBalance(a, u256.New(10))
	if s.Transfer(a, b, u256.New(11)) {
		t.Error("transfer should fail")
	}
	if !s.Balance(a).Eq(u256.New(10)) || !s.Balance(b).IsZero() {
		t.Error("failed transfer must not move funds")
	}
	if !s.Transfer(a, b, u256.New(10)) {
		t.Error("transfer should succeed")
	}
	if !s.Transfer(a, b, u256.Zero) {
		t.Error("zero transfer always succeeds")
	}
}

func TestDestroyAndRevert(t *testing.T) {
	s := New()
	c := AddressFromUint(9)
	ben := AddressFromUint(10)
	s.CreateContract(c, []byte{0x60}, AddressFromUint(1))
	s.SetBalance(c, u256.New(77))
	s.Commit()

	snap := s.Snapshot()
	s.Destroy(c, ben)
	if !s.Destroyed(c) {
		t.Fatal("not destroyed")
	}
	if !s.Balance(ben).Eq(u256.New(77)) {
		t.Fatal("beneficiary not credited")
	}
	if s.Code(c) != nil {
		t.Fatal("destroyed contract should expose no code")
	}
	s.RevertTo(snap)
	if s.Destroyed(c) {
		t.Error("destroy not reverted")
	}
	if !s.Balance(c).Eq(u256.New(77)) {
		t.Errorf("balance not restored: %s", s.Balance(c))
	}
	if s.Code(c) == nil {
		t.Error("code should be visible again")
	}
}

func TestCreatorTracking(t *testing.T) {
	s := New()
	deployer := AddressFromUint(5)
	c := AddressFromUint(6)
	s.CreateContract(c, []byte{1}, deployer)
	if s.Creator(c) != deployer {
		t.Error("creator lost")
	}
}

func TestCopyIsDeep(t *testing.T) {
	s := New()
	a := AddressFromUint(1)
	s.CreateContract(a, []byte{1, 2, 3}, AddressFromUint(0))
	s.SetStorage(a, u256.New(1), u256.New(9))
	s.SetBalance(a, u256.New(4))

	cp := s.Copy()
	cp.SetStorage(a, u256.New(1), u256.New(100))
	cp.SetBalance(a, u256.New(200))
	cp.Code(a)[0] = 0xff

	if !s.GetStorage(a, u256.New(1)).Eq(u256.New(9)) {
		t.Error("copy shares storage")
	}
	if !s.Balance(a).Eq(u256.New(4)) {
		t.Error("copy shares balance")
	}
	if s.Code(a)[0] != 1 {
		t.Error("copy shares code slice")
	}
}

func TestAccountsDeterministicOrder(t *testing.T) {
	s := New()
	for i := 10; i > 0; i-- {
		s.SetBalance(AddressFromUint(uint64(i)), u256.New(1))
	}
	got := s.Accounts()
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		less := false
		for k := 0; k < len(a); k++ {
			if a[k] != b[k] {
				less = a[k] < b[k]
				break
			}
		}
		if !less {
			t.Fatal("Accounts not sorted")
		}
	}
}

// Property: revert after arbitrary operations restores the prior observable
// state for the touched addresses.
func TestRevertRestoresProperty(t *testing.T) {
	f := func(ops []uint8, vals []uint8) bool {
		s := New()
		a := AddressFromUint(1)
		s.SetBalance(a, u256.New(1000))
		s.SetStorage(a, u256.New(0), u256.New(5))
		s.Commit()
		beforeBal := s.Balance(a)
		beforeSlot := s.GetStorage(a, u256.New(0))

		snap := s.Snapshot()
		for i, op := range ops {
			v := u256.New(uint64(i%7 + 1))
			if i < len(vals) {
				v = u256.New(uint64(vals[i]))
			}
			switch op % 4 {
			case 0:
				s.SetStorage(a, u256.New(uint64(op%3)), v)
			case 1:
				s.SetBalance(a, v)
			case 2:
				s.Transfer(a, AddressFromUint(uint64(op)), v)
			case 3:
				s.Destroy(a, AddressFromUint(2))
			}
		}
		s.RevertTo(snap)
		return s.Balance(a).Eq(beforeBal) &&
			s.GetStorage(a, u256.New(0)).Eq(beforeSlot) &&
			!s.Destroyed(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRevertToInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid snapshot")
		}
	}()
	New().RevertTo(5)
}

func BenchmarkSnapshotRevert(b *testing.B) {
	s := New()
	a := AddressFromUint(1)
	s.SetBalance(a, u256.New(1000))
	s.Commit()
	for i := 0; i < b.N; i++ {
		snap := s.Snapshot()
		for j := 0; j < 16; j++ {
			s.SetStorage(a, u256.New(uint64(j)), u256.New(uint64(i)))
		}
		s.RevertTo(snap)
	}
}
