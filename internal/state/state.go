// Package state implements the Ethereum world state the EVM executes
// against: accounts with balances, code, and key-value Storage, plus
// journaled snapshots so a fuzzing campaign can cheaply roll back failed
// transactions and replay sequences from a clean deployment.
//
// Smart contracts are stateful programs (paper §I): the whole point of
// sequence-aware fuzzing is that persistent Storage survives between
// transactions. This package is that persistence layer.
//
// # Copy-on-write forks
//
// The fuzzing engine checkpoints world states constantly: every transaction
// boundary of every executed sequence may become a prefix-cache entry, and
// every execution starts from a checkpoint or from genesis. Fork supports
// that access pattern in O(accounts) pointer copies instead of a deep copy:
// parent and child share account and storage data, and a generation tag on
// every account makes either side clone an account privately the first time
// it writes it after the fork. Copy remains the semantic specification — a
// Fork must be observationally identical to a Copy — and the tests assert
// the two stay in lockstep.
package state

import (
	"fmt"
	"sort"
	"sync/atomic"

	"mufuzz/internal/u256"
)

// Address is a 20-byte account address.
type Address [20]byte

// AddressFromUint derives a deterministic address from an integer; handy for
// test and fuzzing identities.
func AddressFromUint(v uint64) Address {
	var a Address
	for i := 0; i < 8; i++ {
		a[19-i] = byte(v >> (8 * i))
	}
	return a
}

// AddressFromWord truncates a 256-bit word to its low 20 bytes.
func AddressFromWord(w u256.Int) Address {
	b := w.Bytes32()
	var a Address
	copy(a[:], b[12:])
	return a
}

// Word widens the address back to a 256-bit word.
func (a Address) Word() u256.Int {
	return u256.FromBytes(a[:])
}

// String formats the address as 0x-prefixed hex.
func (a Address) String() string {
	return fmt.Sprintf("0x%x", a[:])
}

// Account is one entry in the world state.
type Account struct {
	Balance u256.Int
	Code    []byte
	Storage map[u256.Int]u256.Int
	// Creator is the address that deployed the account's code. Oracles use
	// it to decide whether a caller is the legitimate owner (e.g. the US and
	// UD oracles, paper §IV-D).
	Creator Address
	// Destroyed marks the account as self-destructed.
	Destroyed bool

	// gen tags the State generation that owns this struct: only the state
	// whose generation matches may mutate it in place. After a Fork no live
	// state matches, so the first writer clones the account privately.
	gen uint64
	// storageOwned marks Storage as exclusively owned by this struct. A
	// cloned account initially shares its parent's storage map; the first
	// storage write copies it (storage-level copy-on-write, so balance-only
	// writes — value transfers — never pay for a storage copy).
	storageOwned bool
}

// cloneFor returns a private shallow clone owned by generation g. The clone
// shares the (immutable) code slice and the storage map; storageOwned=false
// defers the storage copy until the first storage write.
func (acc *Account) cloneFor(g uint64) *Account {
	na := *acc
	na.gen = g
	na.storageOwned = false
	return &na
}

// genCounter issues unique generations across a whole fork family. It is
// atomic so concurrent Forks of one frozen state (e.g. parallel executors
// resuming from the same checkpoint entry) stay race-free.
type genCounter struct{ n atomic.Uint64 }

func (g *genCounter) next() uint64 { return g.n.Add(1) }

// journalEntry records one reversible state change.
type journalEntry struct {
	kind    journalKind
	addr    Address
	slot    u256.Int
	prevVal u256.Int
	prevBal u256.Int
	created bool // account did not exist before
	prevDes bool
}

type journalKind uint8

const (
	jStorage journalKind = iota
	jBalance
	jCreate
	jDestroy
)

// accountSlot pairs an address with its account. The world state holds a
// handful of accounts (deployer, attacker, senders, contract), so a flat
// slice with linear lookup beats a hash map on every access — and makes
// Fork/ForkInto a single memcpy instead of a map rebuild.
type accountSlot struct {
	addr Address
	acc  *Account
}

// State is the mutable world state with snapshot/revert support and O(1)
// copy-on-write forking.
type State struct {
	accounts []accountSlot
	journal  []journalEntry
	// gen is the write generation: accounts whose tag matches may be mutated
	// in place, anything else is shared with a fork and cloned first. It is
	// atomic only so Fork can retire a frozen state's generation from
	// several goroutines at once; ordinary reads and writes of the state
	// itself are single-goroutine, like before.
	gen    atomic.Uint64
	family *genCounter
}

// New returns an empty world state.
func New() *State {
	s := &State{family: &genCounter{}}
	s.gen.Store(s.family.next())
	return s
}

// find returns the account at addr, or nil if absent.
func (s *State) find(addr Address) *Account {
	for i := range s.accounts {
		if s.accounts[i].addr == addr {
			return s.accounts[i].acc
		}
	}
	return nil
}

// findIdx returns the slot index of addr, or -1 if absent.
func (s *State) findIdx(addr Address) int {
	for i := range s.accounts {
		if s.accounts[i].addr == addr {
			return i
		}
	}
	return -1
}

// Fork returns a child state observationally identical to the receiver, in
// O(accounts) pointer copies: account structs and storage maps are shared,
// and the generation tags force whichever side writes first to clone the
// touched account privately. The child starts with an empty journal.
//
// Fork retires the receiver's write generation, so the receiver keeps full
// read/write semantics too — its next write to any shared account clones it.
// Fork may be called concurrently from multiple goroutines on a state that
// is not being mutated (a frozen checkpoint); it must not race with writes
// to the receiver.
func (s *State) Fork() *State {
	child := &State{
		accounts: append([]accountSlot(nil), s.accounts...),
		family:   s.family,
	}
	child.gen.Store(s.family.next())
	s.gen.Store(s.family.next())
	return child
}

// ForkInto forks the receiver into an existing child state, reusing the
// child's account map and journal capacity instead of allocating fresh ones.
// Semantically identical to Fork — the returned state is observationally a
// Fork of s — but the child's previous contents are discarded, so it must
// only be used on a scratch state nothing else references (the fuzzing
// executors' per-worker working state, re-forked from a frozen checkpoint on
// every execution). The child must belong to the same fork family as s;
// a mismatched child falls back to a plain Fork.
func (s *State) ForkInto(child *State) *State {
	if child == nil || child.family != s.family || child == s {
		return s.Fork()
	}
	child.accounts = append(child.accounts[:0], s.accounts...)
	child.journal = child.journal[:0]
	child.gen.Store(s.family.next())
	s.gen.Store(s.family.next())
	return child
}

// mutableAt returns the account at addr cloned for in-place mutation if it
// is still shared with a fork. It must only be called for existing accounts
// (the revert path).
func (s *State) mutableAt(addr Address) *Account {
	i := s.findIdx(addr)
	acc := s.accounts[i].acc
	if g := s.gen.Load(); acc.gen != g {
		acc = acc.cloneFor(g)
		s.accounts[i].acc = acc
	}
	return acc
}

// mutableOrCreate returns a writable account, creating (and journaling) it
// if needed and cloning it first when it is shared with a fork.
func (s *State) mutableOrCreate(addr Address) *Account {
	i := s.findIdx(addr)
	if i < 0 {
		acc := &Account{
			Storage:      make(map[u256.Int]u256.Int),
			gen:          s.gen.Load(),
			storageOwned: true,
		}
		s.accounts = append(s.accounts, accountSlot{addr: addr, acc: acc})
		s.journal = append(s.journal, journalEntry{kind: jCreate, addr: addr, created: true})
		return acc
	}
	acc := s.accounts[i].acc
	if g := s.gen.Load(); acc.gen != g {
		acc = acc.cloneFor(g)
		s.accounts[i].acc = acc
	}
	return acc
}

// ownedStorage returns acc.Storage guaranteed private to acc, copying a
// shared map on first storage write after a fork.
func (s *State) ownedStorage(acc *Account) map[u256.Int]u256.Int {
	if !acc.storageOwned {
		ns := make(map[u256.Int]u256.Int, len(acc.Storage))
		for k, v := range acc.Storage {
			ns[k] = v
		}
		acc.Storage = ns
		acc.storageOwned = true
	}
	return acc.Storage
}

// Exists reports whether an account is present.
func (s *State) Exists(addr Address) bool {
	return s.find(addr) != nil
}

// CreateContract installs code at addr, recording its creator.
func (s *State) CreateContract(addr Address, code []byte, creator Address) {
	acc := s.mutableOrCreate(addr)
	acc.Code = code
	acc.Creator = creator
}

// Code returns the code at addr (nil for absent accounts).
func (s *State) Code(addr Address) []byte {
	if acc := s.find(addr); acc != nil && !acc.Destroyed {
		return acc.Code
	}
	return nil
}

// Creator returns the deployer of addr.
func (s *State) Creator(addr Address) Address {
	if acc := s.find(addr); acc != nil {
		return acc.Creator
	}
	return Address{}
}

// GetStorage reads a storage slot (zero for absent slots).
func (s *State) GetStorage(addr Address, slot u256.Int) u256.Int {
	if acc := s.find(addr); acc != nil {
		return acc.Storage[slot]
	}
	return u256.Zero
}

// SetStorage writes a storage slot, journaling the previous value.
func (s *State) SetStorage(addr Address, slot, val u256.Int) {
	acc := s.mutableOrCreate(addr)
	prev := acc.Storage[slot]
	s.journal = append(s.journal, journalEntry{kind: jStorage, addr: addr, slot: slot, prevVal: prev})
	st := s.ownedStorage(acc)
	if val.IsZero() {
		delete(st, slot)
	} else {
		st[slot] = val
	}
}

// Balance returns the balance of addr.
func (s *State) Balance(addr Address) u256.Int {
	if acc := s.find(addr); acc != nil {
		return acc.Balance
	}
	return u256.Zero
}

// SetBalance overwrites the balance of addr, journaling the previous value.
func (s *State) SetBalance(addr Address, bal u256.Int) {
	acc := s.mutableOrCreate(addr)
	s.journal = append(s.journal, journalEntry{kind: jBalance, addr: addr, prevBal: acc.Balance})
	acc.Balance = bal
}

// AddBalance credits addr by amount (wrapping per EVM semantics).
func (s *State) AddBalance(addr Address, amount u256.Int) {
	s.SetBalance(addr, s.Balance(addr).Add(amount))
}

// Transfer moves value from one account to another. It returns false (and
// leaves state untouched) when the sender balance is insufficient.
func (s *State) Transfer(from, to Address, value u256.Int) bool {
	if value.IsZero() {
		return true
	}
	bal := s.Balance(from)
	if bal.Lt(value) {
		return false
	}
	s.SetBalance(from, bal.Sub(value))
	s.AddBalance(to, value)
	return true
}

// Destroy marks addr self-destructed and moves its balance to beneficiary.
func (s *State) Destroy(addr, beneficiary Address) {
	acc := s.mutableOrCreate(addr)
	s.journal = append(s.journal, journalEntry{kind: jDestroy, addr: addr, prevDes: acc.Destroyed, prevBal: acc.Balance})
	if !acc.Destroyed {
		s.AddBalance(beneficiary, acc.Balance)
		// Direct mutation: the balance restore is handled by the jDestroy
		// entry. acc is writable (mutableOrCreate above), and when the
		// beneficiary aliases addr, AddBalance returns the same clone.
		acc.Balance = u256.Zero
		acc.Destroyed = true
	}
}

// Destroyed reports whether addr has self-destructed.
func (s *State) Destroyed(addr Address) bool {
	if acc := s.find(addr); acc != nil {
		return acc.Destroyed
	}
	return false
}

// Snapshot returns a revision token for the current state.
func (s *State) Snapshot() int {
	return len(s.journal)
}

// RevertTo undoes every change after the given snapshot token.
func (s *State) RevertTo(snap int) {
	if snap < 0 || snap > len(s.journal) {
		panic(fmt.Sprintf("state: invalid snapshot %d (journal %d)", snap, len(s.journal)))
	}
	for i := len(s.journal) - 1; i >= snap; i-- {
		e := s.journal[i]
		switch e.kind {
		case jStorage:
			acc := s.mutableAt(e.addr)
			st := s.ownedStorage(acc)
			if e.prevVal.IsZero() {
				delete(st, e.slot)
			} else {
				st[e.slot] = e.prevVal
			}
		case jBalance:
			s.mutableAt(e.addr).Balance = e.prevBal
		case jCreate:
			if i := s.findIdx(e.addr); i >= 0 {
				s.accounts = append(s.accounts[:i], s.accounts[i+1:]...)
			}
		case jDestroy:
			acc := s.mutableAt(e.addr)
			acc.Destroyed = e.prevDes
			acc.Balance = e.prevBal
		}
	}
	s.journal = s.journal[:snap]
}

// Commit discards journal history, making all changes permanent. Snapshot
// tokens taken before Commit become invalid.
func (s *State) Commit() {
	s.journal = s.journal[:0]
}

// Copy returns a deep copy sharing nothing with the receiver. The copy has
// an empty journal. Copy is the semantic specification Fork is tested
// against; the engine's hot paths use Fork.
func (s *State) Copy() *State {
	ns := New()
	g := ns.gen.Load()
	for _, slot := range s.accounts {
		acc := slot.acc
		na := &Account{
			Balance:      acc.Balance,
			Code:         append([]byte(nil), acc.Code...),
			Storage:      make(map[u256.Int]u256.Int, len(acc.Storage)),
			Creator:      acc.Creator,
			Destroyed:    acc.Destroyed,
			gen:          g,
			storageOwned: true,
		}
		for k, v := range acc.Storage {
			na.Storage[k] = v
		}
		ns.accounts = append(ns.accounts, accountSlot{addr: slot.addr, acc: na})
	}
	return ns
}

// Accounts returns all addresses in deterministic order.
func (s *State) Accounts() []Address {
	out := make([]Address, 0, len(s.accounts))
	for _, slot := range s.accounts {
		out = append(out, slot.addr)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := 0; k < len(out[i]); k++ {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// StorageSize returns the number of non-zero slots at addr.
func (s *State) StorageSize(addr Address) int {
	if acc := s.find(addr); acc != nil {
		return len(acc.Storage)
	}
	return 0
}

// StorageDump returns a copy of every non-zero storage slot at addr, for
// diagnostics and state-equality checks in tests.
func (s *State) StorageDump(addr Address) map[u256.Int]u256.Int {
	acc := s.find(addr)
	if acc == nil {
		return nil
	}
	out := make(map[u256.Int]u256.Int, len(acc.Storage))
	for k, v := range acc.Storage {
		out[k] = v
	}
	return out
}

// AccountEqual reports whether addr holds the same observable account state
// in s and o: balance, destroyed flag, and every storage slot. It is the
// comparison primitive of the reentrancy state-divergence check — two
// replays of one schedule (attacker present vs absent) are compared account
// by account, and any difference witnesses that the reentrant interleaving
// changed the outcome. Zero-valued slots and missing accounts compare equal,
// matching EVM semantics.
func (s *State) AccountEqual(o *State, addr Address) bool {
	if !s.Balance(addr).Eq(o.Balance(addr)) {
		return false
	}
	if s.Destroyed(addr) != o.Destroyed(addr) {
		return false
	}
	sa, oa := s.find(addr), o.find(addr)
	var sst, ost map[u256.Int]u256.Int
	if sa != nil {
		sst = sa.Storage
	}
	if oa != nil {
		ost = oa.Storage
	}
	for k, v := range sst {
		if !ost[k].Eq(v) {
			return false
		}
	}
	for k, v := range ost {
		if !sst[k].Eq(v) {
			return false
		}
	}
	return true
}
