// Package state implements the Ethereum world state the EVM executes
// against: accounts with balances, code, and key-value Storage, plus
// journaled snapshots so a fuzzing campaign can cheaply roll back failed
// transactions and replay sequences from a clean deployment.
//
// Smart contracts are stateful programs (paper §I): the whole point of
// sequence-aware fuzzing is that persistent Storage survives between
// transactions. This package is that persistence layer.
package state

import (
	"fmt"
	"sort"

	"mufuzz/internal/u256"
)

// Address is a 20-byte account address.
type Address [20]byte

// AddressFromUint derives a deterministic address from an integer; handy for
// test and fuzzing identities.
func AddressFromUint(v uint64) Address {
	var a Address
	for i := 0; i < 8; i++ {
		a[19-i] = byte(v >> (8 * i))
	}
	return a
}

// AddressFromWord truncates a 256-bit word to its low 20 bytes.
func AddressFromWord(w u256.Int) Address {
	b := w.Bytes32()
	var a Address
	copy(a[:], b[12:])
	return a
}

// Word widens the address back to a 256-bit word.
func (a Address) Word() u256.Int {
	return u256.FromBytes(a[:])
}

// String formats the address as 0x-prefixed hex.
func (a Address) String() string {
	return fmt.Sprintf("0x%x", a[:])
}

// Account is one entry in the world state.
type Account struct {
	Balance u256.Int
	Code    []byte
	Storage map[u256.Int]u256.Int
	// Creator is the address that deployed the account's code. Oracles use
	// it to decide whether a caller is the legitimate owner (e.g. the US and
	// UD oracles, paper §IV-D).
	Creator Address
	// Destroyed marks the account as self-destructed.
	Destroyed bool
}

// journalEntry records one reversible state change.
type journalEntry struct {
	kind    journalKind
	addr    Address
	slot    u256.Int
	prevVal u256.Int
	prevBal u256.Int
	created bool // account did not exist before
	prevDes bool
}

type journalKind uint8

const (
	jStorage journalKind = iota
	jBalance
	jCreate
	jDestroy
)

// State is the mutable world state with snapshot/revert support.
type State struct {
	accounts map[Address]*Account
	journal  []journalEntry
}

// New returns an empty world state.
func New() *State {
	return &State{accounts: make(map[Address]*Account)}
}

// getOrCreate returns the account, creating (and journaling) it if needed.
func (s *State) getOrCreate(addr Address) *Account {
	if acc, ok := s.accounts[addr]; ok {
		return acc
	}
	acc := &Account{Storage: make(map[u256.Int]u256.Int)}
	s.accounts[addr] = acc
	s.journal = append(s.journal, journalEntry{kind: jCreate, addr: addr, created: true})
	return acc
}

// Exists reports whether an account is present.
func (s *State) Exists(addr Address) bool {
	_, ok := s.accounts[addr]
	return ok
}

// CreateContract installs code at addr, recording its creator.
func (s *State) CreateContract(addr Address, code []byte, creator Address) {
	acc := s.getOrCreate(addr)
	acc.Code = code
	acc.Creator = creator
}

// Code returns the code at addr (nil for absent accounts).
func (s *State) Code(addr Address) []byte {
	if acc, ok := s.accounts[addr]; ok && !acc.Destroyed {
		return acc.Code
	}
	return nil
}

// Creator returns the deployer of addr.
func (s *State) Creator(addr Address) Address {
	if acc, ok := s.accounts[addr]; ok {
		return acc.Creator
	}
	return Address{}
}

// GetStorage reads a storage slot (zero for absent slots).
func (s *State) GetStorage(addr Address, slot u256.Int) u256.Int {
	if acc, ok := s.accounts[addr]; ok {
		return acc.Storage[slot]
	}
	return u256.Zero
}

// SetStorage writes a storage slot, journaling the previous value.
func (s *State) SetStorage(addr Address, slot, val u256.Int) {
	acc := s.getOrCreate(addr)
	prev := acc.Storage[slot]
	s.journal = append(s.journal, journalEntry{kind: jStorage, addr: addr, slot: slot, prevVal: prev})
	if val.IsZero() {
		delete(acc.Storage, slot)
	} else {
		acc.Storage[slot] = val
	}
}

// Balance returns the balance of addr.
func (s *State) Balance(addr Address) u256.Int {
	if acc, ok := s.accounts[addr]; ok {
		return acc.Balance
	}
	return u256.Zero
}

// SetBalance overwrites the balance of addr, journaling the previous value.
func (s *State) SetBalance(addr Address, bal u256.Int) {
	acc := s.getOrCreate(addr)
	s.journal = append(s.journal, journalEntry{kind: jBalance, addr: addr, prevBal: acc.Balance})
	acc.Balance = bal
}

// AddBalance credits addr by amount (wrapping per EVM semantics).
func (s *State) AddBalance(addr Address, amount u256.Int) {
	s.SetBalance(addr, s.Balance(addr).Add(amount))
}

// Transfer moves value from one account to another. It returns false (and
// leaves state untouched) when the sender balance is insufficient.
func (s *State) Transfer(from, to Address, value u256.Int) bool {
	if value.IsZero() {
		return true
	}
	bal := s.Balance(from)
	if bal.Lt(value) {
		return false
	}
	s.SetBalance(from, bal.Sub(value))
	s.AddBalance(to, value)
	return true
}

// Destroy marks addr self-destructed and moves its balance to beneficiary.
func (s *State) Destroy(addr, beneficiary Address) {
	acc := s.getOrCreate(addr)
	s.journal = append(s.journal, journalEntry{kind: jDestroy, addr: addr, prevDes: acc.Destroyed, prevBal: acc.Balance})
	if !acc.Destroyed {
		s.AddBalance(beneficiary, acc.Balance)
		// Direct mutation: the balance restore is handled by the jDestroy entry.
		acc.Balance = u256.Zero
		acc.Destroyed = true
	}
}

// Destroyed reports whether addr has self-destructed.
func (s *State) Destroyed(addr Address) bool {
	if acc, ok := s.accounts[addr]; ok {
		return acc.Destroyed
	}
	return false
}

// Snapshot returns a revision token for the current state.
func (s *State) Snapshot() int {
	return len(s.journal)
}

// RevertTo undoes every change after the given snapshot token.
func (s *State) RevertTo(snap int) {
	if snap < 0 || snap > len(s.journal) {
		panic(fmt.Sprintf("state: invalid snapshot %d (journal %d)", snap, len(s.journal)))
	}
	for i := len(s.journal) - 1; i >= snap; i-- {
		e := s.journal[i]
		acc := s.accounts[e.addr]
		switch e.kind {
		case jStorage:
			if e.prevVal.IsZero() {
				delete(acc.Storage, e.slot)
			} else {
				acc.Storage[e.slot] = e.prevVal
			}
		case jBalance:
			acc.Balance = e.prevBal
		case jCreate:
			delete(s.accounts, e.addr)
		case jDestroy:
			acc.Destroyed = e.prevDes
			acc.Balance = e.prevBal
		}
	}
	s.journal = s.journal[:snap]
}

// Commit discards journal history, making all changes permanent. Snapshot
// tokens taken before Commit become invalid.
func (s *State) Commit() {
	s.journal = s.journal[:0]
}

// Copy returns a deep copy sharing nothing with the receiver. The copy has
// an empty journal.
func (s *State) Copy() *State {
	ns := New()
	for addr, acc := range s.accounts {
		na := &Account{
			Balance:   acc.Balance,
			Code:      append([]byte(nil), acc.Code...),
			Storage:   make(map[u256.Int]u256.Int, len(acc.Storage)),
			Creator:   acc.Creator,
			Destroyed: acc.Destroyed,
		}
		for k, v := range acc.Storage {
			na.Storage[k] = v
		}
		ns.accounts[addr] = na
	}
	return ns
}

// Accounts returns all addresses in deterministic order.
func (s *State) Accounts() []Address {
	out := make([]Address, 0, len(s.accounts))
	for a := range s.accounts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := 0; k < len(out[i]); k++ {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// StorageSize returns the number of non-zero slots at addr.
func (s *State) StorageSize(addr Address) int {
	if acc, ok := s.accounts[addr]; ok {
		return len(acc.Storage)
	}
	return 0
}
