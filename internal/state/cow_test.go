package state

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"mufuzz/internal/u256"
)

// dump renders a state's full observable content canonically: every account
// in address order with balance, code, creator, destroyed flag, and sorted
// storage. Two states with equal dumps are observationally identical.
func dump(s *State) string {
	var b strings.Builder
	for _, addr := range s.Accounts() {
		fmt.Fprintf(&b, "%s bal=%s code=%x creator=%s destroyed=%v storage{",
			addr, s.Balance(addr), s.Code(addr), s.Creator(addr), s.Destroyed(addr))
		st := s.StorageDump(addr)
		keys := make([]u256.Int, 0, len(st))
		for k := range st {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Lt(keys[j]) })
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, st[k])
		}
		b.WriteString(" }\n")
	}
	return b.String()
}

// mutateRandomly applies one random state operation drawn from rng,
// exercising every write path: storage writes (including zeroing), balance
// writes, transfers, contract creation, destruction, and snapshot/revert.
func mutateRandomly(s *State, rng *rand.Rand) {
	addr := AddressFromUint(uint64(rng.Intn(6)))
	other := AddressFromUint(uint64(rng.Intn(6)))
	switch rng.Intn(8) {
	case 0:
		s.SetStorage(addr, u256.New(uint64(rng.Intn(8))), u256.New(rng.Uint64()))
	case 1:
		s.SetStorage(addr, u256.New(uint64(rng.Intn(8))), u256.Zero) // slot delete
	case 2:
		s.SetBalance(addr, u256.New(rng.Uint64()))
	case 3:
		s.AddBalance(addr, u256.New(uint64(rng.Intn(1000))))
	case 4:
		s.Transfer(addr, other, u256.New(uint64(rng.Intn(100))))
	case 5:
		s.CreateContract(addr, []byte{byte(rng.Intn(256)), 0x57}, other)
	case 6:
		s.Destroy(addr, other)
	case 7:
		snap := s.Snapshot()
		s.SetStorage(addr, u256.New(1), u256.New(rng.Uint64()))
		s.SetBalance(other, u256.New(rng.Uint64()))
		if rng.Intn(2) == 0 {
			s.RevertTo(snap)
		}
	}
}

// seedWorld builds a small world with contracts, storage, and balances.
func seedWorld(seed int64) *State {
	s := New()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 4; i++ {
		s.SetBalance(AddressFromUint(uint64(i)), u256.New(1+rng.Uint64()%1000))
	}
	c := AddressFromUint(5)
	s.CreateContract(c, []byte{0x60, 0x00, 0x57}, AddressFromUint(0))
	for slot := 0; slot < 6; slot++ {
		s.SetStorage(c, u256.New(uint64(slot)), u256.New(rng.Uint64()))
	}
	s.Commit()
	return s
}

// TestForkNeverLeaksIntoParentOrSiblings is the CoW isolation property:
// arbitrary mutation of forked children must leave the parent and every
// sibling byte-identical, and parent mutation must not leak into children.
func TestForkNeverLeaksIntoParentOrSiblings(t *testing.T) {
	for trial := int64(0); trial < 20; trial++ {
		parent := seedWorld(trial)
		before := dump(parent)

		const siblings = 4
		children := make([]*State, siblings)
		snaps := make([]string, siblings)
		for i := range children {
			children[i] = parent.Fork()
			snaps[i] = dump(children[i])
			if snaps[i] != before {
				t.Fatalf("trial %d: fork %d differs from parent at birth", trial, i)
			}
		}

		// Mutate every child with a distinct op stream.
		for i, ch := range children {
			rng := rand.New(rand.NewSource(trial*100 + int64(i)))
			for op := 0; op < 50; op++ {
				mutateRandomly(ch, rng)
			}
		}
		if got := dump(parent); got != before {
			t.Fatalf("trial %d: child writes leaked into parent\nbefore:\n%s\nafter:\n%s", trial, before, got)
		}

		// Each child must see only its own writes: replay the same op stream
		// on a deep Copy of the original parent and compare.
		for i, ch := range children {
			ref := parent.Copy()
			rng := rand.New(rand.NewSource(trial*100 + int64(i)))
			for op := 0; op < 50; op++ {
				mutateRandomly(ref, rng)
			}
			if dump(ch) != dump(ref) {
				t.Fatalf("trial %d: sibling %d diverged from its reference copy", trial, i)
			}
		}

		// Parent writes after the forks must not leak into children.
		rng := rand.New(rand.NewSource(trial + 7777))
		childDumps := make([]string, siblings)
		for i, ch := range children {
			childDumps[i] = dump(ch)
		}
		for op := 0; op < 50; op++ {
			mutateRandomly(parent, rng)
		}
		for i, ch := range children {
			if dump(ch) != childDumps[i] {
				t.Fatalf("trial %d: parent writes leaked into child %d", trial, i)
			}
		}
	}
}

// TestForkMatchesCopyTransactionForTransaction drives a Fork and a Copy of
// the same state through an identical random script of writes and
// Snapshot/RevertTo cycles, asserting observational equality after every
// step — Fork must match the deep-copy specification exactly, including
// journal semantics.
func TestForkMatchesCopyTransactionForTransaction(t *testing.T) {
	for trial := int64(0); trial < 10; trial++ {
		base := seedWorld(trial)
		fork := base.Fork()
		copyRef := base.Copy()

		rngF := rand.New(rand.NewSource(trial * 31))
		rngC := rand.New(rand.NewSource(trial * 31))
		for step := 0; step < 120; step++ {
			// One "transaction": snapshot, a few ops, commit or revert —
			// mirroring how the EVM drives the state.
			snapF, snapC := fork.Snapshot(), copyRef.Snapshot()
			nOps := 1 + rngF.Intn(4)
			_ = 1 + rngC.Intn(4)
			for op := 0; op < nOps; op++ {
				mutateRandomly(fork, rngF)
				mutateRandomly(copyRef, rngC)
			}
			if rngF.Intn(3) == 0 {
				fork.RevertTo(snapF)
			}
			if rngC.Intn(3) == 0 {
				copyRef.RevertTo(snapC)
			}
			if df, dc := dump(fork), dump(copyRef); df != dc {
				t.Fatalf("trial %d step %d: fork diverged from copy\nfork:\n%s\ncopy:\n%s", trial, step, df, dc)
			}
		}
	}
}

// TestForkOfForkChains checks that grandchildren stay isolated through a
// chain of forks interleaved with writes at every level.
func TestForkOfForkChains(t *testing.T) {
	root := seedWorld(1)
	a := AddressFromUint(5)

	child := root.Fork()
	child.SetStorage(a, u256.New(0), u256.New(111))
	grand := child.Fork()
	grand.SetStorage(a, u256.New(0), u256.New(222))
	grandSlot1 := grand.GetStorage(a, u256.New(1))
	great := grand.Fork()
	great.SetStorage(a, u256.New(1), u256.New(333))

	if v := child.GetStorage(a, u256.New(0)); !v.Eq(u256.New(111)) {
		t.Errorf("child slot0 = %s, want 111", v)
	}
	if v := grand.GetStorage(a, u256.New(0)); !v.Eq(u256.New(222)) {
		t.Errorf("grand slot0 = %s, want 222", v)
	}
	if v := great.GetStorage(a, u256.New(0)); !v.Eq(u256.New(222)) {
		t.Errorf("great inherits slot0 = %s, want 222", v)
	}
	if v := great.GetStorage(a, u256.New(1)); !v.Eq(u256.New(333)) {
		t.Errorf("great slot1 = %s, want 333", v)
	}
	if v := grand.GetStorage(a, u256.New(1)); !v.Eq(grandSlot1) {
		t.Errorf("great's write leaked up: slot1 = %s, want %s", v, grandSlot1)
	}
}

// TestForkRevertAcrossForkPoint reverts the parent past a journal entry
// recorded before a Fork; the clone-on-revert path must keep the child
// untouched.
func TestForkRevertAcrossForkPoint(t *testing.T) {
	s := seedWorld(3)
	a := AddressFromUint(5)
	snap := s.Snapshot()
	s.SetStorage(a, u256.New(0), u256.New(42))
	s.SetBalance(AddressFromUint(1), u256.New(42))

	child := s.Fork()
	childBefore := dump(child)

	s.RevertTo(snap) // mutates accounts now shared with child
	if got := dump(child); got != childBefore {
		t.Fatalf("parent revert leaked into child\nbefore:\n%s\nafter:\n%s", childBefore, got)
	}
	if v := s.GetStorage(a, u256.New(0)); v.Eq(u256.New(42)) {
		t.Error("parent revert did not apply")
	}
}

// TestConcurrentForksOfFrozenState forks one frozen state from many
// goroutines at once and mutates every child — the exact access pattern of
// parallel executors resuming from one checkpoint entry. Run with -race.
func TestConcurrentForksOfFrozenState(t *testing.T) {
	frozen := seedWorld(9)
	before := dump(frozen)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for round := 0; round < 50; round++ {
				ch := frozen.Fork()
				for op := 0; op < 10; op++ {
					mutateRandomly(ch, rng)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := dump(frozen); got != before {
		t.Fatalf("concurrent forks corrupted the frozen state\nbefore:\n%s\nafter:\n%s", before, got)
	}
}
