package oracle

import (
	"testing"

	"mufuzz/internal/evm"
	"mufuzz/internal/minisol"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// rig is a compiled+deployed contract with a detector attached.
type rig struct {
	comp     *minisol.Compiled
	evm      *evm.EVM
	det      *Detector
	addr     state.Address
	deployer state.Address
	user     state.Address
	attacker *evm.ReentrantAttacker
}

func newRig(t testing.TB, src string) *rig {
	t.Helper()
	comp, err := minisol.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	st := state.New()
	deployer := state.AddressFromUint(0xd431)
	user := state.AddressFromUint(0x0537)
	addr := state.AddressFromUint(0xc0de)
	rich := u256.One.Lsh(120)
	st.SetBalance(deployer, rich)
	st.SetBalance(user, rich)
	st.Commit()
	e := evm.New(st, evm.BlockCtx{Timestamp: 1_700_000_001, Number: 42})
	e.Trace = evm.NewTrace()

	attacker := &evm.ReentrantAttacker{Addr: state.AddressFromUint(0xa77), MaxReentries: 1}
	e.RegisterNative(attacker.Addr, attacker)
	e.State.SetBalance(attacker.Addr, rich)
	e.State.Commit()

	if err := minisol.Deploy(e, deployer, addr, comp, nil, u256.Zero, 10_000_000); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return &rig{
		comp: comp, evm: e, det: NewDetector(addr, comp.Code),
		addr: addr, deployer: deployer, user: user, attacker: attacker,
	}
}

// tx executes one transaction and feeds the trace to the detector.
func (r *rig) tx(t testing.TB, from state.Address, value u256.Int, fn string, args ...u256.Int) error {
	t.Helper()
	data, err := r.comp.CallData(fn, args...)
	if err != nil {
		t.Fatalf("calldata: %v", err)
	}
	r.evm.Trace = evm.NewTrace()
	_, execErr := r.evm.Transact(from, r.addr, value, data, 10_000_000)
	r.det.Inspect(r.evm.Trace, value, execErr == nil)
	return execErr
}

func (r *rig) classes() map[BugClass]bool { return r.det.Classes() }

func wantClass(t *testing.T, r *rig, class BugClass, want bool) {
	t.Helper()
	got := r.classes()[class]
	if got != want {
		t.Errorf("%s detected = %v, want %v (all: %v)", class, got, want, r.classes())
	}
}

// --- BD ---

func TestBlockDependencyDetected(t *testing.T) {
	r := newRig(t, `contract C {
		uint256 x;
		function play() public payable {
			if (block.timestamp % 2 == 0) { x = 1; } else { x = 2; }
		}
	}`)
	r.tx(t, r.user, u256.Zero, "play")
	wantClass(t, r, BD, true)
}

func TestBlockNumberDependencyDetected(t *testing.T) {
	r := newRig(t, `contract C {
		uint256 x;
		function play() public {
			require(block.number > 10);
			x = 1;
		}
	}`)
	r.tx(t, r.user, u256.Zero, "play")
	wantClass(t, r, BD, true)
}

func TestNoBlockDependencyOnCleanContract(t *testing.T) {
	r := newRig(t, `contract C {
		uint256 x;
		function set(uint256 v) public { if (v > 5) { x = v; } }
	}`)
	r.tx(t, r.user, u256.Zero, "set", u256.New(9))
	wantClass(t, r, BD, false)
}

// --- SE ---

func TestStrictEtherEqualityDetected(t *testing.T) {
	r := newRig(t, `contract C {
		uint256 x;
		function check() public payable {
			if (this.balance == 88) { x = 1; }
		}
	}`)
	r.tx(t, r.user, u256.New(3), "check")
	wantClass(t, r, SE, true)
}

func TestBalanceInequalityIsNotSE(t *testing.T) {
	r := newRig(t, `contract C {
		uint256 x;
		function check() public payable {
			if (this.balance > 88) { x = 1; }
		}
	}`)
	r.tx(t, r.user, u256.New(100), "check")
	wantClass(t, r, SE, false)
	// it IS a balance-influenced branch, but not strict equality
}

// --- TO ---

func TestTxOriginDetected(t *testing.T) {
	r := newRig(t, `contract C {
		address owner;
		uint256 x;
		constructor() public { owner = msg.sender; }
		function guarded() public {
			require(tx.origin == owner);
			x = 1;
		}
	}`)
	r.tx(t, r.deployer, u256.Zero, "guarded")
	wantClass(t, r, TO, true)
}

func TestMsgSenderGuardIsNotTO(t *testing.T) {
	r := newRig(t, `contract C {
		address owner;
		uint256 x;
		constructor() public { owner = msg.sender; }
		function guarded() public {
			require(msg.sender == owner);
			x = 1;
		}
	}`)
	r.tx(t, r.deployer, u256.Zero, "guarded")
	wantClass(t, r, TO, false)
}

// --- IO ---

func TestIntegerOverflowDetected(t *testing.T) {
	r := newRig(t, `contract C {
		uint256 total;
		function add(uint256 n) public { total += n; }
	}`)
	r.tx(t, r.user, u256.Zero, "add", u256.Max)    // 0 + max ok
	r.tx(t, r.user, u256.Zero, "add", u256.New(5)) // wraps
	wantClass(t, r, IO, true)
}

func TestGuardedArithmeticIsNotIO(t *testing.T) {
	r := newRig(t, `contract C {
		uint256 total;
		function add(uint256 n) public {
			require(n < 1000);
			require(total < 1000000);
			total += n;
		}
	}`)
	r.tx(t, r.user, u256.Zero, "add", u256.New(999))
	r.tx(t, r.user, u256.Zero, "add", u256.New(999))
	wantClass(t, r, IO, false)
}

func TestUnderflowDetected(t *testing.T) {
	r := newRig(t, `contract C {
		uint256 bal;
		function take(uint256 n) public { bal -= n; }
	}`)
	r.tx(t, r.user, u256.Zero, "take", u256.New(7)) // 0 - 7 underflows
	wantClass(t, r, IO, true)
}

// --- UE ---

func TestUncheckedSendDetected(t *testing.T) {
	r := newRig(t, `contract C {
		function pay(address to, uint256 amt) public {
			to.send(amt);
		}
	}`)
	// contract has no funds → send fails, status ignored
	r.tx(t, r.user, u256.Zero, "pay", r.user.Word(), u256.New(1000))
	wantClass(t, r, UE, true)
}

func TestCheckedSendIsNotUE(t *testing.T) {
	r := newRig(t, `contract C {
		uint256 failed;
		function pay(address to, uint256 amt) public {
			if (to.send(amt)) { failed = 0; } else { failed = 1; }
		}
	}`)
	r.tx(t, r.user, u256.Zero, "pay", r.user.Word(), u256.New(1000))
	wantClass(t, r, UE, false)
}

func TestRequiredCallValueIsNotUE(t *testing.T) {
	r := newRig(t, `contract C {
		function pay(address to, uint256 amt) public {
			require(to.call.value(amt)());
		}
	}`)
	r.tx(t, r.user, u256.Zero, "pay", r.user.Word(), u256.New(1000))
	wantClass(t, r, UE, false)
}

// --- US ---

func TestUnprotectedSelfDestructDetected(t *testing.T) {
	r := newRig(t, `contract C {
		function kill() public { selfdestruct(msg.sender); }
	}`)
	r.tx(t, r.user, u256.Zero, "kill") // user is not the creator
	wantClass(t, r, US, true)
}

func TestGuardedSelfDestructIsNotUS(t *testing.T) {
	r := newRig(t, `contract C {
		address owner;
		constructor() public { owner = msg.sender; }
		function kill() public {
			require(msg.sender == owner);
			selfdestruct(msg.sender);
		}
	}`)
	// Non-owner attempt reverts before SELFDESTRUCT.
	r.tx(t, r.user, u256.Zero, "kill")
	// Owner executes it legitimately.
	r.tx(t, r.deployer, u256.Zero, "kill")
	wantClass(t, r, US, false)
}

// --- RE ---

func TestReentrancyDetected(t *testing.T) {
	r := newRig(t, `contract C {
		mapping(address => uint256) bal;
		function deposit() public payable { bal[msg.sender] += msg.value; }
		function withdraw() public {
			uint256 amount = bal[msg.sender];
			if (amount > 0) {
				require(msg.sender.call.value(amount)());
				bal[msg.sender] = 0;
			}
		}
	}`)
	if err := r.tx(t, r.attacker.Addr, u256.New(100), "deposit"); err != nil {
		t.Fatal(err)
	}
	if err := r.tx(t, r.attacker.Addr, u256.Zero, "withdraw"); err != nil {
		t.Fatal(err)
	}
	wantClass(t, r, RE, true)
	if r.attacker.Reentered == 0 {
		t.Error("attacker should have re-entered")
	}
}

func TestTransferPatternIsNotRE(t *testing.T) {
	r := newRig(t, `contract C {
		mapping(address => uint256) bal;
		function deposit() public payable { bal[msg.sender] += msg.value; }
		function withdraw() public {
			uint256 amount = bal[msg.sender];
			if (amount > 0) {
				bal[msg.sender] = 0;
				msg.sender.transfer(amount);
			}
		}
	}`)
	r.tx(t, r.attacker.Addr, u256.New(100), "deposit")
	r.tx(t, r.attacker.Addr, u256.Zero, "withdraw")
	wantClass(t, r, RE, false)
}

// --- UD ---

func TestUnprotectedDelegatecallDetected(t *testing.T) {
	r := newRig(t, `contract C {
		function run(address lib, uint256 x) public {
			lib.delegatecall(x);
		}
	}`)
	r.tx(t, r.user, u256.Zero, "run", u256.New(0x11b), u256.New(1))
	wantClass(t, r, UD, true)
}

func TestOwnerDelegatecallIsNotUD(t *testing.T) {
	r := newRig(t, `contract C {
		address owner;
		constructor() public { owner = msg.sender; }
		function run(address lib, uint256 x) public {
			require(msg.sender == owner);
			lib.delegatecall(x);
		}
	}`)
	r.tx(t, r.user, u256.Zero, "run", u256.New(0x11b), u256.New(1))     // reverts
	r.tx(t, r.deployer, u256.Zero, "run", u256.New(0x11b), u256.New(1)) // owner
	wantClass(t, r, UD, false)
}

// --- EF ---

func TestEtherFreezingDetected(t *testing.T) {
	r := newRig(t, `contract C {
		uint256 count;
		function donate() public payable { count += 1; }
	}`)
	r.tx(t, r.user, u256.New(1000), "donate")
	wantClass(t, r, EF, true)
}

func TestWithdrawableContractIsNotEF(t *testing.T) {
	r := newRig(t, `contract C {
		uint256 count;
		function donate() public payable { count += 1; }
		function withdraw(uint256 n) public { msg.sender.transfer(n); }
	}`)
	r.tx(t, r.user, u256.New(1000), "donate")
	wantClass(t, r, EF, false)
}

// --- aggregation behaviour ---

func TestFindingsDeduplicated(t *testing.T) {
	r := newRig(t, `contract C {
		uint256 x;
		function play() public {
			if (block.timestamp > 5) { x = 1; }
		}
	}`)
	for i := 0; i < 5; i++ {
		r.tx(t, r.user, u256.Zero, "play")
	}
	finds := r.det.Finalize()
	byClass := map[BugClass]int{}
	for _, f := range finds {
		byClass[f.Class]++
	}
	if byClass[BD] > 2 {
		t.Errorf("BD findings = %d; repeats of one site must dedup", byClass[BD])
	}
}

func TestFinalizeDeterministicOrder(t *testing.T) {
	r := newRig(t, `contract C {
		uint256 x;
		function a() public { if (block.timestamp > 1) { x = 1; } }
		function b() public { require(tx.origin == msg.sender); x = 2; }
	}`)
	r.tx(t, r.user, u256.Zero, "a")
	r.tx(t, r.user, u256.Zero, "b")
	f1 := r.det.Finalize()
	f2 := r.det.Finalize()
	if len(f1) != len(f2) {
		t.Fatal("Finalize not idempotent")
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Error("Finalize order not deterministic")
		}
	}
}
