// Package oracle implements the nine bug oracles of paper §IV-D. Oracles
// consume EVM execution traces (taint sinks, call events, overflow events,
// reentry events) plus a little campaign-level state, and emit findings.
//
// The oracles are split into two halves so a parallel fuzzing engine can run
// them off the coordinator thread:
//
//   - Inspector is the stateless per-execution half: it matches one trace
//     against the per-transaction rules and returns a Report. Inspectors are
//     immutable after construction and safe for concurrent use by many
//     executor goroutines.
//   - Detector is the campaign-level aggregate: it absorbs Reports in a
//     deterministic order on the coordinator, dedups findings, and applies
//     whole-campaign oracles (EF) at Finalize.
package oracle

import (
	"fmt"
	"sort"

	"mufuzz/internal/analysis"
	"mufuzz/internal/evm"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// BugClass identifies one of the nine vulnerability classes of Table I.
type BugClass string

// The nine bug classes.
const (
	BD BugClass = "BD" // block dependency
	UD BugClass = "UD" // unprotected delegatecall
	EF BugClass = "EF" // ether freezing
	IO BugClass = "IO" // integer over-/under-flow
	RE BugClass = "RE" // reentrancy
	US BugClass = "US" // unprotected selfdestruct
	SE BugClass = "SE" // strict ether equality
	TO BugClass = "TO" // tx.origin use
	UE BugClass = "UE" // unhandled exception
)

// AllClasses lists every bug class in report order.
var AllClasses = []BugClass{BD, UD, EF, IO, RE, US, SE, TO, UE}

// Finding is one detected vulnerability instance.
type Finding struct {
	Class       BugClass
	Addr        state.Address
	PC          uint64
	Description string
}

// Key dedups findings per (class, location).
func (f Finding) Key() string {
	return fmt.Sprintf("%s@%s:%d", f.Class, f.Addr, f.PC)
}

// Report is what one transaction's inspection observed: the findings the
// trace exhibits (deduped within the trace, in detection order) plus whether
// the transaction paid value into the contract (input to the EF oracle).
type Report struct {
	Findings      []Finding
	ReceivedValue bool
}

// Empty reports whether the inspection observed nothing of interest.
func (r Report) Empty() bool {
	return len(r.Findings) == 0 && !r.ReceivedValue
}

// Inspector is the stateless per-execution oracle half. All fields are fixed
// at construction, so one Inspector may serve any number of concurrent
// executions.
type Inspector struct {
	addr state.Address

	// static fact about the code, for the ether-freezing oracle
	hasValueOutOp bool
}

// NewInspector builds an inspector for the contract at addr with the given
// runtime code. The code is scanned once for value-out instructions (CALL,
// DELEGATECALL, SELFDESTRUCT) — a contract with none of them can never move
// ether out, the static half of the EF oracle.
func NewInspector(addr state.Address, code []byte) *Inspector {
	ins := &Inspector{addr: addr}
	for _, i := range analysis.Disassemble(code) {
		switch i.Op {
		case evm.CALL, evm.DELEGATECALL, evm.SELFDESTRUCT:
			ins.hasValueOutOp = true
		}
	}
	return ins
}

// report collects findings for one trace, deduping by Key within the trace.
type report struct {
	Report
	seen map[string]bool
}

func (r *report) add(f Finding) {
	if r.seen[f.Key()] {
		return
	}
	if r.seen == nil {
		// Allocated on the first finding only: the overwhelming majority of
		// executions observe nothing, and the campaign hot path calls Inspect
		// once per transaction.
		r.seen = make(map[string]bool)
	}
	r.seen[f.Key()] = true
	r.Findings = append(r.Findings, f)
}

// Inspect applies all per-transaction oracles to one execution trace and
// returns everything observed. txValue is the value sent with the
// transaction, txOK whether it succeeded. Inspect does not mutate the
// inspector; callers fold the Report into a Detector to dedup across the
// campaign.
func (ins *Inspector) Inspect(tr *evm.Trace, txValue u256.Int, txOK bool) Report {
	if tr == nil {
		return Report{}
	}
	var r report
	if txOK && !txValue.IsZero() {
		r.ReceivedValue = true
	}
	ins.inspectSinks(tr, &r)
	ins.inspectOverflows(tr, &r)
	ins.inspectCalls(tr, &r)
	ins.inspectReentry(tr, &r)
	ins.inspectSelfDestructs(tr, &r)
	ins.inspectDelegates(tr, &r)
	return r.Report
}

// inspectSinks covers BD, SE, and TO, which are all source→sink taint rules.
func (ins *Inspector) inspectSinks(tr *evm.Trace, r *report) {
	for _, s := range tr.Sinks {
		if s.Addr != ins.addr {
			continue
		}
		// BD: block state contaminates a CALL, JUMPI, or comparison.
		if s.Taint&(evm.TaintTimestamp|evm.TaintNumber) != 0 {
			switch s.Kind {
			case evm.SinkJumpCond, evm.SinkCompare, evm.SinkCallValue, evm.SinkCallTarget:
				r.add(Finding{
					Class: BD, Addr: s.Addr, PC: s.PC,
					Description: "block state (timestamp/number) influences a branch or call",
				})
			}
		}
		// SE: BALANCE flows into a strict equality comparison.
		if s.Kind == evm.SinkEq && s.Taint.Has(evm.TaintBalance) {
			r.add(Finding{
				Class: SE, Addr: s.Addr, PC: s.PC,
				Description: "contract balance compared with strict equality",
			})
		}
		// TO: tx.origin used in a comparison (authentication misuse).
		if (s.Kind == evm.SinkCompare || s.Kind == evm.SinkEq || s.Kind == evm.SinkJumpCond) &&
			s.Taint.Has(evm.TaintOrigin) {
			r.add(Finding{
				Class: TO, Addr: s.Addr, PC: s.PC,
				Description: "tx.origin used in a comparison/guard",
			})
		}
	}
}

// inspectOverflows covers IO: a wrapping ADD/SUB/MUL whose result reached
// persistent storage or a call value in the same transaction.
func (ins *Inspector) inspectOverflows(tr *evm.Trace, r *report) {
	if len(tr.Overflows) == 0 {
		return
	}
	sinkSeen := false
	for _, s := range tr.Sinks {
		if s.Addr == ins.addr && s.Taint.Has(evm.TaintOverflow) &&
			(s.Kind == evm.SinkStore || s.Kind == evm.SinkCallValue) {
			sinkSeen = true
			break
		}
	}
	if !sinkSeen {
		return
	}
	for _, ov := range tr.Overflows {
		if ov.Addr != ins.addr {
			continue
		}
		r.add(Finding{
			Class: IO, Addr: ov.Addr, PC: ov.PC,
			Description: fmt.Sprintf("%s wraps mod 2^256 and the result persists", ov.Op),
		})
	}
}

// inspectCalls covers UE: an external call failed and its status word was
// never consumed by a conditional jump.
func (ins *Inspector) inspectCalls(tr *evm.Trace, r *report) {
	for _, c := range tr.Calls {
		if c.From != ins.addr || c.Op != evm.CALL {
			continue
		}
		if !c.Success && !c.Checked {
			r.add(Finding{
				Class: UE, Addr: c.From, PC: uint64(c.ID),
				Description: "external call failed and the status was not checked",
			})
		}
	}
}

// inspectReentry covers RE: the contract was re-entered while an outer
// value-bearing call with more than the gas stipend was in flight.
func (ins *Inspector) inspectReentry(tr *evm.Trace, r *report) {
	for _, re := range tr.Reentries {
		if re.Addr != ins.addr || !re.EnabledByValueCall {
			continue
		}
		r.add(Finding{
			Class: RE, Addr: re.Addr, PC: 0,
			Description: "contract re-entered during a value call with forwarded gas",
		})
	}
}

// inspectSelfDestructs covers US: SELFDESTRUCT executed by a caller that is
// neither the creator nor sent by the creator.
func (ins *Inspector) inspectSelfDestructs(tr *evm.Trace, r *report) {
	for _, sd := range tr.SelfDestructs {
		if sd.Addr != ins.addr {
			continue
		}
		if !sd.CallerIsCreator && !sd.OriginIsCreator {
			r.add(Finding{
				Class: US, Addr: sd.Addr, PC: 0,
				Description: "selfdestruct reachable by a non-owner caller",
			})
		}
	}
}

// inspectDelegates covers UD: DELEGATECALL whose target or input derives
// from transaction input, executed without an owner guard.
func (ins *Inspector) inspectDelegates(tr *evm.Trace, r *report) {
	for _, dg := range tr.Delegates {
		if dg.Addr != ins.addr {
			continue
		}
		userControlled := dg.TargetTaint.Has(evm.TaintInput) || dg.InputTaint.Has(evm.TaintInput)
		if userControlled && !dg.CallerIsCreator {
			r.add(Finding{
				Class: UD, Addr: dg.Addr, PC: 0,
				Description: "delegatecall with user-controlled target reachable by non-owner",
			})
		}
	}
}

// Detector accumulates findings for one contract across a fuzzing campaign.
// It is the coordinator-side aggregate: Absorb reports in execution order on
// one goroutine, then Finalize.
type Detector struct {
	insp *Inspector

	receivedValue bool
	findings      map[string]Finding
}

// NewDetector builds a detector (and its embedded inspector) for the
// contract at addr with the given runtime code.
func NewDetector(addr state.Address, code []byte) *Detector {
	return &Detector{
		insp:     NewInspector(addr, code),
		findings: make(map[string]Finding),
	}
}

// Inspector exposes the stateless half for concurrent executors.
func (d *Detector) Inspector() *Inspector {
	return d.insp
}

func (d *Detector) add(f Finding) {
	if _, dup := d.findings[f.Key()]; !dup {
		d.findings[f.Key()] = f
	}
}

// Absorb folds one transaction's Report into the aggregate. It returns the
// bug classes newly discovered by the report (empty for repeats of known
// findings), in the report's detection order.
func (d *Detector) Absorb(r Report) []BugClass {
	if r.ReceivedValue {
		d.receivedValue = true
	}
	before := make(map[BugClass]bool)
	for _, f := range d.findings {
		before[f.Class] = true
	}
	var fresh []BugClass
	seen := make(map[BugClass]bool)
	for _, f := range r.Findings {
		d.add(f)
		if !before[f.Class] && !seen[f.Class] {
			fresh = append(fresh, f.Class)
			seen[f.Class] = true
		}
	}
	return fresh
}

// Inspect applies all per-transaction oracles to one execution trace and
// absorbs the result — the single-threaded convenience path.
func (d *Detector) Inspect(tr *evm.Trace, txValue u256.Int, txOK bool) []BugClass {
	return d.Absorb(d.insp.Inspect(tr, txValue, txOK))
}

// State captures the detector's serializable campaign-level state: the
// received-value flag and every finding absorbed so far, in deterministic
// (class, PC) order. Together with the embedded inspector's construction
// inputs (contract address and code, both campaign constants) it fully
// describes the detector, so a snapshotted campaign restores oracle
// aggregation exactly.
func (d *Detector) State() (receivedValue bool, findings []Finding) {
	out := make([]Finding, 0, len(d.findings))
	for _, f := range d.findings {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].PC < out[j].PC
	})
	return d.receivedValue, out
}

// Restore overwrites the detector's aggregate state with a snapshot taken by
// State. The inspector half is untouched (it is stateless).
func (d *Detector) Restore(receivedValue bool, findings []Finding) {
	d.receivedValue = receivedValue
	d.findings = make(map[string]Finding, len(findings))
	for _, f := range findings {
		d.findings[f.Key()] = f
	}
}

// Finalize applies campaign-level oracles (EF) and returns all findings in
// deterministic order.
func (d *Detector) Finalize() []Finding {
	// EF: the contract accepted ether during the campaign but its code
	// contains no instruction that could ever move value out.
	if d.receivedValue && !d.insp.hasValueOutOp {
		d.add(Finding{
			Class: EF, Addr: d.insp.addr, PC: 0,
			Description: "contract accepts ether but has no value-transferring instruction",
		})
	}
	out := make([]Finding, 0, len(d.findings))
	for _, f := range d.findings {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// Classes returns the distinct bug classes found so far.
func (d *Detector) Classes() map[BugClass]bool {
	out := make(map[BugClass]bool)
	for _, f := range d.findings {
		out[f.Class] = true
	}
	if d.receivedValue && !d.insp.hasValueOutOp {
		out[EF] = true
	}
	return out
}
