// Package oracle implements the nine bug oracles of paper §IV-D. Oracles
// consume EVM execution traces (taint sinks, call events, overflow events,
// reentry events) plus a little campaign-level state, and emit findings.
//
// The oracles are split into two halves so a parallel fuzzing engine can run
// them off the coordinator thread:
//
//   - Inspector is the stateless per-execution half: it matches one trace
//     against the per-transaction rules and returns a Report. Inspectors are
//     immutable after construction and safe for concurrent use by many
//     executor goroutines.
//   - Detector is the campaign-level aggregate: it absorbs Reports in a
//     deterministic order on the coordinator, dedups findings, and applies
//     whole-campaign oracles (EF) at Finalize.
package oracle

import (
	"fmt"
	"sort"

	"mufuzz/internal/analysis"
	"mufuzz/internal/evm"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// BugClass identifies one of the nine vulnerability classes of Table I.
type BugClass string

// The nine bug classes.
const (
	BD BugClass = "BD" // block dependency
	UD BugClass = "UD" // unprotected delegatecall
	EF BugClass = "EF" // ether freezing
	IO BugClass = "IO" // integer over-/under-flow
	RE BugClass = "RE" // reentrancy
	US BugClass = "US" // unprotected selfdestruct
	SE BugClass = "SE" // strict ether equality
	TO BugClass = "TO" // tx.origin use
	UE BugClass = "UE" // unhandled exception
)

// AllClasses lists every bug class in report order.
var AllClasses = []BugClass{BD, UD, EF, IO, RE, US, SE, TO, UE}

// Finding is one detected vulnerability instance.
type Finding struct {
	Class       BugClass
	Addr        state.Address
	PC          uint64
	Description string
}

// Key dedups findings per (class, location).
func (f Finding) Key() string {
	return fmt.Sprintf("%s@%s:%d", f.Class, f.Addr, f.PC)
}

// Report is what one transaction's inspection observed: the findings the
// trace exhibits (deduped within the trace, in detection order) plus whether
// the transaction paid value into the contract (input to the EF oracle).
type Report struct {
	Findings      []Finding
	ReceivedValue bool
	// ValueOutOK marks a witnessed successful value-out execution (a
	// value-bearing CALL from the contract that succeeded, or a selfdestruct).
	// Only witnessed-mode inspectors set it; it feeds the trace-based EF
	// oracle, which replaces the static value-out-opcode scan in world mode.
	ValueOutOK bool
}

// Empty reports whether the inspection observed nothing of interest.
// ValueOutOK is only ever set by witnessed inspectors, so heuristic-mode
// campaigns surface exactly the reports they always did.
func (r Report) Empty() bool {
	return len(r.Findings) == 0 && !r.ReceivedValue && !r.ValueOutOK
}

// Inspector is the stateless per-execution oracle half. All fields are fixed
// at construction, so one Inspector may serve any number of concurrent
// executions.
type Inspector struct {
	addr state.Address

	// static fact about the code, for the ether-freezing oracle
	hasValueOutOp bool

	// witness switches the cross-contract oracles (RE, UD, EF) from taint
	// heuristics to witnessed-schedule rules over the real call trace:
	// reentrancy needs an actual reentrant frame (the campaign adds a
	// state-divergence confirm on top), dangerous delegatecall needs a
	// delegatecall into attacker-controlled code to have executed, and ether
	// freezing tracks whether a value-out ever succeeded instead of whether a
	// value-out opcode exists. World campaigns construct witnessed
	// inspectors; the single-contract path never sets this.
	witness bool
	// attacker is the account whose code the fuzzer synthesizes (witnessed
	// mode only): the UD oracle keys on delegatecalls into it.
	attacker state.Address
}

// NewInspector builds an inspector for the contract at addr with the given
// runtime code. The code is scanned once for value-out instructions (CALL,
// DELEGATECALL, SELFDESTRUCT) — a contract with none of them can never move
// ether out, the static half of the EF oracle.
func NewInspector(addr state.Address, code []byte) *Inspector {
	ins := &Inspector{addr: addr}
	for _, i := range analysis.Disassemble(code) {
		switch i.Op {
		case evm.CALL, evm.DELEGATECALL, evm.SELFDESTRUCT:
			ins.hasValueOutOp = true
		}
	}
	return ins
}

// NewWitnessedInspector builds a witnessed-mode inspector for world
// campaigns: RE/UD/EF key on the observed cross-contract schedule instead of
// taint shapes. attacker is the synthesized attacker account.
func NewWitnessedInspector(addr state.Address, code []byte, attacker state.Address) *Inspector {
	ins := NewInspector(addr, code)
	ins.witness = true
	ins.attacker = attacker
	return ins
}

// report collects findings for one trace, deduping by Key within the trace.
type report struct {
	Report
	seen map[string]bool
}

func (r *report) add(f Finding) {
	if r.seen[f.Key()] {
		return
	}
	if r.seen == nil {
		// Allocated on the first finding only: the overwhelming majority of
		// executions observe nothing, and the campaign hot path calls Inspect
		// once per transaction.
		r.seen = make(map[string]bool)
	}
	r.seen[f.Key()] = true
	r.Findings = append(r.Findings, f)
}

// Inspect applies all per-transaction oracles to one execution trace and
// returns everything observed. txValue is the value sent with the
// transaction, txOK whether it succeeded. Inspect does not mutate the
// inspector; callers fold the Report into a Detector to dedup across the
// campaign.
func (ins *Inspector) Inspect(tr *evm.Trace, txValue u256.Int, txOK bool) Report {
	if tr == nil {
		return Report{}
	}
	var r report
	if txOK && !txValue.IsZero() {
		r.ReceivedValue = true
	}
	ins.inspectSinks(tr, &r)
	ins.inspectOverflows(tr, &r)
	ins.inspectCalls(tr, &r)
	ins.inspectReentry(tr, &r)
	ins.inspectSelfDestructs(tr, &r)
	ins.inspectDelegates(tr, &r)
	if ins.witness {
		ins.inspectValueOut(tr, &r)
	}
	return r.Report
}

// inspectValueOut (witnessed mode) records whether the contract actually
// moved value out in this execution: a successful value-bearing CALL it
// issued, or a selfdestruct (which sweeps the balance to the beneficiary).
// The detector aggregates this into the trace-based EF oracle.
func (ins *Inspector) inspectValueOut(tr *evm.Trace, r *report) {
	for _, c := range tr.Calls {
		if c.Op == evm.CALL && c.From == ins.addr && c.Success && !c.Value.IsZero() {
			r.ValueOutOK = true
			return
		}
	}
	for _, sd := range tr.SelfDestructs {
		if sd.Addr == ins.addr {
			r.ValueOutOK = true
			return
		}
	}
}

// inspectSinks covers BD, SE, and TO, which are all source→sink taint rules.
func (ins *Inspector) inspectSinks(tr *evm.Trace, r *report) {
	for _, s := range tr.Sinks {
		if s.Addr != ins.addr {
			continue
		}
		// BD: block state contaminates a CALL, JUMPI, or comparison.
		if s.Taint&(evm.TaintTimestamp|evm.TaintNumber) != 0 {
			switch s.Kind {
			case evm.SinkJumpCond, evm.SinkCompare, evm.SinkCallValue, evm.SinkCallTarget:
				r.add(Finding{
					Class: BD, Addr: s.Addr, PC: s.PC,
					Description: "block state (timestamp/number) influences a branch or call",
				})
			}
		}
		// SE: BALANCE flows into a strict equality comparison.
		if s.Kind == evm.SinkEq && s.Taint.Has(evm.TaintBalance) {
			r.add(Finding{
				Class: SE, Addr: s.Addr, PC: s.PC,
				Description: "contract balance compared with strict equality",
			})
		}
		// TO: tx.origin used in a comparison (authentication misuse).
		if (s.Kind == evm.SinkCompare || s.Kind == evm.SinkEq || s.Kind == evm.SinkJumpCond) &&
			s.Taint.Has(evm.TaintOrigin) {
			r.add(Finding{
				Class: TO, Addr: s.Addr, PC: s.PC,
				Description: "tx.origin used in a comparison/guard",
			})
		}
	}
}

// inspectOverflows covers IO: a wrapping ADD/SUB/MUL whose result reached
// persistent storage or a call value in the same transaction.
func (ins *Inspector) inspectOverflows(tr *evm.Trace, r *report) {
	if len(tr.Overflows) == 0 {
		return
	}
	sinkSeen := false
	for _, s := range tr.Sinks {
		if s.Addr == ins.addr && s.Taint.Has(evm.TaintOverflow) &&
			(s.Kind == evm.SinkStore || s.Kind == evm.SinkCallValue) {
			sinkSeen = true
			break
		}
	}
	if !sinkSeen {
		return
	}
	for _, ov := range tr.Overflows {
		if ov.Addr != ins.addr {
			continue
		}
		r.add(Finding{
			Class: IO, Addr: ov.Addr, PC: ov.PC,
			Description: fmt.Sprintf("%s wraps mod 2^256 and the result persists", ov.Op),
		})
	}
}

// inspectCalls covers UE: an external call failed and its status word was
// never consumed by a conditional jump.
func (ins *Inspector) inspectCalls(tr *evm.Trace, r *report) {
	for _, c := range tr.Calls {
		if c.From != ins.addr || c.Op != evm.CALL {
			continue
		}
		if !c.Success && !c.Checked {
			r.add(Finding{
				Class: UE, Addr: c.From, PC: uint64(c.ID),
				Description: "external call failed and the status was not checked",
			})
		}
	}
}

// inspectReentry covers RE. Heuristic mode fires when the contract was
// re-entered while an outer value-bearing call with more than the gas
// stipend was in flight (the paper's precondition shape). Witnessed mode
// fires on any actual reentrant frame of the contract — the schedule really
// happened, value-enabled or not — and relies on the campaign's
// state-divergence confirm to discard harmless reentries before the finding
// is absorbed.
func (ins *Inspector) inspectReentry(tr *evm.Trace, r *report) {
	for _, re := range tr.Reentries {
		if re.Addr != ins.addr {
			continue
		}
		if ins.witness {
			r.add(Finding{
				Class: RE, Addr: re.Addr, PC: 0,
				Description: "reentrant schedule executed against the contract and diverged state",
			})
			continue
		}
		if !re.EnabledByValueCall {
			continue
		}
		r.add(Finding{
			Class: RE, Addr: re.Addr, PC: 0,
			Description: "contract re-entered during a value call with forwarded gas",
		})
	}
}

// inspectSelfDestructs covers US: SELFDESTRUCT executed by a caller that is
// neither the creator nor sent by the creator.
func (ins *Inspector) inspectSelfDestructs(tr *evm.Trace, r *report) {
	for _, sd := range tr.SelfDestructs {
		if sd.Addr != ins.addr {
			continue
		}
		if !sd.CallerIsCreator && !sd.OriginIsCreator {
			r.add(Finding{
				Class: US, Addr: sd.Addr, PC: 0,
				Description: "selfdestruct reachable by a non-owner caller",
			})
		}
	}
}

// inspectDelegates covers UD. Heuristic mode flags a DELEGATECALL whose
// target or input derives from transaction input, executed without an owner
// guard. Witnessed mode instead requires the delegatecall to have actually
// executed attacker-controlled code in the contract's storage context — the
// call trace shows a successful DELEGATECALL into the synthesized attacker
// account, which is the real exploit, not its taint shadow.
func (ins *Inspector) inspectDelegates(tr *evm.Trace, r *report) {
	if ins.witness {
		for _, c := range tr.Calls {
			if c.Op == evm.DELEGATECALL && c.From == ins.addr && c.To == ins.attacker && c.Success {
				r.add(Finding{
					Class: UD, Addr: c.From, PC: 0,
					Description: "delegatecall executed attacker-controlled code in the contract's storage context",
				})
			}
		}
		return
	}
	for _, dg := range tr.Delegates {
		if dg.Addr != ins.addr {
			continue
		}
		userControlled := dg.TargetTaint.Has(evm.TaintInput) || dg.InputTaint.Has(evm.TaintInput)
		if userControlled && !dg.CallerIsCreator {
			r.add(Finding{
				Class: UD, Addr: dg.Addr, PC: 0,
				Description: "delegatecall with user-controlled target reachable by non-owner",
			})
		}
	}
}

// Detector accumulates findings for one contract across a fuzzing campaign.
// It is the coordinator-side aggregate: Absorb reports in execution order on
// one goroutine, then Finalize.
type Detector struct {
	insp *Inspector

	receivedValue bool
	// valueOutSeen aggregates witnessed-mode ValueOutOK reports: some
	// execution of the campaign actually moved value out of the contract.
	valueOutSeen bool
	findings     map[string]Finding
}

// NewDetector builds a detector (and its embedded inspector) for the
// contract at addr with the given runtime code.
func NewDetector(addr state.Address, code []byte) *Detector {
	return &Detector{
		insp:     NewInspector(addr, code),
		findings: make(map[string]Finding),
	}
}

// NewWitnessedDetector is NewDetector over a witnessed-mode inspector (world
// campaigns; see NewWitnessedInspector).
func NewWitnessedDetector(addr state.Address, code []byte, attacker state.Address) *Detector {
	return &Detector{
		insp:     NewWitnessedInspector(addr, code, attacker),
		findings: make(map[string]Finding),
	}
}

// Inspector exposes the stateless half for concurrent executors.
func (d *Detector) Inspector() *Inspector {
	return d.insp
}

func (d *Detector) add(f Finding) {
	if _, dup := d.findings[f.Key()]; !dup {
		d.findings[f.Key()] = f
	}
}

// Absorb folds one transaction's Report into the aggregate. It returns the
// bug classes newly discovered by the report (empty for repeats of known
// findings), in the report's detection order.
func (d *Detector) Absorb(r Report) []BugClass {
	if r.ReceivedValue {
		d.receivedValue = true
	}
	if r.ValueOutOK {
		d.valueOutSeen = true
	}
	before := make(map[BugClass]bool)
	for _, f := range d.findings {
		before[f.Class] = true
	}
	var fresh []BugClass
	seen := make(map[BugClass]bool)
	for _, f := range r.Findings {
		d.add(f)
		if !before[f.Class] && !seen[f.Class] {
			fresh = append(fresh, f.Class)
			seen[f.Class] = true
		}
	}
	return fresh
}

// Inspect applies all per-transaction oracles to one execution trace and
// absorbs the result — the single-threaded convenience path.
func (d *Detector) Inspect(tr *evm.Trace, txValue u256.Int, txOK bool) []BugClass {
	return d.Absorb(d.insp.Inspect(tr, txValue, txOK))
}

// State captures the detector's serializable campaign-level state: the
// received-value flag and every finding absorbed so far, in deterministic
// (class, PC) order. Together with the embedded inspector's construction
// inputs (contract address and code, both campaign constants) it fully
// describes the detector, so a snapshotted campaign restores oracle
// aggregation exactly.
func (d *Detector) State() (receivedValue bool, findings []Finding) {
	out := make([]Finding, 0, len(d.findings))
	for _, f := range d.findings {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].PC < out[j].PC
	})
	return d.receivedValue, out
}

// Restore overwrites the detector's aggregate state with a snapshot taken by
// State. The inspector half is untouched (it is stateless).
func (d *Detector) Restore(receivedValue bool, findings []Finding) {
	d.receivedValue = receivedValue
	d.findings = make(map[string]Finding, len(findings))
	for _, f := range findings {
		d.findings[f.Key()] = f
	}
}

// frozen is the campaign-level EF condition: the contract accepted ether
// but can never pay it out. The heuristic inspector proves "never" by the
// absence of value-out opcodes; the witnessed inspector by no execution of
// the whole campaign ever moving value out successfully.
func (d *Detector) frozen() bool {
	if !d.receivedValue {
		return false
	}
	if d.insp.witness {
		return !d.valueOutSeen
	}
	return !d.insp.hasValueOutOp
}

// efDescription renders the mode-appropriate EF explanation.
func (d *Detector) efDescription() string {
	if d.insp.witness {
		return "contract accepted ether and no execution ever moved value out"
	}
	return "contract accepts ether but has no value-transferring instruction"
}

// Finalize applies campaign-level oracles (EF) and returns all findings in
// deterministic order. It does not mutate the aggregate: in witnessed mode
// the EF verdict is retractable — a later execution can move value out and
// clear frozen() — so persisting it here would bake a stale verdict into
// snapshots taken after a mid-campaign result. The finding is recomputed
// from (receivedValue, valueOutSeen) on every call and reappears identically
// at the true end whenever the condition still holds.
func (d *Detector) Finalize() []Finding {
	out := make([]Finding, 0, len(d.findings)+1)
	for _, f := range d.findings {
		out = append(out, f)
	}
	if d.frozen() {
		ef := Finding{
			Class: EF, Addr: d.insp.addr, PC: 0,
			Description: d.efDescription(),
		}
		if _, dup := d.findings[ef.Key()]; !dup {
			out = append(out, ef)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// Classes returns the distinct bug classes found so far.
func (d *Detector) Classes() map[BugClass]bool {
	out := make(map[BugClass]bool)
	for _, f := range d.findings {
		out[f.Class] = true
	}
	if d.frozen() {
		out[EF] = true
	}
	return out
}

// ValueOutSeen exposes the witnessed value-out aggregate for snapshots.
func (d *Detector) ValueOutSeen() bool { return d.valueOutSeen }

// SetValueOutSeen restores the witnessed value-out aggregate from a
// snapshot.
func (d *Detector) SetValueOutSeen(v bool) { d.valueOutSeen = v }
