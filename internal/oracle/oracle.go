// Package oracle implements the nine bug oracles of paper §IV-D. Oracles
// consume EVM execution traces (taint sinks, call events, overflow events,
// reentry events) plus a little campaign-level state, and emit findings.
package oracle

import (
	"fmt"
	"sort"

	"mufuzz/internal/analysis"
	"mufuzz/internal/evm"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// BugClass identifies one of the nine vulnerability classes of Table I.
type BugClass string

// The nine bug classes.
const (
	BD BugClass = "BD" // block dependency
	UD BugClass = "UD" // unprotected delegatecall
	EF BugClass = "EF" // ether freezing
	IO BugClass = "IO" // integer over-/under-flow
	RE BugClass = "RE" // reentrancy
	US BugClass = "US" // unprotected selfdestruct
	SE BugClass = "SE" // strict ether equality
	TO BugClass = "TO" // tx.origin use
	UE BugClass = "UE" // unhandled exception
)

// AllClasses lists every bug class in report order.
var AllClasses = []BugClass{BD, UD, EF, IO, RE, US, SE, TO, UE}

// Finding is one detected vulnerability instance.
type Finding struct {
	Class       BugClass
	Addr        state.Address
	PC          uint64
	Description string
}

// Key dedups findings per (class, location).
func (f Finding) Key() string {
	return fmt.Sprintf("%s@%s:%d", f.Class, f.Addr, f.PC)
}

// Detector accumulates findings for one contract across a fuzzing campaign.
type Detector struct {
	addr state.Address

	// static facts about the code, for the ether-freezing oracle
	hasValueOutOp bool

	receivedValue bool
	findings      map[string]Finding
}

// NewDetector builds a detector for the contract at addr with the given
// runtime code. The code is scanned once for value-out instructions (CALL,
// DELEGATECALL, SELFDESTRUCT) — a contract with none of them can never move
// ether out, the static half of the EF oracle.
func NewDetector(addr state.Address, code []byte) *Detector {
	d := &Detector{addr: addr, findings: make(map[string]Finding)}
	for _, ins := range analysis.Disassemble(code) {
		switch ins.Op {
		case evm.CALL, evm.DELEGATECALL, evm.SELFDESTRUCT:
			d.hasValueOutOp = true
		}
	}
	return d
}

func (d *Detector) add(f Finding) {
	if _, dup := d.findings[f.Key()]; !dup {
		d.findings[f.Key()] = f
	}
}

// Inspect applies all per-transaction oracles to one execution trace.
// txValue is the value sent with the transaction, txOK whether it succeeded.
// It returns the bug classes newly discovered by this trace (empty for
// repeats of known findings).
func (d *Detector) Inspect(tr *evm.Trace, txValue u256.Int, txOK bool) []BugClass {
	if tr == nil {
		return nil
	}
	if txOK && !txValue.IsZero() {
		d.receivedValue = true
	}
	before := make(map[BugClass]bool)
	for _, f := range d.findings {
		before[f.Class] = true
	}

	d.inspectSinks(tr)
	d.inspectOverflows(tr)
	d.inspectCalls(tr)
	d.inspectReentry(tr)
	d.inspectSelfDestructs(tr)
	d.inspectDelegates(tr)

	var fresh []BugClass
	seen := make(map[BugClass]bool)
	for _, f := range d.findings {
		if !before[f.Class] && !seen[f.Class] {
			fresh = append(fresh, f.Class)
			seen[f.Class] = true
		}
	}
	return fresh
}

// inspectSinks covers BD, SE, and TO, which are all source→sink taint rules.
func (d *Detector) inspectSinks(tr *evm.Trace) {
	for _, s := range tr.Sinks {
		if s.Addr != d.addr {
			continue
		}
		// BD: block state contaminates a CALL, JUMPI, or comparison.
		if s.Taint&(evm.TaintTimestamp|evm.TaintNumber) != 0 {
			switch s.Kind {
			case evm.SinkJumpCond, evm.SinkCompare, evm.SinkCallValue, evm.SinkCallTarget:
				d.add(Finding{
					Class: BD, Addr: s.Addr, PC: s.PC,
					Description: "block state (timestamp/number) influences a branch or call",
				})
			}
		}
		// SE: BALANCE flows into a strict equality comparison.
		if s.Kind == evm.SinkEq && s.Taint.Has(evm.TaintBalance) {
			d.add(Finding{
				Class: SE, Addr: s.Addr, PC: s.PC,
				Description: "contract balance compared with strict equality",
			})
		}
		// TO: tx.origin used in a comparison (authentication misuse).
		if (s.Kind == evm.SinkCompare || s.Kind == evm.SinkEq || s.Kind == evm.SinkJumpCond) &&
			s.Taint.Has(evm.TaintOrigin) {
			d.add(Finding{
				Class: TO, Addr: s.Addr, PC: s.PC,
				Description: "tx.origin used in a comparison/guard",
			})
		}
	}
}

// inspectOverflows covers IO: a wrapping ADD/SUB/MUL whose result reached
// persistent storage or a call value in the same transaction.
func (d *Detector) inspectOverflows(tr *evm.Trace) {
	if len(tr.Overflows) == 0 {
		return
	}
	sinkSeen := false
	for _, s := range tr.Sinks {
		if s.Addr == d.addr && s.Taint.Has(evm.TaintOverflow) &&
			(s.Kind == evm.SinkStore || s.Kind == evm.SinkCallValue) {
			sinkSeen = true
			break
		}
	}
	if !sinkSeen {
		return
	}
	for _, ov := range tr.Overflows {
		if ov.Addr != d.addr {
			continue
		}
		d.add(Finding{
			Class: IO, Addr: ov.Addr, PC: ov.PC,
			Description: fmt.Sprintf("%s wraps mod 2^256 and the result persists", ov.Op),
		})
	}
}

// inspectCalls covers UE: an external call failed and its status word was
// never consumed by a conditional jump.
func (d *Detector) inspectCalls(tr *evm.Trace) {
	for _, c := range tr.Calls {
		if c.From != d.addr || c.Op != evm.CALL {
			continue
		}
		if !c.Success && !c.Checked {
			d.add(Finding{
				Class: UE, Addr: c.From, PC: uint64(c.ID),
				Description: "external call failed and the status was not checked",
			})
		}
	}
}

// inspectReentry covers RE: the contract was re-entered while an outer
// value-bearing call with more than the gas stipend was in flight.
func (d *Detector) inspectReentry(tr *evm.Trace) {
	for _, r := range tr.Reentries {
		if r.Addr != d.addr || !r.EnabledByValueCall {
			continue
		}
		d.add(Finding{
			Class: RE, Addr: r.Addr, PC: 0,
			Description: "contract re-entered during a value call with forwarded gas",
		})
	}
}

// inspectSelfDestructs covers US: SELFDESTRUCT executed by a caller that is
// neither the creator nor sent by the creator.
func (d *Detector) inspectSelfDestructs(tr *evm.Trace) {
	for _, sd := range tr.SelfDestructs {
		if sd.Addr != d.addr {
			continue
		}
		if !sd.CallerIsCreator && !sd.OriginIsCreator {
			d.add(Finding{
				Class: US, Addr: sd.Addr, PC: 0,
				Description: "selfdestruct reachable by a non-owner caller",
			})
		}
	}
}

// inspectDelegates covers UD: DELEGATECALL whose target or input derives
// from transaction input, executed without an owner guard.
func (d *Detector) inspectDelegates(tr *evm.Trace) {
	for _, dg := range tr.Delegates {
		if dg.Addr != d.addr {
			continue
		}
		userControlled := dg.TargetTaint.Has(evm.TaintInput) || dg.InputTaint.Has(evm.TaintInput)
		if userControlled && !dg.CallerIsCreator {
			d.add(Finding{
				Class: UD, Addr: dg.Addr, PC: 0,
				Description: "delegatecall with user-controlled target reachable by non-owner",
			})
		}
	}
}

// Finalize applies campaign-level oracles (EF) and returns all findings in
// deterministic order.
func (d *Detector) Finalize() []Finding {
	// EF: the contract accepted ether during the campaign but its code
	// contains no instruction that could ever move value out.
	if d.receivedValue && !d.hasValueOutOp {
		d.add(Finding{
			Class: EF, Addr: d.addr, PC: 0,
			Description: "contract accepts ether but has no value-transferring instruction",
		})
	}
	out := make([]Finding, 0, len(d.findings))
	for _, f := range d.findings {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// Classes returns the distinct bug classes found so far.
func (d *Detector) Classes() map[BugClass]bool {
	out := make(map[BugClass]bool)
	for _, f := range d.findings {
		out[f.Class] = true
	}
	if d.receivedValue && !d.hasValueOutOp {
		out[EF] = true
	}
	return out
}
