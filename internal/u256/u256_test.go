package u256

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

var two256 = new(big.Int).Lsh(big.NewInt(1), 256)

// mod256 reduces a big.Int into [0, 2^256).
func mod256(b *big.Int) *big.Int {
	return new(big.Int).Mod(b, two256)
}

// toSigned interprets a non-negative 256-bit big.Int as two's complement.
func toSigned(b *big.Int) *big.Int {
	if b.Bit(255) == 1 {
		return new(big.Int).Sub(b, two256)
	}
	return new(big.Int).Set(b)
}

// Generate implements quick.Generator so random Ints cover interesting
// shapes: small values, values near 2^256, and fully random limbs.
func (Int) Generate(r *rand.Rand, _ int) reflect.Value {
	var x Int
	switch r.Intn(5) {
	case 0:
		x = New(r.Uint64() % 1000)
	case 1:
		x = Max.Sub(New(r.Uint64() % 1000))
	case 2:
		x = New(r.Uint64())
	default:
		x = NewFromLimbs(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
	}
	return reflect.ValueOf(x)
}

func TestRoundTripBig(t *testing.T) {
	f := func(x Int) bool {
		return FromBig(x.ToBig()).Eq(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTripBytes(t *testing.T) {
	f := func(x Int) bool {
		b := x.Bytes32()
		return FromBytes(b[:]).Eq(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromBytesShortPadsLeft(t *testing.T) {
	got := FromBytes([]byte{0x01, 0x02})
	if !got.Eq(New(0x0102)) {
		t.Errorf("FromBytes short = %s, want 258", got)
	}
	long := make([]byte, 40)
	long[39] = 7
	if !FromBytes(long).Eq(New(7)) {
		t.Errorf("FromBytes long input should keep last 32 bytes")
	}
}

func TestAddMatchesBig(t *testing.T) {
	f := func(x, y Int) bool {
		want := mod256(new(big.Int).Add(x.ToBig(), y.ToBig()))
		return x.Add(y).ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddOverflowFlag(t *testing.T) {
	f := func(x, y Int) bool {
		_, ovf := x.AddOverflow(y)
		exact := new(big.Int).Add(x.ToBig(), y.ToBig())
		return ovf == (exact.Cmp(two256) >= 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubMatchesBig(t *testing.T) {
	f := func(x, y Int) bool {
		want := mod256(new(big.Int).Sub(x.ToBig(), y.ToBig()))
		z, under := x.SubUnderflow(y)
		if under != (x.Cmp(y) < 0) {
			return false
		}
		return z.ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulMatchesBig(t *testing.T) {
	f := func(x, y Int) bool {
		want := mod256(new(big.Int).Mul(x.ToBig(), y.ToBig()))
		z, ovf := x.MulOverflow(y)
		exact := new(big.Int).Mul(x.ToBig(), y.ToBig())
		if ovf != (exact.Cmp(two256) >= 0) {
			return false
		}
		return z.ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivModMatchesBig(t *testing.T) {
	f := func(x, y Int) bool {
		if y.IsZero() {
			return x.Div(y).IsZero() && x.Mod(y).IsZero()
		}
		wantQ := new(big.Int).Div(x.ToBig(), y.ToBig())
		wantR := new(big.Int).Mod(x.ToBig(), y.ToBig())
		return x.Div(y).ToBig().Cmp(wantQ) == 0 && x.Mod(y).ToBig().Cmp(wantR) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSDivSModMatchesBig(t *testing.T) {
	f := func(x, y Int) bool {
		if y.IsZero() {
			return x.SDiv(y).IsZero() && x.SMod(y).IsZero()
		}
		xs, ys := toSigned(x.ToBig()), toSigned(y.ToBig())
		wantQ := new(big.Int).Quo(xs, ys) // truncated division
		wantR := new(big.Int).Rem(xs, ys) // sign of dividend
		return x.SDiv(y).ToBig().Cmp(mod256(wantQ)) == 0 &&
			x.SMod(y).ToBig().Cmp(mod256(wantR)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpMatchesBig(t *testing.T) {
	f := func(x Int, e uint16) bool {
		y := New(uint64(e))
		want := new(big.Int).Exp(x.ToBig(), y.ToBig(), two256)
		return x.Exp(y).ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpEdgeCases(t *testing.T) {
	if !New(0).Exp(New(0)).Eq(One) {
		t.Error("0**0 should be 1 (EVM convention)")
	}
	if !New(2).Exp(New(256)).IsZero() {
		t.Error("2**256 should wrap to 0")
	}
	if !New(2).Exp(New(255)).Eq(One.Lsh(255)) {
		t.Error("2**255 mismatch")
	}
}

func TestShiftsMatchBig(t *testing.T) {
	f := func(x Int, n uint16) bool {
		s := uint(n) % 300
		wantL := mod256(new(big.Int).Lsh(x.ToBig(), s))
		wantR := new(big.Int).Rsh(x.ToBig(), s)
		return x.Lsh(s).ToBig().Cmp(wantL) == 0 && x.Rsh(s).ToBig().Cmp(wantR) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSar(t *testing.T) {
	minusOne := Max
	if !minusOne.Sar(1).Eq(Max) {
		t.Error("(-1) sar 1 should stay -1")
	}
	if !minusOne.Sar(300).Eq(Max) {
		t.Error("(-1) sar >=256 should be -1")
	}
	if !New(8).Sar(2).Eq(New(2)) {
		t.Error("8 sar 2 should be 2")
	}
	minusEight := New(8).Neg()
	if !minusEight.Sar(2).Eq(New(2).Neg()) {
		t.Errorf("(-8) sar 2 = %s, want -2 two's complement", minusEight.Sar(2))
	}
	if !New(5).Sar(300).IsZero() {
		t.Error("positive sar >=256 should be 0")
	}
}

func TestSignExtend(t *testing.T) {
	// 0xff at byte 0, extend from byte 0 → all ones (i.e. -1).
	if got := New(0xff).SignExtend(New(0)); !got.Eq(Max) {
		t.Errorf("signextend(0, 0xff) = %s, want -1", got.Hex())
	}
	// 0x7f has sign bit clear → unchanged.
	if got := New(0x7f).SignExtend(New(0)); !got.Eq(New(0x7f)) {
		t.Errorf("signextend(0, 0x7f) = %s, want 0x7f", got.Hex())
	}
	// Upper garbage cleared when sign bit is 0.
	x := New(0x17f) // bit 8 set but byte-0 sign bit clear
	if got := x.SignExtend(New(0)); !got.Eq(New(0x7f)) {
		t.Errorf("signextend should clear high bits, got %s", got.Hex())
	}
	// b >= 31 leaves x unchanged.
	if got := Max.SignExtend(New(31)); !got.Eq(Max) {
		t.Error("signextend with b>=31 should be identity")
	}
}

func TestByte(t *testing.T) {
	x := FromBytes([]byte{0xaa, 0xbb})
	// Bytes32 is left padded, so index 30 is 0xaa, 31 is 0xbb.
	if !x.Byte(New(31)).Eq(New(0xbb)) || !x.Byte(New(30)).Eq(New(0xaa)) {
		t.Error("Byte extraction mismatch")
	}
	if !x.Byte(New(0)).IsZero() {
		t.Error("leading byte should be zero")
	}
	if !x.Byte(New(32)).IsZero() {
		t.Error("out-of-range byte should be zero")
	}
}

func TestAddModMulMod(t *testing.T) {
	f := func(x, y, m Int) bool {
		if m.IsZero() {
			return x.AddMod(y, m).IsZero() && x.MulMod(y, m).IsZero()
		}
		wantA := new(big.Int).Add(x.ToBig(), y.ToBig())
		wantA.Mod(wantA, m.ToBig())
		wantM := new(big.Int).Mul(x.ToBig(), y.ToBig())
		wantM.Mod(wantM, m.ToBig())
		return x.AddMod(y, m).ToBig().Cmp(wantA) == 0 &&
			x.MulMod(y, m).ToBig().Cmp(wantM) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpAndSigned(t *testing.T) {
	minusOne := Max
	if minusOne.Scmp(One) != -1 {
		t.Error("-1 should be signed-less-than 1")
	}
	if One.Scmp(minusOne) != 1 {
		t.Error("1 should be signed-greater-than -1")
	}
	if minusOne.Cmp(One) != 1 {
		t.Error("unsigned max should be greater than 1")
	}
	if Zero.Sign() != 0 || One.Sign() != 1 || minusOne.Sign() != -1 {
		t.Error("Sign() misbehaves")
	}
}

func TestBitwiseOps(t *testing.T) {
	f := func(x, y Int) bool {
		okAnd := x.And(y).ToBig().Cmp(new(big.Int).And(x.ToBig(), y.ToBig())) == 0
		okOr := x.Or(y).ToBig().Cmp(new(big.Int).Or(x.ToBig(), y.ToBig())) == 0
		okXor := x.Xor(y).ToBig().Cmp(new(big.Int).Xor(x.ToBig(), y.ToBig())) == 0
		okNot := x.Not().ToBig().Cmp(new(big.Int).Sub(new(big.Int).Sub(two256, big.NewInt(1)), x.ToBig())) == 0
		return okAnd && okOr && okXor && okNot
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAbsDiff(t *testing.T) {
	f := func(x, y Int) bool {
		d := x.AbsDiff(y)
		want := new(big.Int).Sub(x.ToBig(), y.ToBig())
		want.Abs(want)
		return d.ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitLen(t *testing.T) {
	cases := []struct {
		x    Int
		want int
	}{
		{Zero, 0},
		{One, 1},
		{New(255), 8},
		{New(256), 9},
		{One.Lsh(200), 201},
		{Max, 256},
	}
	for _, tc := range cases {
		if got := tc.x.BitLen(); got != tc.want {
			t.Errorf("BitLen(%s) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestNegFromBigNegative(t *testing.T) {
	got := FromBig(big.NewInt(-5))
	want := New(5).Neg()
	if !got.Eq(want) {
		t.Errorf("FromBig(-5) = %s, want two's complement -5", got.Hex())
	}
}

func BenchmarkAdd(b *testing.B) {
	x := NewFromLimbs(1, 2, 3, 4)
	y := NewFromLimbs(5, 6, 7, 8)
	for i := 0; i < b.N; i++ {
		x = x.Add(y)
	}
	_ = x
}

func BenchmarkMul(b *testing.B) {
	x := NewFromLimbs(1, 2, 3, 4)
	y := NewFromLimbs(5, 6, 7, 8)
	var z Int
	for i := 0; i < b.N; i++ {
		z = x.Mul(y)
	}
	_ = z
}
