// Package u256 implements fixed-width 256-bit unsigned integers with the
// exact wrapping and two's-complement semantics of EVM words.
//
// The representation is four little-endian uint64 limbs. All arithmetic is
// allocation-free in the common paths; Div/Mod fall back to math/big for the
// general multi-limb case, which is rare in fuzzing workloads and keeps the
// implementation small and verifiably correct (the property tests cross-check
// every operation against math/big).
package u256

import (
	"encoding/binary"
	"math/big"
	"math/bits"
	"strconv"
)

// Int is a 256-bit unsigned integer. The zero value is zero and ready to use.
// limbs[0] holds the least-significant 64 bits.
type Int struct {
	limbs [4]uint64
}

// Common constants. Treat as immutable.
var (
	Zero = Int{}
	One  = Int{limbs: [4]uint64{1, 0, 0, 0}}
	Max  = Int{limbs: [4]uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}}
)

// New returns an Int holding the given uint64 value.
func New(v uint64) Int {
	return Int{limbs: [4]uint64{v, 0, 0, 0}}
}

// NewFromLimbs constructs an Int from little-endian limbs.
func NewFromLimbs(l0, l1, l2, l3 uint64) Int {
	return Int{limbs: [4]uint64{l0, l1, l2, l3}}
}

// FromBig converts a big.Int, truncating modulo 2^256. Negative inputs are
// converted to their two's-complement representation, mirroring EVM casts.
func FromBig(b *big.Int) Int {
	var x Int
	abs := new(big.Int).Abs(b)
	words := abs.Bits()
	for i := 0; i < len(words) && i < 4; i++ {
		x.limbs[i] = uint64(words[i])
	}
	if b.Sign() < 0 {
		x = x.Neg()
	}
	return x
}

// ToBig converts to a non-negative big.Int.
func (x Int) ToBig() *big.Int {
	b := new(big.Int)
	for i := 3; i >= 0; i-- {
		b.Lsh(b, 64)
		b.Or(b, new(big.Int).SetUint64(x.limbs[i]))
	}
	return b
}

// FromBytes interprets b as a big-endian unsigned integer, using at most the
// last 32 bytes (EVM word semantics: shorter inputs are left-padded).
func FromBytes(b []byte) Int {
	if len(b) > 32 {
		b = b[len(b)-32:]
	}
	var buf [32]byte
	copy(buf[32-len(b):], b)
	return Int{limbs: [4]uint64{
		binary.BigEndian.Uint64(buf[24:32]),
		binary.BigEndian.Uint64(buf[16:24]),
		binary.BigEndian.Uint64(buf[8:16]),
		binary.BigEndian.Uint64(buf[0:8]),
	}}
}

// Bytes32 returns the 32-byte big-endian representation.
func (x Int) Bytes32() [32]byte {
	var out [32]byte
	binary.BigEndian.PutUint64(out[0:8], x.limbs[3])
	binary.BigEndian.PutUint64(out[8:16], x.limbs[2])
	binary.BigEndian.PutUint64(out[16:24], x.limbs[1])
	binary.BigEndian.PutUint64(out[24:32], x.limbs[0])
	return out
}

// Uint64 returns the low 64 bits.
func (x Int) Uint64() uint64 { return x.limbs[0] }

// FitsUint64 reports whether x is representable in a uint64.
func (x Int) FitsUint64() bool {
	return x.limbs[1] == 0 && x.limbs[2] == 0 && x.limbs[3] == 0
}

// IsZero reports whether x == 0.
func (x Int) IsZero() bool {
	return x.limbs[0]|x.limbs[1]|x.limbs[2]|x.limbs[3] == 0
}

// Sign reports the sign of x interpreted as a two's-complement signed value:
// -1 if negative, 0 if zero, 1 if positive.
func (x Int) Sign() int {
	if x.IsZero() {
		return 0
	}
	if x.limbs[3]>>63 == 1 {
		return -1
	}
	return 1
}

// Cmp compares x and y as unsigned values: -1, 0, or +1.
func (x Int) Cmp(y Int) int {
	for i := 3; i >= 0; i-- {
		if x.limbs[i] < y.limbs[i] {
			return -1
		}
		if x.limbs[i] > y.limbs[i] {
			return 1
		}
	}
	return 0
}

// Scmp compares x and y as two's-complement signed values.
func (x Int) Scmp(y Int) int {
	xs, ys := x.Sign() < 0, y.Sign() < 0
	switch {
	case xs && !ys:
		return -1
	case !xs && ys:
		return 1
	default:
		return x.Cmp(y)
	}
}

// Eq reports whether x == y.
func (x Int) Eq(y Int) bool { return x.limbs == y.limbs }

// Lt reports x < y (unsigned).
func (x Int) Lt(y Int) bool { return x.Cmp(y) < 0 }

// Gt reports x > y (unsigned).
func (x Int) Gt(y Int) bool { return x.Cmp(y) > 0 }

// Add returns x + y mod 2^256 and whether the addition overflowed.
func (x Int) AddOverflow(y Int) (Int, bool) {
	var z Int
	var c uint64
	z.limbs[0], c = bits.Add64(x.limbs[0], y.limbs[0], 0)
	z.limbs[1], c = bits.Add64(x.limbs[1], y.limbs[1], c)
	z.limbs[2], c = bits.Add64(x.limbs[2], y.limbs[2], c)
	z.limbs[3], c = bits.Add64(x.limbs[3], y.limbs[3], c)
	return z, c != 0
}

// Add returns x + y mod 2^256.
func (x Int) Add(y Int) Int {
	z, _ := x.AddOverflow(y)
	return z
}

// SubUnderflow returns x - y mod 2^256 and whether the subtraction borrowed.
func (x Int) SubUnderflow(y Int) (Int, bool) {
	var z Int
	var b uint64
	z.limbs[0], b = bits.Sub64(x.limbs[0], y.limbs[0], 0)
	z.limbs[1], b = bits.Sub64(x.limbs[1], y.limbs[1], b)
	z.limbs[2], b = bits.Sub64(x.limbs[2], y.limbs[2], b)
	z.limbs[3], b = bits.Sub64(x.limbs[3], y.limbs[3], b)
	return z, b != 0
}

// Sub returns x - y mod 2^256.
func (x Int) Sub(y Int) Int {
	z, _ := x.SubUnderflow(y)
	return z
}

// MulOverflow returns x * y mod 2^256 and whether the full product exceeded
// 256 bits.
func (x Int) MulOverflow(y Int) (Int, bool) {
	// Schoolbook multiplication keeping the low 4 limbs and tracking whether
	// anything spills above them.
	var z [8]uint64
	for i := 0; i < 4; i++ {
		var carry uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(x.limbs[i], y.limbs[j])
			var c1, c2 uint64
			z[i+j], c1 = bits.Add64(z[i+j], lo, 0)
			z[i+j], c2 = bits.Add64(z[i+j], carry, 0)
			carry = hi + c1 + c2 // cannot overflow: hi <= 2^64-2
		}
		z[i+4] += carry
	}
	overflow := z[4]|z[5]|z[6]|z[7] != 0
	return Int{limbs: [4]uint64{z[0], z[1], z[2], z[3]}}, overflow
}

// Mul returns x * y mod 2^256.
func (x Int) Mul(y Int) Int {
	z, _ := x.MulOverflow(y)
	return z
}

// Div returns x / y (unsigned). Division by zero yields zero, per EVM DIV.
func (x Int) Div(y Int) Int {
	if y.IsZero() {
		return Zero
	}
	if x.Cmp(y) < 0 {
		return Zero
	}
	if x.FitsUint64() { // implies y fits too since y <= x
		return New(x.limbs[0] / y.limbs[0])
	}
	q := new(big.Int).Div(x.ToBig(), y.ToBig())
	return FromBig(q)
}

// Mod returns x % y (unsigned). Mod by zero yields zero, per EVM MOD.
func (x Int) Mod(y Int) Int {
	if y.IsZero() {
		return Zero
	}
	if x.Cmp(y) < 0 {
		return x
	}
	if x.FitsUint64() {
		return New(x.limbs[0] % y.limbs[0])
	}
	m := new(big.Int).Mod(x.ToBig(), y.ToBig())
	return FromBig(m)
}

// SDiv returns x / y with both interpreted as two's-complement signed values,
// truncating toward zero. Division by zero yields zero, per EVM SDIV.
func (x Int) SDiv(y Int) Int {
	if y.IsZero() {
		return Zero
	}
	xa, xneg := x.abs()
	ya, yneg := y.abs()
	q := xa.Div(ya)
	if xneg != yneg {
		return q.Neg()
	}
	return q
}

// SMod returns x % y signed; the result takes the sign of the dividend, per
// EVM SMOD. Mod by zero yields zero.
func (x Int) SMod(y Int) Int {
	if y.IsZero() {
		return Zero
	}
	xa, xneg := x.abs()
	ya, _ := y.abs()
	m := xa.Mod(ya)
	if xneg {
		return m.Neg()
	}
	return m
}

// abs returns |x| and whether x was negative under signed interpretation.
func (x Int) abs() (Int, bool) {
	if x.Sign() < 0 {
		return x.Neg(), true
	}
	return x, false
}

// Neg returns -x mod 2^256 (two's complement).
func (x Int) Neg() Int {
	return Zero.Sub(x)
}

// Not returns the bitwise complement of x.
func (x Int) Not() Int {
	return Int{limbs: [4]uint64{^x.limbs[0], ^x.limbs[1], ^x.limbs[2], ^x.limbs[3]}}
}

// And returns x & y.
func (x Int) And(y Int) Int {
	return Int{limbs: [4]uint64{x.limbs[0] & y.limbs[0], x.limbs[1] & y.limbs[1], x.limbs[2] & y.limbs[2], x.limbs[3] & y.limbs[3]}}
}

// Or returns x | y.
func (x Int) Or(y Int) Int {
	return Int{limbs: [4]uint64{x.limbs[0] | y.limbs[0], x.limbs[1] | y.limbs[1], x.limbs[2] | y.limbs[2], x.limbs[3] | y.limbs[3]}}
}

// Xor returns x ^ y.
func (x Int) Xor(y Int) Int {
	return Int{limbs: [4]uint64{x.limbs[0] ^ y.limbs[0], x.limbs[1] ^ y.limbs[1], x.limbs[2] ^ y.limbs[2], x.limbs[3] ^ y.limbs[3]}}
}

// Lsh returns x << n. Shifts of 256 or more yield zero.
func (x Int) Lsh(n uint) Int {
	if n >= 256 {
		return Zero
	}
	word := n / 64
	off := n % 64
	var z Int
	for i := 3; i >= int(word); i-- {
		z.limbs[i] = x.limbs[i-int(word)] << off
		if off > 0 && i-int(word)-1 >= 0 {
			z.limbs[i] |= x.limbs[i-int(word)-1] >> (64 - off)
		}
	}
	return z
}

// Rsh returns x >> n (logical). Shifts of 256 or more yield zero.
func (x Int) Rsh(n uint) Int {
	if n >= 256 {
		return Zero
	}
	word := n / 64
	off := n % 64
	var z Int
	for i := 0; i < 4-int(word); i++ {
		z.limbs[i] = x.limbs[i+int(word)] >> off
		if off > 0 && i+int(word)+1 < 4 {
			z.limbs[i] |= x.limbs[i+int(word)+1] << (64 - off)
		}
	}
	return z
}

// Sar returns x >> n arithmetic (sign-extending), per EVM SAR.
func (x Int) Sar(n uint) Int {
	if x.Sign() >= 0 {
		return x.Rsh(n)
	}
	if n >= 256 {
		return Max
	}
	// shift then set the vacated high bits
	z := x.Rsh(n)
	mask := Max.Lsh(256 - n)
	return z.Or(mask)
}

// Exp returns x ** y mod 2^256 by square-and-multiply, per EVM EXP.
func (x Int) Exp(y Int) Int {
	result := One
	base := x
	n := y.BitLen()
	for i := 0; i < n; i++ {
		if y.limbs[i/64]>>(uint(i)%64)&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Mul(base)
	}
	return result
}

// SignExtend extends the sign bit of the byte at index b (0 = lowest byte)
// through the full word, per EVM SIGNEXTEND. If b >= 31 x is unchanged.
func (x Int) SignExtend(b Int) Int {
	if !b.FitsUint64() || b.limbs[0] >= 31 {
		return x
	}
	bitIndex := uint(b.limbs[0]*8 + 7)
	signBit := x.Rsh(bitIndex).limbs[0] & 1
	mask := Max.Lsh(bitIndex + 1)
	if signBit == 1 {
		return x.Or(mask)
	}
	return x.And(mask.Not())
}

// Byte returns byte i of x where i==0 is the most-significant byte, per the
// EVM BYTE opcode. Out-of-range indices yield zero.
func (x Int) Byte(i Int) Int {
	if !i.FitsUint64() || i.limbs[0] >= 32 {
		return Zero
	}
	b := x.Bytes32()
	return New(uint64(b[i.limbs[0]]))
}

// AddMod returns (x + y) % m with full intermediate precision, per EVM ADDMOD.
func (x Int) AddMod(y, m Int) Int {
	if m.IsZero() {
		return Zero
	}
	s := new(big.Int).Add(x.ToBig(), y.ToBig())
	s.Mod(s, m.ToBig())
	return FromBig(s)
}

// MulMod returns (x * y) % m with full intermediate precision, per EVM MULMOD.
func (x Int) MulMod(y, m Int) Int {
	if m.IsZero() {
		return Zero
	}
	p := new(big.Int).Mul(x.ToBig(), y.ToBig())
	p.Mod(p, m.ToBig())
	return FromBig(p)
}

// AbsDiff returns |x - y| as an unsigned value. Used for branch-distance
// feedback.
func (x Int) AbsDiff(y Int) Int {
	if x.Cmp(y) >= 0 {
		return x.Sub(y)
	}
	return y.Sub(x)
}

// BitLen returns the number of bits required to represent x.
func (x Int) BitLen() int {
	for i := 3; i >= 0; i-- {
		if x.limbs[i] != 0 {
			return i*64 + bits.Len64(x.limbs[i])
		}
	}
	return 0
}

// String formats x in decimal.
func (x Int) String() string {
	return x.ToBig().String()
}

// Hex formats x as 0x-prefixed minimal hexadecimal.
func (x Int) Hex() string {
	var buf [66]byte
	return string(x.AppendHex(buf[:0]))
}

const hexDigits = "0123456789abcdef"

// AppendHex appends the 0x-prefixed minimal hexadecimal form of x to b and
// returns the extended slice — Hex without the string allocation, for hot
// encoders. The output is byte-identical to fmt's %#x of the value.
func (x Int) AppendHex(b []byte) []byte {
	hi := 3
	for hi > 0 && x.limbs[hi] == 0 {
		hi--
	}
	b = append(b, '0', 'x')
	// Top limb without leading zeros, lower limbs padded to 16 nibbles.
	b = strconv.AppendUint(b, x.limbs[hi], 16)
	for i := hi - 1; i >= 0; i-- {
		for shift := 60; shift >= 0; shift -= 4 {
			b = append(b, hexDigits[(x.limbs[i]>>uint(shift))&0xf])
		}
	}
	return b
}
