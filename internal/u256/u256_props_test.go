package u256

import (
	"testing"
	"testing/quick"
)

// Algebraic identities that must hold exactly under mod-2^256 arithmetic.

func TestAddCommutativeAssociative(t *testing.T) {
	comm := func(x, y Int) bool { return x.Add(y).Eq(y.Add(x)) }
	if err := quick.Check(comm, nil); err != nil {
		t.Error("commutativity:", err)
	}
	assoc := func(x, y, z Int) bool {
		return x.Add(y).Add(z).Eq(x.Add(y.Add(z)))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error("associativity:", err)
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(x, y Int) bool {
		return x.Add(y).Sub(y).Eq(x) && x.Sub(y).Add(y).Eq(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegIsAdditiveInverse(t *testing.T) {
	f := func(x Int) bool {
		return x.Add(x.Neg()).IsZero() && x.Neg().Neg().Eq(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulDistributesOverAdd(t *testing.T) {
	f := func(x, y, z Int) bool {
		left := x.Mul(y.Add(z))
		right := x.Mul(y).Add(x.Mul(z))
		return left.Eq(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivModReconstruction(t *testing.T) {
	f := func(x, y Int) bool {
		if y.IsZero() {
			return true
		}
		// x == (x/y)*y + x%y, and x%y < y
		q, r := x.Div(y), x.Mod(y)
		return q.Mul(y).Add(r).Eq(x) && r.Lt(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftComposition(t *testing.T) {
	f := func(x Int, a, b uint8) bool {
		s1, s2 := uint(a)%128, uint(b)%128
		// (x << a) << b == x << (a+b) for a+b < 256
		return x.Lsh(s1).Lsh(s2).Eq(x.Lsh(s1+s2)) &&
			x.Rsh(s1).Rsh(s2).Eq(x.Rsh(s1+s2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftMulEquivalence(t *testing.T) {
	f := func(x Int, s uint8) bool {
		n := uint(s) % 256
		return x.Lsh(n).Eq(x.Mul(One.Lsh(n)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpLaws(t *testing.T) {
	// x^(a+b) == x^a * x^b for small exponents
	f := func(x Int, a, b uint8) bool {
		ea, eb := New(uint64(a)), New(uint64(b))
		sum := New(uint64(a) + uint64(b))
		return x.Exp(sum).Eq(x.Exp(ea).Mul(x.Exp(eb)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// x^1 == x, x^0 == 1
	g := func(x Int) bool {
		return x.Exp(One).Eq(x) && x.Exp(Zero).Eq(One)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestDeMorgan(t *testing.T) {
	f := func(x, y Int) bool {
		// ~(x & y) == ~x | ~y
		return x.And(y).Not().Eq(x.Not().Or(y.Not()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorSelfInverse(t *testing.T) {
	f := func(x, y Int) bool {
		return x.Xor(y).Xor(y).Eq(x) && x.Xor(x).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpTotalOrder(t *testing.T) {
	f := func(x, y, z Int) bool {
		// antisymmetry
		if x.Cmp(y) != -y.Cmp(x) {
			return false
		}
		// transitivity of <=
		if x.Cmp(y) <= 0 && y.Cmp(z) <= 0 && x.Cmp(z) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignedAbsDiffConsistency(t *testing.T) {
	f := func(x, y Int) bool {
		d := x.AbsDiff(y)
		// d + min == max
		if x.Cmp(y) >= 0 {
			return y.Add(d).Eq(x)
		}
		return x.Add(d).Eq(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
