package u256

import (
	"math/big"
	"testing"
)

// wrap reduces a big integer into [0, 2^256) two's-complement style.
func wrap(b *big.Int) *big.Int {
	b.Mod(b, two256)
	if b.Sign() < 0 {
		b.Add(b, two256)
	}
	return b
}

// signedBig interprets x as a two's-complement 256-bit integer.
func signedBig(x Int) *big.Int {
	b := x.ToBig()
	if x.limbs[3]>>63 == 1 {
		b.Sub(b, two256)
	}
	return b
}

// FuzzU256Ops drives every arithmetic, bitwise, shift, and comparison
// operation of the 4-limb implementation against the math/big reference
// (mod 2^256, EVM semantics for division by zero and signed edge cases).
func FuzzU256Ops(f *testing.F) {
	f.Add(make([]byte, 64), byte(0))
	f.Add(append(make([]byte, 63), 1), byte(2))
	max := make([]byte, 64)
	for i := range max {
		max[i] = 0xff
	}
	f.Add(max, byte(4))
	f.Fuzz(func(t *testing.T, raw []byte, opByte byte) {
		var xa, xb [32]byte
		copy(xa[:], raw)
		if len(raw) > 32 {
			copy(xb[:], raw[32:])
		}
		x, y := FromBytes(xa[:]), FromBytes(xb[:])
		bx, by := x.ToBig(), y.ToBig()

		check := func(op string, got Int, want *big.Int) {
			t.Helper()
			if got.ToBig().Cmp(wrap(want)) != 0 {
				t.Fatalf("%s(%s, %s) = %s, reference %s", op, x.Hex(), y.Hex(), got.Hex(), wrap(want).Text(16))
			}
		}

		switch opByte % 16 {
		case 0:
			check("add", x.Add(y), new(big.Int).Add(bx, by))
		case 1:
			check("sub", x.Sub(y), new(big.Int).Sub(bx, by))
		case 2:
			check("mul", x.Mul(y), new(big.Int).Mul(bx, by))
		case 3:
			want := new(big.Int)
			if by.Sign() != 0 {
				want.Div(bx, by)
			}
			check("div", x.Div(y), want)
		case 4:
			want := new(big.Int)
			if by.Sign() != 0 {
				want.Mod(bx, by)
			}
			check("mod", x.Mod(y), want)
		case 5:
			// sdiv: truncated toward zero, sign from operands, /0 = 0
			sx, sy := signedBig(x), signedBig(y)
			want := new(big.Int)
			if sy.Sign() != 0 {
				want.Quo(sx, sy)
			}
			check("sdiv", x.SDiv(y), want)
		case 6:
			// smod: sign follows the dividend, %0 = 0
			sx, sy := signedBig(x), signedBig(y)
			want := new(big.Int)
			if sy.Sign() != 0 {
				want.Rem(sx, sy)
			}
			check("smod", x.SMod(y), want)
		case 7:
			check("and", x.And(y), new(big.Int).And(bx, by))
		case 8:
			check("or", x.Or(y), new(big.Int).Or(bx, by))
		case 9:
			check("xor", x.Xor(y), new(big.Int).Xor(bx, by))
		case 10:
			check("not", x.Not(), new(big.Int).Sub(new(big.Int).Sub(two256, big.NewInt(1)), bx))
		case 11:
			n := uint(y.limbs[0] % 300)
			check("lsh", x.Lsh(n), new(big.Int).Lsh(bx, n))
		case 12:
			n := uint(y.limbs[0] % 300)
			check("rsh", x.Rsh(n), new(big.Int).Rsh(bx, n))
		case 13:
			n := uint(y.limbs[0] % 300)
			// big.Int.Rsh on a negative value floors, which is SAR.
			check("sar", x.Sar(n), new(big.Int).Rsh(signedBig(x), n))
		case 14:
			if got, want := x.Cmp(y), bx.Cmp(by); got != want {
				t.Fatalf("cmp(%s, %s) = %d, reference %d", x.Hex(), y.Hex(), got, want)
			}
			if got, want := x.Scmp(y), signedBig(x).Cmp(signedBig(y)); got != want {
				t.Fatalf("scmp(%s, %s) = %d, reference %d", x.Hex(), y.Hex(), got, want)
			}
			if x.IsZero() != (bx.Sign() == 0) {
				t.Fatalf("iszero(%s) inconsistent", x.Hex())
			}
		case 15:
			// exp via big's modexp
			check("exp", x.Exp(y), new(big.Int).Exp(bx, by, two256))
		}

		// round-trip invariants hold for every input
		if FromBig(x.ToBig()).Cmp(x) != 0 {
			t.Fatalf("FromBig(ToBig(%s)) round trip failed", x.Hex())
		}
		b32 := x.Bytes32()
		if FromBytes(b32[:]).Cmp(x) != 0 {
			t.Fatalf("FromBytes(Bytes32(%s)) round trip failed", x.Hex())
		}
	})
}
