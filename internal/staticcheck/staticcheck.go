// Package staticcheck implements a pattern-based static analyzer baseline in
// the mold of Oyente/Mythril/Slither: it never executes the contract, it
// matches syntactic and bytecode patterns, and it is deliberately both over-
// and under-approximate. Table III of the paper contrasts exactly this
// failure mode (static FP/FN) against dynamic confirmation by fuzzers; this
// package reproduces the static side of that comparison honestly.
package staticcheck

import (
	"mufuzz/internal/analysis"
	"mufuzz/internal/evm"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
)

// Finding mirrors oracle.Finding for the static analyzer.
type Finding struct {
	Class       oracle.BugClass
	Func        string
	Description string
}

// Analyze runs every static rule over a compiled contract.
func Analyze(comp *minisol.Compiled) []Finding {
	var out []Finding
	a := &analyzer{comp: comp}
	out = append(out, a.blockDependency()...)
	out = append(out, a.integerOverflow()...)
	out = append(out, a.reentrancy()...)
	out = append(out, a.selfDestruct()...)
	out = append(out, a.delegatecall()...)
	out = append(out, a.strictEquality()...)
	out = append(out, a.txOrigin()...)
	out = append(out, a.unhandledException()...)
	out = append(out, a.etherFreezing()...)
	return out
}

// Classes returns the distinct classes flagged.
func Classes(findings []Finding) map[oracle.BugClass]bool {
	out := make(map[oracle.BugClass]bool)
	for _, f := range findings {
		out[f.Class] = true
	}
	return out
}

type analyzer struct {
	comp *minisol.Compiled
}

func (a *analyzer) functions() []*minisol.Function {
	c := a.comp.Contract
	var fns []*minisol.Function
	if c.Ctor != nil {
		fns = append(fns, c.Ctor)
	}
	for i := range c.Functions {
		fns = append(fns, &c.Functions[i])
	}
	return fns
}

// --- expression/statement pattern helpers ---

// exprContains walks an expression looking for a predicate match.
func exprContains(e minisol.Expr, pred func(minisol.Expr) bool) bool {
	if e == nil {
		return false
	}
	if pred(e) {
		return true
	}
	switch t := e.(type) {
	case *minisol.BinaryExpr:
		return exprContains(t.L, pred) || exprContains(t.R, pred)
	case *minisol.UnaryExpr:
		return exprContains(t.X, pred)
	case *minisol.IndexExpr:
		return exprContains(t.Key, pred)
	case *minisol.BalanceExpr:
		return exprContains(t.Addr, pred)
	case *minisol.KeccakExpr:
		for _, x := range t.Args {
			if exprContains(x, pred) {
				return true
			}
		}
	case *minisol.CallValueExpr:
		return exprContains(t.Target, pred) || exprContains(t.Amount, pred)
	case *minisol.SendExpr:
		return exprContains(t.Target, pred) || exprContains(t.Amount, pred)
	case *minisol.DelegateCallExpr:
		if exprContains(t.Target, pred) {
			return true
		}
		for _, x := range t.Args {
			if exprContains(x, pred) {
				return true
			}
		}
	case *minisol.CastExpr:
		return exprContains(t.X, pred)
	}
	return false
}

// stmtWalk visits every statement (including nested blocks).
func stmtWalk(stmts []minisol.Stmt, visit func(minisol.Stmt)) {
	for _, s := range stmts {
		visit(s)
		switch t := s.(type) {
		case *minisol.IfStmt:
			stmtWalk(t.Then, visit)
			stmtWalk(t.Else, visit)
		case *minisol.WhileStmt:
			stmtWalk(t.Body, visit)
		}
	}
}

// stmtExprs yields every expression directly referenced by a statement.
func stmtExprs(s minisol.Stmt) []minisol.Expr {
	switch t := s.(type) {
	case *minisol.VarDeclStmt:
		return []minisol.Expr{t.Init}
	case *minisol.AssignStmt:
		return []minisol.Expr{t.Target, t.Value}
	case *minisol.IfStmt:
		return []minisol.Expr{t.Cond}
	case *minisol.WhileStmt:
		return []minisol.Expr{t.Cond}
	case *minisol.RequireStmt:
		return []minisol.Expr{t.Cond}
	case *minisol.ReturnStmt:
		return []minisol.Expr{t.Value}
	case *minisol.TransferStmt:
		return []minisol.Expr{t.Target, t.Amount}
	case *minisol.SelfDestructStmt:
		return []minisol.Expr{t.Beneficiary}
	case *minisol.ExprStmt:
		return []minisol.Expr{t.X}
	}
	return nil
}

func isEnv(name string) func(minisol.Expr) bool {
	return func(e minisol.Expr) bool {
		env, ok := e.(*minisol.EnvExpr)
		return ok && env.Name == name
	}
}

// hasSenderGuard reports whether a function body starts with a
// require(msg.sender == ...) style guard — the modifier heuristic.
func hasSenderGuard(fn *minisol.Function) bool {
	for _, s := range fn.Body {
		req, ok := s.(*minisol.RequireStmt)
		if !ok {
			continue
		}
		if exprContains(req.Cond, isEnv("msg.sender")) || exprContains(req.Cond, isEnv("tx.origin")) {
			return true
		}
	}
	return false
}

// --- rules ---

// blockDependency flags any function whose code touches block state near a
// branch. Over-approximate: even benign logging of timestamps gets flagged.
func (a *analyzer) blockDependency() []Finding {
	var out []Finding
	for _, fn := range a.functions() {
		uses := false
		stmtWalk(fn.Body, func(s minisol.Stmt) {
			for _, e := range stmtExprs(s) {
				if exprContains(e, isEnv("block.timestamp")) || exprContains(e, isEnv("block.number")) {
					uses = true
				}
			}
		})
		if uses {
			out = append(out, Finding{Class: oracle.BD, Func: fn.Name,
				Description: "function reads block state"})
		}
	}
	return out
}

// integerOverflow flags arithmetic assignments to state without a require
// guard in the same function. FP on if-guarded code, FN on overflow through
// locals — the classic static trade-off.
func (a *analyzer) integerOverflow() []Finding {
	var out []Finding
	for _, fn := range a.functions() {
		hasRequire := false
		arith := false
		stmtWalk(fn.Body, func(s minisol.Stmt) {
			if _, ok := s.(*minisol.RequireStmt); ok {
				hasRequire = true
			}
			if as, ok := s.(*minisol.AssignStmt); ok {
				if as.Op == "+=" || as.Op == "-=" || as.Op == "*=" {
					arith = true
				}
				if exprContains(as.Value, func(e minisol.Expr) bool {
					b, ok := e.(*minisol.BinaryExpr)
					return ok && (b.Op == "+" || b.Op == "-" || b.Op == "*")
				}) {
					arith = true
				}
			}
		})
		if arith && !hasRequire {
			out = append(out, Finding{Class: oracle.IO, Func: fn.Name,
				Description: "unguarded arithmetic on persistent state"})
		}
	}
	return out
}

// reentrancy flags the call-then-write pattern: a call.value whose function
// writes state after the external call.
func (a *analyzer) reentrancy() []Finding {
	var out []Finding
	for _, fn := range a.functions() {
		callSeen := false
		writeAfter := false
		stmtWalk(fn.Body, func(s minisol.Stmt) {
			for _, e := range stmtExprs(s) {
				if exprContains(e, func(x minisol.Expr) bool {
					_, ok := x.(*minisol.CallValueExpr)
					return ok
				}) {
					callSeen = true
				}
			}
			if as, ok := s.(*minisol.AssignStmt); ok && callSeen {
				_ = as
				writeAfter = true
			}
		})
		if callSeen && writeAfter {
			out = append(out, Finding{Class: oracle.RE, Func: fn.Name,
				Description: "state written after external value call"})
		}
	}
	return out
}

// selfDestruct flags selfdestruct without a sender guard.
func (a *analyzer) selfDestruct() []Finding {
	var out []Finding
	for _, fn := range a.functions() {
		has := false
		stmtWalk(fn.Body, func(s minisol.Stmt) {
			if _, ok := s.(*minisol.SelfDestructStmt); ok {
				has = true
			}
		})
		if has && !hasSenderGuard(fn) {
			out = append(out, Finding{Class: oracle.US, Func: fn.Name,
				Description: "selfdestruct without sender guard"})
		}
	}
	return out
}

// delegatecall flags delegatecall without a sender guard.
func (a *analyzer) delegatecall() []Finding {
	var out []Finding
	for _, fn := range a.functions() {
		has := false
		stmtWalk(fn.Body, func(s minisol.Stmt) {
			for _, e := range stmtExprs(s) {
				if exprContains(e, func(x minisol.Expr) bool {
					_, ok := x.(*minisol.DelegateCallExpr)
					return ok
				}) {
					has = true
				}
			}
		})
		if has && !hasSenderGuard(fn) {
			out = append(out, Finding{Class: oracle.UD, Func: fn.Name,
				Description: "delegatecall without sender guard"})
		}
	}
	return out
}

// strictEquality flags `.balance` inside an == / != comparison.
func (a *analyzer) strictEquality() []Finding {
	var out []Finding
	for _, fn := range a.functions() {
		has := false
		stmtWalk(fn.Body, func(s minisol.Stmt) {
			for _, e := range stmtExprs(s) {
				if exprContains(e, func(x minisol.Expr) bool {
					b, ok := x.(*minisol.BinaryExpr)
					if !ok || (b.Op != "==" && b.Op != "!=") {
						return false
					}
					isBal := func(y minisol.Expr) bool {
						_, ok := y.(*minisol.BalanceExpr)
						return ok
					}
					return exprContains(b.L, isBal) || exprContains(b.R, isBal)
				}) {
					has = true
				}
			}
		})
		if has {
			out = append(out, Finding{Class: oracle.SE, Func: fn.Name,
				Description: "balance compared with strict equality"})
		}
	}
	return out
}

// txOrigin flags any tx.origin use.
func (a *analyzer) txOrigin() []Finding {
	var out []Finding
	for _, fn := range a.functions() {
		has := false
		stmtWalk(fn.Body, func(s minisol.Stmt) {
			for _, e := range stmtExprs(s) {
				if exprContains(e, isEnv("tx.origin")) {
					has = true
				}
			}
		})
		if has {
			out = append(out, Finding{Class: oracle.TO, Func: fn.Name,
				Description: "tx.origin used"})
		}
	}
	return out
}

// unhandledException flags send/call.value used as a bare statement whose
// result is discarded. FN: results stored but never branched on.
func (a *analyzer) unhandledException() []Finding {
	var out []Finding
	for _, fn := range a.functions() {
		has := false
		stmtWalk(fn.Body, func(s minisol.Stmt) {
			es, ok := s.(*minisol.ExprStmt)
			if !ok {
				return
			}
			switch es.X.(type) {
			case *minisol.SendExpr, *minisol.CallValueExpr:
				has = true
			}
		})
		if has {
			out = append(out, Finding{Class: oracle.UE, Func: fn.Name,
				Description: "call result discarded"})
		}
	}
	return out
}

// etherFreezing flags contracts with a payable function but no
// value-transferring instruction anywhere in the code.
func (a *analyzer) etherFreezing() []Finding {
	payable := false
	for _, fn := range a.comp.Contract.Functions {
		if fn.Payable {
			payable = true
		}
	}
	if !payable {
		return nil
	}
	for _, ins := range analysis.Disassemble(a.comp.Code) {
		switch ins.Op {
		case evm.CALL, evm.DELEGATECALL, evm.SELFDESTRUCT:
			return nil
		}
	}
	return []Finding{{Class: oracle.EF, Func: a.comp.Contract.Name,
		Description: "payable contract cannot move value out"}}
}
