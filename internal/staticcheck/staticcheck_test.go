package staticcheck

import (
	"testing"

	"mufuzz/internal/corpus"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
)

func analyze(t *testing.T, src string) map[oracle.BugClass]bool {
	t.Helper()
	comp, err := minisol.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return Classes(Analyze(comp))
}

func TestBlockDependencyRule(t *testing.T) {
	got := analyze(t, `contract C {
		uint256 x;
		function f() public { if (block.timestamp > 5) { x = 1; } }
	}`)
	if !got[oracle.BD] {
		t.Error("BD should be flagged")
	}
	// Over-approximation: benign timestamp storage is still flagged — the
	// static failure mode the paper contrasts against.
	got = analyze(t, `contract C {
		uint256 when;
		function stamp() public { when = block.timestamp; }
	}`)
	if !got[oracle.BD] {
		t.Error("static BD rule is expected to over-approximate")
	}
}

func TestIntegerOverflowRule(t *testing.T) {
	got := analyze(t, `contract C {
		uint256 total;
		function add(uint256 n) public { total += n; }
	}`)
	if !got[oracle.IO] {
		t.Error("IO should be flagged")
	}
	// a require suppresses the warning even when it guards nothing relevant
	// (static under-approximation)
	got = analyze(t, `contract C {
		uint256 total;
		function add(uint256 n) public { require(n > 0); total += n; }
	}`)
	if got[oracle.IO] {
		t.Error("IO rule goes quiet when any require is present (known FN)")
	}
}

func TestReentrancyRule(t *testing.T) {
	got := analyze(t, `contract C {
		mapping(address => uint256) bal;
		function withdraw() public {
			uint256 amount = bal[msg.sender];
			if (amount > 0) {
				require(msg.sender.call.value(amount)());
				bal[msg.sender] = 0;
			}
		}
	}`)
	if !got[oracle.RE] {
		t.Error("call-then-write should be flagged RE")
	}
	got = analyze(t, `contract C {
		mapping(address => uint256) bal;
		function withdraw() public {
			uint256 amount = bal[msg.sender];
			bal[msg.sender] = 0;
			msg.sender.transfer(amount);
		}
	}`)
	if got[oracle.RE] {
		t.Error("checks-effects-interactions should not be flagged")
	}
}

func TestSelfDestructAndDelegatecallRules(t *testing.T) {
	got := analyze(t, `contract C {
		function kill() public { selfdestruct(msg.sender); }
	}`)
	if !got[oracle.US] {
		t.Error("unguarded selfdestruct should be flagged")
	}
	got = analyze(t, `contract C {
		address owner;
		constructor() public { owner = msg.sender; }
		function kill() public { require(msg.sender == owner); selfdestruct(msg.sender); }
	}`)
	if got[oracle.US] {
		t.Error("sender-guarded selfdestruct should pass")
	}
	got = analyze(t, `contract C {
		function run(address lib, uint256 x) public { lib.delegatecall(x); }
	}`)
	if !got[oracle.UD] {
		t.Error("unguarded delegatecall should be flagged")
	}
}

func TestStrictEqualityAndOriginRules(t *testing.T) {
	got := analyze(t, `contract C {
		uint256 won;
		function f() public payable { if (this.balance == 5) { won = 1; } }
	}`)
	if !got[oracle.SE] {
		t.Error("balance == const should be flagged SE")
	}
	got = analyze(t, `contract C {
		uint256 won;
		function f() public payable { if (this.balance > 5) { won = 1; } }
	}`)
	if got[oracle.SE] {
		t.Error("balance inequality is not SE")
	}
	got = analyze(t, `contract C {
		address owner;
		uint256 x;
		constructor() public { owner = msg.sender; }
		function f() public { require(tx.origin == owner); x = 1; }
	}`)
	if !got[oracle.TO] {
		t.Error("tx.origin use should be flagged TO")
	}
}

func TestUnhandledExceptionRule(t *testing.T) {
	got := analyze(t, `contract C {
		function pay(address to) public { to.send(5); }
	}`)
	if !got[oracle.UE] {
		t.Error("bare send should be flagged UE")
	}
	// Static FN: result stored but never branched on is missed.
	got = analyze(t, `contract C {
		bool ok;
		function pay(address to) public { ok = to.send(5); }
	}`)
	if got[oracle.UE] {
		t.Error("stored-but-unchecked send is a known static FN")
	}
}

func TestEtherFreezingRule(t *testing.T) {
	got := analyze(t, `contract C {
		uint256 total;
		function donate() public payable { total += msg.value; }
	}`)
	if !got[oracle.EF] {
		t.Error("payable sink should be flagged EF")
	}
	got = analyze(t, `contract C {
		uint256 total;
		function donate() public payable { total += msg.value; }
		function out(uint256 n) public { msg.sender.transfer(n); }
	}`)
	if got[oracle.EF] {
		t.Error("contract with transfer is not EF")
	}
}

// The static analyzer must be much noisier than the fuzzer on the safe
// suite — that is its role in the Table III comparison.
func TestStaticAnalyzerProducesFalsePositives(t *testing.T) {
	fps := 0
	for _, l := range corpus.VulnSuite() {
		comp, err := minisol.Compile(l.Source)
		if err != nil {
			t.Fatal(err)
		}
		for c := range Classes(Analyze(comp)) {
			if !l.HasLabel(c) {
				fps++
			}
		}
	}
	if fps == 0 {
		t.Error("a pattern-based static analyzer with zero FPs on this suite is implausible; the rules lost their over-approximation")
	}
}

func TestStaticAnalyzerRecallOnSuite(t *testing.T) {
	tp, fn := 0, 0
	for _, l := range corpus.VulnSuite() {
		comp, err := minisol.Compile(l.Source)
		if err != nil {
			t.Fatal(err)
		}
		got := Classes(Analyze(comp))
		for _, c := range l.Labels {
			if got[c] {
				tp++
			} else {
				fn++
			}
		}
	}
	if tp == 0 {
		t.Fatal("static analyzer found nothing at all")
	}
	if fn == 0 {
		t.Error("static analyzer with zero FNs is implausible; expected under-approximation")
	}
}

func BenchmarkAnalyzeSuite(b *testing.B) {
	var comps []*minisol.Compiled
	for _, l := range corpus.VulnSuite() {
		comp, err := minisol.Compile(l.Source)
		if err != nil {
			b.Fatal(err)
		}
		comps = append(comps, comp)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, comp := range comps {
			Analyze(comp)
		}
	}
}
