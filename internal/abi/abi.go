// Package abi implements the Ethereum contract ABI: type descriptions,
// argument encoding/decoding, and 4-byte function selectors.
//
// The fuzzer treats every transaction input as the byte stream
// selector || abi-encode(args); the mask-guided mutator (paper §IV-B) works
// directly on these bytes, and the EVM decodes them with CALLDATALOAD. Only
// the types MiniSol supports are implemented: uint256, int256, address, bool,
// bytes32, bytes, and string. Dynamic types follow the standard head/tail
// layout.
package abi

import (
	"fmt"
	"strings"

	"mufuzz/internal/keccak"
	"mufuzz/internal/u256"
)

// Kind enumerates supported ABI types.
type Kind int

const (
	Uint256 Kind = iota
	Int256
	Address
	Bool
	Bytes32
	Bytes  // dynamic
	String // dynamic
)

// String returns the canonical ABI name of the kind.
func (k Kind) String() string {
	switch k {
	case Uint256:
		return "uint256"
	case Int256:
		return "int256"
	case Address:
		return "address"
	case Bool:
		return "bool"
	case Bytes32:
		return "bytes32"
	case Bytes:
		return "bytes"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps a canonical ABI type name to its Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "uint256", "uint":
		return Uint256, nil
	case "int256", "int":
		return Int256, nil
	case "address":
		return Address, nil
	case "bool":
		return Bool, nil
	case "bytes32":
		return Bytes32, nil
	case "bytes":
		return Bytes, nil
	case "string":
		return String, nil
	default:
		return 0, fmt.Errorf("abi: unsupported type %q", name)
	}
}

// IsDynamic reports whether the kind uses head/tail encoding.
func (k Kind) IsDynamic() bool { return k == Bytes || k == String }

// Value is a decoded ABI value: a u256 word for static types, raw bytes for
// dynamic ones.
type Value struct {
	Kind  Kind
	Word  u256.Int // static types
	Bytes []byte   // dynamic types
}

// NewWord wraps a static word value.
func NewWord(k Kind, w u256.Int) Value { return Value{Kind: k, Word: w} }

// NewBytes wraps a dynamic byte value.
func NewBytes(k Kind, b []byte) Value { return Value{Kind: k, Bytes: b} }

// String renders the value for reports.
func (v Value) String() string {
	if v.Kind.IsDynamic() {
		return fmt.Sprintf("%s(%q)", v.Kind, v.Bytes)
	}
	return fmt.Sprintf("%s(%s)", v.Kind, v.Word)
}

// Param is a named function parameter.
type Param struct {
	Name string
	Kind Kind
	// RawType, when non-empty, is the canonical on-chain type name this
	// parameter was coerced from (e.g. "uint8", "address[]", "(uint256,bool)"
	// for a tuple). ABI-JSON ingestion sets it so signatures and re-encoded
	// JSON keep the original types while the fuzzer works on the nearest
	// word/bytes Kind. Empty for natively supported types.
	RawType string
}

// TypeName returns the parameter's on-chain type name: RawType when the
// parameter was coerced from an unsupported type, the Kind's canonical name
// otherwise.
func (p Param) TypeName() string {
	if p.RawType != "" {
		return p.RawType
	}
	return p.Kind.String()
}

// Method describes one externally callable function.
type Method struct {
	Name    string
	Inputs  []Param
	Payable bool
	// View marks functions that do not write state; the fuzzer deprioritizes
	// them when building sequences.
	View bool
	// RawSig, when non-empty, overrides the computed canonical signature —
	// set by ABI-JSON ingestion where parameter kinds are a lossy coercion
	// but the 4-byte selector must match the on-chain signature exactly.
	RawSig string
}

// Signature returns the canonical signature, e.g. "invest(uint256)".
func (m Method) Signature() string {
	if m.RawSig != "" {
		return m.RawSig
	}
	parts := make([]string, len(m.Inputs))
	for i, p := range m.Inputs {
		parts[i] = p.TypeName()
	}
	return m.Name + "(" + strings.Join(parts, ",") + ")"
}

// Selector returns the 4-byte selector of the method.
func (m Method) Selector() [4]byte {
	return keccak.Selector(m.Signature())
}

// ABI is the external interface of a contract.
type ABI struct {
	Constructor *Method // nil when the contract has no constructor args
	Methods     []Method
	// HasFallback/HasReceive record the catch-all entry points a standard
	// ABI JSON declares; FallbackPayable is the fallback's mutability. They
	// carry no selector and are preserved only for ABI round-tripping.
	HasFallback     bool
	FallbackPayable bool
	HasReceive      bool
}

// MethodByName finds a method by name; ok is false if absent.
func (a *ABI) MethodByName(name string) (Method, bool) {
	for _, m := range a.Methods {
		if m.Name == name {
			return m, true
		}
	}
	return Method{}, false
}

// MethodBySelector finds a method by its 4-byte selector.
func (a *ABI) MethodBySelector(sel [4]byte) (Method, bool) {
	for _, m := range a.Methods {
		if m.Selector() == sel {
			return m, true
		}
	}
	return Method{}, false
}

// EncodeArgs ABI-encodes values according to the standard head/tail layout.
func EncodeArgs(values []Value) []byte {
	headSize := 32 * len(values)
	head := make([]byte, 0, headSize)
	var tail []byte
	for _, v := range values {
		if v.Kind.IsDynamic() {
			off := u256.New(uint64(headSize + len(tail))).Bytes32()
			head = append(head, off[:]...)
			tail = append(tail, encodeDynamic(v.Bytes)...)
		} else {
			w := v.Word.Bytes32()
			head = append(head, w[:]...)
		}
	}
	return append(head, tail...)
}

func encodeDynamic(b []byte) []byte {
	length := u256.New(uint64(len(b))).Bytes32()
	out := append([]byte{}, length[:]...)
	out = append(out, b...)
	if pad := len(b) % 32; pad != 0 {
		out = append(out, make([]byte, 32-pad)...)
	}
	return out
}

// EncodeCall produces the full calldata for a method invocation:
// selector || encoded args.
func EncodeCall(m Method, args []Value) ([]byte, error) {
	if len(args) != len(m.Inputs) {
		return nil, fmt.Errorf("abi: %s expects %d args, got %d", m.Name, len(m.Inputs), len(args))
	}
	for i, a := range args {
		if a.Kind != m.Inputs[i].Kind {
			return nil, fmt.Errorf("abi: %s arg %d: have %s, want %s", m.Name, i, a.Kind, m.Inputs[i].Kind)
		}
	}
	sel := m.Selector()
	return append(sel[:], EncodeArgs(args)...), nil
}

// DecodeArgs decodes data into the kinds given. Decoding is tolerant of
// truncated data (missing bytes read as zero) because fuzzed calldata is
// frequently malformed; the EVM behaves the same way via CALLDATALOAD.
func DecodeArgs(kinds []Kind, data []byte) []Value {
	word := func(off int) u256.Int {
		var buf [32]byte
		if off < len(data) {
			copy(buf[:], data[off:])
		}
		return u256.FromBytes(buf[:])
	}
	out := make([]Value, len(kinds))
	for i, k := range kinds {
		head := i * 32
		if k.IsDynamic() {
			off := word(head)
			var b []byte
			if off.FitsUint64() && off.Uint64() < uint64(len(data)) {
				o := int(off.Uint64())
				n := word(o)
				if n.FitsUint64() {
					start := o + 32
					end := start + int(n.Uint64())
					if end > len(data) {
						end = len(data)
					}
					if start < end {
						b = append([]byte{}, data[start:end]...)
					}
				}
			}
			out[i] = NewBytes(k, b)
		} else {
			w := word(head)
			if k == Address {
				// Addresses are 20 bytes; mask the upper 12 the way the EVM does.
				w = w.And(addressMask)
			}
			if k == Bool {
				if !w.IsZero() {
					w = u256.One
				}
			}
			out[i] = NewWord(k, w)
		}
	}
	return out
}

var addressMask = u256.Max.Rsh(96)

// DecodeCall splits calldata into its selector and decoded arguments for the
// given method. It returns false if the data is shorter than a selector.
func DecodeCall(m Method, data []byte) ([]Value, bool) {
	if len(data) < 4 {
		return nil, false
	}
	kinds := make([]Kind, len(m.Inputs))
	for i, p := range m.Inputs {
		kinds[i] = p.Kind
	}
	return DecodeArgs(kinds, data[4:]), true
}
