package abi

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"mufuzz/internal/u256"
)

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Uint256, Int256, Address, Bool, Bytes32, Bytes, String} {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%s): %v", k, err)
		}
		if got != k {
			t.Errorf("ParseKind(%s) = %v", k, got)
		}
	}
	if _, err := ParseKind("uint128"); err == nil {
		t.Error("expected error for unsupported type")
	}
}

func TestMethodSignatureAndSelector(t *testing.T) {
	m := Method{Name: "transfer", Inputs: []Param{{Name: "to", Kind: Address}, {Name: "amount", Kind: Uint256}}}
	if got := m.Signature(); got != "transfer(address,uint256)" {
		t.Errorf("Signature = %s", got)
	}
	sel := m.Selector()
	if hex.EncodeToString(sel[:]) != "a9059cbb" {
		t.Errorf("Selector = %x, want a9059cbb", sel)
	}
}

func TestEncodeStaticArgs(t *testing.T) {
	vals := []Value{
		NewWord(Uint256, u256.New(5)),
		NewWord(Bool, u256.One),
	}
	enc := EncodeArgs(vals)
	if len(enc) != 64 {
		t.Fatalf("len = %d, want 64", len(enc))
	}
	if enc[31] != 5 || enc[63] != 1 {
		t.Errorf("encoding bytes wrong: %x", enc)
	}
}

func TestEncodeDynamicLayout(t *testing.T) {
	vals := []Value{
		NewWord(Uint256, u256.New(7)),
		NewBytes(Bytes, []byte("hello")),
	}
	enc := EncodeArgs(vals)
	// head: word(7), offset(64); tail: len(5), "hello" padded to 32.
	if len(enc) != 64+32+32 {
		t.Fatalf("len = %d", len(enc))
	}
	if enc[63] != 64 {
		t.Errorf("dynamic offset = %d, want 64", enc[63])
	}
	if enc[95] != 5 {
		t.Errorf("dynamic length = %d, want 5", enc[95])
	}
	if !bytes.Equal(enc[96:101], []byte("hello")) {
		t.Errorf("payload = %q", enc[96:101])
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(a, b uint64, raw []byte, flag bool) bool {
		boolWord := u256.Zero
		if flag {
			boolWord = u256.One
		}
		vals := []Value{
			NewWord(Uint256, u256.New(a)),
			NewBytes(String, raw),
			NewWord(Bool, boolWord),
			NewWord(Address, u256.New(b)),
		}
		enc := EncodeArgs(vals)
		dec := DecodeArgs([]Kind{Uint256, String, Bool, Address}, enc)
		if !dec[0].Word.Eq(u256.New(a)) {
			return false
		}
		if len(raw) == 0 {
			if len(dec[1].Bytes) != 0 {
				return false
			}
		} else if !bytes.Equal(dec[1].Bytes, raw) {
			return false
		}
		if dec[2].Word.Eq(u256.One) != flag {
			return false
		}
		return dec[3].Word.Eq(u256.New(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncatedDataIsSafe(t *testing.T) {
	// Malformed calldata from mutation must never panic and reads as zeros.
	kinds := []Kind{Uint256, Bytes, Address}
	for n := 0; n < 100; n += 7 {
		data := bytes.Repeat([]byte{0xff}, n)
		vals := DecodeArgs(kinds, data)
		if len(vals) != 3 {
			t.Fatalf("got %d values", len(vals))
		}
	}
}

func TestDecodeAddressMasksHighBytes(t *testing.T) {
	full := u256.Max
	enc := EncodeArgs([]Value{NewWord(Uint256, full)})
	dec := DecodeArgs([]Kind{Address}, enc)
	if dec[0].Word.BitLen() > 160 {
		t.Errorf("address not masked to 160 bits: %s", dec[0].Word.Hex())
	}
}

func TestEncodeCallValidation(t *testing.T) {
	m := Method{Name: "f", Inputs: []Param{{Name: "x", Kind: Uint256}}}
	if _, err := EncodeCall(m, nil); err == nil {
		t.Error("want arity error")
	}
	if _, err := EncodeCall(m, []Value{NewWord(Bool, u256.One)}); err == nil {
		t.Error("want type error")
	}
	data, err := EncodeCall(m, []Value{NewWord(Uint256, u256.New(9))})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4+32 {
		t.Errorf("len = %d", len(data))
	}
	vals, ok := DecodeCall(m, data)
	if !ok || !vals[0].Word.Eq(u256.New(9)) {
		t.Errorf("DecodeCall round trip failed: %v %v", vals, ok)
	}
	if _, ok := DecodeCall(m, []byte{1, 2}); ok {
		t.Error("DecodeCall should reject data shorter than a selector")
	}
}

func TestMethodLookup(t *testing.T) {
	a := &ABI{Methods: []Method{
		{Name: "invest", Inputs: []Param{{Name: "donations", Kind: Uint256}}, Payable: true},
		{Name: "refund"},
		{Name: "withdraw"},
	}}
	m, ok := a.MethodByName("refund")
	if !ok || m.Name != "refund" {
		t.Fatal("MethodByName failed")
	}
	bySel, ok := a.MethodBySelector(m.Selector())
	if !ok || bySel.Name != "refund" {
		t.Fatal("MethodBySelector failed")
	}
	if _, ok := a.MethodByName("nope"); ok {
		t.Error("unexpected method")
	}
}

func BenchmarkEncodeCall(b *testing.B) {
	m := Method{Name: "invest", Inputs: []Param{{Name: "donations", Kind: Uint256}, {Name: "who", Kind: Address}}}
	args := []Value{NewWord(Uint256, u256.New(100)), NewWord(Address, u256.New(0xabc))}
	for i := 0; i < b.N; i++ {
		if _, err := EncodeCall(m, args); err != nil {
			b.Fatal(err)
		}
	}
}
