package abi

import (
	"bytes"
	"testing"
)

// kindsFrom derives a parameter-kind list from fuzz bytes (at most 8
// parameters, all seven kinds reachable).
func kindsFrom(spec []byte) []Kind {
	if len(spec) > 8 {
		spec = spec[:8]
	}
	kinds := make([]Kind, len(spec))
	for i, b := range spec {
		kinds[i] = Kind(int(b) % (int(String) + 1))
	}
	return kinds
}

// FuzzABIRoundTrip fuzzes the encoder/decoder pair: decoding arbitrary data
// must never panic, and encode∘decode must be a fixpoint — decoding a
// canonical encoding recovers exactly the values that produced it.
func FuzzABIRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6}, make([]byte, 7*32))
	f.Add([]byte{5, 6, 5}, []byte("some dynamic payload that is not word aligned"))
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, spec, data []byte) {
		kinds := kindsFrom(spec)

		// 1. Robustness: arbitrary (possibly truncated, offset-corrupted)
		// calldata decodes without panicking — the EVM reads malformed
		// calldata through CALLDATALOAD the same way.
		values := DecodeArgs(kinds, data)
		if len(values) != len(kinds) {
			t.Fatalf("decoded %d values for %d kinds", len(values), len(kinds))
		}

		// 2. The decoded values are canonical: re-encoding and re-decoding
		// them is an identity.
		enc := EncodeArgs(values)
		again := DecodeArgs(kinds, enc)
		for i := range values {
			a, b := values[i], again[i]
			if a.Kind != b.Kind {
				t.Fatalf("arg %d: kind %s became %s", i, a.Kind, b.Kind)
			}
			if a.Kind.IsDynamic() {
				if !bytes.Equal(a.Bytes, b.Bytes) {
					t.Fatalf("arg %d (%s): bytes %x became %x", i, a.Kind, a.Bytes, b.Bytes)
				}
			} else if !a.Word.Eq(b.Word) {
				t.Fatalf("arg %d (%s): word %s became %s", i, a.Kind, a.Word.Hex(), b.Word.Hex())
			}
		}

		// 3. Encoding is deterministic and stable across the round trip.
		if enc2 := EncodeArgs(again); !bytes.Equal(enc, enc2) {
			t.Fatalf("re-encode changed bytes:\n%x\n%x", enc, enc2)
		}
	})
}
