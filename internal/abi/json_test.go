package abi

import (
	"encoding/hex"
	"reflect"
	"testing"
)

// erc20JSON is a realistic ERC20-style ABI: constructor, overloads are
// absent but views, payable/nonpayable split, events (dropped), and a
// fallback are present.
const erc20JSON = `[
  {"type":"constructor","inputs":[{"name":"supply","type":"uint256"}],"stateMutability":"nonpayable"},
  {"type":"function","name":"transfer","inputs":[{"name":"to","type":"address"},{"name":"amount","type":"uint256"}],"outputs":[{"type":"bool"}],"stateMutability":"nonpayable"},
  {"type":"function","name":"balanceOf","inputs":[{"name":"owner","type":"address"}],"outputs":[{"type":"uint256"}],"stateMutability":"view"},
  {"type":"function","name":"deposit","inputs":[],"stateMutability":"payable"},
  {"type":"event","name":"Transfer","inputs":[{"name":"from","type":"address"},{"name":"to","type":"address"},{"name":"value","type":"uint256"}]},
  {"type":"fallback","stateMutability":"payable"}
]`

// exoticJSON exercises the coercion corners: small ints, fixed bytes,
// arrays, nested tuples, overloads, receive, and legacy mutability flags.
const exoticJSON = `[
  {"type":"function","name":"set","inputs":[{"name":"v","type":"uint8"}]},
  {"type":"function","name":"set","inputs":[{"name":"v","type":"bytes4"}]},
  {"type":"function","name":"batch","inputs":[{"name":"xs","type":"uint256[]"}],"stateMutability":"nonpayable"},
  {"type":"function","name":"fixedArr","inputs":[{"name":"xs","type":"uint256[3]"}]},
  {"type":"function","name":"order","inputs":[{"name":"o","type":"tuple","components":[{"name":"id","type":"uint256"},{"name":"data","type":"bytes"}]}]},
  {"type":"function","name":"pair","inputs":[{"name":"p","type":"tuple","components":[{"name":"a","type":"uint"},{"name":"b","type":"bool"}]}]},
  {"type":"function","name":"legacy","inputs":[],"payable":true,"constant":false},
  {"type":"receive","stateMutability":"payable"}
]`

func TestParseJSONERC20(t *testing.T) {
	a, err := ParseJSON([]byte(erc20JSON))
	if err != nil {
		t.Fatal(err)
	}
	if a.Constructor == nil || len(a.Constructor.Inputs) != 1 || a.Constructor.Inputs[0].Kind != Uint256 {
		t.Fatalf("constructor not parsed: %+v", a.Constructor)
	}
	if len(a.Methods) != 3 {
		t.Fatalf("want 3 methods (event dropped), got %d", len(a.Methods))
	}
	if !a.HasFallback || !a.FallbackPayable {
		t.Fatalf("fallback lost: %+v", a)
	}
	tr, ok := a.MethodByName("transfer")
	if !ok {
		t.Fatal("transfer missing")
	}
	if got := tr.Signature(); got != "transfer(address,uint256)" {
		t.Fatalf("signature = %q", got)
	}
	// The canonical ERC20 transfer selector, straight off the chain.
	if got := hex.EncodeToString(selSlice(tr.Selector())); got != "a9059cbb" {
		t.Fatalf("transfer selector = %s, want a9059cbb", got)
	}
	bo, _ := a.MethodByName("balanceOf")
	if !bo.View {
		t.Fatal("balanceOf should be View")
	}
	dep, _ := a.MethodByName("deposit")
	if !dep.Payable {
		t.Fatal("deposit should be Payable")
	}
}

func TestParseJSONExoticCoercion(t *testing.T) {
	a, err := ParseJSON([]byte(exoticJSON))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Method{}
	for _, m := range a.Methods {
		byName[m.Name] = m
	}
	// Overloads get unique fuzzer names but keep their on-chain signature.
	if _, ok := byName["set"]; !ok {
		t.Fatal("first overload missing")
	}
	m2, ok := byName["set_2"]
	if !ok {
		t.Fatalf("second overload not disambiguated: %v", byName)
	}
	if got := m2.Signature(); got != "set(bytes4)" {
		t.Fatalf("overload signature = %q", got)
	}
	cases := map[string]struct {
		kind Kind
		raw  string
	}{
		"set":      {Uint256, "uint8"},
		"set_2":    {Bytes32, "bytes4"},
		"batch":    {Bytes, "uint256[]"},
		"fixedArr": {Bytes32, "uint256[3]"},
		"order":    {Bytes, "(uint256,bytes)"},
		"pair":     {Bytes32, "(uint256,bool)"},
	}
	for name, want := range cases {
		m, ok := byName[name]
		if !ok || len(m.Inputs) != 1 {
			t.Fatalf("%s: missing or wrong arity", name)
		}
		p := m.Inputs[0]
		if p.Kind != want.kind || p.RawType != want.raw {
			t.Errorf("%s: kind=%v raw=%q, want kind=%v raw=%q", name, p.Kind, p.RawType, want.kind, want.raw)
		}
	}
	leg := byName["legacy"]
	if !leg.Payable {
		t.Fatal("legacy payable flag lost")
	}
	if !a.HasReceive {
		t.Fatal("receive lost")
	}
}

// TestJSONRoundTripFixpoint pins decode→encode→decode as a fixpoint on the
// fixtures: the re-decoded ABI must equal the first decode structurally, and
// every method's signature (hence selector) must survive.
func TestJSONRoundTripFixpoint(t *testing.T) {
	for name, doc := range map[string]string{"erc20": erc20JSON, "exotic": exoticJSON} {
		t.Run(name, func(t *testing.T) {
			a1, err := ParseJSON([]byte(doc))
			if err != nil {
				t.Fatal(err)
			}
			a2, err := ParseJSON(a1.EncodeJSON())
			if err != nil {
				t.Fatalf("re-decode: %v\n%s", err, a1.EncodeJSON())
			}
			if !reflect.DeepEqual(a1, a2) {
				t.Fatalf("round trip not a fixpoint:\n%+v\n%+v", a1, a2)
			}
			for i := range a1.Methods {
				if a1.Methods[i].Signature() != a2.Methods[i].Signature() {
					t.Fatalf("signature drifted: %q vs %q", a1.Methods[i].Signature(), a2.Methods[i].Signature())
				}
			}
		})
	}
}

func TestParseJSONRejectsMalformed(t *testing.T) {
	for _, doc := range []string{
		`{"not":"an array"}`,
		`[{"type":"function"}]`, // unnamed function
		`[{"type":"function","name":"f","inputs":[{"type":"uint7"}]}]`,      // bad width
		`[{"type":"function","name":"f","inputs":[{"type":"uint256[x]"}]}]`, // bad suffix
		`[{"type":"function","name":"f","inputs":[{"type":""}]}]`,           // empty type
		`[{"type":"mystery"}]`, // unknown entry
		`[{"type":"function","name":"f","inputs":[{"type":"mapping(a=>b)"}]}]`, // not an ABI type
	} {
		if _, err := ParseJSON([]byte(doc)); err == nil {
			t.Errorf("ParseJSON(%s) accepted malformed input", doc)
		}
	}
}

func selSlice(s [4]byte) []byte { return s[:] }

// FuzzABIJSON feeds arbitrary bytes to the JSON decoder; every accepted
// document must re-encode to a form the decoder accepts again, reaching the
// same ABI (the fixpoint property), without panicking anywhere.
func FuzzABIJSON(f *testing.F) {
	f.Add([]byte(erc20JSON))
	f.Add([]byte(exoticJSON))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"type":"constructor","inputs":[]}]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		a1, err := ParseJSON(data)
		if err != nil {
			return
		}
		enc := a1.EncodeJSON()
		a2, err := ParseJSON(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(a1, a2) {
			t.Fatalf("not a fixpoint:\n%+v\n%+v", a1, a2)
		}
	})
}
