package abi

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// This file implements the standard Solidity contract-ABI JSON format (the
// artifact every compiler and block explorer emits): ParseJSON ingests it
// into the package's types, EncodeJSON renders them back.
//
// The fuzzer's type system is deliberately small — one 32-byte word per
// static parameter plus the two dynamic byte kinds — so richer on-chain
// types are coerced to the nearest fuzzable Kind and the original type name
// is kept in Param.RawType / Method.RawSig. Selectors therefore always match
// the on-chain signature, while mutation works on the coerced word stream.
// Coercion rules:
//
//	uintN / uint        → Uint256     (one word; range handled by the EVM)
//	intN / int          → Int256
//	bytesN (N ≤ 32)     → Bytes32
//	fixed-size arrays,
//	static tuples       → Bytes32     (one word stands in for the head)
//	T[], dynamic tuples → Bytes       (head/tail encoded, length-prefixed)
//
// Events and custom errors carry no calldata the fuzzer can send, so they
// are dropped on parse; EncodeJSON(ParseJSON(x)) is a fixpoint of the parsed
// form, not of the raw document.

// jsonParam is one input parameter in ABI JSON form.
type jsonParam struct {
	Name       string      `json:"name"`
	Type       string      `json:"type"`
	Components []jsonParam `json:"components,omitempty"`
}

// jsonEntry is one top-level ABI JSON array element.
type jsonEntry struct {
	Type            string      `json:"type"`
	Name            string      `json:"name,omitempty"`
	Inputs          []jsonParam `json:"inputs,omitempty"`
	StateMutability string      `json:"stateMutability,omitempty"`
	// Legacy (pre-0.5) mutability flags.
	Payable  *bool `json:"payable,omitempty"`
	Constant *bool `json:"constant,omitempty"`
}

// canonicalType normalizes an ABI type name the way selector signatures
// require: alias expansion (uint → uint256, int → int256) and tuples
// flattened to parenthesized component lists.
func canonicalType(p jsonParam) (string, error) {
	base, suffix, err := splitArraySuffix(p.Type)
	if err != nil {
		return "", err
	}
	switch base {
	case "uint":
		base = "uint256"
	case "int":
		base = "int256"
	case "tuple":
		parts := make([]string, len(p.Components))
		for i, c := range p.Components {
			ct, err := canonicalType(c)
			if err != nil {
				return "", err
			}
			parts[i] = ct
		}
		base = "(" + strings.Join(parts, ",") + ")"
	case "":
		return "", fmt.Errorf("abi: empty type name")
	}
	return base + suffix, nil
}

// splitArraySuffix splits a type name into its element type and array
// suffix: "uint8[2][]" → ("uint8", "[2][]"). The element may itself be a
// parenthesized tuple signature.
func splitArraySuffix(t string) (base, suffix string, err error) {
	cut := len(t)
	if strings.HasPrefix(t, "(") {
		depth := 0
		cut = -1
		for i, r := range t {
			if r == '(' {
				depth++
			} else if r == ')' {
				depth--
				if depth == 0 {
					cut = i + 1
					break
				}
			}
		}
		if cut < 0 {
			return "", "", fmt.Errorf("abi: malformed tuple type %q", t)
		}
	} else if i := strings.IndexByte(t, '['); i >= 0 {
		cut = i
	}
	base, suffix = t[:cut], t[cut:]
	for rest := suffix; len(rest) > 0; {
		if rest[0] != '[' {
			return "", "", fmt.Errorf("abi: malformed type %q", t)
		}
		end := strings.IndexByte(rest, ']')
		if end < 0 {
			return "", "", fmt.Errorf("abi: malformed type %q", t)
		}
		for _, r := range rest[1:end] {
			if r < '0' || r > '9' {
				return "", "", fmt.Errorf("abi: malformed type %q", t)
			}
		}
		rest = rest[end+1:]
	}
	return base, suffix, nil
}

// canonicalIsDynamic reports whether a canonical type uses head/tail
// encoding: bytes, string, any T[], and tuples with a dynamic component
// (fixed arrays inherit their element's dynamism).
func canonicalIsDynamic(t string) bool {
	base, suffix, err := splitArraySuffix(t)
	if err != nil {
		return false
	}
	if strings.Contains(suffix, "[]") {
		return true
	}
	switch {
	case base == "bytes" || base == "string":
		return true
	case strings.HasPrefix(base, "("):
		for _, comp := range splitTupleComponents(base) {
			if canonicalIsDynamic(comp) {
				return true
			}
		}
	}
	return false
}

// splitTupleComponents splits "(a,b,(c,d))" into ["a","b","(c,d)"].
func splitTupleComponents(t string) []string {
	inner := strings.TrimSuffix(strings.TrimPrefix(t, "("), ")")
	if inner == "" {
		return nil
	}
	var out []string
	depth, start := 0, 0
	for i, r := range inner {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, inner[start:i])
				start = i + 1
			}
		}
	}
	return append(out, inner[start:])
}

// kindFor coerces a canonical type name to the nearest fuzzable Kind. The
// second return reports whether the mapping is exact (RawType can stay
// empty).
func kindFor(canonical string) (Kind, bool, error) {
	if k, err := ParseKind(canonical); err == nil {
		return k, true, nil
	}
	base, suffix, err := splitArraySuffix(canonical)
	if err != nil {
		return 0, false, err
	}
	if suffix != "" {
		if canonicalIsDynamic(canonical) {
			return Bytes, false, nil // dynamic array: head/tail shaped
		}
		return Bytes32, false, nil // static array: one word stands in
	}
	switch {
	case strings.HasPrefix(base, "uint"):
		if !validIntWidth(base[4:]) {
			return 0, false, fmt.Errorf("abi: unsupported type %q", canonical)
		}
		return Uint256, false, nil
	case strings.HasPrefix(base, "int"):
		if !validIntWidth(base[3:]) {
			return 0, false, fmt.Errorf("abi: unsupported type %q", canonical)
		}
		return Int256, false, nil
	case strings.HasPrefix(base, "bytes"):
		n, err := strconv.Atoi(base[5:])
		if err != nil || n < 1 || n > 32 {
			return 0, false, fmt.Errorf("abi: unsupported type %q", canonical)
		}
		return Bytes32, false, nil
	case strings.HasPrefix(base, "("):
		if canonicalIsDynamic(base) {
			return Bytes, false, nil
		}
		return Bytes32, false, nil
	case base == "function":
		return Bytes32, false, nil // 24-byte callback handle
	}
	return 0, false, fmt.Errorf("abi: unsupported type %q", canonical)
}

func validIntWidth(s string) bool {
	n, err := strconv.Atoi(s)
	return err == nil && n >= 8 && n <= 256 && n%8 == 0
}

// parseParams maps JSON inputs to Params, keeping the canonical type in
// RawType whenever the Kind coercion is lossy.
func parseParams(inputs []jsonParam) ([]Param, error) {
	out := make([]Param, 0, len(inputs))
	for _, in := range inputs {
		canonical, err := canonicalType(in)
		if err != nil {
			return nil, err
		}
		k, exact, err := kindFor(canonical)
		if err != nil {
			return nil, err
		}
		p := Param{Name: in.Name, Kind: k}
		if !exact {
			p.RawType = canonical
		}
		out = append(out, p)
	}
	return out, nil
}

func entryPayable(e jsonEntry) bool {
	if e.StateMutability != "" {
		return e.StateMutability == "payable"
	}
	return e.Payable != nil && *e.Payable
}

func entryView(e jsonEntry) bool {
	if e.StateMutability != "" {
		return e.StateMutability == "view" || e.StateMutability == "pure"
	}
	return e.Constant != nil && *e.Constant
}

// ParseJSON decodes a standard Solidity ABI JSON document (the top-level
// array form) into an ABI. Function names are made unique — overloads get a
// "_2", "_3", ... suffix — because the fuzzer addresses methods by name; the
// on-chain identity stays exact through RawSig. Events and errors are
// skipped.
func ParseJSON(data []byte) (*ABI, error) {
	var entries []jsonEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("abi: parse JSON: %w", err)
	}
	out := &ABI{}
	seen := map[string]int{}
	for _, e := range entries {
		switch e.Type {
		case "function", "":
			if e.Name == "" {
				return nil, fmt.Errorf("abi: function entry without a name")
			}
			inputs, err := parseParams(e.Inputs)
			if err != nil {
				return nil, fmt.Errorf("abi: function %s: %w", e.Name, err)
			}
			m := Method{
				Name:    e.Name,
				Inputs:  inputs,
				Payable: entryPayable(e),
				View:    entryView(e),
				RawSig:  rawSignature(e.Name, inputs),
			}
			seen[e.Name]++
			if n := seen[e.Name]; n > 1 {
				m.Name = fmt.Sprintf("%s_%d", e.Name, n)
			}
			out.Methods = append(out.Methods, m)
		case "constructor":
			inputs, err := parseParams(e.Inputs)
			if err != nil {
				return nil, fmt.Errorf("abi: constructor: %w", err)
			}
			out.Constructor = &Method{
				Name:    "constructor",
				Inputs:  inputs,
				Payable: entryPayable(e),
			}
		case "fallback":
			out.HasFallback = true
			out.FallbackPayable = entryPayable(e)
		case "receive":
			out.HasReceive = true
		case "event", "error":
			// no calldata entry point; dropped
		default:
			return nil, fmt.Errorf("abi: unknown entry type %q", e.Type)
		}
	}
	return out, nil
}

// rawSignature renders name(type,...) over the parameters' on-chain types.
func rawSignature(name string, inputs []Param) string {
	parts := make([]string, len(inputs))
	for i, p := range inputs {
		parts[i] = p.TypeName()
	}
	return name + "(" + strings.Join(parts, ",") + ")"
}

// baseName strips the overload-disambiguation suffix by reading the original
// name back out of the method's signature.
func baseName(m Method) string {
	sig := m.Signature()
	if i := strings.IndexByte(sig, '('); i > 0 {
		return sig[:i]
	}
	return m.Name
}

func encodeParams(inputs []Param) []jsonParam {
	out := make([]jsonParam, len(inputs))
	for i, p := range inputs {
		out[i] = jsonParam{Name: p.Name, Type: p.TypeName()}
	}
	return out
}

// EncodeJSON renders the ABI as a standard Solidity ABI JSON array.
// Coerced parameters are emitted with their original canonical type names
// (tuples as parenthesized signatures), so ParseJSON(EncodeJSON(a)) yields
// an ABI equal to a — the round-trip fixpoint the conformance tests pin.
func (a *ABI) EncodeJSON() []byte {
	var entries []jsonEntry
	if c := a.Constructor; c != nil {
		mut := "nonpayable"
		if c.Payable {
			mut = "payable"
		}
		entries = append(entries, jsonEntry{
			Type: "constructor", Inputs: encodeParams(c.Inputs), StateMutability: mut,
		})
	}
	for _, m := range a.Methods {
		mut := "nonpayable"
		switch {
		case m.Payable:
			mut = "payable"
		case m.View:
			mut = "view"
		}
		entries = append(entries, jsonEntry{
			Type: "function", Name: baseName(m),
			Inputs: encodeParams(m.Inputs), StateMutability: mut,
		})
	}
	if a.HasFallback {
		mut := "nonpayable"
		if a.FallbackPayable {
			mut = "payable"
		}
		entries = append(entries, jsonEntry{Type: "fallback", StateMutability: mut})
	}
	if a.HasReceive {
		entries = append(entries, jsonEntry{Type: "receive", StateMutability: "payable"})
	}
	if entries == nil {
		entries = []jsonEntry{}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		panic("abi: encode JSON: " + err.Error()) // no marshalable-type failure is possible
	}
	return append(data, '\n')
}
