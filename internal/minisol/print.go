package minisol

import (
	"fmt"
	"strings"
)

// Print renders a parsed contract back to MiniSol source. The output is
// canonical: composite expressions are fully parenthesized, member-access
// targets are parenthesized, modifiers appear in a fixed order, and number
// literals print in decimal with unit suffixes expanded. Printing is a
// fixpoint under reparsing — for any contract c obtained from Parse,
// Print(Parse(Print(c))) == Print(c) — which is the property the
// FuzzMinisolParser target checks. Sema information (bindings, slots) is
// ignored: Print works on freshly parsed, un-analyzed ASTs.
func Print(c *Contract) string {
	var b strings.Builder
	fmt.Fprintf(&b, "contract %s {\n", c.Name)
	for i := range c.StateVars {
		sv := &c.StateVars[i]
		fmt.Fprintf(&b, "\t%s %s", sv.Type.String(), sv.Name)
		if sv.Init != nil {
			fmt.Fprintf(&b, " = %s", printExpr(sv.Init))
		}
		b.WriteString(";\n")
	}
	if c.Ctor != nil {
		printFunction(&b, c.Ctor)
	}
	for i := range c.Functions {
		printFunction(&b, &c.Functions[i])
	}
	b.WriteString("}\n")
	return b.String()
}

func printFunction(b *strings.Builder, fn *Function) {
	if fn.IsCtor {
		b.WriteString("\tconstructor(")
	} else {
		fmt.Fprintf(b, "\tfunction %s(", fn.Name)
	}
	for i, p := range fn.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s", p.Type.String(), p.Name)
	}
	// The AST does not record visibility; print the most common form. The
	// modifier order is canonical so printing is reparse-stable.
	b.WriteString(") public")
	if fn.Payable {
		b.WriteString(" payable")
	}
	if fn.View {
		b.WriteString(" view")
	}
	if fn.Returns != nil {
		fmt.Fprintf(b, " returns (%s)", fn.Returns.String())
	}
	b.WriteString(" {\n")
	printStmts(b, fn.Body, 2)
	b.WriteString("\t}\n")
}

func printStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("\t", depth)
	for _, s := range stmts {
		switch st := s.(type) {
		case *VarDeclStmt:
			fmt.Fprintf(b, "%s%s %s", ind, st.Type.String(), st.Name)
			if st.Init != nil {
				fmt.Fprintf(b, " = %s", printExpr(st.Init))
			}
			b.WriteString(";\n")
		case *AssignStmt:
			fmt.Fprintf(b, "%s%s %s %s;\n", ind, printExpr(st.Target), st.Op, printExpr(st.Value))
		case *IfStmt:
			fmt.Fprintf(b, "%sif (%s) {\n", ind, printExpr(st.Cond))
			printStmts(b, st.Then, depth+1)
			if st.Else != nil {
				fmt.Fprintf(b, "%s} else {\n", ind)
				printStmts(b, st.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case *WhileStmt:
			fmt.Fprintf(b, "%swhile (%s) {\n", ind, printExpr(st.Cond))
			printStmts(b, st.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *RequireStmt:
			fmt.Fprintf(b, "%srequire(%s);\n", ind, printExpr(st.Cond))
		case *ReturnStmt:
			if st.Value == nil {
				fmt.Fprintf(b, "%sreturn;\n", ind)
			} else {
				fmt.Fprintf(b, "%sreturn %s;\n", ind, printExpr(st.Value))
			}
		case *TransferStmt:
			fmt.Fprintf(b, "%s(%s).transfer(%s);\n", ind, printExpr(st.Target), printExpr(st.Amount))
		case *SelfDestructStmt:
			fmt.Fprintf(b, "%sselfdestruct(%s);\n", ind, printExpr(st.Beneficiary))
		case *ExprStmt:
			fmt.Fprintf(b, "%s%s;\n", ind, printExpr(st.X))
		default:
			panic(fmt.Sprintf("minisol: Print: unknown statement %T", s))
		}
	}
}

// printExpr renders one expression. Composite expressions are wrapped in
// parentheses so the rendering never depends on operator precedence, and
// member-access targets are parenthesized so any expression can host a
// .balance/.send/.transfer/.call.value/.delegatecall suffix.
func printExpr(e Expr) string {
	switch x := e.(type) {
	case *NumberLit:
		return x.Value.String()
	case *BoolLit:
		if x.Value {
			return "true"
		}
		return "false"
	case *Ident:
		return x.Name
	case *EnvExpr:
		return x.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", x.Map.Name, printExpr(x.Key))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", printExpr(x.L), x.Op, printExpr(x.R))
	case *UnaryExpr:
		return fmt.Sprintf("(%s%s)", x.Op, printExpr(x.X))
	case *BalanceExpr:
		return fmt.Sprintf("(%s).balance", printExpr(x.Addr))
	case *KeccakExpr:
		return fmt.Sprintf("keccak256(%s)", printExprList(x.Args))
	case *CallValueExpr:
		return fmt.Sprintf("(%s).call.value(%s)()", printExpr(x.Target), printExpr(x.Amount))
	case *SendExpr:
		return fmt.Sprintf("(%s).send(%s)", printExpr(x.Target), printExpr(x.Amount))
	case *DelegateCallExpr:
		return fmt.Sprintf("(%s).delegatecall(%s)", printExpr(x.Target), printExprList(x.Args))
	case *transferExpr:
		// transfer in expression position: only reachable on un-analyzed
		// ASTs (sema rejects it), but Print must round-trip whatever Parse
		// accepts.
		return fmt.Sprintf("(%s).transfer(%s)", printExpr(x.Target), printExpr(x.Amount))
	case *CastExpr:
		return fmt.Sprintf("%s(%s)", x.To.String(), printExpr(x.X))
	default:
		panic(fmt.Sprintf("minisol: Print: unknown expression %T", e))
	}
}

func printExprList(exprs []Expr) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = printExpr(e)
	}
	return strings.Join(parts, ", ")
}
