package minisol

import (
	"mufuzz/internal/u256"
)

// TypeKind enumerates MiniSol value types.
type TypeKind int

const (
	TyUint TypeKind = iota // uint256 / uint
	TyInt                  // int256 / int
	TyBool
	TyAddress
	TyBytes32
	TyMapping // mapping(key => value); only as state variable type
)

// Type is a MiniSol type. For mappings, Key and Val are set.
type Type struct {
	Kind TypeKind
	Key  *Type // mapping key
	Val  *Type // mapping value
}

func (t Type) String() string {
	switch t.Kind {
	case TyUint:
		return "uint256"
	case TyInt:
		return "int256"
	case TyBool:
		return "bool"
	case TyAddress:
		return "address"
	case TyBytes32:
		return "bytes32"
	case TyMapping:
		return "mapping(" + t.Key.String() + " => " + t.Val.String() + ")"
	default:
		return "?"
	}
}

// Equal reports structural type equality.
func (t Type) Equal(o Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	if t.Kind == TyMapping {
		return t.Key.Equal(*o.Key) && t.Val.Equal(*o.Val)
	}
	return true
}

// word-compatible types can freely mix in arithmetic/comparison.
func (t Type) isWord() bool {
	return t.Kind == TyUint || t.Kind == TyInt || t.Kind == TyBytes32
}

// --- Expressions ---

// Expr is a MiniSol expression node.
type Expr interface {
	exprNode()
	Pos() (line, col int)
}

type exprBase struct{ line, col int }

func (e exprBase) exprNode()       {}
func (e exprBase) Pos() (int, int) { return e.line, e.col }
func at(tok Token) exprBase        { return exprBase{line: tok.Line, col: tok.Col} }

// NumberLit is an integer literal (unit multipliers already applied).
type NumberLit struct {
	exprBase
	Value u256.Int
}

// BoolLit is true/false.
type BoolLit struct {
	exprBase
	Value bool
}

// Ident references a state variable, local, or parameter. Sema fills Binding.
type Ident struct {
	exprBase
	Name    string
	Binding *Binding
}

// BindingKind distinguishes what an identifier resolved to.
type BindingKind int

const (
	BindStateVar BindingKind = iota
	BindLocal
	BindParam
)

// Binding is the sema resolution of an identifier.
type Binding struct {
	Kind BindingKind
	Type Type
	// Slot is the storage slot for state vars.
	Slot u256.Int
	// MemOffset is the memory offset for locals and params.
	MemOffset uint64
	// Index is the declaration index (params: ABI position).
	Index int
	Name  string
}

// EnvExpr is a builtin environment value.
type EnvExpr struct {
	exprBase
	// Name: msg.sender, msg.value, tx.origin, block.timestamp, block.number,
	// this, now
	Name string
}

// IndexExpr is mapping access m[k].
type IndexExpr struct {
	exprBase
	Map *Ident
	Key Expr
}

// BinaryExpr is a binary operation. Op is the source token (+ - * / % < > <=
// >= == != && || & | ^).
type BinaryExpr struct {
	exprBase
	Op   string
	L, R Expr
}

// UnaryExpr is !x or -x.
type UnaryExpr struct {
	exprBase
	Op string
	X  Expr
}

// BalanceExpr is addr.balance or this.balance.
type BalanceExpr struct {
	exprBase
	Addr Expr
}

// KeccakExpr is keccak256(a, b, ...) over 32-byte words, returning uint256.
type KeccakExpr struct {
	exprBase
	Args []Expr
}

// CallValueExpr is target.call.value(amount)() — value call forwarding all
// gas; evaluates to bool success.
type CallValueExpr struct {
	exprBase
	Target Expr
	Amount Expr
}

// SendExpr is target.send(amount) — stipend-only value call; bool success.
type SendExpr struct {
	exprBase
	Target Expr
	Amount Expr
}

// DelegateCallExpr is target.delegatecall(args...) → bool success. Arguments
// are packed as consecutive 32-byte words of calldata.
type DelegateCallExpr struct {
	exprBase
	Target Expr
	Args   []Expr
}

// CastExpr is uint256(x) / address(x) / bytes32(x).
type CastExpr struct {
	exprBase
	To Type
	X  Expr
}

// --- Statements ---

// Stmt is a MiniSol statement node.
type Stmt interface {
	stmtNode()
}

// VarDeclStmt declares a local: `uint256 x = expr;`.
type VarDeclStmt struct {
	Name    string
	Type    Type
	Init    Expr // may be nil (zero value)
	Binding *Binding
}

// AssignStmt assigns to a state var, local, or mapping element. Op is "=",
// "+=", "-=", "*=" or "/=".
type AssignStmt struct {
	Target Expr // Ident or IndexExpr
	Op     string
	Value  Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // nil when absent
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
}

// RequireStmt reverts when the condition is false.
type RequireStmt struct {
	Cond Expr
}

// ReturnStmt exits the function, optionally with a value.
type ReturnStmt struct {
	Value Expr // nil for plain return
}

// TransferStmt is target.transfer(amount): stipend call, reverts on failure.
type TransferStmt struct {
	Target Expr
	Amount Expr
}

// SelfDestructStmt is selfdestruct(beneficiary).
type SelfDestructStmt struct {
	Beneficiary Expr
}

// ExprStmt evaluates an expression for effect (send/call.value/delegatecall
// used as statements).
type ExprStmt struct {
	X Expr
}

func (*VarDeclStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()       {}
func (*IfStmt) stmtNode()           {}
func (*WhileStmt) stmtNode()        {}
func (*RequireStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()       {}
func (*TransferStmt) stmtNode()     {}
func (*SelfDestructStmt) stmtNode() {}
func (*ExprStmt) stmtNode()         {}

// --- Declarations ---

// StateVar is one contract storage variable.
type StateVar struct {
	Name string
	Type Type
	Slot u256.Int
	Init Expr // may be nil
}

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
}

// Function is a contract function (or constructor when IsCtor).
type Function struct {
	Name    string
	Params  []Param
	Payable bool
	View    bool
	Returns *Type // single optional return value
	Body    []Stmt
	IsCtor  bool
}

// Contract is a parsed MiniSol contract.
type Contract struct {
	Name      string
	StateVars []StateVar
	Ctor      *Function // nil when absent
	Functions []Function
}

// StateVarByName finds a state variable; ok=false when absent.
func (c *Contract) StateVarByName(name string) (*StateVar, bool) {
	for i := range c.StateVars {
		if c.StateVars[i].Name == name {
			return &c.StateVars[i], true
		}
	}
	return nil, false
}

// FunctionByName finds a function by name.
func (c *Contract) FunctionByName(name string) (*Function, bool) {
	for i := range c.Functions {
		if c.Functions[i].Name == name {
			return &c.Functions[i], true
		}
	}
	return nil, false
}
