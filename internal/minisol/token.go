// Package minisol implements a compiler for MiniSol, a Solidity subset rich
// enough to express the paper's motivating contracts (the Crowdsale of Fig. 1
// and the guess-number Game of Fig. 4), the labelled vulnerability suite, and
// the synthetic benchmark corpora.
//
// The compiler mirrors the artifacts the paper's pipeline consumes (§IV-A):
// it produces EVM bytecode, an ABI, and a typed AST from which the data-flow
// dependency analysis derives state-variable read/write sets.
package minisol

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexer tokens.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokKeyword
	TokPunct
)

// Token is one lexeme with position info for error messages.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"contract": true, "function": true, "constructor": true,
	"uint256": true, "uint": true, "int256": true, "int": true,
	"bool": true, "address": true, "bytes32": true, "mapping": true,
	"public": true, "private": true, "internal": true, "external": true,
	"payable": true, "view": true, "pure": true,
	"returns": true, "return": true,
	"if": true, "else": true, "while": true, "require": true,
	"true": true, "false": true,
	"msg": true, "tx": true, "block": true, "this": true, "now": true,
	"ether": true, "finney": true, "wei": true,
	"selfdestruct": true, "keccak256": true,
}

// multi-character punctuation, longest first.
var multiPunct = []string{
	"=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=",
}

// singlePunct characters.
const singlePunct = "(){}[];,.=<>!+-*/%&|^"

// lexer turns source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// Lex tokenizes src. Comments (// and /* */) are skipped.
func Lex(src string) ([]Token, error) {
	lx := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) peekAt(off int) byte {
	if lx.pos+off < len(lx.src) {
		return lx.src[lx.pos+off]
	}
	return 0
}

func (lx *lexer) advance(n int) {
	for i := 0; i < n && lx.pos < len(lx.src); i++ {
		if lx.src[lx.pos] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.pos++
	}
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance(1)
		case c == '/' && lx.peekAt(1) == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance(1)
			}
		case c == '/' && lx.peekAt(1) == '*':
			start := lx.line
			lx.advance(2)
			for {
				if lx.pos >= len(lx.src) {
					return fmt.Errorf("minisol: unterminated block comment starting line %d", start)
				}
				if lx.src[lx.pos] == '*' && lx.peekAt(1) == '/' {
					lx.advance(2)
					break
				}
				lx.advance(1)
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Line: lx.line, Col: lx.col}, nil
	}
	line, col := lx.line, lx.col
	c := lx.src[lx.pos]

	// identifiers / keywords
	if unicode.IsLetter(rune(c)) || c == '_' {
		start := lx.pos
		for lx.pos < len(lx.src) {
			r := rune(lx.src[lx.pos])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			lx.advance(1)
		}
		text := lx.src[start:lx.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	}

	// numbers: decimal, hex, with optional underscores
	if unicode.IsDigit(rune(c)) {
		start := lx.pos
		if c == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
			lx.advance(2)
			for lx.pos < len(lx.src) && isHexDigit(lx.src[lx.pos]) {
				lx.advance(1)
			}
		} else {
			for lx.pos < len(lx.src) && (unicode.IsDigit(rune(lx.src[lx.pos])) || lx.src[lx.pos] == '_') {
				lx.advance(1)
			}
		}
		text := strings.ReplaceAll(lx.src[start:lx.pos], "_", "")
		return Token{Kind: TokNumber, Text: text, Line: line, Col: col}, nil
	}

	// multi-char punct
	for _, p := range multiPunct {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			lx.advance(len(p))
			return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
		}
	}

	if strings.IndexByte(singlePunct, c) >= 0 {
		lx.advance(1)
		return Token{Kind: TokPunct, Text: string(c), Line: line, Col: col}, nil
	}

	return Token{}, fmt.Errorf("minisol: unexpected character %q at line %d col %d", c, line, col)
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
