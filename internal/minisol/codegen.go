package minisol

import (
	"fmt"

	"mufuzz/internal/abi"
	"mufuzz/internal/evm"
	"mufuzz/internal/keccak"
	"mufuzz/internal/u256"
)

// hashWords keccak-hashes a byte buffer into a storage slot.
func hashWords(b []byte) u256.Int {
	sum := keccak.Sum256(b)
	return u256.FromBytes(sum[:])
}

// CtorName is the pseudo-function name under which the constructor is
// exposed. The harness invokes it exactly once, first in every sequence —
// mirroring the paper's rule that the constructor heads the transaction
// sequence (§IV-A).
const CtorName = "__ctor"

// callStageBase is the memory area used to stage external call arguments,
// above any realistic locals region.
const callStageBase = 0x400

// BranchKind classifies the source construct behind a JUMPI site.
type BranchKind string

// Branch site kinds.
const (
	BranchIf       BranchKind = "if"
	BranchWhile    BranchKind = "while"
	BranchRequire  BranchKind = "require"
	BranchGuard    BranchKind = "payguard" // non-payable msg.value check
	BranchDispatch BranchKind = "dispatch" // selector comparison
	BranchBoolOp   BranchKind = "boolop"   // && / || short circuit
	BranchTransfer BranchKind = "transfer" // transfer success check
)

// BranchSite is compile-time metadata about one JUMPI: where it is, which
// function contains it, what construct produced it, and how many conditional
// statements enclose it. The mask-guided mutator uses Depth to decide what
// counts as a "nested branch" (paper §IV-B: at least two nested conditional
// statements), and the energy adjuster uses it for weight assignment (§IV-C).
type BranchSite struct {
	PC    uint64
	Func  string
	Kind  BranchKind
	Depth int // 1 = top-level conditional, 2 = nested once, ...
}

// Compiled is the full compilation artifact for one contract: the same
// triple (bytecode, ABI, AST) the paper's preprocessing step produces.
type Compiled struct {
	Contract *Contract
	Checked  *Checked
	Code     []byte
	ABI      *abi.ABI
	// Ctor is the pseudo-method for the constructor (always present; it may
	// have zero parameters).
	Ctor abi.Method
	// FuncEntry maps function names (including CtorName) to their bytecode
	// entry offsets, for diagnostics and analysis.
	FuncEntry map[string]uint64
	// Branches lists every JUMPI site with source-level metadata.
	Branches []BranchSite
}

// BranchSiteAt finds the branch site for a JUMPI program counter.
func (c *Compiled) BranchSiteAt(pc uint64) (BranchSite, bool) {
	for _, b := range c.Branches {
		if b.PC == pc {
			return b, true
		}
	}
	return BranchSite{}, false
}

// abiKind maps a MiniSol type to its ABI kind.
func abiKind(t Type) (abi.Kind, error) {
	switch t.Kind {
	case TyUint:
		return abi.Uint256, nil
	case TyInt:
		return abi.Int256, nil
	case TyBool:
		return abi.Bool, nil
	case TyAddress:
		return abi.Address, nil
	case TyBytes32:
		return abi.Bytes32, nil
	default:
		return 0, fmt.Errorf("minisol: type %s has no ABI form", t)
	}
}

// generator emits bytecode for one contract.
type generator struct {
	asm     *evm.Assembler
	checked *Checked
	fn      *Function
	fnLabel string
	labelN  int
	nest    int // current conditional nesting depth
	sites   []BranchSite
}

func (g *generator) freshLabel(prefix string) string {
	g.labelN++
	return fmt.Sprintf("%s_%d", prefix, g.labelN)
}

// site records the JUMPI just emitted (the last code byte) as a branch site.
func (g *generator) site(kind BranchKind, depth int) {
	g.sites = append(g.sites, BranchSite{
		PC:    uint64(g.asm.Len() - 1),
		Func:  g.fnLabel,
		Kind:  kind,
		Depth: depth,
	})
}

// Compile parses, checks, and generates code for a MiniSol source text.
func Compile(src string) (*Compiled, error) {
	c, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileContract(c)
}

// CompileContract checks and generates code for a parsed contract.
func CompileContract(c *Contract) (*Compiled, error) {
	checked, err := Check(c)
	if err != nil {
		return nil, err
	}
	g := &generator{asm: evm.NewAssembler(), checked: checked}

	// Build the ABI first so the dispatcher can use selectors.
	contractABI := &abi.ABI{}
	ctorFn := c.Ctor
	if ctorFn == nil {
		ctorFn = &Function{Name: "constructor", IsCtor: true, Payable: true}
	}
	ctorMethod, err := methodFor(CtorName, ctorFn)
	if err != nil {
		return nil, err
	}
	contractABI.Constructor = &ctorMethod
	for i := range c.Functions {
		m, err := methodFor(c.Functions[i].Name, &c.Functions[i])
		if err != nil {
			return nil, err
		}
		contractABI.Methods = append(contractABI.Methods, m)
	}

	// --- Dispatcher ---
	a := g.asm
	// selector = calldataload(0) >> 224
	a.PushUint(0).Op(evm.CALLDATALOAD).PushUint(224).Op(evm.SHR)
	// constructor dispatch
	sel := ctorMethod.Selector()
	a.Op(evm.DUP1).PushBytes(sel[:]).Op(evm.EQ)
	a.JumpITo("fn_" + CtorName)
	g.fnLabel = "dispatch"
	g.site(BranchDispatch, 0)
	for _, m := range contractABI.Methods {
		s := m.Selector()
		a.Op(evm.DUP1).PushBytes(s[:]).Op(evm.EQ)
		a.JumpITo("fn_" + m.Name)
		g.site(BranchDispatch, 0)
	}
	// Fallback: accept plain value transfers (empty calldata), reject the rest.
	a.Op(evm.CALLDATASIZE).Op(evm.ISZERO)
	a.JumpITo("accept")
	g.site(BranchDispatch, 0)
	a.JumpTo("revert")
	a.Label("accept").Op(evm.STOP)

	// --- Functions ---
	entries := map[string]uint64{}
	entries[CtorName] = uint64(a.Len())
	if err := g.genFunction(CtorName, ctorFn, c); err != nil {
		return nil, err
	}
	for i := range c.Functions {
		fn := &c.Functions[i]
		entries[fn.Name] = uint64(a.Len())
		if err := g.genFunction(fn.Name, fn, c); err != nil {
			return nil, err
		}
	}

	// Shared revert block.
	a.Label("revert")
	a.PushUint(0).PushUint(0).Op(evm.REVERT)

	code, err := a.Build()
	if err != nil {
		return nil, err
	}
	return &Compiled{
		Contract:  c,
		Checked:   checked,
		Code:      code,
		ABI:       contractABI,
		Ctor:      ctorMethod,
		FuncEntry: entries,
		Branches:  g.sites,
	}, nil
}

func methodFor(name string, fn *Function) (abi.Method, error) {
	m := abi.Method{Name: name, Payable: fn.Payable || fn.IsCtor, View: fn.View}
	for _, p := range fn.Params {
		k, err := abiKind(p.Type)
		if err != nil {
			return abi.Method{}, fmt.Errorf("%s: param %s: %w", name, p.Name, err)
		}
		m.Inputs = append(m.Inputs, abi.Param{Name: p.Name, Kind: k})
	}
	return m, nil
}

// genFunction emits the prologue, body, and epilogue of one function.
func (g *generator) genFunction(label string, fn *Function, c *Contract) error {
	g.fn = fn
	g.fnLabel = label
	g.nest = 0
	a := g.asm
	a.Label("fn_" + label)
	// The dispatcher leaves the selector on the stack; drop it.
	a.Op(evm.POP)

	// Non-payable guard (constructors are treated as payable).
	if !fn.Payable && !fn.IsCtor {
		a.Op(evm.CALLVALUE).Op(evm.ISZERO)
		ok := g.freshLabel("nonpay")
		a.JumpITo(ok)
		g.site(BranchGuard, 0)
		a.JumpTo("revert")
		a.Label(ok)
	}

	// Copy parameters from calldata to memory.
	for i := range fn.Params {
		a.PushUint(uint64(4 + 32*i)).Op(evm.CALLDATALOAD)
		a.PushUint(uint64(paramsMemBase + 32*i)).Op(evm.MSTORE)
	}

	// Constructor: run state-variable initializers first.
	if fn.IsCtor {
		for i := range c.StateVars {
			sv := &c.StateVars[i]
			if sv.Init == nil {
				continue
			}
			if err := g.genExpr(sv.Init); err != nil {
				return err
			}
			a.Push(sv.Slot).Op(evm.SSTORE)
		}
	}

	if err := g.genBlock(fn.Body); err != nil {
		return err
	}

	// Implicit exit: functions with a return type return zero.
	if fn.Returns != nil {
		a.PushUint(0).PushUint(0).Op(evm.MSTORE)
		a.PushUint(32).PushUint(0).Op(evm.RETURN)
	} else {
		a.Op(evm.STOP)
	}
	return nil
}

func (g *generator) genBlock(stmts []Stmt) error {
	for _, s := range stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *generator) genStmt(s Stmt) error {
	a := g.asm
	switch st := s.(type) {
	case *VarDeclStmt:
		if st.Init != nil {
			if err := g.genExpr(st.Init); err != nil {
				return err
			}
		} else {
			a.PushUint(0)
		}
		a.PushUint(st.Binding.MemOffset).Op(evm.MSTORE)
		return nil

	case *AssignStmt:
		return g.genAssign(st)

	case *IfStmt:
		if err := g.genExpr(st.Cond); err != nil {
			return err
		}
		elseL := g.freshLabel("else")
		endL := g.freshLabel("endif")
		a.Op(evm.ISZERO).JumpITo(elseL)
		g.site(BranchIf, g.nest+1)
		g.nest++
		if err := g.genBlock(st.Then); err != nil {
			g.nest--
			return err
		}
		a.JumpTo(endL)
		a.Label(elseL)
		if err := g.genBlock(st.Else); err != nil {
			g.nest--
			return err
		}
		g.nest--
		a.Label(endL)
		return nil

	case *WhileStmt:
		loopL := g.freshLabel("loop")
		endL := g.freshLabel("endloop")
		a.Label(loopL)
		if err := g.genExpr(st.Cond); err != nil {
			return err
		}
		a.Op(evm.ISZERO).JumpITo(endL)
		g.site(BranchWhile, g.nest+1)
		g.nest++
		if err := g.genBlock(st.Body); err != nil {
			g.nest--
			return err
		}
		g.nest--
		a.JumpTo(loopL)
		a.Label(endL)
		return nil

	case *RequireStmt:
		if err := g.genExpr(st.Cond); err != nil {
			return err
		}
		a.Op(evm.ISZERO).JumpITo("revert")
		g.site(BranchRequire, g.nest+1)
		return nil

	case *ReturnStmt:
		if st.Value != nil {
			if err := g.genExpr(st.Value); err != nil {
				return err
			}
			a.PushUint(0).Op(evm.MSTORE)
			a.PushUint(32).PushUint(0).Op(evm.RETURN)
		} else {
			a.Op(evm.STOP)
		}
		return nil

	case *TransferStmt:
		// Stipend-only value call; revert on failure (solidity transfer).
		if err := g.genValueCall(st.Target, st.Amount, false); err != nil {
			return err
		}
		a.Op(evm.ISZERO).JumpITo("revert")
		g.site(BranchTransfer, g.nest+1)
		return nil

	case *SelfDestructStmt:
		if err := g.genExpr(st.Beneficiary); err != nil {
			return err
		}
		a.Op(evm.SELFDESTRUCT)
		return nil

	case *ExprStmt:
		if err := g.genExpr(st.X); err != nil {
			return err
		}
		a.Op(evm.POP) // every expression leaves exactly one word
		return nil

	default:
		return fmt.Errorf("minisol: codegen: unknown statement %T", s)
	}
}

// genAssign emits target = value (or compound op).
func (g *generator) genAssign(st *AssignStmt) error {
	a := g.asm
	// Compute the new value on the stack.
	emitValue := func() error {
		if st.Op == "=" {
			return g.genExpr(st.Value)
		}
		// compound: load target, op value
		if err := g.genLoad(st.Target); err != nil {
			return err
		}
		if err := g.genExpr(st.Value); err != nil {
			return err
		}
		// stack: [old, v]; compute old OP v
		switch st.Op {
		case "+=":
			a.Op(evm.ADD)
		case "-=":
			// SUB computes top - second = v - old; swap first
			a.Op(evm.SWAP1).Op(evm.SUB)
		case "*=":
			a.Op(evm.MUL)
		case "/=":
			// DIV computes top / second = v / old; swap first
			a.Op(evm.SWAP1).Op(evm.DIV)
		default:
			return fmt.Errorf("minisol: unknown compound op %q", st.Op)
		}
		return nil
	}

	switch t := st.Target.(type) {
	case *Ident:
		if err := emitValue(); err != nil {
			return err
		}
		b := t.Binding
		switch b.Kind {
		case BindStateVar:
			a.Push(b.Slot).Op(evm.SSTORE)
		default:
			a.PushUint(b.MemOffset).Op(evm.MSTORE)
		}
		return nil

	case *IndexExpr:
		if err := emitValue(); err != nil {
			return err
		}
		if err := g.genMappingSlot(t); err != nil {
			return err
		}
		a.Op(evm.SSTORE) // pops slot (top) then value
		return nil

	default:
		return fmt.Errorf("minisol: invalid assignment target %T", st.Target)
	}
}

// genLoad pushes the current value of an lvalue.
func (g *generator) genLoad(e Expr) error {
	a := g.asm
	switch t := e.(type) {
	case *Ident:
		b := t.Binding
		switch b.Kind {
		case BindStateVar:
			a.Push(b.Slot).Op(evm.SLOAD)
		default:
			a.PushUint(b.MemOffset).Op(evm.MLOAD)
		}
		return nil
	case *IndexExpr:
		if err := g.genMappingSlot(t); err != nil {
			return err
		}
		a.Op(evm.SLOAD)
		return nil
	}
	return fmt.Errorf("minisol: cannot load %T", e)
}

// genMappingSlot pushes keccak256(key . slot) for m[key].
func (g *generator) genMappingSlot(t *IndexExpr) error {
	a := g.asm
	if err := g.genExpr(t.Key); err != nil {
		return err
	}
	a.PushUint(0).Op(evm.MSTORE)
	a.Push(t.Map.Binding.Slot).PushUint(32).Op(evm.MSTORE)
	a.PushUint(64).PushUint(0).Op(evm.KECCAK256)
	return nil
}

// genValueCall emits an external value call: target receives amount.
// fullGas=false forwards only the stipend (transfer/send); fullGas=true
// forwards all remaining gas (call.value). Leaves the status word on stack.
func (g *generator) genValueCall(target, amount Expr, fullGas bool) error {
	a := g.asm
	a.PushUint(0).PushUint(0).PushUint(0).PushUint(0) // outSz outOff inSz inOff
	if err := g.genExpr(amount); err != nil {
		return err
	}
	if err := g.genExpr(target); err != nil {
		return err
	}
	if fullGas {
		a.Op(evm.GAS)
	} else {
		a.PushUint(0) // gas 0: callee receives only the 2300 stipend
	}
	a.Op(evm.CALL)
	return nil
}

func (g *generator) genExpr(e Expr) error {
	a := g.asm
	switch t := e.(type) {
	case *NumberLit:
		a.Push(t.Value)
		return nil

	case *BoolLit:
		if t.Value {
			a.PushUint(1)
		} else {
			a.PushUint(0)
		}
		return nil

	case *Ident:
		if t.Binding == nil {
			return fmt.Errorf("minisol: codegen: unresolved identifier %q", t.Name)
		}
		if t.Binding.Type.Kind == TyMapping {
			return fmt.Errorf("minisol: mapping %q used as a value", t.Name)
		}
		return g.genLoad(t)

	case *EnvExpr:
		switch t.Name {
		case "msg.sender":
			a.Op(evm.CALLER)
		case "msg.value":
			a.Op(evm.CALLVALUE)
		case "tx.origin":
			a.Op(evm.ORIGIN)
		case "block.timestamp":
			a.Op(evm.TIMESTAMP)
		case "block.number":
			a.Op(evm.NUMBER)
		case "this":
			a.Op(evm.ADDRESS)
		default:
			return fmt.Errorf("minisol: codegen: unknown env %q", t.Name)
		}
		return nil

	case *IndexExpr:
		return g.genLoad(t)

	case *BinaryExpr:
		return g.genBinary(t)

	case *UnaryExpr:
		if err := g.genExpr(t.X); err != nil {
			return err
		}
		switch t.Op {
		case "!":
			a.Op(evm.ISZERO)
		case "-":
			a.PushUint(0).Op(evm.SUB) // 0 - x (SUB = top - second)
		}
		return nil

	case *BalanceExpr:
		if err := g.genExpr(t.Addr); err != nil {
			return err
		}
		a.Op(evm.BALANCE)
		return nil

	case *KeccakExpr:
		for i, arg := range t.Args {
			if err := g.genExpr(arg); err != nil {
				return err
			}
			a.PushUint(uint64(callStageBase + 32*i)).Op(evm.MSTORE)
		}
		a.PushUint(uint64(32 * len(t.Args))).PushUint(callStageBase).Op(evm.KECCAK256)
		return nil

	case *CallValueExpr:
		return g.genValueCall(t.Target, t.Amount, true)

	case *SendExpr:
		return g.genValueCall(t.Target, t.Amount, false)

	case *DelegateCallExpr:
		for i, arg := range t.Args {
			if err := g.genExpr(arg); err != nil {
				return err
			}
			a.PushUint(uint64(callStageBase + 32*i)).Op(evm.MSTORE)
		}
		a.PushUint(0).PushUint(0) // outSz outOff
		a.PushUint(uint64(32 * len(t.Args))).PushUint(callStageBase)
		if err := g.genExpr(t.Target); err != nil {
			return err
		}
		a.Op(evm.GAS)
		a.Op(evm.DELEGATECALL)
		return nil

	case *CastExpr:
		if err := g.genExpr(t.X); err != nil {
			return err
		}
		if t.To.Kind == TyAddress {
			// mask to 160 bits
			a.Push(u256.Max.Rsh(96)).Op(evm.AND)
		}
		return nil

	case *transferExpr:
		return fmt.Errorf("minisol: .transfer is not an expression")

	default:
		return fmt.Errorf("minisol: codegen: unknown expression %T", e)
	}
}

func (g *generator) genBinary(t *BinaryExpr) error {
	a := g.asm
	signed := g.checked.TypeOf(t.L).Kind == TyInt || g.checked.TypeOf(t.R).Kind == TyInt

	switch t.Op {
	case "&&":
		// short-circuit: if L is false the result is L (0)
		end := g.freshLabel("and")
		if err := g.genExpr(t.L); err != nil {
			return err
		}
		a.Op(evm.DUP1).Op(evm.ISZERO).JumpITo(end)
		g.site(BranchBoolOp, g.nest+1)
		a.Op(evm.POP)
		if err := g.genExpr(t.R); err != nil {
			return err
		}
		a.Label(end)
		return nil
	case "||":
		end := g.freshLabel("or")
		if err := g.genExpr(t.L); err != nil {
			return err
		}
		a.Op(evm.DUP1).JumpITo(end)
		g.site(BranchBoolOp, g.nest+1)
		a.Op(evm.POP)
		if err := g.genExpr(t.R); err != nil {
			return err
		}
		a.Label(end)
		return nil
	}

	// Binary numeric/comparison: emit R then L so L ends on top; EVM binary
	// ops compute top OP second, i.e. L OP R.
	if err := g.genExpr(t.R); err != nil {
		return err
	}
	if err := g.genExpr(t.L); err != nil {
		return err
	}
	switch t.Op {
	case "+":
		a.Op(evm.ADD)
	case "-":
		a.Op(evm.SUB)
	case "*":
		a.Op(evm.MUL)
	case "/":
		if signed {
			a.Op(evm.SDIV)
		} else {
			a.Op(evm.DIV)
		}
	case "%":
		if signed {
			a.Op(evm.SMOD)
		} else {
			a.Op(evm.MOD)
		}
	case "&":
		a.Op(evm.AND)
	case "|":
		a.Op(evm.OR)
	case "^":
		a.Op(evm.XOR)
	case "<":
		if signed {
			a.Op(evm.SLT)
		} else {
			a.Op(evm.LT)
		}
	case ">":
		if signed {
			a.Op(evm.SGT)
		} else {
			a.Op(evm.GT)
		}
	case "<=":
		if signed {
			a.Op(evm.SGT)
		} else {
			a.Op(evm.GT)
		}
		a.Op(evm.ISZERO)
	case ">=":
		if signed {
			a.Op(evm.SLT)
		} else {
			a.Op(evm.LT)
		}
		a.Op(evm.ISZERO)
	case "==":
		a.Op(evm.EQ)
	case "!=":
		a.Op(evm.EQ).Op(evm.ISZERO)
	default:
		return fmt.Errorf("minisol: codegen: unknown binary op %q", t.Op)
	}
	return nil
}
