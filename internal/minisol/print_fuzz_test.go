package minisol_test

import (
	"testing"

	"mufuzz/internal/corpus"
	"mufuzz/internal/minisol"
)

// corpusSources gathers every contract source shipped with the repo — the
// seed corpus for the parser fuzz target and the round-trip test.
func corpusSources() []string {
	out := []string{corpus.Crowdsale(), corpus.CrowdsaleBuggy(), corpus.Game()}
	for _, l := range corpus.VulnSuite() {
		out = append(out, l.Source)
	}
	for _, l := range corpus.SafeSuite() {
		out = append(out, l.Source)
	}
	return out
}

// TestPrintRoundTripCorpus checks the parse→print→parse fixpoint on every
// shipped contract: the printed form must reparse, and reprint identically.
func TestPrintRoundTripCorpus(t *testing.T) {
	for i, src := range corpusSources() {
		c1, err := minisol.Parse(src)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		p1 := minisol.Print(c1)
		c2, err := minisol.Parse(p1)
		if err != nil {
			t.Fatalf("source %d (%s): printed form does not reparse: %v\n%s", i, c1.Name, err, p1)
		}
		if p2 := minisol.Print(c2); p2 != p1 {
			t.Fatalf("source %d (%s): print not a fixpoint\n--- first\n%s\n--- second\n%s", i, c1.Name, p1, p2)
		}
	}
}

// TestPrintedSourceCompiles checks the printed form survives the whole
// pipeline for compilable contracts, not just the parser.
func TestPrintedSourceCompiles(t *testing.T) {
	for i, src := range corpusSources() {
		c, err := minisol.Parse(src)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		if _, err := minisol.Compile(src); err != nil {
			continue // not all corpus sources need to stay compilable here
		}
		if _, err := minisol.Compile(minisol.Print(c)); err != nil {
			t.Errorf("source %d (%s): printed form does not compile: %v", i, c.Name, err)
		}
	}
}

// FuzzMinisolParser fuzzes the front end: the parser must never panic on
// arbitrary input, and for every input it accepts, the printer's output must
// reparse to an identically printing contract (parse→print→parse fixpoint).
func FuzzMinisolParser(f *testing.F) {
	for _, src := range corpusSources() {
		f.Add(src)
	}
	f.Add("contract C { uint256 x = 1 ether; function f(uint a) public payable returns (bool) { if (a > 1) { x += a; } else { x = 0; } return true; } }")
	f.Add("contract D { mapping(address => uint256) m; function g(address a) public { m[a] = m[a] + 1; (a).transfer(m[a]); } }")
	f.Add("contract E { function h() public { msg.sender.call.value(1)(); selfdestruct(msg.sender); } }")
	f.Fuzz(func(t *testing.T, src string) {
		c1, err := minisol.Parse(src)
		if err != nil {
			return // rejected input: only panics count as failures
		}
		p1 := minisol.Print(c1)
		c2, err := minisol.Parse(p1)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\ninput: %q\nprinted:\n%s", err, src, p1)
		}
		if p2 := minisol.Print(c2); p2 != p1 {
			t.Fatalf("print not a fixpoint\ninput: %q\n--- first\n%s\n--- second\n%s", src, p1, p2)
		}
	})
}
