package minisol

import (
	"fmt"

	"mufuzz/internal/u256"
)

// Checked is the output of semantic analysis: the contract with all
// identifiers resolved, plus a type annotation for every expression.
type Checked struct {
	Contract *Contract
	// Types maps every expression node to its type.
	Types map[Expr]Type
}

// TypeOf returns the checked type of an expression.
func (c *Checked) TypeOf(e Expr) Type {
	return c.Types[e]
}

// paramsMemBase is where function parameters and locals live in memory.
// 0x00..0x3f is scratch (keccak, returns); 0x400+ stages external call data.
const paramsMemBase = 0x80

// checker walks the AST resolving names and checking types.
type checker struct {
	contract *Contract
	types    map[Expr]Type
	// function scope
	fn     *Function
	locals map[string]*Binding
	nLocal int
}

// Check runs semantic analysis over a parsed contract.
func Check(c *Contract) (*Checked, error) {
	ck := &checker{contract: c, types: make(map[Expr]Type)}

	// State variable initializers are evaluated in constructor context.
	for i := range c.StateVars {
		sv := &c.StateVars[i]
		if sv.Init == nil {
			continue
		}
		ty, err := ck.checkExpr(sv.Init)
		if err != nil {
			return nil, fmt.Errorf("initializer of %s: %w", sv.Name, err)
		}
		if !assignable(sv.Type, ty) {
			return nil, fmt.Errorf("minisol: cannot initialize %s (%s) with %s", sv.Name, sv.Type, ty)
		}
	}

	if c.Ctor != nil {
		if err := ck.checkFunction(c.Ctor); err != nil {
			return nil, err
		}
	}
	for i := range c.Functions {
		if err := ck.checkFunction(&c.Functions[i]); err != nil {
			return nil, err
		}
	}
	return &Checked{Contract: c, Types: ck.types}, nil
}

// assignable reports whether a value of type src can be stored into dst.
// Word types (uint/int/bytes32) interconvert freely, as EVM words do.
func assignable(dst, src Type) bool {
	if dst.Kind == src.Kind {
		return true
	}
	if dst.isWord() && src.isWord() {
		return true
	}
	return false
}

func (ck *checker) checkFunction(fn *Function) error {
	ck.fn = fn
	ck.locals = make(map[string]*Binding)
	ck.nLocal = 0
	for i, p := range fn.Params {
		if _, dup := ck.locals[p.Name]; dup {
			return fmt.Errorf("minisol: %s: duplicate parameter %q", fn.Name, p.Name)
		}
		if _, shadow := ck.contract.StateVarByName(p.Name); shadow {
			return fmt.Errorf("minisol: %s: parameter %q shadows a state variable", fn.Name, p.Name)
		}
		ck.locals[p.Name] = &Binding{
			Kind:      BindParam,
			Type:      p.Type,
			MemOffset: uint64(paramsMemBase + 32*i),
			Index:     i,
			Name:      p.Name,
		}
		ck.nLocal++
	}
	return ck.checkBlock(fn.Body)
}

func (ck *checker) checkBlock(stmts []Stmt) error {
	for _, s := range stmts {
		if err := ck.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (ck *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *VarDeclStmt:
		if st.Type.Kind == TyMapping {
			return fmt.Errorf("minisol: %s: local mappings are not supported", ck.fn.Name)
		}
		if _, dup := ck.locals[st.Name]; dup {
			return fmt.Errorf("minisol: %s: duplicate local %q", ck.fn.Name, st.Name)
		}
		if _, shadow := ck.contract.StateVarByName(st.Name); shadow {
			return fmt.Errorf("minisol: %s: local %q shadows a state variable", ck.fn.Name, st.Name)
		}
		if st.Init != nil {
			ty, err := ck.checkExpr(st.Init)
			if err != nil {
				return err
			}
			if !assignable(st.Type, ty) {
				return fmt.Errorf("minisol: %s: cannot assign %s to %s %s", ck.fn.Name, ty, st.Type, st.Name)
			}
		}
		b := &Binding{
			Kind:      BindLocal,
			Type:      st.Type,
			MemOffset: uint64(paramsMemBase + 32*ck.nLocal),
			Index:     ck.nLocal,
			Name:      st.Name,
		}
		ck.locals[st.Name] = b
		st.Binding = b
		ck.nLocal++
		return nil

	case *AssignStmt:
		tyT, err := ck.checkLValue(st.Target)
		if err != nil {
			return err
		}
		tyV, err := ck.checkExpr(st.Value)
		if err != nil {
			return err
		}
		if !assignable(tyT, tyV) {
			return fmt.Errorf("minisol: %s: cannot assign %s to %s", ck.fn.Name, tyV, tyT)
		}
		if st.Op != "=" && !tyT.isWord() {
			return fmt.Errorf("minisol: %s: %s requires numeric operands", ck.fn.Name, st.Op)
		}
		return nil

	case *IfStmt:
		ty, err := ck.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ty.Kind != TyBool {
			return fmt.Errorf("minisol: %s: if condition must be bool, got %s", ck.fn.Name, ty)
		}
		if err := ck.checkBlock(st.Then); err != nil {
			return err
		}
		return ck.checkBlock(st.Else)

	case *WhileStmt:
		ty, err := ck.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ty.Kind != TyBool {
			return fmt.Errorf("minisol: %s: while condition must be bool, got %s", ck.fn.Name, ty)
		}
		return ck.checkBlock(st.Body)

	case *RequireStmt:
		ty, err := ck.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ty.Kind != TyBool {
			return fmt.Errorf("minisol: %s: require condition must be bool, got %s", ck.fn.Name, ty)
		}
		return nil

	case *ReturnStmt:
		if st.Value == nil {
			if ck.fn.Returns != nil {
				return fmt.Errorf("minisol: %s: missing return value", ck.fn.Name)
			}
			return nil
		}
		if ck.fn.Returns == nil {
			return fmt.Errorf("minisol: %s: function has no return type", ck.fn.Name)
		}
		ty, err := ck.checkExpr(st.Value)
		if err != nil {
			return err
		}
		if !assignable(*ck.fn.Returns, ty) {
			return fmt.Errorf("minisol: %s: cannot return %s as %s", ck.fn.Name, ty, ck.fn.Returns)
		}
		return nil

	case *TransferStmt:
		tyT, err := ck.checkExpr(st.Target)
		if err != nil {
			return err
		}
		if tyT.Kind != TyAddress {
			return fmt.Errorf("minisol: %s: transfer target must be address, got %s", ck.fn.Name, tyT)
		}
		tyA, err := ck.checkExpr(st.Amount)
		if err != nil {
			return err
		}
		if !tyA.isWord() {
			return fmt.Errorf("minisol: %s: transfer amount must be numeric, got %s", ck.fn.Name, tyA)
		}
		return nil

	case *SelfDestructStmt:
		ty, err := ck.checkExpr(st.Beneficiary)
		if err != nil {
			return err
		}
		if ty.Kind != TyAddress {
			return fmt.Errorf("minisol: %s: selfdestruct beneficiary must be address, got %s", ck.fn.Name, ty)
		}
		return nil

	case *ExprStmt:
		_, err := ck.checkExpr(st.X)
		return err

	default:
		return fmt.Errorf("minisol: unknown statement %T", s)
	}
}

// checkLValue resolves an assignment target and returns its value type.
func (ck *checker) checkLValue(e Expr) (Type, error) {
	switch t := e.(type) {
	case *Ident:
		ty, err := ck.checkExpr(t)
		if err != nil {
			return Type{}, err
		}
		if ty.Kind == TyMapping {
			return Type{}, fmt.Errorf("minisol: cannot assign to mapping %q directly", t.Name)
		}
		return ty, nil
	case *IndexExpr:
		return ck.checkExpr(t)
	default:
		return Type{}, fmt.Errorf("minisol: invalid assignment target %T", e)
	}
}

func (ck *checker) checkExpr(e Expr) (Type, error) {
	ty, err := ck.typeExpr(e)
	if err != nil {
		return Type{}, err
	}
	ck.types[e] = ty
	return ty, nil
}

func (ck *checker) typeExpr(e Expr) (Type, error) {
	switch t := e.(type) {
	case *NumberLit:
		return Type{Kind: TyUint}, nil
	case *BoolLit:
		return Type{Kind: TyBool}, nil

	case *Ident:
		if b, ok := ck.locals[t.Name]; ok {
			t.Binding = b
			return b.Type, nil
		}
		if sv, ok := ck.contract.StateVarByName(t.Name); ok {
			t.Binding = &Binding{Kind: BindStateVar, Type: sv.Type, Slot: sv.Slot, Name: sv.Name}
			return sv.Type, nil
		}
		line, col := t.Pos()
		return Type{}, fmt.Errorf("minisol: line %d col %d: undefined identifier %q", line, col, t.Name)

	case *EnvExpr:
		switch t.Name {
		case "msg.sender", "tx.origin", "this":
			return Type{Kind: TyAddress}, nil
		case "msg.value", "block.timestamp", "block.number":
			return Type{Kind: TyUint}, nil
		}
		return Type{}, fmt.Errorf("minisol: unknown environment value %q", t.Name)

	case *IndexExpr:
		mapTy, err := ck.checkExpr(t.Map)
		if err != nil {
			return Type{}, err
		}
		if mapTy.Kind != TyMapping {
			return Type{}, fmt.Errorf("minisol: %q is not a mapping", t.Map.Name)
		}
		keyTy, err := ck.checkExpr(t.Key)
		if err != nil {
			return Type{}, err
		}
		if !assignable(*mapTy.Key, keyTy) && mapTy.Key.Kind != keyTy.Kind {
			return Type{}, fmt.Errorf("minisol: mapping %q key is %s, got %s", t.Map.Name, mapTy.Key, keyTy)
		}
		return *mapTy.Val, nil

	case *BinaryExpr:
		lt, err := ck.checkExpr(t.L)
		if err != nil {
			return Type{}, err
		}
		rt, err := ck.checkExpr(t.R)
		if err != nil {
			return Type{}, err
		}
		switch t.Op {
		case "&&", "||":
			if lt.Kind != TyBool || rt.Kind != TyBool {
				return Type{}, fmt.Errorf("minisol: %s requires bool operands, got %s and %s", t.Op, lt, rt)
			}
			return Type{Kind: TyBool}, nil
		case "==", "!=":
			if lt.Kind == TyAddress && rt.Kind == TyAddress {
				return Type{Kind: TyBool}, nil
			}
			if lt.Kind == TyBool && rt.Kind == TyBool {
				return Type{Kind: TyBool}, nil
			}
			if lt.isWord() && rt.isWord() {
				return Type{Kind: TyBool}, nil
			}
			return Type{}, fmt.Errorf("minisol: cannot compare %s with %s", lt, rt)
		case "<", ">", "<=", ">=":
			if lt.isWord() && rt.isWord() {
				return Type{Kind: TyBool}, nil
			}
			return Type{}, fmt.Errorf("minisol: cannot order %s and %s", lt, rt)
		case "+", "-", "*", "/", "%", "&", "|", "^":
			if lt.isWord() && rt.isWord() {
				// int dominates for signed semantics
				if lt.Kind == TyInt || rt.Kind == TyInt {
					return Type{Kind: TyInt}, nil
				}
				return Type{Kind: TyUint}, nil
			}
			return Type{}, fmt.Errorf("minisol: %s requires numeric operands, got %s and %s", t.Op, lt, rt)
		}
		return Type{}, fmt.Errorf("minisol: unknown operator %q", t.Op)

	case *UnaryExpr:
		xt, err := ck.checkExpr(t.X)
		if err != nil {
			return Type{}, err
		}
		switch t.Op {
		case "!":
			if xt.Kind != TyBool {
				return Type{}, fmt.Errorf("minisol: ! requires bool, got %s", xt)
			}
			return Type{Kind: TyBool}, nil
		case "-":
			if !xt.isWord() {
				return Type{}, fmt.Errorf("minisol: unary - requires numeric, got %s", xt)
			}
			return Type{Kind: TyInt}, nil
		}
		return Type{}, fmt.Errorf("minisol: unknown unary %q", t.Op)

	case *BalanceExpr:
		at, err := ck.checkExpr(t.Addr)
		if err != nil {
			return Type{}, err
		}
		if at.Kind != TyAddress {
			return Type{}, fmt.Errorf("minisol: .balance requires address, got %s", at)
		}
		return Type{Kind: TyUint}, nil

	case *KeccakExpr:
		for _, a := range t.Args {
			if _, err := ck.checkExpr(a); err != nil {
				return Type{}, err
			}
		}
		return Type{Kind: TyUint}, nil

	case *CallValueExpr:
		if err := ck.checkAddrAmount(t.Target, t.Amount, "call.value"); err != nil {
			return Type{}, err
		}
		return Type{Kind: TyBool}, nil

	case *SendExpr:
		if err := ck.checkAddrAmount(t.Target, t.Amount, "send"); err != nil {
			return Type{}, err
		}
		return Type{Kind: TyBool}, nil

	case *DelegateCallExpr:
		at, err := ck.checkExpr(t.Target)
		if err != nil {
			return Type{}, err
		}
		if at.Kind != TyAddress {
			return Type{}, fmt.Errorf("minisol: delegatecall target must be address, got %s", at)
		}
		for _, a := range t.Args {
			if _, err := ck.checkExpr(a); err != nil {
				return Type{}, err
			}
		}
		return Type{Kind: TyBool}, nil

	case *CastExpr:
		xt, err := ck.checkExpr(t.X)
		if err != nil {
			return Type{}, err
		}
		ok := false
		switch {
		case t.To.isWord() && (xt.isWord() || xt.Kind == TyAddress || xt.Kind == TyBool):
			ok = true
		case t.To.Kind == TyAddress && (xt.isWord() || xt.Kind == TyAddress):
			ok = true
		case t.To.Kind == TyBool && xt.Kind == TyBool:
			ok = true
		}
		if !ok {
			return Type{}, fmt.Errorf("minisol: cannot cast %s to %s", xt, t.To)
		}
		return t.To, nil

	case *transferExpr:
		return Type{}, fmt.Errorf("minisol: .transfer(...) is a statement, not an expression")

	default:
		return Type{}, fmt.Errorf("minisol: unknown expression %T", e)
	}
}

func (ck *checker) checkAddrAmount(target, amount Expr, what string) error {
	at, err := ck.checkExpr(target)
	if err != nil {
		return err
	}
	if at.Kind != TyAddress {
		return fmt.Errorf("minisol: %s target must be address, got %s", what, at)
	}
	amt, err := ck.checkExpr(amount)
	if err != nil {
		return err
	}
	if !amt.isWord() {
		return fmt.Errorf("minisol: %s amount must be numeric, got %s", what, amt)
	}
	return nil
}

// SlotOfMapping computes the storage slot of m[key] the way Solidity does:
// keccak256(key . slot).
func SlotOfMapping(mapSlot u256.Int, key u256.Int) u256.Int {
	var buf [64]byte
	k := key.Bytes32()
	s := mapSlot.Bytes32()
	copy(buf[:32], k[:])
	copy(buf[32:], s[:])
	return hashWords(buf[:])
}
