package minisol

import (
	"fmt"
	"math/big"

	"mufuzz/internal/u256"
)

// transferExpr is a parse-time node for `target.transfer(amount)`. It is only
// legal as a statement; the statement parser converts it to TransferStmt and
// sema rejects it anywhere else.
type transferExpr struct {
	exprBase
	Target Expr
	Amount Expr
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse parses one MiniSol contract from source.
func Parse(src string) (*Contract, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	c, err := p.parseContract()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected %s after contract", p.cur())
	}
	return c, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *parser) peekText() string { return p.cur().Text }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("minisol: line %d col %d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

// accept consumes the token if it matches text.
func (p *parser) accept(text string) bool {
	if p.cur().Kind != TokEOF && p.cur().Text == text {
		p.pos++
		return true
	}
	return false
}

// expect consumes a token with the given text or fails.
func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errorf("expected %q, found %s", text, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (Token, error) {
	if p.cur().Kind != TokIdent {
		return Token{}, p.errorf("expected identifier, found %s", p.cur())
	}
	return p.next(), nil
}

// isTypeKeyword reports whether text begins a (non-mapping) type.
func isTypeKeyword(text string) bool {
	switch text {
	case "uint256", "uint", "int256", "int", "bool", "address", "bytes32":
		return true
	}
	return false
}

func simpleType(text string) Type {
	switch text {
	case "uint256", "uint":
		return Type{Kind: TyUint}
	case "int256", "int":
		return Type{Kind: TyInt}
	case "bool":
		return Type{Kind: TyBool}
	case "address":
		return Type{Kind: TyAddress}
	case "bytes32":
		return Type{Kind: TyBytes32}
	}
	panic("minisol: not a simple type: " + text)
}

// parseType parses a type, including mapping types.
func (p *parser) parseType() (Type, error) {
	t := p.cur()
	if t.Text == "mapping" {
		p.next()
		if err := p.expect("("); err != nil {
			return Type{}, err
		}
		if !isTypeKeyword(p.peekText()) {
			return Type{}, p.errorf("expected mapping key type, found %s", p.cur())
		}
		key := simpleType(p.next().Text)
		if err := p.expect("=>"); err != nil {
			return Type{}, err
		}
		if !isTypeKeyword(p.peekText()) {
			return Type{}, p.errorf("expected mapping value type, found %s", p.cur())
		}
		val := simpleType(p.next().Text)
		if err := p.expect(")"); err != nil {
			return Type{}, err
		}
		return Type{Kind: TyMapping, Key: &key, Val: &val}, nil
	}
	if isTypeKeyword(t.Text) {
		p.next()
		return simpleType(t.Text), nil
	}
	return Type{}, p.errorf("expected type, found %s", t)
}

// parseContract parses `contract Name { members }`.
func (p *parser) parseContract() (*Contract, error) {
	if err := p.expect("contract"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	c := &Contract{Name: name.Text}
	for !p.accept("}") {
		if p.atEOF() {
			return nil, p.errorf("unterminated contract body")
		}
		switch {
		case p.peekText() == "function" || p.peekText() == "constructor":
			fn, err := p.parseFunction()
			if err != nil {
				return nil, err
			}
			if fn.IsCtor {
				if c.Ctor != nil {
					return nil, p.errorf("duplicate constructor")
				}
				c.Ctor = fn
			} else {
				if _, dup := c.FunctionByName(fn.Name); dup {
					return nil, p.errorf("duplicate function %q", fn.Name)
				}
				c.Functions = append(c.Functions, *fn)
			}
		default:
			sv, err := p.parseStateVar(len(c.StateVars))
			if err != nil {
				return nil, err
			}
			if _, dup := c.StateVarByName(sv.Name); dup {
				return nil, p.errorf("duplicate state variable %q", sv.Name)
			}
			c.StateVars = append(c.StateVars, sv)
		}
	}
	return c, nil
}

// parseStateVar parses `type name (= expr)? ;` with optional visibility.
func (p *parser) parseStateVar(index int) (StateVar, error) {
	ty, err := p.parseType()
	if err != nil {
		return StateVar{}, err
	}
	// optional visibility keywords
	for p.accept("public") || p.accept("private") || p.accept("internal") {
	}
	name, err := p.expectIdent()
	if err != nil {
		return StateVar{}, err
	}
	sv := StateVar{Name: name.Text, Type: ty, Slot: u256.New(uint64(index))}
	if p.accept("=") {
		if ty.Kind == TyMapping {
			return StateVar{}, p.errorf("mappings cannot have initializers")
		}
		init, err := p.parseExpr()
		if err != nil {
			return StateVar{}, err
		}
		sv.Init = init
	}
	if err := p.expect(";"); err != nil {
		return StateVar{}, err
	}
	return sv, nil
}

// parseFunction parses function or constructor declarations.
func (p *parser) parseFunction() (*Function, error) {
	fn := &Function{}
	if p.accept("constructor") {
		fn.IsCtor = true
		fn.Name = "constructor"
	} else {
		if err := p.expect("function"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		fn.Name = name.Text
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for !p.accept(")") {
		if len(fn.Params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if ty.Kind == TyMapping {
			return nil, p.errorf("mapping parameters are not supported")
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, Param{Name: name.Text, Type: ty})
	}
	// modifiers in any order
	for {
		switch {
		case p.accept("public"), p.accept("private"), p.accept("internal"), p.accept("external"):
		case p.accept("payable"):
			fn.Payable = true
		case p.accept("view"), p.accept("pure"):
			fn.View = true
		case p.accept("returns"):
			if err := p.expect("("); err != nil {
				return nil, err
			}
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if ty.Kind == TyMapping {
				return nil, p.errorf("cannot return a mapping")
			}
			fn.Returns = &ty
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		default:
			goto body
		}
	}
body:
	block, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = block
	return fn, nil
}

// parseBlock parses `{ stmt* }`.
func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.accept("}") {
		if p.atEOF() {
			return nil, p.errorf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

// parseStmt parses one statement.
func (p *parser) parseStmt() (Stmt, error) {
	switch p.peekText() {
	case "if":
		return p.parseIf()
	case "while":
		return p.parseWhile()
	case "require":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &RequireStmt{Cond: cond}, nil
	case "return":
		p.next()
		if p.accept(";") {
			return &ReturnStmt{}, nil
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: v}, nil
	case "selfdestruct":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		ben, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &SelfDestructStmt{Beneficiary: ben}, nil
	}

	// local declaration: type keyword followed by identifier
	if isTypeKeyword(p.peekText()) && p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokIdent {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		decl := &VarDeclStmt{Name: name.Text, Type: ty}
		if p.accept("=") {
			init, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			decl.Init = init
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return decl, nil
	}

	// expression-led statement: assignment, transfer, or plain expression
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch op := p.peekText(); op {
	case "=", "+=", "-=", "*=", "/=":
		p.next()
		switch x.(type) {
		case *Ident, *IndexExpr:
		default:
			return nil, p.errorf("invalid assignment target")
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Target: x, Op: op, Value: v}, nil
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if tr, ok := x.(*transferExpr); ok {
		return &TransferStmt{Target: tr.Target, Amount: tr.Amount}, nil
	}
	return &ExprStmt{X: x}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	p.next() // if
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then}
	if p.accept("else") {
		if p.peekText() == "if" {
			inner, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{inner}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	p.next() // while
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body}, nil
}

// --- Expression parsing (precedence climbing) ---

// binary precedence levels, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"|", "^", "&"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseExpr() (Expr, error) {
	return p.parseBinary(0)
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[level] {
			if p.peekText() == op {
				tok := p.next()
				right, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				left = &BinaryExpr{exprBase: at(tok), Op: op, L: left, R: right}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	tok := p.cur()
	if p.accept("!") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{exprBase: at(tok), Op: "!", X: x}, nil
	}
	if p.accept("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{exprBase: at(tok), Op: "-", X: x}, nil
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary expression followed by member/index suffixes.
func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("["):
			id, ok := x.(*Ident)
			if !ok {
				return nil, p.errorf("only mappings support indexing")
			}
			key, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{exprBase: exprBase{line: id.line, col: id.col}, Map: id, Key: key}

		case p.accept("."):
			member, err := p.expectMember()
			if err != nil {
				return nil, err
			}
			switch member {
			case "balance":
				x = &BalanceExpr{exprBase: exprBase{}, Addr: x}
			case "transfer":
				amt, err := p.parseSingleArg()
				if err != nil {
					return nil, err
				}
				x = &transferExpr{Target: x, Amount: amt}
			case "send":
				amt, err := p.parseSingleArg()
				if err != nil {
					return nil, err
				}
				x = &SendExpr{Target: x, Amount: amt}
			case "call":
				// .call.value(amount)()
				if err := p.expect("."); err != nil {
					return nil, err
				}
				if err := p.expect("value"); err != nil {
					return nil, err
				}
				amt, err := p.parseSingleArg()
				if err != nil {
					return nil, err
				}
				if err := p.expect("("); err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				x = &CallValueExpr{Target: x, Amount: amt}
			case "delegatecall":
				if err := p.expect("("); err != nil {
					return nil, err
				}
				var args []Expr
				for !p.accept(")") {
					if len(args) > 0 {
						if err := p.expect(","); err != nil {
							return nil, err
						}
					}
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
				}
				x = &DelegateCallExpr{Target: x, Args: args}
			default:
				return nil, p.errorf("unknown member %q", member)
			}

		default:
			return x, nil
		}
	}
}

// expectMember reads a member name after '.'; member names may collide with
// identifiers, so accept any ident-like token.
func (p *parser) expectMember() (string, error) {
	t := p.cur()
	if t.Kind != TokIdent && t.Kind != TokKeyword {
		return "", p.errorf("expected member name, found %s", t)
	}
	p.next()
	return t.Text, nil
}

func (p *parser) parseSingleArg() (Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return x, nil
}

var unitMultipliers = map[string]string{
	"wei":    "1",
	"finney": "1000000000000000",
	"ether":  "1000000000000000000",
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch {
	case tok.Kind == TokNumber:
		p.next()
		n := new(big.Int)
		if _, ok := n.SetString(tok.Text, 0); !ok {
			return nil, p.errorf("invalid number literal %q", tok.Text)
		}
		// optional unit suffix
		if mul, ok := unitMultipliers[p.peekText()]; ok {
			p.next()
			m, _ := new(big.Int).SetString(mul, 10)
			n.Mul(n, m)
		}
		return &NumberLit{exprBase: at(tok), Value: u256.FromBig(n)}, nil

	case tok.Text == "true" || tok.Text == "false":
		p.next()
		return &BoolLit{exprBase: at(tok), Value: tok.Text == "true"}, nil

	case tok.Text == "msg":
		p.next()
		if err := p.expect("."); err != nil {
			return nil, err
		}
		m, err := p.expectMember()
		if err != nil {
			return nil, err
		}
		if m != "sender" && m != "value" {
			return nil, p.errorf("unknown msg member %q", m)
		}
		return &EnvExpr{exprBase: at(tok), Name: "msg." + m}, nil

	case tok.Text == "tx":
		p.next()
		if err := p.expect("."); err != nil {
			return nil, err
		}
		m, err := p.expectMember()
		if err != nil {
			return nil, err
		}
		if m != "origin" {
			return nil, p.errorf("unknown tx member %q", m)
		}
		return &EnvExpr{exprBase: at(tok), Name: "tx.origin"}, nil

	case tok.Text == "block":
		p.next()
		if err := p.expect("."); err != nil {
			return nil, err
		}
		m, err := p.expectMember()
		if err != nil {
			return nil, err
		}
		if m != "timestamp" && m != "number" {
			return nil, p.errorf("unknown block member %q", m)
		}
		return &EnvExpr{exprBase: at(tok), Name: "block." + m}, nil

	case tok.Text == "now":
		p.next()
		return &EnvExpr{exprBase: at(tok), Name: "block.timestamp"}, nil

	case tok.Text == "this":
		p.next()
		return &EnvExpr{exprBase: at(tok), Name: "this"}, nil

	case tok.Text == "keccak256":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var args []Expr
		for !p.accept(")") {
			if len(args) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
		if len(args) == 0 {
			return nil, p.errorf("keccak256 needs at least one argument")
		}
		return &KeccakExpr{exprBase: at(tok), Args: args}, nil

	case isTypeKeyword(tok.Text):
		// cast: type '(' expr ')'
		ty := simpleType(tok.Text)
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &CastExpr{exprBase: at(tok), To: ty, X: x}, nil

	case tok.Kind == TokIdent:
		p.next()
		return &Ident{exprBase: at(tok), Name: tok.Text}, nil

	case tok.Text == "(":
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errorf("unexpected %s in expression", tok)
}
