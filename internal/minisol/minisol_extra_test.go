package minisol

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"mufuzz/internal/evm"
	"mufuzz/internal/u256"
)

// TestArithmeticSemanticsMatchU256 drives compiled arithmetic with random
// operands and cross-checks against the u256 reference — a compiler/VM
// conformance property test.
func TestArithmeticSemanticsMatchU256(t *testing.T) {
	src := `contract Arith {
		uint256 r;
		function add(uint256 a, uint256 b) public { r = a + b; }
		function sub(uint256 a, uint256 b) public { r = a - b; }
		function mul(uint256 a, uint256 b) public { r = a * b; }
		function div(uint256 a, uint256 b) public { r = a / b; }
		function mod(uint256 a, uint256 b) public { r = a % b; }
	}`
	tc := compileAndDeploy(t, src)
	rng := rand.New(rand.NewSource(99))
	word := func() u256.Int {
		switch rng.Intn(3) {
		case 0:
			return u256.New(rng.Uint64() % 100)
		case 1:
			return u256.Max.Sub(u256.New(rng.Uint64() % 100))
		default:
			return u256.NewFromLimbs(rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64())
		}
	}
	ops := map[string]func(a, b u256.Int) u256.Int{
		"add": u256.Int.Add,
		"sub": u256.Int.Sub,
		"mul": u256.Int.Mul,
		"div": u256.Int.Div,
		"mod": u256.Int.Mod,
	}
	for name, ref := range ops {
		for i := 0; i < 25; i++ {
			a, b := word(), word()
			if err := tc.call(t, tc.user, u256.Zero, name, a, b); err != nil {
				t.Fatalf("%s(%s,%s): %v", name, a, b, err)
			}
			want := ref(a, b)
			if got := tc.slot(0); !got.Eq(want) {
				t.Fatalf("%s(%s,%s) = %s, want %s", name, a, b, got, want)
			}
		}
	}
}

// TestComparisonSemantics drives compiled comparisons with quick-generated
// operands.
func TestComparisonSemantics(t *testing.T) {
	src := `contract Cmp {
		bool r;
		function lt(uint256 a, uint256 b) public { r = a < b; }
		function le(uint256 a, uint256 b) public { r = a <= b; }
		function gt(uint256 a, uint256 b) public { r = a > b; }
		function ge(uint256 a, uint256 b) public { r = a >= b; }
		function eq(uint256 a, uint256 b) public { r = a == b; }
		function ne(uint256 a, uint256 b) public { r = a != b; }
	}`
	tc := compileAndDeploy(t, src)
	f := func(a, b uint64) bool {
		A, B := u256.New(a), u256.New(b)
		checks := []struct {
			fn   string
			want bool
		}{
			{"lt", a < b}, {"le", a <= b}, {"gt", a > b},
			{"ge", a >= b}, {"eq", a == b}, {"ne", a != b},
		}
		for _, ck := range checks {
			if err := tc.call(t, tc.user, u256.Zero, ck.fn, A, B); err != nil {
				return false
			}
			got := tc.slot(0).Eq(u256.One)
			if got != ck.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNestedIfLadder(t *testing.T) {
	src := `contract Ladder {
		uint256 depth;
		function probe(uint256 a, uint256 b, uint256 c) public {
			depth = 0;
			if (a > 10) {
				depth = 1;
				if (b > 20) {
					depth = 2;
					if (c > 30) {
						depth = 3;
					}
				}
			}
		}
	}`
	tc := compileAndDeploy(t, src)
	cases := []struct {
		a, b, c uint64
		want    uint64
	}{
		{0, 0, 0, 0},
		{11, 0, 0, 1},
		{11, 21, 0, 2},
		{11, 21, 31, 3},
		{0, 21, 31, 0},
	}
	for _, c := range cases {
		if err := tc.call(t, tc.user, u256.Zero, "probe", u256.New(c.a), u256.New(c.b), u256.New(c.c)); err != nil {
			t.Fatal(err)
		}
		if !tc.slot(0).Eq(u256.New(c.want)) {
			t.Errorf("probe(%d,%d,%d) depth = %s, want %d", c.a, c.b, c.c, tc.slot(0), c.want)
		}
	}
}

func TestMappingUintKeys(t *testing.T) {
	src := `contract MapU {
		mapping(uint256 => uint256) m;
		function set(uint256 k, uint256 v) public { m[k] = v; }
		function bump(uint256 k) public { m[k] += 1; }
	}`
	tc := compileAndDeploy(t, src)
	if err := tc.call(t, tc.user, u256.Zero, "set", u256.New(7), u256.New(70)); err != nil {
		t.Fatal(err)
	}
	if err := tc.call(t, tc.user, u256.Zero, "bump", u256.New(7)); err != nil {
		t.Fatal(err)
	}
	if err := tc.call(t, tc.user, u256.Zero, "bump", u256.New(8)); err != nil {
		t.Fatal(err)
	}
	if got := tc.mapSlot(0, u256.New(7)); !got.Eq(u256.New(71)) {
		t.Errorf("m[7] = %s, want 71", got)
	}
	if got := tc.mapSlot(0, u256.New(8)); !got.Eq(u256.One) {
		t.Errorf("m[8] = %s, want 1", got)
	}
}

func TestKeccakExprDeterminism(t *testing.T) {
	src := `contract H {
		uint256 h1;
		uint256 h2;
		function go(uint256 x) public {
			h1 = keccak256(x);
			h2 = keccak256(x, block.timestamp);
		}
	}`
	tc := compileAndDeploy(t, src)
	if err := tc.call(t, tc.user, u256.Zero, "go", u256.New(5)); err != nil {
		t.Fatal(err)
	}
	first1, first2 := tc.slot(0), tc.slot(1)
	if first1.IsZero() || first2.IsZero() {
		t.Fatal("hashes should be nonzero")
	}
	if first1.Eq(first2) {
		t.Error("different preimages must hash differently")
	}
	if err := tc.call(t, tc.user, u256.Zero, "go", u256.New(5)); err != nil {
		t.Fatal(err)
	}
	if !tc.slot(0).Eq(first1) {
		t.Error("keccak of same input must be stable")
	}
}

func TestModifierKeywordOrder(t *testing.T) {
	// modifiers accepted in any order, incl. returns before payable
	srcs := []string{
		`contract A { function f() payable public { } }`,
		`contract B { function f() public payable returns (uint256) { return 1; } }`,
		`contract C { function f() returns (uint256) public view { return 2; } }`,
	}
	for _, src := range srcs {
		if _, err := Compile(src); err != nil {
			t.Errorf("%s: %v", src, err)
		}
	}
}

func TestRevertsDoNotLeakStateAcrossSequence(t *testing.T) {
	src := `contract R {
		uint256 x;
		function ok(uint256 v) public { x = v; }
		function boom() public { x = 999; require(x == 0); }
	}`
	tc := compileAndDeploy(t, src)
	if err := tc.call(t, tc.user, u256.Zero, "ok", u256.New(5)); err != nil {
		t.Fatal(err)
	}
	if err := tc.call(t, tc.user, u256.Zero, "boom"); !errors.Is(err, evm.ErrRevert) {
		t.Fatalf("boom: %v", err)
	}
	if !tc.slot(0).Eq(u256.New(5)) {
		t.Errorf("x = %s after reverted tx, want 5", tc.slot(0))
	}
}

func TestBranchSiteKindsRecorded(t *testing.T) {
	src := `contract K {
		uint256 a;
		function f(uint256 x, bool p, bool q) public payable {
			require(x > 0);
			if (p && q) { a = 1; }
			while (a < 3) { a += 1; }
			msg.sender.transfer(1);
		}
	}`
	comp, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[BranchKind]int{}
	for _, s := range comp.Branches {
		kinds[s.Kind]++
	}
	for _, want := range []BranchKind{BranchRequire, BranchIf, BranchWhile, BranchBoolOp, BranchTransfer, BranchDispatch} {
		if kinds[want] == 0 {
			t.Errorf("no %s site recorded (%v)", want, kinds)
		}
	}
}

func TestIntTypeSignedDivision(t *testing.T) {
	src := `contract S {
		int256 r;
		function f(int256 a, int256 b) public { r = a / b; }
	}`
	tc := compileAndDeploy(t, src)
	minusSix := u256.New(6).Neg()
	if err := tc.call(t, tc.user, u256.Zero, "f", minusSix, u256.New(2)); err != nil {
		t.Fatal(err)
	}
	if !tc.slot(0).Eq(u256.New(3).Neg()) {
		t.Errorf("-6 / 2 = %s, want -3 two's complement", tc.slot(0).Hex())
	}
}

func TestEtherUnits(t *testing.T) {
	src := `contract U {
		uint256 w;
		uint256 f;
		uint256 e;
		constructor() public {
			w = 5 wei;
			f = 2 finney;
			e = 3 ether;
		}
	}`
	tc := compileAndDeploy(t, src)
	if !tc.slot(0).Eq(u256.New(5)) {
		t.Errorf("wei = %s", tc.slot(0))
	}
	if !tc.slot(1).Eq(u256.New(2_000_000_000_000_000)) {
		t.Errorf("finney = %s", tc.slot(1))
	}
	if !tc.slot(2).Eq(u256.New(3_000_000_000_000_000_000)) {
		t.Errorf("ether = %s", tc.slot(2))
	}
}
