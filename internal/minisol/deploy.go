package minisol

import (
	"fmt"

	"mufuzz/internal/abi"
	"mufuzz/internal/evm"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// Deploy installs the compiled contract at addr and executes its constructor
// as a transaction from deployer. The constructor heads every transaction
// sequence, mirroring the paper's sequencing rule (§IV-A).
func Deploy(e *evm.EVM, deployer, addr state.Address, comp *Compiled, ctorArgs []abi.Value, value u256.Int, gas uint64) error {
	e.State.CreateContract(addr, comp.Code, deployer)
	e.State.Commit()
	data, err := abi.EncodeCall(comp.Ctor, ctorArgs)
	if err != nil {
		return fmt.Errorf("minisol: encode constructor: %w", err)
	}
	if _, err := e.Transact(deployer, addr, value, data, gas); err != nil {
		return fmt.Errorf("minisol: constructor of %s: %w", comp.Contract.Name, err)
	}
	return nil
}

// CallData builds calldata for a named function with the given argument
// words (each coerced to the parameter's ABI kind).
func (c *Compiled) CallData(fnName string, args ...u256.Int) ([]byte, error) {
	var m abi.Method
	if fnName == CtorName || fnName == "constructor" {
		m = c.Ctor
	} else {
		var ok bool
		m, ok = c.ABI.MethodByName(fnName)
		if !ok {
			return nil, fmt.Errorf("minisol: no function %q in %s", fnName, c.Contract.Name)
		}
	}
	if len(args) != len(m.Inputs) {
		return nil, fmt.Errorf("minisol: %s expects %d args, got %d", fnName, len(m.Inputs), len(args))
	}
	vals := make([]abi.Value, len(args))
	for i, a := range args {
		vals[i] = abi.NewWord(m.Inputs[i].Kind, a)
	}
	return abi.EncodeCall(m, vals)
}
