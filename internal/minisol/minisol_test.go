package minisol

import (
	"errors"
	"strings"
	"testing"

	"mufuzz/internal/abi"
	"mufuzz/internal/evm"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// crowdsaleSrc is the paper's Fig. 1 motivating contract, in MiniSol.
const crowdsaleSrc = `
contract Crowdsale {
    uint256 phase = 0; // 0: Active, 1: Success
    uint256 goal;
    uint256 invested;
    address owner;
    mapping(address => uint256) invests;

    constructor() public {
        goal = 100 ether;
        invested = 0;
        owner = msg.sender;
    }
    function invest(uint256 donations) public payable {
        if (invested < goal) {
            invests[msg.sender] += donations;
            invested += donations;
            phase = 0;
        } else {
            phase = 1;
        }
    }
    function refund() public {
        if (phase == 0) {
            msg.sender.transfer(invests[msg.sender]);
            invests[msg.sender] = 0;
        }
    }
    function withdraw() public {
        if (phase == 1) {
            owner.transfer(invested);
        }
    }
}`

// gameSrc is the paper's Fig. 4 guess-number contract, in MiniSol.
const gameSrc = `
contract Game {
    mapping(address => uint256) balance;

    function guessNum(uint256 number) public payable {
        uint256 random = keccak256(block.timestamp, now) % 200;
        require(msg.value == 88 finney);
        if (number < random) {
            uint256 luckyNum = number % 2;
            if (luckyNum == 0) {
                balance[msg.sender] += msg.value * 10;
            } else {
                balance[msg.sender] += msg.value * 5;
            }
        }
    }
}`

// --- Harness ---

type testContract struct {
	comp     *Compiled
	evm      *evm.EVM
	addr     state.Address
	deployer state.Address
	user     state.Address
}

func compileAndDeploy(t testing.TB, src string, ctorArgs ...u256.Int) *testContract {
	t.Helper()
	comp, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	st := state.New()
	deployer := state.AddressFromUint(0xd431)
	user := state.AddressFromUint(0x0537)
	addr := state.AddressFromUint(0xc0de)
	big := u256.New(1_000_000).Mul(u256.New(1_000_000_000_000_000)) // 1e21 wei
	st.SetBalance(deployer, big)
	st.SetBalance(user, big)
	st.Commit()
	e := evm.New(st, evm.BlockCtx{Timestamp: 1_700_000_000, Number: 99, GasLimit: 30_000_000})
	e.Trace = evm.NewTrace()
	args := make([]abi.Value, len(comp.Ctor.Inputs))
	for i, in := range comp.Ctor.Inputs {
		var w u256.Int
		if i < len(ctorArgs) {
			w = ctorArgs[i]
		}
		args[i] = abi.NewWord(in.Kind, w)
	}
	if err := Deploy(e, deployer, addr, comp, args, u256.Zero, 10_000_000); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return &testContract{comp: comp, evm: e, addr: addr, deployer: deployer, user: user}
}

func (tc *testContract) call(t testing.TB, from state.Address, value u256.Int, fn string, args ...u256.Int) error {
	t.Helper()
	data, err := tc.comp.CallData(fn, args...)
	if err != nil {
		t.Fatalf("calldata %s: %v", fn, err)
	}
	tc.evm.Trace = evm.NewTrace()
	_, err = tc.evm.Transact(from, tc.addr, value, data, 10_000_000)
	return err
}

func (tc *testContract) callOut(t testing.TB, from state.Address, value u256.Int, fn string, args ...u256.Int) ([]byte, error) {
	t.Helper()
	data, err := tc.comp.CallData(fn, args...)
	if err != nil {
		t.Fatalf("calldata %s: %v", fn, err)
	}
	tc.evm.Trace = evm.NewTrace()
	return tc.evm.Transact(from, tc.addr, value, data, 10_000_000)
}

func (tc *testContract) slot(i uint64) u256.Int {
	return tc.evm.State.GetStorage(tc.addr, u256.New(i))
}

func (tc *testContract) mapSlot(mapIdx uint64, key u256.Int) u256.Int {
	return tc.evm.State.GetStorage(tc.addr, SlotOfMapping(u256.New(mapIdx), key))
}

// --- Lexer tests ---

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`contract C { uint256 x = 100 ether; } // tail`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	want := []string{"contract", "C", "{", "uint256", "x", "=", "100", "ether", ";", "}"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v", texts)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a /* multi\nline */ b // rest\nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Errorf("tokens = %v", toks)
	}
	if toks[2].Line != 3 {
		t.Errorf("c should be on line 3, got %d", toks[2].Line)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("a /* never closed"); err == nil {
		t.Error("unterminated comment should fail")
	}
	if _, err := Lex("a @ b"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("0x1f 1_000_000 42")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "0x1f" || toks[1].Text != "1000000" || toks[2].Text != "42" {
		t.Errorf("number tokens = %v %v %v", toks[0], toks[1], toks[2])
	}
}

// --- Parser tests ---

func TestParseCrowdsale(t *testing.T) {
	c, err := Parse(crowdsaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "Crowdsale" {
		t.Errorf("name = %s", c.Name)
	}
	if len(c.StateVars) != 5 {
		t.Fatalf("state vars = %d", len(c.StateVars))
	}
	if c.StateVars[4].Type.Kind != TyMapping {
		t.Error("invests should be a mapping")
	}
	if c.Ctor == nil {
		t.Fatal("constructor missing")
	}
	if len(c.Functions) != 3 {
		t.Fatalf("functions = %d", len(c.Functions))
	}
	inv, ok := c.FunctionByName("invest")
	if !ok || !inv.Payable || len(inv.Params) != 1 {
		t.Errorf("invest: %+v", inv)
	}
}

func TestParseGame(t *testing.T) {
	c, err := Parse(gameSrc)
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := c.FunctionByName("guessNum")
	if !ok {
		t.Fatal("guessNum missing")
	}
	// body: local decl, require, if
	if len(fn.Body) != 3 {
		t.Fatalf("body statements = %d", len(fn.Body))
	}
	if _, ok := fn.Body[0].(*VarDeclStmt); !ok {
		t.Error("first stmt should be local decl")
	}
	if _, ok := fn.Body[1].(*RequireStmt); !ok {
		t.Error("second stmt should be require")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"contract C { uint256 x; uint256 x; }",                               // dup state var
		"contract C { function f() public {} function f() public {} }",       // dup function
		"contract C { constructor() {} constructor() {} }",                   // dup ctor
		"contract C { mapping(address => uint256) m = 5; }",                  // mapping init
		"contract C { function f(mapping(address => uint256) m) public {} }", // mapping param
		"contract C { function f() public { 1 + ; } }",                       // bad expr
		"contract C { function f() public { x = 1; } }",                      // handled in sema, but parser ok
		"contract C ", // truncated
		"contract C { function f() public { if (1) } }",     // missing block
		"contract C { function f() public { msg.bogus; } }", // bad msg member
	}
	for i, src := range cases {
		if i == 6 {
			continue // that one parses; sema rejects
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d should fail to parse: %s", i, src)
		}
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `contract C { uint256 x;
		function f(uint256 a) public {
			if (a < 1) { x = 1; } else if (a < 2) { x = 2; } else { x = 3; }
		} }`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := c.FunctionByName("f")
	ifs, ok := fn.Body[0].(*IfStmt)
	if !ok {
		t.Fatal("expected if")
	}
	if len(ifs.Else) != 1 {
		t.Fatal("else-if should nest")
	}
	if _, ok := ifs.Else[0].(*IfStmt); !ok {
		t.Fatal("nested else-if missing")
	}
}

// --- Sema tests ---

func TestSemaErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"undefined ident", "contract C { function f() public { x = 1; } }"},
		{"bool arith", "contract C { uint256 x; function f(bool b) public { x = b + 1; } }"},
		{"if non-bool", "contract C { function f(uint256 a) public { if (a) { } } }"},
		{"require non-bool", "contract C { function f(uint256 a) public { require(a); } }"},
		{"transfer non-address", "contract C { function f(uint256 a) public { a.transfer(1); } }"},
		{"shadow state var", "contract C { uint256 x; function f(uint256 x) public { } }"},
		{"dup local", "contract C { function f() public { uint256 a = 1; uint256 a = 2; } }"},
		{"return without type", "contract C { function f() public { return 5; } }"},
		{"missing return value", "contract C { function f() public returns (uint256) { return; } }"},
		{"transfer as expr", "contract C { uint256 x; function f(address a) public { x = uint256(a.transfer(1)); } }"},
		{"index non-mapping", "contract C { uint256 x; function f() public { x = x[0]; } }"},
		{"compare address order", "contract C { function f(address a, address b) public { require(a < b); } }"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Compile(tc.src); err == nil {
				t.Errorf("should fail: %s", tc.src)
			}
		})
	}
}

// --- End-to-end codegen tests ---

func TestCounterContract(t *testing.T) {
	src := `contract Counter {
		uint256 count;
		function inc() public { count += 1; }
		function add(uint256 n) public { count += n; }
		function get() public view returns (uint256) { return count; }
	}`
	tc := compileAndDeploy(t, src)
	if err := tc.call(t, tc.user, u256.Zero, "inc"); err != nil {
		t.Fatal(err)
	}
	if err := tc.call(t, tc.user, u256.Zero, "add", u256.New(41)); err != nil {
		t.Fatal(err)
	}
	if !tc.slot(0).Eq(u256.New(42)) {
		t.Errorf("count = %s, want 42", tc.slot(0))
	}
	out, err := tc.callOut(t, tc.user, u256.Zero, "get")
	if err != nil {
		t.Fatal(err)
	}
	if got := u256.FromBytes(out); !got.Eq(u256.New(42)) {
		t.Errorf("get() = %s", got)
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	src := `contract M {
		uint256 r;
		function f(uint256 a, uint256 b, uint256 c) public { r = a + b * c - a / 2; }
	}`
	tc := compileAndDeploy(t, src)
	if err := tc.call(t, tc.user, u256.Zero, "f", u256.New(10), u256.New(3), u256.New(4)); err != nil {
		t.Fatal(err)
	}
	// 10 + 12 - 5 = 17
	if !tc.slot(0).Eq(u256.New(17)) {
		t.Errorf("r = %s, want 17", tc.slot(0))
	}
}

func TestMappingPerSender(t *testing.T) {
	src := `contract Bank {
		mapping(address => uint256) bal;
		function deposit(uint256 n) public { bal[msg.sender] += n; }
	}`
	tc := compileAndDeploy(t, src)
	if err := tc.call(t, tc.user, u256.Zero, "deposit", u256.New(7)); err != nil {
		t.Fatal(err)
	}
	if err := tc.call(t, tc.user, u256.Zero, "deposit", u256.New(5)); err != nil {
		t.Fatal(err)
	}
	if err := tc.call(t, tc.deployer, u256.Zero, "deposit", u256.New(1)); err != nil {
		t.Fatal(err)
	}
	if got := tc.mapSlot(0, tc.user.Word()); !got.Eq(u256.New(12)) {
		t.Errorf("bal[user] = %s, want 12", got)
	}
	if got := tc.mapSlot(0, tc.deployer.Word()); !got.Eq(u256.One) {
		t.Errorf("bal[deployer] = %s, want 1", got)
	}
}

func TestRequireReverts(t *testing.T) {
	src := `contract G {
		uint256 x;
		function f(uint256 a) public { require(a == 42); x = 1; }
	}`
	tc := compileAndDeploy(t, src)
	if err := tc.call(t, tc.user, u256.Zero, "f", u256.New(1)); !errors.Is(err, evm.ErrRevert) {
		t.Fatalf("err = %v, want revert", err)
	}
	if !tc.slot(0).IsZero() {
		t.Error("state must not change on revert")
	}
	if err := tc.call(t, tc.user, u256.Zero, "f", u256.New(42)); err != nil {
		t.Fatal(err)
	}
	if !tc.slot(0).Eq(u256.One) {
		t.Error("x should be 1")
	}
}

func TestNonPayableGuard(t *testing.T) {
	src := `contract P {
		uint256 x;
		function plain() public { x = 1; }
		function pay() public payable { x = 2; }
	}`
	tc := compileAndDeploy(t, src)
	if err := tc.call(t, tc.user, u256.New(5), "plain"); !errors.Is(err, evm.ErrRevert) {
		t.Fatalf("non-payable with value: err = %v, want revert", err)
	}
	if err := tc.call(t, tc.user, u256.New(5), "pay"); err != nil {
		t.Fatal(err)
	}
	if !tc.slot(0).Eq(u256.New(2)) {
		t.Error("payable call should have run")
	}
}

func TestCrowdsaleSequenceSemantics(t *testing.T) {
	tc := compileAndDeploy(t, crowdsaleSrc)
	// constructor: goal = 100 ether (slot1), owner = deployer (slot3)
	ether := u256.New(1_000_000_000_000_000_000)
	if !tc.slot(1).Eq(u256.New(100).Mul(ether)) {
		t.Fatalf("goal = %s", tc.slot(1))
	}
	if got := state.AddressFromWord(tc.slot(3)); got != tc.deployer {
		t.Fatalf("owner = %v", got)
	}

	// invest(100 ether): invested < goal → invested = 100e18, phase stays 0.
	if err := tc.call(t, tc.user, u256.Zero, "invest", u256.New(100).Mul(ether)); err != nil {
		t.Fatal(err)
	}
	if !tc.slot(0).IsZero() {
		t.Fatal("phase should be 0 after first invest")
	}
	// second invest: invested >= goal → phase = 1 (the else branch the paper
	// says requires invest to run twice).
	if err := tc.call(t, tc.user, u256.Zero, "invest", u256.New(1)); err != nil {
		t.Fatal(err)
	}
	if !tc.slot(0).Eq(u256.One) {
		t.Fatal("phase should be 1 after second invest")
	}

	// withdraw now enters the phase == 1 branch and transfers to owner.
	tc.evm.State.SetBalance(tc.addr, u256.New(100).Mul(ether))
	tc.evm.State.Commit()
	before := tc.evm.State.Balance(tc.deployer)
	if err := tc.call(t, tc.user, u256.Zero, "withdraw"); err != nil {
		t.Fatal(err)
	}
	gained := tc.evm.State.Balance(tc.deployer).Sub(before)
	if !gained.Eq(u256.New(100).Mul(ether)) {
		t.Errorf("owner gained %s", gained)
	}
	// the if(phase==1) JUMPI must be in the trace with a taken direction
	var found bool
	for _, br := range tc.evm.Trace.Branches {
		if br.HasCmp && br.Cmp.Op == evm.EQ {
			found = true
		}
	}
	if !found {
		t.Error("phase==1 comparison missing from trace")
	}
}

func TestGameContract(t *testing.T) {
	tc := compileAndDeploy(t, gameSrc)
	finney := u256.New(1_000_000_000_000_000)
	// wrong msg.value → revert at require
	if err := tc.call(t, tc.user, u256.New(5), "guessNum", u256.New(2)); !errors.Is(err, evm.ErrRevert) {
		t.Fatalf("err = %v, want revert", err)
	}
	// right value: 88 finney
	v := u256.New(88).Mul(finney)
	if err := tc.call(t, tc.user, v, "guessNum", u256.New(2)); err != nil {
		t.Fatal(err)
	}
	// Whether the guess wins depends on the deterministic hash; we check the
	// require branch was passed by observing balance mapping may be set or not
	// but no revert occurred. Also the JUMPI for msg.value==88finney exists:
	var eqCmp bool
	for _, br := range tc.evm.Trace.Branches {
		if br.HasCmp && br.Cmp.Op == evm.EQ && (br.Cmp.A.Eq(v) || br.Cmp.B.Eq(v)) {
			eqCmp = true
		}
	}
	if !eqCmp {
		t.Error("msg.value == 88 finney comparison missing")
	}
}

func TestWhileLoop(t *testing.T) {
	src := `contract L {
		uint256 sum;
		function f(uint256 n) public {
			uint256 i = 0;
			uint256 s = 0;
			while (i < n) { s += i; i += 1; }
			sum = s;
		}
	}`
	tc := compileAndDeploy(t, src)
	if err := tc.call(t, tc.user, u256.Zero, "f", u256.New(10)); err != nil {
		t.Fatal(err)
	}
	if !tc.slot(0).Eq(u256.New(45)) {
		t.Errorf("sum = %s, want 45", tc.slot(0))
	}
}

func TestSendAndCallValue(t *testing.T) {
	src := `contract S {
		bool sent;
		function paySend(address to, uint256 amt) public { sent = to.send(amt); }
		function payCall(address to, uint256 amt) public { require(to.call.value(amt)()); }
	}`
	tc := compileAndDeploy(t, src)
	tc.evm.State.SetBalance(tc.addr, u256.New(1000))
	tc.evm.State.Commit()
	dest := state.AddressFromUint(0x1234)

	if err := tc.call(t, tc.user, u256.Zero, "paySend", dest.Word(), u256.New(10)); err != nil {
		t.Fatal(err)
	}
	if !tc.evm.State.Balance(dest).Eq(u256.New(10)) {
		t.Errorf("dest = %s", tc.evm.State.Balance(dest))
	}
	if !tc.slot(0).Eq(u256.One) {
		t.Error("send should have succeeded")
	}
	// send more than balance: success flag false, no revert
	if err := tc.call(t, tc.user, u256.Zero, "paySend", dest.Word(), u256.New(100000)); err != nil {
		t.Fatal(err)
	}
	if !tc.slot(0).IsZero() {
		t.Error("failed send should store false")
	}
	// call.value with require: insufficient → revert
	if err := tc.call(t, tc.user, u256.Zero, "payCall", dest.Word(), u256.New(100000)); !errors.Is(err, evm.ErrRevert) {
		t.Fatalf("err = %v, want revert", err)
	}
	if err := tc.call(t, tc.user, u256.Zero, "payCall", dest.Word(), u256.New(5)); err != nil {
		t.Fatal(err)
	}
	if !tc.evm.State.Balance(dest).Eq(u256.New(15)) {
		t.Errorf("dest = %s, want 15", tc.evm.State.Balance(dest))
	}
}

func TestSelfDestructStmt(t *testing.T) {
	src := `contract K {
		function kill(address to) public { selfdestruct(to); }
	}`
	tc := compileAndDeploy(t, src)
	tc.evm.State.SetBalance(tc.addr, u256.New(77))
	tc.evm.State.Commit()
	dest := state.AddressFromUint(0x9999)
	if err := tc.call(t, tc.user, u256.Zero, "kill", dest.Word()); err != nil {
		t.Fatal(err)
	}
	if !tc.evm.State.Destroyed(tc.addr) {
		t.Error("contract should be destroyed")
	}
	if !tc.evm.State.Balance(dest).Eq(u256.New(77)) {
		t.Errorf("beneficiary = %s", tc.evm.State.Balance(dest))
	}
	if len(tc.evm.Trace.SelfDestructs) != 1 {
		t.Error("selfdestruct event missing")
	}
}

func TestConstructorParams(t *testing.T) {
	src := `contract Init {
		uint256 limit;
		address admin;
		constructor(uint256 l) public { limit = l; admin = msg.sender; }
	}`
	tc := compileAndDeploy(t, src, u256.New(555))
	if !tc.slot(0).Eq(u256.New(555)) {
		t.Errorf("limit = %s", tc.slot(0))
	}
	if got := state.AddressFromWord(tc.slot(1)); got != tc.deployer {
		t.Errorf("admin = %v", got)
	}
}

func TestShortCircuit(t *testing.T) {
	// b==0 short-circuits the division guard; with non-short-circuit
	// evaluation a/b would be 0 (EVM div-by-zero) so use a side effect.
	src := `contract SC {
		uint256 hits;
		bool r;
		function f(bool a) public {
			r = a && touch();
		}
		function touch() public returns (bool) { hits += 1; return true; }
	}`
	// MiniSol has no internal calls; rewrite using mapping side effect is not
	// possible either. Test short-circuit purely through result correctness.
	src = `contract SC {
		bool r;
		function andOp(bool a, bool b) public { r = a && b; }
		function orOp(bool a, bool b) public { r = a || b; }
	}`
	tc := compileAndDeploy(t, src)
	check := func(fn string, a, b, want u256.Int) {
		t.Helper()
		if err := tc.call(t, tc.user, u256.Zero, fn, a, b); err != nil {
			t.Fatal(err)
		}
		if !tc.slot(0).Eq(want) {
			t.Errorf("%s(%s,%s) = %s, want %s", fn, a, b, tc.slot(0), want)
		}
	}
	check("andOp", u256.One, u256.One, u256.One)
	check("andOp", u256.One, u256.Zero, u256.Zero)
	check("andOp", u256.Zero, u256.One, u256.Zero)
	check("orOp", u256.Zero, u256.Zero, u256.Zero)
	check("orOp", u256.One, u256.Zero, u256.One)
	check("orOp", u256.Zero, u256.One, u256.One)
}

func TestSignedComparison(t *testing.T) {
	src := `contract SG {
		bool r;
		function f(int256 a, int256 b) public { r = a < b; }
	}`
	tc := compileAndDeploy(t, src)
	minusOne := u256.Max // -1 two's complement
	if err := tc.call(t, tc.user, u256.Zero, "f", minusOne, u256.One); err != nil {
		t.Fatal(err)
	}
	if !tc.slot(0).Eq(u256.One) {
		t.Error("-1 < 1 should be true under signed comparison")
	}
}

func TestCastAddressMasks(t *testing.T) {
	src := `contract CA {
		address a;
		function f(uint256 x) public { a = address(x); }
	}`
	tc := compileAndDeploy(t, src)
	if err := tc.call(t, tc.user, u256.Zero, "f", u256.Max); err != nil {
		t.Fatal(err)
	}
	if tc.slot(0).BitLen() > 160 {
		t.Errorf("address not masked: %s", tc.slot(0).Hex())
	}
}

func TestUnknownSelectorRevertsAndEmptyAccepts(t *testing.T) {
	tc := compileAndDeploy(t, crowdsaleSrc)
	// Unknown selector
	tc.evm.Trace = evm.NewTrace()
	_, err := tc.evm.Transact(tc.user, tc.addr, u256.Zero, []byte{1, 2, 3, 4, 5}, 1_000_000)
	if !errors.Is(err, evm.ErrRevert) {
		t.Fatalf("unknown selector: err = %v, want revert", err)
	}
	// Empty calldata: plain value transfer accepted
	tc.evm.Trace = evm.NewTrace()
	if _, err := tc.evm.Transact(tc.user, tc.addr, u256.New(5), nil, 1_000_000); err != nil {
		t.Fatalf("empty calldata: %v", err)
	}
	if !tc.evm.State.Balance(tc.addr).Eq(u256.New(5)) {
		t.Error("value transfer not accepted")
	}
}

func TestDelegatecall(t *testing.T) {
	src := `contract D {
		bool ok;
		function go(address lib, uint256 x) public { ok = lib.delegatecall(x); }
	}`
	tc := compileAndDeploy(t, src)
	// delegatecall to an empty account succeeds trivially
	lib := state.AddressFromUint(0x11b)
	if err := tc.call(t, tc.user, u256.Zero, "go", lib.Word(), u256.New(1)); err != nil {
		t.Fatal(err)
	}
	if !tc.slot(0).Eq(u256.One) {
		t.Error("delegatecall to empty account should succeed")
	}
	if len(tc.evm.Trace.Delegates) != 1 {
		t.Error("delegate event missing")
	}
}

func TestFuncEntryMap(t *testing.T) {
	comp, err := Compile(crowdsaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{CtorName, "invest", "refund", "withdraw"} {
		if _, ok := comp.FuncEntry[fn]; !ok {
			t.Errorf("entry for %s missing", fn)
		}
	}
}

func TestCompiledABI(t *testing.T) {
	comp, err := Compile(crowdsaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := comp.ABI.MethodByName("invest")
	if !ok {
		t.Fatal("invest not in ABI")
	}
	if !m.Payable || len(m.Inputs) != 1 {
		t.Errorf("invest method: %+v", m)
	}
	if comp.ABI.Constructor == nil {
		t.Fatal("ctor missing from ABI")
	}
}

func BenchmarkCompileCrowdsale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile(crowdsaleSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrowdsaleTransaction(b *testing.B) {
	tc := compileAndDeploy(b, crowdsaleSrc)
	data, err := tc.comp.CallData("invest", u256.New(5))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.evm.Trace = evm.NewTrace()
		if _, err := tc.evm.Transact(tc.user, tc.addr, u256.Zero, data, 5_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
