package keccak

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

// Known-answer vectors for legacy Keccak-256 (Ethereum flavour).
var kat = []struct {
	in   string
	want string
}{
	{"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
	{"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
	{"testing", "5f16f4c7f149ac4f9510d9cf8cf384038ad348b3bcdc01915f95de12df9d1b02"},
	// Multi-block inputs around the 136-byte rate boundary. These digests were
	// produced by this implementation once the short vectors above (which are
	// the published Ethereum test values) passed; they pin block-boundary
	// behaviour against regressions.
	{strings.Repeat("a", 136), "a6c4d403279fe3e0af03729caada8374b5ca54d8065329a3ebcaeb4b60aa386e"},
	{strings.Repeat("a", 135), "34367dc248bbd832f4e3e69dfaac2f92638bd0bbd18f2912ba4ef454919cf446"},
	{strings.Repeat("a", 137), "d869f639c7046b4929fc92a4d988a8b22c55fbadb802c0c66ebcd484f1915f39"},
}

func TestSum256Vectors(t *testing.T) {
	for _, tc := range kat {
		got := Sum256([]byte(tc.in))
		if hex.EncodeToString(got[:]) != tc.want {
			t.Errorf("Sum256(%q) = %x, want %s", tc.in, got, tc.want)
		}
	}
}

func TestSelector(t *testing.T) {
	// transfer(address,uint256) is the canonical ERC-20 selector 0xa9059cbb.
	sel := Selector("transfer(address,uint256)")
	if got := hex.EncodeToString(sel[:]); got != "a9059cbb" {
		t.Errorf("Selector = %s, want a9059cbb", got)
	}
	sel = Selector("balanceOf(address)")
	if got := hex.EncodeToString(sel[:]); got != "70a08231" {
		t.Errorf("Selector = %s, want 70a08231", got)
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	f := func(data []byte, split uint8) bool {
		var h Hasher
		cut := int(split) % (len(data) + 1)
		h.Write(data[:cut])
		h.Write(data[cut:])
		inc := h.Sum256()
		one := Sum256(data)
		return inc == one
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSum256NonDestructive(t *testing.T) {
	var h Hasher
	h.Write([]byte("hello "))
	first := h.Sum256()
	second := h.Sum256()
	if first != second {
		t.Fatal("Sum256 mutated hasher state")
	}
	h.Write([]byte("world"))
	got := h.Sum256()
	want := Sum256([]byte("hello world"))
	if got != want {
		t.Errorf("continued hash = %x, want %x", got, want)
	}
}

func TestReset(t *testing.T) {
	var h Hasher
	h.Write([]byte("junk"))
	h.Reset()
	got := h.Sum256()
	want := Sum256(nil)
	if got != want {
		t.Errorf("after Reset, digest = %x, want empty digest %x", got, want)
	}
}

func TestDistinctInputsDistinctDigests(t *testing.T) {
	seen := make(map[[32]byte][]byte)
	for i := 0; i < 1000; i++ {
		in := bytes.Repeat([]byte{byte(i)}, i%64+1)
		in = append(in, byte(i>>8))
		d := Sum256(in)
		if prev, ok := seen[d]; ok && !bytes.Equal(prev, in) {
			t.Fatalf("collision between %x and %x", prev, in)
		}
		seen[d] = in
	}
}

func BenchmarkSum256_32B(b *testing.B) {
	data := make([]byte, 32)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}

func BenchmarkSum256_1KB(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}
