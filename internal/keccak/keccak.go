// Package keccak implements the legacy Keccak-256 hash function as used by
// Ethereum (original Keccak padding 0x01, not the NIST SHA3 padding 0x06).
//
// The EVM substrate needs Keccak-256 in three places: 4-byte function
// selectors, the KECCAK256 (SHA3) opcode, and the storage-slot derivation of
// Solidity mappings. The implementation is self-contained because the Go
// standard library ships SHA-3 only under golang.org/x/crypto, which is
// unavailable in this offline build.
package keccak

import "encoding/binary"

// round constants for Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a,
	0x8000000080008000, 0x000000000000808b, 0x0000000080000001,
	0x8000000080008081, 0x8000000000008009, 0x000000000000008a,
	0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089,
	0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
	0x000000000000800a, 0x800000008000000a, 0x8000000080008081,
	0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotation offsets, indexed [x][y] flattened as x + 5*y.
var rotc = [25]uint{
	0, 1, 62, 28, 27,
	36, 44, 6, 55, 20,
	3, 10, 43, 25, 39,
	41, 45, 15, 21, 8,
	18, 2, 61, 56, 14,
}

// pi lane permutation: destination index for each source lane.
var piln = [25]int{
	0, 10, 20, 5, 15,
	16, 1, 11, 21, 6,
	7, 17, 2, 12, 22,
	23, 8, 18, 3, 13,
	14, 24, 9, 19, 4,
}

// keccakF1600 applies the 24-round Keccak permutation in place.
func keccakF1600(a *[25]uint64) {
	var c [5]uint64
	var d [5]uint64
	for round := 0; round < 24; round++ {
		// theta
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ rotl(c[(x+1)%5], 1)
		}
		for x := 0; x < 5; x++ {
			for y := 0; y < 25; y += 5 {
				a[x+y] ^= d[x]
			}
		}
		// rho and pi combined
		var b [25]uint64
		for i := 0; i < 25; i++ {
			b[piln[i]] = rotl(a[i], rotc[i])
		}
		// chi
		for y := 0; y < 25; y += 5 {
			for x := 0; x < 5; x++ {
				a[x+y] = b[x+y] ^ (^b[(x+1)%5+y] & b[(x+2)%5+y])
			}
		}
		// iota
		a[0] ^= roundConstants[round]
	}
}

func rotl(v uint64, n uint) uint64 { return v<<n | v>>(64-n) }

const rate = 136 // bytes absorbed per permutation for Keccak-256

// Hasher is an incremental Keccak-256 hasher. The zero value is ready to use.
type Hasher struct {
	state [25]uint64
	buf   [rate]byte
	n     int // bytes buffered in buf
}

// Write absorbs p into the sponge. It never returns an error.
func (h *Hasher) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		space := rate - h.n
		if space > len(p) {
			space = len(p)
		}
		copy(h.buf[h.n:], p[:space])
		h.n += space
		p = p[space:]
		if h.n == rate {
			h.absorb()
		}
	}
	return total, nil
}

func (h *Hasher) absorb() {
	for i := 0; i < rate/8; i++ {
		h.state[i] ^= binary.LittleEndian.Uint64(h.buf[i*8:])
	}
	keccakF1600(&h.state)
	h.n = 0
}

// Sum256 finalizes a copy of the hasher state and returns the 32-byte digest.
// The hasher itself may continue to absorb data afterwards.
func (h *Hasher) Sum256() [32]byte {
	// Work on a copy so Sum256 is non-destructive.
	cp := *h
	// Legacy Keccak padding: 0x01 ... 0x80 (multi-rate padding with domain 0x01).
	cp.buf[cp.n] = 0x01
	for i := cp.n + 1; i < rate; i++ {
		cp.buf[i] = 0
	}
	cp.buf[rate-1] |= 0x80
	cp.n = rate
	cp.absorb()

	var out [32]byte
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], cp.state[i])
	}
	return out
}

// Reset returns the hasher to its initial state.
func (h *Hasher) Reset() {
	*h = Hasher{}
}

// Sum256 computes the Keccak-256 digest of data in one shot.
func Sum256(data []byte) [32]byte {
	var h Hasher
	h.Write(data)
	return h.Sum256()
}

// Selector returns the 4-byte Ethereum function selector for a canonical
// signature such as "transfer(address,uint256)".
func Selector(signature string) [4]byte {
	sum := Sum256([]byte(signature))
	var sel [4]byte
	copy(sel[:], sum[:4])
	return sel
}
