package fuzz

import (
	"testing"
	"time"

	"mufuzz/internal/oracle"
	"mufuzz/internal/u256"
)

func TestTimeBudgetRespected(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	start := time.Now()
	res := Run(comp, Options{
		Strategy:   MuFuzz(),
		Seed:       1,
		Iterations: 1 << 30, // effectively unbounded
		TimeBudget: 150 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Errorf("campaign ran %v despite a 150ms budget", elapsed)
	}
	if res.Executions == 0 {
		t.Error("campaign did no work")
	}
}

func TestInitialSequenceRespectsStrategy(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	// dataflow strategy: invest (writer) precedes withdraw (reader)
	c := NewCampaign(comp, Options{Strategy: ConFuzzius(), Seed: 1})
	seq := c.initialSequence()
	pos := map[string]int{}
	for i, tx := range seq {
		pos[tx.Func] = i
	}
	if pos["invest"] > pos["withdraw"] {
		t.Errorf("dataflow order violated: %s", seq)
	}
	if seq[0].Func != "__ctor" {
		t.Error("constructor must head the sequence")
	}
}

func TestValueOnlySetForPayable(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 3})
	// refund is not payable: newTx must not assign value to it
	for i := 0; i < 50; i++ {
		tx := c.newTx("refund")
		if !tx.Value.IsZero() {
			t.Fatal("non-payable function got a value")
		}
	}
	// invest is payable: a value should appear sometimes
	seen := false
	for i := 0; i < 50; i++ {
		if !c.newTx("invest").Value.IsZero() {
			seen = true
		}
	}
	if !seen {
		t.Error("payable function never received a value")
	}
}

func TestPoolHarvestsBytecodeConstants(t *testing.T) {
	src := `contract P {
		uint256 x;
		function f(uint256 a) public { require(a == 123456789); x = 1; }
	}`
	comp := mustCompile(t, src)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 1})
	found := false
	for _, v := range c.pool {
		if v.Eq(u256.New(123456789)) {
			found = true
		}
	}
	if !found {
		t.Error("PUSH immediate 123456789 missing from the value pool")
	}
}

func TestCampaignOnContractWithoutFunctions(t *testing.T) {
	comp := mustCompile(t, `contract Empty { uint256 x = 5; }`)
	res := Run(comp, Options{Strategy: MuFuzz(), Seed: 1, Iterations: 50})
	if res.Executions == 0 {
		t.Error("even an empty contract runs its constructor")
	}
	if len(res.Findings) != 0 {
		t.Errorf("empty contract produced findings: %v", res.Findings)
	}
}

func TestCampaignOnViewOnlyContract(t *testing.T) {
	comp := mustCompile(t, `contract V {
		uint256 x = 7;
		function get() public view returns (uint256) { return x; }
	}`)
	res := Run(comp, Options{Strategy: MuFuzz(), Seed: 1, Iterations: 100})
	if res.Coverage <= 0 {
		t.Error("view calls still cover dispatcher branches")
	}
}

func TestResultFieldsPopulated(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	res := Run(comp, Options{Strategy: MuFuzz(), Seed: 2, Iterations: 400})
	if res.Strategy != "MuFuzz" {
		t.Errorf("strategy name = %q", res.Strategy)
	}
	if res.TotalEdges == 0 || res.CoveredEdges == 0 {
		t.Error("edge accounting empty")
	}
	if res.Coverage <= 0 || res.Coverage > 1 {
		t.Errorf("coverage = %f", res.Coverage)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
	if res.SeedQueueLen == 0 {
		t.Error("queue empty after campaign")
	}
}

func TestSmartianStrategyFindsSequenceBugsEventually(t *testing.T) {
	// Smartian has dataflow + prolongation but no distance feedback: it can
	// still crack the Crowdsale via prolongation, slower than MuFuzz.
	comp := mustCompile(t, crowdsaleSrc)
	res := Run(comp, Options{Strategy: Smartian(), Seed: 5, Iterations: 3000})
	if res.Coverage < 0.5 {
		t.Errorf("Smartian coverage %.2f suspiciously low", res.Coverage)
	}
}

func TestBugClassesMatchFindings(t *testing.T) {
	src := `contract B {
		uint256 acc;
		function f(uint256 n) public { acc -= n; }
	}`
	comp := mustCompile(t, src)
	res := Run(comp, Options{Strategy: MuFuzz(), Seed: 1, Iterations: 300})
	if !res.BugClasses[oracle.IO] {
		t.Fatal("underflow not found")
	}
	found := false
	for _, f := range res.Findings {
		if f.Class == oracle.IO {
			found = true
		}
	}
	if !found {
		t.Error("BugClasses and Findings disagree")
	}
}

func TestSeedStringRendering(t *testing.T) {
	s := &Seed{Seq: Sequence{{Func: "__ctor"}, {Func: "a"}}, PathWeight: 2}
	if s.String() == "" || s.Seq.String() != "__ctor → a" {
		t.Errorf("rendering wrong: %q / %q", s.String(), s.Seq.String())
	}
}
