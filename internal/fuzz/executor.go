package fuzz

import (
	"mufuzz/internal/abi"
	"mufuzz/internal/analysis"
	"mufuzz/internal/evm"
	"mufuzz/internal/oracle"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// txValueCap bounds msg.value so mutated 256-bit words cannot drain a
// sender's (2^120 wei) balance in one transfer. Hoisted to a package
// variable so the hot path does not recompute it per execution.
var txValueCap = u256.One.Lsh(96).Sub(u256.One)

// campaignBlockCtx is the fixed block context every campaign execution and
// replay runs under.
var campaignBlockCtx = evm.BlockCtx{Timestamp: 1_700_000_000, Number: 1_000_000, GasLimit: 30_000_000}

// txReport pairs one live transaction's oracle report with its index in the
// sequence, so the coordinator can slice the proof-of-concept prefix.
type txReport struct {
	txIdx  int
	report oracle.Report
}

// execOutcome is the pure result of executing one sequence: branch events,
// nesting depth, and per-transaction oracle reports. It carries no campaign
// state and is produced without mutating any — the executor/coordinator
// contract that makes batched parallel execution safe.
type execOutcome struct {
	// branchesByTx holds the contract's branch events, one batch per
	// transaction, covering the whole sequence: checkpoint-replayed prefix
	// transactions first (shared, immutable slices from the cache entry),
	// then live transactions.
	branchesByTx [][]evm.BranchEvent
	// firstLive is the number of leading transactions served from a prefix
	// checkpoint (0 when the sequence ran from genesis).
	firstLive int
	// nestedDepth is the deepest compile-time branch nesting reached across
	// the whole sequence, prefix included.
	nestedDepth int
	// reports are the non-empty oracle reports of the whole sequence in
	// transaction order: checkpoint-replayed prefix reports first, then live
	// ones. Carrying the prefix reports makes the outcome self-contained, so
	// proof-of-concept capture on the coordinator does not depend on which
	// execution happened to populate the cache.
	reports []txReport
}

// executor runs transaction sequences against private EVM instances. Each
// executor owns its own reusable trace buffer; everything else it references
// (compiled contract, genesis state, inspector, prefix cache) is immutable
// or internally synchronized, so a coordinator can clone one executor per
// worker goroutine and run them concurrently.
//
// The contract with the coordinator: run is a pure request→outcome function
// of the sequence (given the cache's contents). All campaign-state folding —
// coverage, branch distance, queue admission, finding aggregation, repro
// capture, timeline — happens on the coordinator in deterministic batch
// order.
type executor struct {
	target       Target
	genesis      *state.State
	contractAddr state.Address
	deployer     state.Address
	attackerAddr state.Address
	senders      []state.Address
	gasPerTx     uint64
	// World-campaign tables, nil/empty for single-contract campaigns (the
	// default path draws no cost from them). worldAddrs maps TxInput.Callee
	// to a deployment address (index 0 = the primary contract) and
	// worldTargets is the matching target per slot. attackerModel, when set,
	// replaces the reentrant-attacker native: the sequence anchor's encoded
	// spec compiles to synthesized bytecode deployed at attackerAddr.
	worldAddrs    []state.Address
	worldTargets  []Target
	attackerModel AttackerModel
	inspector     *oracle.Inspector
	// prefixes is the shared sharded checkpoint cache; nil disables the
	// intermediate-state optimization (ablation / replay).
	prefixes *prefixCache
	// view is the executor's private read affinity over prefixes: the shard
	// snapshots, revalidated once per execution against the cache epoch. All
	// hot-path cache probes (resume lookup, store-policy scan) go through it
	// as plain worker-local map reads instead of shared atomic loads.
	view prefixView
	// branchIx interns the contract's branch edges; installed on every EVM so
	// trace events carry compact edge IDs. depthByEdge is the per-edge
	// branch-site nesting depth (shared, read-only).
	branchIx    *analysis.BranchIndex
	depthByEdge []int
	// methods/selectors intern the ABI lookup and the keccak-derived 4-byte
	// selector per function name once per campaign (shared, read-only) — the
	// pre-interning engine re-hashed the signature on every transaction.
	methods   map[string]abi.Method
	selectors map[string][4]byte
	// copyState selects the deep State.Copy for every state handoff instead
	// of the copy-on-write State.Fork — the Options.UseCopyState conformance
	// mode that pins Fork's semantics end-to-end.
	copyState bool
	// prog is the contract's compiled IR program, built once per campaign and
	// shared read-only by every worker's EVM (the decode-once hot path).
	prog *evm.Program
	// noIR pins every EVM to the reference switch-loop interpreter
	// (Options.NoIR conformance ablation).
	noIR bool
	// trace is the reusable per-transaction event buffer. Branch events are
	// copied out of it before reuse, so recycling it across transactions and
	// executions is safe and saves eight slice allocations per transaction.
	trace *evm.Trace
	// txBuf is the reusable calldata encoding buffer. The EVM only reads
	// TopLevelInput during its own transaction and every consumer that retains
	// input bytes copies them, so one buffer per executor is safe.
	txBuf []byte
	// vm is the executor's persistent EVM, rebound to a fresh world state per
	// execution (natives, program cache, and frame pool stay warm).
	vm       *evm.EVM
	attacker *evm.ReentrantAttacker
	// scratch is the reusable working state: every execution re-forks its
	// start state (genesis or a checkpoint) into it via State.ForkInto, so
	// the per-execution fork allocates nothing. Checkpoint stores still take
	// real Forks — those states are retained by the cache.
	scratch *state.State
	// hashBuf is the reusable prefix-hash table backing (see prefixHashes).
	hashBuf []uint64
	// brArena is the bump allocator for per-transaction branch-event batches.
	// Batches are carved off its tail and never recycled (their ownership
	// transfers to outcomes, the prefix cache, and coverage folding), so one
	// chunk allocation amortizes over many transactions; only the unused tail
	// capacity is ever written again.
	brArena []evm.BranchEvent
}

// clone returns an executor sharing the immutable substrate but owning a
// fresh trace buffer and EVM — one per worker goroutine.
func (x *executor) clone() *executor {
	nx := *x
	nx.trace = nil
	nx.txBuf = nil
	nx.vm = nil
	nx.attacker = nil
	nx.scratch = nil
	nx.hashBuf = nil
	nx.brArena = nil
	nx.view = prefixView{}
	return &nx
}

// detached returns a clone that bypasses the prefix cache; replays and
// minimization use it so they neither consume nor pollute checkpoints.
func (x *executor) detached() *executor {
	nx := *x
	nx.trace = nil
	nx.txBuf = nil
	nx.vm = nil
	nx.attacker = nil
	nx.scratch = nil
	nx.hashBuf = nil
	nx.brArena = nil
	nx.prefixes = nil
	nx.view = prefixView{}
	return &nx
}

// forkOf hands off a frozen state: a copy-on-write Fork on the hot path, or
// the deep semantic-specification Copy under Options.UseCopyState. Both are
// safe to call concurrently on states that are not being mutated (genesis and
// checkpoint entries are frozen after Commit/store).
func (x *executor) forkOf(s *state.State) *state.State {
	if x.copyState {
		return s.Copy()
	}
	return s.Fork()
}

// workState forks s into the executor's reusable scratch state — the
// per-execution working copy nothing retains (checkpoint stores fork the
// scratch again via forkOf, so cache entries are always independent states).
// Under UseCopyState the deep-copy specification path is kept unpooled.
func (x *executor) workState(s *state.State) *state.State {
	if x.copyState {
		return s.Copy()
	}
	x.scratch = s.ForkInto(x.scratch)
	return x.scratch
}

// carveBranches reserves an n-event batch at the arena tail and returns it
// empty (len 0, cap n). The caller fills it with append; the reservation
// means later carves can never touch it, so handing the batch to long-lived
// owners (outcomes, the prefix cache) is safe.
func (x *executor) carveBranches(n int) []evm.BranchEvent {
	if cap(x.brArena)-len(x.brArena) < n {
		sz := 1024
		if n > sz {
			sz = n
		}
		x.brArena = make([]evm.BranchEvent, 0, sz)
	}
	tail := len(x.brArena)
	x.brArena = x.brArena[:tail+n]
	return x.brArena[tail : tail : tail+n]
}

// engine returns the executor's persistent EVM rebound to st. The EVM, its
// registered attacker native, the compiled program cache, and the frame pool
// are built once per executor and reused for every execution. When an
// attacker model is installed the native is NOT registered: the attacker
// account runs real synthesized bytecode instead (deployWorld installs it),
// so its callbacks flow through the ordinary interpreter and trace.
func (x *executor) engine(st *state.State) *evm.EVM {
	if x.vm == nil {
		x.vm = evm.New(st, campaignBlockCtx)
		x.vm.BranchIndex = x.branchIx
		x.vm.BranchIndexAddr = x.contractAddr
		x.vm.DisableIR = x.noIR
		x.vm.UseProgram(x.prog)
		if x.attackerModel == nil {
			x.attacker = &evm.ReentrantAttacker{Addr: x.attackerAddr, MaxReentries: 1}
			x.vm.RegisterNative(x.attackerAddr, x.attacker)
		}
		return x.vm
	}
	x.vm.Reset(st)
	return x.vm
}

// deployWorld installs the campaign's contracts into a fresh genesis fork:
// every world member at its assigned address (or just the primary for
// single-contract campaigns), plus — when attacker synthesis is on — the
// bytecode compiled from the sequence anchor's attacker spec, deployed at
// the attacker account. A nil/invalid spec leaves the attacker a plain EOA.
func (x *executor) deployWorld(st *state.State, seq Sequence) {
	if len(x.worldAddrs) == 0 {
		x.target.Deploy(st, x.contractAddr, x.deployer)
	} else {
		for i, t := range x.worldTargets {
			t.Deploy(st, x.worldAddrs[i], x.deployer)
		}
	}
	if x.attackerModel != nil && len(seq) > 0 {
		if code := x.attackerModel.Compile(seq[0].Attacker); len(code) > 0 {
			st.CreateContract(x.attackerAddr, code, x.deployer)
			st.Commit()
		}
	}
}

// calleeAddr resolves a transaction's destination: the primary contract for
// single-contract campaigns, the callee-indexed world member otherwise.
func (x *executor) calleeAddr(tx TxInput) state.Address {
	if len(x.worldAddrs) == 0 {
		return x.contractAddr
	}
	return x.worldAddrs[tx.Callee%len(x.worldAddrs)]
}

// resetTrace returns the executor's trace buffer, cleared for one
// transaction.
func (x *executor) resetTrace() *evm.Trace {
	if x.trace == nil {
		x.trace = evm.NewTrace()
	} else {
		x.trace.Reset()
	}
	return x.trace
}

// encodeTx builds the full calldata of a transaction from the interned
// selector table (no signature re-hash per transaction), reusing the
// executor's encoding buffer: the EVM only reads the calldata during its own
// transaction, and every consumer that retains input bytes (reentry events,
// proof-of-concept capture) copies them.
func (x *executor) encodeTx(tx TxInput) []byte {
	sel := x.selectors[tx.Func]
	out := append(x.txBuf[:0], sel[:]...)
	out = append(out, tx.Args...)
	x.txBuf = out
	return out
}

// internMethods builds the method and selector tables for a target,
// including the constructor pseudo-method.
func internMethods(t Target) (map[string]abi.Method, map[string][4]byte) {
	fns := t.Methods()
	methods := make(map[string]abi.Method, len(fns)+1)
	selectors := make(map[string][4]byte, len(fns)+1)
	ctor := t.Constructor()
	methods[ctor.Name] = ctor
	selectors[ctor.Name] = ctor.Selector()
	for _, m := range fns {
		methods[m.Name] = m
		selectors[m.Name] = m.Selector()
	}
	return methods, selectors
}

// run executes a sequence and returns its outcome. When a prefix of the
// sequence has a cached checkpoint (paper §VI's intermediate-state
// optimization), execution resumes from it and the prefix's recorded branch
// events stand in for re-execution. Intermediate states reached by live
// transactions are proposed back to the cache.
//
// All state handoffs are copy-on-write Forks: resuming from genesis or a
// checkpoint entry, and storing a new checkpoint, are O(accounts) pointer
// copies — the deep copy the pre-CoW engine paid per checkpoint and per
// resume is gone, and only accounts a live transaction actually writes get
// cloned (see the state package's memory model).
func (x *executor) run(seq Sequence) execOutcome {
	// The outer batch list is exactly one entry per transaction; pre-sizing
	// makes it a single allocation instead of append growth.
	out := execOutcome{branchesByTx: make([][]evm.BranchEvent, 0, len(seq))}

	var st *state.State
	var e *evm.EVM
	start := 0

	// One pass computes every proper-prefix key; the resume lookup and the
	// store-policy scan below both index into it.
	var hashes []uint64
	if x.prefixes != nil {
		hashes = prefixHashes(seq, x.hashBuf)
		x.hashBuf = hashes
		x.view.refresh(x.prefixes)
	}

	if entry := x.view.lookupHashed(hashes); entry != nil {
		st = x.workState(entry.st)
		e = x.engine(st)
		e.RestoreTaint(entry.taint)
		start = entry.txs
		out.branchesByTx = append(out.branchesByTx, entry.branchesByTx...)
		out.reports = append(out.reports, entry.reports...)
		out.nestedDepth = entry.nestedDepth
	} else {
		st = x.workState(x.genesis)
		e = x.engine(st)
		x.deployWorld(st, seq)
	}
	out.firstLive = start

	// Single-store checkpoint policy: of all proper prefixes this run could
	// checkpoint, only the longest not-yet-cached one is stored. Shorter
	// prefixes are dominated — any future sequence sharing a short prefix
	// either shares the long one too, or misses and stores its own longest —
	// so storing them would multiply the fork + taint-snapshot cost per run
	// without improving resume depth. The cache stays write-once per key and
	// contains/admissible are re-checked at store time (another worker may
	// have stored the same prefix mid-run).
	bestStore := -1
	if x.prefixes != nil {
		for i := len(seq) - 2; i >= start; i-- {
			if !x.view.contains(hashes[i]) {
				bestStore = i
				break
			}
		}
	}

	for i := start; i < len(seq); i++ {
		tx := seq[i]
		data := x.encodeTx(tx)
		sender := x.senders[tx.Sender%len(x.senders)]
		value := tx.Value.And(txValueCap)
		e.Trace = x.resetTrace()
		_, err := e.Transact(sender, x.calleeAddr(tx), value, data, x.gasPerTx)

		// Two-pass copy into an exact-size batch carved off the arena: the
		// batch's ownership transfers to the outcome (and possibly the prefix
		// cache), so it must never be written again — carving advances the
		// arena tail past it, and append-growth overshoot never happens.
		n := 0
		for _, br := range e.Trace.Branches {
			if br.Addr == x.contractAddr {
				n++
			}
		}
		var txBranches []evm.BranchEvent
		if n > 0 {
			txBranches = x.carveBranches(n)
			for _, br := range e.Trace.Branches {
				if br.Addr == x.contractAddr {
					txBranches = append(txBranches, br)
				}
			}
		}
		out.branchesByTx = append(out.branchesByTx, txBranches)
		for _, br := range txBranches {
			if id, ok := br.IndexedEdge(); ok {
				if d := x.depthByEdge[id]; d > out.nestedDepth {
					out.nestedDepth = d
				}
			}
		}

		if rep := x.inspector.Inspect(e.Trace, value, err == nil); !rep.Empty() {
			out.reports = append(out.reports, txReport{txIdx: i, report: rep})
		}

		// Checkpoint the state after the chosen prefix transaction. The
		// outcome accumulated so far is exactly the checkpoint's payload.
		if i == bestStore && x.prefixes.admissible(out.branchesByTx) {
			key := hashes[i]
			if !x.prefixes.contains(key) {
				x.prefixes.storeKeyed(key, i+1, x.forkOf(st), e.TaintSnapshot(), out.branchesByTx, out.reports, out.nestedDepth)
			}
		}
	}
	return out
}

// runFinalState executes seq from genesis — always, never through the prefix
// cache — and returns the resulting world state. It is the state-divergence
// primitive of witnessed reentrancy confirmation: the campaign replays a
// candidate sequence once with the synthesized attacker and once with the
// attacker stripped to a plain EOA, and compares the two final states. Call
// it only on detached executors; the returned state aliases the executor's
// scratch and is valid until the executor runs again.
func (x *executor) runFinalState(seq Sequence) *state.State {
	st := x.workState(x.genesis)
	e := x.engine(st)
	x.deployWorld(st, seq)
	for _, tx := range seq {
		data := x.encodeTx(tx)
		sender := x.senders[tx.Sender%len(x.senders)]
		value := tx.Value.And(txValueCap)
		e.Trace = x.resetTrace()
		e.Transact(sender, x.calleeAddr(tx), value, data, x.gasPerTx)
	}
	return st
}
