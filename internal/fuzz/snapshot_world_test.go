package fuzz

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mufuzz/internal/corpus"
)

// TestSnapshotDecodesV2 pins backward compatibility with the previous
// format: a v2 snapshot — no world records, detector line without the
// valueout aggregate — must decode with the world fields at their zero
// values and resume into a runnable campaign.
func TestSnapshotDecodesV2(t *testing.T) {
	comp := compileT(t, corpus.Crowdsale())
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 1, Iterations: 200, Workers: 1})
	if _, done := c.RunSlice(context.Background(), 2); done {
		t.Fatal("campaign finished before the pause point")
	}
	var v2 bytes.Buffer
	for _, line := range strings.SplitAfter(string(c.Snapshot().EncodeBytes()), "\n") {
		switch {
		case strings.HasPrefix(line, "mufuzz-snapshot v"):
			v2.WriteString("mufuzz-snapshot v2\n")
		case strings.HasPrefix(line, "detector "):
			v2.WriteString(strings.Replace(line, " valueout=0", "", 1))
		default:
			v2.WriteString(line)
		}
	}
	snap, err := DecodeSnapshot(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatalf("v2 snapshot failed to decode: %v", err)
	}
	if len(snap.WorldMembers) != 0 || snap.Attacker || snap.ValueOutSeen {
		t.Error("v2 snapshot decoded world state from nowhere")
	}
	resumed, err := ResumeCampaign(comp, snap)
	if err != nil {
		t.Fatalf("resume from v2: %v", err)
	}
	if res, done := resumed.RunSlice(context.Background(), 0); !done || res.Executions == 0 {
		t.Error("campaign resumed from v2 snapshot did not run to completion")
	}
}

// TestWorldSnapshotResume proves the resume property for multi-contract
// worlds: a members-only world campaign paused mid-run, round-tripped
// through the v3 encoding, and resumed via ResumeWorldCampaign finishes with
// exactly the uninterrupted result — and the snapshot refuses to resume
// without the world or into a changed one.
func TestWorldSnapshotResume(t *testing.T) {
	primary := compileT(t, corpus.Crowdsale())
	member := compileT(t, corpus.Token())
	world := func() *WorldOptions {
		return &WorldOptions{Members: []WorldMember{{Name: "token", Target: MinisolTarget(member)}}}
	}
	opts := Options{Strategy: MuFuzz(), Seed: 5, Iterations: 500, Workers: 1, World: world()}

	fullOpts := opts
	fullOpts.World = world()
	want := resultFingerprint(NewCampaign(primary, fullOpts).Run())

	c := NewCampaign(primary, opts)
	if _, done := c.RunSlice(context.Background(), 3); done {
		t.Fatal("campaign finished before the pause point; grow the budget")
	}
	enc := c.Snapshot().EncodeBytes()
	if !bytes.Contains(enc, []byte("\nworldmember token ")) {
		t.Fatal("world member pin missing from encoding")
	}
	snap, err := DecodeSnapshot(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(snap.EncodeBytes(), enc) {
		t.Fatal("world snapshot encode/decode/encode is not byte-stable")
	}

	if _, err := ResumeTargetCampaign(MinisolTarget(primary), snap); err == nil {
		t.Fatal("ResumeTargetCampaign accepted a world snapshot")
	}
	if _, err := ResumeWorldCampaign(MinisolTarget(primary), &WorldOptions{
		Members: []WorldMember{{Name: "renamed", Target: MinisolTarget(member)}},
	}, snap); err == nil {
		t.Fatal("resume accepted a renamed world member")
	}
	if _, err := ResumeWorldCampaign(MinisolTarget(primary), &WorldOptions{
		Members: []WorldMember{{Name: "token", Target: MinisolTarget(primary)}},
	}, snap); err == nil {
		t.Fatal("resume accepted a member with changed code")
	}

	resumed, err := ResumeWorldCampaign(MinisolTarget(primary), world(), snap)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := resultFingerprint(resumed.Run()); got != want {
		t.Errorf("resumed world result diverged from uninterrupted run\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestSequenceRoundTripWorldFields pins the extended tx-line form: callee
// indices and attacker specs survive EncodeSequence/DecodeSequence, and
// plain transactions keep the historical 5-field line.
func TestSequenceRoundTripWorldFields(t *testing.T) {
	seq := Sequence{
		{Func: CtorName, Sender: 0, Attacker: []byte{1, 0, 0, 0, 0, 1, 0, 0}},
		{Func: "token.transfer", Sender: 2, Callee: 1, Args: []byte{0xaa}},
		{Func: "invest", Sender: 1},
	}
	enc := EncodeSequence(seq)
	lines := strings.Split(strings.TrimSpace(string(enc)), "\n")
	if len(strings.Fields(lines[0])) != 7 || len(strings.Fields(lines[1])) != 7 {
		t.Fatalf("world transactions should use the 7-field form: %q", lines)
	}
	if len(strings.Fields(lines[2])) != 5 {
		t.Fatalf("plain transaction should keep the 5-field form: %q", lines[2])
	}
	got, err := DecodeSequence(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != seq.String() {
		t.Fatalf("sequence round trip mismatch:\nwant %s\ngot  %s", seq, got)
	}
	if got[0].Attacker == nil || got[1].Callee != 1 || got[2].Callee != 0 {
		t.Fatalf("world fields lost in round trip: %+v", got)
	}
}
