package fuzz

import (
	"mufuzz/internal/evm"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
	"mufuzz/internal/state"
)

// ReplayResult is what one replay of a sequence observed.
type ReplayResult struct {
	BugClasses map[oracle.BugClass]bool
	Edges      map[evm.BranchKey]bool
}

// Replay executes a sequence against a fresh world (same identities the
// campaign uses) and reports the bug classes triggered and edges covered.
// It lets a finding be re-confirmed independently of the campaign, and is
// the predicate engine for Minimize. Replays run on a detached executor so
// they neither consume nor pollute the campaign's prefix checkpoints, and a
// fresh detector so campaign findings don't leak into the replay verdict.
// The returned edge set is keyed by BranchKey and consumed only as a set,
// so minimization is independent of the campaign's interned edge-ID order
// (which itself matches the old sorted-BranchKey order; see BranchIndex).
func (c *Campaign) Replay(seq Sequence) *ReplayResult {
	x := c.exec.detached()
	res := x.run(seq)

	det := c.newDetector()
	for _, rep := range res.reports {
		r := rep.report
		if c.attackerModel != nil {
			// Witnessed reentrancy verdicts pass the same divergence bar the
			// live campaign applies, so minimization cannot shrink a repro
			// below the point where the schedule stops changing the outcome.
			r, _ = c.confirmReport(seq[:rep.txIdx+1], r)
		}
		det.Absorb(r)
	}
	out := &ReplayResult{
		BugClasses: det.Classes(),
		Edges:      make(map[evm.BranchKey]bool),
	}
	for _, txBranches := range res.branchesByTx {
		for _, br := range txBranches {
			out.Edges[br.Key()] = true
		}
	}
	return out
}

// ReplayCoverageEdges replays a sequence on a detached engine and returns
// the covered branch edges as (pc, taken 0/1) pairs — the canonical input of
// a corpus store's coverage fingerprint, shared by every seed exporter so
// the CLI and the campaign service content-address seeds identically.
func (c *Campaign) ReplayCoverageEdges(seq Sequence) [][2]uint64 {
	rr := c.Replay(seq)
	edges := make([][2]uint64, 0, len(rr.Edges))
	for k := range rr.Edges {
		taken := uint64(0)
		if k.Taken {
			taken = 1
		}
		edges = append(edges, [2]uint64{k.PC, taken})
	}
	return edges
}

// Minimize shrinks a sequence while the predicate keeps holding, using
// ddmin-style chunk removal followed by single-transaction removal. The
// constructor (element 0) is never removed. The returned sequence satisfies
// pred; if the input does not, it is returned unchanged.
func Minimize(seq Sequence, pred func(Sequence) bool) Sequence {
	if len(seq) <= 1 || !pred(seq) {
		return seq
	}
	cur := seq.Clone()

	// Chunked removal: try dropping halves, quarters, ... of the tail.
	for chunk := (len(cur) - 1) / 2; chunk >= 1; chunk /= 2 {
		for start := 1; start+chunk <= len(cur); {
			cand := append(cur[:start:start], cur[start+chunk:]...)
			if pred(cand) {
				cur = cand
				// retry same start with the shorter sequence
			} else {
				start++
			}
		}
	}

	// Final single-pass sweep.
	for i := 1; i < len(cur); {
		cand := append(cur[:i:i], cur[i+1:]...)
		if pred(cand) {
			cur = cand
		} else {
			i++
		}
	}
	return cur
}

// MinimizeForBug shrinks a sequence to the fewest transactions that still
// trigger the given bug class when replayed.
func (c *Campaign) MinimizeForBug(seq Sequence, class oracle.BugClass) Sequence {
	return Minimize(seq, func(s Sequence) bool {
		return c.Replay(s).BugClasses[class]
	})
}

// MinimizeForEdge shrinks a sequence to the fewest transactions that still
// cover the given branch edge.
func (c *Campaign) MinimizeForEdge(seq Sequence, key evm.BranchKey) Sequence {
	return Minimize(seq, func(s Sequence) bool {
		return c.Replay(s).Edges[key]
	})
}

// WithdrawDeepEdge is a helper returning the coverage key of the not-taken
// (condition-true) side of the first `if` branch in the named function —
// the kind of deep edge the motivating example reasons about.
func WithdrawDeepEdge(comp *minisol.Compiled, contractAddr state.Address, fn string) (evm.BranchKey, bool) {
	for _, s := range comp.Branches {
		if s.Func == fn && s.Kind == minisol.BranchIf {
			return evm.BranchKey{Addr: contractAddr, PC: s.PC, Taken: false}, true
		}
	}
	return evm.BranchKey{}, false
}

// ContractAddr exposes the campaign's contract address (used with
// MinimizeForEdge and external trace inspection).
func (c *Campaign) ContractAddr() state.Address {
	return c.contractAddr
}
