package fuzz

import (
	"mufuzz/internal/abi"
	"mufuzz/internal/analysis"
	"mufuzz/internal/minisol"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// CtorName is the pseudo-function name heading every transaction sequence
// (paper §IV-A: the constructor runs first). It is shared by every target
// kind: MiniSol targets dispatch it to the real constructor, bytecode targets
// use it as the sequence anchor (the call lands in the dispatcher's fallback
// path unless the code was compiled with the same pseudo-selector scheme).
const CtorName = minisol.CtorName

// TargetBranch is one JUMPI site of the contract under test with its nesting
// metadata: Depth counts the conditional statements enclosing the branch
// (1 = top level). Depth >= 2 marks the "nested branch" seeds that qualify
// for Algorithm 2 mask computation (paper §IV-B); the source of the number —
// compiler metadata or CFG recovery — is a target-kind detail.
type TargetBranch struct {
	PC    uint64
	Depth int
}

// Target abstracts what a campaign needs to fuzz one contract, decoupling
// the engine from the MiniSol compiler so source-free targets (raw deployed
// bytecode plus an ABI, internal/ingest) run through the same coordinator,
// executors, oracles, masks, and energy scheduling.
//
// Implementations must be immutable after construction: the campaign and its
// worker executors read them concurrently without synchronization.
type Target interface {
	// Name identifies the target (contract name, or a codehash-derived label
	// for source-free targets). It keys corpus-store buckets and snapshots.
	Name() string
	// Code is the runtime bytecode installed at the contract address. The
	// campaign derives its CFG, branch index, PUSH-immediate value pool, and
	// oracle configuration from it.
	Code() []byte
	// Deploy installs the target into a fresh world state: the genesis step
	// every sequence execution starts from (before the CtorName transaction
	// runs). Must be a pure function of its arguments.
	Deploy(st *state.State, addr, deployer state.Address)
	// Constructor is the pseudo-method heading every sequence; its Name is
	// the sequence anchor (CtorName for both built-in target kinds).
	Constructor() abi.Method
	// Methods lists the externally callable functions in deterministic
	// order; this order is the campaign's canonical function order (random
	// sequence strategies shuffle it, dataflow strategies reorder it).
	Methods() []abi.Method
	// Branches lists every known JUMPI site with nesting depth metadata.
	// Sites absent from the list default to depth 0 (never "nested").
	Branches() []TargetBranch
	// DependencyOrder returns function names ordered writer-before-reader
	// over the target's state (paper §IV-A); the dataflow sequence strategy
	// builds initial sequences in this order.
	DependencyOrder() []string
	// RepeatCandidates returns functions with a read-after-write dependency
	// on branch-read state — the candidates for consecutive-repetition
	// sequence mutation (paper §IV-A).
	RepeatCandidates() []string
	// Dictionary returns mined interesting constants beyond the campaign's
	// own PUSH-immediate harvest — AST literals and folded constant
	// expressions for source targets, abstract-interpretation constants and
	// keccak mapping bases for source-free bytecode. The campaign merges them
	// into its value pool when Strategy.MinedDictionary is on. The slice must
	// be deterministic (sorted, deduplicated) for a given target.
	Dictionary() []u256.Int
}

// minisolTarget adapts a compiled MiniSol contract to the Target interface.
// Every method serves exactly the artifact the pre-Target engine consumed
// directly from *minisol.Compiled, so campaigns built through the adapter
// are byte-identical to the pre-refactor engine (pinned by the golden
// fingerprints and the conformance transcript tests).
type minisolTarget struct {
	comp     *minisol.Compiled
	depOrder []string
	repeat   []string
	branches []TargetBranch
	dict     []u256.Int
}

// MinisolTarget wraps a compiled MiniSol contract as a fuzzing target. The
// dataflow analysis runs once here; the returned target is immutable.
func MinisolTarget(comp *minisol.Compiled) Target {
	df := analysis.AnalyzeDataflow(comp.Contract)
	t := &minisolTarget{
		comp:     comp,
		depOrder: df.DependencyOrder(),
		repeat:   df.RepeatCandidates(),
	}
	for _, site := range comp.Branches {
		t.branches = append(t.branches, TargetBranch{PC: site.PC, Depth: site.Depth})
	}
	t.dict = mineASTDictionary(comp.Contract)
	return t
}

func (t *minisolTarget) Name() string { return t.comp.Contract.Name }
func (t *minisolTarget) Code() []byte { return t.comp.Code }

func (t *minisolTarget) Deploy(st *state.State, addr, deployer state.Address) {
	st.CreateContract(addr, t.comp.Code, deployer)
	st.Commit()
}

func (t *minisolTarget) Constructor() abi.Method { return t.comp.Ctor }

// Methods returns the ABI methods, which the MiniSol compiler emits in
// declaration order — the same order the pre-Target engine read from
// Contract.Functions.
func (t *minisolTarget) Methods() []abi.Method { return t.comp.ABI.Methods }

func (t *minisolTarget) Branches() []TargetBranch   { return t.branches }
func (t *minisolTarget) DependencyOrder() []string  { return t.depOrder }
func (t *minisolTarget) RepeatCandidates() []string { return t.repeat }
func (t *minisolTarget) Dictionary() []u256.Int     { return t.dict }
