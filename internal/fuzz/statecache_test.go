package fuzz

import (
	"sync"
	"testing"

	"mufuzz/internal/evm"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

func TestHashPrefixDistinguishesSequences(t *testing.T) {
	a := Sequence{{Func: "__ctor"}, {Func: "f", Args: []byte{1, 2}}}
	b := Sequence{{Func: "__ctor"}, {Func: "f", Args: []byte{1, 3}}}
	c := Sequence{{Func: "__ctor"}, {Func: "g", Args: []byte{1, 2}}}
	d := Sequence{{Func: "__ctor"}, {Func: "f", Args: []byte{1, 2}, Value: u256.One}}
	e := Sequence{{Func: "__ctor"}, {Func: "f", Args: []byte{1, 2}, Sender: 1}}
	h := func(s Sequence) uint64 { return hashPrefix(s, 2) }
	hashes := map[uint64]string{}
	for name, s := range map[string]Sequence{"a": a, "b": b, "c": c, "d": d, "e": e} {
		hv := h(s)
		if prev, dup := hashes[hv]; dup {
			t.Errorf("hash collision between %s and %s", prev, name)
		}
		hashes[hv] = name
	}
	// prefix length participates
	if hashPrefix(a, 1) == hashPrefix(a, 2) {
		t.Error("different prefix lengths must hash differently")
	}
	// identical prefixes hash equal regardless of suffix
	long := append(a.Clone(), TxInput{Func: "tail"})
	if hashPrefix(a, 2) != hashPrefix(long, 2) {
		t.Error("same prefix must hash equal under different suffixes")
	}
}

// TestPrefixCacheFIFOEvictionPerShard pins the eviction policy of the
// sharded cache: each shard evicts its own oldest entry once it reaches its
// per-shard capacity. Keys are crafted to land in one shard (key mod
// prefixShards selects it) so the FIFO order is observable.
func TestPrefixCacheFIFOEvictionPerShard(t *testing.T) {
	pc := newPrefixCache(2 * prefixShards) // per-shard capacity 2
	// All three keys land in shard 3.
	keys := []uint64{3, 3 + prefixShards, 3 + 2*prefixShards}
	for _, k := range keys {
		pc.storeKeyed(k, 1, nil, nil, nil, nil, 0)
	}
	if pc.len() != 2 {
		t.Errorf("cache size = %d, want 2 (per-shard FIFO eviction)", pc.len())
	}
	if pc.contains(keys[0]) {
		t.Error("oldest entry should have been evicted")
	}
	if !pc.contains(keys[1]) || !pc.contains(keys[2]) {
		t.Error("newer entries must remain")
	}
	// Entries in other shards are untouched by shard 3's eviction.
	pc.storeKeyed(4, 1, nil, nil, nil, nil, 0)
	pc.storeKeyed(3+3*prefixShards, 1, nil, nil, nil, nil, 0) // evicts keys[1]
	if !pc.contains(4) {
		t.Error("eviction must be per shard")
	}
	if pc.contains(keys[1]) {
		t.Error("shard FIFO should have evicted its second-oldest entry")
	}
}

// TestPrefixCacheCollisionKeying pins the txs guard in lookup: an entry
// stored under a hash that collides with a different prefix length must not
// be served for that length.
func TestPrefixCacheCollisionKeying(t *testing.T) {
	seq := Sequence{{Func: "__ctor"}, {Func: "f"}, {Func: "g"}}
	// Simulate an fnv collision: the hash of the 2-tx prefix maps to an
	// entry that checkpoints only 1 transaction.
	collided := hashPrefix(seq, 2)
	pc := newPrefixCache(8)
	pc.storeKeyed(collided, 1, state.New(), nil, nil, nil, 0)
	if e := pc.lookup(seq); e != nil {
		t.Errorf("lookup served a collided entry (txs=%d) for a 2-tx prefix", e.txs)
	}
	hits, misses := pc.stats()
	if hits != 0 || misses != 1 {
		t.Errorf("stats = %d/%d, want 0 hits / 1 miss", hits, misses)
	}
	// A correctly keyed entry is served.
	pc.storeKeyed(hashPrefix(seq, 2), 2, state.New(), nil, nil, nil, 0)
	// (same key — the collided entry occupies it, so lookup still rejects)
	if pc.contains(collided) && pc.lookup(seq) != nil {
		t.Error("occupied colliding key must stay rejected, not overwritten")
	}
}

// TestPrefixCacheConcurrentStress hammers one cache from many goroutines
// doing lookups, inserts, and stats concurrently; run under -race this pins
// the thread-safety of the sharded implementation.
func TestPrefixCacheConcurrentStress(t *testing.T) {
	pc := newPrefixCache(32)
	seqs := make([]Sequence, 64)
	for i := range seqs {
		seqs[i] = Sequence{
			{Func: "__ctor"},
			{Func: "f", Args: []byte{byte(i)}},
			{Func: "g", Args: []byte{byte(i), byte(i >> 4)}},
		}
	}
	st := state.New()
	st.SetBalance(state.AddressFromUint(1), u256.One)
	st.Commit()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				seq := seqs[(round+w*7)%len(seqs)]
				if e := pc.lookup(seq); e != nil {
					if e.txs < 1 || e.txs >= len(seq) {
						t.Errorf("bogus entry txs=%d", e.txs)
					}
					// readers fork entry state outside locks (CoW resume)
					// and may immediately mutate their fork
					ch := e.st.Fork()
					ch.SetBalance(state.AddressFromUint(uint64(w)), u256.One)
				}
				n := 1 + (round+w)%2
				key := hashPrefix(seq, n)
				if !pc.contains(key) {
					pc.storeKeyed(key, n, st.Fork(), map[evm.StorageKey]evm.Taint{},
						[][]evm.BranchEvent{{}}, nil, 0)
				}
				pc.stats()
			}
		}(w)
	}
	wg.Wait()
	if pc.len() == 0 {
		t.Error("stress run stored nothing")
	}
	hits, misses := pc.stats()
	if hits+misses == 0 {
		t.Error("stress run recorded no lookups")
	}
}

func TestNilPrefixCacheSafe(t *testing.T) {
	var pc *prefixCache
	if pc.lookup(Sequence{{Func: "x"}, {Func: "y"}}) != nil {
		t.Error("nil cache lookup must miss")
	}
	pc.storeKeyed(1, 1, nil, nil, nil, nil, 0) // must not panic
	if pc.contains(1) {
		t.Error("nil cache contains nothing")
	}
	if pc.len() != 0 {
		t.Error("nil cache is empty")
	}
	h, m := pc.stats()
	if h != 0 || m != 0 {
		t.Error("nil cache has no stats")
	}
}

// The decisive property: a campaign with the checkpoint cache must produce
// exactly the same coverage, findings, and execution count as one without —
// the cache is a pure performance optimization.
func TestPrefixCacheEquivalence(t *testing.T) {
	for _, src := range []string{crowdsaleSrc} {
		comp := mustCompile(t, src)
		for seed := int64(1); seed <= 3; seed++ {
			with := Run(comp, Options{Strategy: MuFuzz(), Seed: seed, Iterations: 600})
			without := Run(comp, Options{Strategy: MuFuzz(), Seed: seed, Iterations: 600, NoPrefixCache: true})
			if with.CoveredEdges != without.CoveredEdges {
				t.Errorf("seed %d: coverage diverges with cache: %d vs %d",
					seed, with.CoveredEdges, without.CoveredEdges)
			}
			if len(with.Findings) != len(without.Findings) {
				t.Errorf("seed %d: findings diverge: %d vs %d",
					seed, len(with.Findings), len(without.Findings))
			}
			if with.Executions != without.Executions {
				t.Errorf("seed %d: executions diverge: %d vs %d",
					seed, with.Executions, without.Executions)
			}
		}
	}
}

func TestPrefixCacheGetsHits(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 2, Iterations: 800})
	c.Run()
	hits, misses := c.PrefixCacheStats()
	if hits == 0 {
		t.Errorf("cache never hit (misses=%d); mutated children share prefixes, hits expected", misses)
	}
	t.Logf("prefix cache: %d hits, %d misses (%.0f%% hit rate)",
		hits, misses, 100*float64(hits)/float64(hits+misses))
}

func BenchmarkCampaignWithPrefixCache(b *testing.B) {
	comp := mustCompile(b, crowdsaleSrc)
	for i := 0; i < b.N; i++ {
		Run(comp, Options{Strategy: MuFuzz(), Seed: int64(i), Iterations: 400})
	}
}

func BenchmarkCampaignWithoutPrefixCache(b *testing.B) {
	comp := mustCompile(b, crowdsaleSrc)
	for i := 0; i < b.N; i++ {
		Run(comp, Options{Strategy: MuFuzz(), Seed: int64(i), Iterations: 400, NoPrefixCache: true})
	}
}
