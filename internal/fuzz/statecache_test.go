package fuzz

import (
	"testing"

	"mufuzz/internal/u256"
)

func TestHashPrefixDistinguishesSequences(t *testing.T) {
	a := Sequence{{Func: "__ctor"}, {Func: "f", Args: []byte{1, 2}}}
	b := Sequence{{Func: "__ctor"}, {Func: "f", Args: []byte{1, 3}}}
	c := Sequence{{Func: "__ctor"}, {Func: "g", Args: []byte{1, 2}}}
	d := Sequence{{Func: "__ctor"}, {Func: "f", Args: []byte{1, 2}, Value: u256.One}}
	e := Sequence{{Func: "__ctor"}, {Func: "f", Args: []byte{1, 2}, Sender: 1}}
	h := func(s Sequence) uint64 { return hashPrefix(s, 2) }
	hashes := map[uint64]string{}
	for name, s := range map[string]Sequence{"a": a, "b": b, "c": c, "d": d, "e": e} {
		hv := h(s)
		if prev, dup := hashes[hv]; dup {
			t.Errorf("hash collision between %s and %s", prev, name)
		}
		hashes[hv] = name
	}
	// prefix length participates
	if hashPrefix(a, 1) == hashPrefix(a, 2) {
		t.Error("different prefix lengths must hash differently")
	}
	// identical prefixes hash equal regardless of suffix
	long := append(a.Clone(), TxInput{Func: "tail"})
	if hashPrefix(a, 2) != hashPrefix(long, 2) {
		t.Error("same prefix must hash equal under different suffixes")
	}
}

func TestPrefixCacheEviction(t *testing.T) {
	pc := newPrefixCache(2)
	seqs := []Sequence{
		{{Func: "a"}, {Func: "t"}},
		{{Func: "b"}, {Func: "t"}},
		{{Func: "c"}, {Func: "t"}},
	}
	for _, s := range seqs {
		key := hashPrefix(s, 1)
		pc.storeKeyed(key, 1, nil, nil, nil, 0)
	}
	if len(pc.entries) != 2 {
		t.Errorf("cache size = %d, want 2 (FIFO eviction)", len(pc.entries))
	}
	if pc.contains(hashPrefix(seqs[0], 1)) {
		t.Error("oldest entry should have been evicted")
	}
	if !pc.contains(hashPrefix(seqs[2], 1)) {
		t.Error("newest entry must remain")
	}
}

func TestNilPrefixCacheSafe(t *testing.T) {
	var pc *prefixCache
	if pc.lookup(Sequence{{Func: "x"}, {Func: "y"}}) != nil {
		t.Error("nil cache lookup must miss")
	}
	pc.storeKeyed(1, 1, nil, nil, nil, 0) // must not panic
	if pc.contains(1) {
		t.Error("nil cache contains nothing")
	}
	h, m := pc.stats()
	if h != 0 || m != 0 {
		t.Error("nil cache has no stats")
	}
}

// The decisive property: a campaign with the checkpoint cache must produce
// exactly the same coverage, findings, and execution count as one without —
// the cache is a pure performance optimization.
func TestPrefixCacheEquivalence(t *testing.T) {
	for _, src := range []string{crowdsaleSrc} {
		comp := mustCompile(t, src)
		for seed := int64(1); seed <= 3; seed++ {
			with := Run(comp, Options{Strategy: MuFuzz(), Seed: seed, Iterations: 600})
			without := Run(comp, Options{Strategy: MuFuzz(), Seed: seed, Iterations: 600, NoPrefixCache: true})
			if with.CoveredEdges != without.CoveredEdges {
				t.Errorf("seed %d: coverage diverges with cache: %d vs %d",
					seed, with.CoveredEdges, without.CoveredEdges)
			}
			if len(with.Findings) != len(without.Findings) {
				t.Errorf("seed %d: findings diverge: %d vs %d",
					seed, len(with.Findings), len(without.Findings))
			}
			if with.Executions != without.Executions {
				t.Errorf("seed %d: executions diverge: %d vs %d",
					seed, with.Executions, without.Executions)
			}
		}
	}
}

func TestPrefixCacheGetsHits(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 2, Iterations: 800})
	c.Run()
	hits, misses := c.PrefixCacheStats()
	if hits == 0 {
		t.Errorf("cache never hit (misses=%d); mutated children share prefixes, hits expected", misses)
	}
	t.Logf("prefix cache: %d hits, %d misses (%.0f%% hit rate)",
		hits, misses, 100*float64(hits)/float64(hits+misses))
}

func BenchmarkCampaignWithPrefixCache(b *testing.B) {
	comp := mustCompile(b, crowdsaleSrc)
	for i := 0; i < b.N; i++ {
		Run(comp, Options{Strategy: MuFuzz(), Seed: int64(i), Iterations: 400})
	}
}

func BenchmarkCampaignWithoutPrefixCache(b *testing.B) {
	comp := mustCompile(b, crowdsaleSrc)
	for i := 0; i < b.N; i++ {
		Run(comp, Options{Strategy: MuFuzz(), Seed: int64(i), Iterations: 400, NoPrefixCache: true})
	}
}
