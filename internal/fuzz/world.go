package fuzz

import (
	"math/rand"

	"mufuzz/internal/state"
)

// AttackerModel synthesizes fuzzer-controlled attacker contracts. The model
// owns an opaque encoded spec — which victim selector the attacker re-enters
// from its callback, with what calldata, to what depth, whether it reverts —
// that rides on the sequence anchor (TxInput.Attacker) as ordinary seed
// material: mutated by the campaign, hashed by the checkpoint cache, and
// serialized byte-for-byte into snapshots and transcripts. Compile turns a
// spec into deployable runtime bytecode; the executor installs it at the
// attacker account before replaying a sequence.
//
// The concrete implementation lives in internal/world (the template
// compiler); the fuzz engine depends only on this seam, mirroring Target.
type AttackerModel interface {
	// Default returns the initial encoded spec for fresh seeds.
	Default() []byte
	// Mutate derives a new encoded spec from enc using rng. It must not
	// modify enc (specs are shared across cloned sequences).
	Mutate(enc []byte, rng *rand.Rand) []byte
	// Compile lowers an encoded spec to runtime bytecode. Invalid or empty
	// specs compile to nil: the attacker stays a plain EOA.
	Compile(enc []byte) []byte
}

// WorldMember is one secondary contract of a multi-contract world.
type WorldMember struct {
	// Name qualifies the member's functions in sequences ("bank.withdraw");
	// it must be unique, non-empty, and contain no whitespace.
	Name string
	// Target is the member's fuzzable target (minisol or ingested).
	Target Target
	// Addr optionally pins the member's deployment address (zero = the
	// campaign assigns WorldMemberAddr(i)). Pinned addresses let ingest's
	// recovered inter-contract links (PUSH20 immediates) resolve to members.
	Addr state.Address
}

// WorldOptions turns a campaign into a multi-contract adversarial world:
// the primary target plus Members all deploy into one shared genesis state,
// sequences carry a callee index per transaction, and — when Attacker is
// set — the reentrant-attacker native is replaced by synthesized attacker
// bytecode whose behavior is mutated seed material. World campaigns also
// switch the RE/UD/EF oracles to witnessed mode: findings require a real
// cross-contract schedule in the trace (plus a state-divergence check for
// reentrancy), not a taint shape.
type WorldOptions struct {
	Members  []WorldMember
	Attacker AttackerModel
}

// LinkedTarget is the optional Target capability of targets that can
// recover deployment addresses referenced by their bytecode — PUSH20
// immediates and trailing constructor-argument words (internal/ingest
// implements it). The campaign uses recovered links to extend the paper's
// §IV-A write→read dependency ordering across contracts: a member whose
// code calls into another member is sequenced after it.
type LinkedTarget interface {
	LinkedAddresses() []state.Address
}

// WorldMemberAddr is the default deployment address of secondary member i
// (0-based): stable across runs, disjoint from the identity set (deployer,
// users, attacker, primary contract).
func WorldMemberAddr(i int) state.Address {
	return state.AddressFromUint(0xc100 + uint64(i))
}

// worldEmpty reports whether w adds nothing over a plain campaign; such
// options are normalized away so a "world" of one contract with attacker
// synthesis off is byte-identical to the single-contract engine.
func worldEmpty(w *WorldOptions) bool {
	return w == nil || (len(w.Members) == 0 && w.Attacker == nil)
}
