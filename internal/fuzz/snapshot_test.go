package fuzz

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mufuzz/internal/corpus"
	"mufuzz/internal/minisol"
)

// recordingObserver collects per-execution records for equality checks.
type recordingObserver struct {
	records []ExecRecord
}

func (r *recordingObserver) OnExec(rec ExecRecord) { r.records = append(r.records, rec) }

func compileT(t *testing.T, src string) *minisol.Compiled {
	t.Helper()
	comp, err := minisol.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return comp
}

// TestSnapshotResumeFingerprint proves the core resume property at the fuzz
// level: a campaign paused at a round boundary, snapshotted through the full
// encode→decode round trip, and resumed, finishes with exactly the result an
// uninterrupted campaign produces — coverage, findings, PoCs, counters,
// timeline, and the per-execution record stream.
func TestSnapshotResumeFingerprint(t *testing.T) {
	for _, workers := range []int{1, 4} {
		opts := Options{
			Strategy:   MuFuzz(),
			Seed:       3,
			Iterations: 600,
			Workers:    workers,
		}

		comp := compileT(t, corpus.CrowdsaleBuggy())
		fullObs := &recordingObserver{}
		fullOpts := opts
		fullOpts.Observer = fullObs
		full := NewCampaign(comp, fullOpts)
		fullRes := full.Run()
		want := resultFingerprint(fullRes)

		pausedObs := &recordingObserver{}
		pausedOpts := opts
		pausedOpts.Observer = pausedObs
		paused := NewCampaign(comp, pausedOpts)
		if _, done := paused.RunSlice(context.Background(), 3); done {
			t.Fatalf("workers=%d: campaign finished before the pause point; grow the budget", workers)
		}

		var buf bytes.Buffer
		if err := paused.Snapshot().Encode(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		snap, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		// The encoding must be stable: re-encoding the decoded snapshot
		// reproduces the bytes.
		if !bytes.Equal(snap.EncodeBytes(), buf.Bytes()) {
			t.Fatalf("workers=%d: snapshot encode/decode/encode is not byte-stable", workers)
		}

		resumed, err := ResumeCampaign(comp, snap)
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		resumed.SetObserver(pausedObs)
		resumedRes := resumed.Run()

		if got := resultFingerprint(resumedRes); got != want {
			t.Errorf("workers=%d: resumed result diverged from uninterrupted run\n--- want\n%s\n--- got\n%s", workers, want, got)
		}
		if len(pausedObs.records) != len(fullObs.records) {
			t.Fatalf("workers=%d: record count %d != uninterrupted %d", workers, len(pausedObs.records), len(fullObs.records))
		}
		for i := range fullObs.records {
			w, g := fullObs.records[i], pausedObs.records[i]
			if w.Index != g.Index || w.CoveredAfter != g.CoveredAfter || w.NestedDepth != g.NestedDepth ||
				w.DistImproved != g.DistImproved || len(w.NewEdges) != len(g.NewEdges) ||
				len(w.NewClasses) != len(g.NewClasses) || w.Seq.String() != g.Seq.String() {
				t.Fatalf("workers=%d: record %d diverged:\nwant %+v\ngot  %+v", workers, i, w, g)
			}
		}
	}
}

// TestSnapshotResumeAcrossManySlices drives a campaign as a scheduler would
// — many short slices with a snapshot/restore round trip between every pair
// — and checks the final result still matches the uninterrupted run.
func TestSnapshotResumeAcrossManySlices(t *testing.T) {
	opts := Options{Strategy: MuFuzz(), Seed: 11, Iterations: 400, Workers: 1}
	comp := compileT(t, corpus.Crowdsale())

	want := resultFingerprint(NewCampaign(comp, opts).Run())

	c := NewCampaign(comp, opts)
	for hops := 0; ; hops++ {
		if hops > 500 {
			t.Fatal("campaign did not finish in 500 slices")
		}
		_, done := c.RunSlice(context.Background(), 1)
		if done {
			break
		}
		snap, err := DecodeSnapshot(bytes.NewReader(c.Snapshot().EncodeBytes()))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if c, err = ResumeCampaign(comp, snap); err != nil {
			t.Fatalf("resume: %v", err)
		}
	}
	res, _ := c.RunSlice(context.Background(), 0)
	if got := resultFingerprint(res); got != want {
		t.Errorf("slice-hopped result diverged\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestSnapshotRejectsNewerVersion pins forward compatibility: a snapshot
// whose header claims a version this build does not know must be rejected
// with an error that tells the operator to upgrade — not silently
// misparsed as whatever the current decoder expects.
func TestSnapshotRejectsNewerVersion(t *testing.T) {
	comp := compileT(t, corpus.Crowdsale())
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 1, Iterations: 200, Workers: 1})
	if _, done := c.RunSlice(context.Background(), 2); done {
		t.Fatal("campaign finished before the pause point")
	}
	enc := c.Snapshot().EncodeBytes()
	future := bytes.Replace(enc, []byte(" v3\n"), []byte(" v4\n"), 1)
	if bytes.Equal(future, enc) {
		t.Fatal("header rewrite did not take; encoder format changed?")
	}
	_, err := DecodeSnapshot(bytes.NewReader(future))
	if err == nil {
		t.Fatal("v4 snapshot decoded without error")
	}
	if !strings.Contains(err.Error(), "newer mufuzz") {
		t.Fatalf("v4 rejection should name the cause, got: %v", err)
	}
}

// TestSnapshotDecodesV1 pins backward compatibility: a v1 snapshot — strategy
// line without the cmpfeed/dict fields, no cmpop records — must still decode,
// with the comparison-feedback flags off (they postdate the format) and
// resume into a runnable campaign.
func TestSnapshotDecodesV1(t *testing.T) {
	comp := compileT(t, corpus.Crowdsale())
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 1, Iterations: 200, Workers: 1})
	if _, done := c.RunSlice(context.Background(), 2); done {
		t.Fatal("campaign finished before the pause point")
	}
	// Transform the current encoding into the exact v1 shape.
	var v1 bytes.Buffer
	for _, line := range strings.SplitAfter(string(c.Snapshot().EncodeBytes()), "\n") {
		switch {
		case strings.HasPrefix(line, "mufuzz-snapshot v"):
			v1.WriteString("mufuzz-snapshot v1\n")
		case strings.HasPrefix(line, "detector "):
			v1.WriteString(strings.Replace(line, " valueout=0", "", 1))
		case strings.HasPrefix(line, "strategy "):
			v1.WriteString(strings.Replace(line, " cmpfeed=1 dict=1", "", 1))
		case strings.HasPrefix(line, "cmpop "):
			// v1 had no operand table
		default:
			v1.WriteString(line)
		}
	}
	snap, err := DecodeSnapshot(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("v1 snapshot failed to decode: %v", err)
	}
	if snap.Options.Strategy.CmpFeedback || snap.Options.Strategy.MinedDictionary {
		t.Error("v1 snapshot must resume with the comparison-feedback flags off")
	}
	if len(snap.CmpOps) != 0 {
		t.Errorf("v1 snapshot decoded %d cmpop records from nowhere", len(snap.CmpOps))
	}
	resumed, err := ResumeCampaign(comp, snap)
	if err != nil {
		t.Fatalf("resume from v1: %v", err)
	}
	if res, done := resumed.RunSlice(context.Background(), 0); !done || res.Executions == 0 {
		t.Error("campaign resumed from v1 snapshot did not run to completion")
	}
}

// TestSnapshotRejectsWrongContract pins the code-hash guard.
func TestSnapshotRejectsWrongContract(t *testing.T) {
	compA := compileT(t, corpus.Crowdsale())
	compB := compileT(t, corpus.Game())
	c := NewCampaign(compA, Options{Strategy: MuFuzz(), Seed: 1, Iterations: 50})
	c.RunSlice(context.Background(), 1)
	if _, err := ResumeCampaign(compB, c.Snapshot()); err == nil {
		t.Fatal("resume with mismatched contract code must fail")
	}
}

// TestRunCtxCancellation pins the satellite behavior: a cancelled context
// stops the campaign cleanly before budget exhaustion, state stays
// snapshot-consistent, and a resume completes deterministically (resuming
// twice from the same snapshot gives identical results).
func TestRunCtxCancellation(t *testing.T) {
	comp := compileT(t, corpus.Crowdsale())
	opts := Options{Strategy: MuFuzz(), Seed: 5, Iterations: 5000, Workers: 1}

	ctx, cancel := context.WithCancel(context.Background())
	cancelAfter := &cancellingObserver{cancel: cancel, after: 120}
	withObs := opts
	withObs.Observer = cancelAfter
	c := NewCampaign(comp, withObs)
	res := c.RunCtx(ctx)
	if res.Executions >= opts.Iterations {
		t.Fatalf("cancellation did not stop the campaign early (execs=%d)", res.Executions)
	}

	snapBytes := c.Snapshot().EncodeBytes()
	run := func() string {
		snap, err := DecodeSnapshot(bytes.NewReader(snapBytes))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		rc, err := ResumeCampaign(comp, snap)
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		return resultFingerprint(rc.Run())
	}
	if a, b := run(), run(); a != b {
		t.Errorf("resuming twice from one snapshot diverged\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// cancellingObserver cancels a context after a fixed number of executions —
// a deterministic stand-in for an external SIGINT.
type cancellingObserver struct {
	cancel context.CancelFunc
	after  int
	seen   int
}

func (c *cancellingObserver) OnExec(ExecRecord) {
	c.seen++
	if c.seen == c.after {
		c.cancel()
	}
}

// TestInjectSequences pins corpus cross-pollination: injected sequences are
// sanitized, executed against the budget, and interesting ones join the
// queue.
func TestInjectSequences(t *testing.T) {
	comp := compileT(t, corpus.Crowdsale())
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 1, Iterations: 500})
	res, _ := c.RunSlice(context.Background(), 1)
	before := res.Executions

	donor := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 99, Iterations: 300})
	donor.Run()
	seqs := donor.QueueSequences()
	if len(seqs) == 0 {
		t.Fatal("donor campaign produced no queue seeds")
	}
	// Also check a hostile sequence is rejected rather than executed.
	bad := Sequence{{Func: "no_such_function"}}
	n := c.InjectSequences(append([]Sequence{bad}, seqs...))
	if n == 0 {
		t.Fatal("no donor sequences executed")
	}
	if n > len(seqs) {
		t.Fatalf("hostile sequence executed: %d > %d", n, len(seqs))
	}
	res2, _ := c.RunSlice(context.Background(), 0)
	if res2.Executions <= before {
		t.Fatal("injection did not count executions")
	}
	// Round-trip of the exchange payload format.
	enc := EncodeSequence(seqs[0])
	dec, err := DecodeSequence(enc)
	if err != nil {
		t.Fatalf("decode sequence: %v", err)
	}
	if !bytes.Equal(EncodeSequence(dec), enc) {
		t.Fatal("sequence encode/decode round trip not stable")
	}
}
