package fuzz

import "math/rand"

// countedSource wraps the standard math/rand source with a draw counter,
// making the coordinator rng serializable: its state is exactly the pair
// (Seed, draws), and a resumed campaign rebuilds it by re-seeding and
// discarding draws values. Campaign snapshots depend on the counter being a
// complete capture of the rng, which holds because the coordinator only uses
// rand.Rand methods that consume source draws without buffering inside the
// Rand (Int63/Intn/Shuffle and fillBytes; never rand.Rand.Read).
//
// The wrapper implements rand.Source64, so rand.New takes the same internal
// path it takes for the bare rand.NewSource value and the generated stream is
// unchanged — golden fingerprints recorded against the unwrapped source stay
// valid.
type countedSource struct {
	src   rand.Source64
	draws uint64
}

// newCountedSource builds a source seeded with seed and fast-forwarded by
// draws values — the resume path. A fresh campaign passes draws=0.
func newCountedSource(seed int64, draws uint64) *countedSource {
	src := rand.NewSource(seed).(rand.Source64)
	for i := uint64(0); i < draws; i++ {
		// Int63 and Uint64 both advance the underlying generator by exactly
		// one step, so discarding through either replays the same stream.
		src.Uint64()
	}
	return &countedSource{src: src, draws: draws}
}

func (s *countedSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countedSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed is required by rand.Source but would invalidate the draw counter;
// the engine never reseeds mid-campaign.
func (s *countedSource) Seed(int64) {
	panic("fuzz: countedSource cannot be reseeded")
}
