package fuzz

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
	"mufuzz/internal/u256"
)

const crowdsaleSrc = `
contract Crowdsale {
    uint256 phase = 0;
    uint256 goal;
    uint256 invested;
    address owner;
    mapping(address => uint256) invests;

    constructor() public {
        goal = 100 ether;
        invested = 0;
        owner = msg.sender;
    }
    function invest(uint256 donations) public payable {
        if (invested < goal) {
            invests[msg.sender] += donations;
            invested += donations;
            phase = 0;
        } else {
            phase = 1;
        }
    }
    function refund() public {
        if (phase == 0) {
            msg.sender.transfer(invests[msg.sender]);
            invests[msg.sender] = 0;
        }
    }
    function withdraw() public {
        if (phase == 1) {
            owner.transfer(invested);
        }
    }
}`

func mustCompile(t testing.TB, src string) *minisol.Compiled {
	t.Helper()
	comp, err := minisol.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

// --- Stream round trip ---

func TestStreamRoundTrip(t *testing.T) {
	f := func(args []byte, v uint64) bool {
		tx := TxInput{Func: "f", Args: args, Value: u256.New(v)}
		s := tx.Stream()
		var back TxInput
		back.SetStream(s)
		if len(args) == 0 {
			if len(back.Args) != 0 {
				return false
			}
		} else {
			if len(back.Args) != len(args) {
				return false
			}
			for i := range args {
				if back.Args[i] != args[i] {
					return false
				}
			}
		}
		return back.Value.Eq(u256.New(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetStreamShort(t *testing.T) {
	var tx TxInput
	tx.SetStream([]byte{1, 2, 3})
	if len(tx.Args) != 0 {
		t.Error("short stream should have no args")
	}
	if !tx.Value.Eq(u256.New(0x010203)) {
		t.Errorf("value = %s", tx.Value)
	}
}

// --- Mutation operators ---

func TestApplyMutationOperators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pool := defaultValuePool()
	base := make([]byte, 64)

	ov := ApplyMutation(base, MutOverwrite, 4, 10, rng, pool)
	if len(ov) != 64 {
		t.Errorf("overwrite changed length: %d", len(ov))
	}
	ins := ApplyMutation(base, MutInsert, 4, 10, rng, pool)
	if len(ins) != 68 {
		t.Errorf("insert length = %d, want 68", len(ins))
	}
	del := ApplyMutation(base, MutDelete, 4, 10, rng, pool)
	if len(del) != 60 {
		t.Errorf("delete length = %d, want 60", len(del))
	}
	rep := ApplyMutation(base, MutReplace, 32, 0, rng, pool)
	if len(rep) != 64 {
		t.Errorf("replace changed length: %d", len(rep))
	}
}

func TestApplyMutationBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := defaultValuePool()
	// Mutations at/after the end must not panic.
	for _, x := range []MutType{MutOverwrite, MutInsert, MutReplace, MutDelete} {
		for _, i := range []int{0, 5, 63, 64, 100} {
			out := ApplyMutation(make([]byte, 64), x, 8, i, rng, pool)
			_ = out
		}
		// empty stream
		ApplyMutation(nil, x, 1, 0, rng, pool)
	}
}

func TestWriteWordAt(t *testing.T) {
	s := make([]byte, 64)
	out := WriteWordAt(s, 40, u256.New(0xbeef))
	// aligned to 32: word starts at 32
	if out[63] != 0xef || out[62] != 0xbe {
		t.Errorf("word not written: %x", out[32:])
	}
	for i := 0; i < 32; i++ {
		if out[i] != 0 {
			t.Error("first word must be untouched")
		}
	}
}

func TestNudgeWordAt(t *testing.T) {
	s := make([]byte, 32)
	s[31] = 10
	up := NudgeWordAt(s, 0, 5)
	if up[31] != 15 {
		t.Errorf("nudge +5 = %d", up[31])
	}
	down := NudgeWordAt(s, 0, -3)
	if down[31] != 7 {
		t.Errorf("nudge -3 = %d", down[31])
	}
}

// --- Mask semantics (Algorithm 2) ---

func TestMaskOKSemantics(t *testing.T) {
	m := NewEmptyMask(8)
	if m.OK(MutOverwrite, 3) {
		t.Error("empty mask must deny")
	}
	m.Allow(3, MutOverwrite)
	if !m.OK(MutOverwrite, 3) {
		t.Error("allowed position denied")
	}
	if m.OK(MutInsert, 3) {
		t.Error("per-type permission must not leak")
	}
	// beyond-mask positions are permitted (inserted bytes)
	if !m.OK(MutDelete, 100) {
		t.Error("positions beyond the mask are free")
	}
	// nil mask permits everything
	var nilMask *Mask
	if !nilMask.OK(MutOverwrite, 0) {
		t.Error("nil mask must permit")
	}
}

func TestComputeMaskFreezesCriticalBytes(t *testing.T) {
	// Property: byte 0 must stay 0x42 — the probe rejects any stream where
	// it changed. The mask must deny overwriting byte 0 but generally allow
	// overwriting a don't-care byte.
	rng := rand.New(rand.NewSource(7))
	stream := make([]byte, 32)
	stream[0] = 0x42
	mask := ComputeMask(stream, rng, defaultValuePool(), func(s []byte) bool {
		return len(s) > 0 && s[0] == 0x42
	})
	if mask.OK(MutOverwrite, 0) {
		// Overwrite at 0 with a random byte preserved 0x42 only with
		// probability 1/256; if the probe passed, the mask is honest; retry
		// with a different rng would fix it. Treat as failure.
		t.Error("critical byte 0 should be frozen for overwrite")
	}
	if mask.OK(MutDelete, 0) {
		t.Error("deleting byte 0 shifts the critical byte; must be frozen")
	}
	// Tail bytes don't affect the property: overwrite should be allowed.
	allowedTail := 0
	for i := 16; i < 32; i++ {
		if mask.OK(MutOverwrite, i) {
			allowedTail++
		}
	}
	if allowedTail == 0 {
		t.Error("don't-care bytes should be mutable")
	}
}

func TestComputeMaskPropertyNeverViolatedByMaskedMutations(t *testing.T) {
	// Property-based: for random critical positions, a mutation permitted by
	// the mask, when re-applied with the same operator class at that
	// position, keeps the probe property in the large majority of cases.
	// (The mask is approximate — Algorithm 2 probes one sample — so we check
	// the frozen positions rather than the allowed ones.)
	rng := rand.New(rand.NewSource(11))
	stream := make([]byte, 48)
	for i := range stream {
		stream[i] = byte(i)
	}
	critical := 5
	probe := func(s []byte) bool { return len(s) > critical && s[critical] == byte(critical) }
	mask := ComputeMask(stream, rng, defaultValuePool(), probe)
	if mask.OK(MutOverwrite, critical) {
		t.Error("critical byte should be frozen")
	}
}

// --- Sequence mutation invariants ---

func TestSequenceMutationKeepsCtorFirst(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 3})
	sm := &seqMutator{
		strategy:   MuFuzz(),
		repeatable: c.repeatable,
		callable:   c.callableFuncs(),
	}
	seq := c.initialSequence()
	for i := 0; i < 200; i++ {
		seq = sm.mutateSequence(seq, c.rng, c.newTx, 8)
		if seq[0].Func != minisol.CtorName {
			t.Fatalf("iteration %d: ctor displaced: %s", i, seq)
		}
		if len(seq) == 0 {
			t.Fatal("sequence emptied")
		}
	}
}

func TestRAWRepetitionProducesConsecutiveCalls(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 5})
	sm := &seqMutator{
		strategy:   MuFuzz(),
		repeatable: c.repeatable,
		callable:   c.callableFuncs(),
	}
	// run many mutations; eventually invest must appear twice consecutively
	found := false
	for trial := 0; trial < 100 && !found; trial++ {
		seq := c.initialSequence()
		for i := 0; i < 10; i++ {
			seq = sm.mutateSequence(seq, c.rng, c.newTx, 8)
		}
		for i := 1; i < len(seq)-1; i++ {
			if seq[i].Func == "invest" && seq[i+1].Func == "invest" {
				found = true
			}
		}
	}
	if !found {
		t.Error("sequence-aware mutation never produced consecutive invest calls")
	}
}

// --- End-to-end campaigns ---

// withdrawBugReached checks whether the phase==1 branch inside withdraw was
// covered — the paper's motivating deep branch.
func withdrawBugReached(t *testing.T, comp *minisol.Compiled, res *Result, c *Campaign) bool {
	t.Helper()
	// find the if-site inside withdraw
	var pc uint64
	found := false
	for _, s := range comp.Branches {
		if s.Func == "withdraw" && s.Kind == minisol.BranchIf {
			pc, found = s.PC, true
		}
	}
	if !found {
		t.Fatal("withdraw if-site missing")
	}
	// codegen emits ISZERO-JUMPI: the bug branch is the NOT-taken direction
	// (condition true → ISZERO false → no jump).
	for key := range c.Covered() {
		if key.PC == pc && !key.Taken {
			return true
		}
	}
	return false
}

func TestMuFuzzCracksCrowdsale(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 42, Iterations: 1500})
	res := c.Run()
	if !withdrawBugReached(t, comp, res, c) {
		t.Errorf("MuFuzz failed to reach the withdraw deep branch (coverage %.0f%%)", res.Coverage*100)
	}
	if res.Coverage < 0.7 {
		t.Errorf("coverage = %.2f, want >= 0.7", res.Coverage)
	}
}

func TestSFuzzStrategyMissesDeepBranchOnSmallBudget(t *testing.T) {
	// The motivating claim (§III-B): random-sequence fuzzers cannot reach
	// the branch that needs invest→invest ordering in a comparable budget.
	comp := mustCompile(t, crowdsaleSrc)
	missed := 0
	for seed := int64(1); seed <= 3; seed++ {
		c := NewCampaign(comp, Options{Strategy: SFuzz(), Seed: seed, Iterations: 400})
		res := c.Run()
		if !withdrawBugReached(t, comp, res, c) {
			missed++
		}
		_ = res
	}
	if missed == 0 {
		t.Error("sFuzz strategy cracked the deep branch on every small budget; gap vs MuFuzz not demonstrated")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	r1 := Run(comp, Options{Strategy: MuFuzz(), Seed: 9, Iterations: 300})
	r2 := Run(comp, Options{Strategy: MuFuzz(), Seed: 9, Iterations: 300})
	if r1.CoveredEdges != r2.CoveredEdges || r1.Executions != r2.Executions {
		t.Errorf("campaign not deterministic: %d/%d vs %d/%d edges/execs",
			r1.CoveredEdges, r1.Executions, r2.CoveredEdges, r2.Executions)
	}
}

func TestCampaignRespectsIterationBudget(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	res := Run(comp, Options{Strategy: MuFuzz(), Seed: 1, Iterations: 123})
	if res.Executions > 123+4 { // small overshoot for in-flight energy loop is not allowed
		t.Errorf("executions = %d, budget 123", res.Executions)
	}
}

func TestGameValueGuardCracked(t *testing.T) {
	src := `
contract Game {
    mapping(address => uint256) balance;
    function guessNum(uint256 number) public payable {
        uint256 random = keccak256(block.timestamp, now) % 200;
        require(msg.value == 88 finney);
        if (number < random) {
            uint256 luckyNum = number % 2;
            if (luckyNum == 0) {
                balance[msg.sender] += msg.value * 10;
            } else {
                balance[msg.sender] += msg.value * 5;
            }
        }
    }
}`
	comp := mustCompile(t, src)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 7, Iterations: 1500})
	res := c.Run()
	// passing the msg.value == 88 finney guard means the require's
	// not-taken edge got covered and the nested ifs were reached
	var requirePC uint64
	for _, s := range comp.Branches {
		if s.Kind == minisol.BranchRequire && s.Func == "guessNum" {
			requirePC = s.PC
		}
	}
	passed := false
	for key := range c.Covered() {
		if key.PC == requirePC && !key.Taken {
			passed = true
		}
	}
	if !passed {
		t.Errorf("MuFuzz failed to satisfy msg.value == 88 finney (coverage %.0f%%)", res.Coverage*100)
	}
	// the nested branch should yield a BD finding (timestamp-derived random)
	if !res.BugClasses[oracle.BD] {
		t.Error("BD not detected in Game")
	}
}

func TestEnergyScalesWithWeights(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 1, Iterations: 200})
	c.Run()
	light := &Seed{PathWeight: 0}
	heavy := &Seed{PathWeight: 1e6}
	if c.energyFor(heavy) <= c.energyFor(light) {
		t.Error("heavier seeds must receive more energy")
	}
	// uniform when dynamic energy is off
	c2 := NewCampaign(comp, Options{Strategy: SFuzz(), Seed: 1, Iterations: 50})
	c2.Run()
	if c2.energyFor(heavy) != c2.energyFor(light) {
		t.Error("sFuzz energy must be uniform")
	}
}

func TestReentrancyFoundByCampaign(t *testing.T) {
	src := `
contract Vault {
    mapping(address => uint256) bal;
    function deposit() public payable { bal[msg.sender] += msg.value; }
    function withdraw() public {
        uint256 amount = bal[msg.sender];
        if (amount > 0) {
            require(msg.sender.call.value(amount)());
            bal[msg.sender] = 0;
        }
    }
}`
	comp := mustCompile(t, src)
	res := Run(comp, Options{Strategy: MuFuzz(), Seed: 3, Iterations: 1200})
	if !res.BugClasses[oracle.RE] {
		t.Errorf("reentrancy not found; classes = %v", res.BugClasses)
	}
}

func TestTimelineMonotonic(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	res := Run(comp, Options{Strategy: MuFuzz(), Seed: 2, Iterations: 600})
	if len(res.Timeline) == 0 {
		t.Fatal("timeline empty")
	}
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Coverage < res.Timeline[i-1].Coverage {
			t.Error("coverage must be monotonic")
		}
		if res.Timeline[i].Executions < res.Timeline[i-1].Executions {
			t.Error("executions must be monotonic")
		}
	}
}

func TestStrategyPresets(t *testing.T) {
	mu := MuFuzz()
	if !mu.RAWRepetition || !mu.MutationMasking || !mu.DynamicEnergy {
		t.Error("MuFuzz must enable all components")
	}
	sf := SFuzz()
	if sf.DataflowSequences || sf.MutationMasking || sf.DynamicEnergy {
		t.Error("sFuzz must disable MuFuzz components")
	}
	ab := Ablations()
	if len(ab) != 4 {
		t.Fatalf("ablations = %d", len(ab))
	}
	if ab[0].RAWRepetition || !ab[0].MutationMasking {
		t.Error("first ablation should disable only sequence-aware mutation")
	}
	if ab[1].MutationMasking || !ab[1].RAWRepetition {
		t.Error("second ablation should disable only masking")
	}
	if ab[2].DynamicEnergy || !ab[2].MutationMasking {
		t.Error("third ablation should disable only dynamic energy")
	}
	if ab[3].CmpFeedback || ab[3].MinedDictionary || !ab[3].MutationMasking {
		t.Error("fourth ablation should disable only comparison feedback")
	}
	if !mu.CmpFeedback || !mu.MinedDictionary {
		t.Error("MuFuzz must enable comparison feedback and mined dictionary")
	}
}

func BenchmarkCampaignCrowdsale200(b *testing.B) {
	comp := mustCompile(b, crowdsaleSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(comp, Options{Strategy: MuFuzz(), Seed: int64(i), Iterations: 200})
	}
}
