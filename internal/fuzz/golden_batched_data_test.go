package fuzz

// goldenBatchedFingerprints pins the observable behavior of the batched
// engine — the coordinator/executor schedule that is a pure function of
// Options.Seed, independent of worker count. Captured from the fork-join
// barrier engine (pre-pipeline, PR 6); the pipelined engine must reproduce
// every byte at any worker count, and the barrier engine itself stays
// available as the Options.NoPipeline ablation pinned to the same strings.
// One fingerprint per campaign suffices because workers=1 and workers=N are
// asserted equal to it separately. Regenerate with MUFUZZ_GOLDEN_REGEN=1
// only after an intentional schedule change.
var goldenBatchedFingerprints = map[string]string{
	"crowdsale-seed1": `strategy=MuFuzz covered=21/24 cov=0.875000 execs=300 queue=8 masks=4 seqmut=74
findings=[IO@130:ADD wraps mod 2^256 and the result persists; IO@152:ADD wraps mod 2^256 and the result persists]
classes=[IO]
repro=[IO:__ctor>invest>invest]
t 1 0.541667
t 3 0.583333
t 5 0.625000
t 25 0.666667
t 34 0.833333
t 163 0.875000
`,
	"crowdsale-seed7": `strategy=MuFuzz covered=21/24 cov=0.875000 execs=300 queue=9 masks=2 seqmut=82
findings=[IO@130:ADD wraps mod 2^256 and the result persists; IO@152:ADD wraps mod 2^256 and the result persists]
classes=[IO]
repro=[IO:__ctor>invest>invest]
t 1 0.541667
t 9 0.583333
t 14 0.625000
t 23 0.791667
t 103 0.833333
t 158 0.875000
`,
	"crowdsale-buggy-seed1": `strategy=MuFuzz covered=22/26 cov=0.846154 execs=300 queue=11 masks=4 seqmut=71
findings=[BD@283:block state (timestamp/number) influences a branch or call; BD@288:block state (timestamp/number) influences a branch or call]
classes=[BD]
repro=[BD:__ctor>invest>invest>refund>withdraw]
t 1 0.500000
t 3 0.538462
t 5 0.576923
t 25 0.615385
t 37 0.653846
t 47 0.692308
t 58 0.807692
t 62 0.846154
`,
}
