package fuzz

// goldenBatchedFingerprints pins the observable behavior of the batched
// engine — the coordinator/executor schedule that is a pure function of
// Options.Seed, independent of worker count. Captured from the fork-join
// barrier engine (pre-pipeline, PR 6); the pipelined engine must reproduce
// every byte at any worker count, and the barrier engine itself stays
// available as the Options.NoPipeline ablation pinned to the same strings.
// One fingerprint per campaign suffices because workers=1 and workers=N are
// asserted equal to it separately. Regenerate with MUFUZZ_GOLDEN_REGEN=1
// only after an intentional schedule change.
var goldenBatchedFingerprints = map[string]string{
	"crowdsale-seed1": `strategy=MuFuzz covered=21/24 cov=0.875000 execs=300 queue=10 masks=3 seqmut=85
findings=[]
classes=[]
repro=[]
t 1 0.541667
t 3 0.583333
t 5 0.625000
t 8 0.666667
t 36 0.708333
t 46 0.750000
t 57 0.833333
t 61 0.875000
`,
	"crowdsale-seed7": `strategy=MuFuzz covered=21/24 cov=0.875000 execs=300 queue=8 masks=4 seqmut=68
findings=[]
classes=[]
repro=[]
t 1 0.541667
t 9 0.583333
t 14 0.625000
t 23 0.791667
t 114 0.833333
t 270 0.875000
`,
	"crowdsale-buggy-seed1": `strategy=MuFuzz covered=21/26 cov=0.807692 execs=300 queue=8 masks=4 seqmut=85
findings=[BD@283:block state (timestamp/number) influences a branch or call; BD@288:block state (timestamp/number) influences a branch or call]
classes=[BD]
repro=[BD:__ctor>invest>invest>refund>withdraw]
t 1 0.500000
t 3 0.538462
t 5 0.576923
t 8 0.615385
t 66 0.653846
t 208 0.807692
`,
}
