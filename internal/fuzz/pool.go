package fuzz

import "sync"

// workerPool is the persistent executor pool of the pipelined batched engine.
// The barrier engine it replaces spawned fresh goroutines per energy round and
// joined them with a WaitGroup before folding anything; the pool keeps one
// goroutine pinned to each warmed-up executor for the whole campaign, fed
// through a bounded job queue, so rounds pay no spawn/teardown cost and the
// coordinator overlaps folding with execution.
//
// Determinism is unaffected by the pool: jobs carry a slot index and a
// completion channel, the coordinator re-sequences completions through its
// reorder buffer, and executors are pure (sequence in, outcome out — the
// cache-transparency invariant guarantees checkpoint cache contents never
// change semantic outcomes). Which worker runs which job, and in what order
// results land, is invisible in every observable output.
type workerPool struct {
	jobs chan poolJob
	wg   sync.WaitGroup
	// size is the number of worker goroutines — the dispatch width the
	// speculative line search uses as its window.
	size int
}

// poolJob is one execution request: run seq, write the outcome into *out, and
// signal idx on done. done channels are buffered to the full batch size by
// every dispatcher, so a worker's completion send never blocks — even when
// the coordinator has stopped draining a batch (a line search abandoning its
// speculative tail), the pool keeps flowing.
type poolJob struct {
	seq  Sequence
	out  *execOutcome
	idx  int
	done chan<- int
}

// newWorkerPool starts one goroutine per executor. The queue is bounded at a
// small multiple of the pool size: deep enough that workers never starve
// while the coordinator folds, shallow enough that a cancelled campaign has
// little queued work to drain.
func newWorkerPool(execs []*executor) *workerPool {
	p := &workerPool{
		jobs: make(chan poolJob, 4*len(execs)),
		size: len(execs),
	}
	for _, x := range execs {
		p.wg.Add(1)
		go func(x *executor) {
			defer p.wg.Done()
			for j := range p.jobs {
				*j.out = x.run(j.seq)
				j.done <- j.idx
			}
		}(x)
	}
	return p
}

// submit enqueues a job, blocking while the bounded queue is full.
func (p *workerPool) submit(j poolJob) { p.jobs <- j }

// shutdown closes the queue and joins every worker. The pool cannot be
// reused; RunSlice builds a fresh one per slice so no goroutines outlive a
// parked campaign.
func (p *workerPool) shutdown() {
	close(p.jobs)
	p.wg.Wait()
}
