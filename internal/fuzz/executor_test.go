package fuzz

import (
	"testing"

	"mufuzz/internal/oracle"
)

// TestExecutorPure pins the executor/coordinator contract: running the same
// sequence twice on detached executors yields identical outcomes and leaves
// campaign state untouched.
func TestExecutorPure(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 1})
	seq := c.initialSequence()

	covBefore := len(c.covered)
	execBefore := c.executions
	x1, x2 := c.exec.detached(), c.exec.detached()
	o1, o2 := x1.run(seq), x2.run(seq)
	if len(c.covered) != covBefore || c.executions != execBefore {
		t.Error("executor.run mutated campaign state")
	}
	if len(o1.branchesByTx) != len(o2.branchesByTx) || o1.nestedDepth != o2.nestedDepth ||
		len(o1.reports) != len(o2.reports) || o1.firstLive != o2.firstLive {
		t.Error("identical sequences produced different outcomes")
	}
	for i := range o1.branchesByTx {
		if len(o1.branchesByTx[i]) != len(o2.branchesByTx[i]) {
			t.Fatalf("tx %d: branch counts diverge", i)
		}
		for j := range o1.branchesByTx[i] {
			if o1.branchesByTx[i][j].Key() != o2.branchesByTx[i][j].Key() {
				t.Fatalf("tx %d branch %d: keys diverge", i, j)
			}
		}
	}
}

// TestExecutorTraceReuse pins that recycling the trace buffer across
// transactions does not leak events between executions.
func TestExecutorTraceReuse(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 3})
	x := c.exec.detached()
	seq := c.initialSequence()
	first := x.run(seq)
	// A constructor-only sequence covers strictly fewer branches; if the
	// trace leaked, stale branch events would still show up.
	short := Sequence{seq[0]}
	second := x.run(short)
	if len(second.branchesByTx) != 1 {
		t.Fatalf("constructor-only run produced %d tx batches", len(second.branchesByTx))
	}
	total := 0
	for _, b := range first.branchesByTx {
		total += len(b)
	}
	if len(second.branchesByTx[0]) >= total && total > len(first.branchesByTx[0]) {
		t.Error("trace reuse leaked branch events across executions")
	}
}

// TestParallelCampaignDeterministic pins the batched engine's determinism:
// for a fixed (Seed, Workers) pair the merge order makes results independent
// of goroutine scheduling.
func TestParallelCampaignDeterministic(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	opts := Options{Strategy: MuFuzz(), Seed: 11, Iterations: 600, Workers: 4}
	r1 := Run(comp, opts)
	r2 := Run(comp, opts)
	if r1.CoveredEdges != r2.CoveredEdges || r1.Executions != r2.Executions ||
		len(r1.Findings) != len(r2.Findings) || r1.SequencesMutated != r2.SequencesMutated ||
		r1.MasksComputed != r2.MasksComputed || r1.SeedQueueLen != r2.SeedQueueLen {
		t.Errorf("parallel campaign not deterministic:\n%+v\n%+v", r1, r2)
	}
	if len(r1.Timeline) != len(r2.Timeline) {
		t.Error("timelines diverge across identical parallel runs")
	}
}

// TestParallelCampaignRespectsBudget pins that batch dispatch never
// overshoots the iteration budget: batches are capped to the remaining
// budget and in-flight executions count against it.
func TestParallelCampaignRespectsBudget(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	res := Run(comp, Options{Strategy: MuFuzz(), Seed: 1, Iterations: 123, Workers: 4})
	if res.Executions > 123 {
		t.Errorf("executions = %d, budget 123", res.Executions)
	}
	if res.Executions < 100 {
		t.Errorf("executions = %d, campaign under-spent its budget", res.Executions)
	}
}

// TestParallelCampaignQuality checks the batched engine is the same fuzzer:
// it still cracks the Crowdsale deep branch and reports sane coverage.
func TestParallelCampaignQuality(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 42, Iterations: 1500, Workers: 4})
	res := c.Run()
	if !withdrawBugReached(t, comp, res, c) {
		t.Errorf("parallel MuFuzz failed to reach the withdraw deep branch (coverage %.0f%%)", res.Coverage*100)
	}
	if res.Coverage < 0.7 {
		t.Errorf("coverage = %.2f, want >= 0.7", res.Coverage)
	}
}

// TestParallelFindsReentrancy runs the batched engine over the reentrancy
// vault: detector splitting (worker-side Inspect, coordinator-side Absorb)
// must preserve bug detection.
func TestParallelFindsReentrancy(t *testing.T) {
	src := `
contract Vault {
    mapping(address => uint256) bal;
    function deposit() public payable { bal[msg.sender] += msg.value; }
    function withdraw() public {
        uint256 amount = bal[msg.sender];
        if (amount > 0) {
            require(msg.sender.call.value(amount)());
            bal[msg.sender] = 0;
        }
    }
}`
	comp := mustCompile(t, src)
	res := Run(comp, Options{Strategy: MuFuzz(), Seed: 3, Iterations: 1200, Workers: 4})
	if !res.BugClasses[oracle.RE] {
		t.Errorf("reentrancy not found by parallel engine; classes = %v", res.BugClasses)
	}
	if _, ok := res.Repro[oracle.RE]; !ok {
		t.Error("no proof-of-concept sequence recorded for RE")
	}
}

// TestWorkersDefaulting pins the Options.Workers contract.
func TestWorkersDefaulting(t *testing.T) {
	for _, tc := range []struct {
		in     int
		minOut int
	}{{0, 1}, {1, 1}, {3, 3}, {-1, 1}} {
		o := Options{Workers: tc.in}
		got := o.withDefaults().Workers
		if got < tc.minOut {
			t.Errorf("Workers %d defaulted to %d, want >= %d", tc.in, got, tc.minOut)
		}
	}
	if (&Options{}).withDefaults().Workers != 1 {
		t.Error("default engine must be the sequential one")
	}
}
