package fuzz

import (
	"math/rand"

	"mufuzz/internal/u256"
)

// MutType is one of the four mutation operators of paper §IV-B.
type MutType int

// Mutation operators: a mutation is a tuple m = (x, n) with x one of these
// types and n the number of affected bytes.
const (
	MutOverwrite MutType = iota // O: overwrite n bytes at position i
	MutInsert                   // I: insert n bytes at position i
	MutReplace                  // R: replace n bytes with interesting values
	MutDelete                   // D: delete n bytes at position i
	numMutTypes
)

func (m MutType) String() string {
	switch m {
	case MutOverwrite:
		return "O"
	case MutInsert:
		return "I"
	case MutReplace:
		return "R"
	case MutDelete:
		return "D"
	}
	return "?"
}

// Mask records, per byte position, which mutation types preserve the seed's
// target property (Algorithm 2). A nil Mask permits everything.
type Mask struct {
	allowed [][numMutTypes]bool
}

// NewEmptyMask returns a mask of the given length permitting nothing
// (INIT_EMPTY_MASK in Algorithm 2).
func NewEmptyMask(n int) *Mask {
	return &Mask{allowed: make([][numMutTypes]bool, n)}
}

// Allow marks mutation type x permitted at position i.
func (m *Mask) Allow(i int, x MutType) {
	if i >= 0 && i < len(m.allowed) {
		m.allowed[i][x] = true
	}
}

// OK implements OK_TO_MUTATE: whether applying x at position i is permitted.
// Positions beyond the mask (inserted later) are permitted.
func (m *Mask) OK(x MutType, i int) bool {
	if m == nil {
		return true
	}
	if i < 0 {
		return false
	}
	if i >= len(m.allowed) {
		return true
	}
	return m.allowed[i][x]
}

// AllowedCount returns how many (position, type) pairs are permitted.
func (m *Mask) AllowedCount() int {
	n := 0
	for _, a := range m.allowed {
		for _, ok := range a {
			if ok {
				n++
			}
		}
	}
	return n
}

// Len returns the mask length.
func (m *Mask) Len() int { return len(m.allowed) }

// fillBytes fills p with pseudo-random bytes drawn through rng.Int63, seven
// bytes per draw. Unlike rand.Rand.Read it leaves no buffered state inside
// the Rand, so a Rand used only through fillBytes and the arithmetic methods
// is fully described by its source — the property campaign snapshots rely on
// (see countedSource).
func fillBytes(rng *rand.Rand, p []byte) {
	for i := 0; i < len(p); i += 7 {
		v := rng.Int63()
		for j := 0; j < 7 && i+j < len(p); j++ {
			p[i+j] = byte(v >> uint(8*j))
		}
	}
}

// ApplyMutation applies mutation m=(x,n) to the stream at position i and
// returns the mutated copy (MUTATE(t, m, i) in the paper). pool supplies
// interesting values for the R operator. The input stream is not modified.
func ApplyMutation(stream []byte, x MutType, n, i int, rng *rand.Rand, pool []u256.Int) []byte {
	return applyMutation(append([]byte(nil), stream...), x, n, i, rng, pool)
}

// applyMutation is the in-place core of ApplyMutation: it takes ownership of
// out (the campaign hot path hands it a dead scratch stream, skipping the
// defensive copy) and consumes rng exactly the way the copying wrapper always
// has, so transcripts are unaffected by which entry point ran.
func applyMutation(out []byte, x MutType, n, i int, rng *rand.Rand, pool []u256.Int) []byte {
	if n < 1 {
		n = 1
	}
	if i < 0 {
		i = 0
	}
	switch x {
	case MutOverwrite:
		for k := 0; k < n && i+k < len(out); k++ {
			out[i+k] = byte(rng.Intn(256))
		}
	case MutInsert:
		if i > len(out) {
			i = len(out)
		}
		// Open an n-byte gap at i with one (at most) growth and fill it with
		// the same fillBytes draw the two-append splice used to produce.
		oldLen := len(out)
		out = append(out, make([]byte, n)...)
		copy(out[i+n:], out[i:oldLen])
		fillBytes(rng, out[i:i+n])
	case MutReplace:
		if len(pool) == 0 {
			// No interesting values to draw from (targets may supply an empty
			// dictionary): degrade to MutOverwrite instead of panicking on
			// Intn(0). The non-empty path below is untouched, so rng
			// consumption — and therefore every transcript — is unchanged
			// whenever a pool exists.
			for k := 0; k < n && i+k < len(out); k++ {
				out[i+k] = byte(rng.Intn(256))
			}
			return out
		}
		w := pool[rng.Intn(len(pool))].Bytes32()
		if n > 32 {
			n = 32
		}
		// replace with the least-significant end of the constant so small
		// values land in the low bytes of an ABI word
		for k := 0; k < n && i+k < len(out); k++ {
			out[i+k] = w[32-n+k]
		}
	case MutDelete:
		if i < len(out) {
			end := i + n
			if end > len(out) {
				end = len(out)
			}
			out = append(out[:i], out[end:]...)
		}
	}
	return out
}

// WriteWordAt overwrites the 32-byte word starting at the aligned position
// containing i with the given value — the distance-directed mutation that
// copies a comparison operand into an input word. The input is not modified.
func WriteWordAt(stream []byte, i int, v u256.Int) []byte {
	return writeWordAt(append([]byte(nil), stream...), i, v)
}

// writeWordAt is the in-place core of WriteWordAt (hot path; takes ownership).
func writeWordAt(out []byte, i int, v u256.Int) []byte {
	start := (i / 32) * 32
	w := v.Bytes32()
	for k := 0; k < 32 && start+k < len(out); k++ {
		out[start+k] = w[k]
	}
	return out
}

// WriteWordAtMasked is WriteWordAt restricted by a mutation mask: only bytes
// of the word whose position permits MutOverwrite are written. Comparison-
// operand splicing uses it to plant an observed operand without disturbing
// the frozen bytes that keep the seed on its target branch. A nil mask
// permits every position. The input is not modified.
func WriteWordAtMasked(stream []byte, i int, v u256.Int, mask *Mask) []byte {
	return writeWordAtMasked(append([]byte(nil), stream...), i, v, mask)
}

// writeWordAtMasked is the in-place core of WriteWordAtMasked (hot path;
// takes ownership).
func writeWordAtMasked(out []byte, i int, v u256.Int, mask *Mask) []byte {
	start := (i / 32) * 32
	w := v.Bytes32()
	for k := 0; k < 32 && start+k < len(out); k++ {
		if mask.OK(MutOverwrite, start+k) {
			out[start+k] = w[k]
		}
	}
	return out
}

// NudgeWordAt adds a small signed delta to the word at the aligned position
// containing i — the arithmetic descent step of distance-guided mutation. The
// input is not modified.
func NudgeWordAt(stream []byte, i int, delta int64) []byte {
	return nudgeWordAt(append([]byte(nil), stream...), i, delta)
}

// nudgeWordAt is the in-place core of NudgeWordAt (hot path; takes ownership).
func nudgeWordAt(out []byte, i int, delta int64) []byte {
	start := (i / 32) * 32
	end := start + 32
	if end > len(out) {
		end = len(out)
	}
	if start >= end {
		return out
	}
	w := u256.FromBytes(out[start:end])
	if delta >= 0 {
		w = w.Add(u256.New(uint64(delta)))
	} else {
		w = w.Sub(u256.New(uint64(-delta)))
	}
	b := w.Bytes32()
	copy(out[start:end], b[32-(end-start):])
	return out
}

// --- Algorithm 2: COMPUTE_MASK ---

// maskPositionBudget caps how many byte positions the mask scan probes (each
// position costs 4 executions). Probed positions are spread evenly across the
// stream; unprobed positions inherit the verdict of the nearest probed one.
const maskPositionBudget = 16

// ComputeMask implements Algorithm 2 for one transaction's byte stream.
// probe runs the candidate stream and reports whether the mutated seed still
// hits the target nested branch or still decreases the distance to an
// uncovered branch. Positions where a mutation type preserves the property
// are marked permitted for that type.
//
// Unlike the paper's unbounded scan, positions are stride-sampled so one
// mask costs at most 4*maskPositionBudget executions; in-between positions
// inherit the nearest probe's verdict. This keeps Algorithm 2 affordable
// under small iteration budgets while preserving its byte-freezing effect.
func ComputeMask(stream []byte, rng *rand.Rand, pool []u256.Int, probe func([]byte) bool) *Mask {
	mask := NewEmptyMask(len(stream))
	if len(stream) == 0 {
		return mask
	}
	n := rng.Intn(len(stream)) + 1 // m = (x, n): n drawn once, as in the paper
	if n > 32 {
		n = 32
	}
	stride := 1
	if len(stream) > maskPositionBudget {
		stride = (len(stream) + maskPositionBudget - 1) / maskPositionBudget
	}
	// One scratch buffer serves every probe: candidates only need to live
	// until probe returns (probes that retain bytes copy them via SetStream).
	var buf []byte
	for i := 0; i < len(stream); i += stride {
		var verdict [numMutTypes]bool
		for _, x := range []MutType{MutOverwrite, MutInsert, MutReplace, MutDelete} {
			buf = applyMutation(append(buf[:0], stream...), x, n, i, rng, pool)
			if probe(buf) {
				verdict[x] = true
			}
		}
		// the probed position and its stride neighborhood share the verdict
		for j := i; j < i+stride && j < len(stream); j++ {
			for x := MutType(0); x < numMutTypes; x++ {
				if verdict[x] {
					mask.Allow(j, x)
				}
			}
		}
	}
	return mask
}

// --- Sequence-level mutations (paper §IV-A) ---

// seqMutator applies strategy-dependent sequence mutations.
type seqMutator struct {
	strategy Strategy
	// repeatable are functions with a RAW dependency on a branch-read state
	// variable (from the dataflow analysis).
	repeatable []string
	// callable are all public function names (non-ctor).
	callable []string
}

// mutateSequence returns a mutated copy of the sequence. Element 0 (the
// constructor) is never moved or removed.
func (m *seqMutator) mutateSequence(seq Sequence, rng *rand.Rand, newTx func(fn string) TxInput, maxLen int) Sequence {
	out := seq.Clone()
	if len(out) <= 1 {
		if len(m.callable) > 0 {
			out = append(out, newTx(m.callable[rng.Intn(len(m.callable))]))
		}
		return out
	}

	type mutation int
	const (
		repeatRAW mutation = iota
		prolong
		shuffle
		replace
		resample
		dropTx
	)
	var choices []mutation
	if m.strategy.RAWRepetition && len(m.repeatable) > 0 {
		// sequence-aware mutation gets the highest share
		choices = append(choices, repeatRAW, repeatRAW, repeatRAW)
	}
	if m.strategy.Prolongation && len(out) < maxLen {
		// IR-Fuzz-style prolongation is the only other way a function can
		// appear twice; fuzzers without it build permutations, as the paper
		// observes for sFuzz/ConFuzzius/Smartian (§III-B).
		choices = append(choices, prolong)
	}
	if !m.strategy.DataflowSequences {
		// random-order fuzzers shuffle aggressively
		choices = append(choices, shuffle, shuffle)
	}
	choices = append(choices, replace, resample)
	if len(out) > 2 {
		choices = append(choices, dropTx)
	}

	switch choices[rng.Intn(len(choices))] {
	case repeatRAW:
		// enforce a RAW function to run consecutively: duplicate one of its
		// occurrences in place (invest → invest), or insert it if absent
		fn := m.repeatable[rng.Intn(len(m.repeatable))]
		idx := -1
		for i := 1; i < len(out); i++ {
			if out[i].Func == fn {
				idx = i
				break
			}
		}
		if idx < 0 {
			// not present: insert twice back-to-back after the ctor
			t1, t2 := newTx(fn), newTx(fn)
			rest := append(Sequence{t1, t2}, out[1:]...)
			out = append(out[:1], rest...)
		} else if len(out) < maxLen+2 {
			// single-growth splice: open one slot at idx+1 and drop the dup in
			dup := out[idx].Clone()
			oldLen := len(out)
			out = append(out, TxInput{})
			copy(out[idx+2:], out[idx+1:oldLen])
			out[idx+1] = dup
		}
	case prolong:
		out = append(out, newTx(m.callable[rng.Intn(len(m.callable))]))
	case shuffle:
		if len(out) > 2 {
			i := rng.Intn(len(out)-1) + 1
			j := rng.Intn(len(out)-1) + 1
			out[i], out[j] = out[j], out[i]
		}
	case replace:
		// Replace one transaction with a function NOT already present, so
		// plain replacement never duplicates a call — duplication is the
		// privilege of RAW repetition and prolongation.
		present := map[string]bool{}
		for _, t := range out {
			present[t.Func] = true
		}
		var missing []string
		for _, fn := range m.callable {
			if !present[fn] {
				missing = append(missing, fn)
			}
		}
		if len(missing) > 0 {
			i := rng.Intn(len(out)-1) + 1
			out[i] = newTx(missing[rng.Intn(len(missing))])
		} else if len(out) > 1 {
			// everything is present: fall back to resampling inputs
			i := rng.Intn(len(out)-1) + 1
			out[i] = newTx(out[i].Func)
		}
	case resample:
		// Fresh random inputs for one existing transaction.
		i := rng.Intn(len(out)-1) + 1
		out[i] = newTx(out[i].Func)
	case dropTx:
		i := rng.Intn(len(out)-1) + 1
		out = append(out[:i], out[i+1:]...)
	}
	return out
}
