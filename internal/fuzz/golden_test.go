package fuzz

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"mufuzz/internal/corpus"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
)

// resultFingerprint renders every deterministic field of a campaign result as
// a canonical string: coverage, executions, queue/mask/mutation counters,
// findings, proof-of-concept call orders, and the coverage timeline
// (wall-clock fields excluded). Two engines that produce the same fingerprint
// for a fixed (contract, Options) made identical decisions execution for
// execution.
func resultFingerprint(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy=%s covered=%d/%d cov=%.6f execs=%d queue=%d masks=%d seqmut=%d\n",
		res.Strategy, res.CoveredEdges, res.TotalEdges, res.Coverage,
		res.Executions, res.SeedQueueLen, res.MasksComputed, res.SequencesMutated)
	findings := make([]string, 0, len(res.Findings))
	for _, f := range res.Findings {
		findings = append(findings, fmt.Sprintf("%s@%d:%s", f.Class, f.PC, f.Description))
	}
	sort.Strings(findings)
	fmt.Fprintf(&b, "findings=[%s]\n", strings.Join(findings, "; "))
	classes := make([]string, 0, len(res.BugClasses))
	for c := range res.BugClasses {
		classes = append(classes, string(c))
	}
	sort.Strings(classes)
	fmt.Fprintf(&b, "classes=[%s]\n", strings.Join(classes, ","))
	repro := make([]string, 0, len(res.Repro))
	for class, seq := range res.Repro {
		funcs := make([]string, len(seq))
		for i, tx := range seq {
			funcs[i] = tx.Func
		}
		repro = append(repro, fmt.Sprintf("%s:%s", class, strings.Join(funcs, ">")))
	}
	sort.Strings(repro)
	fmt.Fprintf(&b, "repro=[%s]\n", strings.Join(repro, "; "))
	for _, tp := range res.Timeline {
		fmt.Fprintf(&b, "t %d %.6f\n", tp.Executions, tp.Coverage)
	}
	return b.String()
}

// goldenCampaigns are the configurations pinned by the equivalence test.
var goldenCampaigns = []struct {
	name   string
	source string
	seed   int64
	iters  int
}{
	{"crowdsale-seed1", corpus.Crowdsale(), 1, 300},
	{"crowdsale-seed7", corpus.Crowdsale(), 7, 300},
	{"crowdsale-buggy-seed1", corpus.CrowdsaleBuggy(), 1, 300},
}

func runGolden(t *testing.T, source string, seed int64, iters int) string {
	t.Helper()
	comp, err := minisol.Compile(source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res := Run(comp, Options{
		Strategy:   MuFuzz(),
		Seed:       seed,
		Iterations: iters,
		Workers:    1,
	})
	return resultFingerprint(res)
}

// TestGoldenCmpFeedbackOffLegacy pins the flag-off path: with CmpFeedback and
// MinedDictionary disabled (the "w/o comparison feedback" ablation) the
// campaign must reproduce, draw for draw, the fingerprints the engine produced
// before those features existed — only the strategy name differs. This is the
// guarantee that the feedback extension is purely additive.
func TestGoldenCmpFeedbackOffLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaigns are slow")
	}
	off := MuFuzz()
	off.Name = "MuFuzz w/o comparison feedback"
	off.CmpFeedback = false
	off.MinedDictionary = false
	for _, gc := range goldenCampaigns {
		t.Run(gc.name, func(t *testing.T) {
			comp, err := minisol.Compile(gc.source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			res := Run(comp, Options{
				Strategy:   off,
				Seed:       gc.seed,
				Iterations: gc.iters,
				Workers:    1,
			})
			got := resultFingerprint(res)
			want := strings.Replace(goldenLegacyFingerprints[gc.name],
				"strategy=MuFuzz ", "strategy="+off.Name+" ", 1)
			if got != want {
				t.Errorf("flag-off campaign diverged from the pre-feature engine\n--- want\n%s\n--- got\n%s", want, got)
			}
		})
	}
}

// TestGoldenWorkers1Equivalence pins the sequential engine's observable
// behavior: for a fixed seed the campaign must make exactly the decisions the
// pre-refactor deep-copy engine made (coverage, findings, timeline, PoCs, all
// counters). Regenerate goldens with MUFUZZ_GOLDEN_REGEN=1 after an
// intentional behavior change.
func TestGoldenWorkers1Equivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaigns are slow")
	}
	regen := os.Getenv("MUFUZZ_GOLDEN_REGEN") != ""
	for _, gc := range goldenCampaigns {
		t.Run(gc.name, func(t *testing.T) {
			got := runGolden(t, gc.source, gc.seed, gc.iters)
			want, ok := goldenFingerprints[gc.name]
			if regen || !ok {
				t.Logf("golden %q fingerprint:\n%s", gc.name, got)
				return
			}
			if got != want {
				t.Errorf("campaign diverged from pre-refactor engine\n--- want\n%s\n--- got\n%s", want, got)
			}
		})
	}
}

// _ = oracle keeps the import when goldens reference no class directly.
var _ = oracle.BugClass("")
