//go:build !race

package fuzz

const raceEnabled = false
