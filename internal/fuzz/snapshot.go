package fuzz

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"mufuzz/internal/evm"
	"mufuzz/internal/keccak"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// SnapshotVersion is the snapshot format version this package writes.
// Decoding accepts any version up to it: v1 snapshots (no comparison-feedback
// strategy flags, no operand-table records) load with those features off —
// exactly the semantics the campaign that wrote them had. Versions beyond it
// come from newer builds and are rejected rather than misparsed.
//
// v2: strategy line gained cmpfeed=/dict= fields; cmpop records serialize the
// per-uncovered-edge comparison operand tables.
//
// v3: multi-contract worlds. Tx lines grow optional callee/attacker fields
// (emitted only when set — single-contract sequences keep the 5-field form),
// world/worldmember records pin the campaign's member set and attacker mode,
// and the detector line carries the witnessed value-out aggregate.
const SnapshotVersion = 3

// snapshotMagic is the first token of every encoded snapshot.
const snapshotMagic = "mufuzz-snapshot"

// Snapshot is a complete serializable capture of a campaign coordinator's
// state between slices: options, rng position, coverage, the branch-distance
// frontier, the seed queue with computed masks, Algorithm 3 weights, oracle
// aggregation, and proof-of-concept sequences. A campaign resumed from a
// snapshot (ResumeCampaign) continues byte-identically to one that was never
// paused: snapshots are taken at slice boundaries, which are deterministic
// points of the schedule, and everything the engine reads thereafter is
// restored — including the exact rng stream position (see countedSource).
//
// Executor-side state is deliberately absent: worker EVMs, jumpdest caches,
// and the prefix checkpoint cache are rebuilt warm-up state whose presence
// or absence never changes campaign decisions (the conformance differential
// matrix pins cache on ≡ cache off).
type Snapshot struct {
	// Contract is the contract name (diagnostics; identity is CodeHash).
	Contract string
	// CodeHash pins the compiled runtime code the state is only valid for.
	CodeHash [32]byte
	// Options is the normalized configuration (Observer excluded — runtime
	// wiring, reinstalled by the resuming caller).
	Options Options
	// RngDraws is the coordinator rng's source position.
	RngDraws uint64

	Executions       int
	QI               int
	CorpusSeeded     int
	LastNewEdgeExec  int
	MaskProbes       int
	MasksComputed    int
	SequencesMutated int
	LineSearches     int
	LineSteps        int
	Elapsed          time.Duration

	// Covered lists the covered branch edges in edge-ID order.
	Covered []BranchEdge
	// Weights lists the nonzero Algorithm 3 edge weights in edge-ID order.
	Weights []EdgeWeightEntry
	// Timeline is the coverage-growth curve recorded so far.
	Timeline []TimelinePoint
	// Queue is the seed queue, deep-copied with feedback and computed masks.
	Queue []*Seed
	// Frontier is the branch-distance frontier: per uncovered-but-approached
	// edge, the best distance, its comparison, and the seed that achieved it.
	Frontier []FrontierEntry
	// CmpOps flattens the per-uncovered-edge operand tables
	// (Strategy.CmpFeedback) in edge-ID-then-FIFO order; decoding re-appends
	// in order, so table state round-trips exactly.
	CmpOps []CmpOpEntry
	// Repro maps bug classes to their first triggering sequence, in class
	// order.
	Repro []ReproEntry
	// ReceivedValue and Findings are the detector's aggregate state.
	ReceivedValue bool
	Findings      []oracle.Finding

	// WorldMembers pins each secondary member of a world campaign — name,
	// deployment address, runtime codehash — so resume can refuse a changed
	// world. Empty for single-contract campaigns.
	WorldMembers []WorldMemberPin
	// Attacker records that the campaign ran with attacker synthesis on
	// (the spec bytes themselves ride on the serialized sequences).
	Attacker bool
	// REConfirmed carries the campaign's once-per-campaign reentrancy
	// divergence confirmation.
	REConfirmed bool
	// ValueOutSeen is the witnessed detector's value-escape aggregate.
	ValueOutSeen bool
}

// WorldMemberPin pins one world member's identity inside a snapshot.
type WorldMemberPin struct {
	Name     string
	Addr     state.Address
	CodeHash [32]byte
}

// EdgeWeightEntry is one edge's Algorithm 3 weight.
type EdgeWeightEntry struct {
	Edge BranchEdge
	W    float64
}

// FrontierEntry is one branch-distance frontier edge.
type FrontierEntry struct {
	Edge BranchEdge
	Dist u256.Int
	Cmp  evm.CmpInfo
	Seed *Seed
}

// CmpOpEntry is one observed comparison operand pair of an uncovered edge.
type CmpOpEntry struct {
	Edge BranchEdge
	A, B u256.Int
}

// ReproEntry is one bug class's proof-of-concept sequence.
type ReproEntry struct {
	Class oracle.BugClass
	Seq   Sequence
}

// snapClone deep-copies a seed including its feedback fields and computed
// masks (unlike Clone, which starts a fresh mutation child). lastNudge is
// dropped: it is only ever read within the round that set it, never across
// a slice boundary.
func (s *Seed) snapClone() *Seed {
	ns := &Seed{
		Seq:              s.Seq.Clone(),
		NewEdges:         s.NewEdges,
		HitNestedDepth:   s.HitNestedDepth,
		PathWeight:       s.PathWeight,
		DistanceImproved: s.DistanceImproved,
		Gen:              s.Gen,
	}
	if s.masks != nil {
		ns.masks = make([]*Mask, len(s.masks))
		for i, m := range s.masks {
			if m == nil {
				continue
			}
			nm := &Mask{allowed: make([][numMutTypes]bool, len(m.allowed))}
			copy(nm.allowed, m.allowed)
			ns.masks[i] = nm
		}
	}
	return ns
}

// Snapshot captures the campaign's complete coordinator state. It must be
// called between slices (never while RunSlice is executing); the capture is
// a deep copy, so the campaign may keep running afterwards without
// invalidating the snapshot.
func (c *Campaign) Snapshot() *Snapshot {
	if c.inSlice {
		panic("fuzz: Snapshot called while a slice is running")
	}
	s := &Snapshot{
		Contract:         c.target.Name(),
		CodeHash:         keccak.Sum256(c.code),
		Options:          c.opts,
		RngDraws:         c.rngSrc.draws,
		Executions:       c.executions,
		QI:               c.qi,
		CorpusSeeded:     c.corpusSeeded,
		LastNewEdgeExec:  c.lastNewEdgeExec,
		MaskProbes:       c.maskProbes,
		MasksComputed:    c.masksComputed,
		SequencesMutated: c.sequencesMutated,
		LineSearches:     c.lineSearches,
		LineSteps:        c.lineSteps,
		Elapsed:          c.elapsedPrior,
	}
	s.Options.Observer = nil
	for id, cov := range c.covered {
		if cov {
			pc, taken := c.branchIx.Edge(int32(id))
			s.Covered = append(s.Covered, BranchEdge{PC: pc, Taken: taken})
		}
	}
	for id := 0; id < c.totalEdges; id++ {
		if w := c.weights.Weight(int32(id)); w != 0 {
			pc, taken := c.branchIx.Edge(int32(id))
			s.Weights = append(s.Weights, EdgeWeightEntry{Edge: BranchEdge{PC: pc, Taken: taken}, W: w})
		}
	}
	s.Timeline = append([]TimelinePoint(nil), c.timeline...)
	for _, seed := range c.queue {
		s.Queue = append(s.Queue, seed.snapClone())
	}
	for id, known := range c.distKnown {
		if known {
			pc, taken := c.branchIx.Edge(int32(id))
			s.Frontier = append(s.Frontier, FrontierEntry{
				Edge: BranchEdge{PC: pc, Taken: taken},
				Dist: c.minDist[id],
				Cmp:  c.distCmp[id],
				Seed: c.distSeed[id].snapClone(),
			})
		}
	}
	for id, ops := range c.cmpOps {
		for _, p := range ops {
			pc, taken := c.branchIx.Edge(int32(id))
			s.CmpOps = append(s.CmpOps, CmpOpEntry{Edge: BranchEdge{PC: pc, Taken: taken}, A: p.a, B: p.b})
		}
	}
	classes := make([]oracle.BugClass, 0, len(c.repro))
	for class := range c.repro {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, class := range classes {
		s.Repro = append(s.Repro, ReproEntry{Class: class, Seq: c.repro[class].Clone()})
	}
	s.ReceivedValue, s.Findings = c.detector.State()
	s.ValueOutSeen = c.detector.ValueOutSeen()
	// The world wiring is not serializable (targets and attacker models are
	// live objects); the snapshot pins their identities instead and
	// ResumeWorldCampaign revalidates the caller-supplied world against them.
	s.Options.World = nil
	if c.world != nil {
		s.Attacker = c.attackerModel != nil
		s.REConfirmed = c.reConfirmed
		for i, m := range c.world.Members {
			s.WorldMembers = append(s.WorldMembers, WorldMemberPin{
				Name:     m.Name,
				Addr:     c.worldAddrs[i+1],
				CodeHash: keccak.Sum256(m.Target.Code()),
			})
		}
	}
	return s
}

// ResumeCampaign rebuilds a campaign from a snapshot so it continues exactly
// where it paused. comp must compile to the same runtime code the snapshot
// was taken from (pinned by CodeHash). The resumed campaign has no Observer;
// install one with SetObserver before the next slice if transcripts should
// continue.
func ResumeCampaign(comp *minisol.Compiled, s *Snapshot) (*Campaign, error) {
	return ResumeTargetCampaign(MinisolTarget(comp), s)
}

// ResumeTargetCampaign is ResumeCampaign for any target kind: the target
// must carry the same runtime code the snapshot was taken from (pinned by
// CodeHash). Snapshots of world campaigns are refused — their member set and
// attacker model are live objects the snapshot only pins; resupply them
// through ResumeWorldCampaign.
func ResumeTargetCampaign(t Target, s *Snapshot) (*Campaign, error) {
	if len(s.WorldMembers) > 0 || s.Attacker {
		return nil, fmt.Errorf("fuzz: snapshot was taken from a world campaign; resume with ResumeWorldCampaign")
	}
	return resumeTarget(t, nil, s)
}

// ResumeWorldCampaign resumes a multi-contract world campaign. The snapshot
// pins every member's name, deployment address, and runtime codehash plus
// the attacker mode; the caller-supplied world must match all of them —
// resuming into a changed world would silently replay seeds against
// different code.
func ResumeWorldCampaign(t Target, w *WorldOptions, s *Snapshot) (*Campaign, error) {
	if worldEmpty(w) {
		return nil, fmt.Errorf("fuzz: ResumeWorldCampaign needs a non-empty world (single-contract snapshots resume with ResumeTargetCampaign)")
	}
	if (w.Attacker != nil) != s.Attacker {
		return nil, fmt.Errorf("fuzz: attacker mode does not match snapshot (snapshot attacker=%v)", s.Attacker)
	}
	if len(w.Members) != len(s.WorldMembers) {
		return nil, fmt.Errorf("fuzz: world has %d members, snapshot pins %d", len(w.Members), len(s.WorldMembers))
	}
	for i, m := range w.Members {
		pin := s.WorldMembers[i]
		if m.Name != pin.Name {
			return nil, fmt.Errorf("fuzz: world member %d is %q, snapshot pins %q", i, m.Name, pin.Name)
		}
		if keccak.Sum256(m.Target.Code()) != pin.CodeHash {
			return nil, fmt.Errorf("fuzz: world member %q code does not match snapshot", m.Name)
		}
		addr := m.Addr
		if addr == (state.Address{}) {
			addr = WorldMemberAddr(i)
		}
		if addr != pin.Addr {
			return nil, fmt.Errorf("fuzz: world member %q deploys at %x, snapshot pins %x", m.Name, addr, pin.Addr)
		}
	}
	return resumeTarget(t, w, s)
}

func resumeTarget(t Target, w *WorldOptions, s *Snapshot) (*Campaign, error) {
	if keccak.Sum256(t.Code()) != s.CodeHash {
		return nil, fmt.Errorf("fuzz: snapshot code hash does not match target %s", t.Name())
	}
	opts := s.Options
	opts.Observer = nil
	opts.World = w
	c := NewTargetCampaign(t, opts)

	c.rngSrc = newCountedSource(opts.Seed, s.RngDraws)
	c.rng = rand.New(c.rngSrc)

	c.executions = s.Executions
	c.qi = s.QI
	c.corpusSeeded = s.CorpusSeeded
	c.lastNewEdgeExec = s.LastNewEdgeExec
	c.maskProbes = s.MaskProbes
	c.masksComputed = s.MasksComputed
	c.sequencesMutated = s.SequencesMutated
	c.lineSearches = s.LineSearches
	c.lineSteps = s.LineSteps
	c.elapsedPrior = s.Elapsed

	edgeID := func(e BranchEdge) (int32, error) {
		id, ok := c.branchIx.EdgeID(e.PC, e.Taken)
		if !ok {
			return 0, fmt.Errorf("fuzz: snapshot edge (pc=%d taken=%v) unknown to contract", e.PC, e.Taken)
		}
		return id, nil
	}
	for _, e := range s.Covered {
		id, err := edgeID(e)
		if err != nil {
			return nil, err
		}
		if !c.covered[id] {
			c.covered[id] = true
			c.coveredCount++
		}
	}
	for _, we := range s.Weights {
		id, err := edgeID(we.Edge)
		if err != nil {
			return nil, err
		}
		c.weights.SetWeight(id, we.W)
	}
	c.timeline = append([]TimelinePoint(nil), s.Timeline...)
	for _, seed := range s.Queue {
		c.queue = append(c.queue, seed.snapClone())
	}
	for _, fe := range s.Frontier {
		id, err := edgeID(fe.Edge)
		if err != nil {
			return nil, err
		}
		if !c.distKnown[id] {
			c.distKnown[id] = true
			c.distCount++
		}
		c.minDist[id] = fe.Dist
		c.distCmp[id] = fe.Cmp
		c.distSeed[id] = fe.Seed.snapClone()
	}
	for _, ce := range s.CmpOps {
		id, err := edgeID(ce.Edge)
		if err != nil {
			return nil, err
		}
		if len(c.cmpOps[id]) < cmpOpsPerEdge {
			c.cmpOps[id] = append(c.cmpOps[id], cmpPair{a: ce.A, b: ce.B})
		}
	}
	for _, re := range s.Repro {
		c.repro[re.Class] = re.Seq.Clone()
	}
	c.detector.Restore(s.ReceivedValue, s.Findings)
	c.detector.SetValueOutSeen(s.ValueOutSeen)
	c.reConfirmed = s.REConfirmed
	return c, nil
}

// --- Stable text encoding ---

// Encode writes the snapshot in the stable text encoding (the current
// SnapshotVersion); encoding the same snapshot always yields the same bytes.
func (s *Snapshot) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s v%d\n", snapshotMagic, SnapshotVersion)
	fmt.Fprintf(bw, "contract %s\n", s.Contract)
	fmt.Fprintf(bw, "codehash %s\n", hex.EncodeToString(s.CodeHash[:]))
	st := s.Options.Strategy
	fmt.Fprintf(bw, "strategy name=%q dataflow=%d raw=%d prolong=%d dist=%d mask=%d energy=%d cmpfeed=%d dict=%d\n",
		st.Name, boolBit01(st.DataflowSequences), boolBit01(st.RAWRepetition), boolBit01(st.Prolongation),
		boolBit01(st.BranchDistance), boolBit01(st.MutationMasking), boolBit01(st.DynamicEnergy),
		boolBit01(st.CmpFeedback), boolBit01(st.MinedDictionary))
	o := s.Options
	fmt.Fprintf(bw, "options seed=%d iters=%d maxseq=%d gas=%d energybase=%d initseeds=%d workers=%d batched=%d copystate=%d nocache=%d timebudgetns=%d\n",
		o.Seed, o.Iterations, o.MaxSeqLen, o.GasPerTx, o.EnergyBase, o.InitialSeeds, o.Workers,
		boolBit01(o.ForceBatched), boolBit01(o.UseCopyState), boolBit01(o.NoPrefixCache), int64(o.TimeBudget))
	fmt.Fprintf(bw, "progress execs=%d qi=%d corpus=%d rngdraws=%d lastnew=%d maskprobes=%d maskscomputed=%d seqmut=%d linesearches=%d linesteps=%d elapsedns=%d\n",
		s.Executions, s.QI, s.CorpusSeeded, s.RngDraws, s.LastNewEdgeExec, s.MaskProbes,
		s.MasksComputed, s.SequencesMutated, s.LineSearches, s.LineSteps, int64(s.Elapsed))
	if s.Attacker || len(s.WorldMembers) > 0 {
		fmt.Fprintf(bw, "world attacker=%d reconfirmed=%d\n", boolBit01(s.Attacker), boolBit01(s.REConfirmed))
		for _, m := range s.WorldMembers {
			fmt.Fprintf(bw, "worldmember %s %s %s\n",
				m.Name, hex.EncodeToString(m.Addr[:]), hex.EncodeToString(m.CodeHash[:]))
		}
	}
	for _, e := range s.Covered {
		fmt.Fprintf(bw, "covered %d %d\n", e.PC, boolBit01(e.Taken))
	}
	for _, we := range s.Weights {
		fmt.Fprintf(bw, "weight %d %d %s\n", we.Edge.PC, boolBit01(we.Edge.Taken), hexFloat(we.W))
	}
	for _, tp := range s.Timeline {
		fmt.Fprintf(bw, "tpoint %d %d %s\n", tp.Executions, int64(tp.Elapsed), hexFloat(tp.Coverage))
	}
	for _, seed := range s.Queue {
		encodeSeed(bw, "qseed", seed)
	}
	for _, fe := range s.Frontier {
		fmt.Fprintf(bw, "front %d %d %s %d %s %s\n",
			fe.Edge.PC, boolBit01(fe.Edge.Taken), fe.Dist.Hex(), int(fe.Cmp.Op), fe.Cmp.A.Hex(), fe.Cmp.B.Hex())
		encodeSeed(bw, "fseed", fe.Seed)
	}
	for _, ce := range s.CmpOps {
		fmt.Fprintf(bw, "cmpop %d %d %s %s\n",
			ce.Edge.PC, boolBit01(ce.Edge.Taken), ce.A.Hex(), ce.B.Hex())
	}
	for _, re := range s.Repro {
		fmt.Fprintf(bw, "repro %s\n", re.Class)
		for _, tx := range re.Seq {
			encodeSnapTx(bw, tx)
		}
		fmt.Fprintf(bw, "endrepro\n")
	}
	fmt.Fprintf(bw, "detector received=%d valueout=%d\n", boolBit01(s.ReceivedValue), boolBit01(s.ValueOutSeen))
	for _, f := range s.Findings {
		fmt.Fprintf(bw, "finding %s %s %d %s\n", f.Class, hex.EncodeToString(f.Addr[:]), f.PC, f.Description)
	}
	fmt.Fprintf(bw, "eof\n")
	return bw.Flush()
}

// EncodeBytes renders the snapshot to its canonical byte form.
func (s *Snapshot) EncodeBytes() []byte {
	var buf bytes.Buffer
	_ = s.Encode(&buf)
	return buf.Bytes()
}

func encodeSeed(w io.Writer, kind string, s *Seed) {
	fmt.Fprintf(w, "%s newedges=%d nested=%d dist=%d gen=%d pathweight=%s hasmasks=%d\n",
		kind, s.NewEdges, s.HitNestedDepth, boolBit01(s.DistanceImproved), s.Gen,
		hexFloat(s.PathWeight), boolBit01(s.masks != nil))
	for _, tx := range s.Seq {
		encodeSnapTx(w, tx)
	}
	if s.masks != nil {
		for i, m := range s.masks {
			fmt.Fprintf(w, "mask %d %s\n", i, encodeMask(m))
		}
	}
	fmt.Fprintf(w, "endseed\n")
}

// encodeSnapTx writes one sequence transaction. Plain transactions keep the
// 5-field v1 form byte-for-byte; a nonzero callee or an attacker spec grows
// the line to the 7-field world form (callee index, attacker spec hex).
func encodeSnapTx(w io.Writer, tx TxInput) {
	if tx.Callee == 0 && len(tx.Attacker) == 0 {
		fmt.Fprintf(w, "tx %s %d %s %s\n", tx.Func, tx.Sender, tx.Value.Hex(), hexBytesOrDash(tx.Args))
		return
	}
	fmt.Fprintf(w, "tx %s %d %s %s %d %s\n", tx.Func, tx.Sender, tx.Value.Hex(), hexBytesOrDash(tx.Args),
		tx.Callee, hexBytesOrDash(tx.Attacker))
}

// encodeMask renders a mask as one hex nibble per byte position (bit k set =
// mutation type k permitted); "-" is the nil mask (everything permitted).
func encodeMask(m *Mask) string {
	if m == nil {
		return "-"
	}
	var b strings.Builder
	for _, a := range m.allowed {
		n := 0
		for k := 0; k < int(numMutTypes); k++ {
			if a[k] {
				n |= 1 << k
			}
		}
		fmt.Fprintf(&b, "%x", n)
	}
	if b.Len() == 0 {
		return "." // present but zero-length
	}
	return b.String()
}

func decodeMask(s string) (*Mask, error) {
	switch s {
	case "-":
		return nil, nil
	case ".":
		return &Mask{}, nil
	}
	m := &Mask{allowed: make([][numMutTypes]bool, len(s))}
	for i, ch := range s {
		n, err := strconv.ParseUint(string(ch), 16, 8)
		if err != nil {
			return nil, fmt.Errorf("bad mask nibble %q", string(ch))
		}
		for k := 0; k < int(numMutTypes); k++ {
			m.allowed[i][k] = n&(1<<k) != 0
		}
	}
	return m, nil
}

func boolBit01(b bool) int {
	if b {
		return 1
	}
	return 0
}

func hexBytesOrDash(b []byte) string {
	if len(b) == 0 {
		return "-"
	}
	return hex.EncodeToString(b)
}

// hexFloat renders a float64 exactly (hex mantissa/exponent form).
func hexFloat(f float64) string {
	return strconv.FormatFloat(f, 'x', -1, 64)
}

func parseSnapU256(s string) (u256.Int, error) {
	n, ok := new(big.Int).SetString(s, 0)
	if !ok {
		return u256.Int{}, fmt.Errorf("bad u256 %q", s)
	}
	return u256.FromBig(n), nil
}

func snapErr(line, format string, args ...any) error {
	return fmt.Errorf("fuzz: decode snapshot %q: %s", line, fmt.Sprintf(format, args...))
}

// DecodeSnapshot parses a snapshot from its text encoding. Every format
// version up to SnapshotVersion is accepted (older versions decode with the
// later-added fields at their zero values — the semantics the writing build
// had); newer versions are rejected with an explicit error instead of
// misparsing fields whose layout this build does not know.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	readLine := func() (string, bool) {
		if !sc.Scan() {
			return "", false
		}
		return sc.Text(), true
	}
	s := &Snapshot{}

	line, ok := readLine()
	if !ok || !strings.HasPrefix(line, snapshotMagic+" v") {
		return nil, snapErr(line, "missing %s header", snapshotMagic)
	}
	v, err := strconv.Atoi(strings.TrimPrefix(line, snapshotMagic+" v"))
	if err != nil || v < 1 {
		return nil, snapErr(line, "unsupported version")
	}
	if v > SnapshotVersion {
		return nil, snapErr(line, "format v%d was produced by a newer mufuzz (this build reads up to v%d)", v, SnapshotVersion)
	}

	line, ok = readLine()
	if !ok || !strings.HasPrefix(line, "contract ") {
		return nil, snapErr(line, "missing contract line")
	}
	s.Contract = strings.TrimPrefix(line, "contract ")

	line, ok = readLine()
	if !ok || !strings.HasPrefix(line, "codehash ") {
		return nil, snapErr(line, "missing codehash line")
	}
	hb, err := hex.DecodeString(strings.TrimPrefix(line, "codehash "))
	if err != nil || len(hb) != 32 {
		return nil, snapErr(line, "bad codehash")
	}
	copy(s.CodeHash[:], hb)

	line, ok = readLine()
	if !ok || !strings.HasPrefix(line, "strategy ") {
		return nil, snapErr(line, "missing strategy line")
	}
	var sb [8]int
	if v >= 2 {
		if _, err := fmt.Sscanf(line, "strategy name=%q dataflow=%d raw=%d prolong=%d dist=%d mask=%d energy=%d cmpfeed=%d dict=%d",
			&s.Options.Strategy.Name, &sb[0], &sb[1], &sb[2], &sb[3], &sb[4], &sb[5], &sb[6], &sb[7]); err != nil {
			return nil, snapErr(line, "bad strategy: %v", err)
		}
	} else {
		// v1: the comparison-feedback flags postdate the format; a campaign
		// snapshotted then ran without them, so they stay off on resume.
		if _, err := fmt.Sscanf(line, "strategy name=%q dataflow=%d raw=%d prolong=%d dist=%d mask=%d energy=%d",
			&s.Options.Strategy.Name, &sb[0], &sb[1], &sb[2], &sb[3], &sb[4], &sb[5]); err != nil {
			return nil, snapErr(line, "bad strategy: %v", err)
		}
	}
	s.Options.Strategy.DataflowSequences = sb[0] == 1
	s.Options.Strategy.RAWRepetition = sb[1] == 1
	s.Options.Strategy.Prolongation = sb[2] == 1
	s.Options.Strategy.BranchDistance = sb[3] == 1
	s.Options.Strategy.MutationMasking = sb[4] == 1
	s.Options.Strategy.DynamicEnergy = sb[5] == 1
	s.Options.Strategy.CmpFeedback = sb[6] == 1
	s.Options.Strategy.MinedDictionary = sb[7] == 1

	line, ok = readLine()
	if !ok || !strings.HasPrefix(line, "options ") {
		return nil, snapErr(line, "missing options line")
	}
	var ob [3]int
	var tbNS int64
	if _, err := fmt.Sscanf(line, "options seed=%d iters=%d maxseq=%d gas=%d energybase=%d initseeds=%d workers=%d batched=%d copystate=%d nocache=%d timebudgetns=%d",
		&s.Options.Seed, &s.Options.Iterations, &s.Options.MaxSeqLen, &s.Options.GasPerTx,
		&s.Options.EnergyBase, &s.Options.InitialSeeds, &s.Options.Workers,
		&ob[0], &ob[1], &ob[2], &tbNS); err != nil {
		return nil, snapErr(line, "bad options: %v", err)
	}
	s.Options.ForceBatched = ob[0] == 1
	s.Options.UseCopyState = ob[1] == 1
	s.Options.NoPrefixCache = ob[2] == 1
	s.Options.TimeBudget = time.Duration(tbNS)

	line, ok = readLine()
	if !ok || !strings.HasPrefix(line, "progress ") {
		return nil, snapErr(line, "missing progress line")
	}
	var elapsedNS int64
	if _, err := fmt.Sscanf(line, "progress execs=%d qi=%d corpus=%d rngdraws=%d lastnew=%d maskprobes=%d maskscomputed=%d seqmut=%d linesearches=%d linesteps=%d elapsedns=%d",
		&s.Executions, &s.QI, &s.CorpusSeeded, &s.RngDraws, &s.LastNewEdgeExec, &s.MaskProbes,
		&s.MasksComputed, &s.SequencesMutated, &s.LineSearches, &s.LineSteps, &elapsedNS); err != nil {
		return nil, snapErr(line, "bad progress: %v", err)
	}
	s.Elapsed = time.Duration(elapsedNS)

	// decodeSeedBlock parses the txs/masks/endseed lines following a seed
	// header into seed; the header fields are already parsed by the caller.
	decodeSeedBlock := func(seed *Seed, hasMasks bool) error {
		var maskLines []struct {
			idx  int
			mask *Mask
		}
		for {
			line, ok = readLine()
			if !ok {
				return snapErr("", "truncated seed block")
			}
			fields := strings.Fields(line)
			if len(fields) == 0 {
				return snapErr(line, "blank line in seed block")
			}
			switch fields[0] {
			case "tx":
				tx, err := decodeSnapTx(line, fields)
				if err != nil {
					return err
				}
				seed.Seq = append(seed.Seq, tx)
			case "mask":
				if len(fields) != 3 {
					return snapErr(line, "malformed mask")
				}
				idx, err := strconv.Atoi(fields[1])
				if err != nil {
					return snapErr(line, "bad mask index: %v", err)
				}
				m, err := decodeMask(fields[2])
				if err != nil {
					return snapErr(line, "%v", err)
				}
				maskLines = append(maskLines, struct {
					idx  int
					mask *Mask
				}{idx, m})
			case "endseed":
				if hasMasks {
					seed.masks = make([]*Mask, len(seed.Seq))
					for _, ml := range maskLines {
						if ml.idx < 0 || ml.idx >= len(seed.masks) {
							return snapErr(line, "mask index %d out of range", ml.idx)
						}
						seed.masks[ml.idx] = ml.mask
					}
				}
				return nil
			default:
				return snapErr(line, "unexpected line in seed block")
			}
		}
	}

	parseSeedHeader := func(line string, kind string) (*Seed, bool, error) {
		seed := &Seed{}
		var distBit, hasMasksBit int
		var pw string
		if _, err := fmt.Sscanf(line, kind+" newedges=%d nested=%d dist=%d gen=%d pathweight=%s hasmasks=%d",
			&seed.NewEdges, &seed.HitNestedDepth, &distBit, &seed.Gen, &pw, &hasMasksBit); err != nil {
			return nil, false, snapErr(line, "bad %s: %v", kind, err)
		}
		seed.DistanceImproved = distBit == 1
		w, err := strconv.ParseFloat(pw, 64)
		if err != nil {
			return nil, false, snapErr(line, "bad pathweight: %v", err)
		}
		seed.PathWeight = w
		return seed, hasMasksBit == 1, nil
	}

	var curRepro *ReproEntry
	for {
		line, ok = readLine()
		if !ok {
			return nil, snapErr("", "truncated snapshot (no eof)")
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return nil, snapErr(line, "blank line")
		}
		if curRepro != nil {
			switch fields[0] {
			case "tx":
				tx, err := decodeSnapTx(line, fields)
				if err != nil {
					return nil, err
				}
				curRepro.Seq = append(curRepro.Seq, tx)
				continue
			case "endrepro":
				s.Repro = append(s.Repro, *curRepro)
				curRepro = nil
				continue
			default:
				return nil, snapErr(line, "unexpected line in repro block")
			}
		}
		switch fields[0] {
		case "covered":
			if len(fields) != 3 {
				return nil, snapErr(line, "malformed covered")
			}
			e, err := decodeSnapEdge(line, fields)
			if err != nil {
				return nil, err
			}
			s.Covered = append(s.Covered, e)
		case "weight":
			if len(fields) != 4 {
				return nil, snapErr(line, "malformed weight")
			}
			e, err := decodeSnapEdge(line, fields)
			if err != nil {
				return nil, err
			}
			w, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, snapErr(line, "bad weight: %v", err)
			}
			s.Weights = append(s.Weights, EdgeWeightEntry{Edge: e, W: w})
		case "tpoint":
			if len(fields) != 4 {
				return nil, snapErr(line, "malformed tpoint")
			}
			execs, err1 := strconv.Atoi(fields[1])
			ns, err2 := strconv.ParseInt(fields[2], 10, 64)
			cov, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, snapErr(line, "bad tpoint")
			}
			s.Timeline = append(s.Timeline, TimelinePoint{Executions: execs, Elapsed: time.Duration(ns), Coverage: cov})
		case "qseed":
			seed, hasMasks, err := parseSeedHeader(line, "qseed")
			if err != nil {
				return nil, err
			}
			if err := decodeSeedBlock(seed, hasMasks); err != nil {
				return nil, err
			}
			s.Queue = append(s.Queue, seed)
		case "front":
			if len(fields) != 7 {
				return nil, snapErr(line, "malformed front")
			}
			e, err := decodeSnapEdge(line, fields)
			if err != nil {
				return nil, err
			}
			dist, err := parseSnapU256(fields[3])
			if err != nil {
				return nil, snapErr(line, "bad dist: %v", err)
			}
			op, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, snapErr(line, "bad cmp op: %v", err)
			}
			a, err := parseSnapU256(fields[5])
			if err != nil {
				return nil, snapErr(line, "bad cmp a: %v", err)
			}
			b, err := parseSnapU256(fields[6])
			if err != nil {
				return nil, snapErr(line, "bad cmp b: %v", err)
			}
			fe := FrontierEntry{Edge: e, Dist: dist, Cmp: evm.CmpInfo{Op: evm.OpCode(op), A: a, B: b}}
			line, ok = readLine()
			if !ok || !strings.HasPrefix(line, "fseed ") {
				return nil, snapErr(line, "front without fseed")
			}
			seed, hasMasks, err := parseSeedHeader(line, "fseed")
			if err != nil {
				return nil, err
			}
			if err := decodeSeedBlock(seed, hasMasks); err != nil {
				return nil, err
			}
			fe.Seed = seed
			s.Frontier = append(s.Frontier, fe)
		case "cmpop":
			if len(fields) != 5 {
				return nil, snapErr(line, "malformed cmpop")
			}
			e, err := decodeSnapEdge(line, fields)
			if err != nil {
				return nil, err
			}
			a, err := parseSnapU256(fields[3])
			if err != nil {
				return nil, snapErr(line, "bad cmpop a: %v", err)
			}
			b, err := parseSnapU256(fields[4])
			if err != nil {
				return nil, snapErr(line, "bad cmpop b: %v", err)
			}
			s.CmpOps = append(s.CmpOps, CmpOpEntry{Edge: e, A: a, B: b})
		case "repro":
			if len(fields) != 2 {
				return nil, snapErr(line, "malformed repro")
			}
			curRepro = &ReproEntry{Class: oracle.BugClass(fields[1])}
		case "world":
			var ab, rb int
			if _, err := fmt.Sscanf(line, "world attacker=%d reconfirmed=%d", &ab, &rb); err != nil {
				return nil, snapErr(line, "bad world: %v", err)
			}
			s.Attacker = ab == 1
			s.REConfirmed = rb == 1
		case "worldmember":
			if len(fields) != 4 {
				return nil, snapErr(line, "malformed worldmember")
			}
			var pin WorldMemberPin
			pin.Name = fields[1]
			ab, err := hex.DecodeString(fields[2])
			if err != nil || len(ab) != len(state.Address{}) {
				return nil, snapErr(line, "bad worldmember address")
			}
			copy(pin.Addr[:], ab)
			ch, err := hex.DecodeString(fields[3])
			if err != nil || len(ch) != 32 {
				return nil, snapErr(line, "bad worldmember codehash")
			}
			copy(pin.CodeHash[:], ch)
			s.WorldMembers = append(s.WorldMembers, pin)
		case "detector":
			var rv, vo int
			if v >= 3 {
				if _, err := fmt.Sscanf(line, "detector received=%d valueout=%d", &rv, &vo); err != nil {
					return nil, snapErr(line, "bad detector: %v", err)
				}
			} else if _, err := fmt.Sscanf(line, "detector received=%d", &rv); err != nil {
				return nil, snapErr(line, "bad detector: %v", err)
			}
			s.ReceivedValue = rv == 1
			s.ValueOutSeen = vo == 1
		case "finding":
			// finding <class> <addr> <pc> <description...>
			if len(fields) < 4 {
				return nil, snapErr(line, "malformed finding")
			}
			ab, err := hex.DecodeString(fields[2])
			if err != nil || len(ab) != len(state.Address{}) {
				return nil, snapErr(line, "bad finding address")
			}
			pc, err := strconv.ParseUint(fields[3], 10, 64)
			if err != nil {
				return nil, snapErr(line, "bad finding pc: %v", err)
			}
			var addr state.Address
			copy(addr[:], ab)
			prefix := fmt.Sprintf("finding %s %s %d ", fields[1], fields[2], pc)
			s.Findings = append(s.Findings, oracle.Finding{
				Class:       oracle.BugClass(fields[1]),
				Addr:        addr,
				PC:          pc,
				Description: strings.TrimPrefix(line, prefix),
			})
		case "eof":
			if curRepro != nil {
				return nil, snapErr(line, "eof inside repro block")
			}
			return s, nil
		default:
			return nil, snapErr(line, "unexpected line")
		}
	}
}

func decodeSnapEdge(line string, fields []string) (BranchEdge, error) {
	if len(fields) < 3 {
		return BranchEdge{}, snapErr(line, "malformed edge")
	}
	pc, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return BranchEdge{}, snapErr(line, "bad pc: %v", err)
	}
	return BranchEdge{PC: pc, Taken: fields[2] == "1"}, nil
}

func decodeSnapTx(line string, fields []string) (TxInput, error) {
	if len(fields) != 5 && len(fields) != 7 {
		return TxInput{}, snapErr(line, "malformed tx")
	}
	sender, err := strconv.Atoi(fields[2])
	if err != nil {
		return TxInput{}, snapErr(line, "bad sender: %v", err)
	}
	val, err := parseSnapU256(fields[3])
	if err != nil {
		return TxInput{}, snapErr(line, "bad value: %v", err)
	}
	var args []byte
	if fields[4] != "-" {
		args, err = hex.DecodeString(fields[4])
		if err != nil {
			return TxInput{}, snapErr(line, "bad args: %v", err)
		}
	}
	tx := TxInput{Func: fields[1], Sender: sender, Value: val, Args: args}
	if len(fields) == 7 {
		tx.Callee, err = strconv.Atoi(fields[5])
		if err != nil || tx.Callee < 0 {
			return TxInput{}, snapErr(line, "bad callee")
		}
		if fields[6] != "-" {
			tx.Attacker, err = hex.DecodeString(fields[6])
			if err != nil {
				return TxInput{}, snapErr(line, "bad attacker spec: %v", err)
			}
		}
	}
	return tx, nil
}

// EncodeSequence renders one transaction sequence in the snapshot tx-line
// format — the canonical corpus-seed payload stores exchange.
func EncodeSequence(seq Sequence) []byte {
	var buf bytes.Buffer
	for _, tx := range seq {
		encodeSnapTx(&buf, tx)
	}
	return buf.Bytes()
}

// DecodeSequence parses a sequence written by EncodeSequence.
func DecodeSequence(data []byte) (Sequence, error) {
	var seq Sequence
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		tx, err := decodeSnapTx(line, strings.Fields(line))
		if err != nil {
			return nil, err
		}
		seq = append(seq, tx)
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("fuzz: empty sequence")
	}
	return seq, nil
}
