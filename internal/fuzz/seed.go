package fuzz

import (
	"fmt"
	"math/rand"
	"strings"

	"mufuzz/internal/abi"
	"mufuzz/internal/u256"
)

// TxInput is one transaction of a fuzzed sequence. The mutable byte stream
// of a transaction is Args followed by the 32-byte Value word, so both the
// ABI arguments and msg.value evolve under mask-guided mutation.
type TxInput struct {
	// Func is the target function name (CtorName for the constructor).
	Func string
	// Args is the raw ABI argument byte stream (without the 4-byte
	// selector). Mutations may change its length.
	Args []byte
	// Value is msg.value.
	Value u256.Int
	// Sender indexes the campaign's sender pool.
	Sender int
	// Callee indexes the campaign's world members (0 = the primary contract).
	// Single-contract campaigns leave it zero everywhere.
	Callee int
	// Attacker is the encoded attacker-contract spec carried on the sequence
	// anchor (element 0) of world campaigns with attacker synthesis enabled.
	// It is mutated seed material: the executor compiles it into the attacker
	// account's bytecode before replaying the sequence. Nil everywhere else.
	// Like Args, the slice is immutable once built — mutation replaces it
	// wholesale — so element-shallow cloning stays sound.
	Attacker []byte
}

// Stream flattens the mutable bytes of the transaction: args ++ value. The
// buffer carries spare capacity so in-place insert mutations on the returned
// stream usually splice without growing.
func (t *TxInput) Stream() []byte {
	v := t.Value.Bytes32()
	out := make([]byte, 0, len(t.Args)+64)
	out = append(out, t.Args...)
	return append(out, v[:]...)
}

// SetStream splits a mutated stream back into args and value. The last 32
// bytes (or all of them, for short streams) become the value word.
func (t *TxInput) SetStream(s []byte) {
	if len(s) < 32 {
		t.Args = nil
		t.Value = u256.FromBytes(s)
		return
	}
	cut := len(s) - 32
	t.Args = append([]byte(nil), s[:cut]...)
	t.Value = u256.FromBytes(s[cut:])
}

// Clone copies the transaction. Args is shared, not copied: argument streams
// are immutable once built — every mutation path (Stream → mutate →
// SetStream) constructs a fresh stream and replaces Args wholesale, so two
// transactions sharing one Args backing array can never observe each other.
func (t *TxInput) Clone() TxInput {
	return *t
}

// Sequence is an ordered list of transactions; the constructor is always
// element zero (paper §IV-A).
type Sequence []TxInput

// Clone copies a sequence (element-shallow; see TxInput.Clone for why
// sharing Args is sound).
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	copy(out, s)
	return out
}

// String renders the call order, e.g. "ctor → invest → refund → invest".
func (s Sequence) String() string {
	names := make([]string, len(s))
	for i, t := range s {
		names[i] = t.Func
	}
	return strings.Join(names, " → ")
}

// Seed is one queue entry: a sequence plus the feedback recorded when it
// was executed.
type Seed struct {
	Seq Sequence
	// NewEdges is how many previously uncovered branch edges this seed
	// covered when first run.
	NewEdges int
	// HitNestedDepth is the deepest compile-time branch nesting the seed
	// reached (0 = none). Depth >= 2 marks a "nested branch" hit (§IV-B).
	HitNestedDepth int
	// PathWeight is the Algorithm 3 weight sum of the branch edges on the
	// seed's path; energy allocation is proportional to it.
	PathWeight float64
	// DistanceImproved marks seeds that reduced the global minimum branch
	// distance of some uncovered edge.
	DistanceImproved bool
	// masks caches the per-transaction mutation masks (Algorithm 2),
	// computed lazily.
	masks []*Mask
	// lastNudge records the most recent arithmetic nudge applied to this
	// seed so a distance improvement can be repeated as a greedy line
	// search (hill climbing on branch distance).
	lastNudge *nudgeInfo
	// Gen counts mutation generations from the initial corpus.
	Gen int
}

// nudgeInfo identifies a repeatable word-nudge mutation.
type nudgeInfo struct {
	txIdx int
	pos   int
	delta int64
}

// Clone copies the seed's sequence into a fresh seed (feedback reset).
func (s *Seed) Clone() *Seed {
	return &Seed{Seq: s.Seq.Clone(), Gen: s.Gen + 1}
}

// randomArgsFor builds a random argument byte stream for a method: one
// 32-byte word per input, drawn from a value pool. Address parameters are
// drawn from the campaign's account pool (senders, attacker, contract) the
// way real smart-contract fuzzers seed address arguments — a random 160-bit
// value would never collide with an account that holds state.
func randomArgsFor(m abi.Method, rng *rand.Rand, pool []u256.Int, addrPool []u256.Int) []byte {
	out := make([]byte, 0, 32*len(m.Inputs))
	for _, in := range m.Inputs {
		var w u256.Int
		switch in.Kind {
		case abi.Address:
			if len(addrPool) > 0 && rng.Intn(4) != 0 {
				w = addrPool[rng.Intn(len(addrPool))]
			} else {
				w = u256.New(uint64(rng.Intn(1024) + 1))
			}
		case abi.Bool:
			if rng.Intn(2) == 1 {
				w = u256.One
			}
		default:
			// Empty pools happen when a caller fuzzes with a bare dictionary;
			// leave the word zero instead of panicking on Intn(0). A non-empty
			// pool draws exactly as before, keeping transcripts unchanged.
			if len(pool) > 0 {
				w = pool[rng.Intn(len(pool))]
			}
		}
		b := w.Bytes32()
		out = append(out, b[:]...)
	}
	return out
}

// defaultValuePool is the base dictionary of interesting word values; the
// campaign extends it with constants harvested from the contract bytecode
// (PUSH immediates), the classic AFL-dictionary trick.
func defaultValuePool() []u256.Int {
	finney := u256.New(1_000_000_000_000_000)
	ether := u256.New(1_000_000_000_000_000_000)
	pool := []u256.Int{
		u256.Zero,
		u256.One,
		u256.New(2),
		u256.New(10),
		u256.New(100),
		u256.New(255),
		u256.New(256),
		u256.New(1000),
		u256.New(1 << 16),
		u256.Max,
		u256.Max.Rsh(1), // max signed
		finney,
		u256.New(88).Mul(finney),
		ether,
		u256.New(100).Mul(ether),
	}
	return pool
}

// FormatFinding renders a short human-readable seed description.
func (s *Seed) String() string {
	return fmt.Sprintf("seed{%s gen=%d w=%.1f}", s.Seq, s.Gen, s.PathWeight)
}
