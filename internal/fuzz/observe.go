package fuzz

import "mufuzz/internal/oracle"

// BranchEdge names one branch edge of the contract under test by its program
// counter and direction. It is the stable, engine-independent edge identity
// used by conformance transcripts: interned edge IDs are an in-memory detail
// of one campaign, but (PC, Taken) pairs survive serialization and compare
// across engine variants, processes, and machines.
type BranchEdge struct {
	PC    uint64
	Taken bool
}

// ExecRecord is the observable feedback of exactly one campaign execution:
// the sequence that ran, the coverage delta it produced, and the oracle
// classes it newly discovered. A stream of ExecRecords is a complete semantic
// trace of a campaign — two engines that emit identical record streams made
// identical decisions execution for execution.
type ExecRecord struct {
	// Index is the 1-based execution index (matches Result.Executions).
	Index int
	// Seq is a private clone of the executed sequence.
	Seq Sequence
	// NewEdges lists the branch edges this execution covered for the first
	// time in the campaign, in event order.
	NewEdges []BranchEdge
	// CoveredAfter is the campaign's covered-edge count after this execution.
	CoveredAfter int
	// NestedDepth is the deepest compile-time branch nesting reached.
	NestedDepth int
	// DistImproved reports whether the execution improved the minimum branch
	// distance of some uncovered edge.
	DistImproved bool
	// NewClasses are the bug classes first discovered by this execution, in
	// detection order.
	NewClasses []oracle.BugClass
}

// ExecObserver receives one ExecRecord per campaign execution. Calls happen
// on the coordinator goroutine, in the deterministic fold order (execution
// index order), regardless of how many executor workers ran the batch — an
// observer needs no synchronization of its own. The pipelined engine
// preserves this contract even though its fold overlaps execution: the
// reorder buffer releases outcomes to the coordinator strictly in batch
// order, and speculative line-search executions that get discarded are
// never folded, so they produce no record and no index. Observing is
// semantically inert: it must not (and cannot, through this interface)
// influence the campaign's decisions.
type ExecObserver interface {
	OnExec(ExecRecord)
}
