package fuzz

import (
	"testing"

	"mufuzz/internal/oracle"
	"mufuzz/internal/u256"
)

func TestMinimizePredicateRespected(t *testing.T) {
	// synthetic predicate: sequence must contain at least two "a" calls
	mk := func(names ...string) Sequence {
		s := Sequence{{Func: "__ctor"}}
		for _, n := range names {
			s = append(s, TxInput{Func: n})
		}
		return s
	}
	pred := func(s Sequence) bool {
		n := 0
		for _, tx := range s {
			if tx.Func == "a" {
				n++
			}
		}
		return n >= 2
	}
	seq := mk("b", "a", "c", "a", "d", "e", "a")
	min := Minimize(seq, pred)
	if !pred(min) {
		t.Fatal("minimized sequence violates predicate")
	}
	if len(min) != 3 { // ctor + two a's
		t.Errorf("minimized length = %d (%s), want 3", len(min), min)
	}
	if min[0].Func != "__ctor" {
		t.Error("ctor must stay first")
	}
}

func TestMinimizeNonMatchingInputUnchanged(t *testing.T) {
	seq := Sequence{{Func: "__ctor"}, {Func: "x"}}
	min := Minimize(seq, func(Sequence) bool { return false })
	if len(min) != len(seq) {
		t.Error("non-matching sequence must be returned unchanged")
	}
}

func TestMinimizeForBugCrowdsaleLike(t *testing.T) {
	// A bug gated behind a two-call phase machine: minimization must keep
	// both pump calls and the reap call.
	src := `contract P {
		uint256 counter;
		uint256 phase;
		uint256 acc;
		function pump(uint256 x) public {
			require(x < 1000);
			if (counter < 100) { counter += x; } else { phase = 1; }
		}
		function reap() public {
			if (phase == 1) { acc -= 7; }
		}
		function noise() public { }
	}`
	comp := mustCompile(t, src)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 4, Iterations: 10})

	// hand-build a triggering sequence with noise interleaved
	arg := func(v uint64) []byte {
		b := u256.New(v).Bytes32()
		return b[:]
	}
	seq := Sequence{
		{Func: "__ctor"},
		{Func: "noise"},
		{Func: "pump", Args: arg(999)},
		{Func: "noise"},
		{Func: "pump", Args: arg(999)},
		{Func: "noise"},
		{Func: "reap"},
		{Func: "noise"},
	}
	if !c.Replay(seq).BugClasses[oracle.IO] {
		t.Fatal("hand-built sequence should trigger IO")
	}
	min := c.MinimizeForBug(seq, oracle.IO)
	if !c.Replay(min).BugClasses[oracle.IO] {
		t.Fatal("minimized sequence lost the bug")
	}
	if len(min) != 4 { // ctor + pump + pump + reap
		t.Errorf("minimized = %s (len %d), want ctor+pump+pump+reap", min, len(min))
	}
	for _, tx := range min {
		if tx.Func == "noise" {
			t.Error("noise transaction survived minimization")
		}
	}
}

func TestMinimizeForEdge(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 4, Iterations: 10})
	key, ok := WithdrawDeepEdge(comp, c.ContractAddr(), "withdraw")
	if !ok {
		t.Fatal("withdraw edge not found")
	}
	ether := u256.New(1_000_000_000_000_000_000)
	arg := func(v u256.Int) []byte {
		b := v.Bytes32()
		return b[:]
	}
	seq := Sequence{
		{Func: "__ctor"},
		{Func: "refund"},
		{Func: "invest", Args: arg(u256.New(100).Mul(ether))},
		{Func: "refund"},
		{Func: "invest", Args: arg(u256.One)},
		{Func: "withdraw"},
	}
	if !c.Replay(seq).Edges[key] {
		t.Fatal("sequence should reach the deep branch")
	}
	min := c.MinimizeForEdge(seq, key)
	// minimal: ctor + invest + invest + withdraw
	if len(min) != 4 {
		t.Errorf("minimized = %s (len %d), want 4", min, len(min))
	}
	if !c.Replay(min).Edges[key] {
		t.Error("minimized sequence lost the edge")
	}
}

func TestReplayIndependentOfCampaignState(t *testing.T) {
	comp := mustCompile(t, crowdsaleSrc)
	c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 4, Iterations: 10})
	seq := Sequence{{Func: "__ctor"}, {Func: "refund"}}
	r1 := c.Replay(seq)
	r2 := c.Replay(seq)
	if len(r1.Edges) != len(r2.Edges) {
		t.Error("replay must be deterministic and state-free")
	}
}
