package fuzz

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mufuzz/internal/abi"
	"mufuzz/internal/analysis"
	"mufuzz/internal/evm"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// Options configures one fuzzing campaign.
type Options struct {
	Strategy Strategy
	// Seed makes the campaign deterministic.
	Seed int64
	// Iterations is the transaction-sequence execution budget (mask probes
	// count against it). Default 2000.
	Iterations int
	// TimeBudget optionally caps wall-clock time (0 = unlimited).
	TimeBudget time.Duration
	// MaxSeqLen bounds sequence growth. Default 8.
	MaxSeqLen int
	// GasPerTx is the gas limit per transaction. Default 2,000,000.
	GasPerTx uint64
	// EnergyBase is the mutation budget per selected seed. Default 16.
	EnergyBase int
	// InitialSeeds is the size of the initial corpus. Default 4.
	InitialSeeds int
	// Workers is the number of executor goroutines an energy round fans its
	// batch of mutated children across. 0 or 1 selects the sequential
	// engine, whose behavior is identical to the classic single-threaded
	// campaign for a fixed Seed. Values > 1 enable batched execution:
	// children are generated up front, executed in parallel (each worker
	// owning its own EVM, state copy, trace buffer, and per-child seeded
	// rand.Rand), and their feedback is merged on the coordinator in
	// deterministic batch order — results are reproducible for a fixed
	// (Seed, Workers) pair but differ from the sequential engine's. A
	// negative value selects runtime.NumCPU().
	Workers int
	// NoPrefixCache disables the intermediate-state checkpoint optimization
	// (paper §VI); used for ablation and equivalence testing.
	NoPrefixCache bool
	// ForceBatched runs the batched (coordinator/executor) engine even when
	// Workers is 1. The batched schedule — per-child rng seeds drawn from the
	// coordinator rng, outcomes folded in batch order — is a pure function of
	// Seed and independent of the worker count, so ForceBatched at Workers=1
	// produces byte-identical results to any Workers=N run of the same Seed.
	// The conformance differential runner uses it to prove that equivalence.
	ForceBatched bool
	// UseCopyState makes the executors hand off world state with the deep
	// State.Copy instead of the copy-on-write State.Fork at every handoff
	// (genesis, checkpoint resume, checkpoint store). Copy is the semantic
	// specification Fork is tested against; running a whole campaign under
	// Copy must be byte-identical to the Fork engine (conformance check).
	UseCopyState bool
	// NoIR pins every executor EVM to the reference switch-loop interpreter
	// instead of the compiled-IR hot path. The IR engine must be
	// byte-identical to the switch loop; running a whole campaign under NoIR
	// is the conformance ablation that proves it end-to-end.
	NoIR bool
	// NoPipeline pins the batched engine to the legacy fork-join shape: spawn
	// workers per round, wg.Wait(), then fold every slot serially. The default
	// pipelined engine (persistent worker pool, streaming in-order fold,
	// speculative line search) must be byte-identical to this barrier engine;
	// running a whole campaign under NoPipeline is the conformance ablation
	// that proves it end-to-end. Irrelevant when the sequential engine runs.
	NoPipeline bool
	// Observer, when non-nil, receives one ExecRecord per execution on the
	// coordinator goroutine in deterministic fold order. Observing never
	// changes campaign behavior; it is the conformance transcript hook.
	Observer ExecObserver
	// World turns the campaign into a multi-contract adversarial world:
	// secondary contracts deploy alongside the primary, sequences carry a
	// callee index per transaction, and an optional attacker model replaces
	// the reentrant-attacker native with synthesized bytecode whose behavior
	// is mutated seed material. Nil — or a world that adds nothing (no
	// members, no attacker) — is normalized away, keeping the single-contract
	// path byte-identical to the classic engine.
	World *WorldOptions
}

// Normalized returns the options with every default applied — exactly the
// configuration the engine runs under. Conformance transcripts record the
// normalized form so a replay does not depend on the engine's default values
// staying unchanged across versions.
func (o *Options) Normalized() Options { return o.withDefaults() }

func (o *Options) withDefaults() Options {
	out := *o
	if out.Iterations == 0 {
		out.Iterations = 2000
	}
	if out.MaxSeqLen == 0 {
		out.MaxSeqLen = 8
	}
	if out.GasPerTx == 0 {
		out.GasPerTx = 2_000_000
	}
	if out.EnergyBase == 0 {
		out.EnergyBase = 16
	}
	if out.InitialSeeds == 0 {
		out.InitialSeeds = 4
	}
	if out.Workers < 0 {
		out.Workers = runtime.NumCPU()
	}
	if out.Workers == 0 {
		out.Workers = 1
	}
	if worldEmpty(out.World) {
		out.World = nil
	}
	return out
}

// TimelinePoint samples coverage growth for the Fig. 5 curves.
type TimelinePoint struct {
	Executions int
	Elapsed    time.Duration
	Coverage   float64
}

// Result is the outcome of one campaign.
type Result struct {
	Strategy     string
	CoveredEdges int
	TotalEdges   int
	Coverage     float64 // CoveredEdges / TotalEdges
	Findings     []oracle.Finding
	Executions   int
	Elapsed      time.Duration
	Timeline     []TimelinePoint
	BugClasses   map[oracle.BugClass]bool
	// Repro maps each detected bug class to the first transaction sequence
	// that triggered it (a proof of concept; see Campaign.MinimizeForBug).
	Repro            map[oracle.BugClass]Sequence
	SeedQueueLen     int
	MasksComputed    int
	SequencesMutated int
}

// Campaign is the fuzzing coordinator for one contract. It owns all feedback
// state — coverage, branch distances, the seed queue, finding aggregation —
// and drives one or more executors. Executors never touch campaign state;
// the coordinator folds their outcomes in deterministic order.
type Campaign struct {
	target Target
	// code caches target.Code(): the runtime bytecode every analysis,
	// executor, and oracle of the campaign runs against.
	code []byte
	opts Options
	// rng is the coordinator's deterministic schedule source; rngSrc counts
	// its draws so snapshots can capture and restore the rng state exactly.
	rng      *rand.Rand
	rngSrc   *countedSource
	cfg      *analysis.CFG
	detector *oracle.Detector
	exec     *executor
	// ctorName anchors every sequence (element 0); depOrder, repeatable, and
	// callable cache the target's dataflow artifacts, shared read-only with
	// worker goroutines.
	ctorName   string
	depOrder   []string
	repeatable []string
	callable   []string
	// Multi-contract world tables, nil for single-contract campaigns.
	// worldTargets/worldAddrs map callee indices to contracts (0 = primary);
	// calleeOf resolves a (possibly qualified) function name to its callee
	// index; ctorOrder lists the member constructors in cross-contract
	// dependency order; attackerModel, when set, synthesizes the attacker
	// contract from the anchor's spec. reConfirmed memoizes that a reentrancy
	// finding already passed the state-divergence confirmation, so later
	// duplicate reports skip the replay pair.
	world         *WorldOptions
	worldTargets  []Target
	worldAddrs    []state.Address
	calleeOf      map[string]int
	ctorOrder     []string
	attackerModel AttackerModel
	reConfirmed   bool
	// workerExecs are the per-worker executors of the batched engine, built
	// once and reused across rounds so each worker's EVM, attacker native,
	// jumpdest cache, and trace buffer stay warm for the whole campaign.
	workerExecs []*executor
	// workerPool is the persistent goroutine pool of the pipelined engine,
	// scoped to the running slice: started lazily by the first pipelined
	// round, shut down when RunSlice returns so a parked campaign holds no
	// goroutines.
	workerPool *workerPool

	// identities
	genesis      *state.State
	contractAddr state.Address
	deployer     state.Address
	senders      []state.Address
	attackerAddr state.Address

	// branchIx interns every branch edge of the contract once per campaign;
	// edge-ID order is the deterministic branch order every selection uses
	// (previously re-derived by sorting map keys on each pick). All feedback
	// state below is indexed by edge ID.
	branchIx *analysis.BranchIndex
	// depthByEdge is the compile-time branch-site nesting depth per edge
	// (minisol BranchSite metadata), replacing the per-event linear
	// BranchSiteAt scan on the fold path.
	depthByEdge []int

	// feedback state, all dense over the edge-ID space
	covered      []bool
	coveredCount int
	// distKnown marks the branch-distance frontier of Algorithm 1 (lines
	// 7-13): the uncovered edges some execution came close to flipping.
	// minDist/distCmp hold the best distance and its comparison; distSeed
	// holds the seed that achieved it (the Seed, not just the sequence,
	// preserving its computed mask cache). distCount counts frontier edges.
	distKnown []bool
	minDist   []u256.Int
	distCmp   []evm.CmpInfo
	distSeed  []*Seed
	distCount int
	// cmpOps is the per-uncovered-edge operand table (Strategy.CmpFeedback):
	// beyond the single best-distance pair in distCmp, every distinct
	// comparison operand pair observed at an edge is kept, FIFO-bounded to
	// cmpOpsPerEdge, for splicing into mutated inputs. Cleared when the edge
	// is covered.
	cmpOps [][]cmpPair

	weights    *analysis.EdgeWeights
	totalEdges int
	pool       []u256.Int
	addrPool   []u256.Int
	// methods interns ABI method lookups by function name (constructor
	// included), shared read-only with the executors.
	methods map[string]abi.Method

	prefixes *prefixCache
	// repro holds, per bug class, the first sequence observed triggering it
	// — the proof-of-concept the CLI minimizes and prints.
	repro map[oracle.BugClass]Sequence

	queue      []*Seed
	executions int
	// pendingExecs counts dispatched-but-unmerged parallel executions so the
	// budget check accounts for work already in flight.
	pendingExecs int
	// qi is the round-robin queue cursor of the main loop; a struct field so
	// pausing between rounds (RunSlice) and snapshotting preserve it.
	qi int
	// corpusSeeded counts initial-corpus seeds built so far; the corpus phase
	// is resumable mid-way after a cancellation or snapshot.
	corpusSeeded int
	// ctx, when non-nil, is the cancellation signal of the slice currently
	// running: a cancelled context reads as an exhausted budget, stopping the
	// campaign cleanly at the next execution boundary.
	ctx context.Context
	// elapsedPrior accumulates the run time of completed slices; sliceStart
	// stamps the slice in flight. elapsed() is the campaign's total active
	// run time, excluding the gaps a time-slicing scheduler parks it for.
	elapsedPrior time.Duration
	sliceStart   time.Time
	inSlice      bool
	timeline     []TimelinePoint

	masksComputed    int
	maskProbes       int
	sequencesMutated int
	lastNewEdgeExec  int
	lineSearches     int
	lineSteps        int
}

// LineSearchStats reports (searches, total steps) for diagnostics.
func (c *Campaign) LineSearchStats() (int, int) { return c.lineSearches, c.lineSteps }

// PrefixCacheStats reports checkpoint cache hits and misses.
func (c *Campaign) PrefixCacheStats() (hits, misses int) { return c.prefixes.stats() }

// NewCampaign prepares a campaign for a compiled MiniSol contract — the
// classic entry point, equivalent to NewTargetCampaign over the minisol
// adapter.
func NewCampaign(comp *minisol.Compiled, opts Options) *Campaign {
	return NewTargetCampaign(MinisolTarget(comp), opts)
}

// NewTargetCampaign prepares a campaign for any fuzzable target: a compiled
// MiniSol contract (MinisolTarget) or source-free deployed bytecode with an
// ABI (internal/ingest).
func NewTargetCampaign(t Target, opts Options) *Campaign {
	o := opts.withDefaults()
	src := newCountedSource(o.Seed, 0)
	code := t.Code()
	c := &Campaign{
		target:     t,
		code:       code,
		opts:       o,
		rng:        rand.New(src),
		rngSrc:     src,
		cfg:        analysis.BuildCFG(code),
		ctorName:   t.Constructor().Name,
		depOrder:   t.DependencyOrder(),
		repeatable: t.RepeatCandidates(),
	}
	for _, m := range t.Methods() {
		c.callable = append(c.callable, m.Name)
	}
	c.branchIx = analysis.NewBranchIndex(c.cfg)
	numEdges := c.branchIx.NumEdges()
	c.covered = make([]bool, numEdges)
	c.distKnown = make([]bool, numEdges)
	c.minDist = make([]u256.Int, numEdges)
	c.distCmp = make([]evm.CmpInfo, numEdges)
	c.distSeed = make([]*Seed, numEdges)
	c.cmpOps = make([][]cmpPair, numEdges)
	c.weights = analysis.NewEdgeWeights(c.branchIx)
	c.depthByEdge = make([]int, numEdges)
	for _, site := range t.Branches() {
		if id, ok := c.branchIx.EdgeID(site.PC, false); ok {
			c.depthByEdge[id] = site.Depth
			c.depthByEdge[id^1] = site.Depth
		}
	}
	if !o.NoPrefixCache {
		c.prefixes = newPrefixCache(96)
	}
	c.repro = make(map[oracle.BugClass]Sequence)

	c.deployer = state.AddressFromUint(0xd431)
	userA := state.AddressFromUint(0x0a11)
	userB := state.AddressFromUint(0x0b22)
	c.attackerAddr = state.AddressFromUint(0xa77c)
	c.contractAddr = state.AddressFromUint(0xc0de)
	c.senders = []state.Address{c.deployer, userA, userB, c.attackerAddr}

	c.genesis = state.New()
	rich := u256.One.Lsh(120)
	for _, s := range c.senders {
		c.genesis.SetBalance(s, rich)
	}
	c.genesis.Commit()

	c.totalEdges = c.branchIx.NumEdges()

	// Address argument pool: every account that exists in the fuzzed world.
	for _, s := range c.senders {
		c.addrPool = append(c.addrPool, s.Word())
	}
	c.addrPool = append(c.addrPool, c.contractAddr.Word())

	// Value pool: defaults + constants harvested from PUSH immediates.
	c.pool = defaultValuePool()
	for _, ins := range analysis.Disassemble(code) {
		if ins.Op.IsPush() && len(ins.Imm) > 0 && len(ins.Imm) <= 32 {
			v := u256.FromBytes(ins.Imm)
			if !v.IsZero() && v.BitLen() < 200 {
				c.pool = append(c.pool, v)
			}
		}
	}
	// Mined dictionary: target-specific constants the PUSH harvest cannot
	// see (folded multi-instruction magics, keccak mapping bases, creation-
	// code immediates). Merged only under the flag, deduplicated against the
	// harvest, so legacy strategies keep today's exact pool and transcripts.
	if o.Strategy.MinedDictionary {
		seen := make(map[u256.Int]bool, len(c.pool))
		for _, v := range c.pool {
			seen[v] = true
		}
		for _, v := range t.Dictionary() {
			if !seen[v] {
				seen[v] = true
				c.pool = append(c.pool, v)
			}
		}
	}

	methods, selectors := internMethods(t)
	c.methods = methods
	c.initWorld(o.World, methods, selectors)
	c.detector = c.newDetector()
	c.exec = &executor{
		target:        t,
		genesis:       c.genesis,
		contractAddr:  c.contractAddr,
		deployer:      c.deployer,
		attackerAddr:  c.attackerAddr,
		senders:       c.senders,
		gasPerTx:      o.GasPerTx,
		inspector:     c.detector.Inspector(),
		prefixes:      c.prefixes,
		branchIx:      c.branchIx,
		depthByEdge:   c.depthByEdge,
		methods:       methods,
		selectors:     selectors,
		worldAddrs:    c.worldAddrs,
		worldTargets:  c.worldTargets,
		attackerModel: c.attackerModel,
		copyState:     o.UseCopyState,
		// Compile the contract's IR once per campaign; worker clones share the
		// read-only Program, so no worker ever pays the decode+fuse pass.
		prog: evm.CompileProgram(code),
		noIR: o.NoIR,
	}
	return c
}

// initWorld wires the multi-contract tables of a world campaign: member
// deployment addresses, qualified method/selector interning ("member.fn"),
// callee indexing, the cross-contract §IV-A ordering of constructors and
// dependency blocks, and the attacker model. No-op for single-contract
// campaigns (w nil), so the default path stays byte-identical.
func (c *Campaign) initWorld(w *WorldOptions, methods map[string]abi.Method, selectors map[string][4]byte) {
	if w == nil {
		return
	}
	c.world = w
	c.attackerModel = w.Attacker
	c.worldTargets = []Target{c.target}
	c.worldAddrs = []state.Address{c.contractAddr}
	c.calleeOf = make(map[string]int, 2*len(methods))
	for name := range methods {
		c.calleeOf[name] = 0
	}
	for i, m := range w.Members {
		addr := m.Addr
		if addr == (state.Address{}) {
			addr = WorldMemberAddr(i)
		}
		c.worldTargets = append(c.worldTargets, m.Target)
		c.worldAddrs = append(c.worldAddrs, addr)
		c.addrPool = append(c.addrPool, addr.Word())
	}
	for i, m := range w.Members {
		idx := i + 1
		register := func(fn abi.Method) {
			q := m.Name + "." + fn.Name
			methods[q] = fn
			selectors[q] = fn.Selector()
			c.calleeOf[q] = idx
		}
		register(m.Target.Constructor())
		for _, fn := range m.Target.Methods() {
			register(fn)
		}
		for _, fn := range m.Target.RepeatCandidates() {
			c.repeatable = append(c.repeatable, m.Name+"."+fn)
		}
		// Member PUSH immediates join the value pool, same harvest as the
		// primary's.
		for _, ins := range analysis.Disassemble(m.Target.Code()) {
			if ins.Op.IsPush() && len(ins.Imm) > 0 && len(ins.Imm) <= 32 {
				v := u256.FromBytes(ins.Imm)
				if !v.IsZero() && v.BitLen() < 200 {
					c.pool = append(c.pool, v)
				}
			}
		}
	}
	// Cross-contract §IV-A: order the world's targets writer-before-reader
	// over recovered inter-contract links (a target whose bytecode references
	// another member's address depends on it), then rebuild the constructor,
	// callable, and dependency orders as per-target blocks in that order.
	order := c.worldOrder()
	var callable, depOrder []string
	for _, ti := range order {
		if ti == 0 {
			callable = append(callable, c.callable...)
			depOrder = append(depOrder, c.depOrder...)
			continue
		}
		m := w.Members[ti-1]
		c.ctorOrder = append(c.ctorOrder, m.Name+"."+m.Target.Constructor().Name)
		for _, fn := range m.Target.Methods() {
			callable = append(callable, m.Name+"."+fn.Name)
		}
		for _, fn := range m.Target.DependencyOrder() {
			depOrder = append(depOrder, m.Name+"."+fn)
		}
	}
	c.callable, c.depOrder = callable, depOrder
}

// worldOrder topologically orders the world's target indices (0 = primary)
// so a target whose bytecode links another member's deployment address comes
// after it — the cross-contract extension of the paper's write→read
// dependency ordering. Targets without recovered links, and cycles, fall
// back to declaration order (depth-first in index order, visiting-node edges
// skipped).
func (c *Campaign) worldOrder() []int {
	n := len(c.worldTargets)
	addrIdx := make(map[state.Address]int, n)
	for i, a := range c.worldAddrs {
		addrIdx[a] = i
	}
	deps := make([][]int, n)
	for i, t := range c.worldTargets {
		if lt, ok := t.(LinkedTarget); ok {
			for _, a := range lt.LinkedAddresses() {
				if j, ok := addrIdx[a]; ok && j != i {
					deps[i] = append(deps[i], j)
				}
			}
		}
	}
	order := make([]int, 0, n)
	mark := make([]int, n) // 0 unvisited, 1 visiting, 2 done
	var visit func(i int)
	visit = func(i int) {
		mark[i] = 1
		for _, j := range deps[i] {
			if mark[j] == 0 {
				visit(j)
			}
		}
		mark[i] = 2
		order = append(order, i)
	}
	for i := 0; i < n; i++ {
		if mark[i] == 0 {
			visit(i)
		}
	}
	return order
}

// newDetector builds a fresh detector in the campaign's oracle mode:
// witnessed for world campaigns — findings need a real cross-contract
// schedule in the trace, not a taint shape — heuristic otherwise. Replay and
// minimization build their detectors here so verdicts match the live
// campaign's.
func (c *Campaign) newDetector() *oracle.Detector {
	if c.world != nil {
		return oracle.NewWitnessedDetector(c.contractAddr, c.code, c.attackerAddr)
	}
	return oracle.NewDetector(c.contractAddr, c.code)
}

// confirmReport gates witnessed reentrancy findings behind the state-
// divergence bar. The candidate prefix replays twice on detached executors —
// once with the synthesized attacker, once with the attacker stripped to a
// plain EOA — and RE findings survive only when some account of the world
// ends in a different state (the reentrant schedule changed the outcome).
// Reports without RE findings pass through untouched. The second return
// value reports whether an RE finding was present and confirmed.
func (c *Campaign) confirmReport(prefix Sequence, rep oracle.Report) (oracle.Report, bool) {
	hasRE := false
	for _, f := range rep.Findings {
		if f.Class == oracle.RE {
			hasRE = true
			break
		}
	}
	if !hasRE {
		return rep, false
	}
	if c.reentrancyDiverges(prefix) {
		return rep, true
	}
	kept := rep
	kept.Findings = nil
	for _, f := range rep.Findings {
		if f.Class != oracle.RE {
			kept.Findings = append(kept.Findings, f)
		}
	}
	return kept, false
}

// reentrancyDiverges replays prefix from genesis with and without the
// attacker contract (the stripped run leaves the attacker an EOA whose
// callbacks do nothing) and compares the final world states account by
// account over every address the campaign controls: the world's contracts,
// the attacker, and the senders.
func (c *Campaign) reentrancyDiverges(prefix Sequence) bool {
	stripped := prefix.Clone()
	stripped[0].Attacker = nil
	withAtk := c.exec.detached().runFinalState(prefix)
	plain := c.exec.detached().runFinalState(stripped)
	for _, a := range c.worldAddrs {
		if !withAtk.AccountEqual(plain, a) {
			return true
		}
	}
	if !withAtk.AccountEqual(plain, c.attackerAddr) {
		return true
	}
	for _, s := range c.senders {
		if !withAtk.AccountEqual(plain, s) {
			return true
		}
	}
	return false
}

// --- Sequence construction ---

// newTx builds a transaction for fn with random inputs drawn from the
// campaign's rng.
func (c *Campaign) newTx(fn string) TxInput {
	return c.newTxRand(fn, c.rng)
}

// newTxRand builds a transaction for fn with random inputs drawn from rng.
// Workers pass per-child rngs; the campaign's own maps are only read.
func (c *Campaign) newTxRand(fn string, rng *rand.Rand) TxInput {
	m := c.methods[fn]
	tx := TxInput{
		Func:   fn,
		Args:   randomArgsFor(m, rng, c.pool, c.addrPool),
		Sender: rng.Intn(len(c.senders)),
	}
	if c.calleeOf != nil {
		tx.Callee = c.calleeOf[fn]
	}
	if m.Payable && rng.Intn(2) == 0 {
		tx.Value = c.pool[rng.Intn(len(c.pool))]
	}
	return tx
}

// initialSequence builds a base sequence per the strategy: the dependency
// order of §IV-A for dataflow strategies, a random order otherwise. The
// constructor is always first.
func (c *Campaign) initialSequence() Sequence {
	seq := Sequence{c.newTx(c.ctorName)}
	seq[0].Sender = 0 // the deployer deploys
	seq[0].Value = u256.Zero
	if c.attackerModel != nil {
		seq[0].Attacker = c.attackerModel.Default()
	}
	// World campaigns run every member's constructor right after the anchor,
	// in cross-contract dependency order (linked-to members first).
	for _, fn := range c.ctorOrder {
		tx := c.newTx(fn)
		tx.Sender = 0
		tx.Value = u256.Zero
		seq = append(seq, tx)
	}

	var order []string
	if c.opts.Strategy.DataflowSequences {
		order = c.depOrder
	} else {
		order = append([]string(nil), c.callable...)
		c.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	for _, fn := range order {
		if len(seq) >= c.opts.MaxSeqLen {
			break
		}
		seq = append(seq, c.newTx(fn))
	}
	return seq
}

// --- Execution ---

// execResult is the feedback from running one sequence, after the outcome
// has been folded into campaign state.
type execResult struct {
	newEdges       int
	hitNestedDepth int
	distImproved   bool
	// branchesByTx references the outcome's per-transaction branch events
	// (shared, immutable — no flattened copy is materialized).
	branchesByTx [][]evm.BranchEvent
	// newEdgeIDs lists the newly covered edge IDs in event order; collected
	// only when an Observer is installed (nil on the default hot path).
	newEdgeIDs []int32
}

// fold integrates a batch of contract branch events into the campaign's
// coverage, nesting, and branch-distance bookkeeping. It is shared between
// live execution and prefix-checkpoint replay so both paths produce
// identical feedback. Coordinator-only.
//
// The whole fold is indexed: events carry interned edge IDs, so coverage,
// distance, and nesting bookkeeping are array walks with no hashing. id^1 is
// the opposite direction of an edge (see analysis.BranchIndex).
func (c *Campaign) fold(res *execResult, branches []evm.BranchEvent, seq Sequence) {
	for _, br := range branches {
		id := c.branchIx.EdgeOf(br)
		if id < 0 {
			continue // not a contract JUMPI site; cannot occur for CFG-decoded code
		}
		if !c.covered[id] {
			c.covered[id] = true
			c.coveredCount++
			res.newEdges++
			c.lastNewEdgeExec = c.executions
			if c.opts.Observer != nil {
				res.newEdgeIDs = append(res.newEdgeIDs, id)
			}
			if c.distKnown[id] {
				// the edge left the distance frontier by being covered
				c.distKnown[id] = false
				c.distSeed[id] = nil
				c.distCount--
			}
			c.cmpOps[id] = nil
		}
		if d := c.depthByEdge[id]; d > res.hitNestedDepth {
			res.hitNestedDepth = d
		}
		// branch distance toward the uncovered opposite direction
		opp := id ^ 1
		if !c.covered[opp] && br.HasCmp {
			if c.opts.Strategy.CmpFeedback {
				c.recordCmpPair(opp, br.Cmp)
			}
			d := br.Cmp.FlipDistance()
			if !c.distKnown[opp] || d.Lt(c.minDist[opp]) {
				res.distImproved = true
				if !c.distKnown[opp] {
					c.distKnown[opp] = true
					c.distCount++
				}
				c.minDist[opp] = d
				c.distCmp[opp] = br.Cmp
				c.distSeed[opp] = &Seed{Seq: seq.Clone(), DistanceImproved: true}
			}
		}
	}
	if c.opts.Strategy.DynamicEnergy {
		c.weights.MergeTrace(branches)
	}
}

// foldOutcome merges one executor outcome into campaign state, transaction
// by transaction, exactly the way a live single-threaded execution would
// have: coverage/distance fold, then oracle absorption and proof-of-concept
// capture, per transaction in order.
func (c *Campaign) foldOutcome(seq Sequence, out *execOutcome) execResult {
	res := execResult{branchesByTx: out.branchesByTx}
	var newClasses []oracle.BugClass
	ri := 0
	for i, txBranches := range out.branchesByTx {
		c.fold(&res, txBranches, seq)
		for ri < len(out.reports) && out.reports[ri].txIdx == i {
			rep := out.reports[ri].report
			// World campaigns with attacker synthesis hold reentrancy findings
			// to the divergence bar before they enter the aggregate: the
			// reentrant schedule must actually change the outcome. Once one
			// finding passed, duplicates skip the replay pair.
			if c.attackerModel != nil && !c.reConfirmed {
				var confirmed bool
				rep, confirmed = c.confirmReport(seq[:i+1], rep)
				if confirmed {
					c.reConfirmed = true
				}
			}
			for _, class := range c.detector.Absorb(rep) {
				if _, have := c.repro[class]; !have {
					// keep only the prefix up to and including the tx that fired
					c.repro[class] = seq[:i+1].Clone()
				}
				if c.opts.Observer != nil {
					newClasses = append(newClasses, class)
				}
			}
			ri++
		}
	}
	if out.nestedDepth > res.hitNestedDepth {
		res.hitNestedDepth = out.nestedDepth
	}
	if res.newEdges > 0 {
		c.timeline = append(c.timeline, TimelinePoint{
			Executions: c.executions,
			Elapsed:    c.elapsed(),
			Coverage:   c.CoverageRatio(),
		})
	}
	if obs := c.opts.Observer; obs != nil {
		edges := make([]BranchEdge, len(res.newEdgeIDs))
		for i, id := range res.newEdgeIDs {
			pc, taken := c.branchIx.Edge(id)
			edges[i] = BranchEdge{PC: pc, Taken: taken}
		}
		obs.OnExec(ExecRecord{
			Index:        c.executions,
			Seq:          seq.Clone(),
			NewEdges:     edges,
			CoveredAfter: c.coveredCount,
			NestedDepth:  res.hitNestedDepth,
			DistImproved: res.distImproved,
			NewClasses:   newClasses,
		})
	}
	return res
}

// execute runs a sequence on the coordinator's executor and folds its
// feedback into the campaign. Every execution — including Algorithm 2 mask
// probes — counts toward coverage and the oracles, the way any AFL-family
// fuzzer counts all of its executions.
func (c *Campaign) execute(seq Sequence) execResult {
	c.executions++
	out := c.exec.run(seq)
	return c.foldOutcome(seq, &out)
}

// Covered returns the covered branch edges as a BranchKey set — a snapshot
// materialized from the campaign's coverage bitset (diagnostics; the engine
// itself never builds this map).
func (c *Campaign) Covered() map[evm.BranchKey]bool {
	out := make(map[evm.BranchKey]bool, c.coveredCount)
	for id, cov := range c.covered {
		if cov {
			pc, taken := c.branchIx.Edge(int32(id))
			out[evm.BranchKey{Addr: c.contractAddr, PC: pc, Taken: taken}] = true
		}
	}
	return out
}

// EdgeCovered reports whether the (pc, taken) branch edge of the contract
// under test is covered — an O(1) probe through the branch index, for
// callers that would otherwise materialize the whole Covered set to test
// one edge.
func (c *Campaign) EdgeCovered(pc uint64, taken bool) bool {
	if id, ok := c.branchIx.EdgeID(pc, taken); ok {
		return c.covered[id]
	}
	return false
}

// CoverageRatio returns covered/total branch edges.
func (c *Campaign) CoverageRatio() float64 {
	if c.totalEdges == 0 {
		return 1
	}
	return float64(c.coveredCount) / float64(c.totalEdges)
}

// --- Energy (paper §IV-C) ---

// energyFor assigns the mutation budget of a seed. With dynamic energy the
// budget scales with the Algorithm 3 weight of the seed's path; otherwise it
// is uniform (sFuzz's default scheme).
func (c *Campaign) energyFor(seed *Seed) int {
	base := c.opts.EnergyBase
	if !c.opts.Strategy.DynamicEnergy || c.weights.Count() == 0 {
		return base
	}
	// total and count are maintained incrementally by the weight fold, so
	// energy assignment is O(1) instead of a map sweep per seed.
	avg := c.weights.Total() / float64(c.weights.Count())
	if avg <= 0 {
		return base
	}
	scale := 1.0 + seed.PathWeight/(avg*8)
	if scale > 4 {
		scale = 4
	}
	e := int(float64(base) * scale)
	if e < 1 {
		e = 1
	}
	return e
}

// --- Mutation of one seed ---

// mutateSeed produces a child from the campaign rng (sequential engine).
func (c *Campaign) mutateSeed(seed *Seed) *Seed {
	child, seqMutated := c.mutateSeedRand(seed, c.rng)
	c.sequencesMutated += seqMutated
	return child
}

// mutateSeedRand produces a child: sequence-level mutation (sometimes) plus
// input-level byte mutations filtered by the seed's masks. All randomness
// comes from rng and all campaign state is only read, so workers can mutate
// concurrently with per-child seeded rngs. The second return value counts
// sequence-level mutations applied (merged into campaign stats by the
// caller).
func (c *Campaign) mutateSeedRand(seed *Seed, rng *rand.Rand) (*Seed, int) {
	child := seed.Clone()
	seqMutated := 0
	sm := &seqMutator{
		strategy:   c.opts.Strategy,
		repeatable: c.repeatable,
		callable:   c.callable,
	}
	newTx := func(fn string) TxInput { return c.newTxRand(fn, rng) }

	// Sequence-level mutation with probability 1/3 (the paper mutates the
	// sequence once and then focuses on inputs).
	if rng.Intn(3) == 0 {
		child.Seq = sm.mutateSequence(child.Seq, rng, newTx, c.opts.MaxSeqLen)
		seqMutated++
	}

	// Attacker-spec mutation: the synthesized attacker's callback behavior —
	// which victim selector it re-enters, with what calldata, to what depth,
	// whether it reverts — is seed material riding on the anchor. The draw is
	// gated on the model, so single-contract rng streams are untouched.
	if c.attackerModel != nil && rng.Intn(4) == 0 {
		child.Seq[0].Attacker = c.attackerModel.Mutate(child.Seq[0].Attacker, rng)
	}

	// Sender alignment: same-account deposit/withdraw patterns (reentrancy,
	// refunds) need every transaction issued by one identity; occasionally
	// unify all senders.
	if rng.Intn(8) == 0 {
		s := rng.Intn(len(c.senders))
		for i := 1; i < len(child.Seq); i++ {
			child.Seq[i].Sender = s
		}
	}

	// Input-level mutation on 1-2 transactions.
	nMut := 1 + rng.Intn(2)
	for k := 0; k < nMut; k++ {
		if len(child.Seq) <= 1 {
			break
		}
		ti := rng.Intn(len(child.Seq)-1) + 1
		tx := &child.Seq[ti]
		stream := tx.Stream()
		if len(stream) == 0 {
			continue
		}
		var mask *Mask
		if c.opts.Strategy.MutationMasking && ti < len(seed.masks) {
			mask = seed.masks[ti]
		}
		// A mask is a license to mutate hard: critical positions are frozen,
		// so several mutations can be stacked per child without destroying
		// the property that made the seed valuable (the FairFuzz effect).
		rounds := 1
		if mask != nil && mask.AllowedCount() > 0 {
			rounds = 2 + rng.Intn(4)
		}
		for r := 0; r < rounds; r++ {
			var nudge *nudgeInfo
			stream, nudge = c.mutateStream(stream, mask, rng)
			if nudge != nil {
				nudge.txIdx = ti
				child.lastNudge = nudge
			}
		}
		tx.SetStream(stream)
		// occasionally flip the sender
		if rng.Intn(8) == 0 {
			tx.Sender = rng.Intn(len(c.senders))
		}
	}
	return child, seqMutated
}

// mutateStream applies one input mutation respecting the mask. When the
// mutation is an arithmetic word nudge, its descriptor is returned so the
// campaign can replay it as a greedy line search on branch distance.
func (c *Campaign) mutateStream(stream []byte, mask *Mask, rng *rand.Rand) ([]byte, *nudgeInfo) {
	// Distance-directed mutation: copy a comparison operand of an uncovered
	// branch into a word, or nudge a word arithmetically (sFuzz-style
	// descent). Available to strategies with branch-distance feedback.
	if c.opts.Strategy.BranchDistance && c.distCount > 0 && rng.Intn(2) == 0 {
		id := c.nthFrontierEdge(rng.Intn(c.distCount))
		cmp := c.distCmp[id]
		i := rng.Intn(len(stream))
		// Operand-table splicing (CmpFeedback): half the time, plant one of
		// the edge's observed operand pairs — not just the best-distance one —
		// into the word at i, writing only mask-permitted bytes. With the flag
		// off no extra rng draw happens, so legacy transcripts are unchanged.
		if c.opts.Strategy.CmpFeedback {
			if ops := c.cmpOps[id]; len(ops) > 0 && rng.Intn(2) == 0 {
				p := ops[rng.Intn(len(ops))]
				v := p.a
				if rng.Intn(2) == 1 {
					v = p.b
				}
				return writeWordAtMasked(stream, i, v, mask), nil
			}
		}
		if mask.OK(MutOverwrite, (i/32)*32) {
			switch rng.Intn(3) {
			case 0:
				return writeWordAt(stream, i, cmp.A), nil
			case 1:
				return writeWordAt(stream, i, cmp.B), nil
			default:
				d := nudgeDeltas[rng.Intn(len(nudgeDeltas))]
				return nudgeWordAt(stream, i, d), &nudgeInfo{pos: i, delta: d}
			}
		}
	}

	// Plain O/I/R/D mutation; retry a few times to find a permitted spot.
	for attempt := 0; attempt < 8; attempt++ {
		x := MutType(rng.Intn(int(numMutTypes)))
		n := 1 + rng.Intn(4)
		if x == MutReplace {
			n = 1 + rng.Intn(32)
		}
		i := rng.Intn(len(stream) + 1)
		if i == len(stream) && x != MutInsert {
			i = len(stream) - 1
		}
		if !mask.OK(x, i) {
			continue
		}
		return applyMutation(stream, x, n, i, rng, c.pool), nil
	}
	return stream, nil
}

// nudgeDeltas are the arithmetic descent steps of distance-guided mutation
// (hoisted so the hot path does not rebuild the literal per mutation).
var nudgeDeltas = []int64{1, -1, 2, -2, 16, -16, 256, -256, 4096, -4096, 65536, -65536}

// nthFrontierEdge returns the edge ID of the k-th frontier entry in edge-ID
// order. Edge-ID order is the deterministic branch order the pre-interning
// engine obtained by sorting map keys (pc ascending, not-taken first) —
// interning computes it once per campaign, so random selection needs no
// per-pick sort or allocation. minimize.go and report.go are unaffected:
// replays use BranchKey sets and reports sort findings independently.
func (c *Campaign) nthFrontierEdge(k int) int32 {
	for id, known := range c.distKnown {
		if known {
			if k == 0 {
				return int32(id)
			}
			k--
		}
	}
	panic("fuzz: frontier count out of sync")
}

// cmpOpsPerEdge bounds the operand table of one uncovered edge; the oldest
// pair is evicted first, so the table tracks the operands of recent
// executions (storage-dependent comparisons drift as state mutates).
const cmpOpsPerEdge = 6

// cmpPair is one concrete comparison operand pair observed at a branch.
type cmpPair struct{ a, b u256.Int }

// recordCmpPair folds one observed comparison into an uncovered edge's
// operand table: distinct pairs only, FIFO-bounded. Repeat observations of
// the same pair (by far the common case) exit on the first scan hit.
func (c *Campaign) recordCmpPair(id int32, cmp evm.CmpInfo) {
	ops := c.cmpOps[id]
	for _, p := range ops {
		if p.a.Eq(cmp.A) && p.b.Eq(cmp.B) {
			return
		}
	}
	if len(ops) >= cmpOpsPerEdge {
		copy(ops, ops[1:])
		ops[len(ops)-1] = cmpPair{a: cmp.A, b: cmp.B}
		return
	}
	c.cmpOps[id] = append(ops, cmpPair{a: cmp.A, b: cmp.B})
}

func (c *Campaign) callableFuncs() []string { return c.callable }

// --- Mask computation (Algorithm 2 driver) ---

// ensureMasks computes per-transaction masks for a qualifying seed: one that
// hits a nested branch or improves a branch distance (Algorithm 1 line 17).
// Mask probes are capped at a fraction of the campaign budget so Algorithm 2
// cannot starve the main mutation loop. Probes are inherently sequential
// (each mask position's verdict feeds the next candidate), so they always
// run on the coordinator's executor.
func (c *Campaign) ensureMasks(seed *Seed) {
	if seed.masks != nil || !c.opts.Strategy.MutationMasking {
		return
	}
	if seed.HitNestedDepth < 2 && !seed.DistanceImproved {
		return
	}
	if c.maskProbes*5 > c.opts.Iterations {
		return
	}
	// Masks pay off on hard branches; while plain mutation is still finding
	// new edges cheaply, defer the probe cost (stall detection).
	if c.executions-c.lastNewEdgeExec < 50 {
		return
	}
	seed.masks = make([]*Mask, len(seed.Seq))
	baseline := c.execute(seed.Seq)
	for ti := 1; ti < len(seed.Seq); ti++ {
		if c.budgetExhausted() {
			return
		}
		tx := seed.Seq[ti]
		stream := tx.Stream()
		if len(stream) == 0 {
			continue
		}
		c.masksComputed++
		// One probe sequence serves the whole mask scan: SetStream replaces
		// the transaction's Args wholesale per candidate, so anything the
		// fold retained from an earlier probe (repro/distance clones share
		// the then-current Args array) stays intact.
		probeSeq := seed.Seq.Clone()
		seed.masks[ti] = ComputeMask(stream, c.rng, c.pool, func(candidate []byte) bool {
			if c.budgetExhausted() || c.maskProbes*5 > c.opts.Iterations {
				// Out of budget: deny, leaving the position frozen rather
				// than probing past the campaign's execution budget.
				return false
			}
			c.maskProbes++
			probeSeq[ti].SetStream(candidate)
			r := c.execute(probeSeq)
			// property preserved: still reaches the nested depth, or still
			// improves some distance
			if baseline.hitNestedDepth >= 2 && r.hitNestedDepth >= baseline.hitNestedDepth {
				return true
			}
			return r.distImproved
		})
	}
}

// budgetExhausted reports whether the campaign must stop fuzzing: budget
// spent, time budget spent, or the running slice's context cancelled. Every
// execution site checks it, so cancellation stops a campaign cleanly at the
// next execution boundary — mid-round, mid-mask-probe, or mid-line-search —
// leaving the coordinator state consistent for a snapshot.
func (c *Campaign) budgetExhausted() bool {
	if c.ctx != nil && c.ctx.Err() != nil {
		return true
	}
	return c.exhausted()
}

// exhausted is the budget check alone, ignoring cancellation — the
// campaign-completion predicate RunSlice reports through its done return.
func (c *Campaign) exhausted() bool {
	if c.executions+c.pendingExecs >= c.opts.Iterations {
		return true
	}
	if c.opts.TimeBudget > 0 && c.elapsed() > c.opts.TimeBudget {
		return true
	}
	return false
}

// elapsed returns the campaign's cumulative active run time across slices.
func (c *Campaign) elapsed() time.Duration {
	if c.inSlice {
		return c.elapsedPrior + time.Since(c.sliceStart)
	}
	return c.elapsedPrior
}

// --- Main loop (Algorithm 1) ---

// Run executes the campaign to its budget and returns the result.
func (c *Campaign) Run() *Result {
	return c.RunCtx(context.Background())
}

// RunCtx is Run with cooperative cancellation: when ctx is cancelled the
// campaign stops cleanly at the next execution boundary (mid-round included)
// and returns the partial result. A cancelled campaign's state stays
// consistent — it can be snapshotted and resumed, or RunCtx called again
// with a live context to continue.
func (c *Campaign) RunCtx(ctx context.Context) *Result {
	res, _ := c.RunSlice(ctx, 0)
	return res
}

// RunSlice runs up to maxRounds energy rounds (0 = no round cap) and returns
// the result so far plus whether the campaign is complete (budget exhausted
// or no seeds to fuzz). It is the time-slicing primitive the campaign
// scheduler multiplexes concurrent campaigns with: a slice boundary is a
// deterministic point in the schedule, so a campaign paused between slices
// and snapshotted resumes byte-identically to an uninterrupted run.
//
// The first slice builds the initial corpus before counting rounds; a slice
// entered with a cancelled context does nothing and reports the campaign's
// completion state unchanged.
func (c *Campaign) RunSlice(ctx context.Context, maxRounds int) (*Result, bool) {
	c.ctx = ctx
	c.inSlice = true
	c.sliceStart = time.Now()
	defer func() {
		c.stopWorkerPool()
		c.elapsedPrior += time.Since(c.sliceStart)
		c.inSlice = false
		c.ctx = nil
	}()

	// Initial corpus (sequential: it defines the campaign's starting point).
	// Resumable: a cancellation mid-corpus leaves corpusSeeded short and the
	// next slice continues building.
	for c.corpusSeeded < c.opts.InitialSeeds && !c.budgetExhausted() {
		seed := &Seed{Seq: c.initialSequence()}
		r := c.execute(seed.Seq)
		seed.NewEdges = r.newEdges
		seed.HitNestedDepth = r.hitNestedDepth
		seed.DistanceImproved = r.distImproved
		seed.PathWeight = c.weights.PathWeightTx(r.branchesByTx)
		c.queue = append(c.queue, seed)
		c.corpusSeeded++
	}

	// Fuzzing rounds.
	for rounds := 0; !c.budgetExhausted() && len(c.queue) > 0; rounds++ {
		if maxRounds > 0 && rounds >= maxRounds {
			break
		}
		seed := c.pickSeed(&c.qi)
		c.ensureMasks(seed)
		energy := c.energyFor(seed)
		if c.opts.Workers > 1 || c.opts.ForceBatched {
			if c.opts.NoPipeline {
				c.fuzzRoundBarrier(seed, energy, &c.qi)
			} else {
				c.fuzzRoundPipelined(seed, energy, &c.qi)
			}
		} else {
			c.fuzzRound(seed, energy, &c.qi)
		}
		c.qi++
	}

	// A campaign is complete when its budget is spent, or when a fully
	// built initial corpus left nothing to fuzz. An empty queue before the
	// corpus phase ran — a slice entered with an already-cancelled context —
	// is not completion: the campaign has not started yet.
	done := c.exhausted() || (c.corpusSeeded >= c.opts.InitialSeeds && len(c.queue) == 0)
	return c.result(), done
}

// result assembles the campaign outcome from current coordinator state. It
// is safe to call between slices: Detector.Finalize does not mutate the
// aggregate (the EF verdict is recomputed per call — in witnessed mode it
// can even retract when a later execution moves value out), so a
// mid-campaign result does not perturb the remaining schedule.
func (c *Campaign) result() *Result {
	findings := c.detector.Finalize()
	repro := make(map[oracle.BugClass]Sequence, len(c.repro))
	for class, seq := range c.repro {
		repro[class] = seq
	}
	return &Result{
		Repro:            repro,
		Strategy:         c.opts.Strategy.Name,
		CoveredEdges:     c.coveredCount,
		TotalEdges:       c.totalEdges,
		Coverage:         c.CoverageRatio(),
		Findings:         findings,
		Executions:       c.executions,
		Elapsed:          c.elapsed(),
		Timeline:         c.timeline,
		BugClasses:       c.detector.Classes(),
		SeedQueueLen:     len(c.queue),
		MasksComputed:    c.masksComputed,
		SequencesMutated: c.sequencesMutated,
	}
}

// ResultSoFar assembles the campaign outcome from current coordinator state
// without running anything — the status a scheduler reports for a campaign
// parked between slices (or restored from a snapshot and not yet resumed).
func (c *Campaign) ResultSoFar() *Result {
	return c.result()
}

// InjectSequences executes externally supplied transaction sequences —
// corpus seeds imported from a store, cross-pollinated from a sibling
// campaign — against the campaign budget and admits the interesting ones
// (new coverage or improved branch distance) into the seed queue. Sequences
// are sanitized first: transactions calling functions this contract does not
// have are dropped, over-long sequences are truncated, and sequences without
// a leading constructor are rejected. Returns how many sequences executed.
func (c *Campaign) InjectSequences(seqs []Sequence) int {
	n := 0
	for _, seq := range seqs {
		if c.budgetExhausted() {
			break
		}
		seq = c.sanitizeSequence(seq)
		if seq == nil {
			continue
		}
		seed := &Seed{Seq: seq}
		r := c.execute(seed.Seq)
		c.admit(seed, r, &c.qi)
		n++
	}
	return n
}

// sanitizeSequence adapts a foreign sequence to this campaign's contract, or
// returns nil when nothing usable remains.
func (c *Campaign) sanitizeSequence(seq Sequence) Sequence {
	if len(seq) == 0 || seq[0].Func != c.ctorName {
		return nil
	}
	out := make(Sequence, 0, len(seq))
	for _, tx := range seq {
		if _, ok := c.methods[tx.Func]; !ok {
			continue
		}
		t := tx.Clone()
		t.Sender = ((t.Sender % len(c.senders)) + len(c.senders)) % len(c.senders)
		// Callee indices are rebound to this campaign's world (foreign worlds
		// may index members differently); attacker specs survive only on the
		// anchor of a campaign that can compile them.
		if c.calleeOf != nil {
			t.Callee = c.calleeOf[t.Func]
		} else {
			t.Callee = 0
		}
		if len(out) > 0 || c.attackerModel == nil {
			t.Attacker = nil
		}
		out = append(out, t)
		if len(out) >= c.opts.MaxSeqLen {
			break
		}
	}
	if len(out) == 0 || out[0].Func != c.ctorName {
		return nil
	}
	return out
}

// QueueSequences returns clones of the sequences currently in the seed queue
// — the exportable corpus a store shares across campaigns.
func (c *Campaign) QueueSequences() []Sequence {
	out := make([]Sequence, len(c.queue))
	for i, s := range c.queue {
		out[i] = s.Seq.Clone()
	}
	return out
}

// SetObserver installs (or clears) the conformance transcript hook. Must not
// be called while a slice is running.
func (c *Campaign) SetObserver(obs ExecObserver) {
	c.opts.Observer = obs
}

// fuzzRound spends one seed's energy on the sequential engine: mutate one
// child, execute, fold, admit — the classic Algorithm 1 inner loop.
func (c *Campaign) fuzzRound(seed *Seed, energy int, qi *int) {
	for e := 0; e < energy && !c.budgetExhausted(); e++ {
		child := c.mutateSeed(seed)
		r := c.execute(child.Seq)
		child, r = c.maybeLineSearch(child, r)
		c.admit(child, r, qi)
	}
}

// fuzzRoundBarrier spends one seed's energy as a fork-join batch: the
// round's children are generated and executed across Options.Workers
// goroutines, each worker owning its own executor (EVM, state copies, trace
// buffer) and a per-child rand.Rand seeded from the coordinator rng; a
// WaitGroup barrier joins them all before the coordinator merges outcomes in
// batch order. This is the legacy batched engine, kept verbatim as the
// Options.NoPipeline ablation — the reference the pipelined engine is proven
// byte-identical against.
func (c *Campaign) fuzzRoundBarrier(seed *Seed, energy int, qi *int) {
	n := energy
	if remaining := c.opts.Iterations - c.executions; n > remaining {
		n = remaining
	}
	if n <= 0 {
		return
	}
	// Per-child rng seeds drawn sequentially from the coordinator rng keep
	// the whole batch a pure function of Options.Seed.
	childSeeds := make([]int64, n)
	for i := range childSeeds {
		childSeeds[i] = c.rng.Int63()
	}

	type slot struct {
		child      *Seed
		out        execOutcome
		seqMutated int
	}
	slots := make([]slot, n)
	workers := c.opts.Workers
	if workers > n {
		workers = n
	}
	c.pendingExecs = n

	for len(c.workerExecs) < workers {
		c.workerExecs = append(c.workerExecs, c.exec.clone())
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		x := c.workerExecs[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				rng := rand.New(rand.NewSource(childSeeds[i]))
				child, seqMutated := c.mutateSeedRand(seed, rng)
				out := x.run(child.Seq)
				slots[i] = slot{child: child, out: out, seqMutated: seqMutated}
			}
		}()
	}
	wg.Wait()

	// Deterministic batch-order merge on the coordinator. Every dispatched
	// execution counts, so all slots fold even if the time budget expired
	// mid-batch.
	for i := range slots {
		c.pendingExecs--
		c.executions++
		c.sequencesMutated += slots[i].seqMutated
		r := c.foldOutcome(slots[i].child.Seq, &slots[i].out)
		child, r := c.maybeLineSearch(slots[i].child, r)
		c.admit(child, r, qi)
	}
}

// ensureWorkerPool lazily starts the pipelined engine's persistent pool over
// the campaign's warmed worker executors.
func (c *Campaign) ensureWorkerPool() *workerPool {
	if c.workerPool != nil {
		return c.workerPool
	}
	for len(c.workerExecs) < c.opts.Workers {
		c.workerExecs = append(c.workerExecs, c.exec.clone())
	}
	c.workerPool = newWorkerPool(c.workerExecs[:c.opts.Workers])
	return c.workerPool
}

// stopWorkerPool joins and discards the slice's pool (no-op when none ran).
func (c *Campaign) stopWorkerPool() {
	if c.workerPool != nil {
		c.workerPool.shutdown()
		c.workerPool = nil
	}
}

// fuzzRoundPipelined spends one seed's energy through the persistent worker
// pool with a streaming in-order fold: the coordinator mutates every child of
// the round up front, keeps the bounded job queue fed, and folds slot i the
// moment it completes — coverage merge, admission, and the line search for
// early slots overlap the execution of later ones, and nothing joins on a
// barrier.
//
// The schedule is byte-identical to fuzzRoundBarrier's. Per-child rng seeds
// come from the same coordinator draws; children are a pure function of the
// round-start feedback state (mutation happens before any fold of this round
// touches the value pool, masks, or distance frontier — exactly the state
// the barrier engine's workers read); executors are pure; and the reorder
// buffer releases outcomes in batch order, so every fold sees the state the
// serial merge would have produced.
func (c *Campaign) fuzzRoundPipelined(seed *Seed, energy int, qi *int) {
	n := energy
	if remaining := c.opts.Iterations - c.executions; n > remaining {
		n = remaining
	}
	if n <= 0 {
		return
	}
	childSeeds := make([]int64, n)
	for i := range childSeeds {
		childSeeds[i] = c.rng.Int63()
	}
	children := make([]*Seed, n)
	muts := make([]int, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(childSeeds[i]))
		children[i], muts[i] = c.mutateSeedRand(seed, rng)
	}

	p := c.ensureWorkerPool()
	outs := make([]execOutcome, n)
	ready := make([]bool, n)
	done := make(chan int, n)
	c.pendingExecs = n
	sent, next := 0, 0
	for next < n {
		if sent < n {
			// Feed the queue and drain completions with equal priority; when
			// the queue is full the select blocks until a worker frees a slot
			// or finishes a job, so dispatch can never deadlock against fold.
			select {
			case p.jobs <- poolJob{seq: children[sent].Seq, out: &outs[sent], idx: sent, done: done}:
				sent++
			case i := <-done:
				ready[i] = true
			}
		} else {
			i := <-done
			ready[i] = true
		}
		// Reorder buffer: release every contiguous completed slot in batch
		// order. Counter updates, fold, line search, and admission mirror the
		// barrier engine's serial merge statement for statement.
		for next < n && ready[next] {
			i := next
			next++
			c.pendingExecs--
			c.executions++
			c.sequencesMutated += muts[i]
			r := c.foldOutcome(children[i].Seq, &outs[i])
			child := children[i]
			if c.opts.Strategy.BranchDistance && r.distImproved && r.newEdges == 0 && child.lastNudge != nil {
				child, r = c.lineSearchSpec(p, child, r)
			}
			c.admit(child, r, qi)
		}
	}
}

// lineSearchSpec is the pipelined engine's batched line search. The scalar
// lineSearch is inherently sequential — each step's verdict gates the next —
// but step k+1's CANDIDATE is not: the nudge never changes, so the sequence
// at step k is just the previous step's with the nudge applied once more,
// computable without feedback. The search therefore speculates: build a
// window of successive candidates, execute them across the pool in parallel,
// fold verdicts in step order, and discard everything past the first
// non-improving step. Discarded executions touched only worker-local state
// and the (transparent) checkpoint cache — they never count toward the
// budget and never fold, so the decision sequence, every counter, and every
// transcript byte match the scalar search exactly.
func (c *Campaign) lineSearchSpec(p *workerPool, child *Seed, r execResult) (*Seed, execResult) {
	const maxSteps = 64
	best, bestRes := child, r
	c.lineSearches++
	nd := child.lastNudge
	step := 0
	for step < maxSteps {
		if c.budgetExhausted() {
			return best, bestRes
		}
		width := p.size
		if width > maxSteps-step {
			width = maxSteps - step
		}
		// Build the speculative chain off the current best.
		specs := make([]*Seed, 0, width)
		prev := best
		for k := 0; k < width; k++ {
			next := prev.Clone()
			next.lastNudge = nd
			tx := &next.Seq[nd.txIdx%len(next.Seq)]
			stream := tx.Stream()
			if len(stream) == 0 {
				break
			}
			tx.SetStream(nudgeWordAt(stream, nd.pos%len(stream), nd.delta))
			specs = append(specs, next)
			prev = next
		}
		if len(specs) == 0 {
			// Mirrors the scalar engine's empty-stream step: counted, no run.
			c.lineSteps++
			return best, bestRes
		}
		outs := make([]execOutcome, len(specs))
		ready := make([]bool, len(specs))
		done := make(chan int, len(specs))
		for k := range specs {
			p.submit(poolJob{seq: specs[k].Seq, out: &outs[k], idx: k, done: done})
		}
		for k := 0; k < len(specs); k++ {
			if k > 0 && c.budgetExhausted() {
				// Budget expired mid-window: the scalar engine would not have
				// started this step. The window's tail stays unfolded and
				// uncounted; its completions land in the buffered done
				// channel, so no worker ever blocks on an abandoned batch.
				return best, bestRes
			}
			for !ready[k] {
				ready[<-done] = true
			}
			c.lineSteps++
			c.executions++
			res := c.foldOutcome(specs[k].Seq, &outs[k])
			step++
			if res.newEdges > 0 {
				return specs[k], res
			}
			if !res.distImproved {
				return best, bestRes
			}
			best, bestRes = specs[k], res
		}
	}
	return best, bestRes
}

// maybeLineSearch runs the greedy line search when a child's arithmetic
// nudge improved some branch distance without new coverage — the
// hill-climbing descent that cracks derived-value guards (b*7 == 9163
// style) in O(distance/step) executions.
func (c *Campaign) maybeLineSearch(child *Seed, r execResult) (*Seed, execResult) {
	if c.opts.Strategy.BranchDistance && r.distImproved && r.newEdges == 0 && child.lastNudge != nil {
		return c.lineSearch(child, r)
	}
	return child, r
}

// admit applies queue admission to one executed child: children that found
// new edges or improved a branch distance join the seed queue.
func (c *Campaign) admit(child *Seed, r execResult, qi *int) {
	if r.newEdges > 0 || (c.opts.Strategy.BranchDistance && r.distImproved) {
		child.NewEdges = r.newEdges
		child.HitNestedDepth = r.hitNestedDepth
		child.DistanceImproved = r.distImproved
		child.PathWeight = c.weights.PathWeightTx(r.branchesByTx)
		c.queue = append(c.queue, child)
		// cap queue growth: keep the newest/most valuable seeds. Copy the
		// survivors into a fresh slice — reslicing the old backing array
		// (c.queue[len-192:]) would pin every evicted seed (and its sequence,
		// masks, and distance clones) live for as long as the tail survives.
		if len(c.queue) > 256 {
			kept := make([]*Seed, 192)
			copy(kept, c.queue[len(c.queue)-192:])
			c.queue = kept
			*qi = 0
		}
	}
}

// lineSearch repeats a seed's last nudge while branch distance keeps
// improving, returning the furthest point reached (or the first point that
// discovers new edges). Sequential by nature: each step depends on the
// previous one's feedback.
func (c *Campaign) lineSearch(child *Seed, r execResult) (*Seed, execResult) {
	const maxSteps = 64
	best, bestRes := child, r
	c.lineSearches++
	for step := 0; step < maxSteps && !c.budgetExhausted(); step++ {
		c.lineSteps++
		n := best.lastNudge
		next := best.Clone()
		next.lastNudge = n
		tx := &next.Seq[n.txIdx%len(next.Seq)]
		stream := tx.Stream()
		if len(stream) == 0 {
			break
		}
		tx.SetStream(nudgeWordAt(stream, n.pos%len(stream), n.delta))
		res := c.execute(next.Seq)
		if res.newEdges > 0 {
			return next, res
		}
		if !res.distImproved {
			break
		}
		best, bestRes = next, res
	}
	return best, bestRes
}

// pickSeed selects the next seed to fuzz. With dynamic energy, seeds whose
// paths carry more weight are preferred (weighted sampling); otherwise
// round-robin over the queue.
func (c *Campaign) pickSeed(qi *int) *Seed {
	// Branch-distance frontier: half the time, continue from the sequence
	// that is closest to flipping some uncovered edge.
	if c.opts.Strategy.BranchDistance && c.distCount > 0 && c.rng.Intn(2) == 0 {
		return c.distSeed[c.nthFrontierEdge(c.rng.Intn(c.distCount))]
	}
	if !c.opts.Strategy.DynamicEnergy || len(c.queue) == 1 {
		return c.queue[*qi%len(c.queue)]
	}
	// weighted pick among a sample window, favoring higher path weight and
	// seeds that reached nested branches
	best := c.queue[*qi%len(c.queue)]
	bestScore := seedScore(best)
	for k := 0; k < 3; k++ {
		cand := c.queue[c.rng.Intn(len(c.queue))]
		if s := seedScore(cand); s > bestScore {
			best, bestScore = cand, s
		}
	}
	return best
}

func seedScore(s *Seed) float64 {
	score := s.PathWeight + float64(s.NewEdges)*4
	if s.HitNestedDepth >= 2 {
		score += 10 * float64(s.HitNestedDepth)
	}
	if s.DistanceImproved {
		score += 5
	}
	return score
}

// Run is the package-level convenience: build a campaign and run it.
func Run(comp *minisol.Compiled, opts Options) *Result {
	return NewCampaign(comp, opts).Run()
}

// DistCmp exposes the uncovered-edge comparisons for diagnostics, as a
// BranchKey map materialized from the indexed frontier.
func (c *Campaign) DistCmp() map[evm.BranchKey]evm.CmpInfo {
	out := make(map[evm.BranchKey]evm.CmpInfo, c.distCount)
	for id, known := range c.distKnown {
		if known {
			pc, taken := c.branchIx.Edge(int32(id))
			out[evm.BranchKey{Addr: c.contractAddr, PC: pc, Taken: taken}] = c.distCmp[id]
		}
	}
	return out
}
