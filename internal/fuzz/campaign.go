package fuzz

import (
	"math/rand"
	"sort"
	"time"

	"mufuzz/internal/abi"
	"mufuzz/internal/analysis"
	"mufuzz/internal/evm"
	"mufuzz/internal/minisol"
	"mufuzz/internal/oracle"
	"mufuzz/internal/state"
	"mufuzz/internal/u256"
)

// Options configures one fuzzing campaign.
type Options struct {
	Strategy Strategy
	// Seed makes the campaign deterministic.
	Seed int64
	// Iterations is the transaction-sequence execution budget (mask probes
	// count against it). Default 2000.
	Iterations int
	// TimeBudget optionally caps wall-clock time (0 = unlimited).
	TimeBudget time.Duration
	// MaxSeqLen bounds sequence growth. Default 8.
	MaxSeqLen int
	// GasPerTx is the gas limit per transaction. Default 2,000,000.
	GasPerTx uint64
	// EnergyBase is the mutation budget per selected seed. Default 16.
	EnergyBase int
	// InitialSeeds is the size of the initial corpus. Default 4.
	InitialSeeds int
	// NoPrefixCache disables the intermediate-state checkpoint optimization
	// (paper §VI); used for ablation and equivalence testing.
	NoPrefixCache bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Iterations == 0 {
		out.Iterations = 2000
	}
	if out.MaxSeqLen == 0 {
		out.MaxSeqLen = 8
	}
	if out.GasPerTx == 0 {
		out.GasPerTx = 2_000_000
	}
	if out.EnergyBase == 0 {
		out.EnergyBase = 16
	}
	if out.InitialSeeds == 0 {
		out.InitialSeeds = 4
	}
	return out
}

// TimelinePoint samples coverage growth for the Fig. 5 curves.
type TimelinePoint struct {
	Executions int
	Elapsed    time.Duration
	Coverage   float64
}

// Result is the outcome of one campaign.
type Result struct {
	Strategy     string
	CoveredEdges int
	TotalEdges   int
	Coverage     float64 // CoveredEdges / TotalEdges
	Findings     []oracle.Finding
	Executions   int
	Elapsed      time.Duration
	Timeline     []TimelinePoint
	BugClasses   map[oracle.BugClass]bool
	// Repro maps each detected bug class to the first transaction sequence
	// that triggered it (a proof of concept; see Campaign.MinimizeForBug).
	Repro            map[oracle.BugClass]Sequence
	SeedQueueLen     int
	MasksComputed    int
	SequencesMutated int
}

// Campaign is the fuzzing engine for one contract.
type Campaign struct {
	comp     *minisol.Compiled
	opts     Options
	rng      *rand.Rand
	dataflow *analysis.Dataflow
	cfg      *analysis.CFG
	detector *oracle.Detector

	// identities
	genesis      *state.State
	contractAddr state.Address
	deployer     state.Address
	senders      []state.Address
	attackerAddr state.Address

	// feedback state
	covered map[evm.BranchKey]bool
	minDist map[evm.BranchKey]u256.Int // uncovered edge -> best distance
	distCmp map[evm.BranchKey]evm.CmpInfo
	// distSeed is the branch-distance frontier of Algorithm 1 (lines 7-13):
	// for every uncovered edge, the seed that came closest to flipping it.
	// Seed selection alternates between the queue and this frontier so
	// descent always continues from the best-known point. Storing the Seed
	// (not just the sequence) preserves its computed mask cache.
	distSeed   map[evm.BranchKey]*Seed
	weights    analysis.BranchWeights
	totalEdges int
	pool       []u256.Int
	addrPool   []u256.Int

	prefixes *prefixCache
	// repro holds, per bug class, the first sequence observed triggering it
	// — the proof-of-concept the CLI minimizes and prints.
	repro map[oracle.BugClass]Sequence

	queue      []*Seed
	executions int
	started    time.Time
	timeline   []TimelinePoint

	masksComputed    int
	maskProbes       int
	sequencesMutated int
	lastNewEdgeExec  int
	lineSearches     int
	lineSteps        int
}

// LineSearchStats reports (searches, total steps) for diagnostics.
func (c *Campaign) LineSearchStats() (int, int) { return c.lineSearches, c.lineSteps }

// PrefixCacheStats reports checkpoint cache hits and misses.
func (c *Campaign) PrefixCacheStats() (hits, misses int) { return c.prefixes.stats() }

// NewCampaign prepares a campaign for a compiled contract.
func NewCampaign(comp *minisol.Compiled, opts Options) *Campaign {
	o := opts.withDefaults()
	c := &Campaign{
		comp:     comp,
		opts:     o,
		rng:      rand.New(rand.NewSource(o.Seed)),
		dataflow: analysis.AnalyzeDataflow(comp.Contract),
		cfg:      analysis.BuildCFG(comp.Code),
		covered:  make(map[evm.BranchKey]bool),
		minDist:  make(map[evm.BranchKey]u256.Int),
		distCmp:  make(map[evm.BranchKey]evm.CmpInfo),
		distSeed: make(map[evm.BranchKey]*Seed),
		weights:  make(analysis.BranchWeights),
	}
	if !o.NoPrefixCache {
		c.prefixes = newPrefixCache(96)
	}
	c.repro = make(map[oracle.BugClass]Sequence)

	c.deployer = state.AddressFromUint(0xd431)
	userA := state.AddressFromUint(0x0a11)
	userB := state.AddressFromUint(0x0b22)
	c.attackerAddr = state.AddressFromUint(0xa77c)
	c.contractAddr = state.AddressFromUint(0xc0de)
	c.senders = []state.Address{c.deployer, userA, userB, c.attackerAddr}

	c.genesis = state.New()
	rich := u256.One.Lsh(120)
	for _, s := range c.senders {
		c.genesis.SetBalance(s, rich)
	}
	c.genesis.Commit()

	c.detector = oracle.NewDetector(c.contractAddr, comp.Code)
	c.totalEdges = 2 * len(c.cfg.BranchPCs())

	// Address argument pool: every account that exists in the fuzzed world.
	for _, s := range c.senders {
		c.addrPool = append(c.addrPool, s.Word())
	}
	c.addrPool = append(c.addrPool, c.contractAddr.Word())

	// Value pool: defaults + constants harvested from PUSH immediates.
	c.pool = defaultValuePool()
	for _, ins := range analysis.Disassemble(comp.Code) {
		if ins.Op.IsPush() && len(ins.Imm) > 0 && len(ins.Imm) <= 32 {
			v := u256.FromBytes(ins.Imm)
			if !v.IsZero() && v.BitLen() < 200 {
				c.pool = append(c.pool, v)
			}
		}
	}
	return c
}

// --- Sequence construction ---

// newTx builds a transaction for fn with random inputs.
func (c *Campaign) newTx(fn string) TxInput {
	var m abi.Method
	if fn == minisol.CtorName {
		m = c.comp.Ctor
	} else {
		m, _ = c.comp.ABI.MethodByName(fn)
	}
	tx := TxInput{
		Func:   fn,
		Args:   randomArgsFor(m, c.rng, c.pool, c.addrPool),
		Sender: c.rng.Intn(len(c.senders)),
	}
	if m.Payable && c.rng.Intn(2) == 0 {
		tx.Value = c.pool[c.rng.Intn(len(c.pool))]
	}
	return tx
}

// initialSequence builds a base sequence per the strategy: the dependency
// order of §IV-A for dataflow strategies, a random order otherwise. The
// constructor is always first.
func (c *Campaign) initialSequence() Sequence {
	seq := Sequence{c.newTx(minisol.CtorName)}
	seq[0].Sender = 0 // the deployer deploys
	seq[0].Value = u256.Zero

	var order []string
	if c.opts.Strategy.DataflowSequences {
		order = c.dataflow.DependencyOrder()
	} else {
		for _, fn := range c.comp.Contract.Functions {
			order = append(order, fn.Name)
		}
		c.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	for _, fn := range order {
		if len(seq) >= c.opts.MaxSeqLen {
			break
		}
		seq = append(seq, c.newTx(fn))
	}
	return seq
}

// --- Execution ---

// execResult is the feedback from running one sequence.
type execResult struct {
	newEdges       int
	hitNestedDepth int
	distImproved   bool
	branchesByTx   [][]evm.BranchEvent
	allBranches    []evm.BranchEvent
}

// fold integrates a batch of contract branch events into the campaign's
// coverage, nesting, and branch-distance bookkeeping. It is shared between
// live execution and prefix-checkpoint replay so both paths produce
// identical feedback.
func (c *Campaign) fold(res *execResult, branches []evm.BranchEvent, seq Sequence) {
	for _, br := range branches {
		key := br.Key()
		if !c.covered[key] {
			c.covered[key] = true
			res.newEdges++
			c.lastNewEdgeExec = c.executions
			delete(c.minDist, key)
			delete(c.distCmp, key)
			delete(c.distSeed, key)
		}
		if site, ok := c.comp.BranchSiteAt(br.PC); ok && site.Depth > res.hitNestedDepth {
			res.hitNestedDepth = site.Depth
		}
		// branch distance toward the uncovered opposite direction
		opp := br.Opposite()
		if !c.covered[opp] && br.HasCmp {
			d := br.Cmp.FlipDistance()
			cur, seen := c.minDist[opp]
			if !seen || d.Lt(cur) {
				res.distImproved = true
				c.minDist[opp] = d
				c.distCmp[opp] = br.Cmp
				c.distSeed[opp] = &Seed{Seq: seq.Clone(), DistanceImproved: true}
			}
		}
	}
	if c.opts.Strategy.DynamicEnergy {
		c.weights.Merge(analysis.WeightTrace(branches, c.cfg))
	}
}

// execute runs a sequence against a fresh state and folds its feedback into
// the campaign. Every execution — including Algorithm 2 mask probes — counts
// toward coverage and the oracles, the way any AFL-family fuzzer counts all
// of its executions. When a prefix of the sequence has a cached checkpoint
// (paper §VI's intermediate-state optimization), execution resumes from it.
func (c *Campaign) execute(seq Sequence) *execResult {
	c.executions++
	res := &execResult{}
	valueCap := u256.One.Lsh(96).Sub(u256.One)

	var st *state.State
	var e *evm.EVM
	start := 0
	var runBranchesByTx [][]evm.BranchEvent // per-tx contract branch events since tx 0
	prefixNested := 0

	if entry := c.prefixes.lookup(seq); entry != nil {
		st = entry.st.Copy()
		e = evm.New(st, evm.BlockCtx{Timestamp: 1_700_000_000, Number: 1_000_000, GasLimit: 30_000_000})
		e.RestoreTaint(entry.taint)
		start = entry.txs
		// Replay the prefix's feedback per transaction so bookkeeping
		// (including per-tx weight traces) matches a full run exactly.
		for _, txBranches := range entry.branchesByTx {
			c.fold(res, txBranches, seq)
			res.branchesByTx = append(res.branchesByTx, txBranches)
			res.allBranches = append(res.allBranches, txBranches...)
			runBranchesByTx = append(runBranchesByTx, txBranches)
		}
		if entry.nestedDepth > res.hitNestedDepth {
			res.hitNestedDepth = entry.nestedDepth
		}
		prefixNested = entry.nestedDepth
	} else {
		st = c.genesis.Copy()
		e = evm.New(st, evm.BlockCtx{Timestamp: 1_700_000_000, Number: 1_000_000, GasLimit: 30_000_000})
		st.CreateContract(c.contractAddr, c.comp.Code, c.deployer)
		st.Commit()
	}
	attacker := &evm.ReentrantAttacker{Addr: c.attackerAddr, MaxReentries: 1}
	e.RegisterNative(c.attackerAddr, attacker)

	for i := start; i < len(seq); i++ {
		tx := seq[i]
		data := c.encodeTx(tx)
		sender := c.senders[tx.Sender%len(c.senders)]
		value := tx.Value.And(valueCap)
		e.Trace = evm.NewTrace()
		_, err := e.Transact(sender, c.contractAddr, value, data, c.opts.GasPerTx)

		var txBranches []evm.BranchEvent
		for _, br := range e.Trace.Branches {
			if br.Addr == c.contractAddr {
				txBranches = append(txBranches, br)
			}
		}
		c.fold(res, txBranches, seq)
		res.branchesByTx = append(res.branchesByTx, txBranches)
		res.allBranches = append(res.allBranches, txBranches...)
		runBranchesByTx = append(runBranchesByTx, txBranches)
		if d := res.hitNestedDepth; d > prefixNested {
			prefixNested = d
		}

		for _, class := range c.detector.Inspect(e.Trace, value, err == nil) {
			if _, have := c.repro[class]; !have {
				// keep only the prefix up to and including the tx that fired
				c.repro[class] = seq[:i+1].Clone()
			}
		}

		// Checkpoint the state after this transaction (except the last: the
		// cache only serves proper prefixes).
		if i < len(seq)-1 {
			key := hashPrefix(seq, i+1)
			if !c.prefixes.contains(key) {
				c.prefixes.storeKeyed(key, i+1, st.Copy(), e.TaintSnapshot(), runBranchesByTx, prefixNested)
			}
		}
	}
	if res.newEdges > 0 {
		c.timeline = append(c.timeline, TimelinePoint{
			Executions: c.executions,
			Elapsed:    time.Since(c.started),
			Coverage:   c.CoverageRatio(),
		})
	}
	return res
}

// encodeTx builds the full calldata of a transaction.
func (c *Campaign) encodeTx(tx TxInput) []byte {
	var m abi.Method
	if tx.Func == minisol.CtorName {
		m = c.comp.Ctor
	} else {
		m, _ = c.comp.ABI.MethodByName(tx.Func)
	}
	sel := m.Selector()
	return append(sel[:], tx.Args...)
}

// Covered returns the set of covered branch edges (read-only view).
func (c *Campaign) Covered() map[evm.BranchKey]bool {
	return c.covered
}

// CoverageRatio returns covered/total branch edges.
func (c *Campaign) CoverageRatio() float64 {
	if c.totalEdges == 0 {
		return 1
	}
	return float64(len(c.covered)) / float64(c.totalEdges)
}

// --- Energy (paper §IV-C) ---

// energyFor assigns the mutation budget of a seed. With dynamic energy the
// budget scales with the Algorithm 3 weight of the seed's path; otherwise it
// is uniform (sFuzz's default scheme).
func (c *Campaign) energyFor(seed *Seed) int {
	base := c.opts.EnergyBase
	if !c.opts.Strategy.DynamicEnergy || len(c.weights) == 0 {
		return base
	}
	var total float64
	for _, w := range c.weights {
		total += w
	}
	avg := total / float64(len(c.weights))
	if avg <= 0 {
		return base
	}
	scale := 1.0 + seed.PathWeight/(avg*8)
	if scale > 4 {
		scale = 4
	}
	e := int(float64(base) * scale)
	if e < 1 {
		e = 1
	}
	return e
}

// --- Mutation of one seed ---

// mutateSeed produces a child: sequence-level mutation (sometimes) plus
// input-level byte mutations filtered by the seed's masks.
func (c *Campaign) mutateSeed(seed *Seed) *Seed {
	child := seed.Clone()
	sm := &seqMutator{
		strategy:   c.opts.Strategy,
		repeatable: c.dataflow.RepeatCandidates(),
		callable:   c.callableFuncs(),
	}

	// Sequence-level mutation with probability 1/3 (the paper mutates the
	// sequence once and then focuses on inputs).
	if c.rng.Intn(3) == 0 {
		child.Seq = sm.mutateSequence(child.Seq, c.rng, c.newTx, c.opts.MaxSeqLen)
		c.sequencesMutated++
	}

	// Sender alignment: same-account deposit/withdraw patterns (reentrancy,
	// refunds) need every transaction issued by one identity; occasionally
	// unify all senders.
	if c.rng.Intn(8) == 0 {
		s := c.rng.Intn(len(c.senders))
		for i := 1; i < len(child.Seq); i++ {
			child.Seq[i].Sender = s
		}
	}

	// Input-level mutation on 1-2 transactions.
	nMut := 1 + c.rng.Intn(2)
	for k := 0; k < nMut; k++ {
		if len(child.Seq) <= 1 {
			break
		}
		ti := c.rng.Intn(len(child.Seq)-1) + 1
		tx := &child.Seq[ti]
		stream := tx.Stream()
		if len(stream) == 0 {
			continue
		}
		var mask *Mask
		if c.opts.Strategy.MutationMasking && ti < len(seed.masks) {
			mask = seed.masks[ti]
		}
		// A mask is a license to mutate hard: critical positions are frozen,
		// so several mutations can be stacked per child without destroying
		// the property that made the seed valuable (the FairFuzz effect).
		rounds := 1
		if mask != nil && mask.AllowedCount() > 0 {
			rounds = 2 + c.rng.Intn(4)
		}
		for r := 0; r < rounds; r++ {
			var nudge *nudgeInfo
			stream, nudge = c.mutateStream(stream, mask)
			if nudge != nil {
				nudge.txIdx = ti
				child.lastNudge = nudge
			}
		}
		tx.SetStream(stream)
		// occasionally flip the sender
		if c.rng.Intn(8) == 0 {
			tx.Sender = c.rng.Intn(len(c.senders))
		}
	}
	return child
}

// mutateStream applies one input mutation respecting the mask. When the
// mutation is an arithmetic word nudge, its descriptor is returned so the
// campaign can replay it as a greedy line search on branch distance.
func (c *Campaign) mutateStream(stream []byte, mask *Mask) ([]byte, *nudgeInfo) {
	// Distance-directed mutation: copy a comparison operand of an uncovered
	// branch into a word, or nudge a word arithmetically (sFuzz-style
	// descent). Available to strategies with branch-distance feedback.
	if c.opts.Strategy.BranchDistance && len(c.distCmp) > 0 && c.rng.Intn(2) == 0 {
		cmp, ok := c.randomUncoveredCmp()
		if ok {
			i := c.rng.Intn(len(stream))
			if mask.OK(MutOverwrite, (i/32)*32) {
				switch c.rng.Intn(3) {
				case 0:
					return WriteWordAt(stream, i, cmp.A), nil
				case 1:
					return WriteWordAt(stream, i, cmp.B), nil
				default:
					deltas := []int64{1, -1, 2, -2, 16, -16, 256, -256, 4096, -4096, 65536, -65536}
					d := deltas[c.rng.Intn(len(deltas))]
					return NudgeWordAt(stream, i, d), &nudgeInfo{pos: i, delta: d}
				}
			}
		}
	}

	// Plain O/I/R/D mutation; retry a few times to find a permitted spot.
	for attempt := 0; attempt < 8; attempt++ {
		x := MutType(c.rng.Intn(int(numMutTypes)))
		n := 1 + c.rng.Intn(4)
		if x == MutReplace {
			n = 1 + c.rng.Intn(32)
		}
		i := c.rng.Intn(len(stream) + 1)
		if i == len(stream) && x != MutInsert {
			i = len(stream) - 1
		}
		if !mask.OK(x, i) {
			continue
		}
		return ApplyMutation(stream, x, n, i, c.rng, c.pool), nil
	}
	return stream, nil
}

// sortedBranchKeys returns map keys in a deterministic order so random
// selection is reproducible across runs (Go map iteration is randomized).
func sortedBranchKeys[V any](m map[evm.BranchKey]V) []evm.BranchKey {
	keys := make([]evm.BranchKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].PC != keys[j].PC {
			return keys[i].PC < keys[j].PC
		}
		return !keys[i].Taken && keys[j].Taken
	})
	return keys
}

// randomUncoveredCmp picks the comparison info of a random uncovered edge.
func (c *Campaign) randomUncoveredCmp() (evm.CmpInfo, bool) {
	keys := sortedBranchKeys(c.distCmp)
	if len(keys) == 0 {
		return evm.CmpInfo{}, false
	}
	return c.distCmp[keys[c.rng.Intn(len(keys))]], true
}

func (c *Campaign) callableFuncs() []string {
	var out []string
	for _, fn := range c.comp.Contract.Functions {
		out = append(out, fn.Name)
	}
	return out
}

// --- Mask computation (Algorithm 2 driver) ---

// ensureMasks computes per-transaction masks for a qualifying seed: one that
// hits a nested branch or improves a branch distance (Algorithm 1 line 17).
// Mask probes are capped at a fraction of the campaign budget so Algorithm 2
// cannot starve the main mutation loop.
func (c *Campaign) ensureMasks(seed *Seed) {
	if seed.masks != nil || !c.opts.Strategy.MutationMasking {
		return
	}
	if seed.HitNestedDepth < 2 && !seed.DistanceImproved {
		return
	}
	if c.maskProbes*5 > c.opts.Iterations {
		return
	}
	// Masks pay off on hard branches; while plain mutation is still finding
	// new edges cheaply, defer the probe cost (stall detection).
	if c.executions-c.lastNewEdgeExec < 50 {
		return
	}
	seed.masks = make([]*Mask, len(seed.Seq))
	baseline := c.execute(seed.Seq)
	for ti := 1; ti < len(seed.Seq); ti++ {
		if c.budgetExhausted() {
			return
		}
		tx := seed.Seq[ti]
		stream := tx.Stream()
		if len(stream) == 0 {
			continue
		}
		c.masksComputed++
		seed.masks[ti] = ComputeMask(stream, c.rng, c.pool, func(candidate []byte) bool {
			if c.budgetExhausted() || c.maskProbes*5 > c.opts.Iterations {
				// Out of budget: deny, leaving the position frozen rather
				// than probing past the campaign's execution budget.
				return false
			}
			c.maskProbes++
			probeSeq := seed.Seq.Clone()
			probeSeq[ti].SetStream(candidate)
			r := c.execute(probeSeq)
			// property preserved: still reaches the nested depth, or still
			// improves some distance
			if baseline.hitNestedDepth >= 2 && r.hitNestedDepth >= baseline.hitNestedDepth {
				return true
			}
			return r.distImproved
		})
	}
}

func (c *Campaign) budgetExhausted() bool {
	if c.executions >= c.opts.Iterations {
		return true
	}
	if c.opts.TimeBudget > 0 && time.Since(c.started) > c.opts.TimeBudget {
		return true
	}
	return false
}

// --- Main loop (Algorithm 1) ---

// Run executes the campaign to its budget and returns the result.
func (c *Campaign) Run() *Result {
	c.started = time.Now()

	// Initial corpus.
	for i := 0; i < c.opts.InitialSeeds && !c.budgetExhausted(); i++ {
		seed := &Seed{Seq: c.initialSequence()}
		r := c.execute(seed.Seq)
		seed.NewEdges = r.newEdges
		seed.HitNestedDepth = r.hitNestedDepth
		seed.DistanceImproved = r.distImproved
		seed.PathWeight = analysis.PathWeight(r.allBranches, c.weights)
		c.queue = append(c.queue, seed)
	}

	// Fuzzing rounds.
	qi := 0
	for !c.budgetExhausted() && len(c.queue) > 0 {
		seed := c.pickSeed(&qi)
		c.ensureMasks(seed)
		energy := c.energyFor(seed)
		for e := 0; e < energy && !c.budgetExhausted(); e++ {
			child := c.mutateSeed(seed)
			r := c.execute(child.Seq)
			// Greedy line search: an arithmetic nudge that improved some
			// branch distance is repeated while it keeps improving — the
			// hill-climbing descent that cracks derived-value guards
			// (b*7 == 9163 style) in O(distance/step) executions.
			if c.opts.Strategy.BranchDistance && r.distImproved && r.newEdges == 0 && child.lastNudge != nil {
				child, r = c.lineSearch(child, r)
			}
			if r.newEdges > 0 || (c.opts.Strategy.BranchDistance && r.distImproved) {
				child.NewEdges = r.newEdges
				child.HitNestedDepth = r.hitNestedDepth
				child.DistanceImproved = r.distImproved
				child.PathWeight = analysis.PathWeight(r.allBranches, c.weights)
				c.queue = append(c.queue, child)
				// cap queue growth: keep the newest/most valuable seeds
				if len(c.queue) > 256 {
					c.queue = c.queue[len(c.queue)-192:]
					qi = 0
				}
			}
		}
		qi++
	}

	findings := c.detector.Finalize()
	repro := make(map[oracle.BugClass]Sequence, len(c.repro))
	for class, seq := range c.repro {
		repro[class] = seq
	}
	return &Result{
		Repro:            repro,
		Strategy:         c.opts.Strategy.Name,
		CoveredEdges:     len(c.covered),
		TotalEdges:       c.totalEdges,
		Coverage:         c.CoverageRatio(),
		Findings:         findings,
		Executions:       c.executions,
		Elapsed:          time.Since(c.started),
		Timeline:         c.timeline,
		BugClasses:       c.detector.Classes(),
		SeedQueueLen:     len(c.queue),
		MasksComputed:    c.masksComputed,
		SequencesMutated: c.sequencesMutated,
	}
}

// lineSearch repeats a seed's last nudge while branch distance keeps
// improving, returning the furthest point reached (or the first point that
// discovers new edges).
func (c *Campaign) lineSearch(child *Seed, r *execResult) (*Seed, *execResult) {
	const maxSteps = 64
	best, bestRes := child, r
	c.lineSearches++
	for step := 0; step < maxSteps && !c.budgetExhausted(); step++ {
		c.lineSteps++
		n := best.lastNudge
		next := best.Clone()
		next.lastNudge = n
		tx := &next.Seq[n.txIdx%len(next.Seq)]
		stream := tx.Stream()
		if len(stream) == 0 {
			break
		}
		tx.SetStream(NudgeWordAt(stream, n.pos%len(stream), n.delta))
		res := c.execute(next.Seq)
		if res.newEdges > 0 {
			return next, res
		}
		if !res.distImproved {
			break
		}
		best, bestRes = next, res
	}
	return best, bestRes
}

// pickSeed selects the next seed to fuzz. With dynamic energy, seeds whose
// paths carry more weight are preferred (weighted sampling); otherwise
// round-robin over the queue.
func (c *Campaign) pickSeed(qi *int) *Seed {
	// Branch-distance frontier: half the time, continue from the sequence
	// that is closest to flipping some uncovered edge.
	if c.opts.Strategy.BranchDistance && len(c.distSeed) > 0 && c.rng.Intn(2) == 0 {
		keys := sortedBranchKeys(c.distSeed)
		return c.distSeed[keys[c.rng.Intn(len(keys))]]
	}
	if !c.opts.Strategy.DynamicEnergy || len(c.queue) == 1 {
		return c.queue[*qi%len(c.queue)]
	}
	// weighted pick among a sample window, favoring higher path weight and
	// seeds that reached nested branches
	best := c.queue[*qi%len(c.queue)]
	bestScore := seedScore(best)
	for k := 0; k < 3; k++ {
		cand := c.queue[c.rng.Intn(len(c.queue))]
		if s := seedScore(cand); s > bestScore {
			best, bestScore = cand, s
		}
	}
	return best
}

func seedScore(s *Seed) float64 {
	score := s.PathWeight + float64(s.NewEdges)*4
	if s.HitNestedDepth >= 2 {
		score += 10 * float64(s.HitNestedDepth)
	}
	if s.DistanceImproved {
		score += 5
	}
	return score
}

// Run is the package-level convenience: build a campaign and run it.
func Run(comp *minisol.Compiled, opts Options) *Result {
	return NewCampaign(comp, opts).Run()
}

// DistCmp exposes the uncovered-edge comparison map for diagnostics.
func (c *Campaign) DistCmp() map[evm.BranchKey]evm.CmpInfo {
	return c.distCmp
}
