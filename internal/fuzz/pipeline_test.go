package fuzz

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"mufuzz/internal/corpus"
	"mufuzz/internal/minisol"
)

// runBatchedGolden runs one pinned campaign configuration on the batched
// engine and returns its fingerprint.
func runBatchedGolden(t *testing.T, source string, seed int64, iters, workers int, noPipeline bool) string {
	t.Helper()
	comp, err := minisol.Compile(source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res := Run(comp, Options{
		Strategy:     MuFuzz(),
		Seed:         seed,
		Iterations:   iters,
		Workers:      workers,
		ForceBatched: workers == 1,
		NoPipeline:   noPipeline,
	})
	return resultFingerprint(res)
}

// TestGoldenBatchedEquivalence pins the batched schedule across engines and
// worker counts: the pipelined engine (persistent pool, streaming in-order
// fold, speculative line search) and the legacy barrier engine (NoPipeline)
// must both reproduce the committed pre-pipeline fingerprints at workers=1
// and workers=4 — four engine×width combinations against one golden string
// per campaign. Regenerate with MUFUZZ_GOLDEN_REGEN=1 after an intentional
// schedule change.
func TestGoldenBatchedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaigns are slow")
	}
	regen := os.Getenv("MUFUZZ_GOLDEN_REGEN") != ""
	engines := []struct {
		label      string
		workers    int
		noPipeline bool
	}{
		{"pipelined-w1", 1, false},
		{"pipelined-w4", 4, false},
		{"barrier-w1", 1, true},
		{"barrier-w4", 4, true},
	}
	for _, gc := range goldenCampaigns {
		want, ok := goldenBatchedFingerprints[gc.name]
		for _, eng := range engines {
			t.Run(gc.name+"/"+eng.label, func(t *testing.T) {
				got := runBatchedGolden(t, gc.source, gc.seed, gc.iters, eng.workers, eng.noPipeline)
				if regen || !ok {
					t.Logf("golden %q (%s) fingerprint:\n%s", gc.name, eng.label, got)
					return
				}
				if got != want {
					t.Errorf("%s diverged from the pinned batched schedule\n--- want\n%s\n--- got\n%s", eng.label, want, got)
				}
			})
		}
	}
}

// TestReorderBufferUnderGOMAXPROCSChurn stresses the pipelined engine's
// reorder buffer while another goroutine thrashes GOMAXPROCS between 1 and
// NumCPU: completions land in wildly shifting orders (including fully serial
// ones), and under -race the test doubles as the data-race gate for the
// pool/reorder handshake. The fingerprint must not move a byte.
func TestReorderBufferUnderGOMAXPROCSChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn stress is slow")
	}
	comp := mustCompile(t, corpus.CrowdsaleBuggy())
	opts := Options{Strategy: MuFuzz(), Seed: 3, Iterations: 400, Workers: 4}
	want := resultFingerprint(Run(comp, opts))

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				runtime.GOMAXPROCS(1)
			} else {
				runtime.GOMAXPROCS(prev)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for round := 0; round < 3; round++ {
		got := resultFingerprint(Run(comp, opts))
		if got != want {
			t.Fatalf("round %d: fingerprint moved under GOMAXPROCS churn\n--- want\n%s\n--- got\n%s", round, want, got)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPipelineScalingSmoke is the CI multi-core gate: on a machine with at
// least two CPUs, workers=2 must beat workers=1 on the fixture corpus.
// Self-skips unless MUFUZZ_SCALING_SMOKE=1 (throughput measurement has no
// place in the default unit-test wall clock) or when the host is
// single-core, where the assertion is unfalsifiable.
func TestPipelineScalingSmoke(t *testing.T) {
	if os.Getenv("MUFUZZ_SCALING_SMOKE") == "" {
		t.Skip("set MUFUZZ_SCALING_SMOKE=1 to run the scaling gate")
	}
	if runtime.NumCPU() < 2 {
		t.Skipf("host has %d CPU(s); scaling is unmeasurable", runtime.NumCPU())
	}
	comp := mustCompile(t, corpus.Crowdsale())
	const iters = 20000
	measure := func(workers int) float64 {
		best := 0.0
		// Three trials, best-of: absorbs scheduler noise on shared CI runners.
		for trial := 0; trial < 3; trial++ {
			c := NewCampaign(comp, Options{Strategy: MuFuzz(), Seed: 1, Iterations: iters, Workers: workers, ForceBatched: true})
			start := time.Now()
			res := c.Run()
			if eps := float64(res.Executions) / time.Since(start).Seconds(); eps > best {
				best = eps
			}
		}
		return best
	}
	e1 := measure(1)
	e2 := measure(2)
	t.Logf("workers=1: %.0f execs/s, workers=2: %.0f execs/s (%.2fx)", e1, e2, e2/e1)
	if e2 <= e1 {
		t.Errorf("workers=2 (%.0f execs/s) does not beat workers=1 (%.0f execs/s)", e2, e1)
	}
}

var _ = fmt.Sprintf // keep fmt when goldens log nothing
