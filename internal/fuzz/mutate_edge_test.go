package fuzz

import (
	"bytes"
	"math/rand"
	"testing"

	"mufuzz/internal/abi"
	"mufuzz/internal/u256"
)

// TestApplyMutationReplaceEmptyPool is the regression test for the Intn(0)
// panic: the R operator with no interesting values must not crash, and must
// still perturb the stream (degrading to an overwrite draw).
func TestApplyMutationReplaceEmptyPool(t *testing.T) {
	stream := make([]byte, 64)
	out := ApplyMutation(stream, MutReplace, 8, 4, rand.New(rand.NewSource(1)), nil)
	if len(out) != len(stream) {
		t.Fatalf("replace changed length: %d != %d", len(out), len(stream))
	}
	if bytes.Equal(out, stream) {
		t.Error("replace with empty pool left the stream untouched")
	}
	// The degraded path must consume rng exactly like MutOverwrite, so the
	// two operators coincide when no pool exists.
	ow := ApplyMutation(stream, MutOverwrite, 8, 4, rand.New(rand.NewSource(1)), nil)
	if !bytes.Equal(out, ow) {
		t.Error("empty-pool replace must degrade to the overwrite draw")
	}
}

// TestApplyMutationReplacePoolUnchanged pins the non-empty-pool R path: it
// writes the least-significant end of a pool constant and leaves rng
// consumption exactly one Intn draw — transcripts recorded before the
// empty-pool guard must still replay.
func TestApplyMutationReplacePoolUnchanged(t *testing.T) {
	pool := []u256.Int{u256.New(0xCAFE)}
	stream := make([]byte, 8)
	out := ApplyMutation(stream, MutReplace, 2, 3, rand.New(rand.NewSource(1)), pool)
	want := []byte{0, 0, 0, 0xCA, 0xFE, 0, 0, 0}
	if !bytes.Equal(out, want) {
		t.Errorf("replace = %x, want %x", out, want)
	}
}

// TestRandomArgsForEmptyPool is the second Intn(0) regression: building
// arguments for a word-typed parameter with an empty value pool must yield a
// zero word, not panic.
func TestRandomArgsForEmptyPool(t *testing.T) {
	m := abi.Method{Name: "f", Inputs: []abi.Param{{Kind: abi.Uint256}}}
	out := randomArgsFor(m, rand.New(rand.NewSource(1)), nil, nil)
	if len(out) != 32 {
		t.Fatalf("args length = %d, want 32", len(out))
	}
	if !bytes.Equal(out, make([]byte, 32)) {
		t.Errorf("empty pool should leave the word zero, got %x", out)
	}
}

// TestWriteWordAtShortStream pins word writes into streams shorter than one
// ABI word: only the in-range prefix of the word is written, nothing panics.
func TestWriteWordAtShortStream(t *testing.T) {
	v := u256.FromBytes([]byte{0xAA, 0xBB}) // big-endian: ...0xAA 0xBB
	out := WriteWordAt(make([]byte, 5), 3, v)
	if len(out) != 5 {
		t.Fatalf("length changed: %d", len(out))
	}
	// Bytes32 is big-endian; a 5-byte stream receives the word's top 5 bytes,
	// which for a small constant are zero.
	if !bytes.Equal(out, make([]byte, 5)) {
		t.Errorf("short-stream write = %x, want zeros", out)
	}
	// A value with high bytes set lands visibly.
	hi := u256.FromBytes(bytes.Repeat([]byte{0x11}, 32))
	out = WriteWordAt(make([]byte, 5), 0, hi)
	if !bytes.Equal(out, bytes.Repeat([]byte{0x11}, 5)) {
		t.Errorf("short-stream write = %x, want 5x11", out)
	}
}

// TestNudgeWordAtShortStream pins the arithmetic nudge on a sub-word stream:
// the partial word is read, adjusted, and written back into the same bytes —
// including two's-complement wraparound below zero.
func TestNudgeWordAtShortStream(t *testing.T) {
	out := NudgeWordAt([]byte{0, 0, 0, 0, 1}, 2, 1)
	if want := []byte{0, 0, 0, 0, 2}; !bytes.Equal(out, want) {
		t.Errorf("nudge +1 = %x, want %x", out, want)
	}
	// 0 - 1 wraps to all-ones; the short stream keeps the low 3 bytes.
	out = NudgeWordAt([]byte{0, 0, 0}, 0, -1)
	if want := []byte{0xFF, 0xFF, 0xFF}; !bytes.Equal(out, want) {
		t.Errorf("nudge -1 = %x, want %x", out, want)
	}
	// Empty stream: no word to nudge, no panic.
	if out = NudgeWordAt(nil, 0, 5); len(out) != 0 {
		t.Errorf("empty-stream nudge grew the stream: %x", out)
	}
}

// TestMutDeleteWholeStream pins the D operator deleting past the end: the
// whole tail goes, the result may be empty, and nothing panics.
func TestMutDeleteWholeStream(t *testing.T) {
	out := ApplyMutation([]byte{1, 2, 3}, MutDelete, 64, 0, rand.New(rand.NewSource(1)), nil)
	if len(out) != 0 {
		t.Errorf("whole-stream delete left %x", out)
	}
	out = ApplyMutation([]byte{1, 2, 3}, MutDelete, 64, 2, rand.New(rand.NewSource(1)), nil)
	if want := []byte{1, 2}; !bytes.Equal(out, want) {
		t.Errorf("tail delete = %x, want %x", out, want)
	}
}

// TestComputeMaskTailInheritance pins the stride-sampling contract of the
// bounded Algorithm 2: positions between (and after) probed positions inherit
// the nearest probe's verdict, including the tail beyond the last probe.
func TestComputeMaskTailInheritance(t *testing.T) {
	stream := make([]byte, 33) // stride = ceil(33/16) = 3; last probe at 30
	mask := ComputeMask(stream, rand.New(rand.NewSource(1)), nil, func(cand []byte) bool {
		return false
	})
	if mask.Len() != len(stream) {
		t.Fatalf("mask length %d != stream length %d", mask.Len(), len(stream))
	}
	if mask.AllowedCount() != 0 {
		t.Errorf("all-false probe permitted %d pairs", mask.AllowedCount())
	}
	mask = ComputeMask(stream, rand.New(rand.NewSource(1)), nil, func(cand []byte) bool {
		return true
	})
	// Every position — probed or inherited, including the 31..32 tail past
	// the last probed position — must be permitted for every type.
	for j := 0; j < len(stream); j++ {
		for x := MutType(0); x < numMutTypes; x++ {
			if !mask.OK(x, j) {
				t.Fatalf("position %d type %v not inherited", j, x)
			}
		}
	}
}

// TestWriteWordAtMasked pins the masked word write: only byte positions that
// permit MutOverwrite receive the operand; frozen bytes keep their value.
func TestWriteWordAtMasked(t *testing.T) {
	stream := make([]byte, 32)
	mask := NewEmptyMask(32)
	mask.Allow(30, MutOverwrite)
	mask.Allow(31, MutOverwrite)
	v := u256.New(0x1122334455)
	out := WriteWordAtMasked(stream, 7, v, mask)
	w := v.Bytes32()
	want := make([]byte, 32)
	want[30], want[31] = w[30], w[31]
	if !bytes.Equal(out, want) {
		t.Errorf("masked write = %x, want %x", out, want)
	}
	// A nil mask permits everything — identical to WriteWordAt.
	if !bytes.Equal(WriteWordAtMasked(stream, 7, v, nil), WriteWordAt(stream, 7, v)) {
		t.Error("nil-mask write must equal the unmasked write")
	}
}
