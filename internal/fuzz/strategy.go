// Package fuzz implements the MuFuzz fuzzing campaign: sequence-aware
// mutation (paper §IV-A), mask-guided seed mutation with branch-distance
// feedback (§IV-B, Algorithms 1–2), and dynamic-adaptive energy adjustment
// (§IV-C, Algorithm 3), over the EVM/compiler substrates.
//
// Baseline fuzzers (sFuzz, ConFuzzius, IR-Fuzz) are expressed as strategy
// configurations on the same runtime, mirroring how the paper's ablation
// isolates each component.
package fuzz

import "strings"

// Strategy selects which feedback mechanisms a campaign uses. MuFuzz enables
// everything; each baseline disables the dimensions that tool lacks.
type Strategy struct {
	Name string
	// DataflowSequences orders transactions by state-variable write→read
	// dependencies (§IV-A). Off = random ordering (sFuzz).
	DataflowSequences bool
	// RAWRepetition repeats functions with a read-after-write dependency on
	// a branch-read state variable consecutively — the sequence-aware
	// mutation that cracks the Crowdsale example. MuFuzz only.
	RAWRepetition bool
	// Prolongation occasionally extends sequences with extra calls
	// (IR-Fuzz's invocation prolongation).
	Prolongation bool
	// BranchDistance enables distance-feedback seed selection and
	// comparison-operand-directed mutations (sFuzz-style).
	BranchDistance bool
	// MutationMasking enables the Algorithm 2 mask computation and
	// OK_TO_MUTATE filtering. MuFuzz only.
	MutationMasking bool
	// DynamicEnergy enables Algorithm 3 branch-weighted energy allocation.
	// Off = uniform energy (sFuzz's default scheme).
	DynamicEnergy bool
	// CmpFeedback keeps a bounded table of concrete comparison operand pairs
	// observed at each uncovered branch and splices them into mask-permitted
	// bytes during distance-directed mutation — beyond the single
	// best-distance pair BranchDistance already tracks. MuFuzz only.
	CmpFeedback bool
	// MinedDictionary merges the target's mined constant dictionary
	// (Target.Dictionary: AST literals for source targets, abstract-interp
	// constants and keccak mapping bases for source-free bytecode) into the
	// campaign value pool. MuFuzz only.
	MinedDictionary bool
}

// MuFuzz returns the full strategy: all three components on.
func MuFuzz() Strategy {
	return Strategy{
		Name:              "MuFuzz",
		DataflowSequences: true,
		RAWRepetition:     true,
		Prolongation:      true,
		BranchDistance:    true,
		MutationMasking:   true,
		DynamicEnergy:     true,
		CmpFeedback:       true,
		MinedDictionary:   true,
	}
}

// SFuzz approximates sFuzz: random transaction ordering, AFL-style random
// byte mutation with branch-distance seed selection, uniform energy.
func SFuzz() Strategy {
	return Strategy{
		Name:           "sFuzz",
		BranchDistance: true,
	}
}

// ConFuzzius approximates ConFuzzius: data-dependency-ordered sequences and
// distance feedback, but no consecutive repetition, masking, or dynamic
// energy.
func ConFuzzius() Strategy {
	return Strategy{
		Name:              "ConFuzzius",
		DataflowSequences: true,
		BranchDistance:    true,
	}
}

// IRFuzz approximates IR-Fuzz: dependency ordering plus sequence
// prolongation and static branch-weighted energy, but no mutation masking
// and no RAW repetition.
func IRFuzz() Strategy {
	return Strategy{
		Name:              "IR-Fuzz",
		DataflowSequences: true,
		Prolongation:      true,
		BranchDistance:    true,
		DynamicEnergy:     true,
	}
}

// Smartian approximates Smartian: static+dynamic data-flow guided sequences
// with uniform energy and no distance feedback on comparisons.
func Smartian() Strategy {
	return Strategy{
		Name:              "Smartian",
		DataflowSequences: true,
		Prolongation:      true,
	}
}

// Ablations returns the ablation variants of MuFuzz (§V-D plus the
// comparison-feedback extension): each disables exactly one component.
func Ablations() []Strategy {
	noSeq := MuFuzz()
	noSeq.Name = "MuFuzz w/o sequence-aware mutation"
	noSeq.DataflowSequences = false
	noSeq.RAWRepetition = false

	noMask := MuFuzz()
	noMask.Name = "MuFuzz w/o mask-guided seed mutation"
	noMask.MutationMasking = false

	noEnergy := MuFuzz()
	noEnergy.Name = "MuFuzz w/o dynamic energy adjustment"
	noEnergy.DynamicEnergy = false

	noCmp := MuFuzz()
	noCmp.Name = "MuFuzz w/o comparison feedback"
	noCmp.CmpFeedback = false
	noCmp.MinedDictionary = false

	return []Strategy{noSeq, noMask, noEnergy, noCmp}
}

// PresetByName resolves the five strategy presets by their user-facing
// names, case-insensitively, accepting the common spellings ("irfuzz" and
// "ir-fuzz"). It is the single resolver the CLI and the campaign service
// share; the conformance package keeps its own exact-Name lookup because it
// must also resolve ablation variants.
func PresetByName(name string) (Strategy, bool) {
	switch strings.ToLower(name) {
	case "", "mufuzz":
		return MuFuzz(), true
	case "sfuzz":
		return SFuzz(), true
	case "confuzzius":
		return ConFuzzius(), true
	case "irfuzz", "ir-fuzz":
		return IRFuzz(), true
	case "smartian":
		return Smartian(), true
	}
	return Strategy{}, false
}
